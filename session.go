package stopandstare

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stopandstare/internal/core"
	"stopandstare/internal/epoch"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/tvm"
)

// ErrShardUnreachable is the sentinel wrapped by the error a Session with
// RemoteWorkers returns when a shard worker cannot be reached: test with
// errors.Is to distinguish degraded serving capacity from a bad request.
var ErrShardUnreachable = ris.ErrShardUnreachable

// Session is a long-lived, concurrency-safe serving object for a stream of
// influence-maximization queries against one (graph, model). It owns:
//
//   - one sampler whose compiled ris.Plan comes from the process-wide plan
//     cache, so every session and one-shot run on the same graph compiles
//     the plan exactly once;
//   - one persistent RR-set store (flat or id-sharded) that only ever grows:
//     a query's doubling loop tops up past the current stream length and
//     never resamples a prefix — D-SSA's "no sample is discarded" principle
//     extended across runs;
//   - a small cache of incremental max-coverage solvers, one per requested
//     k, each scanning only the stream suffix added since it last ran.
//
// Because RR set i is a pure function of (seed, i), warm reuse is not an
// approximation: Session.Maximize returns results bit-identical — Seeds,
// Coverage, sample counts, checkpoint traces — to a cold Maximize call with
// the same SessionOptions and Query. Only MemoryBytes (the warm store is
// larger) and Elapsed differ.
//
// Concurrency: any number of Maximize calls may run in parallel. Queries
// that need no store growth share a read lock and proceed concurrently
// (each coverage walk uses pooled per-query scratch); a query that must
// grow the stream briefly takes the write lock per top-up. Queries with
// the same k serialize on that k's solver; different k values do not
// contend.
type Session struct {
	opt     SessionOptions
	g       *Graph
	sampler *ris.Sampler
	inst    *tvm.Instance // non-nil for weighted (TVM) sessions
	store   ris.Store

	mu      sync.RWMutex // store growth: writers top up, readers query
	solMu   sync.Mutex   // guards solvers + solverLRU
	solvers map[int]*kSolver
	// solverLRU orders the cached k values, most recently used last; the
	// cache is capped at sessionSolverLimit so an adversarial or sweeping
	// k stream cannot grow per-session memory without bound (each solver
	// holds O(n) gain/scratch arrays). Eviction is safe mid-query: a query
	// holding an evicted solver keeps using it; only the map forgets it.
	solverLRU []int
	marks     sync.Pool // *epoch.Marks, per-query coverage scratch
	queries   atomic.Int64
	growths   atomic.Int64

	recovered     int          // RR sets restored from a snapshot at build
	snapshotBytes atomic.Int64 // last committed/recovered snapshot file size
}

// sessionSolverLimit bounds the per-k solver cache. Each solver costs
// ~13·NumNodes bytes of gains/scratch; a handful covers any realistic
// serving mix of k values, and an evicted k simply rebuilds its gain
// counts (one stream scan) on its next query.
const sessionSolverLimit = 16

// kSolver is one per-k incremental solver slot. Queries with the same k
// serialize on mu; the solver is replaced (not rescanned per checkpoint)
// when a query's schedule starts below the already-scanned prefix, so a
// warm repeated query still folds the stream in exactly once.
type kSolver struct {
	mu  sync.Mutex
	sol *maxcover.Solver
}

// SessionOptions fixes the per-session parameters: everything that selects
// the RR-sample stream itself. Queries (k, ε, δ, algorithm) vary per call;
// the stream parameters cannot, or warm reuse would not be bit-identical.
type SessionOptions struct {
	// Seed drives the RR stream; RR set i is a pure function of (Seed, i).
	// 0 is a valid seed.
	Seed uint64
	// Workers bounds sampling parallelism (≤0 ⇒ runtime.GOMAXPROCS(0)).
	Workers int
	// Shards ≥ 1 keeps the stream in an id-sharded store; ≤0 selects flat.
	// Bit-identical either way (see Options.Shards).
	Shards int
	// ShardWorkers bounds per-shard generation parallelism when Shards ≥ 1.
	// For remote shards it is the sampling parallelism requested on each
	// worker (0 = the worker process's own default).
	ShardWorkers int
	// RemoteWorkers lists imworker addresses ("host:port" TCP or
	// "unix:/path"); non-empty keeps the RR stream in a remote-sharded
	// store, one shard per worker process, overriding Shards. Workers open
	// the same graph (a mapped .sasg shares pages across every worker on a
	// host) and must be started with a node count matching this session's
	// graph. Results are bit-identical to every in-process topology; an
	// unreachable worker surfaces from Maximize as an error wrapping
	// ErrShardUnreachable after the client's reconnect budget is spent.
	RemoteWorkers []string
	// RemoteTimeout bounds one worker RPC exchange (including the sampling
	// a top-up triggers worker-side); 0 selects a generous default.
	RemoteTimeout time.Duration
	// SpillBudgetBytes > 0 enables the store's disk spill tier: whenever a
	// top-up leaves more than this many resident RR bytes, the coldest
	// arena extents and CSR index blocks are spilled to disk and served
	// from a read-only mapping. Results stay bit-identical at every budget;
	// only residency moves. See ris.StoreOptions.SpillBudgetBytes.
	SpillBudgetBytes int64
	// SpillDir is where spill files are created ("" ⇒ the OS temp dir).
	SpillDir string
	// StateDir, when non-empty, makes the session durable: NewSession
	// recovers the RR store from the directory's committed snapshot (if its
	// seed, kernel, model and shard topology match — verified, with
	// corrupted block suffixes discarded and resampled deterministically),
	// and Session.Persist writes crash-safe snapshots back. Recovery is
	// best-effort: a missing, mismatched or unreadable snapshot simply
	// starts the session cold; it never blocks serving. Results are
	// bit-identical either way — a recovered store holds exactly the sets a
	// cold one would regenerate.
	StateDir string
	// Kernel selects the RR sampling implementation (see Options.Kernel).
	Kernel Kernel
	// Weights, when non-nil, makes this a weighted (targeted viral
	// marketing) session: roots are drawn proportionally to Weights[v] ≥ 0
	// and results estimate benefit B(S) instead of influence. Must have one
	// entry per node with a positive sum.
	Weights []float64
}

// Query is one influence-maximization request against a Session.
type Query struct {
	// Algorithm must be DSSA (default when empty) or SSA — the two
	// stop-and-stare loops share the session's stream.
	Algorithm Algorithm
	// K is the seed budget (required, 1 ≤ K ≤ n).
	K int
	// Epsilon is the approximation slack; 0 ⇒ 0.1 (the paper's setting).
	Epsilon float64
	// Delta is the failure probability; 0 ⇒ 1/n.
	Delta float64
	// Eps1, Eps2, Eps3 optionally fix SSA's ε-split (see Options).
	Eps1, Eps2, Eps3 float64
	// OnCheckpoint, when non-nil, observes every stop-and-stare checkpoint.
	OnCheckpoint func(Checkpoint)
}

// SessionStats is a point-in-time snapshot of a session's resident state,
// with plan and store memory reported separately: the plan is shared
// process-wide per (graph, model), so summing Stats().PlanBytes across
// sessions on one graph would double-count, while StoreBytes is genuinely
// per-session.
type SessionStats struct {
	// Queries is the number of Maximize calls served.
	Queries int64
	// Growths is the number of write-locked store top-ups taken: how many
	// times a query found the stream too short and generated RR sets. The
	// serving layer's request coalescing is pinned against this counter —
	// N concurrent identical queries must grow the store exactly as often
	// as one query alone.
	Growths int64
	// Samples is the number of RR sets resident in the store.
	Samples int
	// Items is the total number of node entries across resident RR sets.
	Items int64
	// StoreBytes approximates the store's own RESIDENT memory: arena,
	// offset tables and CSR index blocks held on the heap — excluding the
	// shared plan and excluding data spilled to disk.
	StoreBytes int64
	// StoreSpilledBytes is RR data tiered onto the session's spill file and
	// served through a read-only mapping (0 without a spill budget).
	StoreSpilledBytes int64
	// SpillFileBytes is the spill file's on-disk size, headers and
	// alignment padding included (the spill-tier overhead is the difference
	// from StoreSpilledBytes).
	SpillFileBytes int64
	// PlanBytes is the compiled sampling plan's memory (0 if the session's
	// kernel never forced a compile). Shared per (graph, model).
	PlanBytes int64
	// GraphResidentBytes is the graph arrays' private heap footprint — the
	// whole graph for built/loaded graphs, 0 for mmap-ed ones. Like
	// PlanBytes it is shared by every session on the same graph object, so
	// summing it across such sessions double-counts.
	GraphResidentBytes int64
	// GraphMappedBytes is the portion of the graph aliasing a read-only
	// file mapping (graphs opened with OpenGraphMapped): paged in on
	// demand and shared across every process serving the same file, so it
	// is reported separately from resident memory.
	GraphMappedBytes int64
	// Solvers is the number of cached per-k incremental solvers.
	Solvers int
	// Recovered is the number of RR sets restored from a StateDir snapshot
	// when the session was built (0 for cold starts and non-durable
	// sessions). Those sets were not resampled: a recovered session's
	// time-to-first-answer is what this bought.
	Recovered int
	// SnapshotBytes is the size of the session's current snapshot file —
	// the one recovered from at build, replaced by each successful Persist
	// (0 when neither happened).
	SnapshotBytes int64
}

// NewSession builds a serving session for (g, model). The heavy pieces are
// lazy: the plan compiles (once per graph and model, process-wide) on first
// sampling, and the store grows on first query.
func NewSession(g *Graph, model Model, opt SessionOptions) (*Session, error) {
	if g == nil {
		return nil, fmt.Errorf("stopandstare: nil graph")
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	var (
		sampler *ris.Sampler
		inst    *tvm.Instance
		err     error
	)
	if opt.Weights != nil {
		if inst, err = tvm.NewInstance(g, opt.Weights); err != nil {
			return nil, err
		}
		if sampler, err = inst.Sampler(model); err != nil {
			return nil, err
		}
	} else if sampler, err = ris.NewSampler(g, model); err != nil {
		return nil, err
	}
	sampler = sampler.WithKernel(opt.Kernel)
	sopt := ris.StoreOptions{
		Workers: opt.Workers, Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
		RemoteWorkers: opt.RemoteWorkers, RemoteTimeout: opt.RemoteTimeout,
		SpillBudgetBytes: opt.SpillBudgetBytes, SpillDir: opt.SpillDir,
	}
	s := &Session{
		opt:     opt,
		g:       g,
		sampler: sampler,
		inst:    inst,
		solvers: make(map[int]*kSolver),
	}
	if opt.StateDir != "" {
		// Best-effort recovery: a committed, matching snapshot warms the
		// store (corrupt suffixes are discarded and resampled inside
		// Recover); anything else — no snapshot, wrong topology, corrupt
		// beyond the store header — starts cold. Either way the session is
		// usable, and bit-identical to a cold one at every query.
		if st, info, err := ris.Recover(sampler, opt.Seed, sopt, opt.StateDir); err == nil {
			s.store = st
			s.recovered = info.Sets
			s.snapshotBytes.Store(info.SnapshotBytes)
		}
	}
	if s.store == nil {
		s.store = ris.NewStore(sampler, opt.Seed, sopt)
	}
	s.marks.New = func() any { return new(epoch.Marks) }
	return s, nil
}

// Persist writes a crash-safe snapshot of the session's RR store into the
// session's StateDir and commits it atomically (snapshot file fsynced, then
// the manifest renamed over the previous one — a crash at any point leaves
// either the old or the new snapshot committed, never a torn mix). It takes
// the session write lock, so it serializes with store growth but not with
// serving reads. Sessions without a StateDir return ris.ErrNoSnapshot.
func (s *Session) Persist() (ris.SnapshotInfo, error) {
	if s.opt.StateDir == "" {
		return ris.SnapshotInfo{}, ris.ErrNoSnapshot
	}
	ps, ok := s.store.(ris.PersistentStore)
	if !ok {
		return ris.SnapshotInfo{}, fmt.Errorf("stopandstare: store is not persistent")
	}
	if err := os.MkdirAll(s.opt.StateDir, 0o755); err != nil {
		return ris.SnapshotInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info, err := ps.Persist(s.opt.StateDir)
	if err == nil {
		s.snapshotBytes.Store(info.Bytes)
	}
	return info, err
}

// Maximize serves one query from the session's stream. Repeated or refined
// queries (same k, larger k, tighter ε, other algorithm) pay only for the
// stream suffix beyond what previous queries already generated — often
// nothing — and return exactly what a cold Maximize with the same seed
// would.
func (s *Session) Maximize(q Query) (res *Result, err error) {
	return s.maximize(context.Background(), q)
}

// MaximizeContext is Maximize with cooperative cancellation: when ctx fires
// while the query is growing the RR store, the top-up aborts having mutated
// NOTHING — the stream, index and width stay exactly as before, so an
// abandoned query leaves no partial growth behind and the next identical
// query regenerates the same bit-identical sets. Read-only phases
// (selection, coverage walks) run to completion; cancellation is honoured
// at the growth boundaries, where all the unbounded work happens.
func (s *Session) MaximizeContext(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.maximize(ctx, q)
}

// growthCanceled carries a context error out of sessionEnv.Ensure (the
// error-free core.Exec surface) to maximize's recover, mirroring how
// *ris.ShardError escapes the error-free Store interface.
type growthCanceled struct{ err error }

func (s *Session) maximize(ctx context.Context, q Query) (res *Result, err error) {
	// The Store interface is error-free, so a remote-sharded store raises
	// worker failures as *ris.ShardError panics; this is the surface that
	// turns them back into ordinary errors (degraded mode: the session
	// stays usable and retries once workers return). Canceled growths
	// arrive the same way, as *growthCanceled. Lock discipline is
	// panic-safe below here — core brackets store reads with deferred
	// releases — so no session lock is held when we land in this recover.
	defer func() {
		if p := recover(); p != nil {
			switch v := p.(type) {
			case *ris.ShardError:
				res, err = nil, v
			case *growthCanceled:
				res, err = nil, v.err
			default:
				panic(p)
			}
		}
	}()
	algo := q.Algorithm
	if algo == "" {
		algo = DSSA
	}
	if algo != SSA && algo != DSSA {
		return nil, fmt.Errorf("stopandstare: session queries support ssa/dssa, not %q", algo)
	}
	if q.Epsilon == 0 {
		q.Epsilon = 0.1
	}
	copt := core.Options{
		K: q.K, Epsilon: q.Epsilon, Delta: q.Delta,
		Seed: s.opt.Seed, Workers: s.opt.Workers,
		Kernel: s.opt.Kernel,
		Eps1:   q.Eps1, Eps2: q.Eps2, Eps3: q.Eps3,
		Trace: q.OnCheckpoint,
	}
	if s.inst != nil && q.K >= 1 {
		copt.OptLowerBound = s.inst.OptLowerBound(q.K)
	}
	env := sessionEnv{s: s, ctx: ctx}
	var cres *core.Result
	if algo == DSSA {
		cres, err = core.DSSAWith(copt, env)
	} else {
		cres, err = core.SSAWith(copt, env)
	}
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	return &Result{Seeds: cres.Seeds, InfluenceEstimate: cres.Influence,
		Samples: cres.TotalSamples, Iterations: cres.Iterations, HitCap: cres.HitCap,
		MemoryBytes: cres.MemoryBytes, Elapsed: cres.Elapsed, Warm: !cres.Grew}, nil
}

// Gamma returns Σ_v b(v) for weighted sessions (0 for classic IM sessions):
// the maximum attainable benefit, and the scale of InfluenceEstimate.
func (s *Session) Gamma() float64 {
	if s.inst == nil {
		return 0
	}
	return s.inst.Gamma
}

// Stats snapshots the session's resident state. Safe to call concurrently
// with queries.
func (s *Session) Stats() SessionStats {
	s.mu.RLock()
	samples := s.store.Len()
	items := s.store.Items()
	// Plan bytes are read BEFORE the store total inside the same read-lock
	// section: PlanBytes is monotone (0 → compiled size, once), so total —
	// which re-reads it inside Store.Bytes — can only see a value ≥ plan,
	// keeping StoreBytes = total − plan non-negative even if another
	// sampler on the same graph compiles the plan mid-snapshot.
	plan := s.sampler.PlanBytes()
	total := s.store.Bytes()
	var spill ris.SpillStats
	if ss, ok := s.store.(ris.SpilledStore); ok {
		spill = ss.SpillStats()
	}
	s.mu.RUnlock()
	s.solMu.Lock()
	nsolv := len(s.solvers)
	s.solMu.Unlock()
	return SessionStats{
		Queries:            s.queries.Load(),
		Growths:            s.growths.Load(),
		Samples:            samples,
		Items:              items,
		StoreBytes:         total - plan, // Store.Bytes includes the shared plan
		StoreSpilledBytes:  spill.SpilledBytes,
		SpillFileBytes:     spill.FileBytes,
		PlanBytes:          plan,
		GraphResidentBytes: s.g.ResidentBytes(),
		GraphMappedBytes:   s.g.MappedBytes(),
		Solvers:            nsolv,
		Recovered:          s.recovered,
		SnapshotBytes:      s.snapshotBytes.Load(),
	}
}

// SpillTo spills the store's coldest units until its resident RR bytes drop
// to budget (0 spills everything spillable), taking the session write lock
// for the move. It returns the resident bytes freed; (0, nil) when the
// session has no spill tier. The serving manager uses this as
// spill-before-evict: a tenant over the byte budget sheds residency without
// losing its warm store. Results of subsequent queries are unchanged —
// spilling only moves bytes.
func (s *Session) SpillTo(budget int64) (int64, error) {
	ss, ok := s.store.(ris.SpilledStore)
	if !ok {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ss.SpillStats().Enabled {
		return 0, nil
	}
	before := s.store.Bytes()
	err := ss.SpillTo(budget)
	freed := before - s.store.Bytes()
	if freed < 0 {
		freed = 0
	}
	return freed, err
}

// solverFor returns the per-k solver slot, creating it on first use and
// evicting the least recently used k beyond sessionSolverLimit.
func (s *Session) solverFor(k int) *kSolver {
	s.solMu.Lock()
	defer s.solMu.Unlock()
	ks, ok := s.solvers[k]
	if ok {
		for i, kk := range s.solverLRU {
			if kk == k {
				s.solverLRU = append(append(s.solverLRU[:i], s.solverLRU[i+1:]...), k)
				break
			}
		}
		return ks
	}
	ks = &kSolver{sol: maxcover.NewSolver(s.store)}
	s.solvers[k] = ks
	s.solverLRU = append(s.solverLRU, k)
	if len(s.solverLRU) > sessionSolverLimit {
		delete(s.solvers, s.solverLRU[0])
		s.solverLRU = s.solverLRU[1:]
	}
	return ks
}

// DropCachedPlans evicts g's compiled sampling plans from the process-wide
// plan cache, releasing the graph key. Live sessions and samplers keep the
// plans they already hold; only future compilations are affected. Call this
// when a serving process retires a graph.
func DropCachedPlans(g *Graph) { ris.DropCachedPlans(g) }

// sessionEnv adapts a Session to core.Exec: read-only query phases share
// the session's read lock, store top-ups take the write lock (honouring the
// query's context), solves go through the per-k solver cache, and coverage
// walks use pooled scratch so concurrent queries never share mutable state.
type sessionEnv struct {
	s   *Session
	ctx context.Context
}

func (e sessionEnv) Store() ris.Store { return e.s.store }

func (e sessionEnv) Ensure(target int) bool {
	s := e.s
	s.mu.RLock()
	ok := s.store.Len() >= target
	s.mu.RUnlock()
	if ok {
		return false
	}
	var grew bool
	func() {
		s.mu.Lock()
		// Deferred so a remote shard's failure panic (*ris.ShardError) or a
		// canceled growth (*growthCanceled, raised below) cannot leak the
		// write lock on its way to maximize's recover.
		defer s.mu.Unlock()
		grew = s.store.Len() < target // another query may have topped up first
		if cs, ok := s.store.(ris.ContextStore); ok {
			if err := cs.GenerateToCtx(e.ctx, target); err != nil {
				grew = false // canceled top-ups mutate nothing
				panic(&growthCanceled{err: err})
			}
		} else {
			s.store.GenerateTo(target)
		}
	}()
	if grew {
		s.growths.Add(1)
	}
	return grew
}

func (e sessionEnv) Acquire() { e.s.mu.RLock() }
func (e sessionEnv) Release() { e.s.mu.RUnlock() }

func (e sessionEnv) Solve(upto, k int) maxcover.Result {
	ks := e.s.solverFor(k)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if upto < ks.sol.Scanned() {
		// A fresh query's schedule restarts below the scanned prefix.
		// Replace the solver rather than letting every checkpoint fall back
		// to a from-scratch solve: the checkpoints of this query then fold
		// the stream in incrementally, one scan total. Results are
		// unchanged either way (Solve ≡ Greedy at any upto).
		ks.sol = maxcover.NewSolver(e.s.store)
	}
	return ks.sol.Solve(upto, k)
}

func (e sessionEnv) Coverage(seeds []uint32, from, to int) int64 {
	m := e.s.marks.Get().(*epoch.Marks)
	defer e.s.marks.Put(m) // returned to the pool even if a remote shard panics
	return ris.CoverageRangeSeedsMarks(e.s.store, m, seeds, from, to)
}
