package stopandstare_test

import (
	"path/filepath"
	"slices"
	"testing"

	"stopandstare"
)

// The serving-layer view of the out-of-core refactor: a Session on a graph
// opened from its .sasg mapping must answer queries bit-identically to a
// Session on the heap original, and Stats must report the graph's bytes on
// the correct side of the resident/mapped split.

func mappedSessionTwin(t *testing.T, g *stopandstare.Graph) *stopandstare.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "twin.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := stopandstare.OpenGraphMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stopandstare.DropCachedPlans(m)
		if err := m.Close(); err != nil {
			t.Errorf("closing mapped graph: %v", err)
		}
	})
	return m
}

func TestSessionMappedGraph(t *testing.T) {
	heap, err := stopandstare.GeneratePowerLaw(400, 2200, 2.1, 654)
	if err != nil {
		t.Fatal(err)
	}
	defer stopandstare.DropCachedPlans(heap)
	mapped := mappedSessionTwin(t, heap)

	newSess := func(g *stopandstare.Graph) *stopandstare.Session {
		sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{Seed: 5, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	hs, ms := newSess(heap), newSess(mapped)

	// Same query stream on both backends: bit-identical answers.
	for _, q := range []stopandstare.Query{
		{K: 4, Epsilon: 0.3},
		{K: 9, Epsilon: 0.3},
		{K: 4, Epsilon: 0.3}, // warm repeat
	} {
		hr, err := hs.Maximize(q)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := ms.Maximize(q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(hr.Seeds, mr.Seeds) {
			t.Fatalf("k=%d: mapped seeds %v, heap seeds %v", q.K, mr.Seeds, hr.Seeds)
		}
		if hr.InfluenceEstimate != mr.InfluenceEstimate || hr.Samples != mr.Samples {
			t.Fatalf("k=%d: mapped influence/samples %v/%d, heap %v/%d",
				q.K, mr.InfluenceEstimate, mr.Samples, hr.InfluenceEstimate, hr.Samples)
		}
	}

	// Accounting split: the heap session charges the graph to resident
	// bytes, the mapped session to mapped bytes (on platforms with real
	// mmap; the fallback honestly reports resident).
	hst, mst := hs.Stats(), ms.Stats()
	if hst.GraphResidentBytes != heap.Bytes() || hst.GraphMappedBytes != 0 {
		t.Fatalf("heap session graph bytes resident=%d mapped=%d, want %d/0",
			hst.GraphResidentBytes, hst.GraphMappedBytes, heap.Bytes())
	}
	if mapped.Mapped() {
		if mst.GraphMappedBytes != mapped.Bytes() || mst.GraphResidentBytes != 0 {
			t.Fatalf("mapped session graph bytes resident=%d mapped=%d, want 0/%d",
				mst.GraphResidentBytes, mst.GraphMappedBytes, mapped.Bytes())
		}
	} else if mst.GraphResidentBytes <= 0 {
		t.Fatalf("fallback session reports no graph bytes: %+v", mst)
	}
}
