package stopandstare

import (
	"fmt"
	"time"

	"stopandstare/internal/baselines"
	"stopandstare/internal/gen"
	"stopandstare/internal/tvm"
)

// Topic is a synthetic targeted group with per-user benefit weights,
// mirroring the paper's Table 4 tweet-derived topics.
type Topic = gen.Topic

// GenerateTopics synthesises the paper's two Table 4 topics over g:
// keyword-based targeted groups with Zipf-skewed relevance weights.
func GenerateTopics(g *Graph, seed uint64) ([]*Topic, error) {
	return gen.GenerateDefaultTopics(g, seed)
}

// TVMResult reports a targeted viral marketing run.
type TVMResult struct {
	// Seeds is the selected seed set.
	Seeds []uint32
	// BenefitEstimate estimates B(Ŝ_k) = Σ_v b(v)·Pr[v activated].
	BenefitEstimate float64
	// Gamma is Σ_v b(v), the maximum attainable benefit.
	Gamma float64
	// Samples is the number of weighted RR sets generated.
	Samples int64
	// Elapsed is the algorithm's wall-clock time.
	Elapsed time.Duration
}

// MaximizeTargeted solves the TVM problem: find k seeds maximising the
// total benefit over the targeted group described by weights (b(v) ≥ 0,
// b(v) = 0 outside the group). Supported algorithms: DSSA, SSA (this
// paper), and TIMPlus (= KB-TIM, the prior state of the art).
func MaximizeTargeted(g *Graph, model Model, weights []float64, algo Algorithm, opt Options) (*TVMResult, error) {
	inst, err := tvm.NewInstance(g, weights)
	if err != nil {
		return nil, err
	}
	opt = opt.fill()
	switch algo {
	case DSSA, SSA:
		// One-shot weighted session: same machinery as the serving path.
		sess, err := NewSession(g, model, SessionOptions{
			Seed: opt.Seed, Workers: opt.Workers,
			Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
			Kernel: opt.Kernel, Weights: weights,
		})
		if err != nil {
			return nil, err
		}
		res, err := sess.Maximize(Query{Algorithm: algo, K: opt.K,
			Epsilon: opt.Epsilon, Delta: opt.Delta})
		if err != nil {
			return nil, err
		}
		return &TVMResult{Seeds: res.Seeds, BenefitEstimate: res.InfluenceEstimate,
			Gamma: inst.Gamma, Samples: res.Samples, Elapsed: res.Elapsed}, nil
	case TIMPlus:
		res, err := tvm.KBTIM(inst, model, baselines.Options{K: opt.K,
			Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
			Shards: opt.Shards, ShardWorkers: opt.ShardWorkers, Kernel: opt.Kernel})
		if err != nil {
			return nil, err
		}
		return &TVMResult{Seeds: res.Seeds, BenefitEstimate: res.Influence,
			Gamma: inst.Gamma, Samples: res.TotalSamples, Elapsed: res.Elapsed}, nil
	default:
		return nil, fmt.Errorf("stopandstare: algorithm %q does not support TVM (use dssa, ssa, or tim+)", algo)
	}
}

// BudgetedOptions configures MaximizeBudgeted (cost-aware TVM — the BCT
// problem of the authors' INFOCOM'16 companion, reference [12] of the
// paper).
type BudgetedOptions struct {
	// Budget is the total allowed spend Σ cost(v).
	Budget float64
	// Costs[v] is the price of seeding v; entries ≤ 0 default to 1.
	Costs []float64
	// Epsilon/Delta/Seed/Workers as in Options.
	Epsilon float64
	Delta   float64
	Seed    uint64
	Workers int
	// Shards/ShardWorkers select the id-sharded RR store, as in Options.
	Shards       int
	ShardWorkers int
	// Kernel selects the RR sampling implementation, as in Options.
	Kernel Kernel
}

// BudgetedTVMResult reports a cost-aware targeted run.
type BudgetedTVMResult struct {
	Seeds           []uint32
	BenefitEstimate float64
	// Budget is the spending cap this solution was computed under (one
	// entry of the sweep for MaximizeBudgetedSweep).
	Budget  float64
	Cost    float64
	Samples int64
	Elapsed time.Duration
}

// MaximizeBudgeted solves cost-aware TVM: maximise the targeted benefit
// subject to a seeding budget, using WRIS sampling and the
// Khuller–Moss–Naor ratio greedy ((1−1/√e)-approximate selection over the
// sampled coverage instance).
func MaximizeBudgeted(g *Graph, model Model, weights []float64, opt BudgetedOptions) (*BudgetedTVMResult, error) {
	inst, err := tvm.NewInstance(g, weights)
	if err != nil {
		return nil, err
	}
	res, err := tvm.BudgetedMaximize(inst, model, tvm.BudgetedOptions{
		Budget: opt.Budget, Costs: opt.Costs, Epsilon: opt.Epsilon,
		Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
		Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
		Kernel: opt.Kernel,
	})
	if err != nil {
		return nil, err
	}
	return &BudgetedTVMResult{Seeds: res.Seeds, BenefitEstimate: res.Benefit,
		Budget: res.Budget, Cost: res.Cost, Samples: res.Samples,
		Elapsed: res.Elapsed}, nil
}

// MaximizeBudgetedSweep solves cost-aware TVM for every budget in the list
// against one shared WRIS sample collection: the RR stream is generated and
// scanned once (sized for the largest budget), and each budget is then an
// incremental selection pass — each result is identical to running
// MaximizeBudgeted on that collection, at a fraction of the cost of N
// separate runs. Budgets may be in any order; results come back in input
// order.
func MaximizeBudgetedSweep(g *Graph, model Model, weights []float64, budgets []float64, opt BudgetedOptions) ([]*BudgetedTVMResult, error) {
	inst, err := tvm.NewInstance(g, weights)
	if err != nil {
		return nil, err
	}
	sweep, err := tvm.BudgetedSweep(inst, model, budgets, tvm.BudgetedOptions{
		Costs: opt.Costs, Epsilon: opt.Epsilon,
		Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
		Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
		Kernel: opt.Kernel,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*BudgetedTVMResult, len(sweep))
	for i, res := range sweep {
		out[i] = &BudgetedTVMResult{Seeds: res.Seeds, BenefitEstimate: res.Benefit,
			Budget: res.Budget, Cost: res.Cost, Samples: res.Samples,
			Elapsed: res.Elapsed}
	}
	return out, nil
}

// EvaluateBenefit scores a seed set on the TVM objective by weighted
// forward Monte-Carlo simulation.
func EvaluateBenefit(g *Graph, model Model, weights []float64, seeds []uint32, runs int, seed uint64, workers int) (mean, stderr float64, err error) {
	inst, err := tvm.NewInstance(g, weights)
	if err != nil {
		return 0, 0, err
	}
	return inst.Benefit(model, seeds, runs, seed, workers)
}
