// Command imtvm runs the targeted viral marketing pipeline (§7.3 of the
// paper): synthesise (or load) topic weights over a graph, then solve TVM
// with D-SSA/SSA/KB-TIM — optionally under a seeding budget with per-node
// costs (the cost-aware extension).
//
//	imtvm -graph twitter.ssg -algo dssa -k 100
//	imtvm -graph twitter.ssg -algo dssa -budget 250 -cost-exponent 0.5
//	imtvm -graph twitter.ssg -budgets 50,100,200,400
//	imtvm -graph twitter.ssg -weights weights.txt -algo tim+ -k 100
//
// -budgets sweeps several spending caps over one shared sample collection
// (one RR stream scan for the whole sweep instead of one per budget).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"stopandstare"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file, .ssg binary or mmap-able .sasg (required)")
		weightsF = flag.String("weights", "", "optional 'node weight' file; default synthesises topic 1")
		topicIdx = flag.Int("topic", 1, "synthetic topic number (1 or 2) when -weights is absent")
		algo     = flag.String("algo", "dssa", "dssa, ssa, or tim+ (KB-TIM)")
		k        = flag.Int("k", 50, "seed budget (cardinality mode)")
		budget   = flag.Float64("budget", 0, "if > 0, run cost-aware mode with this budget")
		budgets  = flag.String("budgets", "", "comma-separated budget sweep (cost-aware, one sample collection)")
		costExp  = flag.Float64("cost-exponent", 0.5, "cost-aware: cost(v) = (1+outdeg(v))^exp")
		model    = flag.String("model", "LT", "IC or LT")
		eps      = flag.Float64("eps", 0.1, "epsilon")
		delta    = flag.Float64("delta", 0, "delta (0 = 1/n)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		shards   = flag.Int("shards", 0, "RR-store shards (>=1 = id-sharded store; results identical)")
		shardW   = flag.Int("shard-workers", 0, "per-shard workers (0 = workers/shards)")
		kernel   = flag.String("kernel", "plan", "RR sampling kernel: plan (compiled) or oracle (Bernoulli reference)")
		eval     = flag.Int("eval", 5000, "MC runs to score the result (0 to skip)")
	)
	flag.Parse()
	if *path == "" {
		fail("missing -graph")
	}
	g, err := stopandstare.OpenGraphFile(*path)
	if err != nil {
		fail("load: %v", err)
	}
	mdl, err := stopandstare.ParseModel(*model)
	if err != nil {
		fail("%v", err)
	}
	krn, err := stopandstare.ParseKernel(*kernel)
	if err != nil {
		fail("%v", err)
	}

	var weights []float64
	switch {
	case *weightsF != "":
		weights, err = loadWeights(*weightsF, g.NumNodes())
		if err != nil {
			fail("weights: %v", err)
		}
	default:
		topics, err := stopandstare.GenerateTopics(g, *seed+1000)
		if err != nil {
			fail("topics: %v", err)
		}
		if *topicIdx < 1 || *topicIdx > len(topics) {
			fail("topic %d out of range", *topicIdx)
		}
		tp := topics[*topicIdx-1]
		weights = tp.Weights
		fmt.Printf("synthetic topic %d (%s): %d targeted users, gamma %.0f\n",
			*topicIdx, tp.Name, tp.Users, tp.Gamma)
	}

	if *budgets != "" {
		var sweep []float64
		for _, f := range strings.Split(*budgets, ",") {
			b, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fail("bad -budgets entry %q: %v", f, err)
			}
			sweep = append(sweep, b)
		}
		costs := degreeCosts(g, *costExp)
		results, err := stopandstare.MaximizeBudgetedSweep(g, mdl, weights, sweep, stopandstare.BudgetedOptions{
			Costs: costs, Epsilon: *eps, Delta: *delta, Seed: *seed, Workers: *workers,
			Shards: *shards, ShardWorkers: *shardW, Kernel: krn,
		})
		if err != nil {
			fail("budget sweep: %v", err)
		}
		for _, res := range results {
			fmt.Printf("budget %.1f: %d seeds, cost %.1f, est. benefit %.1f, %d RR sets (shared), %v\n",
				res.Budget, len(res.Seeds), res.Cost, res.BenefitEstimate, res.Samples, res.Elapsed)
		}
		return
	}

	if *budget > 0 {
		costs := degreeCosts(g, *costExp)
		res, err := stopandstare.MaximizeBudgeted(g, mdl, weights, stopandstare.BudgetedOptions{
			Budget: *budget, Costs: costs, Epsilon: *eps, Delta: *delta,
			Seed: *seed, Workers: *workers, Shards: *shards, ShardWorkers: *shardW,
			Kernel: krn,
		})
		if err != nil {
			fail("budgeted maximize: %v", err)
		}
		fmt.Printf("cost-aware: %d seeds, cost %.1f of %.1f, est. benefit %.1f, %d RR sets, %v\n",
			len(res.Seeds), res.Cost, *budget, res.BenefitEstimate, res.Samples, res.Elapsed)
		report(g, mdl, weights, res.Seeds, *eval, *seed, *workers)
		return
	}

	al, err := stopandstare.ParseAlgorithm(*algo)
	if err != nil {
		fail("%v", err)
	}
	res, err := stopandstare.MaximizeTargeted(g, mdl, weights, al, stopandstare.Options{
		K: *k, Epsilon: *eps, Delta: *delta, Seed: *seed, Workers: *workers,
		Shards: *shards, ShardWorkers: *shardW, Kernel: krn,
	})
	if err != nil {
		fail("maximize: %v", err)
	}
	fmt.Printf("%s: k=%d, est. benefit %.1f of gamma %.0f, %d RR sets, %v\n",
		al, *k, res.BenefitEstimate, res.Gamma, res.Samples, res.Elapsed)
	report(g, mdl, weights, res.Seeds, *eval, *seed, *workers)
}

// degreeCosts builds the cost model cost(v) = (1+outdeg(v))^exp.
func degreeCosts(g *stopandstare.Graph, exp float64) []float64 {
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = math.Pow(1+float64(g.OutDegree(uint32(v))), exp)
	}
	return costs
}

func report(g *stopandstare.Graph, mdl stopandstare.Model, weights []float64, seeds []uint32, eval int, seed uint64, workers int) {
	if eval > 0 {
		b, se, err := stopandstare.EvaluateBenefit(g, mdl, weights, seeds, eval, seed+2, workers)
		if err != nil {
			fail("eval: %v", err)
		}
		fmt.Printf("benefit (MC, %d runs): %.1f ± %.1f\n", eval, b, se)
	}
	fmt.Printf("seeds: ")
	for i, s := range seeds {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(s)
	}
	fmt.Println()
}

func loadWeights(path string, n int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	weights := make([]float64, n)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'node weight'", line)
		}
		v, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if int(v) >= n {
			return nil, fmt.Errorf("line %d: node %d out of range (n=%d)", line, v, n)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		weights[v] = w
	}
	return weights, sc.Err()
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imtvm: "+format+"\n", args...)
	os.Exit(1)
}
