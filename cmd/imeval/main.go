// Command imeval scores a seed set on a graph by forward Monte-Carlo
// simulation — the evaluation step behind the paper's Figures 2–3.
//
//	imeval -graph nethept.ssg -model LT -seeds "12 99 1043" -runs 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"stopandstare"
)

func main() {
	var (
		path    = flag.String("graph", "", "graph file, .ssg binary or mmap-able .sasg (required)")
		model   = flag.String("model", "LT", "propagation model: IC or LT")
		seedStr = flag.String("seeds", "", "whitespace-separated seed node ids (required)")
		runs    = flag.Int("runs", 10000, "Monte-Carlo simulations")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel workers")
	)
	flag.Parse()
	if *path == "" || *seedStr == "" {
		fmt.Fprintln(os.Stderr, "imeval: need -graph and -seeds")
		os.Exit(1)
	}
	g, err := stopandstare.OpenGraphFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imeval: load: %v\n", err)
		os.Exit(1)
	}
	mdl, err := stopandstare.ParseModel(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
		os.Exit(1)
	}
	var seeds []uint32
	for _, f := range strings.Fields(*seedStr) {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imeval: bad seed id %q: %v\n", f, err)
			os.Exit(1)
		}
		seeds = append(seeds, uint32(v))
	}
	mean, se, err := stopandstare.EvaluateSpread(g, mdl, seeds, *runs, *seed, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("spread: %.2f ± %.2f (%d runs, %s model, |S|=%d, n=%d)\n",
		mean, se, *runs, mdl, len(seeds), g.NumNodes())
}
