// Command imstats prints Table 2-style statistics for a graph file
// (binary .ssg or text edge list).
//
//	imstats -graph nethept.ssg
//	imstats -graph edges.txt -format text -directed
package main

import (
	"flag"
	"fmt"
	"os"

	"stopandstare/internal/graph"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (required)")
		format   = flag.String("format", "binary", "binary or text")
		directed = flag.Bool("directed", true, "text edge lists: one arc per line")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "imstats: missing -graph")
		os.Exit(1)
	}
	var g *graph.Graph
	var err error
	switch *format {
	case "binary":
		g, err = graph.LoadBinaryFile(*path)
	case "text":
		g, err = graph.LoadEdgeListFile(*path, graph.LoadOptions{Directed: *directed, Relabel: true})
	default:
		err = fmt.Errorf("unknown -format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imstats: %v\n", err)
		os.Exit(1)
	}
	s := g.Stats()
	fmt.Printf("nodes:         %d\n", s.Nodes)
	fmt.Printf("edges:         %d\n", s.Edges)
	fmt.Printf("avg-degree:    %.2f\n", s.AvgOutDegree)
	fmt.Printf("max-out-deg:   %d\n", s.MaxOutDegree)
	fmt.Printf("max-in-deg:    %d\n", s.MaxInDegree)
	fmt.Printf("isolated:      %d\n", s.Isolated)
	fmt.Printf("max-in-weight: %.4f\n", s.MaxInWeight)
	fmt.Printf("lt-valid:      %v\n", s.LTValid)
	fmt.Printf("memory:        %.1f MB\n", float64(g.Bytes())/(1<<20))
}
