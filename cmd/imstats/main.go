// Command imstats prints Table 2-style statistics for a graph file
// (binary .ssg, mmap-able .sasg, or text edge list). With -rr it also
// samples that many RR sets into a store and reports the store's
// accounting, including the resident/spilled byte split when -spill-budget
// gives the store a disk spill tier.
//
// With -state-dir it reports the committed RR-store snapshot in a
// durability state directory (imserve tenant subdirectory or imworker
// state dir) instead of, or in addition to, the graph stats.
//
//	imstats -graph nethept.ssg
//	imstats -graph friendster.sasg
//	imstats -graph edges.txt -format text -directed
//	imstats -graph nethept.sasg -rr 200000 -spill-budget 16MiB
//	imstats -state-dir /var/lib/imserve/state/default
package main

import (
	"flag"
	"fmt"
	"os"

	"stopandstare/internal/cliutil"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (required)")
		format   = flag.String("format", "binary", "binary (.ssg/.sasg, sniffed) or text")
		directed = flag.Bool("directed", true, "text edge lists: one arc per line")

		rr          = flag.Int("rr", 0, "sample this many RR sets and report store accounting (0 = graph stats only)")
		model       = flag.String("model", "IC", "propagation model for -rr: IC or LT")
		seed        = flag.Uint64("seed", 1, "RR-stream seed for -rr")
		spillBudget = flag.String("spill-budget", "", "resident RR-byte budget for -rr, e.g. 16MiB; above it cold store blocks spill to disk (empty = no spill tier)")
		spillDir    = flag.String("spill-dir", "", "directory for -rr spill files (empty = OS temp dir)")
		stateDir    = flag.String("state-dir", "", "report the committed RR-store snapshot in this directory (generation, sets, bytes)")
	)
	flag.Parse()
	if *stateDir != "" {
		if err := snapshotStats(*stateDir); err != nil {
			fmt.Fprintf(os.Stderr, "imstats: %v\n", err)
			os.Exit(1)
		}
		if *path == "" {
			return
		}
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "imstats: missing -graph")
		os.Exit(1)
	}
	var g *graph.Graph
	var err error
	switch *format {
	case "binary":
		g, err = graph.OpenFileAuto(*path)
	case "text":
		g, err = graph.LoadEdgeListFile(*path, graph.LoadOptions{Directed: *directed, Relabel: true})
	default:
		err = fmt.Errorf("unknown -format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imstats: %v\n", err)
		os.Exit(1)
	}
	s := g.Stats()
	fmt.Printf("nodes:         %d\n", s.Nodes)
	fmt.Printf("edges:         %d\n", s.Edges)
	fmt.Printf("avg-degree:    %.2f\n", s.AvgOutDegree)
	fmt.Printf("max-out-deg:   %d\n", s.MaxOutDegree)
	fmt.Printf("max-in-deg:    %d\n", s.MaxInDegree)
	fmt.Printf("isolated:      %d\n", s.Isolated)
	fmt.Printf("max-in-weight: %.4f\n", s.MaxInWeight)
	fmt.Printf("lt-valid:      %v\n", s.LTValid)
	fmt.Printf("storage:       %s\n", g.View().Kind())
	fmt.Printf("memory:        %.1f MB (%.1f resident + %.1f mapped)\n",
		float64(g.Bytes())/(1<<20), float64(g.ResidentBytes())/(1<<20), float64(g.MappedBytes())/(1<<20))

	if *rr > 0 {
		if err := sampleStats(g, *rr, *model, *seed, *spillBudget, *spillDir); err != nil {
			fmt.Fprintf(os.Stderr, "imstats: %v\n", err)
			os.Exit(1)
		}
	}
}

// snapshotStats prints the committed snapshot manifest of a durability
// state directory (imserve's state-dir/<tenant>/ or imworker's -state-dir):
// what a recovery from it would start from, without opening or verifying
// the snapshot payload itself.
func snapshotStats(dir string) error {
	info, err := ris.ReadSnapshotInfo(dir)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot:      %s\n", info.Path)
	fmt.Printf("generation:    %d\n", info.Generation)
	fmt.Printf("snap-sets:     %d\n", info.Sets)
	fmt.Printf("snap-bytes:    %.1f MB\n", float64(info.Bytes)/(1<<20))
	return nil
}

// sampleStats generates rr RR sets into a store (spill-tiered when
// spillBudget is set) and prints its accounting — the resident/spilled
// split the serving budget decisions are based on.
func sampleStats(g *graph.Graph, rr int, model string, seed uint64, spillBudget, spillDir string) error {
	mdl, err := diffusion.ParseModel(model)
	if err != nil {
		return err
	}
	budget, err := cliutil.ParseSize(spillBudget)
	if err != nil {
		return err
	}
	s, err := ris.NewSampler(g, mdl)
	if err != nil {
		return err
	}
	st := ris.NewStore(s, seed, ris.StoreOptions{
		SpillBudgetBytes: budget, SpillDir: spillDir,
	})
	st.Generate(rr)
	fmt.Printf("rr-sets:       %d\n", st.Len())
	fmt.Printf("rr-items:      %d\n", st.Items())
	fmt.Printf("rr-resident:   %.1f MB\n", float64(st.Bytes())/(1<<20))
	if ss, ok := st.(ris.SpilledStore); ok {
		if sp := ss.SpillStats(); sp.Enabled {
			fmt.Printf("rr-spilled:    %.1f MB in %d blocks (budget %.1f MB)\n",
				float64(sp.SpilledBytes)/(1<<20), sp.Blocks, float64(sp.BudgetBytes)/(1<<20))
			fmt.Printf("spill-file:    %.1f MB\n", float64(sp.FileBytes)/(1<<20))
			if sp.Err != "" {
				fmt.Printf("spill-error:   %s\n", sp.Err)
			}
		}
	}
	return nil
}
