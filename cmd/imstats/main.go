// Command imstats prints Table 2-style statistics for a graph file
// (binary .ssg, mmap-able .sasg, or text edge list).
//
//	imstats -graph nethept.ssg
//	imstats -graph friendster.sasg
//	imstats -graph edges.txt -format text -directed
package main

import (
	"flag"
	"fmt"
	"os"

	"stopandstare/internal/graph"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (required)")
		format   = flag.String("format", "binary", "binary (.ssg/.sasg, sniffed) or text")
		directed = flag.Bool("directed", true, "text edge lists: one arc per line")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "imstats: missing -graph")
		os.Exit(1)
	}
	var g *graph.Graph
	var err error
	switch *format {
	case "binary":
		g, err = graph.OpenFileAuto(*path)
	case "text":
		g, err = graph.LoadEdgeListFile(*path, graph.LoadOptions{Directed: *directed, Relabel: true})
	default:
		err = fmt.Errorf("unknown -format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imstats: %v\n", err)
		os.Exit(1)
	}
	s := g.Stats()
	fmt.Printf("nodes:         %d\n", s.Nodes)
	fmt.Printf("edges:         %d\n", s.Edges)
	fmt.Printf("avg-degree:    %.2f\n", s.AvgOutDegree)
	fmt.Printf("max-out-deg:   %d\n", s.MaxOutDegree)
	fmt.Printf("max-in-deg:    %d\n", s.MaxInDegree)
	fmt.Printf("isolated:      %d\n", s.Isolated)
	fmt.Printf("max-in-weight: %.4f\n", s.MaxInWeight)
	fmt.Printf("lt-valid:      %v\n", s.LTValid)
	fmt.Printf("storage:       %s\n", g.View().Kind())
	fmt.Printf("memory:        %.1f MB (%.1f resident + %.1f mapped)\n",
		float64(g.Bytes())/(1<<20), float64(g.ResidentBytes())/(1<<20), float64(g.MappedBytes())/(1<<20))
}
