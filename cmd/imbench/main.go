// Command imbench regenerates the paper's evaluation artifacts (§7): every
// table and figure has a registered experiment id. Results print as aligned
// text tables with the paper's expected shape noted underneath.
//
//	imbench -exp all                # everything (long)
//	imbench -exp table3,fig8        # selected artifacts
//	imbench -exp fig4 -quick        # reduced sweep
//	imbench -list                   # show the registry
//	imbench -perf BENCH_PR2.json    # machine-readable hot-path perf report
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"stopandstare/internal/bench"
	"stopandstare/internal/ris"
)

func main() {
	var (
		exps     = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list     = flag.Bool("list", false, "list registered experiments")
		quick    = flag.Bool("quick", false, "reduced datasets and sweeps")
		eps      = flag.Float64("eps", 0.1, "epsilon for all algorithms")
		delta    = flag.Float64("delta", 0, "delta (0 = 1/n per dataset)")
		seed     = flag.Uint64("seed", 0, "base seed (0 = default)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		shards   = flag.Int("shards", 0, "RR-store shards (>=1 = id-sharded store; results identical)")
		shardW   = flag.Int("shard-workers", 0, "per-shard workers (0 = workers/shards)")
		kernel   = flag.String("kernel", "plan", "RR sampling kernel: plan (compiled) or oracle (Bernoulli reference)")
		graphF   = flag.String("graph", "", "run experiments on this graph file (.ssg or .sasg) instead of generated presets")
		scaleMul = flag.Float64("scale", 1.0, "multiplier on default dataset scales")
		mcRuns   = flag.Int("mc", 0, "MC runs for scoring seed sets (0 = default)")
		kList    = flag.String("k", "", "override k sweep, comma-separated")
		celf     = flag.Bool("celf", false, "include CELF++ on nethept sweeps (slow)")
		perf     = flag.String("perf", "", "write the hot-path perf suite as JSON to this path and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}
	if *perf != "" {
		if err := bench.WritePerfJSON(*perf, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("perf report written to %s\n", *perf)
		return
	}
	if *exps == "" {
		fmt.Fprintln(os.Stderr, "imbench: need -exp (or -list)")
		os.Exit(1)
	}
	krn, err := ris.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		os.Exit(1)
	}
	cfg := bench.Config{
		Epsilon: *eps, Delta: *delta, Seed: *seed, Workers: *workers,
		Shards: *shards, ShardWorkers: *shardW, Kernel: krn, GraphFile: *graphF,
		ScaleMul: *scaleMul, MCRuns: *mcRuns, Quick: *quick,
		IncludeCELF: *celf,
	}
	if *kList != "" {
		for _, f := range strings.Split(*kList, ",") {
			var k int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &k); err != nil {
				fmt.Fprintf(os.Stderr, "imbench: bad -k entry %q\n", f)
				os.Exit(1)
			}
			cfg.KValues = append(cfg.KValues, k)
		}
	}
	ids := strings.Split(*exps, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := bench.RunAll(ids, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		os.Exit(1)
	}
}
