// Command imserve exposes the multi-tenant serving layer over JSON/HTTP:
// one process holds many (graph, model) sessions under a global RR-store
// byte budget, coalesces concurrent identical queries into one execution,
// and sheds overload as 429/503 backpressure instead of queueing without
// bound. Repeated or refined queries on a tenant reuse every RR sample
// generated so far, so warm queries cost selection, not sampling.
//
//	imserve -graph nethept.sasg -model IC -addr :8377
//	imserve -preset nethept -scale 0.5 -model LT
//	imserve -tenants 'acme=acme.sasg,globex=globex.ssg' -budget 2GiB
//	imserve -graph nethept.sasg -workers 127.0.0.1:8378,127.0.0.1:8379
//
//	curl -s localhost:8377/maximize -d '{"k":50,"epsilon":0.1}'
//	curl -s localhost:8377/maximize -d '{"tenant":"acme","k":50}'
//	curl -s localhost:8377/stats
//
// Endpoints:
//
//	POST /maximize     {"tenant":"acme","k":50,"epsilon":0.1,"algorithm":"dssa","timeout_ms":5000}
//	GET  /stats        fleet snapshot: admission, coalescing and eviction counters plus per-tenant stores
//	GET  /healthz      liveness (200 whenever the process is up)
//	GET  /readyz       readiness (503 while recovering snapshots or while every remote worker is unreachable)
//	GET  /debug/pprof  profiling, only with -pprof
//
// Tenants named via -tenants open their graph files lazily on first
// query: a fleet of mapped .sasg tenants costs ~0 resident bytes until
// traffic arrives, and under -budget pressure cold tenants' RR stores are
// evicted (and rebuilt bit-identically on re-admission) while compiled
// sampling plans stay cached. With -spill-budget each session also gets a
// disk spill tier: under -budget pressure cold RR bytes move to spill
// files first, and eviction becomes the last resort.
//
// With -state-dir the RR stores are durable: each tenant snapshots into
// state-dir/<tenant>/ before budget evictions and on SIGTERM drain, and a
// restarted process recovers the snapshots (checksum-verified; corrupted
// suffixes resampled deterministically) instead of resampling from
// scratch, so warm answers survive restarts. Orphaned snapshot debris and
// stale -spill-dir files from a crashed predecessor are swept at startup.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests get up to -drain to finish, then sessions are snapshotted
// (-state-dir) and retired.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"stopandstare"
	"stopandstare/internal/cliutil"
	"stopandstare/internal/ris"
	"stopandstare/internal/serving"
)

// options collects the flag values; split from main so tests build the
// same stack without flags or sockets.
type options struct {
	graphPath     string
	preset        string
	scale         float64
	model         string
	seed          uint64
	workers       int
	shards        int
	remoteWorkers string // imworker addresses, "host:port,host:port"
	kernel        string

	tenants       string // extra tenants, "name=path,name=path"
	defaultTenant string
	budget        string
	spillBudget   string // per-session RR-store spill threshold
	spillDir      string
	stateDir      string // durable per-tenant RR-store snapshots
	inFlight      int
	queued        int
	timeout       time.Duration
	pprof         bool
}

// parseSize parses a byte count with an optional binary-unit suffix:
// "1048576", "64KiB", "512MiB", "2GiB". A bare number is bytes.
func parseSize(s string) (int64, error) { return cliutil.ParseSize(s) }

// parseWorkers splits a comma-separated imworker address list.
func parseWorkers(s string) []string {
	var addrs []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			addrs = append(addrs, part)
		}
	}
	return addrs
}

// tenantSpec is one -tenants entry: a named graph file, opened lazily.
type tenantSpec struct{ name, path string }

// parseTenants splits a "name=path,name=path" list.
func parseTenants(s string) ([]tenantSpec, error) {
	var specs []tenantSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, path, ok := strings.Cut(part, "=")
		name, path = strings.TrimSpace(name), strings.TrimSpace(path)
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name=path)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q", name)
		}
		seen[name] = true
		specs = append(specs, tenantSpec{name, path})
	}
	return specs, nil
}

// buildManager assembles the manager and server config from the options:
// the -graph/-preset pair becomes the "default" tenant, -tenants entries
// become lazy graph-file tenants.
func buildManager(o options) (*serving.Manager, serving.ServerConfig, error) {
	var scfg serving.ServerConfig
	mdl, err := stopandstare.ParseModel(o.model)
	if err != nil {
		return nil, scfg, err
	}
	krn, err := stopandstare.ParseKernel(o.kernel)
	if err != nil {
		return nil, scfg, err
	}
	budget, err := parseSize(o.budget)
	if err != nil {
		return nil, scfg, err
	}
	spillBudget, err := parseSize(o.spillBudget)
	if err != nil {
		return nil, scfg, err
	}
	specs, err := parseTenants(o.tenants)
	if err != nil {
		return nil, scfg, err
	}
	if o.graphPath == "" && o.preset == "" && len(specs) == 0 {
		return nil, scfg, fmt.Errorf("need -graph, -preset or -tenants")
	}
	sessOpts := stopandstare.SessionOptions{
		Seed: o.seed, Workers: o.workers, Shards: o.shards, Kernel: krn,
		RemoteWorkers:    parseWorkers(o.remoteWorkers),
		SpillBudgetBytes: spillBudget, SpillDir: o.spillDir,
	}

	mgr := serving.NewManager(serving.Config{
		BudgetBytes: budget,
		MaxInFlight: o.inFlight,
		MaxQueued:   o.queued,
		StateDir:    o.stateDir,
	})
	fail := func(err error) (*serving.Manager, serving.ServerConfig, error) {
		mgr.Close()
		return nil, scfg, err
	}

	defaultName := o.defaultTenant
	switch {
	case o.graphPath != "":
		// Lazy: the file is sniffed and opened on the first query, so a
		// mapped .sasg tenant costs nothing resident until traffic hits.
		if err := mgr.AddTenant("default", serving.TenantConfig{
			GraphFile: o.graphPath, Model: mdl, Session: sessOpts,
		}); err != nil {
			return fail(err)
		}
		if defaultName == "" {
			defaultName = "default"
		}
	case o.preset != "":
		g, err := stopandstare.GeneratePreset(o.preset, o.scale, o.seed)
		if err != nil {
			return fail(err)
		}
		if err := mgr.AddTenant("default", serving.TenantConfig{
			Graph: g, Model: mdl, Session: sessOpts,
		}); err != nil {
			return fail(err)
		}
		if defaultName == "" {
			defaultName = "default"
		}
	}
	for _, spec := range specs {
		if err := mgr.AddTenant(spec.name, serving.TenantConfig{
			GraphFile: spec.path, Model: mdl, Session: sessOpts,
		}); err != nil {
			return fail(err)
		}
	}

	scfg = serving.ServerConfig{
		DefaultTenant:  defaultName,
		DefaultTimeout: o.timeout,
		EnablePprof:    o.pprof,
	}
	return mgr, scfg, nil
}

// serveAndDrain runs the server on ln until it fails or a signal arrives,
// then shuts down gracefully: the listener closes immediately (new
// connections are refused), in-flight requests get up to drain to finish.
func serveAndDrain(hs *http.Server, ln net.Listener, drain time.Duration, sig <-chan os.Signal) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("imserve: %v received, draining for up to %v", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		return nil
	}
}

func main() {
	var o options
	flag.StringVar(&o.graphPath, "graph", "", "graph file for the default tenant, .ssg binary or mmap-able .sasg")
	flag.StringVar(&o.preset, "preset", "", "synthetic preset graph for the default tenant (see imgen)")
	flag.Float64Var(&o.scale, "scale", 1.0, "preset scale multiplier")
	flag.StringVar(&o.model, "model", "IC", "propagation model: IC or LT")
	flag.Uint64Var(&o.seed, "seed", 1, "session RR-stream seed")
	flag.IntVar(&o.workers, "sampling-workers", runtime.NumCPU(), "sampling workers per session")
	flag.IntVar(&o.shards, "shards", 0, "RR-store shards (>=1 = id-sharded store)")
	flag.StringVar(&o.remoteWorkers, "workers", "", "imworker shard-worker addresses, comma-separated (host:port or unix:/path); one RR-store shard per worker process, overriding -shards")
	flag.StringVar(&o.kernel, "kernel", "plan", "RR sampling kernel: plan or oracle")
	flag.StringVar(&o.tenants, "tenants", "", "additional tenants as name=path,... (graph files opened lazily)")
	flag.StringVar(&o.defaultTenant, "default-tenant", "", "tenant answering requests that omit one")
	flag.StringVar(&o.budget, "budget", "", "global RR-store budget, e.g. 512MiB or 2GiB (empty = unbounded)")
	flag.StringVar(&o.spillBudget, "spill-budget", "", "per-session resident RR-store budget, e.g. 64MiB; above it cold arena segments and index blocks spill to disk (empty = no spill tier)")
	flag.StringVar(&o.spillDir, "spill-dir", "", "directory for RR-store spill files (empty = OS temp dir)")
	flag.StringVar(&o.stateDir, "state-dir", "", "directory for durable per-tenant RR-store snapshots: recovered on startup, written before evictions and on SIGTERM drain (empty = not durable)")
	flag.IntVar(&o.inFlight, "inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	flag.IntVar(&o.queued, "queue", 0, "max queries waiting beyond -inflight (0 = 4x inflight, -1 = none)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "default per-request wait deadline")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	addr := flag.String("addr", ":8377", "listen address")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	mgr, scfg, err := buildManager(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	defer mgr.Close()

	// Startup hygiene: sweep orphans a crashed predecessor left behind —
	// spill files are process-private scratch (useless across restarts),
	// and uncommitted snapshot debris is swept per-tenant by StartRecovery
	// before recovery reads the directory.
	if o.spillDir != "" {
		if removed, err := ris.CleanSpillDir(o.spillDir); err == nil && len(removed) > 0 {
			log.Printf("imserve: removed %d orphaned spill file(s) from %s", len(removed), o.spillDir)
		}
	}
	// Warm durable tenants in the background (no-op without -state-dir):
	// the listener below comes up immediately, /readyz answers 503 until
	// the recovery pass finishes, then traffic lands on recovered stores.
	mgr.StartRecovery()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("imserve: tenants %v, model %s, listening on %s", mgr.Tenants(), o.model, ln.Addr())
	// Header/idle timeouts guard the long-running process against slow-
	// header and idle-connection exhaustion. No WriteTimeout: a cold query
	// on a large graph legitimately samples for a long time.
	hs := &http.Server{
		Handler:           serving.NewServer(mgr, scfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serveAndDrain(hs, ln, *drain, sig); err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("imserve: drained, retiring sessions")
}
