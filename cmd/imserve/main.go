// Command imserve exposes a serving Session over JSON/HTTP: one process
// holds the graph, the compiled sampling plan, the growing RR-set store and
// the per-k solver cache, and answers a stream of influence-maximization
// queries — repeated or refined queries reuse every RR sample generated so
// far, so warm queries cost selection, not sampling.
//
//	imserve -graph nethept.ssg -model IC -addr :8377
//	imserve -preset nethept -scale 0.5 -model LT
//
//	curl -s localhost:8377/maximize -d '{"k":50,"epsilon":0.1}'
//	curl -s localhost:8377/maximize -d '{"k":50,"algorithm":"ssa"}'
//	curl -s localhost:8377/stats
//
// Endpoints:
//
//	POST /maximize  {"k":50,"epsilon":0.1,"delta":0,"algorithm":"dssa"}
//	GET  /stats     session + graph snapshot (plan/store bytes reported separately)
//	GET  /healthz   liveness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"stopandstare"
)

// maxRequestBytes bounds a /maximize request body: queries are a handful
// of scalar fields, so anything past 1 MiB is garbage or abuse.
const maxRequestBytes = 1 << 20

// maximizeRequest is the POST /maximize body.
type maximizeRequest struct {
	K         int     `json:"k"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"` // "dssa" (default) or "ssa"
}

// maximizeResponse mirrors stopandstare.Result plus serving metadata.
type maximizeResponse struct {
	Seeds       []uint32 `json:"seeds"`
	Influence   float64  `json:"influence"`
	Samples     int64    `json:"samples"`
	Iterations  int      `json:"iterations"`
	HitCap      bool     `json:"hit_cap,omitempty"`
	MemoryBytes int64    `json:"memory_bytes"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	// Warm reports whether this query was served without growing the RR
	// store (pure selection over already-resident samples) — accurate per
	// query even under concurrent traffic.
	Warm bool `json:"warm"`
}

// statsResponse is the GET /stats body. Graph memory is reported split:
// resident bytes are private heap, mapped bytes alias a read-only .sasg
// file mapping shared across every process serving the same file.
type statsResponse struct {
	Nodes              int     `json:"nodes"`
	Edges              int64   `json:"edges"`
	Model              string  `json:"model"`
	Queries            int64   `json:"queries"`
	Samples            int     `json:"samples"`
	Items              int64   `json:"items"`
	StoreBytes         int64   `json:"store_bytes"`
	PlanBytes          int64   `json:"plan_bytes"`
	GraphResidentBytes int64   `json:"graph_resident_bytes"`
	GraphMappedBytes   int64   `json:"graph_mapped_bytes"`
	Solvers            int     `json:"solvers"`
	UptimeSec          float64 `json:"uptime_sec"`
}

// server wires one Session into an http.Handler. Split from main so tests
// drive it through httptest without flags or sockets.
type server struct {
	g     *stopandstare.Graph
	model stopandstare.Model
	sess  *stopandstare.Session
	start time.Time
}

func newServer(g *stopandstare.Graph, model stopandstare.Model, sess *stopandstare.Session) *server {
	return &server{g: g, model: model, sess: sess, start: time.Now()}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/maximize", s.handleMaximize)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req maximizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	algo := stopandstare.DSSA
	if req.Algorithm != "" {
		a, err := stopandstare.ParseAlgorithm(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		algo = a
	}
	res, err := s.sess.Maximize(stopandstare.Query{
		Algorithm: algo, K: req.K, Epsilon: req.Epsilon, Delta: req.Delta,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, maximizeResponse{
		Seeds:       res.Seeds,
		Influence:   res.InfluenceEstimate,
		Samples:     res.Samples,
		Iterations:  res.Iterations,
		HitCap:      res.HitCap,
		MemoryBytes: res.MemoryBytes,
		ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1e3,
		Warm:        res.Warm,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	st := s.sess.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:              s.g.NumNodes(),
		Edges:              s.g.NumEdges(),
		Model:              fmt.Sprint(s.model),
		Queries:            st.Queries,
		Samples:            st.Samples,
		Items:              st.Items,
		StoreBytes:         st.StoreBytes,
		PlanBytes:          st.PlanBytes,
		GraphResidentBytes: st.GraphResidentBytes,
		GraphMappedBytes:   st.GraphMappedBytes,
		Solvers:            st.Solvers,
		UptimeSec:          time.Since(s.start).Seconds(),
	})
}

func main() {
	var (
		path    = flag.String("graph", "", "graph file, .ssg binary or mmap-able .sasg (or use -preset)")
		preset  = flag.String("preset", "", "synthetic preset graph (see imgen)")
		scale   = flag.Float64("scale", 1.0, "preset scale multiplier")
		model   = flag.String("model", "IC", "propagation model: IC or LT")
		seed    = flag.Uint64("seed", 1, "session RR-stream seed")
		workers = flag.Int("workers", runtime.NumCPU(), "sampling workers")
		shards  = flag.Int("shards", 0, "RR-store shards (>=1 = id-sharded store)")
		kernel  = flag.String("kernel", "plan", "RR sampling kernel: plan or oracle")
		addr    = flag.String("addr", ":8377", "listen address")
	)
	flag.Parse()
	var (
		g   *stopandstare.Graph
		err error
	)
	switch {
	case *path != "":
		// Sniffs the format: a .sasg file mmaps in O(1) with pages shared
		// across imserve processes on this machine; a .ssg file is read and
		// copied to the heap.
		g, err = stopandstare.OpenGraphFile(*path)
	case *preset != "":
		g, err = stopandstare.GeneratePreset(*preset, *scale, *seed)
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	mdl, err := stopandstare.ParseModel(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	krn, err := stopandstare.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	sess, err := stopandstare.NewSession(g, mdl, stopandstare.SessionOptions{
		Seed: *seed, Workers: *workers, Shards: *shards, Kernel: krn,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
	srv := newServer(g, mdl, sess)
	log.Printf("imserve: %d nodes / %d edges, %v model, listening on %s",
		g.NumNodes(), g.NumEdges(), mdl, *addr)
	// Header/idle timeouts guard the long-running process against slow-
	// header and idle-connection exhaustion. No WriteTimeout: a cold query
	// on a large graph legitimately samples for a long time.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "imserve: %v\n", err)
		os.Exit(1)
	}
}
