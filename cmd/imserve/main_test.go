package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"stopandstare"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	g, err := stopandstare.GeneratePowerLaw(600, 3000, 2.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(g, stopandstare.IC, sess)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postMaximize(t *testing.T, ts *httptest.Server, body string) maximizeResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/maximize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /maximize %q: status %d", body, resp.StatusCode)
	}
	var out maximizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeMaximizeWarmReuse drives the server through a cold query, an
// identical warm query, and a refined (larger-k) query, checking the warm
// flag flips and the identical query returns identical seeds.
func TestServeMaximizeWarmReuse(t *testing.T) {
	_, ts := testServer(t)

	cold := postMaximize(t, ts, `{"k":8,"epsilon":0.3}`)
	if len(cold.Seeds) != 8 {
		t.Fatalf("cold: got %d seeds, want 8", len(cold.Seeds))
	}
	if cold.Warm {
		t.Fatal("first query reported warm")
	}

	warm := postMaximize(t, ts, `{"k":8,"epsilon":0.3}`)
	if !warm.Warm {
		t.Fatal("repeated query did not report warm")
	}
	if len(warm.Seeds) != len(cold.Seeds) {
		t.Fatalf("warm seeds %v != cold seeds %v", warm.Seeds, cold.Seeds)
	}
	for i := range warm.Seeds {
		if warm.Seeds[i] != cold.Seeds[i] {
			t.Fatalf("warm seeds %v != cold seeds %v", warm.Seeds, cold.Seeds)
		}
	}
	if warm.Samples != cold.Samples || warm.Influence != cold.Influence {
		t.Fatalf("warm result drifted: samples %d vs %d, influence %v vs %v",
			warm.Samples, cold.Samples, warm.Influence, cold.Influence)
	}

	// A refined query (larger k) reuses the stream; SSA shares it too.
	bigger := postMaximize(t, ts, `{"k":12,"epsilon":0.3}`)
	if len(bigger.Seeds) != 12 {
		t.Fatalf("refined: got %d seeds, want 12", len(bigger.Seeds))
	}
	ssa := postMaximize(t, ts, `{"k":8,"epsilon":0.3,"algorithm":"ssa"}`)
	if len(ssa.Seeds) != 8 {
		t.Fatalf("ssa: got %d seeds, want 8", len(ssa.Seeds))
	}
}

// TestServeStats checks the stats endpoint reports the session snapshot
// with plan and store bytes separated.
func TestServeStats(t *testing.T) {
	_, ts := testServer(t)
	postMaximize(t, ts, `{"k":5,"epsilon":0.3}`)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 600 || st.Queries != 1 {
		t.Fatalf("stats: nodes=%d queries=%d", st.Nodes, st.Queries)
	}
	if st.Samples <= 0 || st.StoreBytes <= 0 {
		t.Fatalf("stats: samples=%d store_bytes=%d", st.Samples, st.StoreBytes)
	}
	if st.PlanBytes <= 0 {
		t.Fatalf("stats: plan kernel session should report plan bytes, got %d", st.PlanBytes)
	}
	if st.Solvers != 1 {
		t.Fatalf("stats: solvers=%d, want 1", st.Solvers)
	}
	// The test server's graph lives on the heap: all its bytes are
	// resident, none mapped.
	if st.GraphResidentBytes <= 0 || st.GraphMappedBytes != 0 {
		t.Fatalf("stats: graph bytes resident=%d mapped=%d, want resident>0 mapped=0",
			st.GraphResidentBytes, st.GraphMappedBytes)
	}
}

// TestServeStatsMappedGraph serves a graph opened from its .sasg mapping
// and checks /stats reports the bytes on the mapped side of the split.
func TestServeStatsMappedGraph(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(600, 3000, 2.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "serve.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	mg, err := stopandstare.OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stopandstare.DropCachedPlans(mg)
		mg.Close()
	})
	sess, err := stopandstare.NewSession(mg, stopandstare.IC, stopandstare.SessionOptions{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(mg, stopandstare.IC, sess).handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !mg.Mapped() {
		t.Skip("no mmap on this platform; fallback accounting covered elsewhere")
	}
	if st.GraphMappedBytes != mg.Bytes() || st.GraphResidentBytes != 0 {
		t.Fatalf("stats: graph bytes resident=%d mapped=%d, want 0/%d",
			st.GraphResidentBytes, st.GraphMappedBytes, mg.Bytes())
	}
}

// TestServeErrors checks malformed requests are rejected with JSON errors.
func TestServeErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},                         // malformed JSON
		{`{"k":0}`, http.StatusBadRequest},                   // invalid k
		{`{"k":5,"algorithm":"imm"}`, http.StatusBadRequest}, // non-session algorithm
	} {
		resp, err := http.Post(ts.URL+"/maximize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("POST %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/maximize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /maximize: status %d, want 405", resp.StatusCode)
	}
}
