package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"stopandstare"
	"stopandstare/internal/serving"
)

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"1048576", 1 << 20, true},
		{"64KiB", 64 << 10, true},
		{"512MiB", 512 << 20, true},
		{"2GiB", 2 << 30, true},
		{" 2 GiB ", 2 << 30, true},
		{"1.5GiB", 0, false},
		{"-1", 0, false},
		{"12MB", 0, false}, // decimal units are ambiguous; rejected
	} {
		got, err := parseSize(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestParseTenants(t *testing.T) {
	specs, err := parseTenants(" acme = a.sasg , globex=b.ssg ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []tenantSpec{{"acme", "a.sasg"}, {"globex", "b.ssg"}}
	if len(specs) != len(want) || specs[0] != want[0] || specs[1] != want[1] {
		t.Fatalf("specs %v, want %v", specs, want)
	}
	for _, bad := range []string{"acme", "=x.ssg", "acme=", "a=x.ssg,a=y.ssg"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q): no error", bad)
		}
	}
}

// TestBuildManagerPreset drives the full flag-to-fleet path: a preset
// default tenant plus a lazy graph-file tenant, queried over HTTP with
// warm reuse, tenant routing, and the fleet /stats shape.
func TestBuildManagerPreset(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(500, 2500, 2.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "extra.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}

	mgr, scfg, err := buildManager(options{
		preset: "nethept", scale: 0.02, model: "IC", seed: 1, workers: 2,
		kernel: "plan", tenants: "extra=" + path,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	if scfg.DefaultTenant != "default" {
		t.Fatalf("default tenant %q, want %q", scfg.DefaultTenant, "default")
	}
	ts := httptest.NewServer(serving.NewServer(mgr, scfg).Handler())
	t.Cleanup(ts.Close)

	post := func(body string) serving.MaximizeResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/maximize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %q: status %d", body, resp.StatusCode)
		}
		var out serving.MaximizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := post(`{"k":8,"epsilon":0.3}`)
	if cold.Tenant != "default" || len(cold.Seeds) != 8 || cold.Warm {
		t.Fatalf("cold: tenant %q seeds %d warm %v", cold.Tenant, len(cold.Seeds), cold.Warm)
	}
	warm := post(`{"k":8,"epsilon":0.3}`)
	if !warm.Warm || len(warm.Seeds) != 8 {
		t.Fatalf("repeat not warm: %+v", warm)
	}
	for i := range warm.Seeds {
		if warm.Seeds[i] != cold.Seeds[i] {
			t.Fatalf("warm seeds %v != cold seeds %v", warm.Seeds, cold.Seeds)
		}
	}
	if extra := post(`{"tenant":"extra","k":5,"epsilon":0.35}`); extra.Tenant != "extra" || len(extra.Seeds) != 5 {
		t.Fatalf("extra tenant: %+v", extra)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serving.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || len(st.Tenants) != 2 {
		t.Fatalf("stats: queries=%d tenants=%d", st.Queries, len(st.Tenants))
	}
	for _, ten := range st.Tenants {
		if ten.Name == "extra" && ten.GraphMappedBytes == 0 && ten.GraphResidentBytes == 0 {
			t.Fatalf("lazy .sasg tenant has no graph bytes after query: %+v", ten)
		}
	}
}

func TestBuildManagerErrors(t *testing.T) {
	for name, o := range map[string]options{
		"no source":  {model: "IC", kernel: "plan"},
		"bad model":  {preset: "nethept", scale: 0.02, model: "XX", kernel: "plan"},
		"bad kernel": {preset: "nethept", scale: 0.02, model: "IC", kernel: "warp"},
		"bad budget": {preset: "nethept", scale: 0.02, model: "IC", kernel: "plan", budget: "lots"},
		"bad tenant": {preset: "nethept", scale: 0.02, model: "IC", kernel: "plan", tenants: "x"},
	} {
		if _, _, err := buildManager(o); err == nil {
			t.Errorf("%s: buildManager accepted %+v", name, o)
		}
	}
}

// TestServeAndDrain checks graceful shutdown end to end: a signal stops
// the listener but the in-flight request — held mid-execution on a gate —
// still completes before serveAndDrain returns.
func TestServeAndDrain(t *testing.T) {
	gate := make(chan struct{})
	mgr := serving.NewManager(serving.Config{
		MaxInFlight: 2,
		OnExecute:   func(string) { <-gate },
	})
	t.Cleanup(mgr.Close)
	g, err := stopandstare.GeneratePowerLaw(400, 2000, 2.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddTenant("solo", serving.TenantConfig{
		Graph: g, Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 7, Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: serving.NewServer(mgr, serving.ServerConfig{}).Handler()}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveAndDrain(hs, ln, 30*time.Second, sig) }()
	url := "http://" + ln.Addr().String()

	// Park one request mid-execution.
	held := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/maximize", "application/json",
			strings.NewReader(`{"k":5,"epsilon":0.35}`))
		if err != nil {
			held <- -1
			return
		}
		resp.Body.Close()
		held <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Stats().InFlight < 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}

	// Deliver the "signal": shutdown starts, the listener closes, but
	// serveAndDrain keeps waiting on the held request.
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		t.Fatalf("serveAndDrain returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if code := <-held; code != http.StatusOK {
		t.Fatalf("held request finished with %d during drain", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("serveAndDrain: %v", err)
	}
	// The listener is gone: new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}
