// Command imworker is a shard-worker process for cross-process RR-set
// sharding: it opens a graph read-only and serves RR-set shards — arena +
// CSR postings blocks — to imserve coordinators over a small framed RPC
// protocol (generate / postings / coverage). A coordinator started with
// `imserve -workers host:a,host:b` keeps one shard per worker: sampling and
// index memory live in the worker processes, the coordinator holds only the
// mirror arenas its solvers scan.
//
//	imworker -graph nethept.sasg -addr 127.0.0.1:8378
//	imworker -graph nethept.sasg -unix /tmp/imworker.sock
//	imserve  -graph nethept.sasg -workers 127.0.0.1:8378,127.0.0.1:8379
//
// Workers are stateless-recoverable: a shard's contents are a pure function
// of its spec and the deterministic (seed, id) PRNG streams, so a restarted
// worker is driven back to the coordinator's state by replay — results stay
// bit-identical to a single-process store. With -state-dir the worker also
// snapshots its shard states on SIGTERM and recovers them (checksum-
// verified) at startup, so a planned restart resyncs from local disk and
// the coordinator replays only the delta instead of every shard. Use a
// mapped .sasg graph so all workers on a host share one set of graph pages.
//
// SIGINT/SIGTERM close the listeners and sever connections; coordinators
// reconnect with backoff and resume when the worker returns.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"stopandstare"
	"stopandstare/internal/cliutil"
	"stopandstare/internal/ris"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "graph file, .ssg binary or mmap-able .sasg (pages shared across workers)")
		preset      = flag.String("preset", "", "synthetic preset graph (see imgen); alternative to -graph")
		scale       = flag.Float64("scale", 1.0, "preset scale multiplier")
		genSeed     = flag.Uint64("gen-seed", 1, "preset generation seed (must match the coordinator's)")
		addr        = flag.String("addr", "127.0.0.1:8378", "TCP listen address (empty = none)")
		unixPath    = flag.String("unix", "", "unix socket path to listen on (empty = none)")
		workers     = flag.Int("workers", runtime.NumCPU(), "sampling workers for shards that request the worker default")
		maxShards   = flag.Int("max-shards", 64, "resident shard-state cap; least-recently-used states beyond it are dropped and rebuilt by replay")
		spillBudget = flag.String("spill-budget", "", "resident RR-byte budget across this worker's shards, e.g. 64MiB; above it cold arena segments and index blocks spill to disk (empty = no spill tier)")
		spillDir    = flag.String("spill-dir", "", "directory for shard spill files (empty = OS temp dir)")
		stateDir    = flag.String("state-dir", "", "directory for durable shard-state snapshots: recovered on startup, written on SIGTERM (empty = replay-only recovery)")
	)
	flag.Parse()

	spillBytes, err := cliutil.ParseSize(*spillBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
		os.Exit(1)
	}

	var g *stopandstare.Graph
	switch {
	case *graphPath != "":
		g, err = stopandstare.OpenGraphFile(*graphPath)
	case *preset != "":
		g, err = stopandstare.GeneratePreset(*preset, *scale, *genSeed)
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
		os.Exit(1)
	}

	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
			os.Exit(1)
		}
	}
	srv := ris.NewShardServer(g, ris.ShardServerOptions{
		SamplingWorkers: *workers, MaxShards: *maxShards,
		SpillBudgetBytes: spillBytes, SpillDir: *spillDir,
		StateDir: *stateDir,
	})
	if n := srv.RecoveredShards(); n > 0 {
		log.Printf("imworker: recovered %d shard state(s) from %s", n, *stateDir)
	}
	errc := make(chan error, 1)
	listening := 0
	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
			os.Exit(1)
		}
		log.Printf("imworker: %d nodes, serving shards on %s", g.NumNodes(), ln.Addr())
		go func() { errc <- srv.Serve(ln) }()
		listening++
	}
	if *unixPath != "" {
		os.Remove(*unixPath) // a previous run's stale socket refuses rebinds
		ln, err := net.Listen("unix", *unixPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
			os.Exit(1)
		}
		log.Printf("imworker: %d nodes, serving shards on unix:%s", g.NumNodes(), *unixPath)
		go func() { errc <- srv.Serve(ln) }()
		listening++
	}
	if listening == 0 {
		fmt.Fprintln(os.Stderr, "imworker: need -addr or -unix")
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "imworker: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("imworker: %v received, closing", s)
		if *stateDir != "" {
			// Snapshot before Close drops the shard states: the restarted
			// worker then resyncs from its own disk instead of replaying
			// every shard through the coordinator.
			if info, err := srv.Persist(); err == nil {
				log.Printf("imworker: snapshot generation %d, %d sets, %d bytes", info.Generation, info.Sets, info.Bytes)
			} else {
				log.Printf("imworker: snapshot failed: %v (coordinators will replay)", err)
			}
		}
		srv.Close()
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
}
