// Command imgen generates synthetic influence graphs: either stand-ins for
// the paper's Table 2 datasets (-preset) or raw generator output
// (-generator er|ba|powerlaw|ws). Output is the compact binary format
// (default), the mmap-able out-of-core format (-obin), or a text edge list
// (-text).
//
// Examples:
//
//	imgen -preset nethept -scale 1.0 -out nethept.ssg
//	imgen -preset friendster -obin -out friendster.sasg
//	imgen -generator powerlaw -n 100000 -m 1000000 -gamma 2.1 -out pl.ssg
//	imgen -preset enron -text -out enron.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

func main() {
	var (
		preset    = flag.String("preset", "", "dataset preset: "+strings.Join(gen.PresetNames(), ", "))
		generator = flag.String("generator", "", "raw generator: er, ba, powerlaw, ws")
		n         = flag.Int("n", 10000, "nodes (raw generators)")
		m         = flag.Int64("m", 50000, "edges (er/powerlaw)")
		gamma     = flag.Float64("gamma", 2.1, "power-law exponent (powerlaw)")
		attach    = flag.Int("attach", 3, "attachments per node (ba)")
		wsK       = flag.Int("ws-k", 3, "ring neighbours per side (ws)")
		wsBeta    = flag.Float64("ws-beta", 0.1, "rewiring probability (ws)")
		scale     = flag.Float64("scale", 1.0, "preset scale in (0,1]")
		seed      = flag.Uint64("seed", 1, "generator seed")
		model     = flag.String("weights", "wc", "edge weights: wc, uniform, trivalency")
		uniformP  = flag.Float64("p", 0.1, "probability for -weights uniform")
		text      = flag.Bool("text", false, "write a text edge list instead of binary")
		obin      = flag.Bool("obin", false, "write the mmap-able out-of-core .sasg format instead of .ssg")
		out       = flag.String("out", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -out")
	}
	opt := graph.BuildOptions{UniformP: *uniformP, TrivalencySeed: *seed}
	switch *model {
	case "wc":
		opt.Model = graph.WeightedCascade
	case "uniform":
		opt.Model = graph.Uniform
	case "trivalency":
		opt.Model = graph.Trivalency
	default:
		fail("unknown -weights %q", *model)
	}

	var g *graph.Graph
	var err error
	switch {
	case *preset != "":
		var p gen.Preset
		p, err = gen.PresetByName(*preset)
		if err == nil {
			g, err = p.Generate(*scale, *seed, opt)
		}
	case *generator != "":
		switch *generator {
		case "er":
			g, err = gen.ErdosRenyi(*n, *m, *seed, opt)
		case "ba":
			g, err = gen.BarabasiAlbert(*n, *attach, *seed, opt)
		case "powerlaw":
			g, err = gen.ChungLu(*n, *m, *gamma, *seed, opt)
		case "ws":
			g, err = gen.WattsStrogatz(*n, *wsK, *wsBeta, *seed, opt)
		default:
			fail("unknown -generator %q", *generator)
		}
	default:
		fail("need -preset or -generator")
	}
	if err != nil {
		fail("generate: %v", err)
	}

	switch {
	case *text:
		f, err := os.Create(*out)
		if err != nil {
			fail("create: %v", err)
		}
		if err := g.SaveEdgeList(f); err != nil {
			fail("write: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("close: %v", err)
		}
	case *obin:
		if err := g.WriteMappedFile(*out); err != nil {
			fail("write: %v", err)
		}
	default:
		if err := g.SaveBinaryFile(*out); err != nil {
			fail("write: %v", err)
		}
	}
	s := g.Stats()
	fmt.Printf("wrote %s: n=%d m=%d avg-deg=%.2f max-out=%d lt-valid=%v\n",
		*out, s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.LTValid)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imgen: "+format+"\n", args...)
	os.Exit(1)
}
