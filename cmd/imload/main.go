// Command imload runs the multi-tenant serving load bench: imserve's
// stack (serving.Manager behind serving.Server) driven by concurrent
// HTTP clients over uniform, Zipf, coalescing, and overload mixes, with
// client-observed p50/p99 latency and queries/sec written as JSON.
//
//	go run ./cmd/imload -out BENCH_PR7.json          # full measurement
//	go run ./cmd/imload -smoke -out load-report.json # CI scale
package main

import (
	"flag"
	"fmt"
	"os"

	"stopandstare/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_PR7.json", "path for the JSON load report")
	smoke := flag.Bool("smoke", false, "run a scaled-down suite (CI smoke mode)")
	seed := flag.Uint64("seed", 1, "RNG seed for graphs and sessions")
	flag.Parse()

	if err := bench.WriteLoadJSON(*out, *seed, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "imload:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
