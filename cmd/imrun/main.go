// Command imrun executes one influence-maximization algorithm on a graph
// file and prints the seed set with run metrics.
//
//	imrun -graph nethept.ssg -algo dssa -k 50 -model LT -eps 0.1
//	imrun -graph pl.ssg -algo imm -k 100 -model IC -eval 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"stopandstare"
)

func main() {
	var (
		path    = flag.String("graph", "", "graph file, .ssg binary or mmap-able .sasg (required)")
		algo    = flag.String("algo", "dssa", "algorithm: dssa, ssa, imm, tim+, tim, celf++, celf, degree, random")
		k       = flag.Int("k", 50, "seed budget")
		model   = flag.String("model", "LT", "propagation model: IC or LT")
		eps     = flag.Float64("eps", 0.1, "approximation slack epsilon")
		delta   = flag.Float64("delta", 0, "failure probability (0 = 1/n)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		eval    = flag.Int("eval", 0, "if > 0, score the seeds with this many MC runs")
		certify = flag.Bool("certify", false, "score the seeds with a rigorous (5%, 0.1%) RIS certificate")
	)
	flag.Parse()
	if *path == "" {
		fail("missing -graph")
	}
	g, err := stopandstare.OpenGraphFile(*path)
	if err != nil {
		fail("load: %v", err)
	}
	mdl, err := stopandstare.ParseModel(*model)
	if err != nil {
		fail("%v", err)
	}
	al, err := stopandstare.ParseAlgorithm(*algo)
	if err != nil {
		fail("%v", err)
	}
	res, err := stopandstare.Maximize(g, mdl, al, stopandstare.Options{
		K: *k, Epsilon: *eps, Delta: *delta, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		fail("maximize: %v", err)
	}
	fmt.Printf("algorithm:  %s (%s model, eps=%.3g)\n", al, mdl, *eps)
	fmt.Printf("time:       %v\n", res.Elapsed)
	fmt.Printf("rr-sets:    %d\n", res.Samples)
	fmt.Printf("influence:  %.2f (algorithm estimate)\n", res.InfluenceEstimate)
	fmt.Printf("iterations: %d  hit-cap: %v\n", res.Iterations, res.HitCap)
	if *eval > 0 {
		mean, se, err := stopandstare.EvaluateSpread(g, mdl, res.Seeds, *eval, *seed+1, *workers)
		if err != nil {
			fail("eval: %v", err)
		}
		fmt.Printf("spread(MC): %.2f ± %.2f (%d runs)\n", mean, se, *eval)
	}
	if *certify {
		cert, err := stopandstare.CertifySpread(g, mdl, res.Seeds, 0.05, 0.001, *seed+2)
		if err != nil {
			fail("certify: %v", err)
		}
		fmt.Printf("certified:  %.2f within ±5%% w.p. 99.9%% (%d RR sets, %v)\n",
			cert.Influence, cert.Samples, cert.Elapsed)
	}
	fmt.Printf("seeds: ")
	for i, s := range res.Seeds {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(s)
	}
	fmt.Println()
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imrun: "+format+"\n", args...)
	os.Exit(1)
}
