package stopandstare

import (
	"errors"
	"net"
	"slices"
	"testing"

	"stopandstare/internal/ris"
)

// TestSessionRemoteWorkersTCP is the end-to-end cross-process check over
// real sockets: two ShardServers on localhost TCP listeners (exactly what
// cmd/imworker runs), a Session pointed at them via RemoteWorkers, and a
// local single-process Session as the reference. Results must be
// bit-identical; killing the workers must turn the next query into a clean
// ErrShardUnreachable, not a hang or an unrecovered panic.
func TestSessionRemoteWorkersTCP(t *testing.T) {
	g, err := GeneratePowerLaw(200, 1200, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var servers []*ris.ShardServer
	for i := 0; i < 2; i++ {
		srv := ris.NewShardServer(g, ris.ShardServerOptions{SamplingWorkers: 2})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	local, err := NewSession(g, IC, SessionOptions{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewSession(g, IC, SessionOptions{Seed: 5, Workers: 2, RemoteWorkers: addrs})
	if err != nil {
		t.Fatal(err)
	}

	// A query stream, cold then warm then a different algorithm: each answer
	// must match the single-process session exactly.
	for _, q := range []Query{
		{K: 6, Epsilon: 0.3},
		{K: 4, Epsilon: 0.3},
		{K: 6, Epsilon: 0.3, Algorithm: SSA},
	} {
		want, err := local.Maximize(q)
		if err != nil {
			t.Fatalf("local %+v: %v", q, err)
		}
		got, err := remote.Maximize(q)
		if err != nil {
			t.Fatalf("remote %+v: %v", q, err)
		}
		if !slices.Equal(got.Seeds, want.Seeds) {
			t.Fatalf("%+v: Seeds %v vs local %v", q, got.Seeds, want.Seeds)
		}
		if got.InfluenceEstimate != want.InfluenceEstimate || got.Samples != want.Samples ||
			got.Iterations != want.Iterations {
			t.Fatalf("%+v: influence/samples/iterations %v/%d/%d vs local %v/%d/%d", q,
				got.InfluenceEstimate, got.Samples, got.Iterations,
				want.InfluenceEstimate, want.Samples, want.Iterations)
		}
	}

	// Degraded mode: with every worker gone, Maximize must return a typed
	// error the serving layer can map to 503 + Retry-After.
	for _, srv := range servers {
		srv.Close()
	}
	_, err = remote.Maximize(Query{K: 9, Epsilon: 0.25})
	if err == nil {
		t.Fatal("Maximize succeeded with all workers dead")
	}
	if !errors.Is(err, ErrShardUnreachable) {
		t.Fatalf("error %v does not wrap ErrShardUnreachable", err)
	}
	var se *ris.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *ris.ShardError", err)
	}
}
