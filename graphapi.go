package stopandstare

import (
	"io"

	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// Graph is a directed, weighted influence graph in dual-CSR form.
// See NewGraphBuilder, LoadGraph, GeneratePreset.
type Graph = graph.Graph

// GraphBuilder accumulates edges and builds an immutable Graph.
type GraphBuilder = graph.Builder

// GraphStats summarises a graph (Table 2 columns).
type GraphStats = graph.Stats

// Edge is a (source, destination, weight) triple.
type Edge = graph.Edge

// BuildOptions selects the edge-weight model at build time.
type BuildOptions = graph.BuildOptions

// Weight models (see the paper §7.1: experiments use WeightedCascade).
const (
	// WeightsAsGiven keeps the caller-provided weights.
	WeightsAsGiven = graph.WeightsAsGiven
	// WeightedCascade sets w(u,v) = 1/d_in(v).
	WeightedCascade = graph.WeightedCascade
	// UniformWeights assigns a constant probability.
	UniformWeights = graph.Uniform
	// TrivalencyWeights hashes each edge into {0.1, 0.01, 0.001}.
	TrivalencyWeights = graph.Trivalency
)

// NewGraphBuilder creates a builder for an n-node graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewGraph builds a graph directly from an edge list.
func NewGraph(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	return graph.FromEdges(n, edges, opt)
}

// LoadGraphOptions controls text edge-list parsing.
type LoadGraphOptions = graph.LoadOptions

// LoadGraph parses a whitespace-separated "u v [w]" edge list.
func LoadGraph(r io.Reader, opt LoadGraphOptions) (*Graph, error) {
	return graph.LoadEdgeList(r, opt)
}

// LoadGraphFile parses an edge-list file.
func LoadGraphFile(path string, opt LoadGraphOptions) (*Graph, error) {
	return graph.LoadEdgeListFile(path, opt)
}

// LoadGraphBinaryFile reads the compact binary graph format.
func LoadGraphBinaryFile(path string) (*Graph, error) {
	return graph.LoadBinaryFile(path)
}

// OpenGraphMapped opens an mmap-able .sasg graph file (written by
// Graph.WriteMappedFile or `imgen -obin`): the graph's arrays alias a
// read-only file mapping, so opening is O(1) regardless of edge count and
// the pages are shared by every process serving the same file. Call
// Graph.Close to release the mapping when retiring the graph (and
// DropCachedPlans first if it was served).
func OpenGraphMapped(path string) (*Graph, error) {
	return graph.OpenMapped(path)
}

// OpenGraphFile opens a binary graph file of either on-disk format by
// sniffing the magic: .sasg mapped graphs open via OpenGraphMapped, .ssg
// binaries via LoadGraphBinaryFile.
func OpenGraphFile(path string) (*Graph, error) {
	return graph.OpenFileAuto(path)
}

// GeneratePreset builds a synthetic stand-in for one of the paper's Table 2
// datasets ("nethept", "netphy", "enron", "epinions", "dblp", "orkut",
// "twitter", "friendster") at the given scale ∈ (0,1], with the paper's
// weighted-cascade edge weights.
func GeneratePreset(name string, scale float64, seed uint64) (*Graph, error) {
	p, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(scale, seed, BuildOptions{Model: WeightedCascade})
}

// PresetNames lists the available dataset presets in Table 2 order.
func PresetNames() []string { return gen.PresetNames() }

// GenerateErdosRenyi builds a directed G(n,m) graph with WC weights.
func GenerateErdosRenyi(n int, m int64, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, seed, BuildOptions{Model: WeightedCascade})
}

// GenerateBarabasiAlbert builds a preferential-attachment graph (undirected
// semantics, two arcs per edge) with WC weights.
func GenerateBarabasiAlbert(n, attach int, seed uint64) (*Graph, error) {
	return gen.BarabasiAlbert(n, attach, seed, BuildOptions{Model: WeightedCascade})
}

// GeneratePowerLaw builds a directed Chung–Lu power-law graph with ~m arcs
// and exponent gamma, with WC weights.
func GeneratePowerLaw(n int, m int64, gamma float64, seed uint64) (*Graph, error) {
	return gen.ChungLu(n, m, gamma, seed, BuildOptions{Model: WeightedCascade})
}
