// Package-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation (§7), as indexed in DESIGN.md §5. Each benchmark
// executes the registered harness experiment in Quick mode (reduced dataset
// scale and k sweep) so `go test -bench=. -benchmem` regenerates every
// artifact's shape in minutes; `cmd/imbench` runs the full-scale versions.
package stopandstare_test

import (
	"io"
	"testing"

	"stopandstare"
	"stopandstare/internal/bench"
)

func quickCfg() bench.Config {
	// Quick mode shrinks the datasets to 10% of the harness defaults;
	// the extra 0.5 multiplier and the short k-sweep keep the complete
	// artifact suite inside Go's default 10-minute test timeout even for
	// the dense IC sweeps (TIM's fixed-θ sampling dominates there — which
	// is itself the paper's observation).
	return bench.Config{
		Quick:    true,
		Workers:  2,
		Seed:     1,
		ScaleMul: 0.5,
		KValues:  []int{1, 20, 100},
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(quickCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DatasetStats regenerates Table 2 (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig2InfluenceLT regenerates Fig. 2 (expected influence vs k, LT).
func BenchmarkFig2InfluenceLT(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3InfluenceIC regenerates Fig. 3 (expected influence vs k, IC).
func BenchmarkFig3InfluenceIC(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4RuntimeLT regenerates Fig. 4 (running time vs k, LT).
func BenchmarkFig4RuntimeLT(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5RuntimeIC regenerates Fig. 5 (running time vs k, IC).
func BenchmarkFig5RuntimeIC(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6MemoryLT regenerates Fig. 6 (memory usage vs k, LT).
func BenchmarkFig6MemoryLT(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7MemoryIC regenerates Fig. 7 (memory usage vs k, IC).
func BenchmarkFig7MemoryIC(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable3AcrossDatasets regenerates Table 3 (runtime and #RR sets
// of D-SSA/SSA/IMM on four datasets under LT).
func BenchmarkTable3AcrossDatasets(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Topics regenerates Table 4 (TVM topics, targeted groups).
func BenchmarkTable4Topics(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig8TVMRuntime regenerates Fig. 8 (TVM runtime: SSA, D-SSA,
// KB-TIM on two topics).
func BenchmarkFig8TVMRuntime(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkAblationEpsilonSplit runs the §4.2 ε-split sensitivity ablation.
func BenchmarkAblationEpsilonSplit(b *testing.B) { runExperiment(b, "ablation-eps") }

// BenchmarkAblationFixedTheta runs the oracle-threshold (Eq. 14) ablation.
func BenchmarkAblationFixedTheta(b *testing.B) { runExperiment(b, "ablation-theta") }

// BenchmarkMaximizeDSSA measures the end-to-end public API on a mid-size
// power-law network (the paper's core operation).
func BenchmarkMaximizeDSSA(b *testing.B) {
	g, err := stopandstare.GeneratePowerLaw(20000, 120000, 2.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA, stopandstare.Options{K: 50, Epsilon: 0.1, Seed: uint64(i), Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaximizeSSA measures SSA on the same instance for comparison.
func BenchmarkMaximizeSSA(b *testing.B) {
	g, err := stopandstare.GeneratePowerLaw(20000, 120000, 2.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.SSA, stopandstare.Options{K: 50, Epsilon: 0.1, Seed: uint64(i), Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaximizeIMM measures the IMM baseline on the same instance.
func BenchmarkMaximizeIMM(b *testing.B) {
	g, err := stopandstare.GeneratePowerLaw(20000, 120000, 2.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.IMM, stopandstare.Options{K: 50, Epsilon: 0.1, Seed: uint64(i), Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
