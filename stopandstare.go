// Package stopandstare is a Go implementation of the Stop-and-Stare
// algorithms for influence maximization in billion-scale networks
// (Nguyen, Thai, Dinh — SIGMOD 2016):
//
//   - SSA, the Stop-and-Stare Algorithm, the first (1−1/e−ε)-approximation
//     meeting a type-1 minimum RIS sample threshold, and
//   - D-SSA, its dynamic variant meeting the stronger type-2 minimum
//     threshold with no parameter tuning,
//
// together with every substrate and baseline the paper builds on or
// compares against: IC/LT diffusion, RIS and weighted-RIS (WRIS) sampling,
// greedy max-coverage, IMM, TIM/TIM+, CELF/CELF++, and the Targeted Viral
// Marketing (TVM) application with the KB-TIM comparator.
//
// Quick start:
//
//	g, _ := stopandstare.GeneratePreset("nethept", 1.0, 42)
//	res, _ := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA,
//	    stopandstare.Options{K: 50, Epsilon: 0.1})
//	fmt.Println(res.Seeds, res.InfluenceEstimate)
//
// Everything is deterministic in Options.Seed, for any worker count.
package stopandstare

import (
	"fmt"
	"runtime"
	"time"

	"stopandstare/internal/baselines"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/ris"
)

// Model selects the propagation model (§2.1 of the paper).
type Model = diffusion.Model

// Propagation models.
const (
	// IC is the Independent Cascade model.
	IC = diffusion.IC
	// LT is the Linear Threshold model.
	LT = diffusion.LT
)

// ParseModel converts "IC"/"LT" to a Model.
func ParseModel(s string) (Model, error) { return diffusion.ParseModel(s) }

// Algorithm names an influence-maximization algorithm.
type Algorithm string

// The algorithm suite of the paper's evaluation (§7.1).
const (
	// SSA is the Stop-and-Stare Algorithm (paper Alg. 1).
	SSA Algorithm = "ssa"
	// DSSA is the Dynamic Stop-and-Stare Algorithm (paper Alg. 4).
	DSSA Algorithm = "dssa"
	// IMM is Tang et al.'s SIGMOD'15 baseline.
	IMM Algorithm = "imm"
	// TIM and TIMPlus are Tang et al.'s SIGMOD'14 baselines.
	TIM     Algorithm = "tim"
	TIMPlus Algorithm = "tim+"
	// CELF and CELFPlusPlus are the lazy-greedy Monte-Carlo baselines.
	CELF         Algorithm = "celf"
	CELFPlusPlus Algorithm = "celf++"
	// Borgs is the original SODA'14 RIS algorithm (width-threshold).
	Borgs Algorithm = "borgs"
	// Degree and Random are guarantee-free heuristics.
	Degree Algorithm = "degree"
	Random Algorithm = "random"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{DSSA, SSA, IMM, TIMPlus, TIM, Borgs, CELFPlusPlus, CELF, Degree, Random}
}

// ParseAlgorithm resolves a case-exact algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("stopandstare: unknown algorithm %q (have %v)", s, Algorithms())
}

// Kernel selects the RR-set sampling implementation (see Options.Kernel).
type Kernel = ris.Kernel

// The sampling kernels.
const (
	// KernelPlan samples through the compiled per-(graph, model) plan:
	// geometric edge-skipping on uniform-weight (weighted-cascade) nodes,
	// fused integer-threshold Bernoulli records on mixed-weight nodes, and
	// alias-table LT walks. The default.
	KernelPlan = ris.KernelPlan
	// KernelOracle samples through the direct per-edge float Bernoulli /
	// binary-search implementation — the distribution oracle the plan
	// kernels are validated against.
	KernelOracle = ris.KernelOracle
)

// ParseKernel resolves "plan" or "oracle" ("" selects the default).
func ParseKernel(s string) (Kernel, error) { return ris.ParseKernel(s) }

// Options configures Maximize.
type Options struct {
	// K is the seed budget (required, 1 ≤ K ≤ n).
	K int
	// Epsilon is the approximation slack of the (1−1/e−ε) guarantee.
	// Defaults to 0.1, the paper's setting.
	Epsilon float64
	// Delta is the failure probability; 0 selects the paper's δ = 1/n.
	Delta float64
	// Seed makes runs reproducible; 0 is a valid seed.
	Seed uint64
	// Workers bounds parallelism (≤0 ⇒ runtime.GOMAXPROCS(0); results are
	// bit-identical at any worker count).
	Workers int
	// Shards ≥ 1 keeps RR sets in an id-sharded store (one arena + index
	// per shard, generated shard-parallel) instead of the flat store; ≤0
	// selects flat. Results are bit-identical at any shard count —
	// sharding only changes memory topology and generation parallelism.
	// Applies to the RIS algorithms (SSA/D-SSA/IMM/TIM/TIM+/Borgs).
	Shards int
	// ShardWorkers bounds per-shard generation parallelism when Shards ≥ 1
	// (≤0 derives max(1, Workers/Shards)).
	ShardWorkers int
	// Kernel selects the RR sampling implementation for the RIS algorithms:
	// the compiled plan kernels (KernelPlan, the default) or the Bernoulli
	// oracle (KernelOracle). Both draw from the same distribution — results
	// are equivalent statistically and carry the same guarantees — but they
	// consume different PRNG sequences, so runs are deterministic per
	// (Kernel, Seed), not across kernels.
	Kernel Kernel
	// MCRuns is the Monte-Carlo budget for CELF/CELF++ spread estimates
	// (0 ⇒ 10,000, the paper's setting).
	MCRuns int
	// BorgsC overrides the width-threshold constant of the Borgs
	// algorithm (0 ⇒ the analysis value 48; lower for practical runs).
	BorgsC float64
	// Eps1, Eps2, Eps3 optionally fix SSA's ε-split (must satisfy the
	// paper's Eq. 18; see RecommendedEpsilonSplit). All-zero selects the
	// paper's default split. Ignored by every other algorithm.
	Eps1, Eps2, Eps3 float64
	// OnCheckpoint, when non-nil, is invoked at every stop-and-stare
	// checkpoint of SSA/D-SSA with that iteration's state (observability
	// into the doubling/staring loop). Ignored by other algorithms.
	OnCheckpoint func(Checkpoint)
}

// Checkpoint reports one stop-and-stare iteration to Options.OnCheckpoint.
type Checkpoint = core.Checkpoint

// Result reports a Maximize run.
type Result struct {
	// Seeds is the selected seed set Ŝ_k.
	Seeds []uint32
	// InfluenceEstimate is the algorithm's own estimate of I(Ŝ_k)
	// (0 for the Degree/Random heuristics, which do not estimate).
	InfluenceEstimate float64
	// Samples is the number of RR sets generated (0 for non-RIS methods).
	Samples int64
	// Iterations is the number of checkpoints/phases taken.
	Iterations int
	// HitCap reports a stop-and-stare run that exited via the Nmax cap.
	HitCap bool
	// MemoryBytes approximates the RR-collection footprint.
	MemoryBytes int64
	// Elapsed is the wall-clock time of the algorithm.
	Elapsed time.Duration
	// Warm reports a Session query answered entirely from already-resident
	// RR samples (no store growth; SSA's ephemeral verification samples
	// don't count). Always false for one-shot Maximize calls.
	Warm bool
	// Coalesced reports a query answered by joining another identical
	// in-flight query's execution instead of running its own: the
	// multi-tenant serving manager (internal/serving) folds concurrent
	// identical (algorithm, k, ε, δ) requests on one session into a single
	// execution, and every follower gets the leader's result with this flag
	// set. Because results are deterministic in the session seed, a
	// coalesced response is bit-identical to the one the follower would
	// have computed itself. Always false for direct Session/Maximize calls.
	Coalesced bool
}

func (o Options) fill() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MCRuns <= 0 {
		o.MCRuns = 10000
	}
	return o
}

// Maximize runs the chosen influence-maximization algorithm on g under the
// given model and returns the seed set with metadata. SSA/D-SSA/IMM/TIM/
// TIM+ return (1−1/e−ε)-approximate solutions with probability ≥ 1−δ.
func Maximize(g *Graph, model Model, algo Algorithm, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("stopandstare: nil graph")
	}
	opt = opt.fill()
	switch algo {
	case SSA, DSSA:
		// A one-shot run is exactly a session serving a single query: the
		// same loops, store and solver machinery, so the cold path and the
		// serving path cannot drift apart.
		sess, err := NewSession(g, model, SessionOptions{
			Seed: opt.Seed, Workers: opt.Workers,
			Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
			Kernel: opt.Kernel,
		})
		if err != nil {
			return nil, err
		}
		return sess.Maximize(Query{Algorithm: algo, K: opt.K,
			Epsilon: opt.Epsilon, Delta: opt.Delta,
			Eps1: opt.Eps1, Eps2: opt.Eps2, Eps3: opt.Eps3,
			OnCheckpoint: opt.OnCheckpoint})
	case IMM, TIM, TIMPlus:
		s, err := ris.NewSampler(g, model)
		if err != nil {
			return nil, err
		}
		bopt := baselines.Options{K: opt.K, Epsilon: opt.Epsilon, Delta: opt.Delta,
			Seed: opt.Seed, Workers: opt.Workers,
			Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
			Kernel: opt.Kernel}
		var res *baselines.Result
		switch algo {
		case IMM:
			res, err = baselines.IMM(s, bopt)
		case TIM:
			res, err = baselines.TIM(s, bopt)
		default:
			res, err = baselines.TIMPlus(s, bopt)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Seeds: res.Seeds, InfluenceEstimate: res.Influence,
			Samples: res.TotalSamples, Iterations: res.Iterations,
			MemoryBytes: res.MemoryBytes, Elapsed: res.Elapsed}, nil
	case Borgs:
		s, err := ris.NewSampler(g, model)
		if err != nil {
			return nil, err
		}
		res, err := baselines.Borgs(s, baselines.BorgsOptions{
			Options: baselines.Options{K: opt.K, Epsilon: opt.Epsilon, Delta: opt.Delta,
				Seed: opt.Seed, Workers: opt.Workers,
				Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
				Kernel: opt.Kernel},
			C: opt.BorgsC,
		})
		if err != nil {
			return nil, err
		}
		return &Result{Seeds: res.Seeds, InfluenceEstimate: res.Influence,
			Samples: res.TotalSamples, Iterations: res.Iterations,
			MemoryBytes: res.MemoryBytes, Elapsed: res.Elapsed}, nil
	case CELF, CELFPlusPlus:
		gopt := baselines.GreedyOptions{K: opt.K, Model: model, MCRuns: opt.MCRuns,
			Seed: opt.Seed, Workers: opt.Workers}
		var res *baselines.GreedyResult
		var err error
		if algo == CELF {
			res, err = baselines.CELF(g, gopt)
		} else {
			res, err = baselines.CELFPlusPlus(g, gopt)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Seeds: res.Seeds, InfluenceEstimate: res.Influence,
			Iterations: int(res.Evaluations), Elapsed: res.Elapsed}, nil
	case Degree:
		start := time.Now()
		seeds, err := baselines.HighDegree(g, opt.K)
		if err != nil {
			return nil, err
		}
		return &Result{Seeds: seeds, Elapsed: time.Since(start)}, nil
	case Random:
		start := time.Now()
		seeds, err := baselines.RandomSeeds(g, opt.K, opt.Seed)
		if err != nil {
			return nil, err
		}
		return &Result{Seeds: seeds, Elapsed: time.Since(start)}, nil
	default:
		return nil, fmt.Errorf("stopandstare: unknown algorithm %q", algo)
	}
}

// EvaluateSpread scores a seed set by forward Monte-Carlo simulation:
// the expected number of activated nodes, with its standard error.
func EvaluateSpread(g *Graph, model Model, seeds []uint32, runs int, seed uint64, workers int) (mean, stderr float64, err error) {
	return diffusion.Spread(g, model, seeds, diffusion.SpreadOptions{
		Runs: runs, Seed: seed, Workers: workers,
	})
}

// RecommendedEpsilonSplit returns SSA ε₁/ε₂/ε₃ parameters following the
// paper's §4.2 guidance for the given network size (edge count), always
// satisfying the Eq. 18 constraint. Pass them through Options to tune SSA;
// D-SSA needs no tuning (it derives its split from data).
func RecommendedEpsilonSplit(eps float64, edges int64) (e1, e2, e3 float64, ok bool) {
	return core.RecommendedSplit(eps, core.RegimeFor(edges))
}

// Certificate is a two-sided (ε,δ) influence certificate; see CertifySpread.
type Certificate = core.Certificate

// CertifySpread produces an (ε,δ) certificate of I(S) from fresh RR sets
// via the Dagum–Karp–Luby–Ross stopping rule:
// Pr[(1−ε)·I(S) ≤ cert.Influence ≤ (1+ε)·I(S)] ≥ 1−δ.
// Far cheaper than EvaluateSpread when I(S) ≪ n, and it comes with a
// rigorous error bound instead of a standard error.
func CertifySpread(g *Graph, model Model, seeds []uint32, eps, delta float64, seed uint64) (*Certificate, error) {
	s, err := ris.NewSampler(g, model)
	if err != nil {
		return nil, err
	}
	return core.Certify(s, seeds, eps, delta, seed)
}
