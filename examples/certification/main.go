// Influence certification: after an IM run, how much is the chosen seed
// set really worth? The classic answer is forward Monte-Carlo with a
// standard error; the RIS-native answer — the same machinery the paper's
// Estimate-Inf procedure uses — is a stopping-rule certificate with a
// rigorous (ε,δ) bound, usually at a fraction of the cost.
//
// This example runs both on the same seed sets and compares cost and
// agreement, and shows the §4.2 ε-split recommendation for SSA.
//
//	go run ./examples/certification
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"stopandstare"
)

func main() {
	g, err := stopandstare.GeneratePreset("netphy", 1.0, 27)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())
	workers := runtime.NumCPU()

	// Tune SSA with the paper's §4.2 guidance for this network size.
	e1, e2, e3, ok := stopandstare.RecommendedEpsilonSplit(0.1, g.NumEdges())
	if !ok {
		log.Fatal("no feasible split")
	}
	fmt.Printf("recommended SSA split for %d edges: e1=%.4f e2=%.4f e3=%.4f\n\n",
		g.NumEdges(), e1, e2, e3)

	for _, k := range []int{10, 100, 1000} {
		res, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.SSA,
			stopandstare.Options{K: k, Epsilon: 0.1, Seed: 5, Workers: workers,
				Eps1: e1, Eps2: e2, Eps3: e3})
		if err != nil {
			log.Fatal(err)
		}

		// Rigorous certificate from fresh RR sets.
		t0 := time.Now()
		cert, err := stopandstare.CertifySpread(g, stopandstare.LT, res.Seeds, 0.05, 0.001, 9)
		if err != nil {
			log.Fatal(err)
		}
		certTime := time.Since(t0)

		// Forward Monte-Carlo for comparison.
		t0 = time.Now()
		mc, se, err := stopandstare.EvaluateSpread(g, stopandstare.LT, res.Seeds, 10000, 11, workers)
		if err != nil {
			log.Fatal(err)
		}
		mcTime := time.Since(t0)

		fmt.Printf("k=%-5d  certificate %.0f ± 5%% (w.p. 99.9%%) in %v (%d RR sets)\n",
			k, cert.Influence, certTime, cert.Samples)
		fmt.Printf("         monte-carlo %.0f ± %.0f (stderr)     in %v (10000 cascades)\n\n",
			mc, se, mcTime)
	}
	fmt.Println("the two agree; the certificate carries a provable error bound and is")
	fmt.Println("cheapest exactly when influence is small — where MC needs the most runs.")
}
