// Algorithm anatomy: watch SSA's and D-SSA's stop-and-stare checkpoints on
// the same instance, and see the sample-efficiency gap to the fixed-θ
// generation of the earlier methods. This is the paper's core claim
// (Theorems 3 and 6) made observable.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"runtime"

	"stopandstare"
)

func main() {
	g, err := stopandstare.GeneratePowerLaw(50000, 400000, 2.1, 19)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-law network: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())
	workers := runtime.NumCPU()

	// Watch D-SSA stop and stare: the stream doubles at each checkpoint
	// until the dynamically computed ε_t drops below ε.
	fmt.Println("D-SSA checkpoints (LT, k=100, eps=0.1):")
	fmt.Printf("%-6s  %10s  %10s  %10s  %8s\n", "iter", "rr-sets", "coverage", "eps_t", "stop?")
	_, err = stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA, stopandstare.Options{
		K: 100, Epsilon: 0.1, Seed: 47, Workers: workers,
		OnCheckpoint: func(c stopandstare.Checkpoint) {
			fmt.Printf("%-6d  %10d  %10d  %10.4f  %8v\n",
				c.Iteration, c.Samples, c.Coverage, c.EpsilonT, c.Passed)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("sample counts vs epsilon (LT, k=100) — tighter epsilon costs more:")
	fmt.Printf("%-8s  %10s  %10s  %10s  %10s\n", "epsilon", "D-SSA", "SSA", "IMM", "TIM+")
	for _, eps := range []float64{0.3, 0.2, 0.1, 0.05} {
		counts := map[stopandstare.Algorithm]int64{}
		for _, algo := range []stopandstare.Algorithm{
			stopandstare.DSSA, stopandstare.SSA, stopandstare.IMM, stopandstare.TIMPlus,
		} {
			res, err := stopandstare.Maximize(g, stopandstare.LT, algo, stopandstare.Options{
				K: 100, Epsilon: eps, Seed: 47, Workers: workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			counts[algo] = res.Samples
		}
		fmt.Printf("%-8.2f  %10d  %10d  %10d  %10d\n", eps,
			counts[stopandstare.DSSA], counts[stopandstare.SSA],
			counts[stopandstare.IMM], counts[stopandstare.TIMPlus])
	}
	fmt.Println()

	fmt.Println("sample counts vs k (LT, eps=0.1) — D-SSA adapts, fixed-θ overshoots:")
	fmt.Printf("%-6s  %10s  %10s  %10s\n", "k", "D-SSA", "SSA", "IMM")
	for _, k := range []int{1, 10, 100, 1000} {
		row := map[stopandstare.Algorithm]int64{}
		for _, algo := range []stopandstare.Algorithm{
			stopandstare.DSSA, stopandstare.SSA, stopandstare.IMM,
		} {
			res, err := stopandstare.Maximize(g, stopandstare.LT, algo, stopandstare.Options{
				K: k, Epsilon: 0.1, Seed: 53, Workers: workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[algo] = res.Samples
		}
		fmt.Printf("%-6d  %10d  %10d  %10d\n", k,
			row[stopandstare.DSSA], row[stopandstare.SSA], row[stopandstare.IMM])
	}
	fmt.Println()
	fmt.Println("the paper's reading: SSA meets a type-1 minimum threshold for its fixed")
	fmt.Println("epsilon split; D-SSA re-derives the split from data each checkpoint and")
	fmt.Println("meets the type-2 minimum — never worse, often clearly better.")
}
