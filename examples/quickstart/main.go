// Quickstart: generate a small social network, find 20 influential users
// with D-SSA, and score the result by Monte-Carlo simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"stopandstare"
)

func main() {
	// A NetHEPT-shaped citation network (15k nodes, ~59k edges) with the
	// paper's weighted-cascade edge probabilities.
	g, err := stopandstare.GeneratePreset("nethept", 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// D-SSA under the Linear Threshold model: (1−1/e−ε)-approximate with
	// probability 1−1/n, self-tuning, and close to the minimum number of
	// RIS samples information-theoretically required.
	res, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA,
		stopandstare.Options{K: 20, Epsilon: 0.1, Seed: 7, Workers: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D-SSA: %d RR sets, %v, estimated influence %.0f\n",
		res.Samples, res.Elapsed, res.InfluenceEstimate)
	fmt.Printf("seeds: %v\n", res.Seeds)

	// Independent validation: forward Monte-Carlo simulation of the
	// Linear Threshold cascade from the selected seeds.
	spread, se, err := stopandstare.EvaluateSpread(g, stopandstare.LT, res.Seeds,
		10000, 11, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated spread: %.0f ± %.0f users (%.1f%% of the network)\n",
		spread, se, 100*spread/float64(g.NumNodes()))
}
