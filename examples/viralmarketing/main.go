// Viral marketing scenario (the paper's §1 motivation): a brand wants to
// seed a campaign with k ambassadors on a large social network and needs an
// answer in seconds, with a provable quality guarantee.
//
// This example runs the full comparison of the paper's §7.2 at laptop
// scale: D-SSA and SSA against IMM and TIM+, under both IC and LT, showing
// the headline result — orders-of-magnitude fewer samples at identical
// seed-set quality.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"
	"runtime"

	"stopandstare"
)

func main() {
	// An Epinions-like trust network at half scale.
	g, err := stopandstare.GeneratePreset("epinions", 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trust network: %d users, %d edges\n\n", g.NumNodes(), g.NumEdges())

	const k = 100
	workers := runtime.NumCPU()
	algos := []stopandstare.Algorithm{
		stopandstare.DSSA, stopandstare.SSA, stopandstare.IMM, stopandstare.TIMPlus,
	}
	for _, model := range []stopandstare.Model{stopandstare.LT, stopandstare.IC} {
		fmt.Printf("--- %v model, k = %d ambassadors ---\n", model, k)
		fmt.Printf("%-6s  %12s  %10s  %12s  %12s\n", "algo", "time", "rr-sets", "est. reach", "sim. reach")
		for _, algo := range algos {
			res, err := stopandstare.Maximize(g, model, algo, stopandstare.Options{
				K: k, Epsilon: 0.1, Seed: 3, Workers: workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			spread, _, err := stopandstare.EvaluateSpread(g, model, res.Seeds, 5000, 99, workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6s  %12v  %10d  %12.0f  %12.0f\n",
				algo, res.Elapsed, res.Samples, res.InfluenceEstimate, spread)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Figs. 2-5): all four reach the same audience;")
	fmt.Println("D-SSA and SSA generate several times fewer RR sets than IMM/TIM+.")
}
