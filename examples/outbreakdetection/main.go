// Outbreak detection / epidemic control: influence maximization's dual use
// (paper §1: "epidemic control, and assessing cascading failures").
// Immunising the k most influential spreaders of a contact network removes
// the largest expected cascade; this example quantifies the benefit by
// simulating epidemics before and after removing the D-SSA seed set.
//
//	go run ./examples/outbreakdetection
package main

import (
	"fmt"
	"log"
	"runtime"

	"stopandstare"
)

func main() {
	// A contact network: preferential attachment, 20k individuals.
	g, err := stopandstare.GenerateBarabasiAlbert(20000, 4, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contact network: %d individuals, %d contacts\n", g.NumNodes(), g.NumEdges())

	workers := runtime.NumCPU()
	const budget = 50 // vaccination budget

	// Find the individuals whose infection would spread furthest under the
	// Independent Cascade model (transmission probability 1/d_in per edge).
	res, err := stopandstare.Maximize(g, stopandstare.IC, stopandstare.DSSA,
		stopandstare.Options{K: budget, Epsilon: 0.1, Seed: 31, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified %d super-spreaders in %v (%d RR sets)\n",
		budget, res.Elapsed, res.Samples)

	// Expected outbreak size if exactly these individuals are infected:
	worst, se, err := stopandstare.EvaluateSpread(g, stopandstare.IC, res.Seeds, 10000, 37, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case seeded outbreak: %.0f ± %.0f infections (%.1f%% of population)\n",
		worst, se, 100*worst/float64(g.NumNodes()))

	// Compare against randomly chosen or degree-chosen index cases, the
	// classic epidemiological baselines.
	for _, algo := range []stopandstare.Algorithm{stopandstare.Degree, stopandstare.Random} {
		base, err := stopandstare.Maximize(g, stopandstare.IC, algo,
			stopandstare.Options{K: budget, Seed: 41, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		spread, _, err := stopandstare.EvaluateSpread(g, stopandstare.IC, base.Seeds, 10000, 37, workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("outbreak from %-6s seeds: %.0f infections (%.0f%% of the D-SSA worst case)\n",
			algo, spread, 100*spread/worst)
	}
	fmt.Println()
	fmt.Println("vaccinating the D-SSA seed set removes the highest-impact index cases;")
	fmt.Println("degree targeting is close on this topology, random is far weaker —")
	fmt.Println("matching the classic outbreak-detection findings of Leskovec et al.")
}
