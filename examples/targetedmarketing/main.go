// Targeted viral marketing (the paper's §7.3): instead of maximising total
// reach, maximise reach into a topic-interested audience — here a synthetic
// "politics" community extracted from simulated tweets, exactly mirroring
// how the paper mines its Table 4 groups from Twitter keywords.
//
// Compares the paper's SSA/D-SSA (with weighted RIS sampling) against
// KB-TIM, the prior state of the art for the problem.
//
//	go run ./examples/targetedmarketing
package main

import (
	"fmt"
	"log"
	"runtime"

	"stopandstare"
)

func main() {
	// A Twitter-shaped network at reduced scale.
	g, err := stopandstare.GeneratePreset("twitter", 0.001, 5)
	if err != nil {
		log.Fatal(err)
	}
	topics, err := stopandstare.GenerateTopics(g, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d edges\n", g.NumNodes(), g.NumEdges())
	for i, tp := range topics {
		fmt.Printf("topic %d (%s): %d targeted users, total relevance %.0f\n",
			i+1, tp.Name, tp.Users, tp.Gamma)
	}
	fmt.Println()

	const k = 50
	workers := runtime.NumCPU()
	for i, tp := range topics {
		fmt.Printf("--- topic %d, k = %d seeds, LT model ---\n", i+1, k)
		fmt.Printf("%-7s  %12s  %10s  %14s\n", "algo", "time", "rr-sets", "benefit (sim)")
		for _, algo := range []stopandstare.Algorithm{
			stopandstare.DSSA, stopandstare.SSA, stopandstare.TIMPlus, // TIMPlus = KB-TIM here
		} {
			res, err := stopandstare.MaximizeTargeted(g, stopandstare.LT, tp.Weights, algo,
				stopandstare.Options{K: k, Epsilon: 0.1, Seed: 23, Workers: workers})
			if err != nil {
				log.Fatal(err)
			}
			benefit, _, err := stopandstare.EvaluateBenefit(g, stopandstare.LT, tp.Weights,
				res.Seeds, 5000, 29, workers)
			if err != nil {
				log.Fatal(err)
			}
			name := string(algo)
			if algo == stopandstare.TIMPlus {
				name = "kb-tim"
			}
			fmt.Printf("%-7s  %12v  %10d  %14.0f\n", name, res.Elapsed, res.Samples, benefit)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Fig. 8): same benefit, SSA/D-SSA up to")
	fmt.Println("two orders of magnitude faster than KB-TIM.")
}
