package stopandstare_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"stopandstare"
)

// This file extends the session differential harness to the disk spill
// tier: a session whose store runs under a byte budget — 0%, ~50%, ~90%
// spilled, or everything spillable spilled — must answer a randomized
// query stream bit-identically to an unbudgeted session. Spilling moves
// residency, never results.

// compareSpilledResult is assertSameResult minus the cold-run Warm check:
// the reference here is itself a warm session, so repeats legitimately
// report Warm on both sides.
func compareSpilledResult(t *testing.T, ctx string, got, want *stopandstare.Result,
	gotTrace, wantTrace []stopandstare.Checkpoint) {
	t.Helper()
	if fmt.Sprint(got.Seeds) != fmt.Sprint(want.Seeds) {
		t.Fatalf("%s: Seeds %v vs flat %v", ctx, got.Seeds, want.Seeds)
	}
	if got.InfluenceEstimate != want.InfluenceEstimate {
		t.Fatalf("%s: Influence %v vs flat %v", ctx, got.InfluenceEstimate, want.InfluenceEstimate)
	}
	if got.Samples != want.Samples || got.Iterations != want.Iterations || got.HitCap != want.HitCap {
		t.Fatalf("%s: samples/iter/hitcap %d/%d/%v vs flat %d/%d/%v", ctx,
			got.Samples, got.Iterations, got.HitCap, want.Samples, want.Iterations, want.HitCap)
	}
	if len(gotTrace) != len(wantTrace) {
		t.Fatalf("%s: %d checkpoints vs flat %d", ctx, len(gotTrace), len(wantTrace))
	}
	for i := range wantTrace {
		if gotTrace[i] != wantTrace[i] {
			t.Fatalf("%s: checkpoint %d differs:\nspilled %+v\nflat    %+v", ctx, i, gotTrace[i], wantTrace[i])
		}
	}
}

// runSpillSequence replays qs on sess, returning per-query results and
// traces.
func runSpillSequence(t *testing.T, ctx string, sess *stopandstare.Session, qs []sessionQuery) ([]*stopandstare.Result, [][]stopandstare.Checkpoint) {
	t.Helper()
	results := make([]*stopandstare.Result, len(qs))
	traces := make([][]stopandstare.Checkpoint, len(qs))
	for qi, q := range qs {
		var trace []stopandstare.Checkpoint
		res, err := sess.Maximize(stopandstare.Query{
			Algorithm: q.algo, K: q.k, Epsilon: q.eps,
			OnCheckpoint: func(cp stopandstare.Checkpoint) { trace = append(trace, cp) },
		})
		if err != nil {
			t.Fatalf("%s: q%d(%s,k=%d,eps=%v): %v", ctx, qi, q.algo, q.k, q.eps, err)
		}
		results[qi], traces[qi] = res, trace
	}
	return results, traces
}

// TestSessionDifferentialSpilled runs a randomized query stream on spilled
// sessions at budgets derived from the flat session's resident footprint
// (no spill, ~50%, ~90%, and a 1-byte budget that spills everything
// spillable), flat and sharded, demanding bit-identical per-query results
// and checkpoint traces — then hammers the tightest-budget session with
// concurrent repeats for race coverage over the fault-in paths.
func TestSessionDifferentialSpilled(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(220, 1400, 2.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 71
	qs := randomQuerySequence(43, 10)

	flat, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{
		Seed: seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantTraces := runSpillSequence(t, "flat", flat, qs)
	flatBytes := flat.Stats().StoreBytes
	if flatBytes <= 0 {
		t.Fatalf("flat session reports StoreBytes %d", flatBytes)
	}

	type cfg struct {
		budget int64
		shards int
	}
	cfgs := []cfg{
		{2 * flatBytes, 0}, // budget above footprint: spill tier armed, nothing moves
		{flatBytes / 2, 0},
		{flatBytes / 10, 0},
		{1, 0},
		{1, 3}, // sharded store, everything spillable on disk
	}
	for _, c := range cfgs {
		ctx := fmt.Sprintf("budget=%d/shards=%d", c.budget, c.shards)
		sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{
			Seed: seed, Workers: 2, Shards: c.shards, ShardWorkers: 2,
			SpillBudgetBytes: c.budget, SpillDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		gotRes, gotTraces := runSpillSequence(t, ctx, sess, qs)
		for qi := range qs {
			compareSpilledResult(t, fmt.Sprintf("%s/q%d", ctx, qi),
				gotRes[qi], wantRes[qi], gotTraces[qi], wantTraces[qi])
		}
		st := sess.Stats()
		if c.budget < flatBytes/2+1 {
			// A budget below the flat footprint must actually tier data out.
			if st.SpillFileBytes <= 0 {
				t.Fatalf("%s: no spill file despite under-footprint budget: %+v", ctx, st)
			}
		}
		if c.budget == 1 && c.shards == 0 && runtime.GOOS == "linux" && st.StoreBytes >= flatBytes {
			t.Fatalf("%s: resident %d not reduced below flat %d", ctx, st.StoreBytes, flatBytes)
		}

		if c.budget == 1 {
			// Concurrent warm repeats: every reader faults spilled blocks
			// back through the shared mappings; run under -race this covers
			// reader/reader and reader/LRU-stamp interleavings.
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for qi := 0; qi < 3; qi++ {
						res, err := sess.Maximize(stopandstare.Query{
							Algorithm: qs[qi].algo, K: qs[qi].k, Epsilon: qs[qi].eps,
						})
						if err != nil {
							t.Errorf("%s: concurrent q%d: %v", ctx, qi, err)
							return
						}
						if fmt.Sprint(res.Seeds) != fmt.Sprint(wantRes[qi].Seeds) || res.Samples != wantRes[qi].Samples {
							t.Errorf("%s: concurrent q%d drifted: %v/%d vs %v/%d", ctx, qi,
								res.Seeds, res.Samples, wantRes[qi].Seeds, wantRes[qi].Samples)
						}
					}
				}()
			}
			wg.Wait()
		}
	}
}
