package tvm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// BudgetedOptions configures the cost-aware targeted viral marketing
// extension (the BCT problem of the authors' INFOCOM'16 companion, cited
// as [12] in the paper): maximise benefit B(S) subject to Σ cost(v) ≤ B.
type BudgetedOptions struct {
	// Budget is the total spend allowed.
	Budget float64
	// Costs[v] is the price of seeding v (entries ≤ 0 default to 1).
	Costs []float64
	// Epsilon/Delta as elsewhere; Delta 0 ⇒ 1/n.
	Epsilon float64
	Delta   float64
	Seed    uint64
	// Workers bounds sampling parallelism; ≤0 selects
	// runtime.GOMAXPROCS(0) (results are worker-count-independent).
	Workers int
	// Shards ≥ 1 stores the WRIS samples in an id-sharded store
	// (bit-identical results for any shard count); ShardWorkers bounds
	// per-shard parallelism (≤0 derives Workers/Shards).
	Shards       int
	ShardWorkers int
	// Kernel selects the RR sampling implementation (plan kernels by
	// default, ris.KernelOracle for the Bernoulli oracle).
	Kernel ris.Kernel
	// Samples optionally fixes the number of WRIS samples; 0 derives an
	// Eq. 14-style threshold from the instance (see BudgetedMaximize).
	Samples int
}

// normalize validates and fills the non-budget fields in place (the budget
// itself is per-solve: BudgetedSweep legitimately carries many).
func (o *BudgetedOptions) normalize(n int) error {
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if !(o.Epsilon > 0 && o.Epsilon < 1) || !(o.Delta > 0 && o.Delta < 1) {
		return fmt.Errorf("tvm: epsilon/delta out of range (%v, %v)", o.Epsilon, o.Delta)
	}
	return nil
}

// BudgetedResult reports a cost-aware run.
type BudgetedResult struct {
	Seeds   []uint32
	Benefit float64 // Î estimate of B(S)
	Budget  float64 // the budget this solve was run under
	Cost    float64
	Samples int64
	Elapsed time.Duration
	Memory  int64
}

// Errors of the budgeted path.
var (
	ErrBadBudget = errors.New("tvm: budget must be positive")
	ErrNoBudgets = errors.New("tvm: sweep needs at least one budget")
)

// sampleSize derives the WRIS sample count for a budget: the Eq. 14
// pattern with OPT lower-bounded by the largest single affordable benefit
// and k replaced by the largest affordable seed count.
func (t *Instance) sampleSize(opt BudgetedOptions, budget float64) int {
	if opt.Samples > 0 {
		return opt.Samples
	}
	n := t.G.NumNodes()
	costOf := func(v int) float64 {
		if v < len(opt.Costs) && opt.Costs[v] > 0 {
			return opt.Costs[v]
		}
		return 1
	}
	// kMax: the most seeds any feasible solution can hold (cheapest-first).
	minCost := math.Inf(1)
	var optLB float64 // best affordable single-node benefit
	for v := 0; v < n; v++ {
		c := costOf(v)
		if c < minCost {
			minCost = c
		}
		if c <= budget && t.Weights[v] > optLB {
			optLB = t.Weights[v]
		}
	}
	kMax := int(budget / minCost)
	if kMax < 1 {
		kMax = 1
	}
	if kMax > n {
		kMax = n
	}
	if optLB <= 0 {
		optLB = 1
	}
	theta := 4 * stats.OneMinusInvE * t.Gamma *
		(2*math.Log(2/opt.Delta) + stats.LnChoose(n, kMax)) /
		(opt.Epsilon * opt.Epsilon * optLB)
	const hardCap = float64(1 << 30)
	if theta > hardCap {
		theta = hardCap
	}
	if theta < 1 {
		theta = 1
	}
	return int(theta)
}

// BudgetedMaximize solves the budgeted TVM problem with WRIS sampling and
// the Khuller–Moss–Naor ratio greedy ((1−1/√e)-approximate selection on
// the sampled coverage instance). The sample count follows the Eq. 14
// pattern (see sampleSize); pass BudgetedOptions.Samples to override.
func BudgetedMaximize(t *Instance, model diffusion.Model, opt BudgetedOptions) (*BudgetedResult, error) {
	res, err := BudgetedSweep(t, model, []float64{opt.Budget}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// BudgetedSession is the cost-aware serving object: a long-lived WRIS
// sample stream plus one incremental ratio-greedy solver, answering a
// stream of budget queries against one (instance, model). It is the
// budgeted sibling of stopandstare.Session: the store only ever grows (a
// query tops up to its own sample threshold θ(budget) and reuses every
// prefix), the solver folds each RR set into its persistent gain counts at
// most once (queries at the high-water θ are pure selection passes), and
// the compiled sampling plan comes from the process-wide plan cache. A
// query whose θ falls BELOW the already-scanned prefix is answered by a
// throwaway from-scratch solve over [0, θ) — an O(θ) rescan — while the
// persistent counts stay at the high-water mark, so the next larger budget
// is incremental again; for alternating big/small budgets that beats
// rewinding the persistent solver, whose every big query would then rescan
// the larger suffix. Concurrency follows the same RWMutex discipline:
// queries needing no growth share a read lock; top-ups take the write
// lock; solves serialize on the single solver (selection is the cheap
// phase).
//
// Each Maximize(budget) is solved on the stream prefix of length
// θ(budget), so its result is a pure function of (instance, model, seed,
// kernel, ε, δ, budget) — independent of what was queried before, and
// bit-identical to a cold BudgetedMaximize at the same parameters when
// Samples is pinned.
type BudgetedSession struct {
	inst *Instance
	opt  BudgetedOptions // stream parameters; the Budget field is ignored

	store ris.Store
	mu    sync.RWMutex // store growth: writer tops up, readers solve
	solMu sync.Mutex   // the incremental solver's scratch is single-writer
	sol   *maxcover.BudgetedSolver
}

// NewBudgetedSession builds a budgeted serving session. opt fixes the
// stream (costs, ε, δ, seed, workers, shards, kernel, optional pinned
// Samples); opt.Budget is ignored — budgets arrive per query.
func NewBudgetedSession(t *Instance, model diffusion.Model, opt BudgetedOptions) (*BudgetedSession, error) {
	if err := opt.normalize(t.G.NumNodes()); err != nil {
		return nil, err
	}
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	store := ris.NewStore(s, opt.Seed, ris.StoreOptions{
		Workers: opt.Workers, Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
	})
	return &BudgetedSession{
		inst: t, opt: opt,
		store: store,
		sol:   maxcover.NewBudgetedSolver(store, opt.Costs),
	}, nil
}

// Samples returns the number of WRIS samples resident in the session store.
func (bs *BudgetedSession) Samples() int {
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	return bs.store.Len()
}

// Maximize serves one budget query on the stream prefix of length
// θ(budget) (BudgetedOptions.Samples pins θ), growing the store only past
// its current length.
func (bs *BudgetedSession) Maximize(budget float64) (*BudgetedResult, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w (got %v)", ErrBadBudget, budget)
	}
	return bs.maximizeAt(budget, bs.inst.sampleSize(bs.opt, budget), time.Now()), nil
}

// maximizeAt solves one budget over the stream prefix [0, samples),
// topping the store up as needed. start anchors the reported Elapsed
// (BudgetedSweep threads one start through all its solves, preserving its
// cumulative-elapsed contract).
func (bs *BudgetedSession) maximizeAt(budget float64, samples int, start time.Time) *BudgetedResult {
	bs.mu.RLock()
	grown := bs.store.Len() >= samples
	bs.mu.RUnlock()
	if !grown {
		bs.mu.Lock()
		bs.store.GenerateTo(samples) // re-checks under the lock; grow-only
		bs.mu.Unlock()
	}
	bs.mu.RLock()
	bs.solMu.Lock()
	mc := bs.sol.Solve(samples, budget)
	bs.solMu.Unlock()
	mem := bs.store.Bytes()
	bs.mu.RUnlock()
	return &BudgetedResult{
		Seeds:   mc.Seeds,
		Benefit: mc.Influence(bs.inst.Gamma),
		Budget:  budget,
		Cost:    mc.Cost,
		Samples: int64(mc.Upto),
		Elapsed: time.Since(start),
		Memory:  mem,
	}
}

// BudgetedSweep solves the budgeted TVM problem for every budget in the
// list against ONE WRIS sample stream — a BudgetedSession serving the whole
// sweep. The stream is sized once at max_b sampleSize(b), so every budget
// gets at least the samples its standalone (ε, δ) guarantee requires (the
// threshold is not monotone in the budget: a larger budget can afford a
// higher-benefit single node, which shrinks its θ); the session's
// incremental maxcover.BudgetedSolver accumulates gain counts once, and
// each budget is then a pure selection pass proportional to its covered
// items. Each returned result is bit-identical to maxcover.GreedyBudgeted
// on the same collection — but a sweep over N budgets costs one stream
// scan instead of N, and further sweeps on the same session reuse stream
// and counts entirely.
//
// Budgets may arrive in any order (ascending, descending, duplicated);
// every entry must be positive. Results are returned in input order, each
// carrying its Budget, the shared sample count, and the cumulative elapsed
// time at the point its solve finished.
func BudgetedSweep(t *Instance, model diffusion.Model, budgets []float64, opt BudgetedOptions) ([]*BudgetedResult, error) {
	start := time.Now()
	if len(budgets) == 0 {
		return nil, ErrNoBudgets
	}
	for _, b := range budgets {
		if b <= 0 {
			return nil, fmt.Errorf("%w (got %v)", ErrBadBudget, b)
		}
	}
	bs, err := NewBudgetedSession(t, model, opt)
	if err != nil {
		return nil, err
	}
	// All budgets solve on the shared max-θ prefix: each gets at least its
	// standalone sample requirement, and the whole sweep is one stream.
	samples := 0
	for _, b := range budgets {
		if s := t.sampleSize(bs.opt, b); s > samples {
			samples = s
		}
	}
	out := make([]*BudgetedResult, len(budgets))
	for i, b := range budgets {
		out[i] = bs.maximizeAt(b, samples, start)
	}
	return out, nil
}
