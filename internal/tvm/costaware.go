package tvm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// BudgetedOptions configures the cost-aware targeted viral marketing
// extension (the BCT problem of the authors' INFOCOM'16 companion, cited
// as [12] in the paper): maximise benefit B(S) subject to Σ cost(v) ≤ B.
type BudgetedOptions struct {
	// Budget is the total spend allowed.
	Budget float64
	// Costs[v] is the price of seeding v (entries ≤ 0 default to 1).
	Costs []float64
	// Epsilon/Delta as elsewhere; Delta 0 ⇒ 1/n.
	Epsilon float64
	Delta   float64
	Seed    uint64
	Workers int
	// Samples optionally fixes the number of WRIS samples; 0 derives an
	// Eq. 14-style threshold from the instance (see BudgetedMaximize).
	Samples int
}

// BudgetedResult reports a cost-aware run.
type BudgetedResult struct {
	Seeds   []uint32
	Benefit float64 // Î estimate of B(S)
	Cost    float64
	Samples int64
	Elapsed time.Duration
	Memory  int64
}

// ErrBadBudget reports a non-positive budget.
var ErrBadBudget = errors.New("tvm: budget must be positive")

// BudgetedMaximize solves the budgeted TVM problem with WRIS sampling and
// the Khuller–Moss–Naor ratio greedy ((1−1/√e)-approximate selection on
// the sampled coverage instance). The sample count follows the Eq. 14
// pattern with OPT lower-bounded by the largest single affordable benefit
// and k replaced by the largest affordable seed count; pass
// BudgetedOptions.Samples to override.
func BudgetedMaximize(t *Instance, model diffusion.Model, opt BudgetedOptions) (*BudgetedResult, error) {
	start := time.Now()
	if opt.Budget <= 0 {
		return nil, ErrBadBudget
	}
	n := t.G.NumNodes()
	if opt.Delta == 0 {
		opt.Delta = 1 / float64(n)
	}
	if opt.Epsilon == 0 {
		opt.Epsilon = 0.1
	}
	if !(opt.Epsilon > 0 && opt.Epsilon < 1) || !(opt.Delta > 0 && opt.Delta < 1) {
		return nil, fmt.Errorf("tvm: epsilon/delta out of range (%v, %v)", opt.Epsilon, opt.Delta)
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}

	costOf := func(v int) float64 {
		if v < len(opt.Costs) && opt.Costs[v] > 0 {
			return opt.Costs[v]
		}
		return 1
	}
	// kMax: the most seeds any feasible solution can hold (cheapest-first).
	minCost := math.Inf(1)
	var optLB float64 // best affordable single-node benefit
	for v := 0; v < n; v++ {
		c := costOf(v)
		if c < minCost {
			minCost = c
		}
		if c <= opt.Budget && t.Weights[v] > optLB {
			optLB = t.Weights[v]
		}
	}
	kMax := int(opt.Budget / minCost)
	if kMax < 1 {
		kMax = 1
	}
	if kMax > n {
		kMax = n
	}
	if optLB <= 0 {
		optLB = 1
	}

	samples := opt.Samples
	if samples <= 0 {
		theta := 4 * stats.OneMinusInvE * t.Gamma *
			(2*math.Log(2/opt.Delta) + stats.LnChoose(n, kMax)) /
			(opt.Epsilon * opt.Epsilon * optLB)
		const hardCap = float64(1 << 30)
		if theta > hardCap {
			theta = hardCap
		}
		if theta < 1 {
			theta = 1
		}
		samples = int(theta)
	}

	col := ris.NewCollection(s, opt.Seed, opt.Workers)
	col.Generate(samples)
	mc := maxcover.GreedyBudgeted(col, col.Len(), opt.Costs, opt.Budget)
	return &BudgetedResult{
		Seeds:   mc.Seeds,
		Benefit: mc.Influence(t.Gamma),
		Cost:    mc.Cost,
		Samples: int64(col.Len()),
		Elapsed: time.Since(start),
		Memory:  col.Bytes(),
	}, nil
}
