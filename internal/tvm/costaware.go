package tvm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// BudgetedOptions configures the cost-aware targeted viral marketing
// extension (the BCT problem of the authors' INFOCOM'16 companion, cited
// as [12] in the paper): maximise benefit B(S) subject to Σ cost(v) ≤ B.
type BudgetedOptions struct {
	// Budget is the total spend allowed.
	Budget float64
	// Costs[v] is the price of seeding v (entries ≤ 0 default to 1).
	Costs []float64
	// Epsilon/Delta as elsewhere; Delta 0 ⇒ 1/n.
	Epsilon float64
	Delta   float64
	Seed    uint64
	// Workers bounds sampling parallelism; ≤0 selects
	// runtime.GOMAXPROCS(0) (results are worker-count-independent).
	Workers int
	// Shards ≥ 1 stores the WRIS samples in an id-sharded store
	// (bit-identical results for any shard count); ShardWorkers bounds
	// per-shard parallelism (≤0 derives Workers/Shards).
	Shards       int
	ShardWorkers int
	// Kernel selects the RR sampling implementation (plan kernels by
	// default, ris.KernelOracle for the Bernoulli oracle).
	Kernel ris.Kernel
	// Samples optionally fixes the number of WRIS samples; 0 derives an
	// Eq. 14-style threshold from the instance (see BudgetedMaximize).
	Samples int
}

// normalize validates and fills the non-budget fields in place (the budget
// itself is per-solve: BudgetedSweep legitimately carries many).
func (o *BudgetedOptions) normalize(n int) error {
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if !(o.Epsilon > 0 && o.Epsilon < 1) || !(o.Delta > 0 && o.Delta < 1) {
		return fmt.Errorf("tvm: epsilon/delta out of range (%v, %v)", o.Epsilon, o.Delta)
	}
	return nil
}

// BudgetedResult reports a cost-aware run.
type BudgetedResult struct {
	Seeds   []uint32
	Benefit float64 // Î estimate of B(S)
	Budget  float64 // the budget this solve was run under
	Cost    float64
	Samples int64
	Elapsed time.Duration
	Memory  int64
}

// Errors of the budgeted path.
var (
	ErrBadBudget = errors.New("tvm: budget must be positive")
	ErrNoBudgets = errors.New("tvm: sweep needs at least one budget")
)

// sampleSize derives the WRIS sample count for a budget: the Eq. 14
// pattern with OPT lower-bounded by the largest single affordable benefit
// and k replaced by the largest affordable seed count.
func (t *Instance) sampleSize(opt BudgetedOptions, budget float64) int {
	if opt.Samples > 0 {
		return opt.Samples
	}
	n := t.G.NumNodes()
	costOf := func(v int) float64 {
		if v < len(opt.Costs) && opt.Costs[v] > 0 {
			return opt.Costs[v]
		}
		return 1
	}
	// kMax: the most seeds any feasible solution can hold (cheapest-first).
	minCost := math.Inf(1)
	var optLB float64 // best affordable single-node benefit
	for v := 0; v < n; v++ {
		c := costOf(v)
		if c < minCost {
			minCost = c
		}
		if c <= budget && t.Weights[v] > optLB {
			optLB = t.Weights[v]
		}
	}
	kMax := int(budget / minCost)
	if kMax < 1 {
		kMax = 1
	}
	if kMax > n {
		kMax = n
	}
	if optLB <= 0 {
		optLB = 1
	}
	theta := 4 * stats.OneMinusInvE * t.Gamma *
		(2*math.Log(2/opt.Delta) + stats.LnChoose(n, kMax)) /
		(opt.Epsilon * opt.Epsilon * optLB)
	const hardCap = float64(1 << 30)
	if theta > hardCap {
		theta = hardCap
	}
	if theta < 1 {
		theta = 1
	}
	return int(theta)
}

// BudgetedMaximize solves the budgeted TVM problem with WRIS sampling and
// the Khuller–Moss–Naor ratio greedy ((1−1/√e)-approximate selection on
// the sampled coverage instance). The sample count follows the Eq. 14
// pattern (see sampleSize); pass BudgetedOptions.Samples to override.
func BudgetedMaximize(t *Instance, model diffusion.Model, opt BudgetedOptions) (*BudgetedResult, error) {
	res, err := BudgetedSweep(t, model, []float64{opt.Budget}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// BudgetedSweep solves the budgeted TVM problem for every budget in the
// list against ONE WRIS sample collection: the stream is generated once —
// sized at max_b sampleSize(b) so every budget gets at least the samples
// its standalone (ε, δ) guarantee requires (the threshold is not monotone
// in the budget: a larger budget can afford a higher-benefit single node,
// which shrinks its θ) — its gain counts are accumulated once by an
// incremental maxcover.BudgetedSolver, and each budget is then a pure
// selection pass proportional to its covered items. Each returned result
// is bit-identical to maxcover.GreedyBudgeted on the same collection — but
// a sweep over N budgets costs one stream scan instead of N.
//
// Budgets may arrive in any order (ascending, descending, duplicated);
// every entry must be positive. Results are returned in input order, each
// carrying its Budget, the shared sample count, and the cumulative elapsed
// time at the point its solve finished.
func BudgetedSweep(t *Instance, model diffusion.Model, budgets []float64, opt BudgetedOptions) ([]*BudgetedResult, error) {
	start := time.Now()
	if len(budgets) == 0 {
		return nil, ErrNoBudgets
	}
	for _, b := range budgets {
		if b <= 0 {
			return nil, fmt.Errorf("%w (got %v)", ErrBadBudget, b)
		}
	}
	if err := opt.normalize(t.G.NumNodes()); err != nil {
		return nil, err
	}
	samples := 0
	for _, b := range budgets {
		if s := t.sampleSize(opt, b); s > samples {
			samples = s
		}
	}
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)

	col := ris.NewStore(s, opt.Seed, ris.StoreOptions{
		Workers: opt.Workers, Shards: opt.Shards, ShardWorkers: opt.ShardWorkers,
	})
	col.Generate(samples)
	sol := maxcover.NewBudgetedSolver(col, opt.Costs)
	out := make([]*BudgetedResult, len(budgets))
	for i, b := range budgets {
		mc := sol.Solve(col.Len(), b)
		out[i] = &BudgetedResult{
			Seeds:   mc.Seeds,
			Benefit: mc.Influence(t.Gamma),
			Budget:  b,
			Cost:    mc.Cost,
			Samples: int64(col.Len()),
			Elapsed: time.Since(start),
			Memory:  col.Bytes(),
		}
	}
	return out, nil
}
