// Package tvm implements Targeted Viral Marketing (§7.3): maximise the
// benefit B(S) = Σ_v b(v)·Pr[S activates v] for non-negative node weights
// b(v) describing each user's relevance to a topic. Following Li–Zhang–Tan
// (KB-TIM) and the paper, the only change to the RIS machinery is weighted
// root selection (WRIS): roots are drawn proportionally to b(v), whereupon
// B(S) = Γ·Pr[S covers a weighted RR set] with Γ = Σ_v b(v) — so SSA,
// D-SSA, and TIM+ run unchanged with scale Γ and OPT lower bound equal to
// the top-k benefit sum.
package tvm

import (
	"errors"
	"fmt"
	"sort"

	"stopandstare/internal/baselines"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

// Instance is a TVM problem: a graph plus benefit weights.
type Instance struct {
	G       *graph.Graph
	Weights []float64 // b(v) ≥ 0
	Gamma   float64   // Σ b(v)
	Users   int       // |{v : b(v) > 0}|
}

// Errors.
var (
	ErrNilGraph   = errors.New("tvm: nil graph")
	ErrBadWeights = errors.New("tvm: weights must be non-negative, same length as nodes, positive sum")
)

// NewInstance validates weights and computes Γ.
func NewInstance(g *graph.Graph, weights []float64) (*Instance, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if len(weights) != g.NumNodes() {
		return nil, fmt.Errorf("%w: len=%d n=%d", ErrBadWeights, len(weights), g.NumNodes())
	}
	inst := &Instance{G: g, Weights: weights}
	for _, w := range weights {
		if w < 0 {
			return nil, ErrBadWeights
		}
		if w > 0 {
			inst.Users++
		}
		inst.Gamma += w
	}
	if inst.Gamma <= 0 {
		return nil, ErrBadWeights
	}
	return inst, nil
}

// Sampler returns the WRIS sampler for the instance under the given model.
func (t *Instance) Sampler(model diffusion.Model) (*ris.Sampler, error) {
	return ris.NewWeightedSampler(t.G, model, t.Weights)
}

// OptLowerBound returns Σ of the k largest benefits — a valid lower bound
// on OPT_k since seeding the top-k benefit nodes collects at least their
// own benefits.
func (t *Instance) OptLowerBound(k int) float64 {
	ws := make([]float64, 0, t.Users)
	for _, w := range t.Weights {
		if w > 0 {
			ws = append(ws, w)
		}
	}
	sort.Float64s(ws)
	sum := 0.0
	for i := len(ws) - 1; i >= 0 && len(ws)-i <= k; i-- {
		sum += ws[i]
	}
	if sum <= 0 {
		sum = 1
	}
	return sum
}

// SSA runs the Stop-and-Stare algorithm on the TVM instance.
func SSA(t *Instance, model diffusion.Model, opt core.Options) (*core.Result, error) {
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}
	if opt.OptLowerBound <= 0 {
		opt.OptLowerBound = t.OptLowerBound(opt.K)
	}
	return core.SSA(s, opt)
}

// DSSA runs the dynamic Stop-and-Stare algorithm on the TVM instance.
func DSSA(t *Instance, model diffusion.Model, opt core.Options) (*core.Result, error) {
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}
	if opt.OptLowerBound <= 0 {
		opt.OptLowerBound = t.OptLowerBound(opt.K)
	}
	return core.DSSA(s, opt)
}

// KBTIM is the paper's TVM comparator: TIM+ running on WRIS samples
// (Li–Zhang–Tan's weighted RIS inside Tang et al.'s TIM+ skeleton).
func KBTIM(t *Instance, model diffusion.Model, opt baselines.Options) (*baselines.Result, error) {
	s, err := t.Sampler(model)
	if err != nil {
		return nil, err
	}
	return baselines.TIMPlus(s, opt)
}

// Benefit estimates B(S) by weighted forward Monte Carlo (for scoring
// returned seed sets, mirroring how the figures score IM seed sets).
func (t *Instance) Benefit(model diffusion.Model, seeds []uint32, runs int, seed uint64, workers int) (mean, stderr float64, err error) {
	return diffusion.Spread(t.G, model, seeds, diffusion.SpreadOptions{
		Runs:    runs,
		Seed:    seed,
		Workers: workers,
		Weights: t.Weights,
	})
}
