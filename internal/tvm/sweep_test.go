package tvm

import (
	"errors"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
)

// TestBudgetedSweepMatchesGreedyPerBudget pins the sweep's identity
// contract: for every budget order (ascending, descending, duplicated,
// mixed), each sweep entry is bit-identical to maxcover.GreedyBudgeted
// over the same shared collection.
func TestBudgetedSweepMatchesGreedyPerBudget(t *testing.T) {
	inst := topicInstance(t, 500, 2500, 113)
	n := inst.G.NumNodes()
	costs := make([]float64, n)
	for v := range costs {
		costs[v] = float64(v%4) + 1
	}
	opt := BudgetedOptions{Costs: costs, Epsilon: 0.3, Seed: 127, Workers: 2, Samples: 8000}
	sweeps := [][]float64{
		{2, 5, 11, 23},
		{23, 11, 5, 2},
		{7, 7, 7},
		{3, 30, 3, 0.5, 30},
	}
	// Reference collection: identical to the one the sweep builds (same
	// sampler, seed, and sample count — the largest budget sizes it, but
	// Samples pins it here).
	s, err := inst.Sampler(diffusion.LT)
	if err != nil {
		t.Fatal(err)
	}
	refCol := ris.NewCollection(s, opt.Seed, opt.Workers)
	refCol.Generate(opt.Samples)
	for si, sweep := range sweeps {
		results, err := BudgetedSweep(inst, diffusion.LT, sweep, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(sweep) {
			t.Fatalf("sweep %d: %d results for %d budgets", si, len(results), len(sweep))
		}
		for bi, res := range results {
			if res.Budget != sweep[bi] {
				t.Fatalf("sweep %d entry %d: budget %v, want %v", si, bi, res.Budget, sweep[bi])
			}
			want := maxcover.GreedyBudgeted(refCol, refCol.Len(), costs, sweep[bi])
			if res.Cost != want.Cost || res.Samples != int64(want.Upto) ||
				res.Benefit != want.Influence(inst.Gamma) {
				t.Fatalf("sweep %d budget %v: got cost=%v benefit=%v samples=%d, want cost=%v benefit=%v upto=%d",
					si, sweep[bi], res.Cost, res.Benefit, res.Samples,
					want.Cost, want.Influence(inst.Gamma), want.Upto)
			}
			if len(res.Seeds) != len(want.Seeds) {
				t.Fatalf("sweep %d budget %v: %d seeds, want %d", si, sweep[bi], len(res.Seeds), len(want.Seeds))
			}
			for i := range res.Seeds {
				if res.Seeds[i] != want.Seeds[i] {
					t.Fatalf("sweep %d budget %v: seed %d differs", si, sweep[bi], i)
				}
			}
		}
	}
}

// TestBudgetedSweepMatchesSingleSolves: with Samples pinned, each sweep
// entry must equal a standalone BudgetedMaximize at that budget (the
// one-budget special case goes through the same path).
func TestBudgetedSweepMatchesSingleSolves(t *testing.T) {
	inst := topicInstance(t, 400, 2000, 131)
	opt := BudgetedOptions{Epsilon: 0.3, Seed: 137, Workers: 2, Samples: 6000}
	budgets := []float64{9, 3, 3, 27}
	results, err := BudgetedSweep(inst, diffusion.IC, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range budgets {
		single, err := BudgetedMaximize(inst, diffusion.IC, BudgetedOptions{
			Budget: b, Epsilon: 0.3, Seed: 137, Workers: 2, Samples: 6000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Cost != single.Cost || results[i].Benefit != single.Benefit ||
			len(results[i].Seeds) != len(single.Seeds) {
			t.Fatalf("budget %v: sweep %+v vs single %+v", b, results[i], single)
		}
	}
}

// TestBudgetedSweepValidation covers the error paths.
func TestBudgetedSweepValidation(t *testing.T) {
	inst := topicInstance(t, 200, 1000, 139)
	if _, err := BudgetedSweep(inst, diffusion.IC, nil, BudgetedOptions{}); !errors.Is(err, ErrNoBudgets) {
		t.Fatalf("empty sweep: %v", err)
	}
	if _, err := BudgetedSweep(inst, diffusion.IC, []float64{5, -1}, BudgetedOptions{}); !errors.Is(err, ErrBadBudget) {
		t.Fatalf("negative budget: %v", err)
	}
	if _, err := BudgetedSweep(inst, diffusion.IC, []float64{5}, BudgetedOptions{Epsilon: 3}); err == nil {
		t.Fatal("epsilon out of range should fail")
	}
}
