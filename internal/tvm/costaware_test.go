package tvm

import (
	"errors"
	"math"
	"testing"

	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
)

func TestBudgetedMaximizeBasic(t *testing.T) {
	inst := topicInstance(t, 800, 4000, 61)
	n := inst.G.NumNodes()
	costs := make([]float64, n)
	for v := range costs {
		costs[v] = float64(v%4) + 1
	}
	res, err := BudgetedMaximize(inst, diffusion.LT, BudgetedOptions{
		Budget: 20, Costs: costs, Epsilon: 0.3, Seed: 67, Workers: 2, Samples: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 20+1e-9 {
		t.Fatalf("budget exceeded: %v", res.Cost)
	}
	if len(res.Seeds) == 0 || res.Benefit <= 0 || res.Benefit > inst.Gamma {
		t.Fatalf("degenerate result: %+v", res)
	}
	// The sampled benefit estimate must agree with weighted MC.
	mc, se, err := inst.Benefit(diffusion.LT, res.Seeds, 30000, 71, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Benefit-mc) > 0.2*mc+5*se {
		t.Fatalf("benefit est %.2f vs MC %.2f±%.2f", res.Benefit, mc, se)
	}
}

func TestBudgetedMaximizeValidation(t *testing.T) {
	inst := topicInstance(t, 200, 1000, 73)
	if _, err := BudgetedMaximize(inst, diffusion.IC, BudgetedOptions{Budget: 0}); !errors.Is(err, ErrBadBudget) {
		t.Fatalf("zero budget: %v", err)
	}
	if _, err := BudgetedMaximize(inst, diffusion.IC, BudgetedOptions{Budget: 5, Epsilon: 2}); err == nil {
		t.Fatal("epsilon out of range should fail")
	}
}

func TestBudgetedMaximizeDefaultSamples(t *testing.T) {
	inst := topicInstance(t, 300, 1500, 79)
	res, err := BudgetedMaximize(inst, diffusion.IC, BudgetedOptions{
		Budget: 5, Epsilon: 0.4, Seed: 83, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples <= 0 {
		t.Fatal("default sample derivation produced nothing")
	}
}

func TestBudgetedMonotoneInBudget(t *testing.T) {
	inst := topicInstance(t, 600, 3000, 89)
	prev := -1.0
	for _, b := range []float64{1, 4, 16} {
		res, err := BudgetedMaximize(inst, diffusion.LT, BudgetedOptions{
			Budget: b, Epsilon: 0.3, Seed: 97, Workers: 2, Samples: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Benefit < prev*0.98 { // tiny tolerance for sampling noise
			t.Fatalf("benefit decreased at budget %v: %.2f < %.2f", b, res.Benefit, prev)
		}
		prev = res.Benefit
	}
}

func TestBudgetedUnitCostsMatchCardinalityTVM(t *testing.T) {
	// With unit costs and budget k, budgeted TVM should roughly match
	// D-SSA's benefit at the same k (same selection family).
	inst := topicInstance(t, 800, 4000, 101)
	k := 8
	bud, err := BudgetedMaximize(inst, diffusion.LT, BudgetedOptions{
		Budget: float64(k), Epsilon: 0.2, Seed: 103, Workers: 2, Samples: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	dssa, err := DSSA(inst, diffusion.LT, coreOptions(k))
	if err != nil {
		t.Fatal(err)
	}
	bb, _, _ := inst.Benefit(diffusion.LT, bud.Seeds, 20000, 107, 2)
	bd, _, _ := inst.Benefit(diffusion.LT, dssa.Seeds, 20000, 107, 2)
	if bb < 0.85*bd {
		t.Fatalf("budgeted (%.2f) far below D-SSA (%.2f) at equal k", bb, bd)
	}
}

func coreOptions(k int) core.Options {
	return core.Options{K: k, Epsilon: 0.2, Seed: 103, Workers: 2}
}
