package tvm

import (
	"slices"
	"sync"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
)

func sessionInstance(t *testing.T) (*Instance, []float64) {
	t.Helper()
	g, err := gen.ChungLu(240, 1500, 2.1, 55, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = float64(v%6) + 0.5
	}
	inst, err := NewInstance(g, weights)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = float64((v*5)%4) + 1
	}
	return inst, costs
}

// TestBudgetedSessionMatchesColdSolves: a warm BudgetedSession serving
// budgets in arbitrary order (up, down, repeated) returns, for every
// budget, exactly the from-scratch GreedyBudgeted solution over that
// budget's own sample prefix — query history must be unobservable.
func TestBudgetedSessionMatchesColdSolves(t *testing.T) {
	inst, costs := sessionInstance(t)
	opt := BudgetedOptions{Costs: costs, Epsilon: 0.3, Seed: 19, Workers: 2, Samples: 2500}
	bs, err := NewBudgetedSession(inst, diffusion.IC, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Cold reference store: same sampler stream, solved from scratch.
	s, err := inst.Sampler(diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	refCol := ris.NewCollection(s, opt.Seed, 2)
	refCol.Generate(opt.Samples)

	for _, budget := range []float64{12, 4, 40, 12, 4, 25} {
		got, err := bs.Maximize(budget)
		if err != nil {
			t.Fatal(err)
		}
		want := maxcover.GreedyBudgeted(refCol, opt.Samples, costs, budget)
		if !slices.Equal(got.Seeds, want.Seeds) || got.Cost != want.Cost ||
			got.Samples != int64(want.Upto) {
			t.Fatalf("budget %v: session %v/%v/%d vs cold %v/%v/%d", budget,
				got.Seeds, got.Cost, got.Samples, want.Seeds, want.Cost, int64(want.Upto))
		}
	}
	if bs.Samples() != opt.Samples {
		t.Fatalf("store grew to %d, want pinned %d", bs.Samples(), opt.Samples)
	}
}

// TestBudgetedSessionDerivedThresholds: without pinned Samples the store
// tops up to each budget's derived θ and never shrinks; every result still
// matches a cold solve at that prefix.
func TestBudgetedSessionDerivedThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("derived thresholds generate larger streams")
	}
	inst, costs := sessionInstance(t)
	opt := BudgetedOptions{Costs: costs, Epsilon: 0.4, Seed: 23, Workers: 2}
	bs, err := NewBudgetedSession(inst, diffusion.IC, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := inst.Sampler(diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	refCol := ris.NewCollection(s, opt.Seed, 2)
	prev := 0
	for _, budget := range []float64{6, 30, 6} {
		got, err := bs.Maximize(budget)
		if err != nil {
			t.Fatal(err)
		}
		theta := inst.sampleSize(bs.opt, budget)
		refCol.GenerateTo(theta)
		want := maxcover.GreedyBudgeted(refCol, theta, costs, budget)
		if !slices.Equal(got.Seeds, want.Seeds) || got.Samples != int64(want.Upto) {
			t.Fatalf("budget %v: session %v/%d vs cold %v/%d", budget,
				got.Seeds, got.Samples, want.Seeds, int64(want.Upto))
		}
		if bs.Samples() < prev {
			t.Fatalf("store shrank: %d -> %d", prev, bs.Samples())
		}
		prev = bs.Samples()
	}
}

// TestBudgetedSessionConcurrent races mixed budget queries (growing and
// read-only) on one session; every replica must match its cold solve.
// Runs under the CI -race step.
func TestBudgetedSessionConcurrent(t *testing.T) {
	inst, costs := sessionInstance(t)
	opt := BudgetedOptions{Costs: costs, Epsilon: 0.3, Seed: 29, Workers: 2, Samples: 2000}
	bs, err := NewBudgetedSession(inst, diffusion.LT, opt)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{3, 9, 27, 9, 3, 81}
	const replicas = 2
	results := make([][]*BudgetedResult, len(budgets))
	var wg sync.WaitGroup
	for bi, b := range budgets {
		results[bi] = make([]*BudgetedResult, replicas)
		for rep := 0; rep < replicas; rep++ {
			wg.Add(1)
			go func(bi, rep int, b float64) {
				defer wg.Done()
				res, err := bs.Maximize(b)
				if err != nil {
					t.Errorf("budget %v: %v", b, err)
					return
				}
				results[bi][rep] = res
			}(bi, rep, b)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s, err := inst.Sampler(diffusion.LT)
	if err != nil {
		t.Fatal(err)
	}
	refCol := ris.NewCollection(s, opt.Seed, 2)
	refCol.Generate(opt.Samples)
	for bi, b := range budgets {
		want := maxcover.GreedyBudgeted(refCol, opt.Samples, costs, b)
		for rep, got := range results[bi] {
			if !slices.Equal(got.Seeds, want.Seeds) || got.Cost != want.Cost {
				t.Fatalf("budget %v rep %d: %v/%v vs cold %v/%v", b, rep,
					got.Seeds, got.Cost, want.Seeds, want.Cost)
			}
		}
	}
}

// TestBudgetedSessionRejectsBadBudget covers the validation path.
func TestBudgetedSessionRejectsBadBudget(t *testing.T) {
	inst, costs := sessionInstance(t)
	bs, err := NewBudgetedSession(inst, diffusion.IC, BudgetedOptions{
		Costs: costs, Epsilon: 0.3, Seed: 1, Workers: 1, Samples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Maximize(0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := bs.Maximize(-3); err == nil {
		t.Fatal("negative budget accepted")
	}
}
