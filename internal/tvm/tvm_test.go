package tvm

import (
	"math"
	"testing"

	"stopandstare/internal/baselines"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

func topicInstance(t testing.TB, n int, m int64, seed uint64) *Instance {
	t.Helper()
	g, err := gen.ChungLu(n, m, 2.1, seed, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	topic, err := gen.GenerateTopic(g, gen.TopicSpec{Name: "t", Keywords: []string{"x"}, Fraction: 0.1, ZipfS: 1.5}, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, topic.Weights)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 250, 1, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstance(nil, []float64{1}); err == nil {
		t.Fatal("nil graph should fail")
	}
	if _, err := NewInstance(g, []float64{1, 2}); err == nil {
		t.Fatal("short weights should fail")
	}
	neg := make([]float64, 50)
	neg[3] = -1
	if _, err := NewInstance(g, neg); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := NewInstance(g, make([]float64, 50)); err == nil {
		t.Fatal("all-zero weights should fail")
	}
	w := make([]float64, 50)
	w[0], w[7] = 2, 3
	inst, err := NewInstance(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Gamma != 5 || inst.Users != 2 {
		t.Fatalf("Gamma=%v Users=%d", inst.Gamma, inst.Users)
	}
}

func TestOptLowerBound(t *testing.T) {
	g, err := gen.ErdosRenyi(10, 40, 3, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 10)
	w[0], w[1], w[2] = 5, 3, 1
	inst, err := NewInstance(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if lb := inst.OptLowerBound(2); lb != 8 {
		t.Fatalf("top-2 sum %v want 8", lb)
	}
	if lb := inst.OptLowerBound(100); lb != 9 {
		t.Fatalf("top-all sum %v want 9", lb)
	}
}

func TestTVMSSAAndDSSA(t *testing.T) {
	inst := topicInstance(t, 1500, 7500, 5)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		ssa, err := SSA(inst, model, core.Options{K: 10, Epsilon: 0.2, Seed: 7, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		dssa, err := DSSA(inst, model, core.Options{K: 10, Epsilon: 0.2, Seed: 7, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range []*core.Result{ssa, dssa} {
			if len(res.Seeds) != 10 {
				t.Fatalf("%v: %d seeds", model, len(res.Seeds))
			}
			if res.Influence <= 0 || res.Influence > inst.Gamma {
				t.Fatalf("%v: benefit estimate %v outside (0, Γ=%v]", model, res.Influence, inst.Gamma)
			}
		}
	}
}

func TestTVMBenefitEstimateMatchesMC(t *testing.T) {
	inst := topicInstance(t, 1500, 7500, 11)
	res, err := DSSA(inst, diffusion.LT, core.Options{K: 10, Epsilon: 0.1, Seed: 13, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mc, se, err := inst.Benefit(diffusion.LT, res.Seeds, 30000, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Influence-mc) > 0.15*mc+5*se {
		t.Fatalf("benefit estimate %.2f vs MC %.2f±%.2f", res.Influence, mc, se)
	}
}

func TestTVMBeatsUntargetedIM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm TVM comparison is slow; skipped in -short")
	}
	// Optimising for the targeted group must collect at least as much
	// benefit as optimising plain influence with the same budget.
	inst := topicInstance(t, 2000, 10000, 19)
	k := 10
	tvmRes, err := DSSA(inst, diffusion.LT, core.Options{K: k, Epsilon: 0.15, Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	imSampler, err := (&Instance{G: inst.G, Weights: uniformWeights(inst.G.NumNodes()), Gamma: float64(inst.G.NumNodes())}).Sampler(diffusion.LT)
	if err != nil {
		t.Fatal(err)
	}
	imRes, err := core.DSSA(imSampler, core.Options{K: k, Epsilon: 0.15, Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bTVM, _, _ := inst.Benefit(diffusion.LT, tvmRes.Seeds, 20000, 29, 2)
	bIM, _, _ := inst.Benefit(diffusion.LT, imRes.Seeds, 20000, 29, 2)
	if bTVM < 0.9*bIM {
		t.Fatalf("targeted optimisation (%.2f) clearly worse than untargeted (%.2f)", bTVM, bIM)
	}
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestKBTIM(t *testing.T) {
	inst := topicInstance(t, 1500, 7500, 31)
	res, err := KBTIM(inst, diffusion.LT, baselines.Options{K: 10, Epsilon: 0.2, Seed: 37, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 || res.Influence <= 0 {
		t.Fatalf("KB-TIM degenerate result: %d seeds, influence %v", len(res.Seeds), res.Influence)
	}
}

func TestStopAndStareFewerSamplesThanKBTIM(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 8 sample-count comparison is slow; skipped in -short")
	}
	// Fig. 8 shape: SSA/D-SSA beat KB-TIM on the TVM problem.
	inst := topicInstance(t, 3000, 15000, 41)
	kb, err := KBTIM(inst, diffusion.LT, baselines.Options{K: 20, Epsilon: 0.1, Seed: 43, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dssa, err := DSSA(inst, diffusion.LT, core.Options{K: 20, Epsilon: 0.1, Seed: 43, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dssa.TotalSamples >= kb.TotalSamples {
		t.Fatalf("D-SSA (%d RR sets) should beat KB-TIM (%d)", dssa.TotalSamples, kb.TotalSamples)
	}
	// Comparable quality.
	bd, _, _ := inst.Benefit(diffusion.LT, dssa.Seeds, 20000, 47, 2)
	bk, _, _ := inst.Benefit(diffusion.LT, kb.Seeds, 20000, 47, 2)
	if bd < 0.85*bk {
		t.Fatalf("D-SSA benefit %.2f too far below KB-TIM %.2f", bd, bk)
	}
}

func TestTVMGuaranteeOnTinyInstance(t *testing.T) {
	// Exhaustive check on a tiny weighted instance: returned benefit ≥
	// (1−1/e−ε)·OPT where OPT enumerated exactly via weighted MC with a
	// deterministic high-run budget.
	g, err := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1, W: 0.8}, {U: 1, V: 2, W: 0.6}, {U: 3, V: 4, W: 0.9},
		{U: 4, V: 5, W: 0.5}, {U: 6, V: 7, W: 0.7}, {U: 0, V: 3, W: 0.3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0, 1, 4, 0, 2, 3, 0, 5}
	inst, err := NewInstance(g, w)
	if err != nil {
		t.Fatal(err)
	}
	k, eps := 2, 0.25
	// Exhaustive OPT by exact computation over all pairs: use weighted MC
	// with many runs as ground truth (graph is tiny, variance small).
	best := 0.0
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			v, _, _ := inst.Benefit(diffusion.IC, []uint32{uint32(a), uint32(b)}, 60000, 51, 2)
			if v > best {
				best = v
			}
		}
	}
	res, err := DSSA(inst, diffusion.IC, core.Options{K: k, Epsilon: eps, Delta: 0.05, Seed: 53, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := inst.Benefit(diffusion.IC, res.Seeds, 60000, 51, 2)
	bound := (1 - 1/math.E - eps) * best
	if got < bound {
		t.Fatalf("TVM benefit %.3f below bound %.3f (OPT %.3f)", got, bound, best)
	}
}
