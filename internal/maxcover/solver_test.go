package maxcover

import (
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

func assertSameResult(t *testing.T, ctx string, got, want Result) {
	t.Helper()
	if got.Upto != want.Upto || got.Coverage != want.Coverage {
		t.Fatalf("%s: got upto=%d cov=%d, want upto=%d cov=%d",
			ctx, got.Upto, got.Coverage, want.Upto, want.Coverage)
	}
	if len(got.Seeds) != len(want.Seeds) {
		t.Fatalf("%s: got %d seeds, want %d", ctx, len(got.Seeds), len(want.Seeds))
	}
	for i := range got.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("%s: seed %d differs: got %d want %d",
				ctx, i, got.Seeds[i], want.Seeds[i])
		}
	}
}

// TestSolverEquivalentToGreedyDoubling is the core incremental-solver
// contract: across an SSA-style doubling schedule, Solve over each prefix
// returns bit-identical Seeds and Coverage to a from-scratch Greedy over
// the same prefix, even though it only scanned the new suffix.
func TestSolverEquivalentToGreedyDoubling(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		col := buildCollection(t, 80, 500, 0, seed*29)
		for _, k := range []int{1, 4, 9} {
			sol := NewSolver(col)
			for _, upto := range []int{25, 50, 100, 200, 400, 800, 1600} {
				col.GenerateTo(upto)
				got := sol.Solve(upto, k)
				want := Greedy(col, upto, k)
				assertSameResult(t, "doubling", got, want)
				if sol.Scanned() != upto {
					t.Fatalf("scanned %d want %d", sol.Scanned(), upto)
				}
			}
		}
	}
}

// TestSolverEquivalentOnHalfPrefixes mirrors D-SSA's access pattern: the
// stream holds 2·half sets but the solve runs over the first half only.
func TestSolverEquivalentOnHalfPrefixes(t *testing.T) {
	col := buildCollection(t, 60, 350, 0, 77)
	sol := NewSolver(col)
	for _, half := range []int{30, 60, 120, 240, 480} {
		col.GenerateTo(2 * half)
		got := sol.Solve(half, 6)
		want := Greedy(col, half, 6)
		assertSameResult(t, "half-prefix", got, want)
	}
}

// TestSolverIrregularSchedule exercises non-power-of-two growth (TIM/IMM
// probe sizes are not powers of two) including repeated solves at the same
// prefix length and varying k between checkpoints.
func TestSolverIrregularSchedule(t *testing.T) {
	col := buildCollection(t, 50, 300, 0, 101)
	sol := NewSolver(col)
	ks := []int{3, 1, 7, 7, 2, 11}
	for i, next := range []int{17, 17, 61, 200, 203, 997} {
		col.GenerateTo(next)
		got := sol.Solve(next, ks[i])
		want := Greedy(col, next, ks[i])
		assertSameResult(t, "irregular", got, want)
	}
}

// TestSolverNonMonotonicFallsBack asserts a shrinking upto still returns
// the exact Greedy solution (via the from-scratch fallback) and leaves the
// incremental state usable.
func TestSolverNonMonotonicFallsBack(t *testing.T) {
	col := buildCollection(t, 40, 250, 600, 55)
	sol := NewSolver(col)
	full := sol.Solve(600, 5)
	assertSameResult(t, "full", full, Greedy(col, 600, 5))
	small := sol.Solve(100, 5)
	assertSameResult(t, "shrunk", small, Greedy(col, 100, 5))
	again := sol.Solve(600, 5)
	assertSameResult(t, "recovered", again, full)
}

// TestSolverSeedsAreFreshSlices guards the retention contract: callers keep
// Result.Seeds across checkpoints (SSA reports the last candidate after the
// loop), so a later Solve must not clobber an earlier result.
func TestSolverSeedsAreFreshSlices(t *testing.T) {
	col := buildCollection(t, 50, 300, 0, 91)
	sol := NewSolver(col)
	col.GenerateTo(200)
	first := sol.Solve(200, 5)
	firstCopy := append([]uint32(nil), first.Seeds...)
	col.GenerateTo(800)
	_ = sol.Solve(800, 5)
	for i := range first.Seeds {
		if first.Seeds[i] != firstCopy[i] {
			t.Fatal("earlier Result.Seeds mutated by a later Solve")
		}
	}
}

// TestSolverPadding: when coverage saturates, padding must match Greedy's
// (lowest unused ids) and not leak pad marks into later solves.
func TestSolverPadding(t *testing.T) {
	col := buildCollection(t, 10, 30, 0, 21)
	sol := NewSolver(col)
	for _, next := range []int{5, 20, 80} {
		col.GenerateTo(next)
		got := sol.Solve(next, 9)
		want := Greedy(col, next, 9)
		assertSameResult(t, "padding", got, want)
	}
}

// TestSolverWeightedCollection runs the equivalence on a WRIS (weighted
// root) collection under the LT model, covering the second sampler family.
func TestSolverWeightedCollection(t *testing.T) {
	g, err := gen.ChungLu(120, 700, 2.1, 17, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, g.NumNodes())
	for i := range w {
		w[i] = float64(i%7) + 0.5
	}
	s, err := ris.NewWeightedSampler(g, diffusion.LT, w)
	if err != nil {
		t.Fatal(err)
	}
	col := ris.NewCollection(s, 23, 3)
	sol := NewSolver(col)
	for _, next := range []int{40, 160, 640} {
		col.GenerateTo(next)
		got := sol.Solve(next, 8)
		want := Greedy(col, next, 8)
		assertSameResult(t, "wris", got, want)
	}
}

// checkpointSchedule is the doubling schedule shared by the two
// checkpoint-path benchmarks below.
var checkpointSchedule = []int{1000, 2000, 4000, 8000, 16000, 32000}

func buildBenchCollection(b *testing.B) *ris.Collection {
	b.Helper()
	col := buildCollection(b, 4000, 24000, 0, 3)
	col.GenerateTo(checkpointSchedule[len(checkpointSchedule)-1])
	return col
}

// BenchmarkCheckpointGreedyScratch is the pre-refactor checkpoint path:
// a from-scratch Greedy at every checkpoint of a doubling schedule.
func BenchmarkCheckpointGreedyScratch(b *testing.B) {
	col := buildBenchCollection(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, upto := range checkpointSchedule {
			Greedy(col, upto, 50)
		}
	}
}

// BenchmarkCheckpointGreedyIncremental is the same schedule through one
// incremental Solver: each checkpoint scans only the new stream suffix.
func BenchmarkCheckpointGreedyIncremental(b *testing.B) {
	col := buildBenchCollection(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := NewSolver(col)
		for _, upto := range checkpointSchedule {
			sol.Solve(upto, 50)
		}
	}
}
