package maxcover

import (
	"testing"
)

func TestGreedyBudgetedRespectsBudget(t *testing.T) {
	col := buildCollection(t, 40, 250, 600, 21)
	costs := make([]float64, 40)
	for v := range costs {
		costs[v] = float64(v%5) + 1
	}
	for _, budget := range []float64{1, 3, 10, 50} {
		res := GreedyBudgeted(col, col.Len(), costs, budget)
		if res.Cost > budget+1e-9 {
			t.Fatalf("budget %v exceeded: cost %v", budget, res.Cost)
		}
		total := 0.0
		for _, s := range res.Seeds {
			total += costs[s]
		}
		if total != res.Cost {
			t.Fatalf("reported cost %v, actual %v", res.Cost, total)
		}
		if recount := CoverageOf(col, res.Seeds, col.Len()); recount != res.Coverage {
			t.Fatalf("coverage %d recount %d", res.Coverage, recount)
		}
	}
}

func TestGreedyBudgetedUnitCostsMatchCardinality(t *testing.T) {
	// With unit costs and budget k, budgeted greedy must cover at least as
	// much as... in fact the ratio greedy with unit costs IS plain greedy,
	// so coverage matches Greedy exactly.
	col := buildCollection(t, 35, 200, 500, 23)
	for _, k := range []int{1, 3, 8} {
		plain := Greedy(col, col.Len(), k)
		budgeted := GreedyBudgeted(col, col.Len(), nil, float64(k))
		if budgeted.Coverage != plain.Coverage {
			t.Fatalf("k=%d: budgeted %d vs plain %d", k, budgeted.Coverage, plain.Coverage)
		}
	}
}

func TestGreedyBudgetedKMNFixup(t *testing.T) {
	// Construct a case where one expensive node dominates: ratio greedy
	// would pick cheap low-coverage nodes; the KMN comparison must rescue
	// the single best node. Build it synthetically via costs.
	col := buildCollection(t, 30, 200, 400, 25)
	// Find the max-coverage node.
	best := uint32(0)
	var bestCov int64
	for v := uint32(0); v < 30; v++ {
		if c := CoverageOf(col, []uint32{v}, col.Len()); c > bestCov {
			bestCov, best = c, v
		}
	}
	costs := make([]float64, 30)
	for v := range costs {
		costs[v] = 0.5 // cheap chaff
	}
	costs[best] = 10 // expensive hub
	res := GreedyBudgeted(col, col.Len(), costs, 10)
	// Whatever greedy picked, it must be at least the single-hub coverage.
	if res.Coverage < bestCov {
		t.Fatalf("KMN fix-up failed: coverage %d < best single %d", res.Coverage, bestCov)
	}
}

func TestGreedyBudgetedZeroBudget(t *testing.T) {
	col := buildCollection(t, 20, 100, 100, 27)
	res := GreedyBudgeted(col, col.Len(), nil, 0)
	if len(res.Seeds) != 0 || res.Coverage != 0 || res.Cost != 0 {
		t.Fatalf("zero budget must select nothing: %+v", res)
	}
}

func TestGreedyBudgetedUnaffordable(t *testing.T) {
	col := buildCollection(t, 20, 100, 100, 29)
	costs := make([]float64, 20)
	for v := range costs {
		costs[v] = 100
	}
	res := GreedyBudgeted(col, col.Len(), costs, 1)
	if len(res.Seeds) != 0 {
		t.Fatalf("nothing affordable, got %v", res.Seeds)
	}
}

func TestGreedyBudgetedMonotoneInBudget(t *testing.T) {
	col := buildCollection(t, 40, 250, 500, 31)
	costs := make([]float64, 40)
	for v := range costs {
		costs[v] = float64(v%3) + 1
	}
	prev := int64(-1)
	for _, b := range []float64{1, 2, 4, 8, 16, 32} {
		res := GreedyBudgeted(col, col.Len(), costs, b)
		if res.Coverage < prev {
			t.Fatalf("coverage decreased at budget %v", b)
		}
		prev = res.Coverage
	}
}

func TestGreedyBudgetedInfluenceScale(t *testing.T) {
	r := BudgetedResult{Coverage: 25, Upto: 100}
	if r.Influence(400) != 100 {
		t.Fatalf("influence %v", r.Influence(400))
	}
	if (BudgetedResult{}).Influence(400) != 0 {
		t.Fatal("empty result influence should be 0")
	}
}
