package maxcover

import (
	"stopandstare/internal/epoch"
	"stopandstare/internal/ris"
)

// BudgetedResult is a budgeted max-coverage solution.
type BudgetedResult struct {
	Seeds    []uint32
	Coverage int64
	Cost     float64 // total cost of Seeds
	Upto     int
}

// Influence converts coverage into Î(S) = scale·Cov/|R|.
func (r BudgetedResult) Influence(scale float64) float64 {
	if r.Upto == 0 {
		return 0
	}
	return scale * float64(r.Coverage) / float64(r.Upto)
}

type ratioCand struct {
	node  uint32
	gain  int32
	ratio float64 // gain / cost at evaluation time
}

// above orders the ratio-greedy max-heap on benefit/cost (see heap.go).
func (c ratioCand) above(o ratioCand) bool { return c.ratio > o.ratio }

// BudgetedSolver is the ratio-greedy analogue of Solver: an incremental
// budgeted max-coverage solver over a growing RR stream. A budget sweep —
// TipTop-style repeated solves of one sample collection under different
// spending caps — rescans the entire stream once per budget when done with
// GreedyBudgeted. A BudgetedSolver keeps the selection-free gain counts
// alive across solves, so each Solve(upto, budget) scans only RR sets added
// since the previous call; for a sweep over a fixed collection that is one
// stream scan total, with per-budget cost proportional to the covered
// items. Scratch (the working gain copy, the epoch-stamped covered marks,
// and the heap backing array) is reused across solves.
//
// Equivalence with GreedyBudgeted is exact: the persistent gains after
// scanning [0, upto) equal the from-scratch counts, the heap is rebuilt per
// solve in ascending node order under the same affordability filter, and
// the selection loop replicates the lazy ratio-greedy plus the
// Khuller–Moss–Naor single-node fix-up step for step. GreedyBudgeted is a
// thin wrapper over a fresh BudgetedSolver.
//
// Solve expects upto to be non-decreasing across calls; a smaller upto
// falls back to a fresh from-scratch solve, preserving semantics at the
// old cost. The costs slice must not be mutated between solves. Like
// Solver, it consumes the ris.Store interface and is insensitive to the
// store's postings-run ordering.
type BudgetedSolver struct {
	c       ris.Store
	costs   []float64
	scanned int         // RR sets [0, scanned) are counted in gains
	gains   []int32     // selection-free occurrence counts
	work    []int32     // per-Solve gain copy, decremented during selection
	covered epoch.Marks // covered RR-set ids, cleared per Solve by epoch bump
	inSeed  []bool      // selection marks, reset before Solve returns
	h       []ratioCand // heap backing array reused across Solves
}

// NewBudgetedSolver creates an incremental budgeted solver bound to an
// RR-set store. Costs[v] is the price of seeding v (entries ≤ 0 default
// to 1, and a short or nil slice defaults the missing tail).
func NewBudgetedSolver(c ris.Store, costs []float64) *BudgetedSolver {
	n := c.NumNodes()
	return &BudgetedSolver{
		c:      c,
		costs:  costs,
		gains:  make([]int32, n),
		work:   make([]int32, n),
		inSeed: make([]bool, n),
	}
}

// Scanned returns the stream prefix length folded into the gain counts.
func (s *BudgetedSolver) Scanned() int { return s.scanned }

func (s *BudgetedSolver) costOf(v uint32) float64 {
	if int(v) < len(s.costs) && s.costs[v] > 0 {
		return s.costs[v]
	}
	return 1
}

// Solve returns the lazy ratio-greedy budgeted solution over RR sets
// [0, upto), identical to GreedyBudgeted(c, upto, costs, budget). Only sets
// [scanned, upto) are read to update gains; the selection cost is
// proportional to the covered items, not the stream length.
func (s *BudgetedSolver) Solve(upto int, budget float64) BudgetedResult {
	c := s.c
	n := c.NumNodes()
	if upto > c.Len() {
		upto = c.Len()
	}
	res := BudgetedResult{Upto: upto}
	if budget <= 0 {
		return res
	}
	if upto < s.scanned {
		// Non-monotonic use: recompute from scratch without disturbing the
		// incremental state.
		return NewBudgetedSolver(c, s.costs).Solve(upto, budget)
	}
	// Incremental gain update: only the new suffix is scanned (ForEachSet,
	// so a sharded store walks its shard runs without per-id lookups).
	gains := s.gains
	c.ForEachSet(s.scanned, upto, func(_ int, set []uint32) {
		for _, v := range set {
			gains[v]++
		}
	})
	s.scanned = upto

	copy(s.work, s.gains)
	// Rebuild the heap in ascending node order into the reused backing
	// array under this budget's affordability filter: the initial state is
	// then bit-identical to a from-scratch ratio greedy.
	s.h = s.h[:0]
	for v := 0; v < n; v++ {
		if s.work[v] > 0 && s.costOf(uint32(v)) <= budget {
			s.h = append(s.h, ratioCand{node: uint32(v), gain: s.work[v],
				ratio: float64(s.work[v]) / s.costOf(uint32(v))})
		}
	}
	heapInit(s.h)

	s.covered.Reset(upto)

	remaining := budget
	// Track the best single affordable node for the KMN fix-up.
	bestSingle := int32(-1)
	var bestSingleNode uint32
	for v := 0; v < n; v++ {
		if s.costOf(uint32(v)) <= budget && s.gains[v] > bestSingle {
			bestSingle = s.gains[v]
			bestSingleNode = uint32(v)
		}
	}

	for len(s.h) > 0 {
		top := heapPop(&s.h)
		v := top.node
		if s.inSeed[v] || s.work[v] <= 0 {
			continue
		}
		cost := s.costOf(v)
		if cost > remaining {
			continue // cannot afford; drop (lazy heap keeps others coming)
		}
		if cur := float64(s.work[v]) / cost; top.ratio != cur {
			heapPush(&s.h, ratioCand{node: v, gain: s.work[v], ratio: cur})
			continue
		}
		// Select.
		s.inSeed[v] = true
		remaining -= cost
		res.Cost += cost
		res.Seeds = append(res.Seeds, v)
		res.Coverage += int64(s.work[v])
		it := c.PostingsUpto(v, upto)
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			for _, id := range run {
				if !s.covered.Visit(id) {
					continue
				}
				for _, u := range c.Set(int(id)) {
					s.work[u]--
				}
			}
		}
	}
	for _, v := range res.Seeds {
		s.inSeed[v] = false
	}

	// Khuller–Moss–Naor: the better of {ratio-greedy set, best single}.
	if bestSingle > 0 && int64(bestSingle) > res.Coverage {
		return BudgetedResult{
			Seeds:    []uint32{bestSingleNode},
			Coverage: int64(bestSingle),
			Cost:     s.costOf(bestSingleNode),
			Upto:     upto,
		}
	}
	return res
}

// GreedyBudgeted solves budgeted max-coverage over RR sets [0, upto):
// select nodes maximising coverage subject to Σ cost(v) ≤ budget, by the
// classic lazy benefit/cost-ratio greedy. Combined with the best single
// affordable node (Khuller–Moss–Naor), ratio greedy guarantees
// (1−1/√e) ≈ 0.39 of the optimum; this is the selection rule of the
// authors' cost-aware follow-up (BCT, INFOCOM'16 — reference [12] of the
// paper under reproduction).
//
// GreedyBudgeted is the from-scratch entry point: it is exactly a fresh
// BudgetedSolver solved once. Budget sweeps should hold a BudgetedSolver
// instead, which scans the stream once for the entire sweep.
func GreedyBudgeted(c ris.Store, upto int, costs []float64, budget float64) BudgetedResult {
	return NewBudgetedSolver(c, costs).Solve(upto, budget)
}
