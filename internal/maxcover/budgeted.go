package maxcover

import "stopandstare/internal/ris"

// BudgetedResult is a budgeted max-coverage solution.
type BudgetedResult struct {
	Seeds    []uint32
	Coverage int64
	Cost     float64 // total cost of Seeds
	Upto     int
}

// Influence converts coverage into Î(S) = scale·Cov/|R|.
func (r BudgetedResult) Influence(scale float64) float64 {
	if r.Upto == 0 {
		return 0
	}
	return scale * float64(r.Coverage) / float64(r.Upto)
}

type ratioCand struct {
	node  uint32
	gain  int32
	ratio float64 // gain / cost at evaluation time
}

// above orders the ratio-greedy max-heap on benefit/cost (see heap.go).
func (c ratioCand) above(o ratioCand) bool { return c.ratio > o.ratio }

// GreedyBudgeted solves budgeted max-coverage over RR sets [0, upto):
// select nodes maximising coverage subject to Σ cost(v) ≤ budget, by the
// classic lazy benefit/cost-ratio greedy. Combined with the best single
// affordable node (Khuller–Moss–Naor), ratio greedy guarantees
// (1−1/√e) ≈ 0.39 of the optimum; this is the selection rule of the
// authors' cost-aware follow-up (BCT, INFOCOM'16 — reference [12] of the
// paper under reproduction).
func GreedyBudgeted(c *ris.Collection, upto int, costs []float64, budget float64) BudgetedResult {
	n := c.NumNodes()
	if upto > c.Len() {
		upto = c.Len()
	}
	res := BudgetedResult{Upto: upto}
	if budget <= 0 {
		return res
	}

	gains := make([]int32, n)
	for i := 0; i < upto; i++ {
		for _, v := range c.Set(i) {
			gains[v]++
		}
	}
	covered := make([]bool, upto)
	inSeed := make([]bool, n)
	costOf := func(v uint32) float64 {
		if int(v) < len(costs) && costs[v] > 0 {
			return costs[v]
		}
		return 1
	}

	h := make([]ratioCand, 0, n)
	for v := 0; v < n; v++ {
		if gains[v] > 0 && costOf(uint32(v)) <= budget {
			h = append(h, ratioCand{node: uint32(v), gain: gains[v],
				ratio: float64(gains[v]) / costOf(uint32(v))})
		}
	}
	heapInit(h)

	remaining := budget
	// Track the best single affordable node for the KMN fix-up.
	bestSingle := int32(-1)
	var bestSingleNode uint32
	for v := 0; v < n; v++ {
		if costOf(uint32(v)) <= budget && gains[v] > bestSingle {
			bestSingle = gains[v]
			bestSingleNode = uint32(v)
		}
	}

	for len(h) > 0 {
		top := heapPop(&h)
		v := top.node
		if inSeed[v] || gains[v] <= 0 {
			continue
		}
		cost := costOf(v)
		if cost > remaining {
			continue // cannot afford; drop (lazy heap keeps others coming)
		}
		if cur := float64(gains[v]) / cost; top.ratio != cur {
			heapPush(&h, ratioCand{node: v, gain: gains[v], ratio: cur})
			continue
		}
		// Select.
		inSeed[v] = true
		remaining -= cost
		res.Cost += cost
		res.Seeds = append(res.Seeds, v)
		res.Coverage += int64(gains[v])
		it := c.PostingsUpto(v, upto)
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			for _, id := range run {
				if covered[id] {
					continue
				}
				covered[id] = true
				for _, u := range c.Set(int(id)) {
					gains[u]--
				}
			}
		}
	}

	// Khuller–Moss–Naor: the better of {ratio-greedy set, best single}.
	if bestSingle > 0 && int64(bestSingle) > res.Coverage {
		return BudgetedResult{
			Seeds:    []uint32{bestSingleNode},
			Coverage: int64(bestSingle),
			Cost:     costOf(bestSingleNode),
			Upto:     upto,
		}
	}
	return res
}
