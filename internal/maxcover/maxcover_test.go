package maxcover

import (
	"testing"
	"testing/quick"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

func buildCollection(t testing.TB, n, mEdges, sets int, seed uint64) *ris.Collection {
	t.Helper()
	g, err := gen.ErdosRenyi(n, int64(mEdges), seed, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	col := ris.NewCollection(s, seed+1, 2)
	col.Generate(sets)
	return col
}

// bruteForceBest finds the optimal coverage over all size-k subsets of the
// nodes that appear in any set (tiny instances only).
func bruteForceBest(col *ris.Collection, upto, k int) int64 {
	var nodes []uint32
	seen := map[uint32]bool{}
	for i := 0; i < upto; i++ {
		for _, v := range col.Set(i) {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	best := int64(0)
	var rec func(start int, chosen []uint32)
	rec = func(start int, chosen []uint32) {
		if len(chosen) == k || start == len(nodes) {
			if c := CoverageOf(col, chosen, upto); c > best {
				best = c
			}
			return
		}
		rec(start+1, append(chosen, nodes[start]))
		rec(start+1, chosen)
	}
	rec(0, nil)
	return best
}

func TestGreedyMatchesBruteForceGuarantee(t *testing.T) {
	// Cov(greedy) ≥ (1−1/e)·OPT — and for small instances greedy is often
	// optimal; verify the guarantee holds on many random instances.
	for seed := uint64(0); seed < 8; seed++ {
		col := buildCollection(t, 12, 40, 60, seed*13+1)
		for _, k := range []int{1, 2, 3} {
			got := Greedy(col, col.Len(), k)
			opt := bruteForceBest(col, col.Len(), k)
			if float64(got.Coverage) < (1-1.0/2.718281828)*float64(opt)-1e-9 {
				t.Fatalf("seed %d k=%d: coverage %d below guarantee of opt %d", seed, k, got.Coverage, opt)
			}
			if got.Coverage > opt {
				t.Fatalf("greedy coverage %d exceeds optimum %d", got.Coverage, opt)
			}
		}
	}
}

func TestGreedyCoverageMatchesRecount(t *testing.T) {
	col := buildCollection(t, 50, 300, 800, 5)
	for _, k := range []int{1, 5, 20} {
		res := Greedy(col, col.Len(), k)
		if recount := CoverageOf(col, res.Seeds, col.Len()); recount != res.Coverage {
			t.Fatalf("k=%d: reported %d recounted %d", k, res.Coverage, recount)
		}
	}
}

func TestGreedyReturnsExactlyKSeeds(t *testing.T) {
	col := buildCollection(t, 30, 100, 50, 7)
	for _, k := range []int{1, 3, 10, 29, 30} {
		res := Greedy(col, col.Len(), k)
		if len(res.Seeds) != k {
			t.Fatalf("k=%d: returned %d seeds", k, len(res.Seeds))
		}
		seen := map[uint32]bool{}
		for _, s := range res.Seeds {
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
		}
	}
}

func TestGreedyKExceedsN(t *testing.T) {
	col := buildCollection(t, 10, 30, 20, 9)
	res := Greedy(col, col.Len(), 50)
	if len(res.Seeds) != 10 {
		t.Fatalf("k>n should clamp to n: got %d seeds", len(res.Seeds))
	}
}

func TestGreedyPrefixOnly(t *testing.T) {
	// Solutions over a prefix must not count coverage beyond it.
	col := buildCollection(t, 40, 200, 600, 11)
	res := Greedy(col, 300, 5)
	if res.Upto != 300 {
		t.Fatalf("upto %d", res.Upto)
	}
	if recount := CoverageOf(col, res.Seeds, 300); recount != res.Coverage {
		t.Fatalf("prefix coverage mismatch: %d vs %d", res.Coverage, recount)
	}
	if res.Coverage > 300 {
		t.Fatal("coverage exceeds prefix size")
	}
}

func TestGreedyUptoBeyondLen(t *testing.T) {
	col := buildCollection(t, 20, 60, 100, 13)
	res := Greedy(col, 10_000, 3)
	if res.Upto != col.Len() {
		t.Fatalf("upto should clamp to Len: %d", res.Upto)
	}
}

func TestGreedyEmptyCollection(t *testing.T) {
	col := buildCollection(t, 20, 60, 0, 15)
	res := Greedy(col, 0, 4)
	if res.Coverage != 0 {
		t.Fatal("empty collection coverage must be 0")
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("should pad to k seeds, got %d", len(res.Seeds))
	}
	if res.Influence(20) != 0 {
		t.Fatal("influence over empty collection must be 0")
	}
}

func TestGreedyFirstSeedIsMaxFrequency(t *testing.T) {
	// k=1 greedy must pick a node of maximum occurrence count.
	col := buildCollection(t, 25, 120, 500, 17)
	res := Greedy(col, col.Len(), 1)
	var best int64
	for v := uint32(0); v < 25; v++ {
		if c := CoverageOf(col, []uint32{v}, col.Len()); c > best {
			best = c
		}
	}
	if res.Coverage != best {
		t.Fatalf("k=1 coverage %d, max single-node coverage %d", res.Coverage, best)
	}
}

func TestGreedyMonotoneInK(t *testing.T) {
	col := buildCollection(t, 40, 250, 700, 19)
	prev := int64(-1)
	for k := 1; k <= 10; k++ {
		res := Greedy(col, col.Len(), k)
		if res.Coverage < prev {
			t.Fatalf("coverage decreased at k=%d", k)
		}
		prev = res.Coverage
	}
}

func TestInfluenceScaling(t *testing.T) {
	res := Result{Coverage: 50, Upto: 200}
	if inf := res.Influence(1000); inf != 250 {
		t.Fatalf("influence %v want 250", inf)
	}
	empty := Result{}
	if empty.Influence(1000) != 0 {
		t.Fatal("zero upto must give zero influence")
	}
}

func TestGreedyPropertyCoverageNeverExceedsUpto(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		col := buildCollection(t, 15, 50, 80, seed%97)
		k := int(kRaw%15) + 1
		res := Greedy(col, col.Len(), k)
		return res.Coverage <= int64(col.Len()) && len(res.Seeds) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyK50(b *testing.B) {
	col := buildCollection(b, 5000, 30000, 50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(col, col.Len(), 50)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	col := buildCollection(t, 60, 400, 900, 33)
	a := Greedy(col, col.Len(), 7)
	b := Greedy(col, col.Len(), 7)
	if a.Coverage != b.Coverage || len(a.Seeds) != len(b.Seeds) {
		t.Fatal("greedy not deterministic")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("greedy seed order not deterministic")
		}
	}
}
