package maxcover

import (
	"testing"
)

// This file is the fuzz harness for the incremental solvers: tiny random
// collections, randomized checkpoint schedules, and brute-force greedy
// oracles that recompute every marginal gain from the raw sets — no heaps,
// no epochs, no incremental state. Anything the lazy heap or the
// epoch-stamped covered marks get wrong (stale-entry mishandling, a missed
// generation bump, a gain count drifting across checkpoints) surfaces as a
// violated greedy invariant or a coverage recount mismatch. The seed corpus
// under testdata/fuzz is checked in so `go test` replays it on every run;
// `go test -fuzz=Fuzz ./internal/maxcover` explores further.

// checkpointsFrom derives a short non-decreasing checkpoint schedule ending
// at nSets from the fuzz-controlled sched word, mixing +1/+3/doubling-style
// irregular growth.
func checkpointsFrom(sched uint64, nSets int) []int {
	cuts := []int{}
	cur := 0
	for i := 0; i < 3; i++ {
		step := int(sched>>(8*i))%(nSets+1) + 1
		cur += step
		if cur >= nSets {
			break
		}
		cuts = append(cuts, cur)
	}
	return append(cuts, nSets)
}

// bruteGains recomputes, by scanning the raw sets, the marginal gain of
// every node over the uncovered sets in [0, upto).
func bruteGains(col interface {
	Set(int) []uint32
	NumNodes() int
}, covered []bool, upto int) []int64 {
	gains := make([]int64, col.NumNodes())
	for i := 0; i < upto; i++ {
		if covered[i] {
			continue
		}
		for _, v := range col.Set(i) {
			gains[v]++
		}
	}
	return gains
}

func coverSets(col interface{ Set(int) []uint32 }, covered []bool, upto int, seed uint32) {
	for i := 0; i < upto; i++ {
		if covered[i] {
			continue
		}
		for _, v := range col.Set(i) {
			if v == seed {
				covered[i] = true
				break
			}
		}
	}
}

// FuzzSolverAgainstGreedyOracle drives the incremental Solver across a
// randomized checkpoint schedule and checks, at every checkpoint:
//
//  1. bit-identical Seeds/Coverage to a from-scratch Greedy (incremental
//     state cannot drift);
//  2. the greedy invariant against the brute-force oracle: every selected
//     seed's marginal gain equals the maximum marginal gain at its
//     selection point (ties may resolve to any argmax, so the value — not
//     the node — is pinned), and the summed gains equal the reported
//     Coverage;
//  3. the reported Coverage equals an independent recount over the raw
//     sets.
func FuzzSolverAgainstGreedyOracle(f *testing.F) {
	f.Add(uint64(1), uint64(40), uint64(3), uint64(0x010307))
	f.Add(uint64(7), uint64(9), uint64(1), uint64(0x050505))
	f.Add(uint64(23), uint64(77), uint64(5), uint64(0x3f0101))
	f.Add(uint64(99), uint64(1), uint64(9), uint64(0))
	f.Fuzz(func(t *testing.T, seed, nSetsRaw, kRaw, sched uint64) {
		nSets := int(nSetsRaw%96) + 1
		k := int(kRaw%7) + 1
		col := buildCollection(t, 14, 45, 0, seed%4096+1)
		sol := NewSolver(col)
		for _, upto := range checkpointsFrom(sched, nSets) {
			col.GenerateTo(upto)
			got := sol.Solve(upto, k)
			want := Greedy(col, upto, k)
			assertSameResult(t, "fuzz incremental vs fresh", got, want)
			if rec := CoverageOf(col, got.Seeds, upto); rec != got.Coverage {
				t.Fatalf("coverage recount %d != reported %d (upto=%d seeds=%v)",
					rec, got.Coverage, upto, got.Seeds)
			}
			covered := make([]bool, upto)
			var total int64
			for _, s := range got.Seeds {
				gains := bruteGains(col, covered, upto)
				var maxGain int64
				for _, gv := range gains {
					if gv > maxGain {
						maxGain = gv
					}
				}
				if gains[s] != maxGain {
					t.Fatalf("greedy invariant violated: seed %d has gain %d, max is %d (upto=%d seeds=%v)",
						s, gains[s], maxGain, upto, got.Seeds)
				}
				total += gains[s]
				coverSets(col, covered, upto, s)
			}
			if total != got.Coverage {
				t.Fatalf("oracle gain sum %d != reported coverage %d", total, got.Coverage)
			}
		}
	})
}

// FuzzBudgetedSolverAgainstRatioOracle is the budgeted analogue: the
// incremental BudgetedSolver must match from-scratch GreedyBudgeted at
// every checkpoint of a randomized schedule and budget sweep, and the
// returned solution must satisfy the brute-force ratio-greedy invariants:
//
//   - multi-seed solutions: each selected node's gain/cost ratio is the
//     maximum over unselected affordable positive-gain nodes at its
//     selection point, the spent cost fits the budget, and the summed
//     gains equal Coverage;
//   - any solution: Coverage ≥ the best single affordable node's gain
//     (the Khuller–Moss–Naor guarantee) and Coverage matches an
//     independent recount.
func FuzzBudgetedSolverAgainstRatioOracle(f *testing.F) {
	f.Add(uint64(1), uint64(40), uint64(6), uint64(0x010307))
	f.Add(uint64(5), uint64(18), uint64(2), uint64(0x070707))
	f.Add(uint64(42), uint64(90), uint64(13), uint64(0x3f0101))
	f.Add(uint64(11), uint64(2), uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, seed, nSetsRaw, budgetRaw, sched uint64) {
		nSets := int(nSetsRaw%96) + 1
		budget := float64(budgetRaw%16) + 1
		col := buildCollection(t, 14, 45, 0, seed%4096+3)
		costs := make([]float64, col.NumNodes())
		for v := range costs {
			costs[v] = float64((uint64(v)*2654435761+seed)%4) + 1
		}
		costOf := func(v uint32) float64 { return costs[v] }
		sol := NewBudgetedSolver(col, costs)
		for _, upto := range checkpointsFrom(sched, nSets) {
			col.GenerateTo(upto)
			got := sol.Solve(upto, budget)
			want := GreedyBudgeted(col, upto, costs, budget)
			if got.Coverage != want.Coverage || got.Cost != want.Cost ||
				len(got.Seeds) != len(want.Seeds) {
				t.Fatalf("incremental vs fresh differ: %+v vs %+v", got, want)
			}
			for i := range got.Seeds {
				if got.Seeds[i] != want.Seeds[i] {
					t.Fatalf("incremental vs fresh seed %d: %d vs %d", i, got.Seeds[i], want.Seeds[i])
				}
			}
			if rec := CoverageOf(col, got.Seeds, upto); rec != got.Coverage {
				t.Fatalf("coverage recount %d != reported %d", rec, got.Coverage)
			}
			// KMN floor: no single affordable node may beat the solution.
			full := bruteGains(col, make([]bool, upto), upto)
			var bestSingle int64
			for v := range costs {
				if costs[v] <= budget && full[v] > bestSingle {
					bestSingle = full[v]
				}
			}
			if got.Coverage < bestSingle {
				t.Fatalf("KMN violated: coverage %d < best single %d", got.Coverage, bestSingle)
			}
			var spent float64
			for _, s := range got.Seeds {
				spent += costOf(s)
			}
			if spent > budget || spent != got.Cost {
				t.Fatalf("cost accounting: spent %v reported %v budget %v", spent, got.Cost, budget)
			}
			if len(got.Seeds) <= 1 {
				continue // single-seed results may come from the KMN fix-up
			}
			// Ratio-greedy invariant replay.
			covered := make([]bool, upto)
			remaining := budget
			inSeed := make([]bool, col.NumNodes())
			var total int64
			for _, s := range got.Seeds {
				gains := bruteGains(col, covered, upto)
				best := 0.0
				for v := range costs {
					if inSeed[v] || gains[v] <= 0 || costs[v] > remaining {
						continue
					}
					if r := float64(gains[v]) / costs[v]; r > best {
						best = r
					}
				}
				if r := float64(gains[s]) / costOf(s); r != best {
					t.Fatalf("ratio invariant violated: seed %d ratio %v, max %v (seeds=%v)",
						s, r, best, got.Seeds)
				}
				inSeed[s] = true
				remaining -= costOf(s)
				total += gains[s]
				coverSets(col, covered, upto, s)
			}
			if total != got.Coverage {
				t.Fatalf("oracle gain sum %d != reported coverage %d", total, got.Coverage)
			}
		}
	})
}
