package maxcover

// heapOrdered is implemented by heap elements; above reports whether the
// receiver has strictly higher priority (max-heap order).
type heapOrdered[T any] interface{ above(T) bool }

// The sift routines below replicate container/heap's algorithm exactly
// (same child-selection and tie handling) so that lazy-greedy selection
// order — and therefore every returned seed set — is identical to the
// container/heap-based implementation they replace. Operating on the
// concrete element type avoids interface boxing: zero allocations per
// push/pop on the selection hot path.

func heapInit[T heapOrdered[T]](h []T) {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		heapDown(h, i, n)
	}
}

func heapPush[T heapOrdered[T]](h *[]T, x T) {
	*h = append(*h, x)
	heapUp(*h, len(*h)-1)
}

func heapPop[T heapOrdered[T]](h *[]T) T {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	heapDown(old, 0, n)
	x := old[n]
	*h = old[:n]
	return x
}

func heapUp[T heapOrdered[T]](h []T, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h[j].above(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func heapDown[T heapOrdered[T]](h []T, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].above(h[j1]) {
			j = j2 // right child
		}
		if !h[j].above(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
