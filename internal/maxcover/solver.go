package maxcover

import (
	"stopandstare/internal/epoch"
	"stopandstare/internal/ris"
)

// Solver is an incremental max-coverage solver over a growing RR stream.
// SSA, D-SSA, IMM and TIM all call max-coverage at every checkpoint of a
// doubling schedule; solving from scratch rescans the entire stream each
// time, i.e. O(Σ|R| so far) per checkpoint. A Solver keeps the selection-
// free gain counts alive across checkpoints, so Solve(upto, k) only scans
// the new suffix of RR sets — O(new items) — before running the same exact
// lazy greedy (Minoux) selection as Greedy. Scratch buffers (the working
// gain copy, the epoch-stamped covered marks, and the lazy-greedy heap's
// backing array) are likewise reused, so the steady-state checkpoint cost
// allocates only the returned seed slice.
//
// Equivalence with Greedy is exact, not approximate: the persistent gains
// after scanning [0, upto) equal the from-scratch counts (integer addition
// is associative), and the selection phase rebuilds the heap in ascending
// node order from those counts — the identical initial state Greedy
// constructs — so every pop, lazy re-push and selection proceeds
// identically. Greedy itself is a thin wrapper over a fresh Solver.
//
// Solve expects upto to be non-decreasing across calls (the doubling
// schedules of all callers guarantee this); a smaller upto falls back to a
// fresh from-scratch solve, preserving semantics at the old cost.
//
// The solver consumes the ris.Store interface only, and is insensitive to
// the store's postings-run ordering (gain updates and covered-set walks are
// order-independent sums), so flat and sharded stores yield bit-identical
// Seeds and Coverage — the property the differential harness pins.
type Solver struct {
	c       ris.Store
	scanned int         // RR sets [0, scanned) are counted in gains
	gains   []int32     // selection-free occurrence counts
	work    []int32     // per-Solve gain copy, decremented during selection
	covered epoch.Marks // covered RR-set ids, cleared per Solve by epoch bump
	inSeed  []bool      // selection marks, reset before Solve returns
	h       []candidate // heap backing array reused across Solves
}

// NewSolver creates an incremental solver bound to an RR-set store.
func NewSolver(c ris.Store) *Solver {
	n := c.NumNodes()
	return &Solver{
		c:      c,
		gains:  make([]int32, n),
		work:   make([]int32, n),
		inSeed: make([]bool, n),
	}
}

// Scanned returns the stream prefix length folded into the gain counts.
func (s *Solver) Scanned() int { return s.scanned }

// Solve returns the lazy-greedy max-coverage solution over RR sets
// [0, upto), identical to Greedy(c, upto, k). Only sets [scanned, upto)
// are read to update gains; selection cost is proportional to the covered
// items, not the stream length.
func (s *Solver) Solve(upto, k int) Result {
	c := s.c
	n := c.NumNodes()
	if upto > c.Len() {
		upto = c.Len()
	}
	if k > n {
		k = n
	}
	if upto < s.scanned {
		// Non-monotonic use: recompute from scratch without disturbing the
		// incremental state.
		return NewSolver(c).Solve(upto, k)
	}
	// Incremental gain update: only the new suffix is scanned (ForEachSet,
	// so a sharded store walks its shard runs without per-id lookups).
	gains := s.gains
	c.ForEachSet(s.scanned, upto, func(_ int, set []uint32) {
		for _, v := range set {
			gains[v]++
		}
	})
	s.scanned = upto

	res := Result{Upto: upto, Seeds: make([]uint32, 0, k)}
	copy(s.work, s.gains)
	// Rebuild the heap in ascending node order into the reused backing
	// array: the initial state is then bit-identical to Greedy's.
	s.h = s.h[:0]
	for v := 0; v < n; v++ {
		if s.work[v] > 0 {
			s.h = append(s.h, candidate{node: uint32(v), gain: s.work[v]})
		}
	}
	heapInit(s.h)

	s.covered.Reset(upto)

	for len(res.Seeds) < k && len(s.h) > 0 {
		top := heapPop(&s.h)
		v := top.node
		if s.inSeed[v] {
			continue
		}
		if top.gain != s.work[v] {
			if s.work[v] > 0 {
				heapPush(&s.h, candidate{node: v, gain: s.work[v]})
			}
			continue
		}
		if s.work[v] <= 0 {
			break // nothing uncovered remains reachable
		}
		// Select v: cover its uncovered sets, decrement other members.
		res.Seeds = append(res.Seeds, v)
		s.inSeed[v] = true
		res.Coverage += int64(s.work[v])
		it := c.PostingsUpto(v, upto)
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			for _, id := range run {
				if !s.covered.Visit(id) {
					continue
				}
				for _, u := range c.Set(int(id)) {
					s.work[u]--
				}
			}
		}
	}
	// Pad to k seeds with unused nodes (stable, lowest ids first).
	for v := 0; len(res.Seeds) < k && v < n; v++ {
		if !s.inSeed[v] {
			res.Seeds = append(res.Seeds, uint32(v))
			s.inSeed[v] = true
		}
	}
	for _, v := range res.Seeds {
		s.inSeed[v] = false
	}
	return res
}
