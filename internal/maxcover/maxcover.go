// Package maxcover implements the greedy Max-Coverage procedure of the
// paper's Algorithm 2: given a collection of RR sets, pick k nodes
// maximising the number of covered sets. The classic Nemhauser–Wolsey
// result gives Cov(Ŝ_k) ≥ (1−1/e)·max_{|S|=k} Cov(S); the implementation is
// the exact lazy-greedy (Minoux's accelerated greedy — the same trick CELF
// uses), which returns the identical seed set to naive greedy because
// coverage gain is submodular. The incremental Solver amortises the greedy
// bookkeeping across the checkpoints of a doubling schedule; Greedy is its
// from-scratch special case.
package maxcover

import "stopandstare/internal/ris"

// Result is a max-coverage solution over a prefix of an RR collection.
type Result struct {
	Seeds    []uint32
	Coverage int64 // number of RR sets in [0, Upto) covered by Seeds
	Upto     int   // the prefix length the solution was computed over
}

// Influence converts coverage into the paper's estimator
// Î(S) = scale·Cov_R(S)/|R| (scale = n for RIS, Γ for WRIS).
func (r Result) Influence(scale float64) float64 {
	if r.Upto == 0 {
		return 0
	}
	return scale * float64(r.Coverage) / float64(r.Upto)
}

type candidate struct {
	node uint32
	gain int32
}

// above orders the lazy-greedy max-heap on gain (see heap.go).
func (c candidate) above(o candidate) bool { return c.gain > o.gain }

// Greedy solves max-coverage over RR sets [0, upto) of c, returning k seeds.
// If coverage saturates before k distinct useful nodes exist, the seed set
// is padded with the lowest-id unused nodes so callers always receive
// exactly min(k, n) seeds (a size-k seed set is what IM asks for).
//
// Greedy is the from-scratch entry point: it is exactly a fresh Solver
// solved once. Checkpointed algorithms should hold a Solver instead, which
// scans only the stream suffix added since the previous checkpoint.
func Greedy(c ris.Store, upto, k int) Result {
	return NewSolver(c).Solve(upto, k)
}

// CoverageOf computes Cov over [0,upto) for an arbitrary seed set (used to
// cross-check Greedy and by tests).
func CoverageOf(c ris.Store, seeds []uint32, upto int) int64 {
	mark := make([]bool, c.NumNodes())
	for _, s := range seeds {
		mark[s] = true
	}
	return c.CoverageRange(mark, 0, upto)
}
