// Package maxcover implements the greedy Max-Coverage procedure of the
// paper's Algorithm 2: given a collection of RR sets, pick k nodes
// maximising the number of covered sets. The classic Nemhauser–Wolsey
// result gives Cov(Ŝ_k) ≥ (1−1/e)·max_{|S|=k} Cov(S); the implementation is
// the exact lazy-greedy (Minoux's accelerated greedy — the same trick CELF
// uses), which returns the identical seed set to naive greedy because
// coverage gain is submodular.
package maxcover

import (
	"container/heap"

	"stopandstare/internal/ris"
)

// Result is a max-coverage solution over a prefix of an RR collection.
type Result struct {
	Seeds    []uint32
	Coverage int64 // number of RR sets in [0, Upto) covered by Seeds
	Upto     int   // the prefix length the solution was computed over
}

// Influence converts coverage into the paper's estimator
// Î(S) = scale·Cov_R(S)/|R| (scale = n for RIS, Γ for WRIS).
func (r Result) Influence(scale float64) float64 {
	if r.Upto == 0 {
		return 0
	}
	return scale * float64(r.Coverage) / float64(r.Upto)
}

type candidate struct {
	node uint32
	gain int32
}

type gainHeap []candidate

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Greedy solves max-coverage over RR sets [0, upto) of c, returning k seeds.
// If coverage saturates before k distinct useful nodes exist, the seed set
// is padded with the lowest-id unused nodes so callers always receive
// exactly min(k, n) seeds (a size-k seed set is what IM asks for).
func Greedy(c *ris.Collection, upto, k int) Result {
	n := c.NumNodes()
	if upto > c.Len() {
		upto = c.Len()
	}
	if k > n {
		k = n
	}
	res := Result{Upto: upto, Seeds: make([]uint32, 0, k)}

	gains := make([]int32, n)
	for i := 0; i < upto; i++ {
		for _, v := range c.Set(i) {
			gains[v]++
		}
	}
	covered := make([]bool, upto)
	inSeed := make([]bool, n)

	h := make(gainHeap, 0, n)
	for v := 0; v < n; v++ {
		if gains[v] > 0 {
			h = append(h, candidate{node: uint32(v), gain: gains[v]})
		}
	}
	heap.Init(&h)

	for len(res.Seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(candidate)
		v := top.node
		if inSeed[v] {
			continue
		}
		if top.gain != gains[v] {
			if gains[v] > 0 {
				heap.Push(&h, candidate{node: v, gain: gains[v]})
			}
			continue
		}
		if gains[v] <= 0 {
			break // nothing uncovered remains reachable
		}
		// Select v: cover its uncovered sets, decrement other members.
		res.Seeds = append(res.Seeds, v)
		inSeed[v] = true
		res.Coverage += int64(gains[v])
		for _, id := range c.IndexUpto(v, upto) {
			if covered[id] {
				continue
			}
			covered[id] = true
			for _, u := range c.Set(int(id)) {
				gains[u]--
			}
		}
	}
	// Pad to k seeds with unused nodes (stable, lowest ids first).
	for v := 0; len(res.Seeds) < k && v < n; v++ {
		if !inSeed[v] {
			res.Seeds = append(res.Seeds, uint32(v))
			inSeed[v] = true
		}
	}
	return res
}

// CoverageOf computes Cov over [0,upto) for an arbitrary seed set (used to
// cross-check Greedy and by tests).
func CoverageOf(c *ris.Collection, seeds []uint32, upto int) int64 {
	mark := make([]bool, c.NumNodes())
	for _, s := range seeds {
		mark[s] = true
	}
	return c.CoverageRange(mark, 0, upto)
}
