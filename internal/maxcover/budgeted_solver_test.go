package maxcover

import (
	"testing"
)

func assertSameBudgeted(t *testing.T, ctx string, got, want BudgetedResult) {
	t.Helper()
	if got.Upto != want.Upto || got.Coverage != want.Coverage || got.Cost != want.Cost {
		t.Fatalf("%s: got upto=%d cov=%d cost=%v, want upto=%d cov=%d cost=%v",
			ctx, got.Upto, got.Coverage, got.Cost, want.Upto, want.Coverage, want.Cost)
	}
	if len(got.Seeds) != len(want.Seeds) {
		t.Fatalf("%s: got %d seeds, want %d", ctx, len(got.Seeds), len(want.Seeds))
	}
	for i := range got.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("%s: seed %d differs: got %d want %d", ctx, i, got.Seeds[i], want.Seeds[i])
		}
	}
}

// budgetSweeps are the sweep shapes the solver identity runs over:
// ascending, descending, duplicated, and mixed (including budgets below the
// cheapest cost and far above saturation).
var budgetSweeps = [][]float64{
	{1, 2, 4, 8, 16, 32},
	{32, 16, 8, 4, 2, 1},
	{5, 5, 5, 5},
	{7, 0.5, 7, 100, 3, 100, 0.5},
}

// TestBudgetedSolverMatchesGreedySweeps is the core incremental contract:
// one persistent BudgetedSolver solving a sweep of budgets returns
// bit-identical Seeds/Coverage/Cost to a from-scratch GreedyBudgeted per
// budget, in any budget order.
func TestBudgetedSolverMatchesGreedySweeps(t *testing.T) {
	col := buildCollection(t, 60, 400, 900, 33)
	costs := make([]float64, 60)
	for v := range costs {
		costs[v] = float64(v%4)*0.75 + 0.5
	}
	for si, sweep := range budgetSweeps {
		sol := NewBudgetedSolver(col, costs)
		for bi, b := range sweep {
			got := sol.Solve(col.Len(), b)
			want := GreedyBudgeted(col, col.Len(), costs, b)
			assertSameBudgeted(t, "sweep", got, want)
			if got.Upto != col.Len() {
				t.Fatalf("sweep %d budget %d: upto %d", si, bi, got.Upto)
			}
		}
	}
}

// TestBudgetedSolverIncrementalGrowth interleaves stream growth with budget
// solves (the serving-layer pattern: a slowly growing collection answering
// budget queries), checking only the new suffix is scanned and results stay
// identical to from-scratch.
func TestBudgetedSolverIncrementalGrowth(t *testing.T) {
	col := buildCollection(t, 50, 300, 0, 41)
	costs := make([]float64, 50)
	for v := range costs {
		costs[v] = float64(v%5) + 1
	}
	sol := NewBudgetedSolver(col, costs)
	budgets := []float64{3, 12, 6, 25, 25, 1}
	for i, upto := range []int{50, 50, 200, 450, 900, 900} {
		col.GenerateTo(upto)
		got := sol.Solve(upto, budgets[i])
		want := GreedyBudgeted(col, upto, costs, budgets[i])
		assertSameBudgeted(t, "growth", got, want)
		if sol.Scanned() != upto {
			t.Fatalf("step %d: scanned %d want %d", i, sol.Scanned(), upto)
		}
	}
}

// TestBudgetedSolverNonMonotonicFallsBack asserts a shrinking upto still
// returns the exact from-scratch solution and leaves the incremental state
// usable afterwards.
func TestBudgetedSolverNonMonotonicFallsBack(t *testing.T) {
	col := buildCollection(t, 40, 250, 700, 45)
	costs := make([]float64, 40)
	for v := range costs {
		costs[v] = float64(v%3) + 1
	}
	sol := NewBudgetedSolver(col, costs)
	full := sol.Solve(700, 15)
	assertSameBudgeted(t, "full", full, GreedyBudgeted(col, 700, costs, 15))
	small := sol.Solve(100, 15)
	assertSameBudgeted(t, "shrunk", small, GreedyBudgeted(col, 100, costs, 15))
	again := sol.Solve(700, 15)
	assertSameBudgeted(t, "recovered", again, full)
}

// TestBudgetedSolverNilAndShortCosts covers the cost-defaulting contract
// (nil slice, short slice: missing entries cost 1) matching GreedyBudgeted.
func TestBudgetedSolverNilAndShortCosts(t *testing.T) {
	col := buildCollection(t, 30, 200, 500, 49)
	short := []float64{2, 0, 3, -1} // holes and the short tail default to 1
	for _, costs := range [][]float64{nil, short} {
		sol := NewBudgetedSolver(col, costs)
		for _, b := range []float64{1, 4, 9} {
			assertSameBudgeted(t, "costs-default",
				sol.Solve(col.Len(), b), GreedyBudgeted(col, col.Len(), costs, b))
		}
	}
}

// TestBudgetedSolverZeroBudget must select nothing and leave state clean.
func TestBudgetedSolverZeroBudget(t *testing.T) {
	col := buildCollection(t, 20, 100, 200, 53)
	sol := NewBudgetedSolver(col, nil)
	res := sol.Solve(col.Len(), 0)
	if len(res.Seeds) != 0 || res.Coverage != 0 || res.Cost != 0 {
		t.Fatalf("zero budget must select nothing: %+v", res)
	}
	// State must be untouched enough that a real solve still matches.
	assertSameBudgeted(t, "after-zero",
		sol.Solve(col.Len(), 8), GreedyBudgeted(col, col.Len(), nil, 8))
}

// sweepBudgets is the budget list shared by the sweep benchmarks.
var sweepBudgets = []float64{5, 10, 20, 40, 80, 160}

// BenchmarkBudgetSweepRescan is the pre-refactor sweep: a from-scratch
// GreedyBudgeted per budget, each rescanning the entire stream.
func BenchmarkBudgetSweepRescan(b *testing.B) {
	col := buildBenchCollection(b)
	costs := make([]float64, col.NumNodes())
	for v := range costs {
		costs[v] = float64(v%5) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bud := range sweepBudgets {
			GreedyBudgeted(col, col.Len(), costs, bud)
		}
	}
}

// BenchmarkBudgetSweepIncremental is the same sweep through one
// BudgetedSolver: the stream is scanned once, each budget is selection
// only.
func BenchmarkBudgetSweepIncremental(b *testing.B) {
	col := buildBenchCollection(b)
	costs := make([]float64, col.NumNodes())
	for v := range costs {
		costs[v] = float64(v%5) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := NewBudgetedSolver(col, costs)
		for _, bud := range sweepBudgets {
			sol.Solve(col.Len(), bud)
		}
	}
}
