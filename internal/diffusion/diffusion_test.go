package diffusion

import (
	"math"
	"testing"

	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// line is 0 -> 1 -> 2 with probability p per edge.
func line(t *testing.T, p float64) *graph.Graph {
	return mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, W: p}, {U: 1, V: 2, W: p}})
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("model names")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model should still print")
	}
}

func TestParseModel(t *testing.T) {
	for _, s := range []string{"IC", "ic", "LT", "lt"} {
		if _, err := ParseModel(s); err != nil {
			t.Fatalf("ParseModel(%q): %v", s, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("bogus model should fail")
	}
}

func TestSimulateICDeterministicEdges(t *testing.T) {
	// p = 1: everything reachable activates; p = 0: only seeds.
	g1 := line(t, 1)
	g0 := line(t, 0)
	sc := NewScratch(3)
	r := rng.New(1)
	if got := SimulateIC(g1, []uint32{0}, r, sc); got != 3 {
		t.Fatalf("p=1 spread %d want 3", got)
	}
	if got := SimulateIC(g0, []uint32{0}, r, sc); got != 1 {
		t.Fatalf("p=0 spread %d want 1", got)
	}
}

func TestSimulateLTDeterministicEdges(t *testing.T) {
	// LT with full incoming weight 1: threshold always met.
	g1 := line(t, 1)
	sc := NewScratch(3)
	r := rng.New(2)
	if got := SimulateLT(g1, []uint32{0}, r, sc); got != 3 {
		t.Fatalf("w=1 LT spread %d want 3", got)
	}
}

func TestSeedsAlwaysActive(t *testing.T) {
	g := line(t, 0.5)
	sc := NewScratch(3)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if got := Simulate(g, IC, []uint32{2}, r, sc); got < 1 {
			t.Fatal("seed not counted")
		}
	}
}

func TestDuplicateSeedsCountedOnce(t *testing.T) {
	g := line(t, 0)
	sc := NewScratch(3)
	r := rng.New(4)
	if got := SimulateIC(g, []uint32{0, 0, 0}, r, sc); got != 1 {
		t.Fatalf("duplicate seeds spread %d want 1", got)
	}
}

func TestSpreadMatchesExactIC(t *testing.T) {
	// Analytic: I({0}) on the p-line = 1 + p + p².
	p := 0.5
	g := line(t, p)
	want := 1 + p + p*p
	mean, se, err := Spread(g, IC, []uint32{0}, SpreadOptions{Runs: 200000, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-want) > 5*se+0.01 {
		t.Fatalf("IC spread %.4f ± %.4f want %.4f", mean, se, want)
	}
	// Cross-check against the brute-force evaluator.
	exact, err := ExactIC(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-want) > 1e-6 {
		t.Fatalf("ExactIC %.6f want %.6f", exact, want)
	}
}

func TestSpreadMatchesExactLT(t *testing.T) {
	// LT on the line: live-edge view gives the same 1 + p + p².
	p := 0.4
	g := line(t, p)
	exact, err := ExactLT(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + p + p*p
	if math.Abs(exact-want) > 1e-6 {
		t.Fatalf("ExactLT %.6f want %.6f", exact, want)
	}
	mean, se, err := Spread(g, LT, []uint32{0}, SpreadOptions{Runs: 200000, Seed: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exact) > 5*se+0.01 {
		t.Fatalf("LT spread %.4f ± %.4f want %.4f", mean, se, exact)
	}
}

func TestSpreadMatchesExactOnRandomGraphIC(t *testing.T) {
	// A denser 5-node graph with mixed weights.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 0.6}, {U: 0, V: 2, W: 0.3}, {U: 1, V: 3, W: 0.5},
		{U: 2, V: 3, W: 0.7}, {U: 3, V: 4, W: 0.4}, {U: 1, V: 2, W: 0.2},
	}
	g := mustGraph(t, 5, edges)
	exact, err := ExactIC(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	mean, se, err := Spread(g, IC, []uint32{0}, SpreadOptions{Runs: 300000, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exact) > 5*se+0.01 {
		t.Fatalf("spread %.4f ± %.4f want exact %.4f", mean, se, exact)
	}
}

func TestSpreadMatchesExactOnRandomGraphLT(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 1, W: 0.5}, {U: 2, V: 1, W: 0.3}, {U: 1, V: 3, W: 0.6},
		{U: 0, V: 3, W: 0.2}, {U: 3, V: 4, W: 0.8},
	}
	g := mustGraph(t, 5, edges)
	exact, err := ExactLT(g, []uint32{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	mean, se, err := Spread(g, LT, []uint32{0, 2}, SpreadOptions{Runs: 300000, Seed: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exact) > 5*se+0.01 {
		t.Fatalf("LT spread %.4f ± %.4f want exact %.4f", mean, se, exact)
	}
}

func TestSpreadMonotoneInSeeds(t *testing.T) {
	g, err := gen.ChungLu(300, 1500, 2.3, 9, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []Model{IC, LT} {
		s1, _, _ := Spread(g, model, []uint32{1}, SpreadOptions{Runs: 4000, Seed: 10})
		s2, _, _ := Spread(g, model, []uint32{1, 2, 3}, SpreadOptions{Runs: 4000, Seed: 10})
		if s2+1e-9 < s1 {
			t.Fatalf("%v: spread not monotone: %f < %f", model, s2, s1)
		}
	}
}

func TestSpreadDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1000, 11, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := Spread(g, IC, []uint32{0, 5}, SpreadOptions{Runs: 5000, Seed: 42, Workers: 1})
	b, _, _ := Spread(g, IC, []uint32{0, 5}, SpreadOptions{Runs: 5000, Seed: 42, Workers: 4})
	if a != b {
		t.Fatalf("spread differs across worker counts: %v vs %v", a, b)
	}
}

func TestSpreadBadSeeds(t *testing.T) {
	g := line(t, 0.5)
	if _, _, err := Spread(g, IC, []uint32{99}, SpreadOptions{Runs: 10}); err == nil {
		t.Fatal("out-of-range seed should fail")
	}
}

func TestWeightedSpreadTVM(t *testing.T) {
	// Benefit only on node 2: B({0}) = p² under IC on the line... plus
	// nothing from seeds. Weights: b = [0,0,1].
	p := 0.6
	g := line(t, p)
	w := []float64{0, 0, 1}
	mean, se, err := Spread(g, IC, []uint32{0}, SpreadOptions{Runs: 200000, Seed: 13, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	want := p * p
	if math.Abs(mean-want) > 5*se+0.005 {
		t.Fatalf("weighted spread %.4f want %.4f", mean, want)
	}
}

func TestSimulateWeightedSeedBenefit(t *testing.T) {
	g := line(t, 0)
	w := []float64{5, 1, 1}
	sc := NewScratch(3)
	r := rng.New(14)
	got := SimulateWeighted(g, IC, []uint32{0}, w, r, sc)
	if got != 5 {
		t.Fatalf("seed benefit %v want 5", got)
	}
}

func TestSimulateWeightedNilWeightsCountsNodes(t *testing.T) {
	g := line(t, 1)
	sc := NewScratch(3)
	r := rng.New(15)
	if got := SimulateWeighted(g, IC, []uint32{0}, nil, r, sc); got != 3 {
		t.Fatalf("nil weights spread %v want 3", got)
	}
}

func TestExactICTooLarge(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 100, 16, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactIC(g, []uint32{0}); err == nil {
		t.Fatal("30-edge graph should exceed exact-IC limit")
	}
}

func TestExactLTTooLarge(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 500, 17, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactLT(g, []uint32{0}); err == nil {
		t.Fatal("dense graph should exceed exact-LT limit")
	}
}

func TestExactDispatch(t *testing.T) {
	g := line(t, 0.5)
	ic, err := Exact(g, IC, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	lt, err := Exact(g, LT, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ic-lt) > 1e-6 {
		// On a line with equal weights the two models coincide.
		t.Fatalf("IC %.6f vs LT %.6f should agree on a line", ic, lt)
	}
}

func TestScratchEpochWraparound(t *testing.T) {
	g := line(t, 1)
	sc := NewScratch(3)
	sc.epoch = ^uint32(0) - 1 // near wrap
	r := rng.New(18)
	for i := 0; i < 5; i++ {
		if got := SimulateIC(g, []uint32{0}, r, sc); got != 3 {
			t.Fatalf("wraparound corrupted marks: spread %d", got)
		}
	}
}

func BenchmarkSimulateIC(b *testing.B) {
	g, err := gen.ChungLu(10000, 50000, 2.1, 1, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScratch(g.NumNodes())
	r := rng.New(1)
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateIC(g, seeds, r, sc)
	}
}

func BenchmarkSimulateLT(b *testing.B) {
	g, err := gen.ChungLu(10000, 50000, 2.1, 1, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScratch(g.NumNodes())
	r := rng.New(1)
	seeds := []uint32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateLT(g, seeds, r, sc)
	}
}

func TestLTAccumulationAcrossParents(t *testing.T) {
	// v has two in-neighbours with weight 0.5 each. If both are seeded, the
	// accumulated weight reaches 1.0 >= any threshold, so v activates with
	// probability exactly 1 — this exercises threshold persistence and
	// weight accumulation within a single cascade.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 2, W: 0.5}, {U: 1, V: 2, W: 0.5}})
	sc := NewScratch(3)
	for i := 0; i < 2000; i++ {
		r := rng.NewStream(271, uint64(i))
		if got := SimulateLT(g, []uint32{0, 1}, r, sc); got != 3 {
			t.Fatalf("run %d: spread %d want 3 (accumulation broken)", i, got)
		}
	}
	// With only one parent seeded, activation probability is exactly 0.5.
	hits := 0
	for i := 0; i < 200000; i++ {
		r := rng.NewStream(277, uint64(i))
		if SimulateLT(g, []uint32{0}, r, sc) == 2 {
			hits++
		}
	}
	rate := float64(hits) / 200000
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("single-parent LT activation rate %.4f want 0.5", rate)
	}
}

func TestICNoDoubleActivationChance(t *testing.T) {
	// u -> v with w = 0.5 and a seed set containing u twice must give v
	// exactly one activation chance: rate 0.5, not 0.75.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, W: 0.5}})
	sc := NewScratch(2)
	hits := 0
	for i := 0; i < 200000; i++ {
		r := rng.NewStream(281, uint64(i))
		if SimulateIC(g, []uint32{0, 0}, r, sc) == 2 {
			hits++
		}
	}
	rate := float64(hits) / 200000
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("IC activation rate %.4f want 0.5", rate)
	}
}
