// Package diffusion implements the two propagation models of §2.1 —
// Independent Cascade (IC) and Linear Threshold (LT) — as forward Monte
// Carlo simulators, plus exact (possible-world enumeration) evaluators used
// by the test suite to validate Lemma 1 and the samplers.
//
// The forward simulators are what the paper's figures 2–3 use to score the
// returned seed sets ("expected influence"), and what the CELF/CELF++
// baselines use as their spread oracle.
package diffusion

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// Model selects the propagation model.
type Model uint8

const (
	// IC is the Independent Cascade model.
	IC Model = iota
	// LT is the Linear Threshold model.
	LT
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// ParseModel converts "IC"/"LT" (any case) to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "IC", "ic", "Ic":
		return IC, nil
	case "LT", "lt", "Lt":
		return LT, nil
	}
	return 0, fmt.Errorf("diffusion: unknown model %q (want IC or LT)", s)
}

// ErrBadSeedSet reports an invalid seed set.
var ErrBadSeedSet = errors.New("diffusion: seed set contains out-of-range node")

// Scratch holds the per-goroutine buffers a simulation needs, so repeated
// simulations allocate nothing. Epoch-stamped marking avoids clearing.
type Scratch struct {
	n       int
	queue   []uint32
	mark    []uint32 // mark[v] == epoch ⇒ v active this run
	epoch   uint32
	acc     []float64 // LT: accumulated incoming active weight
	thresh  []float64 // LT: lazily sampled thresholds λ_v
	tsEpoch []uint32  // LT: epoch stamp for acc/thresh validity
}

// NewScratch allocates scratch buffers for an n-node graph.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:       n,
		queue:   make([]uint32, 0, 256),
		mark:    make([]uint32, n),
		acc:     make([]float64, n),
		thresh:  make([]float64, n),
		tsEpoch: make([]uint32, n),
	}
}

func (s *Scratch) nextEpoch() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once every 2^32 runs
		for i := range s.mark {
			s.mark[i] = 0
		}
		for i := range s.tsEpoch {
			s.tsEpoch[i] = 0
		}
		s.epoch = 1
	}
}

// Simulate runs one cascade from seeds under the given model and returns the
// number of activated nodes (including the seeds).
func Simulate(g *graph.Graph, model Model, seeds []uint32, r *rng.Source, sc *Scratch) int {
	switch model {
	case IC:
		return SimulateIC(g, seeds, r, sc)
	default:
		return SimulateLT(g, seeds, r, sc)
	}
}

// SimulateIC runs one Independent Cascade: each newly activated u gets a
// single chance to activate each out-neighbour v with probability w(u,v).
func SimulateIC(g *graph.Graph, seeds []uint32, r *rng.Source, sc *Scratch) int {
	sc.nextEpoch()
	q := sc.queue[:0]
	for _, s := range seeds {
		if sc.mark[s] != sc.epoch {
			sc.mark[s] = sc.epoch
			q = append(q, s)
		}
	}
	active := len(q)
	for head := 0; head < len(q); head++ {
		u := q[head]
		adj, ws := g.OutNeighbors(u)
		for i, v := range adj {
			if sc.mark[v] == sc.epoch {
				continue
			}
			if r.Float64() < float64(ws[i]) {
				sc.mark[v] = sc.epoch
				q = append(q, v)
				active++
			}
		}
	}
	sc.queue = q
	return active
}

// SimulateLT runs one Linear Threshold cascade: node v activates when the
// total weight of its active in-neighbours reaches its threshold λ_v,
// sampled uniformly from [0,1] on first contact (lazy sampling is
// distributionally identical to sampling all thresholds upfront).
func SimulateLT(g *graph.Graph, seeds []uint32, r *rng.Source, sc *Scratch) int {
	sc.nextEpoch()
	q := sc.queue[:0]
	for _, s := range seeds {
		if sc.mark[s] != sc.epoch {
			sc.mark[s] = sc.epoch
			q = append(q, s)
		}
	}
	active := len(q)
	for head := 0; head < len(q); head++ {
		u := q[head]
		adj, ws := g.OutNeighbors(u)
		for i, v := range adj {
			if sc.mark[v] == sc.epoch {
				continue
			}
			if sc.tsEpoch[v] != sc.epoch {
				sc.tsEpoch[v] = sc.epoch
				sc.acc[v] = 0
				sc.thresh[v] = r.Float64()
			}
			sc.acc[v] += float64(ws[i])
			if sc.acc[v] >= sc.thresh[v] {
				sc.mark[v] = sc.epoch
				q = append(q, v)
				active++
			}
		}
	}
	sc.queue = q
	return active
}

// SimulateWeighted runs one cascade and returns the total benefit
// Σ_{activated v} weights[v] (TVM objective). A nil weights slice counts
// each node as 1 (plain influence).
func SimulateWeighted(g *graph.Graph, model Model, seeds []uint32, weights []float64, r *rng.Source, sc *Scratch) float64 {
	sc.nextEpoch()
	q := sc.queue[:0]
	benefit := 0.0
	value := func(v uint32) float64 {
		if weights == nil {
			return 1
		}
		return weights[v]
	}
	for _, s := range seeds {
		if sc.mark[s] != sc.epoch {
			sc.mark[s] = sc.epoch
			q = append(q, s)
			benefit += value(s)
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		adj, ws := g.OutNeighbors(u)
		for i, v := range adj {
			if sc.mark[v] == sc.epoch {
				continue
			}
			activated := false
			if model == IC {
				activated = r.Float64() < float64(ws[i])
			} else {
				if sc.tsEpoch[v] != sc.epoch {
					sc.tsEpoch[v] = sc.epoch
					sc.acc[v] = 0
					sc.thresh[v] = r.Float64()
				}
				sc.acc[v] += float64(ws[i])
				activated = sc.acc[v] >= sc.thresh[v]
			}
			if activated {
				sc.mark[v] = sc.epoch
				q = append(q, v)
				benefit += value(v)
			}
		}
	}
	sc.queue = q
	return benefit
}

// SpreadOptions configures Monte-Carlo spread estimation.
type SpreadOptions struct {
	Runs    int       // number of simulations (paper figures use 10,000)
	Seed    uint64    // base seed; run i uses stream (Seed, i)
	Workers int       // parallel workers; ≤ 0 means 1
	Weights []float64 // optional TVM benefit weights
}

// Spread estimates I(S) (or the weighted benefit B(S)) by Monte Carlo,
// returning the mean and the standard error of the mean. Deterministic for
// a fixed seed regardless of worker count.
func Spread(g *graph.Graph, model Model, seeds []uint32, opt SpreadOptions) (mean, stderr float64, err error) {
	for _, s := range seeds {
		if int(s) >= g.NumNodes() {
			return 0, 0, fmt.Errorf("%w: %d", ErrBadSeedSet, s)
		}
	}
	if opt.Runs <= 0 {
		opt.Runs = 10000
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > opt.Runs {
		workers = opt.Runs
	}
	results := make([]float64, opt.Runs)
	var wg sync.WaitGroup
	chunk := (opt.Runs + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > opt.Runs {
			hi = opt.Runs
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := NewScratch(g.NumNodes())
			for i := lo; i < hi; i++ {
				r := rng.NewStream(opt.Seed, uint64(i))
				if opt.Weights == nil {
					results[i] = float64(Simulate(g, model, seeds, r, sc))
				} else {
					results[i] = SimulateWeighted(g, model, seeds, opt.Weights, r, sc)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	var sum, sum2 float64
	for _, x := range results {
		sum += x
	}
	mean = sum / float64(opt.Runs)
	for _, x := range results {
		d := x - mean
		sum2 += d * d
	}
	if opt.Runs > 1 {
		stderr = math.Sqrt(sum2 / float64(opt.Runs-1) / float64(opt.Runs))
	}
	return mean, stderr, nil
}
