package diffusion

import (
	"errors"
	"fmt"

	"stopandstare/internal/graph"
)

// ErrTooLarge reports a graph too big for exact possible-world enumeration.
var ErrTooLarge = errors.New("diffusion: graph too large for exact evaluation")

// maxExactStates caps the number of possible worlds enumerated.
const maxExactStates = 1 << 22

// ExactIC computes the exact influence spread I(S) under IC by enumerating
// all 2^m live-edge outcomes (Kempe et al.'s live-edge view of IC: each edge
// is live independently with probability w). Only feasible for tiny graphs;
// used by tests to validate the simulators and Lemma 1.
func ExactIC(g *graph.Graph, seeds []uint32) (float64, error) {
	m := g.NumEdges()
	if m > 22 {
		return 0, fmt.Errorf("%w: m=%d edges (max 22)", ErrTooLarge, m)
	}
	type edge struct {
		u, v uint32
		w    float64
	}
	edges := make([]edge, 0, m)
	for u := 0; u < g.NumNodes(); u++ {
		adj, ws := g.OutNeighbors(uint32(u))
		for i, v := range adj {
			edges = append(edges, edge{uint32(u), v, float64(ws[i])})
		}
	}
	n := g.NumNodes()
	adjLive := make([][]uint32, n)
	visited := make([]bool, n)
	queue := make([]uint32, 0, n)
	total := 0.0
	for mask := 0; mask < 1<<len(edges); mask++ {
		p := 1.0
		for i := range adjLive {
			adjLive[i] = adjLive[i][:0]
		}
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				p *= e.w
				adjLive[e.u] = append(adjLive[e.u], e.v)
			} else {
				p *= 1 - e.w
			}
		}
		if p == 0 {
			continue
		}
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		for _, s := range seeds {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
		count := len(queue)
		for head := 0; head < len(queue); head++ {
			for _, v := range adjLive[queue[head]] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
					count++
				}
			}
		}
		total += p * float64(count)
	}
	return total, nil
}

// ExactLT computes the exact influence spread I(S) under LT using the
// live-edge characterisation (Kempe et al.): each node independently picks
// at most one incoming edge, edge (u,v) with probability w(u,v) and none
// with probability 1 − Σ_u w(u,v); I(S) is the expected number of nodes
// reachable from S in the induced branching.
func ExactLT(g *graph.Graph, seeds []uint32) (float64, error) {
	n := g.NumNodes()
	states := 1
	for v := 0; v < n; v++ {
		states *= g.InDegree(uint32(v)) + 1
		if states > maxExactStates {
			return 0, fmt.Errorf("%w: live-edge state space exceeds %d", ErrTooLarge, maxExactStates)
		}
	}
	choice := make([]int, n) // choice[v] in [0, din(v)]; din(v) means "none"
	visited := make([]bool, n)
	queue := make([]uint32, 0, n)
	// adjacency of the current branching, forward orientation
	adjLive := make([][]uint32, n)
	total := 0.0
	var rec func(v int, p float64)
	rec = func(v int, p float64) {
		if p == 0 {
			return
		}
		if v == n {
			// materialise branching: node x's chosen in-edge (u -> x)
			for i := range adjLive {
				adjLive[i] = adjLive[i][:0]
			}
			for x := 0; x < n; x++ {
				inAdj, _ := g.InNeighbors(uint32(x))
				if choice[x] < len(inAdj) {
					u := inAdj[choice[x]]
					adjLive[u] = append(adjLive[u], uint32(x))
				}
			}
			for i := range visited {
				visited[i] = false
			}
			queue = queue[:0]
			for _, s := range seeds {
				if !visited[s] {
					visited[s] = true
					queue = append(queue, s)
				}
			}
			count := len(queue)
			for head := 0; head < len(queue); head++ {
				for _, x := range adjLive[queue[head]] {
					if !visited[x] {
						visited[x] = true
						queue = append(queue, x)
						count++
					}
				}
			}
			total += p * float64(count)
			return
		}
		_, ws := g.InNeighbors(uint32(v))
		sum := 0.0
		for i, w := range ws {
			choice[v] = i
			rec(v+1, p*float64(w))
			sum += float64(w)
		}
		choice[v] = len(ws)
		rec(v+1, p*(1-sum))
	}
	rec(0, 1)
	return total, nil
}

// Exact dispatches to ExactIC or ExactLT.
func Exact(g *graph.Graph, model Model, seeds []uint32) (float64, error) {
	if model == IC {
		return ExactIC(g, seeds)
	}
	return ExactLT(g, seeds)
}
