package diffusion

import (
	"testing"
	"testing/quick"

	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

func TestSpreadBoundedByN(t *testing.T) {
	g, err := gen.ChungLu(400, 2400, 2.1, 233, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch(400)
	f := func(seedRaw uint16, trial uint16) bool {
		s := uint32(seedRaw) % 400
		r := rng.NewStream(239, uint64(trial))
		ic := SimulateIC(g, []uint32{s}, r, sc)
		lt := SimulateLT(g, []uint32{s}, r, sc)
		return ic >= 1 && ic <= 400 && lt >= 1 && lt <= 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSpreadBoundedByGamma(t *testing.T) {
	g, err := gen.ChungLu(300, 1800, 2.1, 241, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 300)
	gamma := 0.0
	r0 := rng.New(251)
	for i := range w {
		if r0.Float64() < 0.2 {
			w[i] = float64(r0.Intn(10) + 1)
			gamma += w[i]
		}
	}
	sc := NewScratch(300)
	f := func(seedRaw uint16, trial uint16) bool {
		s := uint32(seedRaw) % 300
		r := rng.NewStream(257, uint64(trial))
		b := SimulateWeighted(g, LT, []uint32{s}, w, r, sc)
		return b >= 0 && b <= gamma+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestICSubsetSpreadDominance(t *testing.T) {
	// Within a single possible world, supersets activate supersets; in
	// expectation the same holds — check with common random numbers.
	g, err := gen.ChungLu(200, 1200, 2.2, 263, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	base := []uint32{3, 17}
	super := []uint32{3, 17, 42, 99}
	mB, _, _ := Spread(g, IC, base, SpreadOptions{Runs: 8000, Seed: 269})
	mS, _, _ := Spread(g, IC, super, SpreadOptions{Runs: 8000, Seed: 269})
	if mS < mB {
		t.Fatalf("superset spread %.2f below subset %.2f", mS, mB)
	}
}
