package serving

import (
	"context"
	"errors"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"stopandstare"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/ris"
)

func testGraph(t *testing.T, seed uint64) *stopandstare.Graph {
	t.Helper()
	g, err := stopandstare.GeneratePowerLaw(400, 2400, 2.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameAnswer fails unless the two results agree in every deterministic
// observable (Seeds, Samples, InfluenceEstimate).
func sameAnswer(t *testing.T, ctx string, got, want *stopandstare.Result) {
	t.Helper()
	if !slices.Equal(got.Seeds, want.Seeds) || got.Samples != want.Samples ||
		got.InfluenceEstimate != want.InfluenceEstimate {
		t.Fatalf("%s: %v/%d/%v differs from %v/%d/%v", ctx,
			got.Seeds, got.Samples, got.InfluenceEstimate,
			want.Seeds, want.Samples, want.InfluenceEstimate)
	}
}

// TestEvictionExactness pins the eviction contract: a session evicted
// under byte pressure and re-admitted on its next query returns results
// bit-identical to a never-evicted twin, and the compiled plan survives
// eviction (PlanCompilations stays 1 — only the RR store is recomputed).
func TestEvictionExactness(t *testing.T) {
	gA, gB := testGraph(t, 7), testGraph(t, 8)
	// Budget of one byte: any resident store exceeds it, so after each
	// query every idle tenant's session is evicted — A and B evict each
	// other on every alternation.
	m := NewManager(Config{BudgetBytes: 1})
	defer m.Close()
	optA := stopandstare.SessionOptions{Seed: 11, Workers: 2}
	optB := stopandstare.SessionOptions{Seed: 12, Workers: 2}
	if err := m.AddTenant("a", TenantConfig{Graph: gA, Model: stopandstare.IC, Session: optA}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant("b", TenantConfig{Graph: gB, Model: stopandstare.IC, Session: optB}); err != nil {
		t.Fatal(err)
	}

	// The never-evicted twin: a solo session on the same graph and options.
	twin, err := stopandstare.NewSession(gA, stopandstare.IC, optA)
	if err != nil {
		t.Fatal(err)
	}
	q := stopandstare.Query{K: 8, Epsilon: 0.3}
	want, err := twin.Maximize(q)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	first, err := m.Maximize(ctx, "a", q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "first query", first, want)
	// Querying B pushes the total past the 1-byte budget with A idle: A's
	// session is evicted.
	if _, err := m.Maximize(ctx, "b", stopandstare.Query{K: 5, Epsilon: 0.3}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
	var aStats TenantStats
	for _, ten := range st.Tenants {
		if ten.Name == "a" {
			aStats = ten
		}
	}
	if aStats.Resident || aStats.Evictions == 0 {
		t.Fatalf("tenant a should be evicted: %+v", aStats)
	}

	// Re-admission: the store regenerates from the session seed, so the
	// answer matches the twin bit-for-bit; and the plan cache still holds
	// the one compilation from the first query.
	again, err := m.Maximize(ctx, "a", q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "re-admitted query", again, want)
	if again.Coalesced {
		t.Fatal("sequential query reported Coalesced")
	}
	if n := ris.PlanCompilations(gA, diffusion.IC); n != 1 {
		t.Fatalf("plan compiled %d times across eviction, want exactly 1", n)
	}
	// The twin, having served the same queries, agrees on growth counts.
	if tw, mg := twin.Stats().Growths, tenantSession(t, m, "a").Growths; tw != mg {
		t.Fatalf("re-admitted session growths %d != twin growths %d", mg, tw)
	}
}

func tenantSession(t *testing.T, m *Manager, name string) stopandstare.SessionStats {
	t.Helper()
	for _, ten := range m.Stats().Tenants {
		if ten.Name == name {
			return ten.Session
		}
	}
	t.Fatalf("tenant %q not in stats", name)
	return stopandstare.SessionStats{}
}

// TestCoalescing pins the coalescing contract: N concurrent identical cold
// queries trigger exactly one execution and exactly the store top-ups of a
// single cold run, and every follower receives the leader's bit-identical
// result with Coalesced set. The OnExecute hook holds the leader until all
// followers have joined its flight, so the count is deterministic.
func TestCoalescing(t *testing.T) {
	g := testGraph(t, 9)
	opt := stopandstare.SessionOptions{Seed: 21, Workers: 2}
	const followers = 7

	var m *Manager
	m = NewManager(Config{
		MaxInFlight: 2,
		OnExecute: func(string) {
			deadline := time.Now().Add(10 * time.Second)
			for m.Stats().Coalesced < followers {
				if time.Now().After(deadline) {
					return // let the test fail on counts rather than hang
				}
				time.Sleep(100 * time.Microsecond)
			}
		},
	})
	defer m.Close()
	if err := m.AddTenant("t", TenantConfig{Graph: g, Model: stopandstare.IC, Session: opt}); err != nil {
		t.Fatal(err)
	}

	q := stopandstare.Query{K: 10, Epsilon: 0.25}
	// The equivalent queries below must share the leader's flight: they
	// only differ in defaulted fields (algorithm "", epsilon 0).
	variants := []stopandstare.Query{
		q,
		{Algorithm: stopandstare.DSSA, K: 10, Epsilon: 0.25},
	}

	results := make([]*stopandstare.Result, followers+1)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := m.Maximize(context.Background(), "t", variants[i%len(variants)])
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := m.Stats()
	if st.Executed != 1 || st.Coalesced != followers {
		t.Fatalf("executed=%d coalesced=%d, want 1/%d", st.Executed, st.Coalesced, followers)
	}
	nCoalesced := 0
	for i, res := range results {
		if res.Coalesced {
			nCoalesced++
		}
		sameAnswer(t, "query "+string(rune('0'+i)), res, results[0])
	}
	if nCoalesced != followers {
		t.Fatalf("%d responses flagged Coalesced, want %d", nCoalesced, followers)
	}

	// Exactly the top-ups of one cold run: the twin runs the same query
	// solo and must report the same growth count as the shared session.
	twin, err := stopandstare.NewSession(g, stopandstare.IC, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := twin.Maximize(q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "vs cold twin", results[0], want)
	if tw, mg := twin.Stats().Growths, tenantSession(t, m, "t").Growths; mg != tw {
		t.Fatalf("coalesced session growths %d != single cold run growths %d", mg, tw)
	}
}

// TestCoalescedSeedsNotAliased is the regression test for follower results
// sharing the leader's Seeds backing array: a caller mutating its own
// response (re-ranking, truncating in place) must not corrupt what every
// other caller of the same coalesced flight received. On the old shallow
// copy, the mutation below wrote through to the leader and every sibling.
func TestCoalescedSeedsNotAliased(t *testing.T) {
	g := testGraph(t, 9)
	const followers = 3

	var m *Manager
	m = NewManager(Config{
		MaxInFlight: 2,
		OnExecute: func(string) {
			deadline := time.Now().Add(10 * time.Second)
			for m.Stats().Coalesced < followers {
				if time.Now().After(deadline) {
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		},
	})
	defer m.Close()
	if err := m.AddTenant("t", TenantConfig{
		Graph: g, Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 21, Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}

	q := stopandstare.Query{K: 8, Epsilon: 0.25}
	results := make([]*stopandstare.Result, followers+1)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := m.Maximize(context.Background(), "t", q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := m.Stats(); st.Coalesced != followers {
		t.Fatalf("coalesced=%d, want %d (flight did not coalesce)", st.Coalesced, followers)
	}

	pristine := slices.Clone(results[0].Seeds)
	victim := -1
	for i, res := range results {
		if res.Coalesced {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no coalesced response to mutate")
	}
	for j := range results[victim].Seeds {
		results[victim].Seeds[j] = ^uint32(0)
	}
	for i, res := range results {
		if i == victim {
			continue
		}
		if !slices.Equal(res.Seeds, pristine) {
			t.Fatalf("response %d corrupted by mutating response %d: %v, want %v",
				i, victim, res.Seeds, pristine)
		}
	}
}

// TestLazyGraphFileTenant checks a GraphFile tenant costs nothing until
// queried, opens on first query, and is fully released on removal.
func TestLazyGraphFileTenant(t *testing.T) {
	g := testGraph(t, 10)
	path := filepath.Join(t.TempDir(), "tenant.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{})
	defer m.Close()
	if err := m.AddTenant("lazy", TenantConfig{
		GraphFile: path, Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 3, Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if st := tenantStats(t, m, "lazy"); st.Nodes != 0 || st.Resident {
		t.Fatalf("unqueried GraphFile tenant should hold nothing: %+v", st)
	}

	res, err := m.Maximize(context.Background(), "lazy", stopandstare.Query{K: 5, Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds, want 5", len(res.Seeds))
	}
	st := tenantStats(t, m, "lazy")
	if st.Nodes != g.NumNodes() || !st.Resident {
		t.Fatalf("queried tenant should hold the opened graph: %+v", st)
	}
	if total := st.Session.GraphResidentBytes + st.Session.GraphMappedBytes; total <= 0 {
		t.Fatalf("graph accounting empty after open: %+v", st.Session)
	}

	if err := m.RemoveTenant("lazy"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Maximize(context.Background(), "lazy", stopandstare.Query{K: 5}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("query after removal: %v, want ErrUnknownTenant", err)
	}
}

func tenantStats(t *testing.T, m *Manager, name string) TenantStats {
	t.Helper()
	for _, ten := range m.Stats().Tenants {
		if ten.Name == name {
			return ten
		}
	}
	t.Fatalf("tenant %q not in stats", name)
	return TenantStats{}
}

// TestManagerConfigErrors exercises the admission bookkeeping edges.
func TestManagerConfigErrors(t *testing.T) {
	g := testGraph(t, 11)
	m := NewManager(Config{})
	cfg := TenantConfig{Graph: g, Model: stopandstare.IC, Session: stopandstare.SessionOptions{Seed: 1}}
	if err := m.AddTenant("", cfg); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := m.AddTenant("x", TenantConfig{Model: stopandstare.IC}); err == nil {
		t.Fatal("tenant without graph source accepted")
	}
	if err := m.AddTenant("x", TenantConfig{Graph: g, GraphFile: "y", Model: stopandstare.IC}); err == nil {
		t.Fatal("tenant with two graph sources accepted")
	}
	if err := m.AddTenant("x", cfg); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant("x", cfg); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if err := m.RemoveTenant("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("removing unknown tenant: %v", err)
	}
	if got := m.Tenants(); !slices.Equal(got, []string{"x"}) {
		t.Fatalf("Tenants() = %v", got)
	}
	m.Close()
	if err := m.AddTenant("y", cfg); err == nil {
		t.Fatal("AddTenant after Close accepted")
	}
}
