package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterRejectsWhenFull checks the fail-fast path: with no queue, a
// second request is rejected while the slot is held and admitted after
// release.
func TestLimiterRejectsWhenFull(t *testing.T) {
	l := NewLimiter(1, 0)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second acquire: %v, want ErrOverloaded", err)
	}
	if l.InFlight() != 1 {
		t.Fatalf("in-flight %d, want 1", l.InFlight())
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l.Release()
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("limiter not drained: in-flight %d queued %d", l.InFlight(), l.Queued())
	}
}

// TestLimiterDeadlineWhileQueued checks a queued waiter gives up on its
// deadline and releases its queue slot for later arrivals.
func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := NewLimiter(1, 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: %v, want DeadlineExceeded", err)
	}
	// The abandoned waiter must have freed its queue slot: a fresh waiter
	// fits, and gets the execution slot once the holder releases.
	done := make(chan error, 1)
	go func() { done <- l.Acquire(context.Background()) }()
	time.Sleep(5 * time.Millisecond)
	l.Release()
	if err := <-done; err != nil {
		t.Fatalf("waiter after release: %v", err)
	}
	l.Release()
}

// TestLimiterExpiredContextNotAdmitted is the regression test for admitting
// already-dead requests: a context that is expired on arrival must be
// refused with its own error even when the limiter is completely free — on
// the old code the select raced a free slot against the done channel and
// could admit the corpse, wasting an execution slot on a query whose client
// already hung up. Repeats amplify the old 50/50 race into a certain
// failure, and the drain check catches any slot/queue leak on the new
// re-check path.
func TestLimiterExpiredContextNotAdmitted(t *testing.T) {
	l := NewLimiter(2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		if err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire %d with expired ctx: %v, want context.Canceled", i, err)
		}
	}
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("expired acquires leaked state: in-flight %d queued %d", l.InFlight(), l.Queued())
	}
	// A live caller is unaffected.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("live acquire after expired storm: %v", err)
	}
	l.Release()
}

// TestLimiterEstimatedWait checks the Retry-After signal: zero before any
// admission, then tracking observed slot waits.
func TestLimiterEstimatedWait(t *testing.T) {
	l := NewLimiter(1, 1)
	if w := l.EstimatedWait(); w != 0 {
		t.Fatalf("estimated wait before any admission: %v, want 0", w)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Acquire(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	l.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	l.Release()
	// The first (free, ~0) acquire seeded the EWMA, so the ~20ms queued wait
	// contributes at least its α = 1/8 share.
	if w := l.EstimatedWait(); w < 2*time.Millisecond {
		t.Fatalf("estimated wait %v does not reflect the ~20ms queued wait", w)
	}
}

// TestLimiterBoundsConcurrency hammers the limiter and checks the
// in-flight bound is never exceeded and every admitted caller completes.
func TestLimiterBoundsConcurrency(t *testing.T) {
	const inFlight, queued, callers = 3, 4, 64
	l := NewLimiter(inFlight, queued)
	var cur, peak, admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			l.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > inFlight {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, inFlight)
	}
	if admitted.Load()+rejected.Load() != callers {
		t.Fatalf("admitted %d + rejected %d != %d", admitted.Load(), rejected.Load(), callers)
	}
	if admitted.Load() < inFlight+queued {
		t.Fatalf("admitted %d, want at least capacity %d", admitted.Load(), inFlight+queued)
	}
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("limiter not drained: in-flight %d queued %d", l.InFlight(), l.Queued())
	}
}
