package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"stopandstare"
)

// newTestStack builds a manager with two heap-graph tenants behind an
// httptest server.
func newTestStack(t *testing.T, cfg Config, scfg ServerConfig) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	for i, name := range []string{"alpha", "beta"} {
		if err := m.AddTenant(name, TenantConfig{
			Graph: testGraph(t, uint64(30+i)), Model: stopandstare.IC,
			Session: stopandstare.SessionOptions{Seed: uint64(40 + i), Workers: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewServer(m, scfg).Handler())
	t.Cleanup(ts.Close)
	return m, ts
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, MaximizeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/maximize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out MaximizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeTenantRouting checks tenant resolution: explicit names route,
// an ambiguous omission is a 400, an unknown tenant is a 404, and the
// configured default fills in.
func TestServeTenantRouting(t *testing.T) {
	_, ts := newTestStack(t, Config{}, ServerConfig{DefaultTenant: "beta"})
	resp, out := post(t, ts, `{"tenant":"alpha","k":6,"epsilon":0.3}`)
	if resp.StatusCode != http.StatusOK || out.Tenant != "alpha" || len(out.Seeds) != 6 {
		t.Fatalf("alpha query: status %d tenant %q seeds %d", resp.StatusCode, out.Tenant, len(out.Seeds))
	}
	resp, out = post(t, ts, `{"k":6,"epsilon":0.3}`)
	if resp.StatusCode != http.StatusOK || out.Tenant != "beta" {
		t.Fatalf("default query: status %d tenant %q", resp.StatusCode, out.Tenant)
	}
	if resp, _ := post(t, ts, `{"tenant":"gamma","k":6}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", resp.StatusCode)
	}

	// Without a default and two tenants, omission is ambiguous.
	_, ts2 := newTestStack(t, Config{}, ServerConfig{})
	if resp, _ := post(t, ts2, `{"k":6}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous tenant: status %d, want 400", resp.StatusCode)
	}

	st := getStats(t, ts)
	if len(st.Tenants) != 2 || st.Tenants[0].Name != "alpha" || st.Tenants[1].Name != "beta" {
		t.Fatalf("stats tenants: %+v", st.Tenants)
	}
	if st.Tenants[0].Samples <= 0 || st.Tenants[0].StoreBytes <= 0 || st.Tenants[0].Growths <= 0 {
		t.Fatalf("alpha stats empty after query: %+v", st.Tenants[0])
	}
}

// TestServeWarmAndCoalesced checks the serving metadata flags over HTTP:
// a repeat is Warm, and concurrent identical queries come back with one
// leader and a Coalesced follower.
func TestServeWarmAndCoalesced(t *testing.T) {
	var m *Manager
	gate := make(chan struct{})
	m = NewManager(Config{
		MaxInFlight: 2,
		OnExecute: func(string) {
			<-gate // held open only during the coalescing phase below
		},
	})
	t.Cleanup(m.Close)
	if err := m.AddTenant("solo", TenantConfig{
		Graph: testGraph(t, 33), Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 44, Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m, ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	const body = `{"k":7,"epsilon":0.3}`
	type reply struct {
		status int
		out    MaximizeResponse
	}
	replies := make([]reply, 2)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := post(t, ts, body)
			replies[i] = reply{resp.StatusCode, out}
		}(i)
	}
	// Release the leader once the follower has joined its flight.
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().Coalesced < 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	var coalesced int
	for _, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("concurrent query status %d", r.status)
		}
		if r.out.Coalesced {
			coalesced++
		}
	}
	if coalesced != 1 {
		t.Fatalf("%d coalesced replies, want exactly 1", coalesced)
	}

	_, warm := post(t, ts, body)
	if !warm.Warm || warm.Coalesced {
		t.Fatalf("repeat query: warm=%v coalesced=%v, want warm only", warm.Warm, warm.Coalesced)
	}
	if st := getStats(t, ts); st.Executed != 2 || st.Coalesced != 1 {
		t.Fatalf("stats executed=%d coalesced=%d, want 2/1", st.Executed, st.Coalesced)
	}
}

// checkRetryAfter asserts a backpressure response carries a Retry-After
// header that parses as a positive integer no larger than the default
// timeout (30s here) — the limiter-derived hint, not a bare placeholder and
// not an unbounded backoff.
func checkRetryAfter(t *testing.T, ctx string, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%s without Retry-After", ctx)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("%s Retry-After %q, want a positive integer of seconds", ctx, ra)
	}
	if secs > 30 {
		t.Fatalf("%s Retry-After %ds exceeds the 30s default timeout", ctx, secs)
	}
}

// TestServeBackpressure checks overload surfaces as 429 (queue full) and
// 503 (deadline while queued), both with Retry-After, while the held
// request still completes.
func TestServeBackpressure(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{
		MaxInFlight: 1,
		MaxQueued:   1,
		OnExecute:   func(string) { <-gate },
	})
	t.Cleanup(m.Close)
	if err := m.AddTenant("solo", TenantConfig{
		Graph: testGraph(t, 35), Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 46, Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m, ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	// Request 1 occupies the only execution slot, parked on the gate.
	first := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, `{"k":4,"epsilon":0.35}`)
		first <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().InFlight < 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}

	// Request 2 (distinct, so it cannot coalesce) waits in the queue until
	// its deadline: 503.
	resp, _ := post(t, ts, `{"k":5,"epsilon":0.35,"timeout_ms":30}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline query: status %d, want 503", resp.StatusCode)
	}
	checkRetryAfter(t, "503", resp)

	// Requests 2' and 3 together overflow: one queues, one is rejected
	// outright with 429. Fire 2' asynchronously so it holds the queue slot.
	queued := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, `{"k":6,"epsilon":0.35}`)
		queued <- resp.StatusCode
	}()
	for m.Stats().Queued < 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	resp, _ = post(t, ts, `{"k":7,"epsilon":0.35}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full query: status %d, want 429", resp.StatusCode)
	}
	checkRetryAfter(t, "429", resp)

	// Releasing the gate drains everything held: the first request and the
	// queued one both succeed.
	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued request finished with %d", code)
	}
	st := getStats(t, ts)
	if st.Rejected429 != 1 || st.Timeout503 != 1 {
		t.Fatalf("stats rejected=%d timeout=%d, want 1/1", st.Rejected429, st.Timeout503)
	}
}

// TestServePprofGate checks the profile endpoints exist only behind the
// flag.
func TestServePprofGate(t *testing.T) {
	m := NewManager(Config{})
	t.Cleanup(m.Close)
	off := httptest.NewServer(NewServer(m, ServerConfig{}).Handler())
	t.Cleanup(off.Close)
	on := httptest.NewServer(NewServer(m, ServerConfig{EnablePprof: true}).Handler())
	t.Cleanup(on.Close)

	if resp, err := http.Get(off.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Get(on.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: status %d, want 200", resp.StatusCode)
	}
}

// TestServeBadRequests mirrors the original imserve error tests against
// the multi-tenant handler.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestStack(t, Config{}, ServerConfig{DefaultTenant: "alpha"})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},                         // malformed JSON
		{`{"k":0}`, http.StatusBadRequest},                   // invalid k
		{`{"k":5,"algorithm":"imm"}`, http.StatusBadRequest}, // non-session algorithm
	} {
		resp, _ := post(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("POST %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/maximize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /maximize: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: status %d, want 405", resp.StatusCode)
	}
}
