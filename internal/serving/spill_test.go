package serving

import (
	"context"
	"testing"

	"stopandstare"
)

// TestSpillBeforeEvict pins the budget-enforcement ordering: when tenants
// have a spill tier, byte pressure is relieved by tiering cold store
// blocks to disk — keeping every session resident and warm — and eviction
// only happens when spilling cannot fit the budget. The budget is derived
// from twin solo sessions' post-spill floors, so spilling alone is
// provably sufficient and any eviction is a bug.
func TestSpillBeforeEvict(t *testing.T) {
	gA, gB := testGraph(t, 7), testGraph(t, 8)
	// A huge per-session budget arms the spill tier without ever
	// triggering it on the session's own account; only the manager's
	// spill-to-floor requests move bytes.
	const selfBudget = int64(1) << 40
	optA := stopandstare.SessionOptions{Seed: 11, Workers: 2, SpillBudgetBytes: selfBudget, SpillDir: t.TempDir()}
	optB := stopandstare.SessionOptions{Seed: 12, Workers: 2, SpillBudgetBytes: selfBudget, SpillDir: t.TempDir()}
	qA := stopandstare.Query{K: 8, Epsilon: 0.3}
	qB := stopandstare.Query{K: 5, Epsilon: 0.3}

	// Twin solo sessions establish each store's full and post-spill
	// resident footprints — and the reference answers.
	twinA, err := stopandstare.NewSession(gA, stopandstare.IC, optA)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := twinA.Maximize(qA)
	if err != nil {
		t.Fatal(err)
	}
	fullA := twinA.Stats().StoreBytes
	if _, err := twinA.SpillTo(0); err != nil {
		t.Fatal(err)
	}
	floorA := twinA.Stats().StoreBytes
	if floorA >= fullA {
		t.Skipf("spilling does not reduce resident bytes on this platform (%d -> %d)", fullA, floorA)
	}
	twinB, err := stopandstare.NewSession(gB, stopandstare.IC, optB)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := twinB.Maximize(qB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twinB.SpillTo(0); err != nil {
		t.Fatal(err)
	}
	floorB := twinB.Stats().StoreBytes

	// Both floors fit; both full stores don't. Spilling alone always
	// satisfies this budget, so eviction would be an ordering bug.
	budget := floorA + floorB + 4096
	m := NewManager(Config{BudgetBytes: budget})
	defer m.Close()
	if err := m.AddTenant("a", TenantConfig{Graph: gA, Model: stopandstare.IC, Session: optA}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant("b", TenantConfig{Graph: gB, Model: stopandstare.IC, Session: optB}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gotA, err := m.Maximize(ctx, "a", qA)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "tenant a", gotA, wantA)
	gotB, err := m.Maximize(ctx, "b", qB)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "tenant b", gotB, wantB)

	st := m.Stats()
	if st.Evictions != 0 {
		t.Fatalf("evicted %d sessions although spilling fits the budget: %+v", st.Evictions, st)
	}
	if st.Spills == 0 {
		t.Fatalf("no spill passes under byte pressure: %+v", st)
	}
	if st.StoreBytes > budget {
		t.Fatalf("resident %d still over budget %d after enforcement", st.StoreBytes, budget)
	}
	if st.StoreSpilledBytes <= 0 || st.SpillFileBytes <= 0 {
		t.Fatalf("stats do not show the spilled tier: %+v", st)
	}
	for _, ten := range st.Tenants {
		if !ten.Resident {
			t.Fatalf("tenant %s lost residency; spilling must keep sessions warm: %+v", ten.Name, ten)
		}
	}

	// Warm re-queries fault spilled blocks back in and stay bit-identical;
	// the answers never saw the tiering.
	againA, err := m.Maximize(ctx, "a", qA)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "tenant a after spill", againA, wantA)
	againB, err := m.Maximize(ctx, "b", qB)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "tenant b after spill", againB, wantB)
	if st := m.Stats(); st.Evictions != 0 {
		t.Fatalf("re-queries caused evictions: %+v", st)
	}
}
