// Package serving is the multi-tenant serving layer: one process holding
// many (graph, model) Sessions under a global memory budget, answering a
// concurrent query stream with request coalescing, admission control and
// backpressure. It is the seam between the single-session serving objects
// (stopandstare.Session, PR 5) and a fleet front end — cmd/imserve wires a
// Manager behind HTTP, and the load bench (internal/bench, cmd/imload)
// drives the same stack over localhost to measure p50/p99 and queries/sec.
//
// The design leans on the same amortization argument as the sampling core:
// StaticGreedy-style reuse of one sampled state across all consumers only
// pays off when the expensive state is genuinely shared — here across
// queries (warm sessions), across clients (coalescing) and across tenants
// (the byte budget decides which RR stores stay resident). Because RR set
// i is a pure function of (seed, i), every sharing decision is exact: an
// evicted tenant's store regenerates bit-identically, and a coalesced
// follower receives exactly the result it would have computed itself.
package serving

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stopandstare"
	"stopandstare/internal/ris"
)

// ErrUnknownTenant reports a query naming a tenant the manager does not
// hold. The HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("serving: unknown tenant")

// Config sizes a Manager.
type Config struct {
	// BudgetBytes is the global RR-store budget summed across resident
	// session stores. When a query's growth pushes the total past it, the
	// manager first asks sessions with a spill tier (SessionOptions.
	// SpillBudgetBytes > 0) to push cold arena segments and index blocks to
	// disk — spilling is non-destructive, so even the busy tenant that just
	// answered can shed bytes — and only then evicts least recently used
	// idle sessions (store and solvers dropped, graph and compiled plan
	// kept) until the total fits. ≤ 0 disables both. Only resident bytes
	// count against the budget; spilled bytes live in the page cache.
	BudgetBytes int64
	// MaxInFlight bounds concurrently executing queries (≤0 selects
	// runtime.GOMAXPROCS(0)).
	MaxInFlight int
	// MaxQueued bounds requests waiting for an execution slot beyond
	// MaxInFlight: 0 selects 4×MaxInFlight, negative selects no queue
	// (reject as soon as every slot is busy).
	MaxQueued int
	// OnExecute, when non-nil, is invoked by each coalescing-group leader
	// after its flight is registered and admission passed, immediately
	// before it executes. It exists so tests and benches can hold a leader
	// in place — while followers join its flight, or while backpressure
	// builds behind its execution slot — making "N concurrent identical
	// queries, one execution" and "queue full means 429" deterministic
	// instead of races against the leader finishing first. Production
	// configs leave it nil.
	OnExecute func(tenant string)
	// StateDir, when non-empty, makes tenant sessions durable: each tenant
	// gets the subdirectory StateDir/<name>, its session recovers the RR
	// store from the committed snapshot there (verified; best-effort), and
	// the manager snapshots the store back before budget evictions and on
	// retirement (RemoveTenant/Close — the SIGTERM drain path). Recovered
	// sets were not resampled, so a restarted process answers its first
	// queries at warm speed. StartRecovery warms durable tenants eagerly
	// and drives the readiness endpoint.
	StateDir string
}

// TenantConfig describes one tenant: where its graph comes from and how
// its session samples. Exactly one of Graph and GraphFile must be set.
type TenantConfig struct {
	// Graph is a pre-built graph owned by the caller; the manager will not
	// close it on retirement.
	Graph *stopandstare.Graph
	// GraphFile is opened lazily via stopandstare.OpenGraphFile on the
	// tenant's first query — a mapped .sasg tenant therefore costs ~0
	// resident bytes until queried, and its pages are shared with every
	// other process serving the same file. The manager owns graphs it
	// opened and closes them on retirement.
	GraphFile string
	// Model is the propagation model.
	Model stopandstare.Model
	// Session carries the per-session sampling parameters (seed, workers,
	// shards, kernel, weights).
	Session stopandstare.SessionOptions
}

// tenant is one admitted (graph, model) pair. Its session is built lazily
// and may be evicted (set nil) any number of times; the graph and the
// process-wide compiled plan survive eviction, so re-admission recomputes
// only the RR store — exactly, since the stream is a pure function of the
// session seed.
type tenant struct {
	name     string
	cfg      TenantConfig
	stateDir string // per-tenant snapshot directory ("" = not durable)

	mu        sync.Mutex // guards g/ownsGraph/sess transitions
	g         *stopandstare.Graph
	ownsGraph bool
	sess      *stopandstare.Session

	lastUsed  int64 // manager clock at last admission, under Manager.mu
	inflight  atomic.Int64
	queries   atomic.Int64
	evictions atomic.Int64
	persists  atomic.Int64
}

// session returns the tenant's live session, opening the graph and
// building the session on first use (and after eviction).
func (t *tenant) session() (*stopandstare.Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sess != nil {
		return t.sess, nil
	}
	if t.g == nil {
		g, err := stopandstare.OpenGraphFile(t.cfg.GraphFile)
		if err != nil {
			return nil, fmt.Errorf("serving: tenant %q: %w", t.name, err)
		}
		t.g = g
		t.ownsGraph = true
	}
	sopt := t.cfg.Session
	if t.stateDir != "" {
		// Durable tenants recover inside NewSession: a committed matching
		// snapshot warms the store, anything else starts cold.
		sopt.StateDir = t.stateDir
	}
	sess, err := stopandstare.NewSession(t.g, t.cfg.Model, sopt)
	if err != nil {
		return nil, fmt.Errorf("serving: tenant %q: %w", t.name, err)
	}
	t.sess = sess
	return sess, nil
}

// persistLocked snapshots the tenant's resident session, best-effort: a
// failed snapshot (disk full, no state dir) must never block eviction or
// retirement — the store regenerates bit-identically either way, durability
// only changes the cost of coming back. Caller holds t.mu.
func (t *tenant) persistLocked() {
	if t.sess == nil || t.stateDir == "" {
		return
	}
	if _, err := t.sess.Persist(); err == nil {
		t.persists.Add(1)
	}
}

// evict drops the tenant's session — the RR store and per-k solvers — but
// keeps the graph open and the compiled plan cached, so a later query
// rebuilds the store bit-identically without recompiling anything. Durable
// tenants snapshot first: re-admission then recovers instead of resampling.
func (t *tenant) evict() {
	t.mu.Lock()
	t.persistLocked()
	t.sess = nil
	t.mu.Unlock()
	t.evictions.Add(1)
}

// retire releases everything: the session, the graph's cached plans, and
// the graph itself if the manager opened it (mapped graphs unmap here).
// Durable tenants snapshot first — this is the SIGTERM drain path, so the
// next process starts from exactly this store.
func (t *tenant) retire() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.persistLocked()
	t.sess = nil
	if t.g != nil {
		stopandstare.DropCachedPlans(t.g)
		if t.ownsGraph {
			t.g.Close()
		}
		t.g = nil
	}
}

// storeBytes reports the resident session's store footprint (the evictable
// component of the budget), or ok=false for an evicted/never-built session.
func (t *tenant) storeBytes() (int64, bool) {
	t.mu.Lock()
	sess := t.sess
	t.mu.Unlock()
	if sess == nil {
		return 0, false
	}
	return sess.Stats().StoreBytes, true
}

// trySpill asks the tenant's resident session to push everything spillable
// to its disk tier, reporting the resident bytes freed. Safe while queries
// are in flight: Session.SpillTo serializes on the session write lock and
// never changes observable contents.
func (t *tenant) trySpill() int64 {
	t.mu.Lock()
	sess := t.sess
	t.mu.Unlock()
	if sess == nil {
		return 0
	}
	freed, err := sess.SpillTo(0)
	if err != nil {
		return 0
	}
	return freed
}

// flightKey identifies one coalescable query shape. Epsilon/delta/algorithm
// are normalized to the session defaults first, so {"k":5} and
// {"k":5,"epsilon":0.1,"algorithm":"dssa"} share a flight.
type flightKey struct {
	tenant           string
	algo             stopandstare.Algorithm
	k                int
	eps, delta       float64
	eps1, eps2, eps3 float64
}

// flight is one in-progress execution shared by a coalescing group: the
// leader fills res/err and closes done; followers wait on done (or their
// own deadline) and copy the result.
type flight struct {
	done chan struct{}
	res  *stopandstare.Result
	err  error
}

// Manager owns the tenants, the admission gate and the coalescing table.
// All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	limiter *Limiter

	mu      sync.Mutex // guards tenants map + LRU clock
	tenants map[string]*tenant
	clock   int64
	closed  bool

	flightMu sync.Mutex
	flights  map[flightKey]*flight

	queries   atomic.Int64 // admitted requests (leaders + followers)
	executed  atomic.Int64 // queries that ran Session.Maximize
	coalesced atomic.Int64 // followers that joined an in-flight execution
	rejected  atomic.Int64 // ErrOverloaded admissions (HTTP 429)
	deadlined atomic.Int64 // deadlines expired while queued/coalesced (HTTP 503)
	evictions atomic.Int64
	spills    atomic.Int64 // successful spill passes during budget enforcement

	recovering atomic.Int32 // StartRecovery passes still running
}

// NewManager builds an empty manager; add tenants with AddTenant.
func NewManager(cfg Config) *Manager {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueued == 0:
		cfg.MaxQueued = 4 * cfg.MaxInFlight
	case cfg.MaxQueued < 0:
		cfg.MaxQueued = 0
	}
	return &Manager{
		cfg:     cfg,
		limiter: NewLimiter(cfg.MaxInFlight, cfg.MaxQueued),
		tenants: make(map[string]*tenant),
		flights: make(map[flightKey]*flight),
	}
}

// AddTenant admits a tenant under name. Admission is cheap: nothing is
// opened, compiled or sampled until the tenant's first query.
func (m *Manager) AddTenant(name string, cfg TenantConfig) error {
	if name == "" {
		return errors.New("serving: empty tenant name")
	}
	if (cfg.Graph == nil) == (cfg.GraphFile == "") {
		return fmt.Errorf("serving: tenant %q needs exactly one of Graph and GraphFile", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("serving: manager closed")
	}
	if _, ok := m.tenants[name]; ok {
		return fmt.Errorf("serving: tenant %q already exists", name)
	}
	// Caller-provided graphs are held from admission (ownsGraph stays
	// false: the caller closes them); GraphFile tenants stay empty until
	// their first query opens the file.
	t := &tenant{name: name, cfg: cfg, g: cfg.Graph}
	if m.cfg.StateDir != "" {
		t.stateDir = filepath.Join(m.cfg.StateDir, name)
	}
	m.tenants[name] = t
	return nil
}

// StartRecovery warms durable tenants in the background: each tenant state
// directory is first swept of orphans (uncommitted *.tmp files and snapshot
// files the manifest no longer references — debris of crashes mid-persist),
// then tenants holding a committed snapshot get their session built now, so
// the recovered store is resident before the first query instead of on it.
// Readiness (Recovering) reports false until the pass completes; liveness
// is unaffected. No-op without a StateDir.
func (m *Manager) StartRecovery() {
	if m.cfg.StateDir == "" {
		return
	}
	m.mu.Lock()
	ts := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.mu.Unlock()
	m.recovering.Add(1)
	go func() {
		defer m.recovering.Add(-1)
		for _, t := range ts {
			if t.stateDir == "" {
				continue
			}
			ris.CleanStateDir(t.stateDir)
			if _, err := ris.ReadSnapshotInfo(t.stateDir); err != nil {
				continue // nothing committed: stay lazy, admit cold on first query
			}
			// session() recovers via SessionOptions.StateDir; failures
			// (missing graph file, mismatched snapshot) leave the tenant
			// lazy and are surfaced by its first query as usual.
			t.session()
		}
	}()
}

// Recovering reports whether a StartRecovery pass is still warming durable
// tenants. The readiness endpoint serves 503 while this is true: queries
// would work — sessions build on demand — but would pay recovery latency
// the caller asked to hide by probing readiness.
func (m *Manager) Recovering() bool { return m.recovering.Load() > 0 }

// WorkerAddrs returns the union of remote shard-worker addresses across
// all tenants, sorted — the set the readiness probe pings. Empty for
// in-process topologies.
func (m *Manager) WorkerAddrs() []string {
	m.mu.Lock()
	seen := map[string]bool{}
	for _, t := range m.tenants {
		for _, a := range t.cfg.Session.RemoteWorkers {
			seen[a] = true
		}
	}
	m.mu.Unlock()
	addrs := make([]string, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// RemoveTenant retires a tenant: new queries get ErrUnknownTenant
// immediately, in-flight queries on it are drained, then its cached plans
// are dropped and its graph closed if the manager opened it.
func (m *Manager) RemoveTenant(name string) error {
	m.mu.Lock()
	t, ok := m.tenants[name]
	if ok {
		delete(m.tenants, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	m.drainAndRetire(t)
	return nil
}

// Close retires every tenant. The manager rejects queries afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	ts := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.tenants = make(map[string]*tenant)
	m.mu.Unlock()
	for _, t := range ts {
		m.drainAndRetire(t)
	}
}

// drainAndRetire waits for the tenant's in-flight queries — they hold the
// graph's memory, which retire may unmap — then releases everything.
func (m *Manager) drainAndRetire(t *tenant) {
	for t.inflight.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	t.retire()
}

// Tenants lists the admitted tenant names, sorted.
func (m *Manager) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Maximize serves one query for the named tenant: coalescing first (an
// identical in-flight query's execution is joined, consuming no execution
// slot), then — for the group leader only — admission through the bounded
// in-flight/queue gate with the deadline honoured while waiting, then the
// session query itself, then budget enforcement. The result is
// bit-identical to a cold single-tenant run with the tenant's
// SessionOptions — eviction and coalescing change cost, never answers.
func (m *Manager) Maximize(ctx context.Context, tenantName string, q stopandstare.Query) (*stopandstare.Result, error) {
	m.queries.Add(1)
	m.mu.Lock()
	t, ok := m.tenants[tenantName]
	if ok {
		m.clock++
		t.lastUsed = m.clock
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	t.inflight.Add(1)
	defer t.inflight.Add(-1)
	t.queries.Add(1)
	return m.coalesce(ctx, t, q)
}

// coalesce runs q, sharing one execution among concurrent identical
// queries on the same tenant. The first arrival (the leader) registers a
// flight, passes admission, and executes; later identical arrivals wait
// for the leader's result instead of racing it on the session write lock
// — and without occupying admission slots — so N concurrent identical
// cold queries cost exactly one store top-up and one slot. Distinct
// queries never share a flight: they fan out on the session's read lock
// as before. Queries with an OnCheckpoint observer bypass coalescing
// entirely — the observer is caller-specific state a shared execution
// cannot serve.
func (m *Manager) coalesce(ctx context.Context, t *tenant, q stopandstare.Query) (*stopandstare.Result, error) {
	if q.OnCheckpoint != nil {
		res, err := m.admitAndExecute(ctx, t, q)
		if err == nil {
			m.enforceBudget(t)
		}
		return res, err
	}
	key := flightKey{
		tenant: t.name, algo: q.Algorithm, k: q.K, eps: q.Epsilon,
		delta: q.Delta, eps1: q.Eps1, eps2: q.Eps2, eps3: q.Eps3,
	}
	// Mirror the session's defaulting so equivalent requests share a key.
	if key.algo == "" {
		key.algo = stopandstare.DSSA
	}
	if key.eps == 0 {
		key.eps = 0.1
	}

	m.flightMu.Lock()
	if f, ok := m.flights[key]; ok {
		m.flightMu.Unlock()
		m.coalesced.Add(1)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			res := *f.res
			// Each follower gets its own Seeds backing array: the shallow
			// copy above would alias every follower (and the leader) to one
			// slice, so a caller sorting or truncating its result would
			// corrupt all the others' responses.
			res.Seeds = slices.Clone(f.res.Seeds)
			res.Coalesced = true
			return &res, nil
		case <-ctx.Done():
			m.deadlined.Add(1)
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	m.flights[key] = f
	m.flightMu.Unlock()

	f.res, f.err = m.admitAndExecute(ctx, t, q)
	// Deregister before waking followers: arrivals after this point start
	// a fresh flight instead of receiving a completed one's result.
	m.flightMu.Lock()
	delete(m.flights, key)
	m.flightMu.Unlock()
	close(f.done)
	if f.err == nil {
		m.enforceBudget(t)
	}
	return f.res, f.err
}

// admitAndExecute passes the admission gate, then runs q against the
// tenant's session (building it if evicted). An overload or deadline here
// propagates to the whole coalescing group: every follower would have
// faced the same gate.
func (m *Manager) admitAndExecute(ctx context.Context, t *tenant, q stopandstare.Query) (*stopandstare.Result, error) {
	if err := m.limiter.Acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			m.rejected.Add(1)
		} else {
			m.deadlined.Add(1)
		}
		return nil, err
	}
	defer m.limiter.Release()
	if h := m.cfg.OnExecute; h != nil {
		h(t.name)
	}
	sess, err := t.session()
	if err != nil {
		return nil, err
	}
	m.executed.Add(1)
	// The request context rides into store growth: an abandoned request
	// cancels its top-up between sampling chunks instead of finishing work
	// nobody will read. Cancellation never tears the store — a canceled
	// top-up mutates nothing — so a coalesced follower whose leader was
	// canceled can simply retry and resume from the same clean prefix.
	return sess.MaximizeContext(ctx, q)
}

// enforceBudget shrinks the summed resident store bytes under the budget,
// cheapest remedy first: spill (cold bytes move to disk, the session keeps
// answering with pages faulting back in), then evict (the whole store is
// dropped and must regenerate). Spill candidates are every resident
// session, least recently used first — including the tenant that just
// answered (keep) and tenants with in-flight queries, since SpillTo is
// non-destructive and serializes on the session write lock; each is tried
// at most once per call so the loop always progresses. Eviction keeps the
// old rules: keep and busy tenants are never victims, so a single tenant
// may legitimately exceed the budget alone — the alternative is thrashing
// the one store every query needs. Lock order: Manager.mu, then tenant.mu
// (inside storeBytes/evict/trySpill), then session locks; no path
// reverses it.
func (m *Manager) enforceBudget(keep *tenant) {
	if m.cfg.BudgetBytes <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tried := make(map[*tenant]bool)
	for {
		var total int64
		var victim, spillee *tenant
		for _, t := range m.tenants {
			bytes, resident := t.storeBytes()
			if !resident {
				continue
			}
			total += bytes
			if !tried[t] && (spillee == nil || t.lastUsed < spillee.lastUsed) {
				spillee = t
			}
			if t == keep || t.inflight.Load() > 0 {
				continue
			}
			if victim == nil || t.lastUsed < victim.lastUsed {
				victim = t
			}
		}
		if total <= m.cfg.BudgetBytes {
			return
		}
		if spillee != nil {
			tried[spillee] = true
			if spillee.trySpill() > 0 {
				m.spills.Add(1)
			}
			continue
		}
		if victim == nil {
			return
		}
		victim.evict()
		m.evictions.Add(1)
	}
}

// TenantStats is one tenant's slice of Manager.Stats. Session is the zero
// value while the tenant is evicted or never queried; Nodes/Edges/Model
// are zero until the graph is first opened (lazy GraphFile tenants).
type TenantStats struct {
	Name      string
	Resident  bool // a live session (RR store) is in memory
	Nodes     int
	Edges     int64
	Model     string
	Queries   int64
	Evictions int64
	Persists  int64 // snapshots committed (eviction + retirement paths)
	Session   stopandstare.SessionStats
}

// Stats is a point-in-time manager snapshot.
type Stats struct {
	// Tenants holds per-tenant snapshots, sorted by name.
	Tenants []TenantStats
	// Queries counts admitted requests; Executed the ones that ran a
	// session query; Coalesced the followers served from a shared
	// execution (Queries = Executed + Coalesced + failed lookups).
	Queries, Executed, Coalesced int64
	// Rejected counts queue-full admissions (429); Deadlined counts
	// deadlines expired while waiting (503); Evictions counts sessions
	// dropped for budget; Spills counts budget-enforcement passes that
	// moved cold store bytes to a session's disk tier instead.
	Rejected, Deadlined, Evictions, Spills int64
	// Recovered sums RR sets restored from snapshots across resident
	// sessions — samples this process never paid to generate. Persists
	// counts snapshots committed; SnapshotBytes sums current snapshot file
	// sizes. Recovering mirrors Manager.Recovering (readiness).
	Recovered, Persists, SnapshotBytes int64
	Recovering                         bool
	// StoreBytes sums resident session stores — the number the budget
	// bounds. BudgetBytes echoes the configured budget (0 = unlimited).
	StoreBytes, BudgetBytes int64
	// StoreSpilledBytes sums the session bytes currently parked in spill
	// files (excluded from StoreBytes); SpillFileBytes sums the on-disk
	// spill file sizes backing them.
	StoreSpilledBytes, SpillFileBytes int64
	// InFlight and Queued snapshot the admission gate.
	InFlight, Queued int
}

// Stats snapshots the manager. Safe concurrently with queries; the
// per-tenant numbers are each internally consistent but the snapshot as a
// whole is not atomic across tenants.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	ts := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })

	st := Stats{
		Queries:     m.queries.Load(),
		Executed:    m.executed.Load(),
		Coalesced:   m.coalesced.Load(),
		Rejected:    m.rejected.Load(),
		Deadlined:   m.deadlined.Load(),
		Evictions:   m.evictions.Load(),
		Spills:      m.spills.Load(),
		BudgetBytes: m.cfg.BudgetBytes,
		InFlight:    m.limiter.InFlight(),
		Queued:      m.limiter.Queued(),
		Recovering:  m.Recovering(),
	}
	for _, t := range ts {
		t.mu.Lock()
		g, sess := t.g, t.sess
		t.mu.Unlock()
		tst := TenantStats{
			Name:      t.name,
			Resident:  sess != nil,
			Queries:   t.queries.Load(),
			Evictions: t.evictions.Load(),
			Persists:  t.persists.Load(),
		}
		st.Persists += tst.Persists
		if g != nil {
			tst.Nodes = g.NumNodes()
			tst.Edges = g.NumEdges()
			tst.Model = t.cfg.Model.String()
		}
		if sess != nil {
			tst.Session = sess.Stats()
			st.StoreBytes += tst.Session.StoreBytes
			st.StoreSpilledBytes += tst.Session.StoreSpilledBytes
			st.SpillFileBytes += tst.Session.SpillFileBytes
			st.Recovered += int64(tst.Session.Recovered)
			st.SnapshotBytes += tst.Session.SnapshotBytes
		}
		st.Tenants = append(st.Tenants, tst)
	}
	return st
}
