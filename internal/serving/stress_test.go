package serving

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"stopandstare"
)

// TestManagerStress hammers one manager with several tenants, duplicate
// (coalescable) and distinct queries, a byte budget tight enough to force
// evictions throughout, and concurrent Stats snapshots — then checks every
// single response equals its cold single-tenant oracle. CI runs the test
// step under -race, so this is the locking-discipline proof for the
// manager (flights × limiter × eviction × lazy session builds) on top of
// the determinism proof.
func TestManagerStress(t *testing.T) {
	const tenants = 3
	m := NewManager(Config{
		// Roughly one resident store's worth: queries keep shoving each
		// other's tenants out, so re-admission runs constantly.
		BudgetBytes: 64 << 10,
		MaxInFlight: 8,
	})
	defer m.Close()

	graphs := make([]*stopandstare.Graph, tenants)
	opts := make([]stopandstare.SessionOptions, tenants)
	for i := range graphs {
		graphs[i] = testGraph(t, uint64(50+i))
		opts[i] = stopandstare.SessionOptions{Seed: uint64(60 + i), Workers: 2}
		if err := m.AddTenant(fmt.Sprintf("t%d", i), TenantConfig{
			Graph: graphs[i], Model: stopandstare.IC, Session: opts[i],
		}); err != nil {
			t.Fatal(err)
		}
	}

	type job struct {
		tenant int
		algo   stopandstare.Algorithm
		k      int
		eps    float64
	}
	var jobs []job
	for ti := 0; ti < tenants; ti++ {
		jobs = append(jobs,
			job{ti, stopandstare.DSSA, 4, 0.35},
			job{ti, stopandstare.DSSA, 7, 0.3},
			job{ti, stopandstare.SSA, 4, 0.35},
		)
	}
	const replicas = 3 // duplicates exercise coalescing and solver races
	results := make([][]*stopandstare.Result, len(jobs))
	for i := range results {
		results[i] = make([]*stopandstare.Result, replicas)
	}

	var wg sync.WaitGroup
	for ji, j := range jobs {
		for rep := 0; rep < replicas; rep++ {
			wg.Add(1)
			go func(ji, rep int, j job) {
				defer wg.Done()
				res, err := m.Maximize(context.Background(), fmt.Sprintf("t%d", j.tenant),
					stopandstare.Query{Algorithm: j.algo, K: j.k, Epsilon: j.eps})
				if err != nil {
					t.Errorf("job %d rep %d: %v", ji, rep, err)
					return
				}
				results[ji][rep] = res
			}(ji, rep, j)
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				st := m.Stats()
				if st.StoreBytes < 0 || st.Queries < 0 {
					t.Errorf("stats snapshot corrupt: %+v", st)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for ji, j := range jobs {
		ctx := fmt.Sprintf("job %d (t%d %s k=%d eps=%v)", ji, j.tenant, j.algo, j.k, j.eps)
		cold, err := stopandstare.Maximize(graphs[j.tenant], stopandstare.IC, j.algo, stopandstare.Options{
			K: j.k, Epsilon: j.eps, Seed: opts[j.tenant].Seed, Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: cold oracle: %v", ctx, err)
		}
		for rep, res := range results[ji] {
			sameAnswer(t, fmt.Sprintf("%s rep %d", ctx, rep), res, cold)
		}
	}

	st := m.Stats()
	if st.Queries != int64(len(jobs)*replicas) {
		t.Fatalf("queries %d, want %d", st.Queries, len(jobs)*replicas)
	}
	if st.Executed+st.Coalesced != st.Queries {
		t.Fatalf("executed %d + coalesced %d != queries %d", st.Executed, st.Coalesced, st.Queries)
	}
	t.Logf("stress: executed=%d coalesced=%d evictions=%d", st.Executed, st.Coalesced, st.Evictions)
}
