package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports a request rejected at admission: the in-flight
// limit is reached and the wait queue is full. The HTTP layer maps it to
// 429 Too Many Requests with a Retry-After header — the client should back
// off and retry, nothing about the request itself is wrong.
var ErrOverloaded = errors.New("serving: overloaded, wait queue full")

// Limiter is the admission-control gate: at most inFlight requests execute
// concurrently, at most queued more wait for a slot, and anything beyond
// that is rejected immediately with ErrOverloaded. Bounding both numbers is
// what makes overload degrade gracefully — rejected requests cost one
// channel operation, not a goroutine parked on an unbounded queue and an
// RR-store top-up the process has no memory for.
//
// A waiting request abandons the queue when its context expires, so a
// per-request deadline bounds queue time; execution itself is not
// cancelled (the underlying Session.Maximize is not preemptible), which is
// why the in-flight bound matters.
type Limiter struct {
	slots chan struct{} // execution slots, cap = inFlight
	queue chan struct{} // admitted (waiting + executing), cap = inFlight+queued
	// waitEWMA smooths the slot waits admitted requests observed (ns,
	// α = 1/8) — the signal behind EstimatedWait and the HTTP layer's
	// Retry-After hints.
	waitEWMA atomic.Int64
}

// NewLimiter builds a limiter admitting inFlight concurrent executions and
// queued additional waiters. inFlight < 1 is raised to 1; queued < 0 is
// treated as 0 (reject as soon as every slot is busy).
func NewLimiter(inFlight, queued int) *Limiter {
	if inFlight < 1 {
		inFlight = 1
	}
	if queued < 0 {
		queued = 0
	}
	return &Limiter{
		slots: make(chan struct{}, inFlight),
		queue: make(chan struct{}, inFlight+queued),
	}
}

// Acquire admits the caller or fails fast: ErrOverloaded when the wait
// queue is full, the context's error when it is expired on arrival or
// expires while queued. On nil return the caller holds an execution slot
// and must call Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	// Fail an already-expired context before it consumes queue capacity:
	// without this check, a pre-cancelled request still enqueues, and the
	// select below may admit it anyway — with a slot free, both cases are
	// ready and the runtime picks one at random.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return ErrOverloaded
	}
	start := time.Now()
	select {
	case l.slots <- struct{}{}:
		// Winning the slot race does not mean the deadline held: both
		// cases can be ready at once. Honour the context over the slot.
		if err := ctx.Err(); err != nil {
			<-l.slots
			<-l.queue
			return err
		}
		l.observeWait(time.Since(start))
		return nil
	case <-ctx.Done():
		<-l.queue
		return ctx.Err()
	}
}

// observeWait folds one admitted request's slot wait into the EWMA.
func (l *Limiter) observeWait(d time.Duration) {
	for {
		old := l.waitEWMA.Load()
		next := old + (int64(d)-old)/8
		if old == 0 {
			next = int64(d) // first observation seeds the average
		}
		if next == old || l.waitEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// EstimatedWait reports the smoothed slot wait recently admitted requests
// observed: how long a client arriving now can expect to queue. Zero until
// the first admission.
func (l *Limiter) EstimatedWait() time.Duration {
	return time.Duration(l.waitEWMA.Load())
}

// Release returns the caller's execution slot.
func (l *Limiter) Release() {
	<-l.slots
	<-l.queue
}

// InFlight reports the number of requests currently executing.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Queued reports the number of admitted requests waiting for a slot.
// Transient interleavings can make the difference momentarily negative;
// it is clamped because a queue length below zero is meaningless.
func (l *Limiter) Queued() int {
	q := len(l.queue) - len(l.slots)
	if q < 0 {
		q = 0
	}
	return q
}
