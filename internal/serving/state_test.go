// Durability wiring of the serving layer: budget evictions and retirement
// snapshot durable tenants, re-admission and process "restarts" recover
// them bit-identically, startup sweeps crash debris, and the
// liveness/readiness split gates traffic while recovery or worker outages
// are in progress.
package serving

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stopandstare"
	"stopandstare/internal/ris"
)

// waitRecovered blocks until the manager's recovery pass finishes.
func waitRecovered(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery pass never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableEvictionRecovery drives the full durable-tenant lifecycle:
// seeded crash debris is swept by the startup pass (orphan cleanup), a
// budget eviction snapshots the store, re-admission recovers it instead of
// resampling, a manager "restart" over the same state dir warms tenants
// eagerly, and every answer along the way is bit-identical to a session
// that never went through any of it.
func TestDurableEvictionRecovery(t *testing.T) {
	gA, gB := testGraph(t, 7), testGraph(t, 8)
	state := t.TempDir()
	optA := stopandstare.SessionOptions{Seed: 11, Workers: 2}
	optB := stopandstare.SessionOptions{Seed: 12, Workers: 2}

	// Crash debris in tenant a's state dir: an uncommitted manifest temp
	// file and a snapshot no manifest references. Startup must sweep both
	// and keep unrelated files.
	dirA := filepath.Join(state, "a")
	if err := os.MkdirAll(dirA, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"manifest.json.tmp", "snapshot-000099.rrsnap"} {
		if err := os.WriteFile(filepath.Join(dirA, junk), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dirA, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	newMgr := func() *Manager {
		m := NewManager(Config{BudgetBytes: 1, StateDir: state})
		if err := m.AddTenant("a", TenantConfig{Graph: gA, Model: stopandstare.IC, Session: optA}); err != nil {
			t.Fatal(err)
		}
		if err := m.AddTenant("b", TenantConfig{Graph: gB, Model: stopandstare.IC, Session: optB}); err != nil {
			t.Fatal(err)
		}
		m.StartRecovery()
		waitRecovered(t, m)
		return m
	}
	m := newMgr()

	for _, junk := range []string{"manifest.json.tmp", "snapshot-000099.rrsnap"} {
		if _, err := os.Stat(filepath.Join(dirA, junk)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("startup kept orphan %s (err %v)", junk, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dirA, "notes.txt")); err != nil {
		t.Fatalf("startup removed unrelated file: %v", err)
	}

	twin, err := stopandstare.NewSession(gA, stopandstare.IC, optA)
	if err != nil {
		t.Fatal(err)
	}
	q := stopandstare.Query{K: 8, Epsilon: 0.3}
	want, err := twin.Maximize(q)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	first, err := m.Maximize(ctx, "a", q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "first query", first, want)
	// Querying b over the 1-byte budget evicts idle a — which, being
	// durable, snapshots first.
	if _, err := m.Maximize(ctx, "b", stopandstare.Query{K: 5, Epsilon: 0.3}); err != nil {
		t.Fatal(err)
	}
	ts := tenantStats(t, m, "a")
	if ts.Resident || ts.Persists == 0 {
		t.Fatalf("eviction did not snapshot: %+v", ts)
	}
	if _, err := ris.ReadSnapshotInfo(dirA); err != nil {
		t.Fatalf("no committed snapshot after eviction: %v", err)
	}
	// Re-admission recovers the snapshot instead of resampling, and the
	// warm repeat answers exactly.
	again, err := m.Maximize(ctx, "a", q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "post-eviction query", again, want)
	ts = tenantStats(t, m, "a")
	if ts.Session.Recovered == 0 || ts.Session.Growths != 0 {
		t.Fatalf("re-admission resampled instead of recovering: %+v", ts.Session)
	}
	if !again.Warm {
		t.Fatal("recovered repeat was not warm")
	}
	// Close persists through the retirement path (the SIGTERM drain).
	persistsBefore := ts.Persists
	m.Close()

	// "Restart": a new manager over the same state dir warms both tenants
	// in StartRecovery and answers warm and bit-identical immediately.
	m2 := newMgr()
	defer m2.Close()
	st := m2.Stats()
	if st.Recovered == 0 {
		t.Fatalf("restarted manager recovered nothing: %+v", st)
	}
	ts = tenantStats(t, m2, "a")
	if !ts.Resident || ts.Session.Recovered == 0 {
		t.Fatalf("tenant a not warmed by recovery pass: %+v", ts)
	}
	if ts.Persists != 0 && ts.Persists == persistsBefore {
		t.Fatalf("per-manager persist counter leaked: %+v", ts)
	}
	res, err := m2.Maximize(ctx, "a", q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "post-restart query", res, want)
	if !res.Warm {
		t.Fatal("post-restart repeat was not warm")
	}
}

// TestRetireRacingInFlightQuery pins satellite invariant: a RemoveTenant
// racing an in-flight query never tears it — the query completes with its
// exact answer (retirement drains in-flight work before releasing the
// graph), and queries arriving after removal get the typed
// ErrUnknownTenant.
func TestRetireRacingInFlightQuery(t *testing.T) {
	g := testGraph(t, 9)
	entered := make(chan struct{})
	var once sync.Once
	m := NewManager(Config{OnExecute: func(string) {
		once.Do(func() { close(entered) })
		// Hold the query in execution long enough for RemoveTenant to be
		// issued while it is demonstrably in flight.
		time.Sleep(20 * time.Millisecond)
	}})
	defer m.Close()
	opt := stopandstare.SessionOptions{Seed: 17, Workers: 2}
	if err := m.AddTenant("a", TenantConfig{Graph: g, Model: stopandstare.IC, Session: opt}); err != nil {
		t.Fatal(err)
	}
	twin, err := stopandstare.NewSession(g, stopandstare.IC, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := stopandstare.Query{K: 6, Epsilon: 0.3}
	want, err := twin.Maximize(q)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *stopandstare.Result
		err error
	}
	resc := make(chan outcome, 1)
	go func() {
		res, err := m.Maximize(context.Background(), "a", q)
		resc <- outcome{res, err}
	}()
	<-entered
	removed := make(chan error, 1)
	go func() { removed <- m.RemoveTenant("a") }()

	out := <-resc
	if out.err != nil {
		t.Fatalf("in-flight query failed during retirement: %v", out.err)
	}
	sameAnswer(t, "raced query", out.res, want)
	if err := <-removed; err != nil {
		t.Fatalf("RemoveTenant: %v", err)
	}
	if _, err := m.Maximize(context.Background(), "a", q); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("post-removal query err = %v, want ErrUnknownTenant", err)
	}
}

// TestEvictRacingQueries hammers two tenants under a 1-byte budget — every
// query triggers eviction of the other, idle tenant — and checks that no
// concurrent mix of evictions and queries ever corrupts an answer: each
// result is bit-identical to its tenant's never-evicted twin.
func TestEvictRacingQueries(t *testing.T) {
	gA, gB := testGraph(t, 7), testGraph(t, 8)
	m := NewManager(Config{BudgetBytes: 1})
	defer m.Close()
	opts := map[string]stopandstare.SessionOptions{
		"a": {Seed: 11, Workers: 2},
		"b": {Seed: 12, Workers: 2},
	}
	graphs := map[string]*stopandstare.Graph{"a": gA, "b": gB}
	wants := map[string]*stopandstare.Result{}
	q := stopandstare.Query{K: 6, Epsilon: 0.3}
	for name, g := range graphs {
		if err := m.AddTenant(name, TenantConfig{Graph: g, Model: stopandstare.IC, Session: opts[name]}); err != nil {
			t.Fatal(err)
		}
		twin, err := stopandstare.NewSession(g, stopandstare.IC, opts[name])
		if err != nil {
			t.Fatal(err)
		}
		if wants[name], err = twin.Maximize(q); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		name := "a"
		if i%2 == 1 {
			name = "b"
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				res, err := m.Maximize(context.Background(), name, q)
				if err != nil {
					errs <- name + ": " + err.Error()
					return
				}
				want := wants[name]
				if res.Samples != want.Samples || res.InfluenceEstimate != want.InfluenceEstimate {
					errs <- name + ": answer drifted under eviction pressure"
					return
				}
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// getReadyz fetches /readyz, returning status and decoded body.
func getReadyz(t *testing.T, ts *httptest.Server) (int, ReadyzResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestHealthzReadyzSplit pins the liveness/readiness contract over HTTP:
// /healthz stays 200 throughout, /readyz flips to 503 while a recovery
// pass runs and back to 200 when it completes.
func TestHealthzReadyzSplit(t *testing.T) {
	m, ts := newTestStack(t, Config{}, ServerConfig{})

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d at rest, want 200", probe, resp.StatusCode)
		}
	}

	// Hold the manager in the recovering state (the counter StartRecovery
	// bumps for the duration of its pass): readiness must gate, liveness
	// must not.
	m.recovering.Add(1)
	status, body := getReadyz(t, ts)
	if status != http.StatusServiceUnavailable || body.Ready || !body.Recovering {
		t.Fatalf("/readyz while recovering = %d %+v, want 503 ready=false recovering=true", status, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while recovering = %d, want 200", resp.StatusCode)
	}
	m.recovering.Add(-1)
	if status, body = getReadyz(t, ts); status != http.StatusOK || !body.Ready {
		t.Fatalf("/readyz after recovery = %d %+v, want 200 ready=true", status, body)
	}
}

// TestReadyzWorkerReachability pins the degraded-capacity condition: with
// remote workers configured, /readyz reports per-worker reachability and
// returns 503 only when EVERY worker is unreachable — one live worker (or
// one coming back) keeps the process in rotation.
func TestReadyzWorkerReachability(t *testing.T) {
	g := testGraph(t, 9)

	// Two real shard workers on localhost TCP, exactly what imworker runs.
	var addrs []string
	var servers []*ris.ShardServer
	var listeners []net.Listener
	for i := 0; i < 2; i++ {
		srv := ris.NewShardServer(g, ris.ShardServerOptions{SamplingWorkers: 1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	m := NewManager(Config{})
	t.Cleanup(m.Close)
	if err := m.AddTenant("a", TenantConfig{
		Graph: g, Model: stopandstare.IC,
		Session: stopandstare.SessionOptions{Seed: 5, Workers: 2, RemoteWorkers: addrs},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m, ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	status, body := getReadyz(t, ts)
	if status != http.StatusOK || !body.Ready || !body.Workers[addrs[0]] || !body.Workers[addrs[1]] {
		t.Fatalf("/readyz with live workers = %d %+v", status, body)
	}

	// One worker down: degraded but still ready, and the body says which.
	servers[0].Close()
	listeners[0].Close()
	status, body = getReadyz(t, ts)
	if status != http.StatusOK || !body.Ready {
		t.Fatalf("/readyz with one worker down = %d %+v, want ready", status, body)
	}
	if body.Workers[addrs[0]] || !body.Workers[addrs[1]] {
		t.Fatalf("per-worker reachability wrong: %+v", body.Workers)
	}

	// All workers down: zero sampling capacity, out of rotation.
	servers[1].Close()
	listeners[1].Close()
	status, body = getReadyz(t, ts)
	if status != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz with all workers down = %d %+v, want 503", status, body)
	}
	if body.Workers[addrs[0]] || body.Workers[addrs[1]] {
		t.Fatalf("per-worker reachability wrong: %+v", body.Workers)
	}
}
