package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"stopandstare"
	"stopandstare/internal/ris"
)

// maxRequestBytes bounds a /maximize request body: queries are a handful
// of scalar fields, so anything past 1 MiB is garbage or abuse.
const maxRequestBytes = 1 << 20

// ServerConfig tunes the HTTP front end.
type ServerConfig struct {
	// DefaultTenant answers requests that omit "tenant". Empty selects the
	// sole tenant when the manager holds exactly one, else requests must
	// name one.
	DefaultTenant string
	// DefaultTimeout bounds a request's queue + coalesced wait when the
	// body sets no timeout_ms (≤0 ⇒ 30s). Execution itself is not
	// preempted; the admission gate bounds concurrent executions.
	DefaultTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so serving
	// hotspots are profilable under load. Off by default: the profile
	// endpoints expose internals and cost CPU when scraped.
	EnablePprof bool
}

// MaximizeRequest is the POST /maximize body.
type MaximizeRequest struct {
	Tenant    string  `json:"tenant,omitempty"`
	K         int     `json:"k"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"` // "dssa" (default) or "ssa"
	// TimeoutMS overrides the server's default wait deadline for this
	// request (0 keeps the default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MaximizeResponse mirrors stopandstare.Result plus serving metadata.
type MaximizeResponse struct {
	Tenant      string   `json:"tenant"`
	Seeds       []uint32 `json:"seeds"`
	Influence   float64  `json:"influence"`
	Samples     int64    `json:"samples"`
	Iterations  int      `json:"iterations"`
	HitCap      bool     `json:"hit_cap,omitempty"`
	MemoryBytes int64    `json:"memory_bytes"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	// Warm reports whether this query was served without growing the RR
	// store (pure selection over already-resident samples).
	Warm bool `json:"warm"`
	// Coalesced reports a response copied from a concurrent identical
	// query's execution — bit-identical to running it, minus the cost.
	Coalesced bool `json:"coalesced"`
}

// TenantStatsResponse is one tenant's entry in the GET /stats body.
type TenantStatsResponse struct {
	Name               string `json:"name"`
	Resident           bool   `json:"resident"`
	Nodes              int    `json:"nodes"`
	Edges              int64  `json:"edges"`
	Model              string `json:"model"`
	Queries            int64  `json:"queries"`
	Evictions          int64  `json:"evictions"`
	Samples            int    `json:"samples"`
	Items              int64  `json:"items"`
	Growths            int64  `json:"growths"`
	StoreBytes         int64  `json:"store_bytes"`
	StoreSpilledBytes  int64  `json:"store_spilled_bytes,omitempty"`
	SpillFileBytes     int64  `json:"spill_file_bytes,omitempty"`
	PlanBytes          int64  `json:"plan_bytes"`
	GraphResidentBytes int64  `json:"graph_resident_bytes"`
	GraphMappedBytes   int64  `json:"graph_mapped_bytes"`
	Solvers            int    `json:"solvers"`
	Recovered          int    `json:"recovered,omitempty"`
	SnapshotBytes      int64  `json:"snapshot_bytes,omitempty"`
	Persists           int64  `json:"persists,omitempty"`
}

// StatsResponse is the GET /stats body: the manager-wide counters plus one
// entry per tenant.
type StatsResponse struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Queries     int64   `json:"queries"`
	Executed    int64   `json:"executed"`
	Coalesced   int64   `json:"coalesced"`
	Rejected429 int64   `json:"rejected_429"`
	Timeout503  int64   `json:"timeout_503"`
	Evictions   int64   `json:"evictions"`
	Spills      int64   `json:"spills"`
	StoreBytes  int64   `json:"store_bytes"`
	// StoreSpilledBytes sums session bytes parked in spill files (not in
	// StoreBytes, which the budget bounds); SpillFileBytes is their on-disk
	// footprint.
	StoreSpilledBytes int64 `json:"store_spilled_bytes"`
	SpillFileBytes    int64 `json:"spill_file_bytes"`
	BudgetBytes       int64 `json:"budget_bytes"`
	// Recovered sums RR sets restored from snapshots across resident
	// sessions; Persists counts snapshots committed; SnapshotBytes sums
	// current snapshot file sizes; Recovering mirrors /readyz's warm-up
	// condition.
	Recovered     int64                 `json:"recovered"`
	Persists      int64                 `json:"persists"`
	SnapshotBytes int64                 `json:"snapshot_bytes"`
	Recovering    bool                  `json:"recovering,omitempty"`
	InFlight      int                   `json:"in_flight"`
	Queued        int                   `json:"queued"`
	Tenants       []TenantStatsResponse `json:"tenants"`
}

// ReadyzResponse is the GET /readyz body: overall readiness plus the
// conditions that gate it. Workers maps each configured remote shard-worker
// address to its probe result (absent for in-process topologies).
type ReadyzResponse struct {
	Ready      bool            `json:"ready"`
	Recovering bool            `json:"recovering,omitempty"`
	Workers    map[string]bool `json:"workers,omitempty"`
}

// Server exposes a Manager over JSON/HTTP. Endpoints:
//
//	POST /maximize  {"tenant":"a","k":50,"epsilon":0.1,"algorithm":"dssa","timeout_ms":2000}
//	GET  /stats     manager + per-tenant snapshot
//	GET  /healthz   liveness: 200 whenever the process can answer at all
//	GET  /readyz    readiness: 503 while durable tenants are still
//	                recovering, or while every remote shard worker is
//	                unreachable (degraded to zero capacity); body reports
//	                per-worker reachability
//
// Liveness and readiness are deliberately split: a recovering or degraded
// process must NOT be restarted (that would lose exactly the state it is
// rebuilding) but must not receive traffic either — orchestrators probe
// /healthz to decide restarts and /readyz to decide routing.
//
// Backpressure surfaces as status codes: 429 (admission queue full) and
// 503 (deadline expired while waiting), both with Retry-After, so an
// overloaded server sheds load instead of accumulating it.
type Server struct {
	mgr   *Manager
	cfg   ServerConfig
	start time.Time
}

// NewServer wires a manager into an HTTP front end.
func NewServer(mgr *Manager, cfg ServerConfig) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	return &Server{mgr: mgr, cfg: cfg, start: time.Now()}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/maximize", s.handleMaximize)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// resolveTenant maps an optional request tenant name onto the manager.
func (s *Server) resolveTenant(req string) (string, error) {
	if req != "" {
		return req, nil
	}
	if s.cfg.DefaultTenant != "" {
		return s.cfg.DefaultTenant, nil
	}
	names := s.mgr.Tenants()
	if len(names) == 1 {
		return names[0], nil
	}
	return "", fmt.Errorf("serving: %d tenants, request must name one", len(names))
}

// retryAfter derives the Retry-After hint from the limiter's observed slot
// wait, so backed-off clients return when a slot is actually likely —
// clamped to at least 1s (the header's useful minimum) and at most the
// configured default timeout (waiting longer than the server would have
// let the request queue is pointless).
func (s *Server) retryAfter() string {
	secs := int64(math.Ceil(s.mgr.limiter.EstimatedWait().Seconds()))
	if secs < 1 {
		secs = 1
	}
	if max := int64(math.Ceil(s.cfg.DefaultTimeout.Seconds())); secs > max && max >= 1 {
		secs = max
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleMaximize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req MaximizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	algo := stopandstare.DSSA
	if req.Algorithm != "" {
		a, err := stopandstare.ParseAlgorithm(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		algo = a
	}
	name, err := s.resolveTenant(req.Tenant)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, err := s.mgr.Maximize(ctx, name, stopandstare.Query{
		Algorithm: algo, K: req.K, Epsilon: req.Epsilon, Delta: req.Delta,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", s.retryAfter())
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			w.Header().Set("Retry-After", s.retryAfter())
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, stopandstare.ErrShardUnreachable):
			// Degraded mode: a remote shard worker is down. The session
			// recovers by reconnect-and-replay once the worker returns, so
			// this is retryable capacity loss, not a bad request.
			w.Header().Set("Retry-After", s.retryAfter())
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrUnknownTenant):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, MaximizeResponse{
		Tenant:      name,
		Seeds:       res.Seeds,
		Influence:   res.InfluenceEstimate,
		Samples:     res.Samples,
		Iterations:  res.Iterations,
		HitCap:      res.HitCap,
		MemoryBytes: res.MemoryBytes,
		ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1e3,
		Warm:        res.Warm,
		Coalesced:   res.Coalesced,
	})
}

// workerProbeTimeout bounds one readiness ping; probes run in parallel, so
// it also bounds the whole /readyz worker sweep. Short by design — a probe
// that needs longer than this is unreachable for routing purposes.
const workerProbeTimeout = 2 * time.Second

// handleReadyz reports routing readiness. Not-ready conditions:
//
//   - a StartRecovery pass is still warming durable tenants (queries would
//     work but pay the recovery latency readiness exists to hide);
//   - every configured remote shard worker fails its liveness ping — the
//     process has zero sampling capacity and each query would burn its
//     whole reconnect budget before failing. A single unreachable worker
//     does NOT flip readiness: stores reconnect-and-replay through blips,
//     and parking the whole process over one flapping worker sheds far
//     more capacity than the blip itself. The body's per-worker map gives
//     operators the partial picture.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	resp := ReadyzResponse{Ready: true, Recovering: s.mgr.Recovering()}
	if resp.Recovering {
		resp.Ready = false
	}
	if addrs := s.mgr.WorkerAddrs(); len(addrs) > 0 {
		resp.Workers = make(map[string]bool, len(addrs))
		results := make([]bool, len(addrs))
		var wg sync.WaitGroup
		for i, a := range addrs {
			wg.Add(1)
			go func(i int, a string) {
				defer wg.Done()
				results[i] = ris.PingWorker(a, nil, workerProbeTimeout) == nil
			}(i, a)
		}
		wg.Wait()
		reachable := false
		for i, a := range addrs {
			resp.Workers[a] = results[i]
			reachable = reachable || results[i]
		}
		if !reachable {
			resp.Ready = false
		}
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	st := s.mgr.Stats()
	out := StatsResponse{
		UptimeSec:         time.Since(s.start).Seconds(),
		Queries:           st.Queries,
		Executed:          st.Executed,
		Coalesced:         st.Coalesced,
		Rejected429:       st.Rejected,
		Timeout503:        st.Deadlined,
		Evictions:         st.Evictions,
		Spills:            st.Spills,
		StoreBytes:        st.StoreBytes,
		StoreSpilledBytes: st.StoreSpilledBytes,
		SpillFileBytes:    st.SpillFileBytes,
		BudgetBytes:       st.BudgetBytes,
		Recovered:         st.Recovered,
		Persists:          st.Persists,
		SnapshotBytes:     st.SnapshotBytes,
		Recovering:        st.Recovering,
		InFlight:          st.InFlight,
		Queued:            st.Queued,
		Tenants:           make([]TenantStatsResponse, 0, len(st.Tenants)),
	}
	for _, t := range st.Tenants {
		out.Tenants = append(out.Tenants, TenantStatsResponse{
			Name:               t.Name,
			Resident:           t.Resident,
			Nodes:              t.Nodes,
			Edges:              t.Edges,
			Model:              t.Model,
			Queries:            t.Queries,
			Evictions:          t.Evictions,
			Samples:            t.Session.Samples,
			Items:              t.Session.Items,
			Growths:            t.Session.Growths,
			StoreBytes:         t.Session.StoreBytes,
			StoreSpilledBytes:  t.Session.StoreSpilledBytes,
			SpillFileBytes:     t.Session.SpillFileBytes,
			PlanBytes:          t.Session.PlanBytes,
			GraphResidentBytes: t.Session.GraphResidentBytes,
			GraphMappedBytes:   t.Session.GraphMappedBytes,
			Solvers:            t.Session.Solvers,
			Recovered:          t.Session.Recovered,
			SnapshotBytes:      t.Session.SnapshotBytes,
			Persists:           t.Persists,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
