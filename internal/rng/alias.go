package rng

import (
	"errors"
	"math"
)

// Alias is a Vose alias table for O(1) sampling from a fixed discrete
// distribution. It backs the weighted root selection of WRIS sampling
// (targeted viral marketing, §7.3 of the paper), where each RR-set root is
// drawn proportionally to a node's benefit weight.
type Alias struct {
	prob  []float64
	alias []int32
	total float64
}

// ErrBadWeights reports an unusable weight vector.
var ErrBadWeights = errors.New("rng: weights must be finite, non-negative, with positive sum")

// NewAlias builds an alias table from the given non-negative weights.
// The weights need not be normalised. Construction is O(len(w)).
func NewAlias(w []float64) (*Alias, error) {
	n := len(w)
	if n == 0 {
		return nil, ErrBadWeights
	}
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, ErrBadWeights
		}
		total += x
	}
	if total <= 0 {
		return nil, ErrBadWeights
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		total: total,
	}
	// Scaled probabilities; small/large worklists (Vose's method).
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small { // numerical leftovers
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Total returns the sum of the original weights (Γ in the TVM notation).
func (a *Alias) Total() float64 { return a.total }

// Sample draws one outcome index in O(1).
func (a *Alias) Sample(r *Source) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
