// Package rng provides the deterministic pseudo-random machinery used by
// every sampling component in this repository: a xoshiro256++ generator,
// splitmix64 stream derivation (so RR set i can always be regenerated from
// (seed, i) regardless of worker count), and a Vose alias table for the
// weighted root selection used by WRIS / targeted viral marketing.
//
// math/rand is deliberately not used: the algorithms in the paper need
// billions of draws, reproducibility across goroutines, and O(1) stream
// splitting, none of which math/rand.Source offers cheaply.
package rng

import "math/bits"

// Source is a xoshiro256++ pseudo-random generator. It is not safe for
// concurrent use; create one Source per goroutine via NewStream.
type Source struct {
	s [4]uint64
}

// splitMix64 advances *x and returns the next splitmix64 output. It is used
// both to seed xoshiro state and to derive independent streams.
func splitMix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// NewStream returns a Source for logical stream `stream` of the given seed.
// Distinct (seed, stream) pairs yield statistically independent sequences;
// the mapping is pure, so stream i can be re-derived at any time. This is
// the foundation of deterministic parallel RR-set generation: the RR set
// with global index i is always produced by NewStream(seed, i).
func NewStream(seed, stream uint64) *Source {
	var s Source
	s.SeedStream(seed, stream)
	return &s
}

// SeedStream resets r in place to the start of logical stream `stream` of
// the given seed, yielding the identical sequence to NewStream(seed, stream)
// without allocating. Hot loops that re-derive one stream per work item
// (e.g. one per RR set) keep a Source value and re-seed it.
func (r *Source) SeedStream(seed, stream uint64) {
	// Mix the stream id through splitmix64 before combining so that
	// consecutive stream ids land far apart in seed space.
	x := stream
	h := splitMix64(&x)
	r.Seed(seed ^ h ^ 0x6A09E667F3BCC909)
}

// Seed resets the generator state from a single 64-bit seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	r.s[0] = splitMix64(&x)
	r.s[1] = splitMix64(&x)
	r.s[2] = splitMix64(&x)
	r.s[3] = splitMix64(&x)
	// xoshiro256++ state must not be all zero; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256++).
func (r *Source) Uint64() uint64 {
	res := bits.RotateLeft64(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return res
}

// Float64 returns a uniform value in [0,1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
// Uses Lemire's multiply-shift; the bias is below 2^-64 per draw, which is
// far under the statistical noise floor of any experiment here.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Uint32n returns a uniform integer in [0,n) for 32-bit n. Panics if n == 0.
func (r *Source) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with zero n")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return uint32(hi)
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm fills out with a uniform random permutation of [0,len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
