package rng

import "math"

// This file holds the integer-domain sampling primitives the compiled
// sampling plans (internal/ris.Plan) are built from:
//
//   - Threshold64 + Bernoulli64: a Bernoulli(p) trial as a single uint64
//     compare, with the float conversion paid once at plan-compile time
//     instead of once per edge examined;
//   - LogQ + Geometric: inverse-CDF geometric sampling, so a run of
//     identical-probability Bernoulli trials (every node of a weighted-
//     cascade graph) is skipped to its next success in one draw instead of
//     one draw per trial.

// Threshold64 maps a probability p ∈ [0,1] to the threshold thr such that
// Uint64() < thr holds with probability thr/2^64 ≈ p. The approximation
// error is below 2^-64 — far under the noise floor of any sampling
// experiment — except at p = 1, which saturates to an always-true compare
// via Bernoulli64's contract (thr = MaxUint64 is treated as certainty; see
// Bernoulli64). p outside [0,1] clamps.
func Threshold64(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	// Exact: scaling by 2^64 only shifts the exponent, and p < 1 keeps the
	// product strictly below 2^64, so the uint64 conversion cannot overflow.
	return uint64(math.Ldexp(p, 64))
}

// Bernoulli64 returns true with probability thr/2^64, by a single 64-bit
// compare. thr = MaxUint64 (the saturation value Threshold64 assigns to
// p = 1) is treated as certainty, so p ∈ {0, 1} are exact: 0 never fires,
// 1 always fires.
func (r *Source) Bernoulli64(thr uint64) bool {
	return r.Uint64() < thr || thr == math.MaxUint64
}

// LogQ returns ln(1−p), the Geometric parameterisation of a success
// probability p — computed once per plan entry so the per-draw work is one
// log and one divide. p ≥ 1 yields −Inf (Geometric returns 0: success is
// immediate) and p ≤ 0 yields 0 (Geometric returns MaxSkip: success never
// comes).
func LogQ(p float64) float64 {
	if p >= 1 {
		return math.Inf(-1)
	}
	if p <= 0 {
		return 0
	}
	return math.Log1p(-p)
}

// MaxSkip is Geometric's saturation value: returned when the success
// probability is 0 (lnq = 0) or when the sampled skip would exceed it.
// It is large enough that any consumer bounding the skip by a slice length
// terminates, and small enough that `i += 1 + skip` cannot overflow int64.
const MaxSkip = int64(1) << 62

// Geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence — Geom(p) on {0, 1, 2, …} — using exactly one
// uniform draw, with lnq = LogQ(p) precomputed:
//
//	X = floor(ln U / ln(1−p)),  U uniform on (0,1]
//
// which satisfies P(X ≥ k) = (1−p)^k exactly. Edge cases: p = 1 (lnq = −Inf)
// always returns 0; p = 0 (lnq = 0) returns MaxSkip; results are never
// negative and the draw never loops.
func (r *Source) Geometric(lnq float64) int64 {
	if lnq == 0 {
		return MaxSkip
	}
	// U ∈ [2^-53, 1]: the +1 keeps log away from -Inf, and U = 1 lands on
	// skip 0 (log 1 = 0), preserving P(X=0) = p.
	u := float64(r.Uint64()>>11+1) * (1.0 / (1 << 53))
	f := math.Log(u) / lnq
	if f >= float64(MaxSkip) {
		return MaxSkip
	}
	return int64(f)
}
