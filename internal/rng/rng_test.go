package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestStreamsIndependentAndReproducible(t *testing.T) {
	s1a := NewStream(7, 100)
	s1b := NewStream(7, 100)
	s2 := NewStream(7, 101)
	for i := 0; i < 100; i++ {
		x := s1a.Uint64()
		if x != s1b.Uint64() {
			t.Fatal("same stream not reproducible")
		}
		if x == s2.Uint64() {
			t.Fatal("adjacent streams collided")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		x := r.Intn(m)
		return x >= 0 && x < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint32nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint32n(0) did not panic")
		}
	}()
	New(1).Uint32n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %.4f", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	out := make([]int, 50)
	r.Perm(out)
	seen := make([]bool, 50)
	for _, x := range out {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[x] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSeedZeroWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("seed 0 produced a degenerate sequence")
	}
}

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Fatalf("NewAlias(%v) should fail", w)
		}
	}
}

func TestAliasDistribution(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	a, err := NewAlias(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Total() != 10 {
		t.Fatalf("Total = %v", a.Total())
	}
	r := New(31)
	const draws = 400000
	counts := make([]int, 4)
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, wi := range w {
		want := wi / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("outcome %d: got %d want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := New(37)
	for i := 0; i < 100000; i++ {
		s := a.Sample(r)
		if s == 0 || s == 2 || s == 4 {
			t.Fatalf("sampled zero-weight outcome %d", s)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(41)
	for i := 0; i < 1000; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias sampled nonzero")
		}
	}
}

func TestAliasSkewedDistribution(t *testing.T) {
	// Heavy skew exercises the small/large worklist logic.
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1
	}
	w[0] = 1e6
	a, err := NewAlias(w)
	if err != nil {
		t.Fatal(err)
	}
	r := New(43)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if a.Sample(r) == 0 {
			hits++
		}
	}
	wantRate := 1e6 / (1e6 + 99)
	rate := float64(hits) / draws
	if math.Abs(rate-wantRate) > 0.005 {
		t.Fatalf("skewed alias rate %.5f want %.5f", rate, wantRate)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= r.Uint64()
	}
	_ = acc
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 1<<16)
	for i := range w {
		w[i] = float64(i%97) + 1
	}
	a, _ := NewAlias(w)
	r := New(1)
	b.ResetTimer()
	var acc int
	for i := 0; i < b.N; i++ {
		acc ^= a.Sample(r)
	}
	_ = acc
}

func TestSeedStreamMatchesNewStream(t *testing.T) {
	var r Source
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		for _, stream := range []uint64{0, 1, 2, 1<<62 | 7, ^uint64(0)} {
			want := NewStream(seed, stream)
			r.SeedStream(seed, stream)
			for i := 0; i < 64; i++ {
				if got, w := r.Uint64(), want.Uint64(); got != w {
					t.Fatalf("seed=%d stream=%d draw %d: SeedStream %x != NewStream %x",
						seed, stream, i, got, w)
				}
			}
		}
	}
}
