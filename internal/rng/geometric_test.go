package rng

import (
	"math"
	"testing"
)

// chiSquare returns Σ (obs−exp)²/exp over the buckets.
func chiSquare(obs []int, exp []float64) float64 {
	var x2 float64
	for i := range obs {
		d := float64(obs[i]) - exp[i]
		x2 += d * d / exp[i]
	}
	return x2
}

// TestGeometricDistribution checks Geometric(LogQ(p)) against the closed
// form P(X=k) = (1−p)^k·p by chi-square, for success probabilities across
// three orders of magnitude. Buckets 0..K−1 are exact, the K'th pools the
// tail P(X≥K) = (1−p)^K. Seeds are fixed, so the test is deterministic; the
// critical values are the χ² 1−10⁻⁶ quantiles rounded up, far above any
// correct implementation's statistic.
func TestGeometricDistribution(t *testing.T) {
	const N = 400000
	for _, tc := range []struct {
		p    float64
		K    int // exact buckets before the pooled tail
		crit float64
	}{
		{0.75, 8, 55},   // χ²(8): 1-1e-6 quantile ≈ 43
		{0.5, 14, 65},   // χ²(14) ≈ 52
		{0.1, 30, 90},   // χ²(30) ≈ 75
		{0.01, 40, 105}, // χ²(40) ≈ 89
	} {
		lnq := LogQ(tc.p)
		r := New(0xC0FFEE ^ math.Float64bits(tc.p))
		obs := make([]int, tc.K+1)
		for i := 0; i < N; i++ {
			k := r.Geometric(lnq)
			if k < 0 {
				t.Fatalf("p=%v: negative skip %d", tc.p, k)
			}
			if k >= int64(tc.K) {
				obs[tc.K]++
			} else {
				obs[k]++
			}
		}
		exp := make([]float64, tc.K+1)
		q := 1 - tc.p
		for k := 0; k < tc.K; k++ {
			exp[k] = N * math.Pow(q, float64(k)) * tc.p
		}
		exp[tc.K] = N * math.Pow(q, float64(tc.K))
		if x2 := chiSquare(obs, exp); x2 > tc.crit {
			t.Fatalf("p=%v: chi-square %.1f exceeds critical %.0f (obs %v)", tc.p, x2, tc.crit, obs)
		}
	}
}

// TestGeometricEdgeCases pins the boundary behaviour the plan kernels rely
// on: p = 1 always returns 0, p = 0 returns the MaxSkip sentinel, and a
// vanishing p = 1e-12 neither hangs, goes negative, nor overflows the
// `i += 1 + skip` pattern.
func TestGeometricEdgeCases(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		if k := r.Geometric(LogQ(1)); k != 0 {
			t.Fatalf("p=1: skip %d, want 0", k)
		}
		if k := r.Geometric(LogQ(0)); k != MaxSkip {
			t.Fatalf("p=0: skip %d, want MaxSkip", k)
		}
		k := r.Geometric(LogQ(1e-12))
		if k < 0 || k > MaxSkip {
			t.Fatalf("p=1e-12: skip %d out of [0, MaxSkip]", k)
		}
		if k+1 < k { // the kernel's stride must not overflow
			t.Fatalf("p=1e-12: skip %d overflows +1", k)
		}
	}
	// p above 1 and below 0 clamp to the certain/impossible cases.
	if LogQ(1.5) != math.Inf(-1) || LogQ(-0.5) != 0 {
		t.Fatal("LogQ does not clamp out-of-range p")
	}
}

// TestThreshold64Bernoulli checks that the integer-threshold trial fires at
// the same frequency as the float oracle Float64() < p, within binomial
// noise, and that the endpoints are exact.
func TestThreshold64Bernoulli(t *testing.T) {
	const N = 400000
	for _, p := range []float64{1e-12, 0.001, 0.1, 0.25, 0.5, 0.9, 0.999} {
		thr := Threshold64(p)
		ri := New(31337 ^ math.Float64bits(p))
		rf := New(777 ^ math.Float64bits(p))
		var ci, cf int
		for i := 0; i < N; i++ {
			if ri.Bernoulli64(thr) {
				ci++
			}
			if rf.Float64() < p {
				cf++
			}
		}
		se := math.Sqrt(N * p * (1 - p))
		if d := math.Abs(float64(ci) - N*p); d > 6*se+1 {
			t.Fatalf("p=%v: threshold count %d deviates %.1f (> 6se=%.1f) from N·p", p, ci, d, 6*se)
		}
		// The two implementations must agree with each other too (two-sample
		// binomial: sd of the difference is √2·se).
		if d := math.Abs(float64(ci - cf)); d > 6*math.Sqrt2*se+2 {
			t.Fatalf("p=%v: threshold %d vs float oracle %d differ by %.0f", p, ci, cf, d)
		}
	}
	// Endpoints: p=0 never fires, p=1 always fires — exactly.
	r := New(5)
	t0, t1 := Threshold64(0), Threshold64(1)
	for i := 0; i < 100000; i++ {
		if r.Bernoulli64(t0) {
			t.Fatal("p=0 fired")
		}
		if !r.Bernoulli64(t1) {
			t.Fatal("p=1 did not fire")
		}
	}
}

// TestThreshold64Values pins exact threshold arithmetic at representable
// points.
func TestThreshold64Values(t *testing.T) {
	if Threshold64(0.5) != 1<<63 {
		t.Fatalf("Threshold64(0.5) = %x", Threshold64(0.5))
	}
	if Threshold64(0.25) != 1<<62 {
		t.Fatalf("Threshold64(0.25) = %x", Threshold64(0.25))
	}
	if Threshold64(0) != 0 || Threshold64(-1) != 0 {
		t.Fatal("p <= 0 must map to 0")
	}
	if Threshold64(1) != math.MaxUint64 || Threshold64(2) != math.MaxUint64 {
		t.Fatal("p >= 1 must saturate")
	}
	// Monotone in p.
	prev := uint64(0)
	for _, p := range []float64{0, 1e-15, 1e-9, 0.1, 0.5, 0.9, 1 - 1e-12, 1} {
		thr := Threshold64(p)
		if thr < prev {
			t.Fatalf("Threshold64 not monotone at p=%v", p)
		}
		prev = thr
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	lnq := LogQ(1.0 / 40)
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += r.Geometric(lnq)
	}
	_ = acc
}

func BenchmarkBernoulli64(b *testing.B) {
	r := New(1)
	thr := Threshold64(1.0 / 40)
	var acc int
	for i := 0; i < b.N; i++ {
		if r.Bernoulli64(thr) {
			acc++
		}
	}
	_ = acc
}

func BenchmarkFloatBernoulli(b *testing.B) {
	r := New(1)
	p := 1.0 / 40
	var acc int
	for i := 0; i < b.N; i++ {
		if r.Float64() < p {
			acc++
		}
	}
	_ = acc
}
