package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"stopandstare/internal/baselines"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
	"stopandstare/internal/tvm"
)

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	ID          string
	Description string
	Run         func(cfg Config, w io.Writer) error
}

// Experiments registers every reproducible artifact of §7 plus the two
// ablations called out in DESIGN.md.
var Experiments = []Experiment{
	{"table2", "Table 2: dataset statistics of the synthetic stand-ins", runTable2},
	{"fig2", "Fig 2: expected influence vs k under LT", figInfluence(diffusion.LT)},
	{"fig3", "Fig 3: expected influence vs k under IC", figInfluence(diffusion.IC)},
	{"fig4", "Fig 4: running time vs k under LT", figRuntime(diffusion.LT)},
	{"fig5", "Fig 5: running time vs k under IC", figRuntime(diffusion.IC)},
	{"fig6", "Fig 6: memory usage vs k under LT", figMemory(diffusion.LT)},
	{"fig7", "Fig 7: memory usage vs k under IC", figMemory(diffusion.IC)},
	{"table3", "Table 3: runtime and #RR sets of D-SSA/SSA/IMM under LT", runTable3},
	{"table4", "Table 4: synthetic TVM topics and targeted group sizes", runTable4},
	{"fig8", "Fig 8: TVM running time vs k (SSA, D-SSA, KB-TIM)", runFig8},
	{"ablation-eps", "Ablation: SSA epsilon-split sensitivity (§4.2)", runAblationEps},
	{"ablation-theta", "Ablation: samples vs the oracle threshold of Eq. 14", runAblationTheta},
	{"ablation-certify", "Ablation: stopping-rule certificate vs Monte-Carlo scoring", runAblationCertify},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids in registration order.
func IDs() []string {
	ids := make([]string, len(Experiments))
	for i, e := range Experiments {
		ids[i] = e.ID
	}
	return ids
}

// figDatasets are the four networks of Figures 2–7.
var figDatasets = []string{"nethept", "netphy", "dblp", "twitter"}

// table3Datasets are the four networks of Table 3.
var table3Datasets = []string{"enron", "epinions", "orkut", "friendster"}

func runTable2(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	t := &Table{
		Title:   "Table 2: dataset stand-ins (paper size -> generated size)",
		Headers: []string{"dataset", "paper-nodes", "paper-edges", "scale", "nodes", "edges", "avg-degree", "max-out-deg", "lt-valid"},
	}
	for _, p := range gen.Presets {
		d, err := LoadDataset(p.Name, cfg)
		if err != nil {
			return err
		}
		s := d.Graph.Stats()
		t.AddRow(p.Name, int64(p.Nodes), p.Edges, fmt.Sprintf("%.4f", d.Scale),
			s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, fmt.Sprint(s.LTValid))
	}
	t.Notes = append(t.Notes,
		"paper columns from Table 2; generated sizes are paper sizes x scale",
		"orkut/friendster emitted as two arcs per undirected edge (paper Remark)")
	return t.Format(w)
}

// sweepAlgos picks the algorithm set: the full RIS group, plus CELF++ only
// on the smallest dataset when explicitly enabled (as in the paper, which
// runs it only on NetHEPT under a 24-hour cap).
func sweepAlgos(cfg Config, dataset string) []AlgoID {
	algos := append([]AlgoID{}, IMAlgos...)
	if cfg.IncludeCELF && !cfg.Quick && dataset == "nethept" {
		algos = append(algos, AlgoCELFPP)
	}
	return algos
}

func runIMSweep(cfg Config, model diffusion.Model, w io.Writer, value func(*Metrics) interface{}, valueName string, title string) error {
	cfg = cfg.Normalize()
	for _, name := range figDatasets {
		d, err := LoadDataset(name, cfg)
		if err != nil {
			return err
		}
		t := &Table{
			Title:   fmt.Sprintf("%s — %s (n=%d, m=%d)", title, name, d.Graph.NumNodes(), d.Graph.NumEdges()),
			Headers: []string{"algorithm", "k", valueName, "spread(MC)", "time", "rr-sets", "memory"},
		}
		ks := cfg.KSweep(d.Graph.NumNodes())
		for _, algo := range sweepAlgos(cfg, name) {
			for _, k := range ks {
				if algo == AlgoCELFPP && k > 50 {
					continue // paper caps greedy runs at 24h; we cap k
				}
				m, err := RunIM(d, model, algo, k, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s k=%d: %w", name, algo, k, err)
				}
				t.AddRow(string(algo), k, value(m), m.Spread, m.Elapsed, m.Samples, formatBytes(m.Memory))
			}
		}
		if err := t.Format(w); err != nil {
			return err
		}
	}
	return nil
}

func figInfluence(model diffusion.Model) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		return runIMSweep(cfg, model, w,
			func(m *Metrics) interface{} { return m.Spread },
			"influence",
			fmt.Sprintf("Expected influence vs k, %v model", model))
	}
}

func figRuntime(model diffusion.Model) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		return runIMSweep(cfg, model, w,
			func(m *Metrics) interface{} { return m.Elapsed },
			"runtime",
			fmt.Sprintf("Running time vs k, %v model", model))
	}
}

func figMemory(model diffusion.Model) func(Config, io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		return runIMSweep(cfg, model, w,
			func(m *Metrics) interface{} { return formatBytes(m.Memory) },
			"memory",
			fmt.Sprintf("Memory vs k, %v model", model))
	}
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func runTable3(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	t := &Table{
		Title:   "Table 3: D-SSA / SSA / IMM under LT — runtime and #RR sets",
		Headers: []string{"dataset", "k", "algo", "time", "rr-sets", "spread(MC)"},
	}
	algos := []AlgoID{AlgoDSSA, AlgoSSA, AlgoIMM}
	for _, name := range table3Datasets {
		d, err := LoadDataset(name, cfg)
		if err != nil {
			return err
		}
		n := d.Graph.NumNodes()
		// Paper uses k ∈ {1, 500, 1000} at full size; scale proportionally.
		ks := []int{1, int(500 * d.Scale), int(1000 * d.Scale)}
		if cfg.Quick {
			ks = []int{1, 20, 50}
		}
		ks = dedupKs(clampKs(ks, n))
		for _, k := range ks {
			for _, algo := range algos {
				m, err := RunIM(d, diffusion.LT, algo, k, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s k=%d: %w", name, algo, k, err)
				}
				t.AddRow(name, k, string(algo), m.Elapsed, m.Samples, m.Spread)
			}
		}
	}
	t.Notes = append(t.Notes, "paper shape: D-SSA <= SSA << IMM in both time and #RR sets")
	return t.Format(w)
}

func runTable4(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	d, err := LoadDataset("twitter", cfg)
	if err != nil {
		return err
	}
	topics, err := gen.GenerateDefaultTopics(d.Graph, cfg.Seed+77)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Table 4: synthetic topics over the twitter stand-in",
		Headers: []string{"topic", "keywords", "#users", "gamma", "frac-of-n"},
	}
	for i, tp := range topics {
		t.AddRow(fmt.Sprintf("%d (%s)", i+1, tp.Name), fmt.Sprintf("%d keywords", len(tp.Keywords)),
			int64(tp.Users), tp.Gamma, fmt.Sprintf("%.3f", float64(tp.Users)/float64(d.Graph.NumNodes())))
	}
	t.Notes = append(t.Notes, "paper: 997,034 users (2.4% of n) topic 1; 507,465 (1.2%) topic 2")
	return t.Format(w)
}

func runFig8(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	d, err := LoadDataset("twitter", cfg)
	if err != nil {
		return err
	}
	topics, err := gen.GenerateDefaultTopics(d.Graph, cfg.Seed+77)
	if err != nil {
		return err
	}
	n := d.Graph.NumNodes()
	ks := cfg.KValues
	if len(ks) == 0 {
		if cfg.Quick {
			ks = []int{1, 20, 100}
		} else {
			ks = []int{1, int(0.002 * float64(n)), int(0.01 * float64(n)), int(0.024 * float64(n))}
		}
	}
	ks = dedupKs(clampKs(ks, n))
	for ti, topic := range topics {
		inst, err := tvm.NewInstance(d.Graph, topic.Weights)
		if err != nil {
			return err
		}
		t := &Table{
			Title:   fmt.Sprintf("Fig 8(%c): TVM on topic %d — runtime vs k (LT)", 'a'+ti, ti+1),
			Headers: []string{"algorithm", "k", "time", "rr-sets", "benefit-est"},
		}
		for _, k := range ks {
			copt := core.Options{K: k, Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed,
				Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers}
			dres, err := tvm.DSSA(inst, diffusion.LT, copt)
			if err != nil {
				return err
			}
			t.AddRow("D-SSA", k, dres.Elapsed, dres.TotalSamples, dres.Influence)
			sres, err := tvm.SSA(inst, diffusion.LT, copt)
			if err != nil {
				return err
			}
			t.AddRow("SSA", k, sres.Elapsed, sres.TotalSamples, sres.Influence)
			kb, err := tvm.KBTIM(inst, diffusion.LT, baselines.Options{
				K: k, Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed,
				Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers,
			})
			if err != nil {
				return err
			}
			t.AddRow("KB-TIM", k, kb.Elapsed, kb.TotalSamples, kb.Influence)
		}
		t.Notes = append(t.Notes, "paper shape: SSA/D-SSA up to 500x faster than KB-TIM")
		if err := t.Format(w); err != nil {
			return err
		}
	}
	return nil
}

func runAblationEps(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	d, err := LoadDataset("nethept", cfg)
	if err != nil {
		return err
	}
	s, err := ris.NewSampler(d.Graph, diffusion.LT)
	if err != nil {
		return err
	}
	s = s.WithKernel(cfg.Kernel)
	k := 50
	if cfg.Quick {
		k = 20
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: SSA epsilon-split on nethept (LT, k=%d, eps=%.2f)", k, cfg.Epsilon),
		Headers: []string{"split (e1:e2:e3)", "rr-sets", "verify-sets", "time", "influence"},
	}
	// The §4.2 guidance: e1 > e ~ e3 small nets; e1 ~ e ~ e3 moderate;
	// e1 << e2 ~ e3 large. Sweep representative splits plus the default.
	type split struct{ e1, e2, e3 float64 }
	eps := cfg.Epsilon
	splits := []split{
		{0, 0, 0}, // paper default (Eqs. 19–20)
		{eps * 2, eps / 4, eps / 4},
		{eps, eps / 3, eps / 3},
		{eps / 8, eps / 2, eps / 2},
	}
	for _, sp := range splits {
		opt := core.Options{K: k, Epsilon: eps, Delta: cfg.Delta, Seed: cfg.Seed, Workers: cfg.Workers,
			Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers,
			Eps1: sp.e1, Eps2: sp.e2, Eps3: sp.e3}
		res, err := core.SSA(s, opt)
		if err != nil {
			// Splits violating Eq. 18 are reported, not fatal.
			t.AddRow(fmt.Sprintf("%.3f:%.3f:%.3f", sp.e1, sp.e2, sp.e3), "-", "-", err.Error(), "-")
			continue
		}
		label := "default(19-20)"
		if sp.e1 != 0 {
			label = fmt.Sprintf("%.3f:%.3f:%.3f", sp.e1, sp.e2, sp.e3)
		}
		t.AddRow(label, res.CoverageSamples, res.VerifySamples, res.Elapsed, res.Influence)
	}
	return t.Format(w)
}

func runAblationTheta(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	d, err := LoadDataset("netphy", cfg)
	if err != nil {
		return err
	}
	s, err := ris.NewSampler(d.Graph, diffusion.LT)
	if err != nil {
		return err
	}
	s = s.WithKernel(cfg.Kernel)
	n := d.Graph.NumNodes()
	k := 50
	if cfg.Quick {
		k = 20
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 1 / float64(n)
	}
	// Oracle threshold of Eq. 14 with OPT replaced by the best influence
	// estimate observed (D-SSA's): N = 4(1-1/e)·n·(2ln(2/δ)+lnC(n,k))/(ε²·OPT).
	dres, err := core.DSSA(s, core.Options{K: k, Epsilon: cfg.Epsilon, Delta: delta, Seed: cfg.Seed,
		Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers})
	if err != nil {
		return err
	}
	opt := dres.Influence
	oracle := 4 * stats.OneMinusInvE * float64(n) *
		(2*math.Log(2/delta) + stats.LnChoose(n, k)) / (cfg.Epsilon * cfg.Epsilon * opt)
	t := &Table{
		Title:   fmt.Sprintf("Ablation: RR sets vs the Eq. 14 oracle threshold (netphy, LT, k=%d)", k),
		Headers: []string{"method", "rr-sets", "x oracle", "time"},
		Notes: []string{
			fmt.Sprintf("oracle threshold (Eq. 14 with OPT=%.0f): %.0f RR sets", opt, oracle),
			"stop-and-stare stays within a small constant of the oracle; union-bound methods overshoot",
		},
	}
	t.AddRow("D-SSA", dres.TotalSamples, fmt.Sprintf("%.2fx", float64(dres.TotalSamples)/oracle), dres.Elapsed)
	sres, err := core.SSA(s, core.Options{K: k, Epsilon: cfg.Epsilon, Delta: delta, Seed: cfg.Seed,
		Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers})
	if err != nil {
		return err
	}
	t.AddRow("SSA", sres.TotalSamples, fmt.Sprintf("%.2fx", float64(sres.TotalSamples)/oracle), sres.Elapsed)
	for _, pair := range []struct {
		id  AlgoID
		run func(*ris.Sampler, baselines.Options) (*baselines.Result, error)
	}{{AlgoIMM, baselines.IMM}, {AlgoTIMPlus, baselines.TIMPlus}} {
		res, err := pair.run(s, baselines.Options{K: k, Epsilon: cfg.Epsilon, Delta: delta, Seed: cfg.Seed,
			Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers})
		if err != nil {
			return err
		}
		t.AddRow(string(pair.id), res.TotalSamples, fmt.Sprintf("%.2fx", float64(res.TotalSamples)/oracle), res.Elapsed)
	}
	return t.Format(w)
}

func runAblationCertify(cfg Config, w io.Writer) error {
	cfg = cfg.Normalize()
	d, err := LoadDataset("nethept", cfg)
	if err != nil {
		return err
	}
	s, err := ris.NewSampler(d.Graph, diffusion.LT)
	if err != nil {
		return err
	}
	s = s.WithKernel(cfg.Kernel)
	t := &Table{
		Title:   "Ablation: scoring a seed set — DKLR certificate vs forward MC (nethept, LT)",
		Headers: []string{"k", "certificate", "cert-time", "cert-rr-sets", "mc", "mc-time", "mc-runs"},
		Notes: []string{
			"certificate: two-sided (0.05, 0.001) stopping-rule bound on I(S)",
			"the certificate wins when I(S) is small; MC wins when I(S) ~ n",
		},
	}
	ks := []int{1, 10, 100}
	if cfg.Quick {
		ks = []int{1, 10}
	}
	for _, k := range ks {
		res, err := core.DSSA(s, core.Options{K: k, Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			Seed: cfg.Seed, Workers: cfg.Workers,
			Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers})
		if err != nil {
			return err
		}
		cert, err := core.Certify(s, res.Seeds, 0.05, 0.001, cfg.Seed+9)
		if err != nil {
			return err
		}
		mcStart := timeNow()
		mc, _, err := diffusion.Spread(d.Graph, diffusion.LT, res.Seeds, diffusion.SpreadOptions{
			Runs: cfg.MCRuns, Seed: cfg.Seed + 10, Workers: cfg.Workers,
		})
		if err != nil {
			return err
		}
		mcTime := timeSince(mcStart)
		t.AddRow(k, cert.Influence, cert.Elapsed, cert.Samples, mc, mcTime, cfg.MCRuns)
	}
	return t.Format(w)
}

// RunAll executes the named experiments ("all" = every registered one).
func RunAll(ids []string, cfg Config, w io.Writer) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = IDs()
	}
	sort.Strings(ids)
	for _, id := range ids {
		e, ok := Find(id)
		if !ok {
			return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
		}
		if _, err := fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Description); err != nil {
			return err
		}
		if err := e.Run(cfg, w); err != nil {
			return err
		}
	}
	return nil
}
