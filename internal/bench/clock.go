package bench

import "time"

// timeNow/timeSince are trivial indirections kept for symmetry with the
// metric helpers; experiments use them so a future harness can inject a
// fake clock if table goldens are ever wanted.
func timeNow() time.Time                  { return time.Now() }
func timeSince(t time.Time) time.Duration { return time.Since(t) }
