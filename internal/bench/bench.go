// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§7) on the synthetic dataset stand-ins.
// Each experiment is registered by the paper artifact it reproduces
// ("table2", "fig4", "fig8", …) and emits both a human-readable table and
// machine-readable CSV rows, so EXPERIMENTS.md can record paper-vs-measured
// side by side.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"stopandstare/internal/baselines"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

// Config controls dataset scale and algorithm parameters for a harness run.
type Config struct {
	// Epsilon/Delta are the (ε,δ) of every algorithm; Delta 0 ⇒ 1/n.
	Epsilon float64
	Delta   float64
	// Seed drives the generators and algorithms.
	Seed uint64
	// GraphFile, when set, replaces every generated preset with the graph
	// loaded from this file (.ssg binary or mmap-able .sasg, sniffed) — so
	// the harness runs its experiments against a real on-disk graph instead
	// of a synthetic stand-in.
	GraphFile string
	// Workers for sampling and Monte-Carlo evaluation.
	Workers int
	// Shards ≥ 1 stores RR sets id-sharded (ris.ShardedCollection) so the
	// harness can compare flat vs sharded topologies on identical
	// workloads; results are bit-identical. ShardWorkers bounds per-shard
	// parallelism (≤0 derives Workers/Shards).
	Shards       int
	ShardWorkers int
	// Kernel selects the RR sampling implementation (plan kernels by
	// default, ris.KernelOracle for the Bernoulli oracle) so the harness
	// can compare kernels on identical workloads.
	Kernel ris.Kernel
	// ScaleMul multiplies each preset's default scale (1.0 = harness
	// defaults from gen.DefaultScales; raise toward the paper's full sizes
	// on bigger machines).
	ScaleMul float64
	// KValues overrides the seed-budget sweep; empty selects a default
	// sweep proportional to each dataset's size.
	KValues []int
	// MCRuns is the Monte-Carlo budget for scoring returned seed sets
	// (the paper uses 10,000).
	MCRuns int
	// Quick shrinks sweeps and datasets for CI / `go test -bench`.
	Quick bool
	// IncludeCELF adds CELF++ to the nethept sweeps (paper §7.2 runs it
	// only there). Off by default: even lazily, it needs n initial spread
	// estimates, which dominates an entire harness run.
	IncludeCELF bool
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ScaleMul == 0 {
		c.ScaleMul = 1
	}
	if c.MCRuns == 0 {
		if c.Quick {
			c.MCRuns = 1000
		} else {
			c.MCRuns = 10000
		}
	}
	if c.Seed == 0 {
		c.Seed = 20160626 // SIGMOD'16 conference date
	}
	return c
}

// Dataset is a generated stand-in for one of Table 2's networks.
type Dataset struct {
	Name  string
	Scale float64
	Graph *graph.Graph
}

// LoadDataset generates the named preset at cfg's scale — or, when
// cfg.GraphFile is set, opens that file instead (a .sasg file mmaps in O(1);
// the preset name only labels the output rows).
func LoadDataset(name string, cfg Config) (*Dataset, error) {
	cfg = cfg.Normalize()
	if cfg.GraphFile != "" {
		g, err := graph.OpenFileAuto(cfg.GraphFile)
		if err != nil {
			return nil, fmt.Errorf("bench: opening %s: %w", cfg.GraphFile, err)
		}
		return &Dataset{Name: name, Scale: 1, Graph: g}, nil
	}
	p, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	scale := gen.DefaultScales[name] * cfg.ScaleMul
	if cfg.Quick {
		scale *= 0.1
	}
	if scale > 1 {
		scale = 1
	}
	g, err := p.Generate(scale, cfg.Seed+hashName(name), graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", name, err)
	}
	return &Dataset{Name: name, Scale: scale, Graph: g}, nil
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// KSweep returns the default seed-budget sweep for a dataset of n nodes,
// mirroring the paper's 1…20000 sweep proportionally at reduced scale.
func (c Config) KSweep(n int) []int {
	if len(c.KValues) > 0 {
		return dedupKs(clampKs(c.KValues, n))
	}
	var fracs []float64
	if c.Quick {
		fracs = []float64{0.0005, 0.01, 0.05}
	} else {
		fracs = []float64{0.0005, 0.005, 0.01, 0.03, 0.07, 0.13}
	}
	ks := make([]int, 0, len(fracs)+1)
	ks = append(ks, 1)
	for _, f := range fracs {
		k := int(f * float64(n))
		if k > 1 {
			ks = append(ks, k)
		}
	}
	return dedupKs(clampKs(ks, n))
}

func clampKs(ks []int, n int) []int {
	out := make([]int, 0, len(ks))
	for _, k := range ks {
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		out = append(out, k)
	}
	return out
}

func dedupKs(ks []int) []int {
	out := ks[:0]
	last := -1
	for _, k := range ks {
		if k != last {
			out = append(out, k)
			last = k
		}
	}
	return out
}

// AlgoID identifies an algorithm in harness tables.
type AlgoID string

// The algorithm set of the paper's evaluation.
const (
	AlgoDSSA    AlgoID = "D-SSA"
	AlgoSSA     AlgoID = "SSA"
	AlgoIMM     AlgoID = "IMM"
	AlgoTIMPlus AlgoID = "TIM+"
	AlgoTIM     AlgoID = "TIM"
	AlgoCELFPP  AlgoID = "CELF++"
	AlgoDegree  AlgoID = "Degree"
	AlgoRandom  AlgoID = "Random"
)

// IMAlgos is the RIS comparison set used by the figure sweeps.
var IMAlgos = []AlgoID{AlgoDSSA, AlgoSSA, AlgoIMM, AlgoTIMPlus, AlgoTIM}

// Metrics aggregates everything a figure or table needs from one run.
type Metrics struct {
	Algo      AlgoID
	K         int
	Seeds     []uint32
	Influence float64 // algorithm's own estimate (0 for heuristics)
	Spread    float64 // forward-MC score of the seed set
	SpreadErr float64
	Elapsed   time.Duration
	Samples   int64 // RR sets generated (0 for non-RIS algorithms)
	Memory    int64 // approximate bytes held by RR collections
}

// RunIM executes one algorithm on one dataset under one model.
func RunIM(d *Dataset, model diffusion.Model, algo AlgoID, k int, cfg Config) (*Metrics, error) {
	cfg = cfg.Normalize()
	g := d.Graph
	m := &Metrics{Algo: algo, K: k}
	s, err := ris.NewSampler(g, model)
	if err != nil {
		return nil, err
	}
	switch algo {
	case AlgoDSSA, AlgoSSA:
		opt := core.Options{K: k, Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed,
			Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers,
			Kernel: cfg.Kernel}
		var res *core.Result
		if algo == AlgoDSSA {
			res, err = core.DSSA(s, opt)
		} else {
			res, err = core.SSA(s, opt)
		}
		if err != nil {
			return nil, err
		}
		m.Seeds, m.Influence, m.Elapsed = res.Seeds, res.Influence, res.Elapsed
		m.Samples, m.Memory = res.TotalSamples, res.MemoryBytes
	case AlgoIMM, AlgoTIM, AlgoTIMPlus:
		opt := baselines.Options{K: k, Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed,
			Workers: cfg.Workers, Shards: cfg.Shards, ShardWorkers: cfg.ShardWorkers,
			Kernel: cfg.Kernel}
		var res *baselines.Result
		switch algo {
		case AlgoIMM:
			res, err = baselines.IMM(s, opt)
		case AlgoTIM:
			res, err = baselines.TIM(s, opt)
		default:
			res, err = baselines.TIMPlus(s, opt)
		}
		if err != nil {
			return nil, err
		}
		m.Seeds, m.Influence, m.Elapsed = res.Seeds, res.Influence, res.Elapsed
		m.Samples, m.Memory = res.TotalSamples, res.MemoryBytes
	case AlgoCELFPP:
		runs := cfg.MCRuns / 10
		if runs < 100 {
			runs = 100
		}
		res, err := baselines.CELFPlusPlus(g, baselines.GreedyOptions{
			K: k, Model: model, MCRuns: runs, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		m.Seeds, m.Influence, m.Elapsed = res.Seeds, res.Influence, res.Elapsed
	case AlgoDegree:
		start := time.Now()
		m.Seeds, err = baselines.HighDegree(g, k)
		if err != nil {
			return nil, err
		}
		m.Elapsed = time.Since(start)
	case AlgoRandom:
		start := time.Now()
		m.Seeds, err = baselines.RandomSeeds(g, k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m.Elapsed = time.Since(start)
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", algo)
	}
	m.Spread, m.SpreadErr, err = diffusion.Spread(g, model, m.Seeds, diffusion.SpreadOptions{
		Runs: cfg.MCRuns, Seed: cfg.Seed + 1, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
