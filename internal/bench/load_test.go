package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadSuiteSmoke runs the serving load suite at CI scale and checks
// the report invariants the jq guards rely on: every named run present,
// percentiles ordered, the concurrent-coalescing run collapsing to one
// execution with no extra store top-ups, and the overload run shedding
// 429s without a single transport error.
func TestLoadSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load suite spins up HTTP stacks; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "load.json")
	start := time.Now()
	if err := WriteLoadJSON(path, 1, true); err != nil {
		t.Fatal(err)
	}
	t.Logf("smoke suite: %v", time.Since(start))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "stopandstare-load/1" || !rep.Smoke {
		t.Fatalf("report header: schema %q smoke %v", rep.Schema, rep.Smoke)
	}

	runs := map[string]LoadRun{}
	for _, r := range rep.Runs {
		runs[r.Name] = r
	}
	for _, name := range []string{"uniform", "zipf", "coalesce/serial", "coalesce/concurrent", "overload"} {
		r, ok := runs[name]
		if !ok {
			t.Fatalf("run %q missing from report", name)
		}
		if r.Errors != 0 {
			t.Fatalf("run %q: %d transport errors", name, r.Errors)
		}
		if r.QPS <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("run %q: qps %v p50 %v p99 %v", name, r.QPS, r.P50Ms, r.P99Ms)
		}
	}

	for _, name := range []string{"uniform", "zipf"} {
		if r := runs[name]; r.Status["200"] != r.Queries {
			t.Fatalf("%s: %d/%d OK (status %v)", name, r.Status["200"], r.Queries, r.Status)
		}
	}

	co := runs["coalesce/concurrent"]
	if co.Executed != 1 || co.Coalesced != int64(co.Queries-1) {
		t.Fatalf("coalesce/concurrent: executed %d coalesced %d of %d queries",
			co.Executed, co.Coalesced, co.Queries)
	}
	if co.Growths <= 0 || co.Growths != co.ColdGrowths {
		t.Fatalf("coalesce/concurrent: growths %d vs cold %d", co.Growths, co.ColdGrowths)
	}
	ser := runs["coalesce/serial"]
	if ser.Executed != int64(ser.Queries) || ser.Coalesced != 0 {
		t.Fatalf("coalesce/serial: executed %d coalesced %d of %d queries",
			ser.Executed, ser.Coalesced, ser.Queries)
	}
	if ser.Growths != ser.ColdGrowths {
		// Identical repeats on a warm session never top up the store again.
		t.Fatalf("coalesce/serial: growths %d vs cold %d", ser.Growths, ser.ColdGrowths)
	}

	ov := runs["overload"]
	if ov.Status["429"] == 0 {
		t.Fatalf("overload: no 429s (status %v)", ov.Status)
	}
	if ov.Status["200"] == 0 {
		t.Fatalf("overload: nothing admitted (status %v)", ov.Status)
	}
}
