package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stopandstare"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/serving"
)

// This file is the serving load bench: imserve's stack (serving.Manager
// behind serving.Server) talking to itself over real localhost HTTP, so
// the measured p50/p99 and queries/sec include JSON, the admission gate,
// coalescing and the kernel — everything a client would see. The report
// (conventionally BENCH_PR7.json) joins the CI-guarded perf trajectory:
// CI runs the suite in smoke mode and jq-asserts the serving claims
// (coalesced throughput at least serial, overload sheds 429s without
// erroring) on every commit.

// LoadRun is one load-generator measurement: a tenant/query mix driven by
// concurrent clients against an in-process server.
type LoadRun struct {
	Name    string `json:"name"`
	Tenants int    `json:"tenants"`
	Clients int    `json:"clients"`
	// Queries counts completed requests (any status); QPS divides them by
	// the wall-clock span of the run.
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	// P50Ms/P99Ms are client-observed latency percentiles across all
	// completed requests.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Status histograms HTTP statuses ("200", "429", ...); Errors counts
	// transport failures and statuses outside {200, 429, 503}.
	Status map[string]int `json:"status"`
	Errors int            `json:"errors"`
	// Executed/Coalesced/Evictions snapshot the manager counters after
	// the run (deltas: each run uses a fresh manager).
	Executed  int64 `json:"executed"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// Growths (the shared session's store top-ups) and ColdGrowths (a solo
	// cold run of the same query) are reported for the coalescing runs:
	// equal values pin "N concurrent identical queries, one top-up
	// sequence".
	Growths     int64 `json:"growths,omitempty"`
	ColdGrowths int64 `json:"cold_growths,omitempty"`
}

// LoadReport is the schema of the serving throughput report.
type LoadReport struct {
	Schema    string    `json:"schema"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPUs      int       `json:"cpus"`
	Timestamp string    `json:"timestamp"`
	Smoke     bool      `json:"smoke"`
	Runs      []LoadRun `json:"runs"`
}

// loadScale sizes the suite: smoke keeps CI fast, full measures properly.
type loadScale struct {
	nodes, edges     int
	tenants          int
	clients, queries int
}

func scaleFor(smoke bool) loadScale {
	if smoke {
		return loadScale{nodes: 600, edges: 3000, tenants: 3, clients: 8, queries: 96}
	}
	return loadScale{nodes: 4000, edges: 24000, tenants: 4, clients: 12, queries: 480}
}

// loadClient fires one /maximize request and records what came back.
type loadClient struct {
	url  string
	http *http.Client
}

func (c *loadClient) maximize(body []byte) (status int, elapsed time.Duration, err error) {
	start := time.Now()
	resp, err := c.http.Post(c.url+"/maximize", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, time.Since(start), err
	}
	// Drain so the connection is reused; the decoded body is not needed.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start), nil
}

// queryBody marshals one request body; failures are programming errors.
func queryBody(tenant string, k int, eps float64, timeoutMS int) []byte {
	b, err := json.Marshal(serving.MaximizeRequest{
		Tenant: tenant, K: k, Epsilon: eps, TimeoutMS: timeoutMS,
	})
	if err != nil {
		panic(err)
	}
	return b
}

// runLoad drives queries through clients concurrent workers. pick(i,
// rng) chooses the body of the i-th query. The returned run has status,
// latency and manager-counter accounting filled in.
func runLoad(name string, mgr *serving.Manager, ts *httptest.Server, sc loadScale,
	clients, queries int, pick func(i int, rng *rand.Rand) []byte) LoadRun {
	run := LoadRun{Name: name, Tenants: sc.tenants, Clients: clients, Status: map[string]int{}}
	latencies := make([]time.Duration, queries)
	statuses := make([]int, queries)
	errs := make([]error, queries)

	var next atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &loadClient{url: ts.URL, http: ts.Client()}
			rng := rand.New(rand.NewSource(int64(c) + 1))
			<-gate
			for {
				i := int(next.Add(1)) - 1
				if i >= queries {
					return
				}
				statuses[i], latencies[i], errs[i] = cl.maximize(pick(i, rng))
			}
		}(c)
	}
	start := time.Now()
	close(gate)
	wg.Wait()
	span := time.Since(start)

	for i := 0; i < queries; i++ {
		switch {
		case errs[i] != nil:
			run.Errors++
		case statuses[i] == http.StatusOK, statuses[i] == http.StatusTooManyRequests,
			statuses[i] == http.StatusServiceUnavailable:
			run.Status[fmt.Sprint(statuses[i])]++
		default:
			run.Errors++
		}
	}
	run.Queries = queries
	run.QPS = float64(queries) / span.Seconds()
	run.P50Ms, run.P99Ms = percentilesMS(latencies)
	st := mgr.Stats()
	run.Executed, run.Coalesced, run.Evictions = st.Executed, st.Coalesced, st.Evictions
	return run
}

// percentilesMS returns the 50th and 99th latency percentiles in
// milliseconds (nearest-rank).
func percentilesMS(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	toMS := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	return toMS(rank(0.50)), toMS(rank(0.99))
}

// tenantName names the i-th bench tenant.
func tenantName(i int) string { return fmt.Sprintf("tenant%d", i) }

// newLoadStack builds a fresh manager over the given graphs plus an
// httptest server in front of it. Each run gets its own manager (cold
// stores, clean counters); the graphs — and their compiled plans — are
// shared across runs, exactly like a fleet restarting its serving layer
// over long-lived tenant data.
func newLoadStack(graphs []*graph.Graph, cfg serving.Config, seed uint64) (*serving.Manager, *httptest.Server, error) {
	mgr := serving.NewManager(cfg)
	for i, g := range graphs {
		if err := mgr.AddTenant(tenantName(i), serving.TenantConfig{
			Graph: g, Model: stopandstare.IC,
			Session: stopandstare.SessionOptions{Seed: seed + uint64(i)},
		}); err != nil {
			mgr.Close()
			return nil, nil, err
		}
	}
	ts := httptest.NewServer(serving.NewServer(mgr, serving.ServerConfig{}).Handler())
	return mgr, ts, nil
}

// RunLoadSuite measures the serving layer under four workloads:
//
//   - uniform: clients spread queries evenly over tenants and k values —
//     every tenant's store stays warm, the baseline serving mix.
//   - zipf: tenant choice is Zipf-skewed (s=1.2), the realistic fleet
//     shape where a few tenants dominate; under a store budget the cold
//     tail pays eviction/re-admission while the head stays resident.
//   - coalesce/serial vs coalesce/concurrent: N identical queries on one
//     tenant, each against a reset (cold) tenant vs all-at-once on one.
//     Concurrent arrivals share one execution (the manager holds the
//     leader until every follower joins its flight, so the "one
//     execution" count is deterministic), which CI guards as coalesced
//     throughput ≥ unshared serial throughput.
//   - overload: a burst of distinct queries against MaxInFlight=2 with a
//     2-deep queue — the excess must come back as 429/503 backpressure,
//     not as errors or memory growth.
func RunLoadSuite(seed uint64, smoke bool) (*LoadReport, error) {
	sc := scaleFor(smoke)
	rep := &LoadReport{
		Schema:    "stopandstare-load/1",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Smoke:     smoke,
	}
	graphs := make([]*graph.Graph, sc.tenants)
	for i := range graphs {
		g, err := gen.ChungLu(sc.nodes, int64(sc.edges), 2.1, seed+uint64(100+i),
			graph.BuildOptions{Model: graph.WeightedCascade})
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	ks := []int{5, 10, 20}
	const eps = 0.3

	// Uniform and Zipf tenant mixes. The queue is sized to the client
	// count: a closed-loop load (each client one request at a time) must
	// always be admitted, even on a single-core box where the default
	// GOMAXPROCS-derived capacity would be smaller than the client fleet —
	// these runs measure latency under load, not backpressure.
	for _, mix := range []string{"uniform", "zipf"} {
		mgr, ts, err := newLoadStack(graphs, serving.Config{MaxQueued: sc.clients}, seed)
		if err != nil {
			return nil, err
		}
		pick := func(i int, rng *rand.Rand) []byte {
			ti := rng.Intn(sc.tenants)
			if mix == "zipf" {
				// Skew tenant choice: rank 0 dominates, the tail goes cold.
				// A fresh Zipf over the client's own source keeps clients
				// independent (rand.Zipf is not concurrency-safe).
				ti = int(rand.NewZipf(rng, 1.2, 1, uint64(sc.tenants-1)).Uint64())
			}
			return queryBody(tenantName(ti), ks[rng.Intn(len(ks))], eps, 0)
		}
		rep.Runs = append(rep.Runs, runLoad(mix, mgr, ts, sc, sc.clients, sc.queries, pick))
		ts.Close()
		mgr.Close()
	}

	// Coalescing pair: the same nco identical queries, unshared-serial vs
	// concurrent. Serial resets the tenant between queries so each pays
	// its own cold execution — the no-sharing baseline; with a warm
	// session the repeats would be near-free (that amortization is
	// guarded separately by the session perf suite) and the comparison
	// would measure HTTP noise. Coalescing collapses the same N
	// executions into one when the arrivals overlap, which is what the
	// qps ratio — CI-guarded as concurrent ≥ serial — shows.
	nco := sc.clients * 2
	body := queryBody(tenantName(0), 10, eps, 0)
	{
		mgr, ts, err := newLoadStack(graphs, serving.Config{}, seed)
		if err != nil {
			return nil, err
		}
		var resetErr error
		run := runLoad("coalesce/serial", mgr, ts, sc, 1, nco,
			func(i int, _ *rand.Rand) []byte {
				if i > 0 {
					// Single client, so pick runs between requests: drop
					// and re-admit the tenant to make the next query cold.
					if err := mgr.RemoveTenant(tenantName(0)); err != nil {
						resetErr = err
					}
					if err := mgr.AddTenant(tenantName(0), serving.TenantConfig{
						Graph: graphs[0], Model: stopandstare.IC,
						Session: stopandstare.SessionOptions{Seed: seed},
					}); err != nil {
						resetErr = err
					}
				}
				return body
			})
		if resetErr != nil {
			return nil, resetErr
		}
		run.Growths, run.ColdGrowths = coalesceGrowths(mgr, graphs[0], seed)
		rep.Runs = append(rep.Runs, run)
		ts.Close()
		mgr.Close()
	}
	{
		var mgr *serving.Manager
		cfg := serving.Config{
			MaxInFlight: sc.clients,
			// Hold the leader until every follower has joined its flight:
			// with all nco queries identical and concurrent, exactly one
			// executes — deterministically, not just on a fast machine.
			OnExecute: func(string) {
				deadline := time.Now().Add(30 * time.Second)
				for mgr.Stats().Coalesced < int64(nco-1) && time.Now().Before(deadline) {
					time.Sleep(50 * time.Microsecond)
				}
			},
		}
		var ts *httptest.Server
		var err error
		mgr, ts, err = newLoadStack(graphs, cfg, seed)
		if err != nil {
			return nil, err
		}
		run := runLoad("coalesce/concurrent", mgr, ts, sc, nco, nco,
			func(int, *rand.Rand) []byte { return body })
		run.Growths, run.ColdGrowths = coalesceGrowths(mgr, graphs[0], seed)
		rep.Runs = append(rep.Runs, run)
		ts.Close()
		mgr.Close()
	}

	// Overload: a burst of distinct (non-coalescable) queries against a
	// tiny admission gate. Timeouts are short so queued requests shed as
	// 503 instead of stretching the run.
	{
		var mgr *serving.Manager
		cfg := serving.Config{
			MaxInFlight: 2,
			MaxQueued:   -1, // no wait queue: every excess request is a 429
			// Hold the first executions until at least one rejection has
			// happened, so an overloaded run provably sheds load (the CI
			// guard asserts 429s > 0) instead of racing the burst.
			OnExecute: func(string) {
				deadline := time.Now().Add(30 * time.Second)
				for mgr.Stats().Rejected < 1 && time.Now().Before(deadline) {
					time.Sleep(50 * time.Microsecond)
				}
			},
		}
		var ts *httptest.Server
		var err error
		mgr, ts, err = newLoadStack(graphs, cfg, seed)
		if err != nil {
			return nil, err
		}
		nov := sc.clients * 4
		pick := func(i int, rng *rand.Rand) []byte {
			// Distinct (tenant, k) per query index so nothing coalesces.
			return queryBody(tenantName(i%sc.tenants), 2+i/sc.tenants, eps, 2000)
		}
		rep.Runs = append(rep.Runs, runLoad("overload", mgr, ts, sc, nov, nov, pick))
		ts.Close()
		mgr.Close()
	}
	return rep, nil
}

// coalesceGrowths reads the shared session's top-up count and computes the
// cold-oracle count for the same query, so the report can pin "no extra
// top-ups" mechanically.
func coalesceGrowths(mgr *serving.Manager, g *graph.Graph, seed uint64) (got, want int64) {
	for _, ten := range mgr.Stats().Tenants {
		if ten.Name == tenantName(0) {
			got = ten.Session.Growths
		}
	}
	sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{Seed: seed})
	if err != nil {
		return got, -1
	}
	if _, err := sess.Maximize(stopandstare.Query{K: 10, Epsilon: 0.3}); err != nil {
		return got, -1
	}
	return got, sess.Stats().Growths
}

// WriteLoadJSON runs the load suite and writes the report to path
// (conventionally BENCH_PR<N>.json at the repo root).
func WriteLoadJSON(path string, seed uint64, smoke bool) error {
	rep, err := RunLoadSuite(seed, smoke)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing load report: %w", err)
	}
	return nil
}
