package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stopandstare/internal/diffusion"
)

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Epsilon != 0.1 || c.Workers < 1 || c.ScaleMul != 1 || c.MCRuns != 10000 || c.Seed == 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	q := Config{Quick: true}.Normalize()
	if q.MCRuns != 1000 {
		t.Fatalf("quick MCRuns %d", q.MCRuns)
	}
}

func TestKSweep(t *testing.T) {
	c := Config{Quick: true}.Normalize()
	ks := c.KSweep(10000)
	if len(ks) == 0 || ks[0] != 1 {
		t.Fatalf("sweep %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("sweep not increasing: %v", ks)
		}
	}
	// Overrides are clamped and deduped.
	c.KValues = []int{0, 5, 5, 999999}
	ks = c.KSweep(100)
	want := []int{1, 5, 100}
	if len(ks) != len(want) {
		t.Fatalf("override sweep %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("override sweep %v want %v", ks, want)
		}
	}
}

func TestLoadDatasetQuick(t *testing.T) {
	d, err := LoadDataset("nethept", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() == 0 || d.Scale <= 0 {
		t.Fatalf("bad dataset %+v", d)
	}
	if _, err := LoadDataset("bogus", Config{}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestRunIMAllAlgos(t *testing.T) {
	d, err := LoadDataset("nethept", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quick: true, Workers: 2, MCRuns: 500}
	for _, algo := range []AlgoID{AlgoDSSA, AlgoSSA, AlgoIMM, AlgoTIM, AlgoTIMPlus, AlgoDegree, AlgoRandom} {
		m, err := RunIM(d, diffusion.LT, algo, 10, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(m.Seeds) != 10 || m.Spread <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", algo, m)
		}
	}
	if _, err := RunIM(d, diffusion.LT, AlgoID("bogus"), 10, cfg); err == nil {
		t.Fatal("unknown algo should fail")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// DESIGN.md §5 promises these artifact ids.
	want := []string{"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table3", "table4", "fig8", "ablation-eps", "ablation-theta", "ablation-certify"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(IDs()), len(want))
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find should reject unknown ids")
	}
}

func TestRunAllUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll([]string{"nope"}, Config{Quick: true}, &buf); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestTable2Experiment(t *testing.T) {
	e, _ := Find("table2")
	var buf bytes.Buffer
	if err := e.Run(Config{Quick: true, Workers: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"nethept", "friendster", "lt-valid"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table2 output missing %q:\n%s", name, out)
		}
	}
}

func TestTable4Experiment(t *testing.T) {
	e, _ := Find("table4")
	var buf bytes.Buffer
	if err := e.Run(Config{Quick: true, Workers: 2}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "topic") {
		t.Fatalf("table4 output:\n%s", buf.String())
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Notes:   []string{"note"},
	}
	tb.AddRow("x", 1)
	tb.AddRow(int64(1500000), 2*time.Second)
	tb.AddRow(3.14159, int64(12345))
	var buf bytes.Buffer
	if err := tb.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "# note") {
		t.Fatalf("format output:\n%s", out)
	}
	if !strings.Contains(out, "1.5 M") {
		t.Fatalf("count formatting missing:\n%s", out)
	}
	if !strings.Contains(out, "2.00 s") {
		t.Fatalf("duration formatting missing:\n%s", out)
	}
	var csv bytes.Buffer
	if err := tb.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,bb\n") {
		t.Fatalf("csv output:\n%s", csv.String())
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[int64]string{
		999:        "999",
		15000:      "15 K",
		2500000:    "2.5 M",
		3000000000: "3.0 G",
	}
	for v, want := range cases {
		if got := formatCount(v); got != want {
			t.Fatalf("formatCount(%d) = %q want %q", v, got, want)
		}
	}
	if formatBytes(2048) != "2.00 KB" {
		t.Fatalf("formatBytes: %s", formatBytes(2048))
	}
	if formatBytes(3<<20) != "3.00 MB" {
		t.Fatalf("formatBytes: %s", formatBytes(3<<20))
	}
	durs := map[time.Duration]string{
		500 * time.Microsecond: "500 µs",
		30 * time.Millisecond:  "30 ms",
		90 * time.Minute:       "1.50 h",
	}
	for d, want := range durs {
		if got := formatDuration(d); got != want {
			t.Fatalf("formatDuration(%v) = %q want %q", d, got, want)
		}
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("enron") != hashName("enron") {
		t.Fatal("hashName not deterministic")
	}
	if hashName("enron") == hashName("orkut") {
		t.Fatal("hashName collision on preset names")
	}
}

func TestAblationCertifyExperiment(t *testing.T) {
	e, ok := Find("ablation-certify")
	if !ok {
		t.Fatal("ablation-certify not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(Config{Quick: true, Workers: 2, MCRuns: 500}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "certificate") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
