package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = formatDuration(v)
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = formatCount(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatDuration renders like the paper's tables (".5 s", ".27 h").
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0f µs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.0f ms", float64(d)/float64(time.Millisecond))
	case d < time.Hour:
		return fmt.Sprintf("%.2f s", d.Seconds())
	default:
		return fmt.Sprintf("%.2f h", d.Hours())
	}
}

// formatCount renders sample counts like the paper ("96 K", "4.8 M").
func formatCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1f G", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1f M", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.0f K", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Format writes an aligned text rendering.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes comma-separated rows (quotes are not needed for our cells).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
