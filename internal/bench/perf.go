package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"testing"
	"time"

	"stopandstare"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
)

// PerfRecord is one micro-benchmark measurement in the perf-trajectory
// report: the same numbers `go test -bench` prints, in machine-readable
// form so successive PRs can be compared mechanically.
type PerfRecord struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// PerfReport is the schema of BENCH_PR<N>.json: hot-path measurements of
// the paired before/after implementations that coexist in the tree (arena
// scan vs postings walk, per-budget rescan vs incremental sweep, serial vs
// parallel generation), so each PR's JSON pins the win it claims.
type PerfReport struct {
	Schema    string       `json:"schema"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Timestamp string       `json:"timestamp"`
	Results   []PerfRecord `json:"results"`
}

func record(name string, r testing.BenchmarkResult) PerfRecord {
	return PerfRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// RunPerfSuite measures the RIS hot paths on a synthetic power-law graph.
// Every pair below keeps the old implementation alive as the baseline, so
// the report shows the delta, not just the new number.
//
// The generate/plan vs generate/oracle pairs compare the compiled sampling
// kernels (PR 4) against the Bernoulli/binary-search oracle, single-worker
// so the ratio is pure kernel cost. The primary pair runs on a high-degree
// weighted-cascade preset (epinions-scale node count at orkut-like average
// in-degree ≈ 40) — the regime the paper's Table 2 networks live in, where
// geometric skipping collapses d_in draws per node to ~2; the _lowdeg pair
// shows the same kernels on the sparser base graph, and the _lt pair
// compares the alias walk against the binary-search walk.
func RunPerfSuite(seed uint64) (*PerfReport, error) {
	g, err := gen.ChungLu(20000, 120000, 2.1, seed+9, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		return nil, err
	}
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		return nil, err
	}
	// High-degree WC preset: geometric skipping bites when d_in is large
	// (expected live in-edges per node is 1 regardless of degree).
	hi, err := gen.ChungLu(25000, 1000000, 2.1, seed+11, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		return nil, err
	}
	sHi, err := ris.NewSampler(hi, diffusion.IC)
	if err != nil {
		return nil, err
	}
	sHiLT, err := ris.NewSampler(hi, diffusion.LT)
	if err != nil {
		return nil, err
	}
	const streamLen = 20000
	const hiStreamLen = 2000
	col := ris.NewCollection(s, seed+1, 0)
	col.Generate(streamLen)

	// Seed set + mark vector for the coverage pair.
	seeds := maxcover.Greedy(col, col.Len(), 50).Seeds
	mark := make([]bool, g.NumNodes())
	for _, v := range seeds {
		mark[v] = true
	}
	half := col.Len() / 2

	// Cost model + budget sweep for the budgeted pair.
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = float64(v%5) + 1
	}
	budgets := []float64{5, 10, 20, 40, 80, 160}

	rep := &PerfReport{
		Schema:    "stopandstare-perf/1",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	add := func(name string, fn func(b *testing.B)) {
		rep.Results = append(rep.Results, record(name, testing.Benchmark(fn)))
	}

	add("generate/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := ris.NewCollection(s, uint64(i)+seed+100, 1)
			c.Generate(streamLen)
		}
	})
	add("generate/parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := ris.NewCollection(s, uint64(i)+seed+100, 0)
			c.Generate(streamLen)
		}
	})
	// Flat vs sharded on the same workload: one shard must not regress the
	// flat path, and multiple shards show the shard-parallel topology.
	add("generate/sharded1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := ris.NewShardedCollection(s, uint64(i)+seed+100, 1, 0)
			c.Generate(streamLen)
		}
	})
	add("generate/sharded4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := ris.NewShardedCollection(s, uint64(i)+seed+100, 4, 0)
			c.Generate(streamLen)
		}
	})
	// Remote pair: the sharded1 workload pushed through the cross-process
	// wire protocol — an in-process ShardServer dialed over net.Pipe, so the
	// delta against generate/sharded1 is pure protocol cost (framing, chunk
	// encode/decode, mirror append) without kernel sockets.
	remoteSrv := ris.NewShardServer(g, ris.ShardServerOptions{})
	remoteDial := func(string) (net.Conn, error) {
		c1, c2 := net.Pipe()
		go remoteSrv.ServeConn(c2)
		return c1, nil
	}
	add("generate/remote1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := ris.NewStore(s, uint64(i)+seed+100, ris.StoreOptions{
				RemoteWorkers: []string{"pipe"}, RemoteDial: remoteDial,
			})
			c.Generate(streamLen)
		}
	})
	// Kernel pairs: plan vs oracle, 1 worker, identical workloads.
	genKernel := func(name string, smp *ris.Sampler, k ris.Kernel, n int) {
		add(name, func(b *testing.B) {
			b.ReportAllocs()
			sk := smp.WithKernel(k)
			for i := 0; i < b.N; i++ {
				c := ris.NewCollection(sk, uint64(i)+seed+200, 1)
				c.Generate(n)
			}
		})
	}
	// The acceptance pair: the high-degree WC preset.
	genKernel("generate/oracle", sHi, ris.KernelOracle, hiStreamLen)
	genKernel("generate/plan", sHi, ris.KernelPlan, hiStreamLen)
	// Same kernels on the sparser base graph.
	genKernel("generate/oracle_lowdeg", s, ris.KernelOracle, streamLen)
	genKernel("generate/plan_lowdeg", s, ris.KernelPlan, streamLen)
	// Alias walk vs binary-search walk under LT on the high-degree preset.
	genKernel("generate/oracle_lt", sHiLT, ris.KernelOracle, hiStreamLen)
	genKernel("generate/plan_lt", sHiLT, ris.KernelPlan, hiStreamLen)
	add("coverage_range/scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col.CoverageRange(mark, half, col.Len())
		}
	})
	add("coverage_range/postings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col.CoverageRangeSeeds(seeds, half, col.Len())
		}
	})
	// Remote coverage: the same window counted worker-side from the worker's
	// CSR blocks — one RPC shipping seed ids and one i64 back, never arenas.
	// The identity probe pins it to the flat count before timing.
	remoteCol := ris.NewStore(s, seed+1, ris.StoreOptions{
		RemoteWorkers: []string{"pipe"}, RemoteDial: remoteDial,
	})
	remoteCol.GenerateTo(col.Len())
	if got, want := remoteCol.CoverageRangeSeeds(seeds, half, col.Len()), col.CoverageRangeSeeds(seeds, half, col.Len()); got != want {
		return nil, fmt.Errorf("bench: remote coverage %d drifted from flat %d", got, want)
	}
	add("coverage_range/remote", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			remoteCol.CoverageRangeSeeds(seeds, half, col.Len())
		}
	})
	add("budget_sweep/rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bud := range budgets {
				maxcover.GreedyBudgeted(col, col.Len(), costs, bud)
			}
		}
	})
	add("budget_sweep/incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol := maxcover.NewBudgetedSolver(col, costs)
			for _, bud := range budgets {
				sol.Solve(col.Len(), bud)
			}
		}
	})

	// Graph-load pair: the .ssg binary loader (full read, parse, heap copy,
	// inCum recompute) vs the .sasg mmap open (header validation only; the
	// 1M-edge adjacency never touches memory until queried). Both operate
	// on the same high-degree preset written to disk once up front. The
	// mapped op includes Close so the benchmark loop doesn't accumulate
	// mappings.
	tmpDir, err := os.MkdirTemp("", "sasg-perf")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	ssgPath := filepath.Join(tmpDir, "hi.ssg")
	sasgPath := filepath.Join(tmpDir, "hi.sasg")
	if err := hi.SaveBinaryFile(ssgPath); err != nil {
		return nil, err
	}
	if err := hi.WriteMappedFile(sasgPath); err != nil {
		return nil, err
	}
	if probe, err := graph.OpenMapped(sasgPath); err != nil {
		return nil, err
	} else if probe.NumNodes() != hi.NumNodes() || probe.NumEdges() != hi.NumEdges() {
		probe.Close()
		return nil, fmt.Errorf("bench: mapped probe %d/%d drifted from source %d/%d",
			probe.NumNodes(), probe.NumEdges(), hi.NumNodes(), hi.NumEdges())
	} else if err := probe.Close(); err != nil {
		return nil, err
	}
	add("graphload/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graph.LoadBinaryFile(ssgPath)
			if err != nil {
				b.Fatal(err)
			}
			_ = g
		}
	})
	add("graphload/mapped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graph.OpenMapped(sasgPath)
			if err != nil {
				b.Fatal(err)
			}
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Serving-session trio: the cost of one D-SSA query served cold (fresh
	// session: new store, resampled stream) vs warm (long-lived session:
	// the repeated query tops up nothing and pays selection only) vs warm
	// with a new k (zero sampling, but the new k's solver folds the
	// resident stream into fresh gain counts). The warm records are the
	// PR 5 claim; the suite first proves the warm result bit-identical to
	// the cold one before timing anything.
	sessOpt := stopandstare.SessionOptions{Seed: seed + 300}
	sessQuery := stopandstare.Query{K: 50, Epsilon: 0.1}
	coldCheck, err := func() (*stopandstare.Result, error) {
		sess, err := stopandstare.NewSession(g, diffusion.IC, sessOpt)
		if err != nil {
			return nil, err
		}
		return sess.Maximize(sessQuery)
	}()
	if err != nil {
		return nil, err
	}
	warmSess, err := stopandstare.NewSession(g, diffusion.IC, sessOpt)
	if err != nil {
		return nil, err
	}
	warmCheck, err := warmSess.Maximize(sessQuery) // warm-up + identity probe
	if err != nil {
		return nil, err
	}
	if warm2, err := warmSess.Maximize(sessQuery); err != nil {
		return nil, err
	} else if !slices.Equal(warm2.Seeds, coldCheck.Seeds) ||
		!slices.Equal(warmCheck.Seeds, coldCheck.Seeds) ||
		warm2.Samples != coldCheck.Samples {
		return nil, fmt.Errorf("bench: warm session drifted from cold run: %v/%d vs %v/%d",
			warm2.Seeds, warm2.Samples, coldCheck.Seeds, coldCheck.Samples)
	}
	add("session/cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := stopandstare.NewSession(g, diffusion.IC, sessOpt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("session/warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := warmSess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("session/warm_newk", func(b *testing.B) {
		b.ReportAllocs()
		// Alternate two fresh k values so every op pays the new-k cost
		// (each query rewinds the other k's solver to a smaller prefix).
		ks := [2]int{40, 60}
		for i := 0; i < b.N; i++ {
			q := sessQuery
			q.K = ks[i%2]
			if _, err := warmSess.Maximize(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Spill-tier trio (PR 9): the session/cold and session/warm workloads
	// re-run under resident-byte budgets that leave ~50% and ~90% of the
	// flat store's bytes on the disk spill tier. generate_* pays the spill
	// writes inside the cold run; warm_* pays fault-in through the read-only
	// mappings on the repeated query. The resident_* records are gauges, not
	// timings: Iterations 1 and BytesPerOp = Session.Stats().StoreBytes, so
	// the committed JSON pins the resident-ratio claim (spilled90 ≤ 0.5×
	// flat) next to the warm-latency one (warm_spilled90 ≤ 2× warm_flat).
	// Identity probes run before any timing: every budget must reproduce
	// the flat session's Seeds and sample count exactly.
	flatStoreBytes := warmSess.Stats().StoreBytes
	gauge := func(name string, bytes int64) {
		rep.Results = append(rep.Results, PerfRecord{Name: name, Iterations: 1, BytesPerOp: bytes})
	}
	add("spill/generate_flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := stopandstare.NewSession(g, diffusion.IC, sessOpt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("spill/warm_flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := warmSess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	gauge("spill/resident_flat", flatStoreBytes)
	for _, tier := range []struct {
		name   string
		budget int64
	}{
		{"spilled50", flatStoreBytes / 2},
		{"spilled90", flatStoreBytes / 10},
	} {
		spillOpt := sessOpt
		spillOpt.SpillBudgetBytes = tier.budget
		spillOpt.SpillDir = tmpDir
		probe, err := stopandstare.NewSession(g, diffusion.IC, spillOpt)
		if err != nil {
			return nil, err
		}
		res, err := probe.Maximize(sessQuery)
		if err != nil {
			return nil, err
		}
		if !slices.Equal(res.Seeds, coldCheck.Seeds) || res.Samples != coldCheck.Samples {
			return nil, fmt.Errorf("bench: %s session drifted from flat: %v/%d vs %v/%d",
				tier.name, res.Seeds, res.Samples, coldCheck.Seeds, coldCheck.Samples)
		}
		if st := probe.Stats(); st.SpillFileBytes == 0 {
			return nil, fmt.Errorf("bench: %s budget %d spilled nothing (flat store %d bytes)",
				tier.name, tier.budget, flatStoreBytes)
		}
		add("spill/generate_"+tier.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess, err := stopandstare.NewSession(g, diffusion.IC, spillOpt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Maximize(sessQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("spill/warm_"+tier.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := probe.Maximize(sessQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := probe.Stats()
		gauge("spill/resident_"+tier.name, st.StoreBytes)
		gauge("spill/spilled_bytes_"+tier.name, st.StoreSpilledBytes)
	}

	// Durability pair (PR 10): time-to-first-answer for a cold process
	// start (fresh session, full resample + solve) vs a recovered start
	// (session construction maps a committed snapshot read-only, the first
	// query serves from the recovered stream without sampling). A seeding
	// session persists the converged store once up front; the identity
	// probe proves a recovered session's first answer bit-identical to the
	// cold one and that it actually recovered rather than resampled, before
	// anything is timed. The snapshot_bytes gauge pins what the recovery
	// reads.
	stateDir := filepath.Join(tmpDir, "state")
	recOpt := sessOpt
	recOpt.StateDir = stateDir
	snapInfo, err := func() (ris.SnapshotInfo, error) {
		seeder, err := stopandstare.NewSession(g, diffusion.IC, recOpt)
		if err != nil {
			return ris.SnapshotInfo{}, err
		}
		if _, err := seeder.Maximize(sessQuery); err != nil {
			return ris.SnapshotInfo{}, err
		}
		return seeder.Persist()
	}()
	if err != nil {
		return nil, err
	}
	recProbe, err := stopandstare.NewSession(g, diffusion.IC, recOpt)
	if err != nil {
		return nil, err
	}
	if st := recProbe.Stats(); st.Recovered == 0 {
		return nil, fmt.Errorf("bench: recovered session resampled instead of recovering")
	}
	if res, err := recProbe.Maximize(sessQuery); err != nil {
		return nil, err
	} else if !slices.Equal(res.Seeds, coldCheck.Seeds) || res.Samples != coldCheck.Samples {
		return nil, fmt.Errorf("bench: recovered session drifted from cold run: %v/%d vs %v/%d",
			res.Seeds, res.Samples, coldCheck.Seeds, coldCheck.Samples)
	}
	add("durability/cold_start", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := stopandstare.NewSession(g, diffusion.IC, sessOpt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("durability/recovered_start", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess, err := stopandstare.NewSession(g, diffusion.IC, recOpt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Maximize(sessQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	gauge("durability/snapshot_bytes", snapInfo.Bytes)
	return rep, nil
}

// WritePerfJSON runs the perf suite and writes the report to path
// (conventionally BENCH_PR<N>.json at the repo root).
func WritePerfJSON(path string, seed uint64) error {
	rep, err := RunPerfSuite(seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing perf report: %w", err)
	}
	return nil
}
