package cliutil

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"64KiB", 64 << 10, true},
		{"512MiB", 512 << 20, true},
		{"2GiB", 2 << 30, true},
		{" 8 KiB ", 8 << 10, true},
		{"-1", 0, false},
		{"12MB", 0, false},
		{"KiB", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSize(%q): err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
