// Package cliutil holds tiny helpers shared by the cmd/ tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a byte count with an optional binary-unit suffix:
// "1048576", "64KiB", "512MiB", "2GiB". A bare number is bytes; the empty
// string is 0 (callers treat 0 as "unset").
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			s = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 1048576, 64KiB, 512MiB, 2GiB)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n * mult, nil
}
