package gen

import (
	"fmt"
	"math"

	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// Topic is a synthetic stand-in for the paper's Table 4 tweet-derived topics
// ("bill clinton, iran, north korea, ..." etc.): a keyword set plus a
// per-node relevance weight proportional to how often the node's synthetic
// tweets contain the topic's keywords. Nodes with weight 0 are outside the
// targeted group.
type Topic struct {
	Name     string
	Keywords []string
	// Weights[v] is node v's benefit b(v) ≥ 0; the TVM objective maximises
	// Σ_v b(v)·Pr[v activated].
	Weights []float64
	// Users is the number of nodes with positive weight (Table 4 column).
	Users int
	// Gamma is Σ_v Weights[v] (Γ in the WRIS analysis).
	Gamma float64
}

// TopicSpec parameterises the synthetic interest model.
type TopicSpec struct {
	Name     string
	Keywords []string
	// Fraction of nodes interested in the topic (Table 4: 997,034/41.7M ≈
	// 2.4% for topic 1; 507,465/41.7M ≈ 1.2% for topic 2).
	Fraction float64
	// ZipfS is the Zipf exponent of keyword-mention counts per user.
	ZipfS float64
}

// DefaultTopicSpecs mirrors Table 4 of the paper.
var DefaultTopicSpecs = []TopicSpec{
	{
		Name:     "topic1-politics",
		Keywords: []string{"bill clinton", "iran", "north korea", "president obama", "obama"},
		Fraction: 0.024,
		ZipfS:    1.5,
	},
	{
		Name:     "topic2-entertainment",
		Keywords: []string{"senator ted kenedy", "oprah", "kayne west", "marvel", "jackass"},
		Fraction: 0.012,
		ZipfS:    1.5,
	},
}

// GenerateTopic synthesises a targeted group over g following spec.
// Interest is correlated with (in-degree+1)^0.3 — heavier users tweet more —
// and mention counts follow a Zipf(s) distribution, matching the skewed
// relevance weights the paper extracts from real tweets (§7.3.2).
func GenerateTopic(g *graph.Graph, spec TopicSpec, seed uint64) (*Topic, error) {
	if spec.Fraction <= 0 || spec.Fraction > 1 {
		return nil, fmt.Errorf("gen: topic fraction must be in (0,1], got %v", spec.Fraction)
	}
	if spec.ZipfS <= 1 {
		return nil, fmt.Errorf("gen: Zipf exponent must exceed 1, got %v", spec.ZipfS)
	}
	n := g.NumNodes()
	r := rng.New(seed)
	t := &Topic{Name: spec.Name, Keywords: spec.Keywords, Weights: make([]float64, n)}
	// Interest probability per node, scaled so the expected targeted-group
	// size is Fraction*n while remaining degree-correlated.
	prop := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		prop[v] = math.Pow(float64(g.InDegree(uint32(v))+1), 0.3)
		total += prop[v]
	}
	scale := spec.Fraction * float64(n) / total
	for v := 0; v < n; v++ {
		p := prop[v] * scale
		if p > 1 {
			p = 1
		}
		if r.Float64() < p {
			// Zipf-distributed mention count via inverse transform on the
			// continuous approximation: count = floor(u^(-1/(s-1))).
			u := r.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			count := math.Floor(math.Pow(u, -1/(spec.ZipfS-1)))
			if count > 1e6 {
				count = 1e6
			}
			if count < 1 {
				count = 1
			}
			t.Weights[v] = count
			t.Users++
			t.Gamma += count
		}
	}
	if t.Users == 0 {
		return nil, fmt.Errorf("gen: topic %q produced an empty targeted group", spec.Name)
	}
	return t, nil
}

// GenerateDefaultTopics produces the two Table 4 stand-in topics over g.
func GenerateDefaultTopics(g *graph.Graph, seed uint64) ([]*Topic, error) {
	out := make([]*Topic, 0, len(DefaultTopicSpecs))
	for i, spec := range DefaultTopicSpecs {
		t, err := GenerateTopic(g, spec, seed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
