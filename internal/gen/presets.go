package gen

import (
	"fmt"
	"sort"

	"stopandstare/internal/graph"
)

// Preset describes one of the paper's Table 2 datasets and how its synthetic
// stand-in is generated. Nodes/Edges are the full-size figures from Table 2;
// the generator is invoked at Nodes*scale / Edges*scale.
type Preset struct {
	Name       string
	Nodes      int
	Edges      int64
	AvgDegree  float64
	Directed   bool    // false => undirected source, two arcs per edge
	Gamma      float64 // Chung–Lu power-law exponent
	Discipline string
}

// Presets mirrors Table 2 of the paper.
var Presets = []Preset{
	{Name: "nethept", Nodes: 15233, Edges: 59000, AvgDegree: 4.1, Directed: true, Gamma: 2.6, Discipline: "citation"},
	{Name: "netphy", Nodes: 37154, Edges: 181000, AvgDegree: 13.4, Directed: true, Gamma: 2.6, Discipline: "citation"},
	{Name: "enron", Nodes: 36692, Edges: 184000, AvgDegree: 5.0, Directed: true, Gamma: 2.2, Discipline: "communication"},
	{Name: "epinions", Nodes: 131828, Edges: 841000, AvgDegree: 13.4, Directed: true, Gamma: 2.1, Discipline: "social"},
	{Name: "dblp", Nodes: 655000, Edges: 2000000, AvgDegree: 6.1, Directed: true, Gamma: 2.5, Discipline: "citation"},
	{Name: "orkut", Nodes: 3000000, Edges: 234000000, AvgDegree: 78, Directed: false, Gamma: 2.1, Discipline: "social"},
	{Name: "twitter", Nodes: 41700000, Edges: 1500000000, AvgDegree: 70.5, Directed: true, Gamma: 2.0, Discipline: "social"},
	{Name: "friendster", Nodes: 65600000, Edges: 3600000000, AvgDegree: 54.8, Directed: false, Gamma: 2.1, Discipline: "social"},
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, PresetNames())
}

// PresetNames lists the available preset names in Table 2 order.
func PresetNames() []string {
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	return names
}

// Generate builds the synthetic stand-in for the preset at the given scale
// (0 < scale ≤ 1; nodes and edges are multiplied by scale). The paper's
// weighted-cascade edge weights (§7.1) are applied via opt; pass
// graph.BuildOptions{Model: graph.WeightedCascade} for the paper's setting.
func (p Preset) Generate(scale float64, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("gen: scale must be in (0,1], got %v", scale)
	}
	n := int(float64(p.Nodes) * scale)
	if n < 100 {
		n = 100
	}
	m := int64(float64(p.Edges) * scale)
	if !p.Directed {
		// Undirected source: generate m/2 undirected edges as arcs in both
		// directions by doubling after generation; ChungLu emits arcs, so
		// generate m/2 and mirror.
		half := m / 2
		if half < int64(n) {
			half = int64(n)
		}
		g, err := ChungLu(n, half, p.Gamma, seed, graph.BuildOptions{})
		if err != nil {
			return nil, err
		}
		return mirror(g, opt)
	}
	if m < int64(n) {
		m = int64(n)
	}
	return ChungLu(n, m, p.Gamma, seed, opt)
}

// mirror rebuilds g with every arc duplicated in the reverse direction,
// reproducing the paper's Remark on Orkut/Friendster.
func mirror(g *graph.Graph, opt graph.BuildOptions) (*graph.Graph, error) {
	b := graph.NewBuilder(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		adj, _ := g.OutNeighbors(uint32(u))
		for _, v := range adj {
			b.AddUndirected(uint32(u), v, 1)
		}
	}
	return b.Build(opt)
}

// DefaultScales gives, for each preset, the default scale used by the
// benchmark harness so that every stand-in fits comfortably on a laptop
// while preserving Table 2's relative ordering of sizes.
var DefaultScales = map[string]float64{
	"nethept":    1.0,
	"netphy":     1.0,
	"enron":      1.0,
	"epinions":   0.5,
	"dblp":       0.1,
	"orkut":      0.01,
	"twitter":    0.002,
	"friendster": 0.001,
}

// ScaledSize reports the node/edge counts a preset generates at scale.
func (p Preset) ScaledSize(scale float64) (n int, m int64) {
	n = int(float64(p.Nodes) * scale)
	if n < 100 {
		n = 100
	}
	m = int64(float64(p.Edges) * scale)
	if m < int64(n) {
		m = int64(n)
	}
	return n, m
}

// SortedPresetNames returns preset names sorted alphabetically (for stable
// CLI help output).
func SortedPresetNames() []string {
	names := PresetNames()
	sort.Strings(names)
	return names
}
