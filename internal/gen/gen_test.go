package gen

import (
	"strings"
	"testing"

	"stopandstare/internal/graph"
)

func TestErdosRenyiSize(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 || g.NumEdges() != 500 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	g1, _ := ErdosRenyi(50, 200, 7, graph.BuildOptions{})
	g2, _ := ErdosRenyi(50, 200, 7, graph.BuildOptions{})
	for v := 0; v < 50; v++ {
		a1, _ := g1.OutNeighbors(uint32(v))
		a2, _ := g2.OutNeighbors(uint32(v))
		if len(a1) != len(a2) {
			t.Fatal("not deterministic")
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 10, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, err := ErdosRenyi(3, 100, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("m > n(n-1) should fail")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(200, 3, 11, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	// Roughly 2 arcs per attachment per node.
	if g.NumEdges() < int64(2*3*(200-4)) {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
	// Undirected semantics: symmetric arcs.
	for u := 0; u < 200; u++ {
		adj, _ := g.OutNeighbors(uint32(u))
		for _, v := range adj {
			if !g.HasEdge(v, uint32(u)) {
				t.Fatalf("asymmetric arc %d->%d", u, v)
			}
		}
	}
	if err := g.CheckLT(); err != nil {
		t.Fatal("WC BA graph must be LT-valid")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(5, 0, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("attach=0 should fail")
	}
	if _, err := BarabasiAlbert(3, 3, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("n<=attach should fail")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(100, 3, 0.1, 13, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.NumEdges() < 500 { // ~600 arcs minus dedup collisions
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(10, 5, 0.1, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("2k >= n should fail")
	}
	if _, err := WattsStrogatz(100, 2, 1.5, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("beta > 1 should fail")
	}
}

func TestChungLuDegreeSkew(t *testing.T) {
	g, err := ChungLu(2000, 10000, 2.1, 17, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.NumEdges() < 9000 {
		t.Fatalf("m=%d want ~10000", g.NumEdges())
	}
	s := g.Stats()
	// Power-law graphs have hubs far above the mean degree.
	if float64(s.MaxOutDegree) < 5*s.AvgOutDegree {
		t.Fatalf("no degree skew: max=%d avg=%.1f", s.MaxOutDegree, s.AvgOutDegree)
	}
}

func TestChungLuErrors(t *testing.T) {
	if _, err := ChungLu(1, 5, 2.1, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, err := ChungLu(100, 100, 0.9, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("gamma <= 1 should fail")
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	g, err := SBM([]int{100, 100, 100}, 8, 1, 19, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 300 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	within, across := 0, 0
	for u := 0; u < 300; u++ {
		adj, _ := g.OutNeighbors(uint32(u))
		for _, v := range adj {
			if u/100 == int(v)/100 {
				within++
			} else {
				across++
			}
		}
	}
	if within <= 3*across {
		t.Fatalf("no community structure: within=%d across=%d", within, across)
	}
}

func TestSBMErrors(t *testing.T) {
	if _, err := SBM([]int{1, 50}, 2, 1, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("community of size 1 should fail")
	}
}

func TestPresetsMirrorTable2(t *testing.T) {
	if len(Presets) != 8 {
		t.Fatalf("Table 2 has 8 datasets, presets has %d", len(Presets))
	}
	want := map[string]int{"nethept": 15233, "twitter": 41700000, "friendster": 65600000}
	for name, nodes := range want {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Nodes != nodes {
			t.Fatalf("%s nodes=%d want %d", name, p.Nodes, nodes)
		}
	}
	for _, p := range Presets {
		if _, ok := DefaultScales[p.Name]; !ok {
			t.Fatalf("preset %s missing default scale", p.Name)
		}
	}
}

func TestPresetByNameUnknown(t *testing.T) {
	if _, err := PresetByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("err = %v", err)
	}
}

func TestPresetGenerateDirected(t *testing.T) {
	p, _ := PresetByName("nethept")
	g, err := p.Generate(0.2, 23, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	wantN, _ := p.ScaledSize(0.2)
	if g.NumNodes() != wantN {
		t.Fatalf("n=%d want %d", g.NumNodes(), wantN)
	}
	if err := g.CheckLT(); err != nil {
		t.Fatal("preset WC graph must be LT-valid")
	}
}

func TestPresetGenerateUndirectedMirrors(t *testing.T) {
	p, _ := PresetByName("orkut")
	g, err := p.Generate(0.0005, 29, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		adj, _ := g.OutNeighbors(uint32(u))
		for _, v := range adj {
			if !g.HasEdge(v, uint32(u)) {
				t.Fatalf("orkut stand-in must be symmetric: %d->%d", u, v)
			}
		}
	}
}

func TestPresetScaleValidation(t *testing.T) {
	p, _ := PresetByName("enron")
	if _, err := p.Generate(0, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("scale 0 should fail")
	}
	if _, err := p.Generate(1.5, 1, graph.BuildOptions{}); err == nil {
		t.Fatal("scale > 1 should fail")
	}
}

func TestSortedPresetNames(t *testing.T) {
	names := SortedPresetNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestGenerateTopicShapes(t *testing.T) {
	g, err := ChungLu(5000, 25000, 2.1, 31, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	topics, err := GenerateDefaultTopics(g, 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 2 {
		t.Fatalf("want 2 topics, got %d", len(topics))
	}
	// Table 4 shape: topic 1 group about twice the size of topic 2.
	r := float64(topics[0].Users) / float64(topics[1].Users)
	if r < 1.2 || r > 3.5 {
		t.Fatalf("topic size ratio %.2f outside Table 4 shape (~2)", r)
	}
	for _, tp := range topics {
		if tp.Users == 0 || tp.Gamma <= 0 {
			t.Fatalf("degenerate topic %+v", tp.Name)
		}
		if len(tp.Weights) != g.NumNodes() {
			t.Fatal("weights length mismatch")
		}
		pos := 0
		for _, w := range tp.Weights {
			if w < 0 {
				t.Fatal("negative weight")
			}
			if w > 0 {
				pos++
			}
		}
		if pos != tp.Users {
			t.Fatalf("Users=%d but %d positive weights", tp.Users, pos)
		}
		if len(tp.Keywords) == 0 {
			t.Fatal("topic without keywords")
		}
	}
}

func TestGenerateTopicErrors(t *testing.T) {
	g, _ := ErdosRenyi(100, 300, 1, graph.BuildOptions{})
	if _, err := GenerateTopic(g, TopicSpec{Name: "x", Fraction: 0, ZipfS: 1.5}, 1); err == nil {
		t.Fatal("fraction 0 should fail")
	}
	if _, err := GenerateTopic(g, TopicSpec{Name: "x", Fraction: 0.5, ZipfS: 1}, 1); err == nil {
		t.Fatal("zipf <= 1 should fail")
	}
}
