// Package gen provides the synthetic network generators that stand in for
// the paper's eight evaluation datasets (Table 2). The real datasets (SNAP
// crawls of Twitter, Friendster, etc.) are not redistributable and far
// exceed this machine; per the substitution policy in DESIGN.md §4 each
// dataset is replaced by a generator matched on the properties that drive
// RIS behaviour: node count, edge count, degree skew, and directedness.
package gen

import (
	"fmt"
	"math"

	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// ErdosRenyi generates a directed G(n, m) graph: m distinct uniformly random
// arcs with no self-loops.
func ErdosRenyi(n int, m int64, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n >= 2, got %d", n)
	}
	maxArcs := int64(n) * int64(n-1)
	if m > maxArcs {
		return nil, fmt.Errorf("gen: m=%d exceeds n(n-1)=%d", m, maxArcs)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for int64(len(seen)) < m {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v, 1)
	}
	return b.Build(opt)
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches to `attach` existing nodes chosen proportionally to degree.
// Edges are emitted as two arcs (undirected semantics), matching the paper's
// handling of undirected networks.
func BarabasiAlbert(n, attach int, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	if attach < 1 || n <= attach {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs 1 <= attach < n (attach=%d n=%d)", attach, n)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// repeated-node list implements preferential attachment in O(1)/draw
	targets := make([]uint32, 0, 2*n*attach)
	// seed clique of attach+1 nodes
	for i := 0; i <= attach; i++ {
		for j := 0; j < i; j++ {
			b.AddUndirected(uint32(i), uint32(j), 1)
			targets = append(targets, uint32(i), uint32(j))
		}
	}
	// picked is kept as a slice: map iteration order is randomized in Go
	// and would break seed-determinism of the emitted edge order (which
	// feeds back into preferential attachment via the targets list).
	picked := make([]uint32, 0, attach)
	for v := attach + 1; v < n; v++ {
		picked = picked[:0]
		for len(picked) < attach {
			u := targets[r.Intn(len(targets))]
			dup := false
			for _, p := range picked {
				if p == u {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, u)
			}
		}
		for _, u := range picked {
			b.AddUndirected(uint32(v), u, 1)
			targets = append(targets, uint32(v), u)
		}
	}
	return b.Build(opt)
}

// WattsStrogatz generates a small-world ring lattice with k neighbours per
// side and rewiring probability beta, emitted as two arcs per edge.
func WattsStrogatz(n, k int, beta float64, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs 1 <= k and 2k < n (k=%d n=%d)", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz beta must be in [0,1], got %v", beta)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				for {
					w := r.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			b.AddUndirected(uint32(u), uint32(v), 1)
		}
	}
	return b.Build(opt)
}

// ChungLu generates a directed power-law graph with ~m arcs whose expected
// in/out degree sequence follows weight w_i ∝ (i + i0)^(-1/(gamma-1)); this
// is the standard Chung–Lu construction that reproduces the heavy-tailed
// degree distributions of the SNAP social networks (gamma ≈ 2.1 for OSNs,
// ≈ 2.6 for citation graphs).
func ChungLu(n int, m int64, gamma float64, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("gen: ChungLu needs n >= 2, m >= 1 (n=%d m=%d)", n, m)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: ChungLu gamma must exceed 1, got %v", gamma)
	}
	r := rng.New(seed)
	w := make([]float64, n)
	alpha := 1 / (gamma - 1)
	const i0 = 10 // offset tames the maximum degree so m is achievable
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i)+i0, -alpha)
	}
	// Shuffle weights so node id carries no degree information.
	r.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	al, err := rng.NewAlias(w)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	attempts := int64(0)
	maxAttempts := 20 * m
	for int64(len(seen)) < m && attempts < maxAttempts {
		attempts++
		u := uint32(al.Sample(r))
		v := uint32(al.Sample(r))
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v, 1)
	}
	if int64(len(seen)) < m/2 {
		return nil, fmt.Errorf("gen: ChungLu saturated at %d of %d edges", len(seen), m)
	}
	return b.Build(opt)
}

// SBM generates a stochastic block model with the given community sizes.
// Expected within-community arcs per node = degIn, across = degOut.
// Used to give the TVM topic generator realistic community structure.
func SBM(sizes []int, degIn, degOut float64, seed uint64, opt graph.BuildOptions) (*graph.Graph, error) {
	n := 0
	for _, s := range sizes {
		if s <= 1 {
			return nil, fmt.Errorf("gen: SBM community sizes must exceed 1")
		}
		n += s
	}
	if n == 0 {
		return nil, graph.ErrNoNodes
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]struct{})
	addRandom := func(loU, hiU, loV, hiV int, count int64) {
		for added := int64(0); added < count; {
			u := uint32(loU + r.Intn(hiU-loU))
			v := uint32(loV + r.Intn(hiV-loV))
			if u == v {
				continue
			}
			key := uint64(u)<<32 | uint64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			b.AddEdge(u, v, 1)
			added++
		}
	}
	start := 0
	bounds := make([][2]int, len(sizes))
	for i, s := range sizes {
		bounds[i] = [2]int{start, start + s}
		start += s
	}
	for i, bd := range bounds {
		addRandom(bd[0], bd[1], bd[0], bd[1], int64(float64(sizes[i])*degIn))
		// cross-community edges to a random other block
		if len(sizes) > 1 {
			for added := int64(0); added < int64(float64(sizes[i])*degOut); {
				j := r.Intn(len(sizes))
				if j == i {
					continue
				}
				od := bounds[j]
				u := uint32(bd[0] + r.Intn(sizes[i]))
				v := uint32(od[0] + r.Intn(sizes[j]))
				key := uint64(u)<<32 | uint64(v)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				b.AddEdge(u, v, 1)
				added++
			}
		}
	}
	return b.Build(opt)
}
