package gen

import (
	"testing"

	"stopandstare/internal/graph"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		a1, w1 := a.OutNeighbors(uint32(v))
		a2, w2 := b.OutNeighbors(uint32(v))
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				return false
			}
		}
	}
	return true
}

func TestGeneratorsDeterministic(t *testing.T) {
	opt := graph.BuildOptions{Model: graph.WeightedCascade}
	cases := []struct {
		name string
		gen  func(seed uint64) (*graph.Graph, error)
	}{
		{"chunglu", func(s uint64) (*graph.Graph, error) { return ChungLu(500, 2500, 2.1, s, opt) }},
		{"ba", func(s uint64) (*graph.Graph, error) { return BarabasiAlbert(300, 3, s, opt) }},
		{"ws", func(s uint64) (*graph.Graph, error) { return WattsStrogatz(300, 3, 0.2, s, opt) }},
		{"sbm", func(s uint64) (*graph.Graph, error) { return SBM([]int{100, 100}, 5, 1, s, opt) }},
	}
	for _, c := range cases {
		g1, err := c.gen(42)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		g2, err := c.gen(42)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !graphsEqual(g1, g2) {
			t.Fatalf("%s: not deterministic for equal seeds", c.name)
		}
		g3, err := c.gen(43)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if graphsEqual(g1, g3) {
			t.Fatalf("%s: different seeds produced identical graphs", c.name)
		}
	}
}

func TestTopicDeterministic(t *testing.T) {
	g, err := ChungLu(1000, 5000, 2.1, 7, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := GenerateTopic(g, DefaultTopicSpecs[0], 99)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenerateTopic(g, DefaultTopicSpecs[0], 99)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Users != t2.Users || t1.Gamma != t2.Gamma {
		t.Fatal("topic generation not deterministic")
	}
	for i := range t1.Weights {
		if t1.Weights[i] != t2.Weights[i] {
			t.Fatal("topic weights differ")
		}
	}
}
