package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUpsilonMatchesDefinition(t *testing.T) {
	// Υ(ε,δ) = (2 + 2ε/3)·ln(1/δ)/ε² (Table 1)
	cases := []struct {
		eps, delta float64
	}{
		{0.1, 0.01},
		{0.3, 0.001},
		{0.5, 1e-9},
		{0.05, 0.5},
	}
	for _, c := range cases {
		got := Upsilon(c.eps, c.delta)
		want := (2 + 2*c.eps/3) * math.Log(1/c.delta) / (c.eps * c.eps)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("Upsilon(%v,%v) = %v want %v", c.eps, c.delta, got, want)
		}
	}
}

func TestUpsilonPaperExample(t *testing.T) {
	// ε=0.1, δ=1/3: Υ = (2+0.0667)·ln3/100... sanity magnitude check.
	u := Upsilon(0.1, 1.0/3)
	if u < 200 || u > 250 {
		t.Fatalf("Upsilon(0.1, 1/3) = %v out of expected magnitude", u)
	}
}

func TestUpsilonLnConsistency(t *testing.T) {
	eps, delta := 0.2, 0.005
	a := Upsilon(eps, delta)
	b := UpsilonLn(eps, math.Log(1/delta))
	if math.Abs(a-b) > 1e-9*a {
		t.Fatalf("UpsilonLn inconsistent: %v vs %v", a, b)
	}
}

func TestUpsilonMonotonicity(t *testing.T) {
	// Decreasing in ε, increasing in ln(1/δ).
	f := func(a, b uint8) bool {
		e1 := 0.05 + float64(a%90)/100
		e2 := e1 + 0.01
		lnInv := 1 + float64(b%100)
		return UpsilonLn(e2, lnInv) < UpsilonLn(e1, lnInv) &&
			UpsilonLn(e1, lnInv+1) > UpsilonLn(e1, lnInv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLnChooseSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		got := LnChoose(c.n, c.k)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("LnChoose(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLnChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LnChoose(5, 6), -1) || !math.IsInf(LnChoose(5, -1), -1) {
		t.Fatal("out-of-range LnChoose should be -Inf")
	}
}

func TestLnChooseSymmetry(t *testing.T) {
	f := func(a, b uint16) bool {
		n := int(a%1000) + 1
		k := int(b) % (n + 1)
		return math.Abs(LnChoose(n, k)-LnChoose(n, n-k)) < 1e-6*(1+math.Abs(LnChoose(n, k)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLnChooseHugeDoesNotOverflow(t *testing.T) {
	v := LnChoose(65600000, 20000) // Friendster-scale n, large k
	if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		t.Fatalf("LnChoose(65.6M, 20k) = %v", v)
	}
}

func TestChernoffBoundsDecreasing(t *testing.T) {
	// More samples → smaller tail bound.
	if ChernoffUpperTail(0.1, 0.01, 2000) >= ChernoffUpperTail(0.1, 0.01, 1000) {
		t.Fatal("upper tail not decreasing in T")
	}
	if ChernoffLowerTail(0.1, 0.01, 2000) >= ChernoffLowerTail(0.1, 0.01, 1000) {
		t.Fatal("lower tail not decreasing in T")
	}
}

func TestSampleCountsInvertBounds(t *testing.T) {
	// Plugging the sufficient sample counts back into the bounds must give
	// exactly δ (up to float error) — Corollary 1 is tight by construction.
	eps, delta, mu := 0.2, 0.01, 0.05
	tUp := UpperTailSamples(eps, delta, mu)
	if p := ChernoffUpperTail(eps, mu, tUp); math.Abs(p-delta) > 1e-9 {
		t.Fatalf("upper bound at sufficient T: %v want %v", p, delta)
	}
	tLo := LowerTailSamples(eps, delta, mu)
	if p := ChernoffLowerTail(eps, mu, tLo); math.Abs(p-delta) > 1e-9 {
		t.Fatalf("lower bound at sufficient T: %v want %v", p, delta)
	}
}

func TestStoppingRuleThreshold(t *testing.T) {
	got := StoppingRuleThreshold(0.1, 0.01)
	want := 1 + 1.1*Upsilon(0.1, 0.01)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Λ₂ = %v want %v", got, want)
	}
}

func TestCheckEpsDelta(t *testing.T) {
	bad := [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {-1, 0.5}, {0.5, 2}}
	for _, c := range bad {
		if err := CheckEpsDelta(c[0], c[1]); err == nil {
			t.Fatalf("CheckEpsDelta(%v,%v) should fail", c[0], c[1])
		}
	}
	if err := CheckEpsDelta(0.1, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMeanVariance(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if w.StdErr() <= 0 {
		t.Fatal("stderr should be positive")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	var all, a, b Welford
	for i := 0; i < 100; i++ {
		x := float64(i*i%37) + 0.5
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v want %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(3)
	a.Merge(b) // empty rhs
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(a) // empty lhs
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty lost state")
	}
}

func TestWelfordSmallCounts(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdErr() != 0 || w.Mean() != 0 {
		t.Fatal("empty Welford should be all zeros")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}
