// Package stats implements the concentration-bound arithmetic the paper's
// algorithms are built on: the Υ(ε,δ) sample-size function (Table 1), the
// Chernoff-style sufficient sample counts of Corollary 1, log-binomials for
// the δ/C(n,k) union bounds, and the stopping-rule constants of the
// Estimate-Inf procedure (Alg. 3, after Dagum–Karp–Luby–Ross).
//
// Everything that involves C(n,k) is computed in log space: for the graph
// sizes the paper targets, C(n,k) overflows float64 by thousands of orders
// of magnitude.
package stats

import (
	"errors"
	"math"
)

// OneMinusInvE is (1 - 1/e), the submodular greedy approximation factor.
const OneMinusInvE = 1 - 1/math.E

// ErrInvalidParam reports ε or δ outside their valid open intervals.
var ErrInvalidParam = errors.New("stats: epsilon and delta must lie in (0,1)")

// Upsilon returns Υ(ε,δ) = (2 + 2ε/3)·ln(1/δ) / ε² (paper Table 1).
// It is the sufficient number of samples, divided by 1/µ, for the upper-tail
// Chernoff bound of Corollary 1, Eq. (7).
func Upsilon(eps, delta float64) float64 {
	return UpsilonLn(eps, math.Log(1/delta))
}

// UpsilonLn is Upsilon with ln(1/δ) supplied directly, for δ values such as
// δ/(6·C(n,k)) that underflow float64.
func UpsilonLn(eps, lnInvDelta float64) float64 {
	return (2 + 2*eps/3) * lnInvDelta / (eps * eps)
}

// LowerTailSamples returns T such that Pr[µ̂ < (1−ε)µ] ≤ δ when T ≥ result
// (Corollary 1, Eq. (8)): T = 2·ln(1/δ)/(ε²µ).
func LowerTailSamples(eps, delta, mu float64) float64 {
	return 2 * math.Log(1/delta) / (eps * eps * mu)
}

// UpperTailSamples returns T such that Pr[µ̂ > (1+ε)µ] ≤ δ when T ≥ result
// (Corollary 1, Eq. (7)): T = Υ(ε,δ)/µ.
func UpperTailSamples(eps, delta, mu float64) float64 {
	return Upsilon(eps, delta) / mu
}

// ChernoffUpperTail bounds Pr[µ̂ > (1+ε)µ] for T samples of mean µ
// (Lemma 2, Eq. (5)): exp(−T·µ·ε²/(2 + 2ε/3)).
func ChernoffUpperTail(eps, mu float64, T float64) float64 {
	return math.Exp(-T * mu * eps * eps / (2 + 2*eps/3))
}

// ChernoffLowerTail bounds Pr[µ̂ < (1−ε)µ] for T samples of mean µ
// (Lemma 2, Eq. (6)): exp(−T·µ·ε²/2).
func ChernoffLowerTail(eps, mu float64, T float64) float64 {
	return math.Exp(-T * mu * eps * eps / 2)
}

// LnChoose returns ln C(n,k) computed with log-gamma. It returns -Inf for
// k < 0 or k > n, and 0 for k == 0 or k == n.
func LnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

// StoppingRuleThreshold returns Λ₂ = 1 + (1+ε′)·Υ(ε′,δ′), the success-count
// threshold of the Estimate-Inf stopping rule (Alg. 3, line 1).
func StoppingRuleThreshold(epsPrime, deltaPrime float64) float64 {
	return 1 + (1+epsPrime)*Upsilon(epsPrime, deltaPrime)
}

// CheckEpsDelta validates that both parameters lie in (0,1).
func CheckEpsDelta(eps, delta float64) error {
	if !(eps > 0 && eps < 1) || !(delta > 0 && delta < 1) {
		return ErrInvalidParam
	}
	return nil
}

// Welford accumulates a running mean and variance in one pass. Used by the
// Monte-Carlo spread estimators to report confidence half-widths.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 if fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}
