package ris_test

import (
	"fmt"
	"path/filepath"
	"slices"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
	"stopandstare/internal/tvm"
)

// The out-of-core differential: a graph opened from its .sasg mapping must
// be indistinguishable from the heap graph it was written from in every
// observable — same seeds, same influence, same traces, for every algorithm
// × store topology × sampling kernel of the grid. The RR-set purity
// invariant (set i is a function of (seed, i)) only survives the mmap
// refactor if the mapped sections really are bit-identical aliases; this
// harness is what pins that.

// mappedTwin round-trips g through a .sasg file in a test temp dir and
// opens it mapped. The mapping is released when the test finishes.
func mappedTwin(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "twin.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Errorf("closing mapped twin: %v", err)
		}
	})
	return m
}

// TestDifferentialHeapVsMapped runs SSA and D-SSA on the heap reference
// and on its mapped twin across both kernels, the flat store, and the
// sharded grid, demanding bit-identical results and traces throughout.
func TestDifferentialHeapVsMapped(t *testing.T) {
	heap := diffGraph(t)
	mapped := mappedTwin(t, heap)
	hs, err := ris.NewSampler(heap, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ris.NewSampler(mapped, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"ssa", "dssa"} {
		for _, kernel := range []ris.Kernel{ris.KernelPlan, ris.KernelOracle} {
			refRes, refTrace := runCore(t, hs, algo, 0, 0, kernel)
			res, trace := runCore(t, ms, algo, 0, 0, kernel)
			assertResultsIdentical(t, fmt.Sprintf("%s/%v/mapped-flat", algo, kernel),
				refRes, res, refTrace, trace)
			for _, shards := range diffShardCounts {
				for _, workers := range diffWorkerCounts {
					ctx := fmt.Sprintf("%s/%v/mapped-shards=%d/workers=%d", algo, kernel, shards, workers)
					res, trace := runCore(t, ms, algo, shards, workers, kernel)
					assertResultsIdentical(t, ctx, refRes, res, refTrace, trace)
				}
			}
		}
	}
}

// TestDifferentialBudgetedSweepHeapVsMapped runs the LT-model TVM budget
// sweep on heap vs mapped. LT sampling walks the mapped inCum prefix sums
// (binary search in the oracle kernel) and compiles the alias tables from
// mapped sections (plan kernel), so this closes the loop on the two
// sections the IC harness never touches.
func TestDifferentialBudgetedSweepHeapVsMapped(t *testing.T) {
	heap := diffGraph(t)
	mapped := mappedTwin(t, heap)
	weights := make([]float64, heap.NumNodes())
	for v := range weights {
		weights[v] = float64(v%9) + 0.25
	}
	costs := make([]float64, heap.NumNodes())
	for v := range costs {
		costs[v] = float64((v*7)%4) + 1
	}
	budgets := []float64{3, 9, 27, 81}
	run := func(g *graph.Graph, kernel ris.Kernel) []*tvm.BudgetedResult {
		inst, err := tvm.NewInstance(g, weights)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tvm.BudgetedSweep(inst, diffusion.LT, budgets, tvm.BudgetedOptions{
			Costs: costs, Epsilon: 0.2, Seed: 13, Workers: 2,
			Samples: 3000, Kernel: kernel,
		})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return res
	}
	for _, kernel := range []ris.Kernel{ris.KernelPlan, ris.KernelOracle} {
		ref := run(heap, kernel)
		got := run(mapped, kernel)
		for i := range ref {
			ctx := fmt.Sprintf("sweep/%v/budget=%v", kernel, budgets[i])
			if !slices.Equal(ref[i].Seeds, got[i].Seeds) {
				t.Fatalf("%s: Seeds %v vs %v", ctx, got[i].Seeds, ref[i].Seeds)
			}
			if got[i].Benefit != ref[i].Benefit || got[i].Cost != ref[i].Cost ||
				got[i].Samples != ref[i].Samples {
				t.Fatalf("%s: benefit/cost/samples %v/%v/%d vs %v/%v/%d", ctx,
					got[i].Benefit, got[i].Cost, got[i].Samples,
					ref[i].Benefit, ref[i].Cost, ref[i].Samples)
			}
		}
	}
}
