// Remote leg of the differential harness: the same SSA/D-SSA workloads run
// against remote-sharded stores whose shard workers are in-process
// ShardServers dialed over net.Pipe — the full wire protocol (open, stats,
// streamed generate, postings, coverage) runs, minus only the kernel socket.
// Flat, in-process-sharded and remote-sharded must stay bit-identical in
// every observable, and worker failures must surface as typed errors, never
// hangs.
package ris_test

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"

	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

// remoteCluster maps fake worker addresses onto in-process ShardServers. Its
// dial method is a ris.DialFunc: each dial hands the server one net.Pipe end
// (served on its own goroutine, exactly like an accepted conn) and the client
// the other. The cluster can sever live connections (a network blip), restart
// a worker with empty state (a process restart — coordinators must replay),
// or kill a worker outright (dials fail).
type remoteCluster struct {
	g       *graph.Graph
	mu      sync.Mutex
	servers map[string]*ris.ShardServer
	conns   []net.Conn
}

func newRemoteCluster(g *graph.Graph, addrs ...string) *remoteCluster {
	c := &remoteCluster{g: g, servers: make(map[string]*ris.ShardServer)}
	for _, a := range addrs {
		c.servers[a] = ris.NewShardServer(g, ris.ShardServerOptions{SamplingWorkers: 2})
	}
	return c
}

func (c *remoteCluster) dial(addr string) (net.Conn, error) {
	c.mu.Lock()
	srv := c.servers[addr]
	c.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("worker %s down", addr)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	c.mu.Lock()
	c.conns = append(c.conns, client)
	c.mu.Unlock()
	return client, nil
}

// severConns closes every connection handed out so far; worker state
// survives, so clients must reconnect and reconcile via stats.
func (c *remoteCluster) severConns() {
	c.mu.Lock()
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

// restart replaces addr's server with a fresh empty one: the worker lost all
// shard state and the coordinator must rebuild it by deterministic replay.
func (c *remoteCluster) restart(addr string) {
	c.mu.Lock()
	old := c.servers[addr]
	c.servers[addr] = ris.NewShardServer(c.g, ris.ShardServerOptions{SamplingWorkers: 2})
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// kill removes addr's worker entirely; subsequent dials fail.
func (c *remoteCluster) kill(addr string) {
	c.mu.Lock()
	srv := c.servers[addr]
	delete(c.servers, addr)
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// runCoreRemote is runCore on a remote-sharded store: one shard per
// in-process pipe worker.
func runCoreRemote(t *testing.T, g *graph.Graph, s *ris.Sampler, algo string, nworkers int, kernel ris.Kernel) (*core.Result, []core.Checkpoint) {
	t.Helper()
	addrs := make([]string, nworkers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("worker-%d", i)
	}
	cluster := newRemoteCluster(g, addrs...)
	var trace []core.Checkpoint
	opt := core.Options{
		K: 8, Epsilon: 0.3, Seed: 71, Workers: 2,
		RemoteWorkers: addrs, RemoteDial: cluster.dial, Kernel: kernel,
		Trace: func(cp core.Checkpoint) { trace = append(trace, cp) },
	}
	var res *core.Result
	var err error
	if algo == "ssa" {
		res, err = core.SSA(s, opt)
	} else {
		res, err = core.DSSA(s, opt)
	}
	if err != nil {
		t.Fatalf("%s remote workers=%d: %v", algo, nworkers, err)
	}
	return res, trace
}

// TestDifferentialRemoteVsFlat runs SSA and D-SSA under both kernels on
// flat, in-process-sharded and remote-sharded stores across {1, 2} workers,
// demanding bit-identical Seeds, Influence, sample counts and per-checkpoint
// traces. This is the issue's core acceptance: cross-process sharding must
// be invisible in every observable.
func TestDifferentialRemoteVsFlat(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"ssa", "dssa"} {
		for _, kernel := range []ris.Kernel{ris.KernelPlan, ris.KernelOracle} {
			refRes, refTrace := runCore(t, s, algo, 0, 0, kernel) // flat reference
			for _, nw := range []int{1, 2} {
				ctx := fmt.Sprintf("%s/%v/remote-workers=%d", algo, kernel, nw)
				res, trace := runCoreRemote(t, g, s, algo, nw, kernel)
				assertResultsIdentical(t, ctx, refRes, res, refTrace, trace)
				// The in-process sharded store at the same shard count must
				// agree too (flat vs sharded is covered elsewhere; this pins
				// remote against both in one place).
				sres, strace := runCore(t, s, algo, nw, 1, kernel)
				assertResultsIdentical(t, ctx+"/vs-inprocess", sres, res, strace, trace)
			}
		}
	}
}

// TestRemoteStoreParity exercises the store surface directly against a flat
// reference — Set/ForEachSet over the mirror arena, PostingsRange and
// CoverageRangeSeeds answered worker-side — through a connection blip
// (reconnect, same worker state) and a worker restart (empty state,
// deterministic replay). Parity must hold after each disruption.
func TestRemoteStoreParity(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	flat := ris.NewCollection(s, 31, 2)
	cluster := newRemoteCluster(g, "w0", "w1")
	st := ris.NewStore(s, 31, ris.StoreOptions{
		RemoteWorkers: []string{"w0", "w1"}, RemoteDial: cluster.dial,
	})
	sc, ok := st.(*ris.ShardedCollection)
	if !ok || !sc.Remote() {
		t.Fatalf("NewStore with RemoteWorkers returned %T (remote=%v)", st, ok && sc.Remote())
	}

	seeds := []uint32{3, 17, 42, 99, 151}
	checkParity := func(phase string, upto int) {
		t.Helper()
		flat.GenerateTo(upto)
		st.GenerateTo(upto)
		if st.Len() != flat.Len() || st.Items() != flat.Items() || st.Width() != flat.Width() {
			t.Fatalf("%s: len/items/width %d/%d/%d vs flat %d/%d/%d", phase,
				st.Len(), st.Items(), st.Width(), flat.Len(), flat.Items(), flat.Width())
		}
		for i := 0; i < upto; i++ {
			if !slices.Equal(st.Set(i), flat.Set(i)) {
				t.Fatalf("%s: Set(%d) = %v, flat %v", phase, i, st.Set(i), flat.Set(i))
			}
		}
		n := 0
		st.ForEachSet(0, upto, func(i int, set []uint32) {
			if !slices.Equal(set, flat.Set(i)) {
				t.Fatalf("%s: ForEachSet(%d) = %v, flat %v", phase, i, set, flat.Set(i))
			}
			n++
		})
		if n != upto {
			t.Fatalf("%s: ForEachSet visited %d of %d", phase, n, upto)
		}
		for _, v := range seeds {
			var got, want []int32
			it := st.PostingsRange(v, 0, upto)
			for {
				run, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, run...)
			}
			fit := flat.PostingsRange(v, 0, upto)
			for {
				run, ok := fit.Next()
				if !ok {
					break
				}
				want = append(want, run...)
			}
			// Remote postings are ascending per shard, flat globally; the
			// contract only promises set equality across runs.
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("%s: postings(%d) = %v, flat %v", phase, v, got, want)
			}
		}
		if got, want := st.CoverageRangeSeeds(seeds, 0, upto), flat.CoverageRangeSeeds(seeds, 0, upto); got != want {
			t.Fatalf("%s: coverage %d vs flat %d", phase, got, want)
		}
		if got, want := st.CoverageSeeds(seeds), flat.CoverageSeeds(seeds); got != want {
			t.Fatalf("%s: full coverage %d vs flat %d", phase, got, want)
		}
	}

	checkParity("initial", 300)
	cluster.severConns() // network blip: reconnect, worker state intact
	checkParity("after-sever", 600)
	cluster.restart("w1") // worker restart: empty state, replay rebuilds it
	checkParity("after-restart", 900)
}

// TestRemoteWorkerKillTypedError pins the degraded mode: with a worker gone
// for good, a store operation must fail after the bounded reconnect budget
// with a *ShardError wrapping ErrShardUnreachable naming the dead worker —
// a typed, inspectable error, not a hang and not a raw panic.
func TestRemoteWorkerKillTypedError(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	cluster := newRemoteCluster(g, "w0", "w1")
	st := ris.NewStore(s, 31, ris.StoreOptions{
		RemoteWorkers: []string{"w0", "w1"}, RemoteDial: cluster.dial,
	})
	st.GenerateTo(200)
	wantLen, wantItems := st.Len(), st.Items()
	cluster.kill("w1")

	opErr := func() (rerr error) {
		defer func() {
			if p := recover(); p != nil {
				se, ok := p.(*ris.ShardError)
				if !ok {
					panic(p)
				}
				rerr = se
			}
		}()
		st.GenerateTo(400)
		return nil
	}()
	if opErr == nil {
		t.Fatal("GenerateTo succeeded with a dead worker")
	}
	if !errors.Is(opErr, ris.ErrShardUnreachable) {
		t.Fatalf("error %v does not wrap ErrShardUnreachable", opErr)
	}
	var se *ris.ShardError
	if !errors.As(opErr, &se) || se.Addr != "w1" || se.Op != "generate" {
		t.Fatalf("ShardError = %+v, want addr w1 op generate", se)
	}
	// The failed multi-shard generate must have rolled back: the mirrors
	// (including the live worker's) expose the pre-failure stream exactly.
	if st.Len() != wantLen || st.Items() != wantItems {
		t.Fatalf("after failed generate: len/items %d/%d, want %d/%d (rollback leaked)",
			st.Len(), st.Items(), wantLen, wantItems)
	}
}
