//go:build unix

package ris

import (
	"fmt"
	"os"
	"syscall"
)

// spillMapping is one read-only mmap of a spill block (header + payload).
// Mappings are created when a unit is spilled and released only when the
// SpillFile closes, so slices aliasing them stay valid for the life of the
// store: fault-in is the OS paging bytes back through the shared mapping,
// and the page cache is the hot tier.
type spillMapping struct {
	data []byte
}

func (m *spillMapping) release() {
	if m.data != nil {
		syscall.Munmap(m.data)
		m.data = nil
	}
}

// spillMappedResident reports whether mapped spill payloads occupy heap (the
// no-mmap fallback reads blocks back into heap buffers; real mappings do
// not).
const spillMappedResident = false

func mapSpillBlock(f *os.File, off, length int64) (*spillMapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), off, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("%w: mmap [%d,+%d): %v", ErrBadSpill, off, length, err)
	}
	return &spillMapping{data: data}, nil
}
