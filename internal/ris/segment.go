package ris

import (
	"context"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"stopandstare/internal/rng"
)

// This file is the storage engine both RR-set stores are built from:
//
//   - segment: a flat arena of RR sets plus a size-tiered CSR inverted
//     index over them. Collection wraps a single segment covering the whole
//     stream; ShardedCollection wraps one segment per shard, with gids
//     mapping segment-local set indices to global stream ids.
//   - sampleChunks: deterministic parallel generation of a global id range
//     (RR set i is always produced by the PRNG stream (seed, i), so the
//     output is bit-identical for any worker count and any sharding).
//   - Postings: the zero-allocation iterator over a node's postings runs,
//     able to walk one segment (flat) or a sequence of them (sharded).

// chunkSize is the number of RR sets per parallel work unit.
const chunkSize = 512

// indexItemsPerWorker is the minimum number of postings per index-build
// worker; smaller batches are built serially (the per-worker count arrays
// cost O(n) each, which only pays off over enough items).
const indexItemsPerWorker = 1 << 13

// csrBlock is an inverted-index block over the contiguous run of
// segment-local sets [lfrom, lto): the sets containing node v within the
// run are ids[starts[v]:starts[v+1]], ascending. The stored ids are GLOBAL
// stream ids ([from, to) bounds them), so postings runs can be handed to
// algorithms as-is regardless of which shard they came from; for the flat
// Collection local and global indices coincide. One block is appended per
// Generate call; small trailing blocks are merged size-tiered (see
// segment.appendIndexBlock), so any call pattern leaves O(log |R|) blocks.
type csrBlock struct {
	from, to   int     // global id bounds: every stored id is in [from, to)
	lfrom, lto int     // segment-local set range the block indexes
	starts     []int32 // len = NumNodes+1; block-local offsets into ids
	ids        []int32 // global RR-set ids, ascending within each node's run

	spilled *spillMapping // non-nil ⇒ starts/ids alias the spill file
	lastUse uint64        // spill-LRU recency; read/written atomically
}

// segment is one arena + CSR index over a sub-stream of RR sets. It is not
// a Store by itself: Collection and ShardedCollection layer id mapping,
// generation and coverage queries on top.
type segment struct {
	n       int      // node count of the underlying graph
	buf     []uint32 // arena tail: entries of sets not yet frozen into extents
	offsets []int64  // len = nsets()+1; absolute item offsets across extents+tail
	gids    []int32  // global id per local set; nil ⇒ identity (flat store)
	blocks  []csrBlock
	width   int64   // Σ w(R_j) over the segment's sets
	cursor  []int32 // scratch for CSR construction, len = n

	// Spill tier. Without a spill budget all three stay zero and the arena
	// is exactly the flat buf above: tailSet = 0, tailBase = 0, no extents.
	exts     []arenaExtent // frozen arena extents preceding buf, ascending
	tailSet  int           // local index of the first set stored in buf
	tailBase int64         // absolute item offset of buf[0]
	spill    *spillState   // shared spill tier; nil ⇒ spilling disabled
}

// arenaExtent is a frozen, immutable slice of the arena: local sets
// [setFrom, setTo) whose items span absolute offsets [base, end). data is
// either the original heap slice (resident) or an alias of the spill file's
// shared mapping (mapped != nil). Extents are created by seal() only under
// spill pressure, so the flat store's single-slice fast path is untouched
// when spilling is off.
type arenaExtent struct {
	setFrom, setTo int
	base, end      int64
	data           []uint32
	mapped         *spillMapping
	lastUse        uint64 // spill-LRU recency; read/written atomically
}

func newSegment(n int) *segment {
	return &segment{n: n, offsets: []int64{0}}
}

// nsets returns the number of sets stored in the segment.
func (sg *segment) nsets() int { return len(sg.offsets) - 1 }

// setAt returns local set i as a sub-slice of the arena: the active tail for
// recent sets, or the frozen extent holding i (which may alias the spill
// file — reading it is the transparent fault-in path).
func (sg *segment) setAt(i int) []uint32 {
	if i >= sg.tailSet {
		return sg.buf[sg.offsets[i]-sg.tailBase : sg.offsets[i+1]-sg.tailBase]
	}
	e := sg.extentAt(i)
	return e.data[sg.offsets[i]-e.base : sg.offsets[i+1]-e.base]
}

// extentAt locates the frozen extent holding local set i and stamps its LRU
// recency (resident extents only — spilled ones have nothing left to evict).
// Safe under concurrent reads: extents are immutable and the stamp is
// atomic.
func (sg *segment) extentAt(i int) *arenaExtent {
	lo, hi := 0, len(sg.exts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sg.exts[mid].setTo <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e := &sg.exts[lo]
	if e.mapped == nil && sg.spill != nil {
		atomic.StoreUint64(&e.lastUse, sg.spill.tick())
	}
	return e
}

// tailItems returns the arena entries of local sets [from, to), which must
// lie entirely within the active tail. Index builds always do: the merge
// guard in appendIndexBlock never reaches behind tailSet.
func (sg *segment) tailItems(from, to int) []uint32 {
	return sg.buf[sg.offsets[from]-sg.tailBase : sg.offsets[to]-sg.tailBase]
}

// items returns the total arena entries across extents and tail.
func (sg *segment) items() int64 { return sg.offsets[sg.nsets()] }

// seal freezes the active tail into an immutable extent — making it a spill
// candidate — and starts an empty tail after it. Called only by the spill
// enforcement loop, under the store's mutation exclusivity; the sealed
// extent is stamped as most recently used, since it holds the newest sets.
func (sg *segment) seal() {
	if len(sg.buf) == 0 {
		return
	}
	var use uint64
	if sg.spill != nil {
		use = sg.spill.tick()
	}
	sg.exts = append(sg.exts, arenaExtent{
		setFrom: sg.tailSet, setTo: sg.nsets(),
		base: sg.tailBase, end: sg.tailBase + int64(len(sg.buf)),
		data: sg.buf, lastUse: use,
	})
	sg.tailSet = sg.nsets()
	sg.tailBase += int64(len(sg.buf))
	sg.buf = nil
}

// gid maps a local set index to its global stream id.
func (sg *segment) gid(i int) int {
	if sg.gids == nil {
		return i
	}
	return int(sg.gids[i])
}

// residentBytes reports the heap memory the segment holds: the tail arena,
// offset/gid/cursor tables, resident extents and index blocks, plus the
// per-block and per-extent metadata records themselves (capacities, since
// grown backing arrays are what the process actually retains). Units that
// alias the spill file's mapping are excluded — spilledBytes counts those.
func (sg *segment) residentBytes() int64 {
	b := int64(cap(sg.buf))*4 + int64(cap(sg.offsets))*8 +
		int64(cap(sg.gids))*4 + int64(cap(sg.cursor))*4 +
		int64(cap(sg.blocks))*int64(unsafe.Sizeof(csrBlock{})) +
		int64(cap(sg.exts))*int64(unsafe.Sizeof(arenaExtent{}))
	for i := range sg.blocks {
		blk := &sg.blocks[i]
		if blk.spilled == nil || spillMappedResident {
			b += int64(cap(blk.starts))*4 + int64(cap(blk.ids))*4
		}
	}
	for i := range sg.exts {
		e := &sg.exts[i]
		if e.mapped == nil || spillMappedResident {
			b += int64(cap(e.data)) * 4
		}
	}
	return b
}

// spilledBytes reports the RR data aliasing the spill file's shared mapping
// (zero on platforms whose fallback keeps "mapped" payloads on the heap).
func (sg *segment) spilledBytes() int64 {
	if spillMappedResident {
		return 0
	}
	var b int64
	for i := range sg.blocks {
		blk := &sg.blocks[i]
		if blk.spilled != nil {
			b += int64(len(blk.starts))*4 + int64(len(blk.ids))*4
		}
	}
	for i := range sg.exts {
		e := &sg.exts[i]
		if e.mapped != nil {
			b += int64(len(e.data)) * 4
		}
	}
	return b
}

type chunkResult struct {
	buf     []uint32
	offsets []int32 // len = sets in chunk + 1
	width   int64
}

// sampleChunks generates the RR sets with global ids [gfrom, gto) in
// parallel chunks. RR set i is always produced by the PRNG stream
// (seed, i), so the output is bit-identical for any worker count — and for
// any partition of the id space across segments, which is what makes the
// sharded store's sample stream equal the flat one's.
func sampleChunks(s *Sampler, seed uint64, gfrom, gto, workers int) []chunkResult {
	results, _ := sampleChunksCtx(context.Background(), s, seed, gfrom, gto, workers)
	return results
}

// sampleChunksCtx is sampleChunks with cooperative cancellation: workers
// check ctx between chunk claims and stop claiming once it fires. On
// cancellation all sampled chunks are discarded and ctx.Err() is returned —
// the caller appends nothing, so an abandoned top-up can never leave a
// half-grown store. Chunks are the granularity: a fired ctx waits at most
// one chunk's sampling time per worker.
func sampleChunksCtx(ctx context.Context, s *Sampler, seed uint64, gfrom, gto, workers int) ([]chunkResult, error) {
	count := gto - gfrom
	nChunks := (count + chunkSize - 1) / chunkSize
	results := make([]chunkResult, nChunks)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := s.NewState()
			var r rng.Source // re-seeded per RR set: no per-set allocation
			for {
				if ctx.Err() != nil {
					return
				}
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= nChunks {
					return
				}
				lo := gfrom + ci*chunkSize
				hi := lo + chunkSize
				if hi > gto {
					hi = gto
				}
				res := chunkResult{offsets: make([]int32, 1, hi-lo+1)}
				buf := make([]uint32, 0, 4*(hi-lo))
				for id := lo; id < hi; id++ {
					r.SeedStream(seed, uint64(id))
					var w int64
					buf, _, w = s.AppendSample(&r, st, buf)
					res.offsets = append(res.offsets, int32(len(buf)))
					res.width += w
				}
				res.buf = buf
				results[ci] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// appendResults merges chunk results into the arena in chunk order (global
// ids are deterministic). One arena grow and one offset-table grow cover
// the whole batch.
func (sg *segment) appendResults(results []chunkResult) {
	var totalItems, totalSets int
	for ci := range results {
		totalItems += len(results[ci].buf)
		totalSets += len(results[ci].offsets) - 1
	}
	sg.buf = slices.Grow(sg.buf, totalItems)
	sg.offsets = slices.Grow(sg.offsets, totalSets)
	for ci := range results {
		res := &results[ci]
		off := sg.tailBase + int64(len(sg.buf))
		sg.buf = append(sg.buf, res.buf...)
		for j := 1; j < len(res.offsets); j++ {
			sg.offsets = append(sg.offsets, off+int64(res.offsets[j]))
		}
		sg.width += res.width
	}
}

// appendIndexBlock indexes local sets [from, to) into a new CSR block.
// Small trailing blocks are first absorbed (size-tiered, Bentley–Saxe
// style): any block no larger than the batch being appended is merged into
// it, so pathological many-small-Generate loops still leave O(log |R|)
// blocks and every posting is re-placed O(log |R|) times in total, while a
// doubling schedule keeps exactly one block per call. The build itself is
// O(items + n): a counting pass, a prefix sum, and a placement pass in
// ascending set order (which makes every per-node run ascending by
// construction — ascending local order is ascending global order, since a
// segment's global ids are strictly increasing in local index). Large
// batches build in parallel (see buildBlockParallel) with a layout
// bit-identical to the serial pass for any worker count.
func (sg *segment) appendIndexBlock(from, to, workers int) {
	newItems := int(sg.offsets[to] - sg.offsets[from])
	for len(sg.blocks) > 0 {
		last := &sg.blocks[len(sg.blocks)-1]
		// Spilled blocks are immutable, and blocks over frozen extents are
		// outside the tail a rebuild would slice — merging stops at either.
		if last.spilled != nil || last.lfrom < sg.tailSet || len(last.ids) > newItems {
			break
		}
		newItems += len(last.ids)
		from = last.lfrom
		sg.blocks = sg.blocks[:len(sg.blocks)-1]
	}
	n := sg.n
	starts := make([]int32, n+1)
	ids := make([]int32, newItems)
	if max := newItems / indexItemsPerWorker; workers > max {
		workers = max
	}
	// The parallel build's counting scratch is workers·n int32s; keep that
	// proportional to the block being indexed, or a huge-graph/small-block
	// build would pay O(cores·n) transient memory for little speedup.
	if n > 0 {
		if max := 2 * newItems / n; workers > max {
			workers = max
		}
	}
	if workers > 1 {
		sg.buildBlockParallel(from, to, starts, ids, workers)
	} else {
		sg.buildBlockSerial(from, to, starts, ids)
	}
	sg.blocks = append(sg.blocks, csrBlock{
		from: sg.gid(from), to: sg.gid(to-1) + 1,
		lfrom: from, lto: to,
		starts: starts, ids: ids,
	})
}

// buildBlockSerial is the single-threaded CSR build: count, prefix-sum,
// place. It reuses the segment's cursor scratch.
func (sg *segment) buildBlockSerial(from, to int, starts, ids []int32) {
	n := sg.n
	for _, v := range sg.tailItems(from, to) {
		starts[v+1]++
	}
	for v := 0; v < n; v++ {
		starts[v+1] += starts[v]
	}
	if cap(sg.cursor) < n {
		sg.cursor = make([]int32, n)
	}
	cursor := sg.cursor[:n]
	copy(cursor, starts[:n])
	for i := from; i < to; i++ {
		id := int32(sg.gid(i))
		for _, v := range sg.setAt(i) {
			ids[cursor[v]] = id
			cursor[v]++
		}
	}
}

// buildBlockParallel builds the same CSR layout with per-worker passes over
// contiguous set ranges, merged by prefix sum:
//
//  1. split [from, to) into ranges balanced by item count;
//  2. counting pass — worker w histograms its range into counts[w];
//  3. prefix-sum merge — one O(n·workers) serial sweep turns the counts
//     into starts plus per-worker placement cursors (worker w's postings
//     for node v begin at starts[v] + Σ_{w'<w} counts[w'][v]);
//  4. placement pass — each worker writes its range into its disjoint
//     cursor windows.
//
// Because the ranges partition [from, to) in ascending set order, every
// per-node run comes out ascending with postings at exactly the offsets the
// serial pass produces — the block is bit-identical for any worker count.
func (sg *segment) buildBlockParallel(from, to int, starts, ids []int32, workers int) {
	n := sg.n
	base := sg.offsets[from]
	items := sg.offsets[to] - base
	bounds := make([]int, workers+1)
	bounds[0] = from
	for w := 1; w < workers; w++ {
		target := base + items*int64(w)/int64(workers)
		// First set index whose start offset reaches the target split point.
		bounds[w] = from + sort.Search(to-from, func(i int) bool {
			return sg.offsets[from+i] >= target
		})
	}
	bounds[workers] = to

	countsBuf := make([]int32, workers*n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts := countsBuf[w*n : (w+1)*n]
			for _, v := range sg.tailItems(bounds[w], bounds[w+1]) {
				counts[v]++
			}
		}(w)
	}
	wg.Wait()

	for v := 0; v < n; v++ {
		run := starts[v]
		for w := 0; w < workers; w++ {
			cnt := countsBuf[w*n+v]
			countsBuf[w*n+v] = run
			run += cnt
		}
		starts[v+1] = run
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cursor := countsBuf[w*n : (w+1)*n]
			for i := bounds[w]; i < bounds[w+1]; i++ {
				id := int32(sg.gid(i))
				for _, v := range sg.setAt(i) {
					ids[cursor[v]] = id
					cursor[v]++
				}
			}
		}(w)
	}
	wg.Wait()
}

// Postings iterates over the RR sets containing a node as contiguous
// ascending runs (one per CSR block). Obtain one via PostingsUpto or
// PostingsRange on a Store. Within every run the global ids are strictly
// ascending and each id appears exactly once across the whole iteration;
// runs from a flat Collection are additionally ascending across run
// boundaries, while a ShardedCollection yields each shard's runs in turn
// (still disjoint, but interleaved in global id across shards). No consumer
// of the Store interface may rely on cross-run ordering.
type Postings struct {
	pre    [][]int32   // pre-fetched runs (remote shards), drained first
	blocks []csrBlock  // blocks of the segment currently being walked
	more   []*segment  // remaining segments (sharded stores only)
	sp     *spillState // non-nil ⇒ stamp resident blocks' LRU recency
	v      uint32
	from   int
	upto   int
	bi     int
}

// Next returns the next non-empty ascending run of global set ids, or false
// when the iteration is exhausted. Runs are sub-slices of the index blocks —
// no allocation.
func (p *Postings) Next() ([]int32, bool) {
	for {
		if len(p.pre) > 0 {
			run := p.pre[0]
			p.pre = p.pre[1:]
			if len(run) > 0 {
				return run, true
			}
			continue
		}
		for p.bi < len(p.blocks) {
			b := &p.blocks[p.bi]
			if b.from >= p.upto {
				// Blocks ascend by their global lower bound, so the rest of
				// this segment is out of range.
				p.bi = len(p.blocks)
				break
			}
			p.bi++
			if b.to <= p.from {
				continue
			}
			if p.sp != nil && b.spilled == nil {
				atomic.StoreUint64(&b.lastUse, p.sp.tick())
			}
			run := b.ids[b.starts[p.v]:b.starts[p.v+1]]
			if b.from < p.from {
				k := sort.Search(len(run), func(i int) bool { return int(run[i]) >= p.from })
				run = run[k:]
			}
			if b.to > p.upto {
				k := sort.Search(len(run), func(i int) bool { return int(run[i]) >= p.upto })
				run = run[:k]
			}
			if len(run) > 0 {
				return run, true
			}
		}
		if len(p.more) == 0 {
			return nil, false
		}
		p.blocks = p.more[0].blocks
		p.more = p.more[1:]
		p.bi = 0
	}
}
