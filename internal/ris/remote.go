package ris

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"time"
)

// This file is the wire protocol shared by RemoteShard (the coordinator-side
// shard client, remoteshard.go) and ShardServer (the worker side,
// shardserver.go). The protocol is deliberately tiny: length-prefixed binary
// frames over a stream transport (TCP or unix socket), little-endian, one
// request in flight per connection. Determinism does the heavy lifting —
// RR set i is a pure function of (kernel, seed, i) — so the coordinator and
// worker never negotiate state beyond "how many sets do you hold": any
// divergence is repaired by deterministic regeneration, not by shipping
// arenas.
//
// Frame layout: [u32 payload length][u8 kind][payload]. Request kinds are
// the op* constants, response kinds the resp* constants. Every request
// except opPing names a shard key, so one worker connection can multiplex
// any number of logical shards.
//
//	opOpen     key, nonce, spec     → respOK
//	opStats    key                  → respData{nsets, items, width, bytes}
//	opGenerate key, gfrom, gto, mir → respData{chunk}… then respEnd
//	opPostings key, v, from, upto   → respData{ids}
//	opCoverage key, from, to, seeds → respData{count}
//	opPing     —                    → respOK
//
// Errors come back as respErr{kind, message}. errFatal means the request
// itself is wrong (bad spec, node out of range) and retrying is pointless;
// errResync means the worker's view of the shard diverged from the
// coordinator's (worker restarted, shard evicted, or the coordinator rolled
// back a partial Generate) and the client should re-open and replay.

// Request ops.
const (
	opPing     = 1
	opOpen     = 2
	opGenerate = 3
	opPostings = 4
	opCoverage = 5
	opStats    = 6
)

// Response kinds.
const (
	respOK   = 100
	respErr  = 101
	respData = 102
	respEnd  = 103
)

// respErr payload kinds.
const (
	errFatal  = 1 // request is wrong; do not retry
	errResync = 2 // shard state diverged; re-open and replay
)

// maxFrame bounds a single frame's payload; a worker answering a postings
// or generate request larger than this must be mis-framed.
const maxFrame = 1 << 30

// DefaultRemoteTimeout bounds one RPC exchange (including the sampling work
// a Generate triggers on the worker) when StoreOptions.RemoteTimeout is 0.
const DefaultRemoteTimeout = 2 * time.Minute

// DialFunc opens a transport to a shard worker. The default dialer
// understands "host:port" (TCP) and "unix:/path" addresses; tests inject
// net.Pipe-backed dialers to run workers in-process.
type DialFunc func(addr string) (net.Conn, error)

// defaultDial is the production dialer: TCP, or a unix socket for
// "unix:/path" addresses.
func defaultDial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.DialTimeout("unix", path, 5*time.Second)
	}
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// PingWorker probes a shard worker's liveness with one opPing exchange on a
// fresh connection: dial, ping, respOK, close. dial == nil selects the
// default TCP/unix dialer, timeout ≤ 0 a short probe default (readiness
// checks must not hang behind an unplugged worker). The readiness endpoint
// of the serving layer is the caller; stores never ping — their reconnect
// loop subsumes it.
func PingWorker(addr string, dial DialFunc, timeout time.Duration) error {
	if dial == nil {
		dial = defaultDial
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := dial(addr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShardUnreachable, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, opPing, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrShardUnreachable, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("%w: %v", ErrShardUnreachable, err)
	}
	kind, _, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShardUnreachable, err)
	}
	if kind != respOK {
		return fmt.Errorf("%w: unexpected ping response kind %d", ErrShardUnreachable, kind)
	}
	return nil
}

// ErrShardUnreachable reports that a remote shard worker could not be
// reached (dial, deadline or transport failure) after the client's
// reconnect attempts. It is wrapped inside the *ShardError a remote-sharded
// store raises, so callers test errors.Is(err, ErrShardUnreachable) to
// distinguish degraded capacity from a genuinely bad request.
var ErrShardUnreachable = errors.New("ris: shard worker unreachable")

// ShardError is the typed failure a remote-sharded store surfaces when a
// worker RPC cannot be completed. The Store interface is error-free by
// design (see Store), so remote implementations raise *ShardError as a
// panic; Session.Maximize recovers it into an ordinary error return.
type ShardError struct {
	Addr string // worker address
	Op   string // logical operation: "generate", "postings", "coverage", …
	Err  error  // cause; wraps ErrShardUnreachable on transport failure
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("ris: shard worker %s: %s: %v", e.Addr, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// shardPanic raises err as the panic value remote Store methods use to
// escape the error-free Store interface. Already-typed errors pass through.
func shardPanic(addr, op string, err error) {
	var se *ShardError
	if errors.As(err, &se) {
		panic(se)
	}
	panic(&ShardError{Addr: addr, Op: op, Err: err})
}

// fatalError and resyncError are the client-side decodings of respErr.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return "worker: " + e.msg }

type resyncError struct{ msg string }

func (e *resyncError) Error() string { return "worker requests resync: " + e.msg }

// writeFrame emits one [len][kind][payload] frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting payloads over maxFrame.
func readFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// wbuf builds a little-endian payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) u32s(vs []uint32) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(v)
	}
}
func (w *wbuf) i32s(vs []int32) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(uint32(v))
	}
}

// errMalformed reports a payload shorter than its own structure claims.
var errMalformed = errors.New("malformed payload")

// rbuf decodes a little-endian payload; the first malformed read poisons
// every later one, so calls can be chained and err checked once.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = errMalformed
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *rbuf) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *rbuf) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *rbuf) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *rbuf) i64() int64     { return int64(r.u64()) }
func (r *rbuf) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *rbuf) str() string    { return string(r.take(int(r.u32()))) }
func (r *rbuf) remaining() int { return len(r.b) }

func (r *rbuf) u32s() []uint32 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 4*n {
		r.err = errMalformed
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

func (r *rbuf) i32s() []int32 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 4*n {
		r.err = errMalformed
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}

func (r *rbuf) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 8*n {
		r.err = errMalformed
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// shardSpec is everything a worker needs to reconstruct a shard's sampling
// stream from nothing: the spec plus the deterministic (seed, gid) PRNG
// streams fully determine every RR set, which is what makes worker restart
// recovery a replay instead of a state transfer.
type shardSpec struct {
	n       uint32 // graph node count, validated against the worker's graph
	model   uint8
	kernel  uint8
	seed    uint64
	workers uint32    // sampling parallelism on the worker; 0 = worker default
	weights []float64 // WRIS benefit weights; empty = uniform roots
}

func (sp *shardSpec) encode(w *wbuf) {
	w.u32(sp.n)
	w.u8(sp.model)
	w.u8(sp.kernel)
	w.u64(sp.seed)
	w.u32(sp.workers)
	w.u32(uint32(len(sp.weights)))
	for _, f := range sp.weights {
		w.f64(f)
	}
}

func (r *rbuf) spec() shardSpec {
	sp := shardSpec{
		n:       r.u32(),
		model:   r.u8(),
		kernel:  r.u8(),
		seed:    r.u64(),
		workers: r.u32(),
	}
	sp.weights = r.f64s()
	return sp
}

// encodeErr builds a respErr payload.
func encodeErr(kind byte, msg string) []byte {
	var w wbuf
	w.u8(kind)
	w.str(msg)
	return w.b
}

// decodeRespErr turns a respErr payload into the matching typed error.
func decodeRespErr(payload []byte) error {
	r := rbuf{b: payload}
	kind := r.u8()
	msg := r.str()
	if r.err != nil {
		return fmt.Errorf("undecodable worker error: %w", r.err)
	}
	if kind == errResync {
		return &resyncError{msg: msg}
	}
	return &fatalError{msg: msg}
}
