package ris

import (
	"fmt"
	"slices"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// assertStoresEqual checks the observable Store surface of got against the
// flat reference: lengths, aggregates, every Set, per-node postings (as id
// sets — the sharded store may order runs differently), and both coverage
// paths over a few windows.
func assertStoresEqual(t *testing.T, ctx string, ref *Collection, got Store) {
	t.Helper()
	if got.Len() != ref.Len() || got.Items() != ref.Items() || got.Width() != ref.Width() {
		t.Fatalf("%s: aggregates differ: len %d/%d items %d/%d width %d/%d", ctx,
			got.Len(), ref.Len(), got.Items(), ref.Items(), got.Width(), ref.Width())
	}
	for i := 0; i < ref.Len(); i++ {
		if !slices.Equal(ref.Set(i), got.Set(i)) {
			t.Fatalf("%s: set %d differs", ctx, i)
		}
	}
	n := ref.NumNodes()
	for v := uint32(0); int(v) < n; v++ {
		want := ref.Index(v)
		have := gatherPostings(got, v, 0, got.Len())
		if !slices.Equal(want, have) {
			t.Fatalf("%s: node %d postings differ: %v vs %v", ctx, v, have, want)
		}
	}
	// Coverage parity on a mark vector and on the index-driven path, over
	// whole-stream and half-window ranges.
	mark := make([]bool, n)
	var seeds []uint32
	for v := 0; v < n; v += 3 {
		mark[v] = true
		seeds = append(seeds, uint32(v))
	}
	half := ref.Len() / 2
	for _, w := range [][2]int{{0, ref.Len()}, {half, ref.Len()}, {half / 2, half}} {
		if a, b := ref.CoverageRange(mark, w[0], w[1]), got.CoverageRange(mark, w[0], w[1]); a != b {
			t.Fatalf("%s: CoverageRange[%d,%d) %d vs %d", ctx, w[0], w[1], b, a)
		}
		if a, b := ref.CoverageRangeSeeds(seeds, w[0], w[1]), got.CoverageRangeSeeds(seeds, w[0], w[1]); a != b {
			t.Fatalf("%s: CoverageRangeSeeds[%d,%d) %d vs %d", ctx, w[0], w[1], b, a)
		}
	}
}

// gatherPostings collects the ids in [from, upto) of sets containing v,
// sorted, verifying each id appears exactly once across runs.
func gatherPostings(st Store, v uint32, from, upto int) []int32 {
	var out []int32
	it := st.PostingsRange(v, from, upto)
	for {
		run, ok := it.Next()
		if !ok {
			break
		}
		prev := int32(-1)
		for _, id := range run {
			if id <= prev {
				panic("postings run not strictly ascending")
			}
			prev = id
		}
		out = append(out, run...)
	}
	slices.Sort(out)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			panic("duplicate id across postings runs")
		}
	}
	return out
}

// TestShardedBitIdenticalToFlat pins the tentpole contract at the store
// level: for any shard count and any per-shard worker count, the sharded
// store holds exactly the flat store's sample stream — same sets, same
// postings, same coverage counts — for uniform RIS and WRIS samplers and
// both one-shot and doubling schedules.
func TestShardedBitIdenticalToFlat(t *testing.T) {
	g, err := gen.ChungLu(180, 1100, 2.1, 47, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = float64(v%7) + 0.5
	}
	samplers := map[string]*Sampler{
		"ris":  mustSampler(t, g, diffusion.IC),
		"wris": mustWeightedSampler(t, g, diffusion.LT, weights),
	}
	schedules := map[string][]int{
		"one-shot": {1500},
		"doubling": {100, 200, 400, 800, 1500},
	}
	for sname, s := range samplers {
		for schedName, schedule := range schedules {
			ref := NewCollection(s, 909, 1)
			for _, target := range schedule {
				ref.GenerateTo(target)
			}
			for _, shards := range []int{1, 2, 3, 7} {
				for _, workers := range []int{1, 4} {
					ctx := fmt.Sprintf("%s/%s/shards=%d/workers=%d", sname, schedName, shards, workers)
					sc := NewShardedCollection(s, 909, shards, workers)
					for _, target := range schedule {
						sc.GenerateTo(target)
					}
					assertStoresEqual(t, ctx, ref, sc)
				}
			}
		}
	}
}

// TestShardedGenerateToRandomizedSchedules mixes irregular growth steps —
// +1, +3, and prefix-doubling, in seeded-random order — to pin
// shard-boundary off-by-ones in the epoch split tables, reusing the WRIS
// irregular schedules of equivalence_test.go as fixed prefixes. Every
// intermediate state is compared against a flat collection grown in
// lockstep.
func TestShardedGenerateToRandomizedSchedules(t *testing.T) {
	g, err := gen.ChungLu(150, 900, 2.1, 83, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = float64((v*13)%5) + 1
	}
	s := mustWeightedSampler(t, g, diffusion.IC, weights)
	// The equivalence_test.go WRIS schedules: doubling and irregular.
	fixed := [][]int{
		{100, 200, 400, 800},
		{1, 3, 700, 701, 800},
	}
	for _, shards := range []int{2, 3, 7} {
		for fi, prefix := range fixed {
			ref := NewCollection(s, 4242, 2)
			sc := NewShardedCollection(s, 4242, shards, 2)
			grow := func(target int) {
				ref.GenerateTo(target)
				sc.GenerateTo(target)
			}
			for _, target := range prefix {
				grow(target)
			}
			// Randomized continuation: 30 steps of +1 / +3 / doubling.
			r := rng.NewStream(77, uint64(shards*10+fi))
			for step := 0; step < 30; step++ {
				target := ref.Len()
				switch r.Intn(3) {
				case 0:
					target++
				case 1:
					target += 3
				default:
					target *= 2
				}
				if target > 4000 {
					target = ref.Len() + 1
				}
				grow(target)
				if sc.Len() != ref.Len() {
					t.Fatalf("shards=%d fixed=%d step=%d: len %d vs %d",
						shards, fi, step, sc.Len(), ref.Len())
				}
				// Spot-check the newest sets and a boundary-straddling
				// postings window every step; full check at the end.
				for i := ref.Len() - 1; i >= 0 && i >= ref.Len()-4; i-- {
					if !slices.Equal(ref.Set(i), sc.Set(i)) {
						t.Fatalf("shards=%d fixed=%d step=%d: set %d differs", shards, fi, step, i)
					}
				}
			}
			assertStoresEqual(t, fmt.Sprintf("shards=%d fixed=%d", shards, fi), ref, sc)
		}
	}
}

// TestShardedSetMatchesForEachSet pins the two set-access paths against
// each other across epoch and shard boundaries (locate's binary search and
// shard-formula vs the epoch-walk scan).
func TestShardedSetMatchesForEachSet(t *testing.T) {
	g, err := gen.ErdosRenyi(90, 500, 11, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.LT)
	sc := NewShardedCollection(s, 5, 3, 2)
	for _, target := range []int{1, 2, 5, 50, 1000, 1001} {
		sc.GenerateTo(target)
	}
	seen := 0
	sc.ForEachSet(0, sc.Len(), func(i int, set []uint32) {
		if i != seen {
			t.Fatalf("ForEachSet out of order: got id %d want %d", i, seen)
		}
		seen++
		if !slices.Equal(set, sc.Set(i)) {
			t.Fatalf("set %d: ForEachSet and Set disagree", i)
		}
	})
	if seen != sc.Len() {
		t.Fatalf("ForEachSet visited %d of %d sets", seen, sc.Len())
	}
	// Sub-windows, including empty and clamped ones.
	for _, w := range [][2]int{{17, 23}, {999, 1001}, {0, 1}, {500, 500}, {-5, 2}, {1000, 9999}} {
		lo, hi := w[0], w[1]
		want := 0
		clo, chi := max(lo, 0), min(hi, sc.Len())
		if chi > clo {
			want = chi - clo
		}
		n := 0
		sc.ForEachSet(lo, hi, func(i int, set []uint32) {
			if i < clo || i >= chi {
				t.Fatalf("ForEachSet[%d,%d) yielded out-of-window id %d", lo, hi, i)
			}
			n++
		})
		if n != want {
			t.Fatalf("ForEachSet[%d,%d) visited %d sets, want %d", lo, hi, n, want)
		}
	}
}

func mustWeightedSampler(t testing.TB, g *graph.Graph, model diffusion.Model, weights []float64) *Sampler {
	t.Helper()
	s, err := NewWeightedSampler(g, model, weights)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
