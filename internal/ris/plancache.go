package ris

import (
	"container/list"
	"sync"
	"sync/atomic"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
)

// This file is the process-wide plan cache: compiled sampling plans are
// keyed by (graph, model), so every sampler on the same graph — plain RIS,
// weighted WRIS, kernel copies, samplers inside long-lived serving Sessions
// and throwaway samplers inside one-shot Maximize calls — shares one
// compilation. The plan depends only on the graph topology/weights and the
// propagation model (the kernel merely selects whether the plan is consulted
// at all), so one entry per (graph, model) means "compiled exactly once per
// (graph, model, kernel)" holds trivially for any kernel mix.
//
// Keys are graph *pointers*: graphs are immutable after construction in this
// codebase, and pointer identity is exactly the sharing the serving layer
// wants (two loads of the same file are different graphs and legitimately
// recompile). Mapped graphs (graph.OpenMapped) key identically: the Graph
// façade is one heap object per open no matter where its arrays live, so a
// served .sasg graph compiles its plan once exactly like a heap graph —
// pinned by TestPlanCacheMappedGraph.
//
// The registry is a bounded LRU (planCacheLimit live (graph, model) keys),
// so a process churning through a stream of throwaway graphs — a parameter
// sweep generating one per trial, say — cannot pin graphs and plans without
// bound: the oldest entry (and with it the only registry reference to its
// graph) falls out when the cap is exceeded. Eviction never breaks a live
// sampler: samplers hold their cache slot directly and keep working; only
// *future* samplers on the evicted (graph, model) recompile. A server that
// retires a graph deliberately should still call DropCachedPlans to release
// it immediately rather than waiting for churn.

// planCacheLimit bounds the number of live (graph, model) registry entries.
// Far above any realistic number of concurrently-served graphs, while
// keeping the worst-case pinned memory proportional to a constant number of
// graphs rather than to the process's whole allocation history.
const planCacheLimit = 128

// planKey identifies one compiled plan.
type planKey struct {
	g     *graph.Graph
	model diffusion.Model
}

// planCache holds one lazily compiled plan plus its compile counter. All
// samplers on the same (graph, model) share one instance through the
// registry, so the sync.Once makes concurrent first uses compile once.
type planCache struct {
	once     sync.Once
	plan     atomic.Pointer[Plan]
	compiles atomic.Int64
}

// planEntry is one LRU node: the key plus its shared cache slot.
type planEntry struct {
	key planKey
	pc  *planCache
}

// planRegistry is the bounded LRU of plan cache slots. The mutex guards
// only the map/list bookkeeping — compilation itself runs outside it,
// serialized per entry by the planCache's own sync.Once.
var planRegistry = struct {
	mu      sync.Mutex
	entries map[planKey]*list.Element
	order   *list.List // front = most recently used
}{
	entries: make(map[planKey]*list.Element),
	order:   list.New(),
}

// sharedPlanCache returns the process-wide cache slot for (g, model),
// creating the (empty, not yet compiled) slot on first request and
// evicting the least recently used key beyond planCacheLimit.
func sharedPlanCache(g *graph.Graph, model diffusion.Model) *planCache {
	k := planKey{g: g, model: model}
	r := &planRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.entries[k]; ok {
		r.order.MoveToFront(el)
		return el.Value.(*planEntry).pc
	}
	pc := &planCache{}
	r.entries[k] = r.order.PushFront(&planEntry{key: k, pc: pc})
	for len(r.entries) > planCacheLimit {
		oldest := r.order.Back()
		delete(r.entries, oldest.Value.(*planEntry).key)
		r.order.Remove(oldest)
	}
	return pc
}

// lookupPlanCache returns the live cache slot for (g, model) without
// creating or promoting it (reads must not disturb the LRU order).
func lookupPlanCache(g *graph.Graph, model diffusion.Model) (*planCache, bool) {
	r := &planRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[planKey{g: g, model: model}]
	if !ok {
		return nil, false
	}
	return el.Value.(*planEntry).pc, true
}

// PlanCompilations reports how many times a plan was compiled for the LIVE
// registry entry of (g, model) — 0 before first use, and 1 forever after
// unless the entry is evicted and recompiled. The serving layer's "plan
// compiled exactly once per (graph, model, kernel) across all sessions and
// samplers" invariant is pinned against this counter.
func PlanCompilations(g *graph.Graph, model diffusion.Model) int64 {
	if pc, ok := lookupPlanCache(g, model); ok {
		return pc.compiles.Load()
	}
	return 0
}

// CachedPlanBytes reports the resident bytes of the compiled plan for
// (g, model), 0 if none was compiled. Non-forcing.
func CachedPlanBytes(g *graph.Graph, model diffusion.Model) int64 {
	if pc, ok := lookupPlanCache(g, model); ok {
		if p := pc.plan.Load(); p != nil {
			return p.Bytes()
		}
	}
	return 0
}

// DropCachedPlans evicts the cached plans of g (both models) from the
// registry, releasing the graph key. Samplers already holding the plan keep
// working — eviction only makes future samplers recompile.
func DropCachedPlans(g *graph.Graph) {
	r := &planRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		if el, ok := r.entries[planKey{g: g, model: model}]; ok {
			delete(r.entries, planKey{g: g, model: model})
			r.order.Remove(el)
		}
	}
}
