package ris

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// crashFS is the fault-injecting SnapshotFS: it performs real filesystem
// operations while tracking, per file, how many bytes are durable (synced),
// and can inject a failed write, a torn write, a silent bit flip, dropped
// fsyncs or a dropped rename. Crash() then simulates the machine dying by
// truncating every file to its durable prefix. Renaming an unsynced file
// flushes it first (the replace-via-rename heuristic of real filesystems).
type crashFS struct {
	failAt   int // 1-based global write index to fail outright
	tornAt   int // 1-based write index to half-write then fail
	flipAt   int // 1-based write index to corrupt silently
	dropSync bool
	dropRen  bool
	writes   int
	files    []*crashFile
}

type crashFile struct {
	fs      *crashFS
	f       *os.File
	path    string
	written int64
	synced  int64
}

func (fs *crashFS) Create(name string) (SnapshotFile, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{fs: fs, f: f, path: name}
	fs.files = append(fs.files, cf)
	return cf, nil
}

func (cf *crashFile) Write(p []byte) (int, error) {
	fs := cf.fs
	fs.writes++
	switch fs.writes {
	case fs.failAt:
		return 0, errors.New("injected write failure")
	case fs.tornAt:
		n, _ := cf.f.Write(p[:len(p)/2])
		cf.written += int64(n)
		return n, errors.New("injected torn write")
	case fs.flipAt:
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0x20
		n, err := cf.f.Write(q)
		cf.written += int64(n)
		return n, err
	}
	n, err := cf.f.Write(p)
	cf.written += int64(n)
	return n, err
}

func (cf *crashFile) Sync() error {
	if cf.fs.dropSync {
		return nil
	}
	if err := cf.f.Sync(); err != nil {
		return err
	}
	cf.synced = cf.written
	return nil
}

func (cf *crashFile) Close() error { return cf.f.Close() }

func (fs *crashFS) Rename(oldname, newname string) error {
	if fs.dropRen {
		return errors.New("injected rename failure")
	}
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	for _, cf := range fs.files {
		if cf.path == oldname {
			cf.path = newname
			cf.synced = cf.written
		}
	}
	return nil
}

func (fs *crashFS) Remove(name string) error { return os.Remove(name) }
func (fs *crashFS) SyncDir(string) error     { return nil }

// Crash simulates the process and machine dying: every byte past a file's
// durable prefix is lost.
func (fs *crashFS) Crash() {
	for _, cf := range fs.files {
		os.Truncate(cf.path, cf.synced)
	}
}

func snapTestSampler(t *testing.T) *Sampler {
	t.Helper()
	g, err := gen.ChungLu(120, 700, 2.1, 5, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return mustSampler(t, g, diffusion.IC)
}

func growPattern(st Store) {
	for _, c := range []int{1, 3, 40, 2, 90, 17} {
		st.Generate(c)
	}
}

func snapOpt(shards int) StoreOptions {
	return StoreOptions{Workers: 2, Shards: shards, ShardWorkers: 2}
}

// snapBlockPos locates every block of a committed snapshot file by walking
// the headers — the external-corruption tests patch payload bytes in place.
type snapBlockPos struct {
	off, plen int64
	kind      byte
}

func snapBlockTable(t *testing.T, path string) []snapBlockPos {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []snapBlockPos
	off := int64(0)
	for off+snapHdrSize <= int64(len(data)) {
		hdr := data[off:]
		if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic {
			t.Fatalf("bad magic at offset %d", off)
		}
		plen := int64(binary.LittleEndian.Uint64(hdr[8:]))
		out = append(out, snapBlockPos{off: off, plen: plen, kind: hdr[4]})
		off = snapAdvance(off, plen)
	}
	return out
}

func flipFileByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTrip is the recovery-exactness leg: persist an
// irregularly grown (and partially spilled) store, recover it, and require
// every observable bit-identical to the uninterrupted twin — then grow both
// and require identity to hold across post-recovery growth and a second
// persist/recover generation.
func TestSnapshotRoundTrip(t *testing.T) {
	s := snapTestSampler(t)
	for _, shards := range []int{0, 1, 3} {
		ctx := map[int]string{0: "flat", 1: "one-shard", 3: "sharded"}[shards]
		dir := t.TempDir()
		opt := snapOpt(shards)

		ref := NewStore(s, 42, opt)
		growPattern(ref)
		st := NewStore(s, 42, opt)
		growPattern(st)

		info, err := st.(PersistentStore).Persist(dir)
		if err != nil {
			t.Fatalf("%s: persist: %v", ctx, err)
		}
		if info.Sets != st.Len() || info.Bytes <= 0 || info.Generation != 1 {
			t.Fatalf("%s: info %+v for %d sets", ctx, info, st.Len())
		}

		rec, rinfo, err := Recover(s, 42, opt, dir)
		if err != nil {
			t.Fatalf("%s: recover: %v", ctx, err)
		}
		if rinfo.Discarded != 0 || rinfo.Sets != ref.Len() || rinfo.RebuiltIndexBlocks != 0 {
			t.Fatalf("%s: recovery info %+v, want clean %d sets", ctx, rinfo, ref.Len())
		}
		storeObservables(t, ctx+"/recovered", ref, rec)

		// Growth on top of recovered state stays bit-identical.
		ref.Generate(60)
		rec.Generate(60)
		storeObservables(t, ctx+"/regrown", ref, rec)

		// Second generation: persist the recovered store, recover again.
		info2, err := rec.(PersistentStore).Persist(dir)
		if err != nil {
			t.Fatalf("%s: re-persist: %v", ctx, err)
		}
		if info2.Generation != 2 {
			t.Fatalf("%s: generation %d, want 2", ctx, info2.Generation)
		}
		rec2, _, err := Recover(s, 42, opt, dir)
		if err != nil {
			t.Fatalf("%s: re-recover: %v", ctx, err)
		}
		storeObservables(t, ctx+"/gen2", ref, rec2)

		// The superseded generation was swept.
		ents, _ := os.ReadDir(dir)
		snaps := 0
		for _, e := range ents {
			if filepath.Ext(e.Name()) == snapSuffix {
				snaps++
			}
		}
		if snaps != 1 {
			t.Fatalf("%s: %d snapshot files after re-persist, want 1", ctx, snaps)
		}
	}
}

// TestSnapshotSpilledRoundTrip persists a store whose extents and index
// blocks live on the spill file and recovers it without a spill tier: the
// snapshot is self-contained regardless of where payloads were resident.
func TestSnapshotSpilledRoundTrip(t *testing.T) {
	s := snapTestSampler(t)
	ref := NewStore(s, 7, snapOpt(0))
	growPattern(ref)

	st := spilledStore(t, s, 7, 0, 1)
	growPattern(st)
	if err := st.(SpilledStore).SpillTo(0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := st.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	rec, rinfo, err := Recover(s, 7, snapOpt(0), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Discarded != 0 {
		t.Fatalf("recovery info %+v, want clean", rinfo)
	}
	storeObservables(t, "spilled", ref, rec)

	// And the inverse: recover INTO a spill-enabled store and keep growing.
	recSp, _, err := Recover(s, 7, StoreOptions{
		Workers: 2, SpillBudgetBytes: 1, SpillDir: t.TempDir(),
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	ref.Generate(80)
	recSp.Generate(80)
	storeObservables(t, "spilled-recover-spill", ref, recSp)
}

// TestSnapshotEmptyStore pins the degenerate shape: persisting an empty
// store round-trips, and the recovered store grows bit-identically.
func TestSnapshotEmptyStore(t *testing.T) {
	s := snapTestSampler(t)
	dir := t.TempDir()
	st := NewStore(s, 9, snapOpt(0))
	if _, err := st.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	rec, rinfo, err := Recover(s, 9, snapOpt(0), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 || rinfo.Sets != 0 {
		t.Fatalf("recovered %d sets from empty snapshot", rec.Len())
	}
	ref := NewStore(s, 9, snapOpt(0))
	ref.Generate(50)
	rec.Generate(50)
	storeObservables(t, "empty", ref, rec)
}

// TestSnapshotMismatch covers the refuse-to-recover paths: no snapshot,
// wrong seed, wrong topology, wrong model — all typed, nothing torn.
func TestSnapshotMismatch(t *testing.T) {
	s := snapTestSampler(t)
	if _, _, err := Recover(s, 42, snapOpt(0), t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}

	dir := t.TempDir()
	st := NewStore(s, 42, snapOpt(0))
	st.Generate(40)
	if _, err := st.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	var mm *SnapshotMismatchError
	if _, _, err := Recover(s, 43, snapOpt(0), dir); !errors.As(err, &mm) {
		t.Fatalf("wrong seed: %v, want SnapshotMismatchError", err)
	}
	if _, _, err := Recover(s, 42, snapOpt(2), dir); !errors.As(err, &mm) {
		t.Fatalf("wrong topology: %v, want SnapshotMismatchError", err)
	}
	lt := mustSampler(t, s.Graph(), diffusion.LT)
	if _, _, err := Recover(lt, 42, snapOpt(0), dir); !errors.As(err, &mm) {
		t.Fatalf("wrong model: %v, want SnapshotMismatchError", err)
	}

	// A mangled manifest is corrupt, not torn.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *SnapshotCorruptError
	if _, _, err := Recover(s, 42, snapOpt(0), dir); !errors.As(err, &ce) {
		t.Fatalf("mangled manifest: %v, want SnapshotCorruptError", err)
	}
}

// TestSnapshotCorruptBlock is the graceful-degradation leg: flip a payload
// byte in an arena block of a committed snapshot and recovery must discard
// exactly the unrecoverable suffix and resample it deterministically —
// observables end up bit-identical to the twin. A corrupt CSR index block
// alone loses nothing (rebuilt from the arena), and a corrupt offsets table
// discards the whole segment's stream suffix.
func TestSnapshotCorruptBlock(t *testing.T) {
	s := snapTestSampler(t)
	for _, shards := range []int{0, 3} {
		ctx := map[int]string{0: "flat", 3: "sharded"}[shards]
		opt := snapOpt(shards)
		ref := NewStore(s, 11, opt)
		growPattern(ref)

		persist := func() (string, string) {
			t.Helper()
			st := NewStore(s, 11, opt)
			// Spill mid-life so the snapshot holds several arena blocks per
			// segment and a corrupt one leaves a nonempty good prefix.
			sp := spilledStore(t, s, 11, shards, 1)
			_ = sp
			stSp := spilledStore(t, s, 11, shards, 1)
			growPattern(stSp)
			_ = st
			dir := t.TempDir()
			info, err := stSp.(PersistentStore).Persist(dir)
			if err != nil {
				t.Fatal(err)
			}
			return dir, info.Path
		}

		// Arena corruption: suffix discard + deterministic resample.
		dir, path := persist()
		var arenas []snapBlockPos
		for _, b := range snapBlockTable(t, path) {
			if b.kind == snapKindArena && b.plen > 0 {
				arenas = append(arenas, b)
			}
		}
		if len(arenas) < 2 {
			t.Fatalf("%s: %d arena blocks, need >= 2", ctx, len(arenas))
		}
		last := arenas[len(arenas)-1]
		flipFileByte(t, path, last.off+snapHdrSize+last.plen/2)
		rec, rinfo, err := Recover(s, 11, opt, dir)
		if err != nil {
			t.Fatalf("%s: recover with corrupt arena: %v", ctx, err)
		}
		if rinfo.Discarded == 0 || rinfo.Discarded >= ref.Len() || rinfo.Resampled != rinfo.Discarded {
			t.Fatalf("%s: recovery info %+v, want partial discard+resample of %d sets", ctx, rinfo, ref.Len())
		}
		storeObservables(t, ctx+"/corrupt-arena", ref, rec)

		// Index corruption: rebuilt from the arena, nothing discarded.
		if shards == 0 { // remote-less sharded stores also keep indexes, but one leg suffices
			dir, path = persist()
			var idx []snapBlockPos
			for _, b := range snapBlockTable(t, path) {
				if b.kind == snapKindIndex {
					idx = append(idx, b)
				}
			}
			if len(idx) == 0 {
				t.Fatal("no index blocks persisted")
			}
			flipFileByte(t, path, idx[0].off+snapHdrSize+idx[0].plen/2)
			rec, rinfo, err = Recover(s, 11, opt, dir)
			if err != nil {
				t.Fatal(err)
			}
			if rinfo.Discarded != 0 || rinfo.RebuiltIndexBlocks == 0 {
				t.Fatalf("recovery info %+v, want 0 discarded and a rebuilt index", rinfo)
			}
			storeObservables(t, "corrupt-index", ref, rec)

			// Offsets corruption: whole segment gone, fully resampled.
			dir, path = persist()
			blocks := snapBlockTable(t, path)
			for _, b := range blocks {
				if b.kind == snapKindOffsets {
					flipFileByte(t, path, b.off+snapHdrSize+b.plen/2)
					break
				}
			}
			rec, rinfo, err = Recover(s, 11, opt, dir)
			if err != nil {
				t.Fatal(err)
			}
			if rinfo.Discarded != ref.Len() || rec.Len() != ref.Len() {
				t.Fatalf("recovery info %+v, want full discard and resample to %d", rinfo, ref.Len())
			}
			storeObservables(t, "corrupt-offsets", ref, rec)
		}
	}
}

// TestSnapshotCrashFaults enumerates every fault point of the snapshot
// protocol — each individual write failed or torn, the rename dropped, every
// fsync dropped before a crash — and requires recovery to land on exactly
// the previous or the new complete state, never a torn one.
func TestSnapshotCrashFaults(t *testing.T) {
	s := snapTestSampler(t)
	opt := snapOpt(0)

	build := func(extra int) Store {
		st := NewStore(s, 42, opt)
		growPattern(st)
		if extra > 0 {
			st.Generate(extra)
		}
		return st
	}
	stateA := build(0)
	lenA := stateA.Len()
	stateB := build(150)
	lenB := stateB.Len()

	// Probe a clean persist of state B to count protocol writes.
	probe := &crashFS{}
	if _, err := stateB.(PersistentStore).PersistFS(t.TempDir(), probe); err != nil {
		t.Fatal(err)
	}
	writes := probe.writes
	if writes < 6 {
		t.Fatalf("probe counted %d writes", writes)
	}

	check := func(name, dir string, wantLens ...int) {
		t.Helper()
		if _, err := CleanStateDir(dir); err != nil {
			t.Fatal(err)
		}
		rec, rinfo, err := Recover(s, 42, opt, dir)
		if err != nil {
			t.Fatalf("%s: recover: %v", name, err)
		}
		if !slices.Contains(wantLens, rinfo.Sets) {
			t.Fatalf("%s: recovered %d sets (info %+v), want one of %v", name, rinfo.Sets, rinfo, wantLens)
		}
		twin := NewStore(s, 42, opt)
		twin.GenerateTo(rec.Len())
		storeObservables(t, name, twin, rec)
	}

	for k := 1; k <= writes; k++ {
		for _, torn := range []bool{false, true} {
			name := map[bool]string{false: "fail", true: "torn"}[torn]
			dir := t.TempDir()
			if _, err := stateA.(PersistentStore).Persist(dir); err != nil {
				t.Fatal(err)
			}
			fs := &crashFS{}
			if torn {
				fs.tornAt = k
			} else {
				fs.failAt = k
			}
			if _, err := stateB.(PersistentStore).PersistFS(dir, fs); err == nil {
				t.Fatalf("%s@%d: persist succeeded despite injection", name, k)
			}
			fs.Crash()
			// Every write precedes the manifest commit, so the previous
			// state must survive intact.
			check(name+"@write", dir, lenA)
		}
	}

	// Dropped rename: the new snapshot is fully written but never committed.
	dir := t.TempDir()
	if _, err := stateA.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	fs := &crashFS{dropRen: true}
	if _, err := stateB.(PersistentStore).PersistFS(dir, fs); err == nil {
		t.Fatal("persist succeeded despite dropped rename")
	}
	fs.Crash()
	check("dropped-rename", dir, lenA)

	// Dropped fsyncs with a crash before the rename: nothing new is durable.
	dir = t.TempDir()
	if _, err := stateA.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	fs = &crashFS{dropSync: true, dropRen: true}
	if _, err := stateB.(PersistentStore).PersistFS(dir, fs); err == nil {
		t.Fatal("persist succeeded despite dropped rename")
	}
	fs.Crash()
	check("dropped-fsync-and-rename", dir, lenA)

	// Dropped fsyncs but the commit "succeeds" before the crash (a lying
	// disk): the manifest survives via replace-via-rename but the snapshot
	// payload is lost, so its blocks fail validation and recovery resamples
	// the discarded suffix — landing on the new state.
	dir = t.TempDir()
	if _, err := stateA.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	fs = &crashFS{dropSync: true}
	if _, err := stateB.(PersistentStore).PersistFS(dir, fs); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	rec, rinfo, err := Recover(s, 42, opt, dir)
	if err != nil {
		// The snapshot file may be truncated below even its meta block;
		// that is a typed corrupt error and a cold start, never torn state.
		var ce *SnapshotCorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("lying-fsync recover: %v", err)
		}
	} else {
		if rinfo.Sets != lenB {
			t.Fatalf("lying-fsync recovered %d sets, want %d (info %+v)", rinfo.Sets, lenB, rinfo)
		}
		storeObservables(t, "lying-fsync", stateB, rec)
	}

	// Silent bit flips on every write of the snapshot payload: recovery must
	// either land on the complete new state (resampling whatever the flip
	// destroyed) or reject the snapshot with a typed corrupt error (flips
	// inside the meta block or manifest); at least one flip must exercise
	// the discard+resample path.
	resampled := 0
	for k := 1; k <= writes; k++ {
		dir := t.TempDir()
		fs := &crashFS{flipAt: k}
		if _, err := stateB.(PersistentStore).PersistFS(dir, fs); err != nil {
			t.Fatalf("flip@%d: persist: %v", k, err)
		}
		rec, rinfo, err := Recover(s, 42, opt, dir)
		if err != nil {
			var ce *SnapshotCorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip@%d: %v, want SnapshotCorruptError or success", k, err)
			}
			continue
		}
		if rinfo.Sets != lenB {
			t.Fatalf("flip@%d: recovered %d sets, want %d", k, rinfo.Sets, lenB)
		}
		if rinfo.Discarded > 0 {
			resampled++
		}
		storeObservables(t, "flip", stateB, rec)
	}
	if resampled == 0 {
		t.Fatal("no flip exercised the discard+resample path")
	}
}

// TestCleanStateDir seeds a dirty directory — stale tmp files and an
// unreferenced snapshot next to a committed one — and checks startup cleanup
// removes exactly the leftovers.
func TestCleanStateDir(t *testing.T) {
	s := snapTestSampler(t)
	dir := t.TempDir()
	st := NewStore(s, 42, snapOpt(0))
	st.Generate(30)
	if _, err := st.(PersistentStore).Persist(dir); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"manifest.json.tmp", "snapshot-000099.rrsnap", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := CleanStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(removed)
	if !slices.Equal(removed, []string{"manifest.json.tmp", "snapshot-000099.rrsnap"}) {
		t.Fatalf("removed %v", removed)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatal("cleanup removed an unrelated file")
	}
	if _, _, err := Recover(s, 42, snapOpt(0), dir); err != nil {
		t.Fatalf("recover after cleanup: %v", err)
	}

	// Cleaning a directory that does not exist is a quiet no-op.
	if removed, err := CleanStateDir(filepath.Join(dir, "missing")); err != nil || removed != nil {
		t.Fatalf("missing dir: %v %v", removed, err)
	}
}

// TestCleanSpillDir seeds leftover spill files (a crash on a platform
// without anonymous unlink) and checks only those are removed.
func TestCleanSpillDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"rrspill-123.spill", "rrspill-9.spill", "keep.spill", "rrspill-x.other"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := CleanSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(removed)
	if !slices.Equal(removed, []string{"rrspill-123.spill", "rrspill-9.spill"}) {
		t.Fatalf("removed %v", removed)
	}
}

// TestSpillPayloadBitFlip pins the live spill tier's checksum: a silent
// payload flip — header intact — surfaces as ErrBadSpill at map time.
func TestSpillPayloadBitFlip(t *testing.T) {
	sf, err := newSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for i := 0; i < 2; i++ {
		if _, err := sf.append(spillKindArena, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sf.f.WriteAt([]byte{payload[500] ^ 1}, sf.blocks[0].off+spillHdrSize+500); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.mapPayload(0, spillKindArena); !errors.Is(err, ErrBadSpill) {
		t.Fatalf("flipped payload: %v, want ErrBadSpill", err)
	}
	if got, err := sf.mapPayload(1, spillKindArena); err != nil || !slices.Equal(got, payload) {
		t.Fatalf("intact block: %v", err)
	}
}
