package ris

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/epoch"
	"stopandstare/internal/graph"
)

// ShardServer is the worker side of cross-process sharding: it opens the
// graph once (read-only — a mapped .sasg costs one set of pages shared by
// every worker on the host) and owns the arena + CSR index of any number of
// logical shards, keyed by the coordinator-chosen shard key. cmd/imworker
// wraps one ShardServer per process; tests drive ServeConn directly over
// net.Pipe.
//
// The server is deliberately stateless-recoverable: a shard's spec plus the
// deterministic (seed, gid) PRNG streams fully determine its contents, so a
// restarted or evicted shard is rebuilt by the coordinator replaying
// Generate calls — no persistent state, no arena shipping.
type ShardServerOptions struct {
	// SamplingWorkers bounds generation parallelism for shards whose spec
	// asks for the worker default (0); ≤0 selects GOMAXPROCS.
	SamplingWorkers int
	// MaxShards caps resident shard states; beyond it the least-recently
	// used shard is dropped (coordinators recover via deterministic
	// replay). ≤0 selects 64.
	MaxShards int
	// SpillBudgetBytes > 0 enables the disk spill tier for the whole worker
	// process: after any shard growth that leaves more than this many
	// resident RR bytes across ALL resident shards, the globally-coldest
	// arena extents and CSR index blocks are spilled to a shared file.
	SpillBudgetBytes int64
	// SpillDir is where the worker's spill file is created ("" selects the
	// OS temp directory).
	SpillDir string
	// StateDir enables worker shard-state durability: Persist snapshots
	// every resident shard there, and NewShardServer recovers the committed
	// snapshot, so a coordinator re-opening a shard under its persisted
	// (key, nonce) replays only the delta instead of the whole stream.
	// Stale temporaries are swept at construction. "" disables persistence.
	StateDir string
}

// ShardServer serves one graph's RR-set shards to remote coordinators.
type ShardServer struct {
	g        *graph.Graph
	workers  int
	max      int
	spill    *spillState // shared across all resident shards; nil ⇒ disabled
	stateDir string      // "" ⇒ no shard-state durability
	snap     *snapFile   // recovered-from snapshot; keeps its mapping alive

	mu        sync.Mutex
	shards    map[string]*workerShard
	clock     uint64 // LRU clock, bumped on every shard touch
	recovered int    // shards restored from the state dir at construction
	lns       map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// workerShard is one resident shard: a sampler bound to the shard's spec
// and a segment holding the shard's arena + CSR blocks under global ids.
type workerShard struct {
	mu      sync.Mutex
	nonce   uint64
	spec    shardSpec
	sampler *Sampler
	workers int
	seg     *segment
	marks   epoch.Marks // coverage scratch, serialized by mu
	lastUse uint64
}

// NewShardServer creates a shard server over g.
func NewShardServer(g *graph.Graph, opt ShardServerOptions) *ShardServer {
	max := opt.MaxShards
	if max <= 0 {
		max = 64
	}
	s := &ShardServer{
		g:       g,
		workers: opt.SamplingWorkers,
		max:     max,
		shards:  make(map[string]*workerShard),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	if opt.SpillBudgetBytes > 0 {
		s.spill = newSpillState(opt.SpillBudgetBytes, opt.SpillDir)
	}
	if opt.StateDir != "" {
		s.stateDir = opt.StateDir
		// Durability is best-effort on the worker: an unusable snapshot must
		// never block serving, because every shard is recoverable by
		// deterministic replay from the coordinator.
		CleanStateDir(opt.StateDir)
		s.recovered, _ = s.recoverShards(opt.StateDir)
	}
	return s
}

// NumShards reports the resident shard-state count (tests and stats).
func (s *ShardServer) NumShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// Serve accepts connections on ln until the listener fails or the server is
// closed, handling each connection on its own goroutine.
func (s *ShardServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("ris: shard server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn handles one coordinator connection until it closes or errors.
// Exported so tests (and single-process setups) can serve net.Pipe ends
// without a listener.
func (s *ShardServer) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		kind, payload, err := readFrame(br)
		if err != nil {
			return // peer gone or mis-framed; the client reconnects
		}
		if err := s.dispatch(bw, kind, payload); err != nil {
			var fe *fatalError
			var re *resyncError
			switch {
			case errors.As(err, &fe):
				err = writeFrame(bw, respErr, encodeErr(errFatal, fe.msg))
			case errors.As(err, &re):
				err = writeFrame(bw, respErr, encodeErr(errResync, re.msg))
			}
			if err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the server: listeners close (Serve returns), every live
// connection is severed, and resident shard states are dropped. Clients see
// transport errors and surface ErrShardUnreachable once their reconnect
// budget is spent.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.shards = make(map[string]*workerShard)
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// dispatch decodes and executes one request, writing success responses to
// bw. A returned fatalError/resyncError is encoded by the caller; any other
// error is a transport failure and drops the connection.
func (s *ShardServer) dispatch(bw *bufio.Writer, kind byte, payload []byte) error {
	switch kind {
	case opPing:
		return writeFrame(bw, respOK, nil)
	case opOpen:
		return s.handleOpen(bw, payload)
	case opStats:
		return s.handleStats(bw, payload)
	case opGenerate:
		err := s.handleGenerate(bw, payload)
		if err == nil {
			s.enforceSpill()
		}
		return err
	case opPostings:
		return s.handlePostings(bw, payload)
	case opCoverage:
		return s.handleCoverage(bw, payload)
	default:
		return &fatalError{msg: fmt.Sprintf("unknown op %d", kind)}
	}
}

// shard returns the resident state for key, as a resyncError when absent
// (worker restarted or the state was evicted; the client re-opens).
func (s *ShardServer) shard(key string) (*workerShard, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[key]
	if !ok {
		return nil, &resyncError{msg: fmt.Sprintf("unknown shard %q", key)}
	}
	s.clock++
	sh.lastUse = s.clock
	return sh, nil
}

func (s *ShardServer) handleOpen(bw *bufio.Writer, payload []byte) error {
	r := rbuf{b: payload}
	key := r.str()
	nonce := r.u64()
	spec := r.spec()
	if r.err != nil {
		return &fatalError{msg: "malformed open"}
	}
	if int(spec.n) != s.g.NumNodes() {
		return &fatalError{msg: fmt.Sprintf("graph mismatch: coordinator has %d nodes, worker has %d", spec.n, s.g.NumNodes())}
	}
	s.mu.Lock()
	sh, ok := s.shards[key]
	s.mu.Unlock()
	if ok && sh.nonce == nonce {
		// Same store instance re-opening (reconnect): keep the state, the
		// client reconciles via opStats.
		return writeFrame(bw, respOK, nil)
	}
	// New instance (or an explicit wipe request): build fresh state.
	var sampler *Sampler
	var err error
	if len(spec.weights) > 0 {
		sampler, err = NewWeightedSampler(s.g, diffusion.Model(spec.model), spec.weights)
	} else {
		sampler, err = NewSampler(s.g, diffusion.Model(spec.model))
	}
	if err != nil {
		return &fatalError{msg: err.Error()}
	}
	sampler = sampler.WithKernel(Kernel(spec.kernel))
	workers := int(spec.workers)
	if workers <= 0 {
		workers = s.workers
	}
	seg := newSegment(s.g.NumNodes())
	seg.gids = []int32{}
	seg.spill = s.spill
	s.mu.Lock()
	s.clock++
	s.shards[key] = &workerShard{
		nonce: nonce, spec: spec, sampler: sampler, workers: workers,
		seg: seg, lastUse: s.clock,
	}
	s.evictLocked(key)
	s.mu.Unlock()
	return writeFrame(bw, respOK, nil)
}

// enforceSpill brings the worker's total resident RR bytes across all
// resident shards back under the spill budget by spilling the
// globally-coldest units. Every shard mutex is held for the duration, taken
// in sorted key order; request handlers hold at most one shard mutex and
// never wait for another, so the ordering cannot deadlock. Called after
// each successful generate, outside any shard mutex.
func (s *ShardServer) enforceSpill() {
	sp := s.spill
	if sp == nil {
		return
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shards := make([]*workerShard, len(keys))
	for i, k := range keys {
		shards[i] = s.shards[k]
	}
	s.mu.Unlock()
	segs := make([]*segment, len(shards))
	for i, sh := range shards {
		sh.mu.Lock()
		segs[i] = sh.seg
	}
	sp.enforce(sp.budget, segs)
	for _, sh := range shards {
		sh.mu.Unlock()
	}
}

// SpillStats reports the worker's spill tier accounting across all resident
// shards (zero value when the server was built without a spill budget).
func (s *ShardServer) SpillStats() SpillStats {
	sp := s.spill
	if sp == nil {
		return SpillStats{}
	}
	s.mu.Lock()
	shards := make([]*workerShard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	segs := make([]*segment, len(shards))
	for i, sh := range shards {
		sh.mu.Lock()
		segs[i] = sh.seg
	}
	st := spillStatsOf(sp, segs)
	for _, sh := range shards {
		sh.mu.Unlock()
	}
	return st
}

// evictLocked drops least-recently-used shards beyond the cap, never the
// one just touched. Evicted coordinators recover by deterministic replay.
func (s *ShardServer) evictLocked(keep string) {
	for len(s.shards) > s.max {
		var victim string
		var oldest uint64 = ^uint64(0)
		for k, sh := range s.shards {
			if k != keep && sh.lastUse < oldest {
				victim, oldest = k, sh.lastUse
			}
		}
		if victim == "" {
			return
		}
		delete(s.shards, victim)
	}
}

func (s *ShardServer) handleStats(bw *bufio.Writer, payload []byte) error {
	r := rbuf{b: payload}
	key := r.str()
	if r.err != nil {
		return &fatalError{msg: "malformed stats"}
	}
	sh, err := s.shard(key)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	var w wbuf
	w.u64(uint64(sh.seg.nsets()))
	w.i64(sh.seg.items())
	w.i64(sh.seg.width)
	w.i64(sh.seg.residentBytes())
	sh.mu.Unlock()
	return writeFrame(bw, respData, w.b)
}

// handleGenerate appends the RR sets with global ids [gfrom, gto) to the
// shard, streaming the sampled chunks back (one respData frame per chunk,
// then respEnd) when the mirror flag is set. The op is idempotent over
// already-held ranges: a range fully contained in the shard's gids is
// re-streamed from the arena without resampling, which is what makes the
// client's retry-after-reconnect and replay-after-rollback safe.
func (s *ShardServer) handleGenerate(bw *bufio.Writer, payload []byte) error {
	r := rbuf{b: payload}
	key := r.str()
	gfrom := int(r.u64())
	gto := int(r.u64())
	mirror := r.u8() != 0
	if r.err != nil || gfrom < 0 || gto <= gfrom {
		return &fatalError{msg: "malformed generate"}
	}
	sh, err := s.shard(key)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()

	gids := sh.seg.gids
	switch {
	case len(gids) == 0 || int(gids[len(gids)-1]) < gfrom:
		// Fresh range beyond everything held: sample and append.
		results := sampleChunks(sh.sampler, sh.spec.seed, gfrom, gto, sh.workers)
		lfrom := sh.seg.nsets()
		sh.seg.appendResults(results)
		for g := gfrom; g < gto; g++ {
			sh.seg.gids = append(sh.seg.gids, int32(g))
		}
		sh.seg.appendIndexBlock(lfrom, sh.seg.nsets(), sh.workers)
		if mirror {
			for ci := range results {
				if err := writeFrame(bw, respData, encodeChunk(&results[ci])); err != nil {
					return err
				}
			}
		}
		return writeFrame(bw, respEnd, nil)
	case containedRun(gids, gfrom, gto):
		// Redelivery of a range this shard already holds: re-stream from
		// the arena in chunk-sized slices. Width is recomputed from
		// in-degrees — the same Σ d_in(v) the kernels report.
		if mirror {
			lo := localIndexOf(gids, gfrom)
			count := gto - gfrom
			for off := 0; off < count; off += chunkSize {
				end := off + chunkSize
				if end > count {
					end = count
				}
				if err := writeFrame(bw, respData, s.encodeArenaChunk(sh.seg, lo+off, lo+end)); err != nil {
					return err
				}
			}
		}
		return writeFrame(bw, respEnd, nil)
	default:
		return &resyncError{msg: fmt.Sprintf("generate [%d,%d) overlaps shard state non-contiguously", gfrom, gto)}
	}
}

// containedRun reports whether the ascending gids slice contains every id
// in [gfrom, gto): first and last present with exactly the right span.
func containedRun(gids []int32, gfrom, gto int) bool {
	idx := localIndexOf(gids, gfrom)
	count := gto - gfrom
	return idx+count <= len(gids) &&
		idx < len(gids) && int(gids[idx]) == gfrom &&
		int(gids[idx+count-1]) == gto-1
}

// localIndexOf returns the first index whose gid is ≥ g.
func localIndexOf(gids []int32, g int) int {
	lo, hi := 0, len(gids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(gids[mid]) < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// encodeChunk serializes one sampled chunkResult.
func encodeChunk(res *chunkResult) []byte {
	var w wbuf
	w.u32(uint32(len(res.offsets) - 1))
	w.i64(res.width)
	w.i32s(res.offsets[1:])
	w.u32s(res.buf)
	return w.b
}

// encodeArenaChunk re-serializes local sets [lfrom, lto) straight from the
// arena in the same chunk layout encodeChunk produces. The range may span
// frozen (possibly spilled) extents and the tail, so sets are gathered
// through setAt rather than sliced from one backing array.
func (s *ShardServer) encodeArenaChunk(seg *segment, lfrom, lto int) []byte {
	base := seg.offsets[lfrom]
	buf := make([]uint32, 0, seg.offsets[lto]-base)
	for i := lfrom; i < lto; i++ {
		buf = append(buf, seg.setAt(i)...)
	}
	var width int64
	for _, v := range buf {
		width += int64(s.g.InDegree(v))
	}
	var w wbuf
	w.u32(uint32(lto - lfrom))
	w.i64(width)
	w.u32(uint32(lto - lfrom))
	for i := lfrom + 1; i <= lto; i++ {
		w.u32(uint32(seg.offsets[i] - base))
	}
	w.u32s(buf)
	return w.b
}

// decodeChunk rebuilds a chunkResult from its frame.
func decodeChunk(payload []byte) (chunkResult, error) {
	r := rbuf{b: payload}
	nsets := int(r.u32())
	width := r.i64()
	ends := r.i32s()
	buf := r.u32s()
	if r.err != nil || len(ends) != nsets ||
		(nsets > 0 && int(ends[nsets-1]) != len(buf)) {
		return chunkResult{}, errMalformed
	}
	offsets := make([]int32, 1, nsets+1)
	offsets = append(offsets, ends...)
	return chunkResult{buf: buf, offsets: offsets, width: width}, nil
}

func (s *ShardServer) handlePostings(bw *bufio.Writer, payload []byte) error {
	r := rbuf{b: payload}
	key := r.str()
	v := r.u32()
	from := int(r.u64())
	upto := int(r.u64())
	if r.err != nil {
		return &fatalError{msg: "malformed postings"}
	}
	if int(v) >= s.g.NumNodes() {
		return &fatalError{msg: fmt.Sprintf("node %d out of range", v)}
	}
	sh, err := s.shard(key)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	it := Postings{blocks: sh.seg.blocks, sp: sh.seg.spill, v: v, from: from, upto: upto}
	var w wbuf
	var ids []int32
	for {
		run, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, run...)
	}
	w.i32s(ids)
	sh.mu.Unlock()
	return writeFrame(bw, respData, w.b)
}

func (s *ShardServer) handleCoverage(bw *bufio.Writer, payload []byte) error {
	r := rbuf{b: payload}
	key := r.str()
	from := int(r.u64())
	to := int(r.u64())
	seeds := r.u32s()
	if r.err != nil {
		return &fatalError{msg: "malformed coverage"}
	}
	for _, v := range seeds {
		if int(v) >= s.g.NumNodes() {
			return &fatalError{msg: fmt.Sprintf("seed %d out of range", v)}
		}
	}
	sh, err := s.shard(key)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	var cov int64
	if to > from && len(seeds) > 0 {
		sh.marks.Reset(to)
		for _, v := range seeds {
			it := Postings{blocks: sh.seg.blocks, sp: sh.seg.spill, v: v, from: from, upto: to}
			for {
				run, ok := it.Next()
				if !ok {
					break
				}
				for _, id := range run {
					if sh.marks.Visit(id) {
						cov++
					}
				}
			}
		}
	}
	sh.mu.Unlock()
	var w wbuf
	w.i64(cov)
	return writeFrame(bw, respData, w.b)
}
