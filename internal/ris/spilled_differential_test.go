// Spilled leg of the differential harness: SSA and D-SSA run on stores
// whose resident budget forces 0%, ~50% and ~90% of the RR data onto the
// disk spill tier — flat, in-process-sharded, and remote-sharded with
// spilling workers — and every observable must stay bit-identical to the
// flat unspilled reference. Spilling only moves bytes; this is the test
// that keeps it that way.
package ris_test

import (
	"fmt"
	"runtime"
	"testing"

	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

// runCoreSpilled is runCore with a spill budget on the store.
func runCoreSpilled(t *testing.T, s *ris.Sampler, algo string, shards int, budget int64, kernel ris.Kernel) (*core.Result, []core.Checkpoint) {
	t.Helper()
	var trace []core.Checkpoint
	opt := core.Options{
		K: 8, Epsilon: 0.3, Seed: 71, Workers: 2,
		Shards: shards, ShardWorkers: 2, Kernel: kernel,
		SpillBudgetBytes: budget, SpillDir: t.TempDir(),
		Trace: func(cp core.Checkpoint) { trace = append(trace, cp) },
	}
	var res *core.Result
	var err error
	if algo == "ssa" {
		res, err = core.SSA(s, opt)
	} else {
		res, err = core.DSSA(s, opt)
	}
	if err != nil {
		t.Fatalf("%s shards=%d budget=%d: %v", algo, shards, budget, err)
	}
	return res, trace
}

// spillBudgets derives the issue's 0%/50%/90% spill points from the flat
// run's store footprint, plus the degenerate 1-byte budget (spill
// everything spillable, every Generate).
func spillBudgets(flatBytes int64) []int64 {
	return []int64{2 * flatBytes, flatBytes / 2, flatBytes / 10, 1}
}

// TestDifferentialSpilledVsFlat runs SSA and D-SSA at every spill budget on
// flat and sharded stores, demanding Seeds, Influence, sample counts and
// per-checkpoint traces bit-identical to the unspilled flat reference.
func TestDifferentialSpilledVsFlat(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"ssa", "dssa"} {
		refRes, refTrace := runCore(t, s, algo, 0, 0, ris.KernelPlan)
		for _, shards := range []int{0, 3} {
			// Resident footprint is only comparable within the same
			// topology: sharded stores carry mirror arenas and per-shard
			// metadata a flat store doesn't.
			shapeRef, _ := runCore(t, s, algo, shards, 2, ris.KernelPlan)
			for _, budget := range spillBudgets(refRes.MemoryBytes) {
				ctx := fmt.Sprintf("%s/shards=%d/budget=%d", algo, shards, budget)
				res, trace := runCoreSpilled(t, s, algo, shards, budget, ris.KernelPlan)
				assertResultsIdentical(t, ctx, refRes, res, refTrace, trace)
				// On platforms without the mmap spill path the payloads
				// stay resident, so only linux pins the byte reduction.
				if budget == 1 && runtime.GOOS == "linux" && res.MemoryBytes >= shapeRef.MemoryBytes {
					t.Fatalf("%s: spilled store resident %d, want < unspilled %d", ctx, res.MemoryBytes, shapeRef.MemoryBytes)
				}
			}
		}
	}
}

// spillCluster is remoteCluster with a spill budget on every worker: shard
// arenas and index blocks tier to disk inside the worker processes.
func newSpillCluster(t *testing.T, g *graph.Graph, budget int64, addrs ...string) *remoteCluster {
	t.Helper()
	c := &remoteCluster{g: g, servers: make(map[string]*ris.ShardServer)}
	for _, a := range addrs {
		c.servers[a] = ris.NewShardServer(g, ris.ShardServerOptions{
			SamplingWorkers: 2, SpillBudgetBytes: budget, SpillDir: t.TempDir(),
		})
	}
	return c
}

// TestDifferentialRemoteSpilledWorkers runs D-SSA against remote-sharded
// stores whose workers spill under a tiny budget, asserting bit-identity
// with the flat reference and that the workers actually spilled.
func TestDifferentialRemoteSpilledWorkers(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	refRes, refTrace := runCore(t, s, "dssa", 0, 0, ris.KernelPlan)
	for _, nw := range []int{1, 2} {
		addrs := make([]string, nw)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("spill-worker-%d", i)
		}
		cluster := newSpillCluster(t, g, 1, addrs...)
		var trace []core.Checkpoint
		res, err := core.DSSA(s, core.Options{
			K: 8, Epsilon: 0.3, Seed: 71, Workers: 2,
			RemoteWorkers: addrs, RemoteDial: cluster.dial, Kernel: ris.KernelPlan,
			Trace: func(cp core.Checkpoint) { trace = append(trace, cp) },
		})
		if err != nil {
			t.Fatalf("remote spilled workers=%d: %v", nw, err)
		}
		ctx := fmt.Sprintf("dssa/remote-spilled-workers=%d", nw)
		assertResultsIdentical(t, ctx, refRes, res, refTrace, trace)
		spilled := false
		for _, a := range addrs {
			st := cluster.servers[a].SpillStats()
			if !st.Enabled {
				t.Fatalf("%s: worker %s has no spill tier", ctx, a)
			}
			if st.Err != "" {
				t.Fatalf("%s: worker %s spill error: %s", ctx, a, st.Err)
			}
			if st.Blocks > 0 {
				spilled = true
			}
		}
		if !spilled {
			t.Fatalf("%s: no worker spilled under a 1-byte budget", ctx)
		}
	}
}
