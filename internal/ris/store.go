package ris

import (
	"context"
	"runtime"
	"time"
)

// Store is the RR-set store surface that SSA, D-SSA, IMM, TIM/TIM+, the
// max-coverage solvers and the TVM sweeps actually consume. The paper's
// optimality arguments (Thms 3–5) are agnostic to where RR sets live — only
// Len, coverage and the doubling schedule matter — so the algorithms are
// written against this interface and any implementation that honours the
// contract below slots in unchanged.
//
// Contract (what makes implementations interchangeable bit-for-bit):
//
//   - RR set i is always the output of the PRNG stream (Seed, i), so
//     Set(i), Items, Width and every coverage count are identical across
//     implementations, worker counts and shard counts.
//   - The stream is append-only: Generate never moves or mutates an
//     existing set (D-SSA's prefix-stability requirement).
//   - PostingsRange yields each matching id exactly once, in ascending
//     runs; cross-run global ordering is implementation-defined (the flat
//     Collection is globally ascending, ShardedCollection is ascending per
//     shard). Consumers must therefore be order-insensitive across runs —
//     the greedy solvers and the epoch-stamped coverage walks are.
//   - Stores are not safe for concurrent mutation; Generate and the
//     scratch-reusing coverage walks must not race each other (concurrent
//     Set/Postings reads remain safe).
//
// The differential harness (differential_test.go) enforces the
// interchangeability: SSA, D-SSA and the TVM budget sweep must return
// bit-identical Seeds, Coverage and checkpoint traces on every
// implementation for any shard/worker count.
type Store interface {
	// Sampler returns the sampler the store draws RR sets from.
	Sampler() *Sampler
	// Len returns the number of RR sets generated so far.
	Len() int
	// Items returns the total number of node entries across all RR sets.
	Items() int64
	// Width returns Σ_j w(R_j) over all RR sets (TIM's KPT input).
	Width() int64
	// Bytes approximates the resident memory of the store.
	Bytes() int64
	// NumNodes returns the node count of the underlying graph.
	NumNodes() int
	// Scale returns the estimator scale (n for RIS, Γ for WRIS).
	Scale() float64
	// Set returns RR set i; the slice must not be modified and is
	// invalidated (never mutated in place) by the next Generate.
	Set(i int) []uint32
	// ForEachSet calls fn for every RR set with id in [from, to), in
	// ascending id order — the bulk-scan primitive solvers use to fold new
	// stream suffixes into gain counts without per-id lookup cost.
	ForEachSet(from, to int, fn func(i int, set []uint32))
	// Generate appends count new RR sets to the stream.
	Generate(count int)
	// GenerateTo grows the stream to at least target RR sets.
	GenerateTo(target int)
	// PostingsUpto iterates the ids < upto of RR sets containing v.
	PostingsUpto(v uint32, upto int) Postings
	// PostingsRange iterates the ids in [from, upto) of RR sets containing v.
	PostingsRange(v uint32, from, upto int) Postings
	// CoverageRange counts sets in [from, to) hitting the seed mark vector
	// (the arena-scan oracle).
	CoverageRange(seedMark []bool, from, to int) int64
	// Coverage counts Cov_R(S) over the whole stream for a mark vector.
	Coverage(seedMark []bool) int64
	// CoverageRangeSeeds counts sets in [from, to) containing at least one
	// seed, via the inverted index (the hot-path form).
	CoverageRangeSeeds(seeds []uint32, from, to int) int64
	// CoverageSeeds counts Cov_R(S) over the whole stream via the index.
	CoverageSeeds(seeds []uint32) int64
}

// SpilledStore is the optional Store extension of stores that can tier cold
// RR data (frozen arena extents and CSR index blocks) onto a disk spill
// file. Both built-in stores implement it; whether spilling is ENABLED is a
// per-store property (StoreOptions.SpillBudgetBytes > 0), reported by
// SpillStats().Enabled.
type SpilledStore interface {
	Store
	// SpillTo spills globally-coldest units until resident RR bytes drop to
	// budget (0 spills everything spillable). Counts as a mutation: callers
	// must hold the same exclusivity as Generate. Returns the first spill
	// failure; after one the store stops spilling and stays consistent
	// resident-only.
	SpillTo(budget int64) error
	// SpillStats reports the spill tier's accounting.
	SpillStats() SpillStats
}

// ContextStore is the optional Store extension for cancelable growth: both
// generate forms take a context checked cooperatively between sampling
// chunk claims (and between remote RPC attempts). On cancellation the call
// returns the context's error having mutated NOTHING — stream, index and
// width are exactly as before the call, so a later identical top-up
// regenerates the same bit-identical sets. Both built-in stores implement
// it.
type ContextStore interface {
	Store
	// GenerateCtx is Generate with cooperative cancellation.
	GenerateCtx(ctx context.Context, count int) error
	// GenerateToCtx is GenerateTo with cooperative cancellation.
	GenerateToCtx(ctx context.Context, target int) error
}

// Both stores implement Store, SpilledStore and ContextStore.
var (
	_ SpilledStore = (*Collection)(nil)
	_ SpilledStore = (*ShardedCollection)(nil)
	_ ContextStore = (*Collection)(nil)
	_ ContextStore = (*ShardedCollection)(nil)
)

// StoreOptions selects and sizes a Store implementation.
type StoreOptions struct {
	// Workers bounds generation/index parallelism of the flat store (and
	// is the total-worker hint ShardWorkers is derived from); ≤0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Shards ≥ 1 selects ShardedCollection with that many id shards (1 is
	// a real single-shard sharded store, so the sharded code path can be
	// exercised and compared at every count); ≤0 selects the flat
	// Collection. Results are bit-identical either way.
	Shards int
	// ShardWorkers bounds per-shard generation parallelism when Shards ≥ 1;
	// ≤0 derives max(1, Workers/Shards) so the total worker budget holds.
	// For remote shards this is the sampling parallelism requested on each
	// worker (0 = the worker's own default).
	ShardWorkers int
	// RemoteWorkers lists shard-worker addresses ("host:port" TCP or
	// "unix:/path"); non-empty selects a remote-sharded ShardedCollection
	// with one shard per worker, and Shards is ignored. Results remain
	// bit-identical to every in-process topology.
	RemoteWorkers []string
	// RemoteDial overrides the worker transport (tests inject net.Pipe).
	RemoteDial DialFunc
	// RemoteTimeout bounds one worker RPC exchange; ≤0 selects
	// DefaultRemoteTimeout.
	RemoteTimeout time.Duration
	// SpillBudgetBytes > 0 enables the disk spill tier: after any growth
	// that leaves more than this many resident RR bytes (arena + index,
	// excluding the shared compiled plan), cold frozen arena extents and
	// cold CSR index blocks are appended to a spill file and served from a
	// shared read-only mapping instead of the heap. Results stay
	// bit-identical at every budget — spilling only moves bytes.
	SpillBudgetBytes int64
	// SpillDir is the directory spill files are created in ("" selects the
	// OS temp directory). Files are process-private scratch, unlinked at
	// creation where possible.
	SpillDir string
}

// NewStore builds the Store described by opt: the flat Collection for
// Shards ≤ 0, ShardedCollection otherwise, remote-sharded when
// RemoteWorkers is set. Every implementation yields bit-identical results
// for a fixed seed, so the choice is purely about memory topology and
// generation parallelism.
func NewStore(s *Sampler, seed uint64, opt StoreOptions) Store {
	var st Store
	switch {
	case len(opt.RemoteWorkers) > 0:
		st = NewRemoteShardedCollection(s, seed, opt)
	case opt.Shards < 1:
		st = NewCollection(s, seed, opt.Workers)
	default:
		w := opt.ShardWorkers
		if w <= 0 {
			total := opt.Workers
			if total <= 0 {
				total = runtime.GOMAXPROCS(0)
			}
			w = total / opt.Shards
			if w < 1 {
				w = 1
			}
		}
		st = NewShardedCollection(s, seed, opt.Shards, w)
	}
	if opt.SpillBudgetBytes > 0 {
		sp := newSpillState(opt.SpillBudgetBytes, opt.SpillDir)
		switch c := st.(type) {
		case *Collection:
			c.segment.spill = sp
		case *ShardedCollection:
			c.spill = sp
			for _, sg := range c.segs {
				sg.spill = sp
			}
		}
	}
	return st
}
