package ris

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"stopandstare/internal/diffusion"
)

// Worker shard-state snapshots: a ShardServer configured with a StateDir
// persists every resident shard — key, nonce, spec, and the shard's segment
// — using the same block format, checksums, and atomic manifest protocol as
// store snapshots (snapshot.go). A restarted worker recovers its shards from
// the snapshot; a coordinator that re-opens a shard under its persisted
// (key, nonce) then finds the worker's state already grown to the snapshot
// point and replays only the missing suffix, instead of regenerating the
// whole shard. A missing, mismatched, or corrupt worker snapshot is never
// fatal: corrupt suffixes are discarded per shard (deterministic replay
// restores them) and unusable shards are simply dropped.

// encodeWorkerMeta serializes the worker snapshot descriptor: graph size,
// then one (key, nonce, spec, segment descriptor) record per shard.
func encodeWorkerMeta(n int, keys []string, shards []*workerShard) []byte {
	var w wbuf
	w.u32(snapVersion)
	w.u64(uint64(n))
	w.u32(uint32(len(shards)))
	for i, sh := range shards {
		w.str(keys[i])
		w.u64(sh.nonce)
		sh.spec.encode(&w)
		encodeSegMeta(&w, sh.seg)
	}
	return w.b
}

// Persist snapshots every resident shard into the server's state directory.
// It is a no-op (with ErrNoSnapshot) when the server has no StateDir. All
// shard mutexes are taken in sorted key order for the duration — the same
// discipline as enforceSpill — so the snapshot is a consistent cut.
func (s *ShardServer) Persist() (SnapshotInfo, error) {
	if s.stateDir == "" {
		return SnapshotInfo{}, ErrNoSnapshot
	}
	return s.PersistFS(s.stateDir, OSSnapshotFS)
}

// PersistFS is Persist into an explicit directory through an injected
// filesystem (fault tests).
func (s *ShardServer) PersistFS(dir string, fs SnapshotFS) (SnapshotInfo, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shards := make([]*workerShard, len(keys))
	for i, k := range keys {
		shards[i] = s.shards[k]
	}
	s.mu.Unlock()

	segs := make([]*segment, len(shards))
	sets := 0
	for i, sh := range shards {
		sh.mu.Lock()
		segs[i] = sh.seg
		sets += sh.seg.nsets()
	}
	meta := encodeWorkerMeta(s.g.NumNodes(), keys, shards)
	info, err := persistSnapshot(dir, fs, snapKindWorker, meta, segs, sets)
	for _, sh := range shards {
		sh.mu.Unlock()
	}
	return info, err
}

// RecoveredShards reports how many shard states the server restored from its
// state directory at construction.
func (s *ShardServer) RecoveredShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// workerShardMeta is one decoded shard record of a worker snapshot.
type workerShardMeta struct {
	key   string
	nonce uint64
	spec  shardSpec
	sm    snapSegMeta
}

// decodeWorkerMeta parses and validates the worker meta block.
func decodeWorkerMeta(payload []byte, path string, n int) ([]workerShardMeta, error) {
	r := rbuf{b: payload}
	if v := r.u32(); v != snapVersion {
		return nil, &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf("worker snapshot version %d", v)}
	}
	if gn := r.u64(); gn != uint64(n) {
		return nil, &SnapshotMismatchError{Reason: fmt.Sprintf("snapshot graph has %d nodes, worker has %d", gn, n)}
	}
	count := int(r.u32())
	if r.err != nil || count < 0 || count > 1<<20 {
		return nil, &SnapshotCorruptError{Path: path, Reason: "bad worker meta header"}
	}
	out := make([]workerShardMeta, 0, count)
	for i := 0; i < count; i++ {
		var wm workerShardMeta
		wm.key = r.str()
		wm.nonce = r.u64()
		wm.spec = r.spec()
		wm.sm = decodeSegMeta(&r)
		if r.err != nil {
			return nil, &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf("truncated worker meta at shard %d", i)}
		}
		if err := validateSegMeta(&wm.sm, n); err != nil {
			return nil, &SnapshotCorruptError{Path: path, Reason: err.Error()}
		}
		if !wm.sm.hasGids {
			return nil, &SnapshotCorruptError{Path: path, Reason: "worker shard without gid table"}
		}
		out = append(out, wm)
	}
	if r.remaining() != 0 {
		return nil, &SnapshotCorruptError{Path: path, Reason: "trailing bytes in worker meta"}
	}
	return out, nil
}

// samplerForSpec builds the sampler a shard spec describes (the open path
// and the recovery path must agree exactly).
func samplerForSpec(s *ShardServer, spec shardSpec) (*Sampler, error) {
	var sampler *Sampler
	var err error
	if len(spec.weights) > 0 {
		sampler, err = NewWeightedSampler(s.g, diffusion.Model(spec.model), spec.weights)
	} else {
		sampler, err = NewSampler(s.g, diffusion.Model(spec.model))
	}
	if err != nil {
		return nil, err
	}
	return sampler.WithKernel(Kernel(spec.kernel)), nil
}

// recoverShards restores shard states from the committed snapshot in dir.
// Per shard, a corrupt block discards that shard's local suffix only (the
// coordinator replays the delta); a shard whose sampler cannot be rebuilt is
// skipped. Returns the number of shards restored.
func (s *ShardServer) recoverShards(dir string) (int, error) {
	man, err := loadManifest(dir)
	if err != nil {
		if errors.Is(err, ErrNoSnapshot) {
			return 0, nil
		}
		return 0, err
	}
	sf, err := openSnapFile(filepath.Join(dir, man.Snapshot))
	if err != nil {
		return 0, err
	}
	hdr := sf.m.data[:snapHdrSize]
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic || hdr[4] != snapKindWorker {
		sf.close()
		return 0, &SnapshotCorruptError{Path: sf.path, Reason: "bad worker meta block header"}
	}
	plen := int64(binary.LittleEndian.Uint64(hdr[8:]))
	payload := sf.blockPayload(0, snapKindWorker, plen)
	if payload == nil {
		sf.close()
		return 0, &SnapshotCorruptError{Path: sf.path, Reason: "worker meta block failed validation"}
	}
	metas, err := decodeWorkerMeta(payload, sf.path, s.g.NumNodes())
	if err != nil {
		sf.close()
		return 0, err
	}

	off := snapAdvance(0, plen)
	restored := 0
	for i := range metas {
		wm := &metas[i]
		var r segRestore
		r, off = readSegBlocks(sf, &wm.sm, off)
		if int(wm.spec.n) != s.g.NumNodes() {
			continue
		}
		sampler, err := samplerForSpec(s, wm.spec)
		if err != nil {
			continue
		}
		workers := int(wm.spec.workers)
		if workers <= 0 {
			workers = s.workers
		}
		seg := newSegment(s.g.NumNodes())
		seg.gids = []int32{}
		seg.spill = s.spill
		// The local cutoff is the first unrestorable local set: the worker
		// keeps its good prefix and the coordinator replays the rest.
		restoreSegment(seg, &r, r.badFrom, sf, s.g, true)
		s.mu.Lock()
		s.clock++
		s.shards[wm.key] = &workerShard{
			nonce: wm.nonce, spec: wm.spec, sampler: sampler, workers: workers,
			seg: seg, lastUse: s.clock,
		}
		s.evictLocked(wm.key)
		s.mu.Unlock()
		restored++
	}
	if restored == 0 {
		sf.close()
		return 0, nil
	}
	s.snap = sf
	return restored, nil
}
