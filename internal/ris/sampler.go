// Package ris implements Reverse Influence Sampling (§3.1.1): generation of
// random Reverse Reachable (RR) sets under the IC and LT models (Def. 2),
// the weighted-root WRIS variant used by targeted viral marketing (§7.3.1),
// and a deterministic, parallel, indexed collection of RR sets that SSA,
// D-SSA, IMM and TIM draw from.
package ris

import (
	"errors"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/epoch"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// Sampler generates random RR sets from a graph under a propagation model.
// The zero-weight case (uniform root selection) corresponds to classic RIS;
// a weighted sampler implements WRIS, where the root is chosen
// proportionally to each node's benefit b(v) and estimates scale by
// Γ = Σ_v b(v) instead of n (Lemma 1 and its weighted analogue).
//
// Two sampling kernels produce the RR sets (see Kernel): the compiled plan
// (default) and the Bernoulli/binary-search oracle. Both draw from the same
// distribution — proven by the statistical harness in plan_test.go — but
// consume different PRNG sequences, so switching kernels changes individual
// sets while preserving every determinism invariant: RR set i is a pure
// function of (kernel, seed, i) for any worker, shard, or store topology.
type Sampler struct {
	g       *graph.Graph
	model   diffusion.Model
	root    *rng.Alias // nil ⇒ uniform root
	weights []float64  // WRIS benefit weights; retained so remote shards can rebuild the alias table
	scale   float64    // n for RIS, Γ for WRIS
	pc      *planCache // lazily compiled, shared across WithKernel copies
	kernel  Kernel
}

// ErrNilGraph reports a missing graph.
var ErrNilGraph = errors.New("ris: nil graph")

// NewSampler returns a uniform-root (classic RIS) sampler using the default
// plan kernels. Use WithKernel to select the oracle. The compiled plan is
// served from the process-wide registry (see plancache.go): every sampler on
// the same (graph, model) — across Sessions, one-shot runs, WRIS and plain
// variants — shares one compilation.
func NewSampler(g *graph.Graph, model diffusion.Model) (*Sampler, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return &Sampler{g: g, model: model, scale: float64(g.NumNodes()),
		pc: sharedPlanCache(g, model)}, nil
}

// NewWeightedSampler returns a WRIS sampler whose roots are drawn
// proportionally to weights (benefit values b(v) ≥ 0).
func NewWeightedSampler(g *graph.Graph, model diffusion.Model, weights []float64) (*Sampler, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if len(weights) != g.NumNodes() {
		return nil, errors.New("ris: weights length must equal NumNodes")
	}
	al, err := rng.NewAlias(weights)
	if err != nil {
		return nil, err
	}
	return &Sampler{g: g, model: model, root: al, weights: weights, scale: al.Total(),
		pc: sharedPlanCache(g, model)}, nil
}

// WithKernel returns a sampler drawing through the given kernel. The
// receiver is unchanged; the copy shares the graph and the compiled plan,
// so switching kernels is free and safe even while the original is in use.
func (s *Sampler) WithKernel(k Kernel) *Sampler {
	if s.kernel == k {
		return s
	}
	c := *s
	c.kernel = k
	return &c
}

// Kernel returns the sampling kernel in effect.
func (s *Sampler) Kernel() Kernel { return s.kernel }

// Plan returns the compiled sampling plan, compiling it on first use
// (shared and immutable afterwards; safe for concurrent callers). The
// compilation is shared process-wide per (graph, model) through the plan
// registry, so no matter how many samplers, stores, or sessions touch the
// same graph, the O(n + m) compile happens once.
func (s *Sampler) Plan() *Plan {
	if p := s.pc.plan.Load(); p != nil {
		return p
	}
	s.pc.once.Do(func() {
		s.pc.plan.Store(NewPlan(s.g, s.model))
		s.pc.compiles.Add(1)
	})
	return s.pc.plan.Load()
}

// PlanBytes reports the compiled plan's memory, 0 if it was never compiled
// (oracle-only samplers). Non-forcing, for memory accounting.
func (s *Sampler) PlanBytes() int64 {
	if p := s.pc.plan.Load(); p != nil {
		return p.Bytes()
	}
	return 0
}

// Graph returns the underlying graph.
func (s *Sampler) Graph() *graph.Graph { return s.g }

// Model returns the propagation model.
func (s *Sampler) Model() diffusion.Model { return s.model }

// Scale returns the estimator scale: n for RIS, Γ = Σ b(v) for WRIS.
// Î(S) = Scale · Cov_R(S)/|R| (Lemma 1).
func (s *Sampler) Scale() float64 { return s.scale }

// Weighted reports whether this is a WRIS sampler.
func (s *Sampler) Weighted() bool { return s.root != nil }

// State is the per-goroutine scratch for RR-set generation: the visited set
// is the shared epoch-stamped epoch.Marks, so clearing between samples is a
// generation bump, not an O(n) sweep.
type State struct {
	marks epoch.Marks
	n     int
}

// NewState allocates sampling scratch for the sampler's graph.
func (s *Sampler) NewState() *State {
	st := &State{n: s.g.NumNodes()}
	st.marks.Reset(st.n) // size the backing array once, up front
	return st
}

// AppendSample generates one RR set using r and appends its nodes to buf.
// It returns the grown buffer, the number of nodes appended, and the RR
// set's width w(R) = Σ_{v∈R} d_in(v) (the quantity TIM's KPT estimator
// needs). The set occupies buf[len(buf)-setLen:]. For the LT model the
// nodes appear in reverse-walk order (root first), which tests rely on.
func (s *Sampler) AppendSample(r *rng.Source, st *State, buf []uint32) (newBuf []uint32, setLen int, width int64) {
	var root uint32
	if s.root != nil {
		root = uint32(s.root.Sample(r))
	} else {
		root = uint32(r.Intn(s.g.NumNodes()))
	}
	st.marks.Reset(st.n)
	start := len(buf)
	st.marks.Visit(int32(root))
	buf = append(buf, root)
	if s.kernel == KernelPlan {
		buf, width = s.Plan().appendSample(r, st, buf, start, root)
	} else {
		buf, width = s.appendOracle(r, st, buf, start, root)
	}
	return buf, len(buf) - start, width
}

// appendOracle is the direct-translation sampling kernel: one float
// Bernoulli draw per IC edge examined, one binary search per LT step. It is
// the distribution oracle the plan kernels are validated against
// (plan_test.go) and stays selectable through KernelOracle.
func (s *Sampler) appendOracle(r *rng.Source, st *State, buf []uint32, start int, root uint32) ([]uint32, int64) {
	g := s.g
	width := int64(g.InDegree(root))
	if s.model == diffusion.IC {
		// Reverse BFS: edge (u,x) is live with probability w(u,x); every
		// in-edge of a member is examined exactly once.
		for head := start; head < len(buf); head++ {
			x := buf[head]
			adj, ws := g.InNeighbors(x)
			for i, u := range adj {
				if st.marks.Contains(int32(u)) {
					continue
				}
				if r.Float64() < float64(ws[i]) {
					st.marks.Visit(int32(u))
					buf = append(buf, u)
					width += int64(g.InDegree(u))
				}
			}
		}
	} else {
		// LT reverse walk: at x pick one in-neighbour proportionally to
		// w(u,x) (stop with probability 1 − Σw); terminate on revisit.
		x := root
		for {
			u, ok := g.SampleLTInNeighbor(x, r.Float64())
			if !ok || !st.marks.Visit(int32(u)) {
				break
			}
			buf = append(buf, u)
			width += int64(g.InDegree(u))
			x = u
		}
	}
	return buf, width
}

// Sample generates one RR set into a fresh slice (convenience for tests).
func (s *Sampler) Sample(r *rng.Source, st *State) ([]uint32, int64) {
	buf, n, w := s.AppendSample(r, st, nil)
	return buf[len(buf)-n:], w
}
