// Package ris implements Reverse Influence Sampling (§3.1.1): generation of
// random Reverse Reachable (RR) sets under the IC and LT models (Def. 2),
// the weighted-root WRIS variant used by targeted viral marketing (§7.3.1),
// and a deterministic, parallel, indexed collection of RR sets that SSA,
// D-SSA, IMM and TIM draw from.
package ris

import (
	"errors"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// Sampler generates random RR sets from a graph under a propagation model.
// The zero-weight case (uniform root selection) corresponds to classic RIS;
// a weighted sampler implements WRIS, where the root is chosen
// proportionally to each node's benefit b(v) and estimates scale by
// Γ = Σ_v b(v) instead of n (Lemma 1 and its weighted analogue).
type Sampler struct {
	g     *graph.Graph
	model diffusion.Model
	root  *rng.Alias // nil ⇒ uniform root
	scale float64    // n for RIS, Γ for WRIS
}

// ErrNilGraph reports a missing graph.
var ErrNilGraph = errors.New("ris: nil graph")

// NewSampler returns a uniform-root (classic RIS) sampler.
func NewSampler(g *graph.Graph, model diffusion.Model) (*Sampler, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return &Sampler{g: g, model: model, scale: float64(g.NumNodes())}, nil
}

// NewWeightedSampler returns a WRIS sampler whose roots are drawn
// proportionally to weights (benefit values b(v) ≥ 0).
func NewWeightedSampler(g *graph.Graph, model diffusion.Model, weights []float64) (*Sampler, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if len(weights) != g.NumNodes() {
		return nil, errors.New("ris: weights length must equal NumNodes")
	}
	al, err := rng.NewAlias(weights)
	if err != nil {
		return nil, err
	}
	return &Sampler{g: g, model: model, root: al, scale: al.Total()}, nil
}

// Graph returns the underlying graph.
func (s *Sampler) Graph() *graph.Graph { return s.g }

// Model returns the propagation model.
func (s *Sampler) Model() diffusion.Model { return s.model }

// Scale returns the estimator scale: n for RIS, Γ = Σ b(v) for WRIS.
// Î(S) = Scale · Cov_R(S)/|R| (Lemma 1).
func (s *Sampler) Scale() float64 { return s.scale }

// Weighted reports whether this is a WRIS sampler.
func (s *Sampler) Weighted() bool { return s.root != nil }

// State is the per-goroutine scratch for RR-set generation.
type State struct {
	mark  []uint32
	epoch uint32
	queue []uint32
}

// NewState allocates sampling scratch for the sampler's graph.
func (s *Sampler) NewState() *State {
	return &State{mark: make([]uint32, s.g.NumNodes())}
}

func (st *State) nextEpoch() {
	st.epoch++
	if st.epoch == 0 {
		for i := range st.mark {
			st.mark[i] = 0
		}
		st.epoch = 1
	}
}

// AppendSample generates one RR set using r and appends its nodes to buf.
// It returns the grown buffer, the number of nodes appended, and the RR
// set's width w(R) = Σ_{v∈R} d_in(v) (the quantity TIM's KPT estimator
// needs). The set occupies buf[len(buf)-setLen:]. For the LT model the
// nodes appear in reverse-walk order (root first), which tests rely on.
func (s *Sampler) AppendSample(r *rng.Source, st *State, buf []uint32) (newBuf []uint32, setLen int, width int64) {
	g := s.g
	var root uint32
	if s.root != nil {
		root = uint32(s.root.Sample(r))
	} else {
		root = uint32(r.Intn(g.NumNodes()))
	}
	st.nextEpoch()
	start := len(buf)
	st.mark[root] = st.epoch
	buf = append(buf, root)
	width = int64(g.InDegree(root))
	if s.model == diffusion.IC {
		// Reverse BFS: edge (u,x) is live with probability w(u,x); every
		// in-edge of a member is examined exactly once.
		for head := start; head < len(buf); head++ {
			x := buf[head]
			adj, ws := g.InNeighbors(x)
			for i, u := range adj {
				if st.mark[u] == st.epoch {
					continue
				}
				if r.Float64() < float64(ws[i]) {
					st.mark[u] = st.epoch
					buf = append(buf, u)
					width += int64(g.InDegree(u))
				}
			}
		}
	} else {
		// LT reverse walk: at x pick one in-neighbour proportionally to
		// w(u,x) (stop with probability 1 − Σw); terminate on revisit.
		x := root
		for {
			u, ok := g.SampleLTInNeighbor(x, r.Float64())
			if !ok || st.mark[u] == st.epoch {
				break
			}
			st.mark[u] = st.epoch
			buf = append(buf, u)
			width += int64(g.InDegree(u))
			x = u
		}
	}
	return buf, len(buf) - start, width
}

// Sample generates one RR set into a fresh slice (convenience for tests).
func (s *Sampler) Sample(r *rng.Source, st *State) ([]uint32, int64) {
	buf, n, w := s.AppendSample(r, st, nil)
	return buf[len(buf)-n:], w
}
