package ris

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Collection is a growing stream of RR sets R₁, R₂, … with an inverted
// index (node → ids of RR sets containing it). It supports the access
// patterns of all the algorithms in this repository:
//
//   - SSA doubles the whole stream and runs max-coverage over all of it;
//   - D-SSA splits the stream into a prefix R_t and a suffix R^c_t
//     (Alg. 4 lines 6–7), so range queries are first-class here;
//   - IMM/TIM grow the stream to an explicit θ.
//
// Generation is deterministic for a fixed seed regardless of worker count:
// RR set i is always produced by the PRNG stream (seed, i).
type Collection struct {
	sampler *Sampler
	seed    uint64
	workers int

	sets  [][]uint32
	index [][]int32 // per node, ascending RR-set ids
	items int64     // Σ |R_j|
	width int64     // Σ w(R_j)
}

// chunkSize is the number of RR sets per parallel work unit.
const chunkSize = 512

// NewCollection creates an empty collection. workers ≤ 0 means 1.
func NewCollection(s *Sampler, seed uint64, workers int) *Collection {
	if workers <= 0 {
		workers = 1
	}
	return &Collection{
		sampler: s,
		seed:    seed,
		workers: workers,
		index:   make([][]int32, s.g.NumNodes()),
	}
}

// Sampler returns the collection's sampler.
func (c *Collection) Sampler() *Sampler { return c.sampler }

// Len returns the number of RR sets generated so far.
func (c *Collection) Len() int { return len(c.sets) }

// Items returns the total number of node entries across all RR sets.
func (c *Collection) Items() int64 { return c.items }

// Width returns Σ_j w(R_j) over all RR sets (TIM's KPT input).
func (c *Collection) Width() int64 { return c.width }

// Set returns RR set i. The slice must not be modified.
func (c *Collection) Set(i int) []uint32 { return c.sets[i] }

// Index returns the ascending ids of RR sets containing v.
func (c *Collection) Index(v uint32) []int32 { return c.index[v] }

// NumNodes returns the node count of the underlying graph.
func (c *Collection) NumNodes() int { return c.sampler.g.NumNodes() }

// Scale returns the sampler scale (n or Γ).
func (c *Collection) Scale() float64 { return c.sampler.scale }

// Bytes approximates the memory held by RR sets plus the inverted index.
func (c *Collection) Bytes() int64 {
	return c.items*8 + // 4 bytes per set entry + 4 per index entry
		int64(len(c.sets))*24 + int64(len(c.index))*24 // slice headers
}

type chunkResult struct {
	buf     []uint32
	offsets []int32 // len = sets in chunk + 1
	width   int64
}

// GenerateTo grows the collection until it holds at least target RR sets.
func (c *Collection) GenerateTo(target int) {
	if extra := target - len(c.sets); extra > 0 {
		c.Generate(extra)
	}
}

// Generate appends count new RR sets to the stream, in parallel, with
// bit-identical output for any worker count.
func (c *Collection) Generate(count int) {
	if count <= 0 {
		return
	}
	start := len(c.sets)
	nChunks := (count + chunkSize - 1) / chunkSize
	results := make([]chunkResult, nChunks)

	workers := c.workers
	if workers > nChunks {
		workers = nChunks
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := c.sampler.NewState()
			for {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= nChunks {
					return
				}
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > count {
					hi = count
				}
				res := chunkResult{offsets: make([]int32, 1, hi-lo+1)}
				buf := make([]uint32, 0, 4*(hi-lo))
				for i := lo; i < hi; i++ {
					r := streamFor(c.seed, uint64(start+i))
					var setLen int
					var w int64
					buf, setLen, w = c.sampler.AppendSample(r, st, buf)
					_ = setLen
					res.offsets = append(res.offsets, int32(len(buf)))
					res.width += w
				}
				res.buf = buf
				results[ci] = res
			}
		}()
	}
	wg.Wait()

	// Merge in chunk order: global ids are deterministic.
	for ci := range results {
		res := &results[ci]
		for j := 0; j+1 < len(res.offsets); j++ {
			set := res.buf[res.offsets[j]:res.offsets[j+1]]
			id := int32(len(c.sets))
			c.sets = append(c.sets, set)
			for _, v := range set {
				c.index[v] = append(c.index[v], id)
			}
			c.items += int64(len(set))
		}
		c.width += res.width
	}
}

// CoverageRange counts how many RR sets with ids in [from, to) contain at
// least one node with seedMark[node] == true (Cov_R(S) over the range,
// Eq. (1) restricted to a window — D-SSA's Cov over R^c_t).
func (c *Collection) CoverageRange(seedMark []bool, from, to int) int64 {
	if from < 0 {
		from = 0
	}
	if to > len(c.sets) {
		to = len(c.sets)
	}
	var cov int64
	for i := from; i < to; i++ {
		for _, v := range c.sets[i] {
			if seedMark[v] {
				cov++
				break
			}
		}
	}
	return cov
}

// Coverage counts Cov_R(S) over the whole stream for a seed mark vector.
func (c *Collection) Coverage(seedMark []bool) int64 {
	return c.CoverageRange(seedMark, 0, len(c.sets))
}

// IndexUpto returns the prefix of Index(v) whose ids are < upto, using the
// ascending-id invariant.
func (c *Collection) IndexUpto(v uint32, upto int) []int32 {
	idx := c.index[v]
	k := sort.Search(len(idx), func(i int) bool { return int(idx[i]) >= upto })
	return idx[:k]
}
