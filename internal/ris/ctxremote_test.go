// Remote-tier cancellation: a GenerateCtx abandoned mid-flight while some
// workers already appended must roll back every mirror (segSnap restore) and
// leave the coordinator exactly at its pre-call state; workers that ran
// ahead are reconciled by the idempotent redelivery path on the next growth.
package ris_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"stopandstare/internal/ris"
)

// remoteCountCtx cancels after a fixed number of Err() polls (see countCtx
// in ctxgen_test.go; duplicated here because this is the external package).
type remoteCountCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *remoteCountCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestGenerateCtxRemoteRollback(t *testing.T) {
	g := snapClusterGraph(t)
	s := mustRemoteSampler(t, g)
	cl := newSnapCluster(t, g, "w0", "w1")
	const seed = 772
	opt := ris.StoreOptions{
		Workers:       2,
		ShardWorkers:  2,
		RemoteWorkers: []string{"w0", "w1"},
		RemoteDial:    cl.dial,
	}
	st := ris.NewStore(s, seed, opt).(ris.ContextStore)
	ref := ris.NewStore(s, seed, ris.StoreOptions{Workers: 2})
	st.Generate(50)
	ref.Generate(50)
	wantLen, wantItems, wantWidth := st.Len(), st.Items(), st.Width()

	// Pre-canceled: upfront check fires before any RPC.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.GenerateCtx(pre, 40); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled GenerateCtx err = %v, want Canceled", err)
	}

	// Flip the context at increasing poll counts: depending on scheduling
	// zero, one or both shard RPCs complete before the cancellation is
	// observed, exercising the partial-success rollback. Whatever the
	// interleaving, the call either completes in full (flip observed too
	// late) or the coordinator comes back exactly unchanged.
	canceled := 0
	for _, after := range []int64{1, 2, 3, 4} {
		ctx := &remoteCountCtx{Context: context.Background(), after: after}
		err := st.GenerateCtx(ctx, 90)
		if err == nil {
			ref.Generate(90)
			remoteObservables(t, "late-cancel full growth", ref, st)
			wantLen, wantItems, wantWidth = st.Len(), st.Items(), st.Width()
			continue
		}
		canceled++
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d GenerateCtx err = %v, want Canceled", after, err)
		}
		if st.Len() != wantLen || st.Items() != wantItems || st.Width() != wantWidth {
			t.Fatalf("after=%d mirrors not rolled back: len %d→%d items %d→%d width %d→%d",
				after, wantLen, st.Len(), wantItems, st.Items(), wantWidth, st.Width())
		}
	}
	if canceled == 0 {
		t.Fatal("no flip point canceled — test exercised nothing")
	}

	// Workers may now hold sets the coordinator rolled back; the next growth
	// replays/redelivers deterministically and everything converges
	// bit-identical to the uninterrupted twin.
	st.Generate(90)
	ref.Generate(90)
	remoteObservables(t, "post-cancel regrow", ref, st)
}
