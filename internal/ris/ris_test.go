package ris

import (
	"math"
	"testing"
	"testing/quick"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

func mustGraph(t testing.TB, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustSampler(t testing.TB, g *graph.Graph, model diffusion.Model) *Sampler {
	t.Helper()
	s, err := NewSampler(g, model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, diffusion.IC); err == nil {
		t.Fatal("nil graph should fail")
	}
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, W: 0.5}})
	if _, err := NewWeightedSampler(g, diffusion.IC, []float64{1}); err == nil {
		t.Fatal("wrong weights length should fail")
	}
	if _, err := NewWeightedSampler(g, diffusion.IC, []float64{0, 0, 0}); err == nil {
		t.Fatal("zero weights should fail")
	}
}

func TestSamplerScale(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1, W: 0.5}})
	s := mustSampler(t, g, diffusion.IC)
	if s.Scale() != 4 || s.Weighted() {
		t.Fatal("uniform sampler scale should be n")
	}
	ws, err := NewWeightedSampler(g, diffusion.IC, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Scale() != 10 || !ws.Weighted() {
		t.Fatal("weighted sampler scale should be Γ")
	}
}

func TestRRSetContainsRoot(t *testing.T) {
	// The root can always reach itself, so it is always a member — and by
	// construction our sampler emits it first.
	g, err := gen.ChungLu(200, 1000, 2.2, 3, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := mustSampler(t, g, model)
		st := s.NewState()
		for i := 0; i < 200; i++ {
			r := rng.NewStream(5, uint64(i))
			set, _ := s.Sample(r, st)
			if len(set) < 1 {
				t.Fatalf("%v: empty RR set", model)
			}
		}
	}
}

func TestRRSetStructuralValidityIC(t *testing.T) {
	// IC property: every non-root member u must have at least one out-edge
	// in G to another member (its successor on the reverse-BFS path).
	g, err := gen.ChungLu(150, 900, 2.1, 7, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	st := s.NewState()
	f := func(id uint16) bool {
		r := rng.NewStream(11, uint64(id))
		set, _ := s.Sample(r, st)
		member := map[uint32]bool{}
		for _, v := range set {
			member[v] = true
		}
		for _, u := range set[1:] {
			ok := false
			adj, _ := g.OutNeighbors(u)
			for _, v := range adj {
				if member[v] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRRSetStructuralValidityLT(t *testing.T) {
	// LT property: the set is a reverse path — consecutive members are
	// connected: set[i+1] -> set[i] must be an edge of G.
	g, err := gen.ChungLu(150, 900, 2.1, 13, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.LT)
	st := s.NewState()
	f := func(id uint16) bool {
		r := rng.NewStream(17, uint64(id))
		set, _ := s.Sample(r, st)
		for i := 0; i+1 < len(set); i++ {
			if !g.HasEdge(set[i+1], set[i]) {
				return false
			}
		}
		// no duplicates
		seen := map[uint32]bool{}
		for _, v := range set {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// lemma1Check validates I(S) = scale·Pr[S ∩ R ≠ ∅] (Lemma 1) against exact
// brute-force influence on a tiny graph.
func lemma1Check(t *testing.T, g *graph.Graph, model diffusion.Model, seeds []uint32) {
	t.Helper()
	exact, err := diffusion.Exact(g, model, seeds)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, model)
	col := NewCollection(s, 23, 2)
	const N = 400000
	col.Generate(N)
	mark := make([]bool, g.NumNodes())
	for _, v := range seeds {
		mark[v] = true
	}
	cov := col.Coverage(mark)
	est := s.Scale() * float64(cov) / float64(N)
	// Binomial stderr of the coverage estimate.
	p := float64(cov) / float64(N)
	se := s.Scale() * math.Sqrt(p*(1-p)/float64(N))
	if math.Abs(est-exact) > 5*se+0.01 {
		t.Fatalf("%v Lemma 1 violated: RIS est %.4f vs exact %.4f (se %.4f)", model, est, exact, se)
	}
}

func TestLemma1IC(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, W: 0.6}, {U: 0, V: 2, W: 0.3}, {U: 1, V: 3, W: 0.5},
		{U: 2, V: 3, W: 0.7}, {U: 3, V: 4, W: 0.4},
	})
	lemma1Check(t, g, diffusion.IC, []uint32{0})
	lemma1Check(t, g, diffusion.IC, []uint32{1, 2})
}

func TestLemma1LT(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, W: 0.5}, {U: 2, V: 1, W: 0.3}, {U: 1, V: 3, W: 0.6},
		{U: 0, V: 3, W: 0.2}, {U: 3, V: 4, W: 0.8},
	})
	lemma1Check(t, g, diffusion.LT, []uint32{0})
	lemma1Check(t, g, diffusion.LT, []uint32{0, 2})
}

func TestFigure1Example(t *testing.T) {
	// The paper's Fig. 1: LT graph where node a (0) influences everything;
	// RR sets from any root must therefore contain node 0 frequently, and
	// a must have the highest occurrence count.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1, W: 1},   // a -> b
		{U: 0, V: 2, W: 0.7}, // a -> c
		{U: 2, V: 3, W: 0.3}, // c -> d (fig: 0.3)
		{U: 0, V: 3, W: 0.7}, // a -> d
	})
	s := mustSampler(t, g, diffusion.LT)
	col := NewCollection(s, 29, 1)
	col.Generate(20000)
	counts := make([]int, 4)
	for i := 0; i < col.Len(); i++ {
		for _, v := range col.Set(i) {
			counts[v]++
		}
	}
	for v := 1; v < 4; v++ {
		if counts[0] <= counts[v] {
			t.Fatalf("node a should be the most frequent element (counts %v)", counts)
		}
	}
}

func TestWRISWeightedRootDistribution(t *testing.T) {
	// With no edges, each RR set is exactly {root}; root frequencies must
	// follow the benefit weights.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1, W: 0.0001}})
	w := []float64{1, 0, 3, 6}
	s, err := NewWeightedSampler(g, diffusion.IC, w)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollection(s, 31, 2)
	const N = 200000
	col.Generate(N)
	counts := make([]int, 4)
	for i := 0; i < N; i++ {
		counts[col.Set(i)[0]]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight node used as root")
	}
	for _, v := range []int{0, 2, 3} {
		want := w[v] / 10 * N
		if math.Abs(float64(counts[v])-want) > 6*math.Sqrt(want) {
			t.Fatalf("root %d count %d want ~%.0f", v, counts[v], want)
		}
	}
}

func TestWRISBenefitIdentity(t *testing.T) {
	// Weighted Lemma 1: B(S) = Γ·Pr[S covers weighted RR set], validated
	// against weighted forward MC on a small graph.
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, W: 0.6}, {U: 1, V: 2, W: 0.5}, {U: 0, V: 3, W: 0.4},
		{U: 3, V: 4, W: 0.7},
	})
	w := []float64{0, 2, 1, 0, 5}
	s, err := NewWeightedSampler(g, diffusion.IC, w)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint32{0}
	col := NewCollection(s, 37, 2)
	const N = 300000
	col.Generate(N)
	mark := make([]bool, 5)
	mark[0] = true
	est := s.Scale() * float64(col.Coverage(mark)) / float64(N)
	mc, se, err := diffusion.Spread(g, diffusion.IC, seeds, diffusion.SpreadOptions{
		Runs: 300000, Seed: 41, Workers: 2, Weights: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-mc) > 5*se+0.02 {
		t.Fatalf("WRIS identity violated: est %.4f vs MC %.4f", est, mc)
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.ChungLu(300, 1500, 2.1, 43, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := mustSampler(t, g, model)
		c1 := NewCollection(s, 99, 1)
		c4 := NewCollection(s, 99, 4)
		c1.Generate(3000)
		c4.Generate(1000) // grow incrementally too
		c4.Generate(2000)
		if c1.Len() != c4.Len() {
			t.Fatal("length mismatch")
		}
		if c1.Items() != c4.Items() || c1.Width() != c4.Width() {
			t.Fatalf("%v: aggregate mismatch across workers", model)
		}
		for i := 0; i < c1.Len(); i++ {
			a, b := c1.Set(i), c4.Set(i)
			if len(a) != len(b) {
				t.Fatalf("%v: set %d length differs", model, i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%v: set %d differs", model, i)
				}
			}
		}
	}
}

func TestCollectionIndexConsistency(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 600, 47, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 51, 2)
	col.Generate(2000)
	// index[v] lists exactly the sets containing v, ascending.
	for v := uint32(0); int(v) < g.NumNodes(); v++ {
		idx := col.Index(v)
		for i := 1; i < len(idx); i++ {
			if idx[i-1] >= idx[i] {
				t.Fatal("index not ascending")
			}
		}
		for _, id := range idx {
			found := false
			for _, u := range col.Set(int(id)) {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("index lists a set not containing the node")
			}
		}
	}
	total := 0
	for v := uint32(0); int(v) < g.NumNodes(); v++ {
		total += len(col.Index(v))
	}
	if int64(total) != col.Items() {
		t.Fatalf("index total %d != items %d", total, col.Items())
	}
}

func TestCoverageRangeAgainstNaive(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 500, 53, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.LT)
	col := NewCollection(s, 57, 2)
	col.Generate(1500)
	mark := make([]bool, 80)
	mark[3], mark[17], mark[42] = true, true, true
	for _, rangeCase := range [][2]int{{0, 1500}, {0, 750}, {750, 1500}, {100, 200}, {-5, 9999}} {
		got := col.CoverageRange(mark, rangeCase[0], rangeCase[1])
		lo, hi := rangeCase[0], rangeCase[1]
		if lo < 0 {
			lo = 0
		}
		if hi > col.Len() {
			hi = col.Len()
		}
		var want int64
		for i := lo; i < hi; i++ {
			for _, v := range col.Set(i) {
				if mark[v] {
					want++
					break
				}
			}
		}
		if got != want {
			t.Fatalf("range %v: got %d want %d", rangeCase, got, want)
		}
	}
}

func TestIndexUpto(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 59, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 61, 1)
	col.Generate(1000)
	for v := uint32(0); v < 50; v += 7 {
		pre := col.IndexUpto(v, 400)
		for _, id := range pre {
			if id >= 400 {
				t.Fatal("IndexUpto returned id beyond cutoff")
			}
		}
		full := col.Index(v)
		count := 0
		for _, id := range full {
			if id < 400 {
				count++
			}
		}
		if count != len(pre) {
			t.Fatal("IndexUpto dropped ids")
		}
	}
}

func TestWidthMatchesDefinition(t *testing.T) {
	// w(R) = Σ_{v∈R} d_in(v), summed over all sets.
	g, err := gen.ErdosRenyi(60, 400, 67, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 71, 2)
	col.Generate(500)
	var want int64
	for i := 0; i < col.Len(); i++ {
		for _, v := range col.Set(i) {
			want += int64(g.InDegree(v))
		}
	}
	if col.Width() != want {
		t.Fatalf("width %d want %d", col.Width(), want)
	}
}

func TestVerifyStreamDisjoint(t *testing.T) {
	// Verification streams must differ from generation streams for the
	// same ids.
	a := streamFor(5, 7).Uint64()
	b := VerifyStream(5, 7).Uint64()
	if a == b {
		t.Fatal("verify stream collides with generate stream")
	}
}

func TestCollectionBytesGrow(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 73, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 77, 1)
	b0 := col.Bytes()
	col.Generate(1000)
	if col.Bytes() <= b0 {
		t.Fatal("Bytes did not grow with generation")
	}
}

func TestGenerateToIdempotent(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 79, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 83, 1)
	col.GenerateTo(100)
	col.GenerateTo(50) // no-op
	if col.Len() != 100 {
		t.Fatalf("len %d want 100", col.Len())
	}
	col.Generate(0) // no-op
	col.Generate(-5)
	if col.Len() != 100 {
		t.Fatalf("len %d want 100", col.Len())
	}
}

func BenchmarkGenerateIC(b *testing.B) {
	g, err := gen.ChungLu(20000, 100000, 2.1, 1, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	s := mustSampler(b, g, diffusion.IC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(s, uint64(i), 2)
		col.Generate(10000)
	}
}

func BenchmarkGenerateLT(b *testing.B) {
	g, err := gen.ChungLu(20000, 100000, 2.1, 1, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	s := mustSampler(b, g, diffusion.LT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(s, uint64(i), 2)
		col.Generate(10000)
	}
}

func TestEdgelessGraphRRSetsAreSingletons(t *testing.T) {
	// A graph with a single zero-weight edge: RR sets are always just
	// their root under both models.
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1, W: 0}})
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := mustSampler(t, g, model)
		st := s.NewState()
		for i := 0; i < 200; i++ {
			r := rng.NewStream(307, uint64(i))
			set, width := s.Sample(r, st)
			if len(set) != 1 {
				t.Fatalf("%v: RR set %v on edgeless graph", model, set)
			}
			if width < 0 {
				t.Fatal("negative width")
			}
		}
	}
}
