package ris

import (
	"path/filepath"
	"sync"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

func cacheGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(150, 700, 2.1, seed, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPlanCacheSharedAcrossSamplers: all samplers on one (graph, model) —
// plain, weighted, kernel copies, racing first uses — share one compiled
// plan, and the registry counts exactly one compilation.
func TestPlanCacheSharedAcrossSamplers(t *testing.T) {
	g := cacheGraph(t, 301)
	defer DropCachedPlans(g)

	if n := PlanCompilations(g, diffusion.IC); n != 0 {
		t.Fatalf("fresh graph: %d compilations", n)
	}
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = 1 + float64(v%3)
	}
	s1, err := NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewWeightedSampler(g, diffusion.IC, weights)
	if err != nil {
		t.Fatal(err)
	}
	samplers := []*Sampler{s1, s2, s1.WithKernel(KernelOracle), s2.WithKernel(KernelOracle).WithKernel(KernelPlan)}

	// Race the first compilation from every sampler at once.
	var wg sync.WaitGroup
	plans := make([]*Plan, len(samplers)*4)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i] = samplers[i%len(samplers)].Plan()
		}(i)
	}
	wg.Wait()
	for i, p := range plans {
		if p == nil || p != plans[0] {
			t.Fatalf("plan %d is not the shared instance", i)
		}
	}
	if n := PlanCompilations(g, diffusion.IC); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
	if got := CachedPlanBytes(g, diffusion.IC); got != plans[0].Bytes() {
		t.Fatalf("CachedPlanBytes %d != plan bytes %d", got, plans[0].Bytes())
	}
	// PlanBytes on every sampler reports the shared plan.
	for i, s := range samplers {
		if s.PlanBytes() != plans[0].Bytes() {
			t.Fatalf("sampler %d PlanBytes %d != %d", i, s.PlanBytes(), plans[0].Bytes())
		}
	}
}

// TestPlanCacheBounded: the registry is an LRU capped at planCacheLimit
// keys, so a process churning throwaway graphs cannot pin graphs and plans
// without bound; evicted entries keep working for samplers already holding
// them.
func TestPlanCacheBounded(t *testing.T) {
	g0 := cacheGraph(t, 401)
	s0, err := NewSampler(g0, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s0.Plan()
	if n := PlanCompilations(g0, diffusion.IC); n != 1 {
		t.Fatalf("g0 compiled %d times, want 1", n)
	}
	// Churn enough distinct graphs through the registry to evict g0.
	churn := make([]*graph.Graph, 0, planCacheLimit+8)
	for i := 0; i < planCacheLimit+8; i++ {
		g, err := gen.ChungLu(40, 120, 2.1, uint64(500+i), graph.BuildOptions{Model: graph.WeightedCascade})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSampler(g, diffusion.IC); err != nil {
			t.Fatal(err)
		}
		churn = append(churn, g)
	}
	defer func() {
		for _, g := range churn {
			DropCachedPlans(g)
		}
	}()
	if n := PlanCompilations(g0, diffusion.IC); n != 0 {
		t.Fatalf("g0 should have been evicted by churn, registry still reports %d compilations", n)
	}
	// The most recent churn graphs must still be resident.
	if _, ok := lookupPlanCache(churn[len(churn)-1], diffusion.IC); !ok {
		t.Fatal("most recent key evicted")
	}
	// The evicted sampler keeps its compiled plan.
	if s0.Plan() != p0 {
		t.Fatal("evicted sampler lost its plan")
	}
}

// TestPlanCacheKeying: different models and different graphs get distinct
// entries; eviction releases the key and future samplers recompile while
// existing samplers keep their plan.
func TestPlanCacheKeying(t *testing.T) {
	g1 := cacheGraph(t, 303)
	g2 := cacheGraph(t, 305)
	defer DropCachedPlans(g1)
	defer DropCachedPlans(g2)

	sIC, err := NewSampler(g1, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	sLT, err := NewSampler(g1, diffusion.LT)
	if err != nil {
		t.Fatal(err)
	}
	sG2, err := NewSampler(g2, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	pIC, pLT, pG2 := sIC.Plan(), sLT.Plan(), sG2.Plan()
	if pIC == pLT || pIC == pG2 {
		t.Fatal("distinct (graph, model) keys shared a plan")
	}
	if PlanCompilations(g1, diffusion.IC) != 1 || PlanCompilations(g1, diffusion.LT) != 1 ||
		PlanCompilations(g2, diffusion.IC) != 1 {
		t.Fatal("each key must compile exactly once")
	}

	DropCachedPlans(g1)
	if n := PlanCompilations(g1, diffusion.IC); n != 0 {
		t.Fatalf("evicted key still reports %d compilations", n)
	}
	// The evicted sampler keeps working with its plan; a new sampler
	// recompiles into a fresh entry.
	if sIC.Plan() != pIC {
		t.Fatal("existing sampler lost its plan on eviction")
	}
	sNew, err := NewSampler(g1, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	if sNew.Plan() == pIC {
		t.Fatal("post-eviction sampler reused the evicted entry")
	}
	if n := PlanCompilations(g1, diffusion.IC); n != 1 {
		t.Fatalf("recompiled entry reports %d compilations, want 1", n)
	}
}

// TestPlanCacheMappedGraph: a graph opened from a .sasg mapping keys the
// plan cache exactly like a heap graph — by *graph.Graph identity — so two
// samplers on the same mapped graph share one compilation, and the cache
// never confuses a mapped graph with the heap graph it was written from.
func TestPlanCacheMappedGraph(t *testing.T) {
	heap := cacheGraph(t, 905)
	defer DropCachedPlans(heap)
	path := filepath.Join(t.TempDir(), "cache.sasg")
	if err := heap.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	defer DropCachedPlans(mapped)

	s1, err := NewSampler(mapped, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSampler(mapped, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Plan() != s2.Plan() {
		t.Fatal("two samplers on one mapped graph compiled distinct plans")
	}
	if n := PlanCompilations(mapped, diffusion.IC); n != 1 {
		t.Fatalf("mapped graph compiled %d times, want 1", n)
	}
	// Identity keying: the heap original is a different graph value, so it
	// gets its own entry — nothing leaked across the backends.
	if n := PlanCompilations(heap, diffusion.IC); n != 0 {
		t.Fatalf("heap twin reports %d compilations before any sampler", n)
	}
	if CachedPlanBytes(mapped, diffusion.IC) <= 0 {
		t.Fatal("mapped graph's cached plan reports no bytes")
	}
}
