package ris

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
	"unsafe"
)

// This file is the durable half of the RR-set stores: a versioned on-disk
// snapshot format plus the atomic manifest protocol that commits it.
//
// A snapshot is a sequence of 64-byte-aligned blocks, mirroring the spill
// file's layout (and the .sasg convention): each block is a 64-byte header
// (magic, kind, payload length, CRC32C) followed by the payload, padded to
// the next 64-byte boundary. The first block is the store meta — seed,
// model/kernel, shard topology, epoch table and per-segment descriptors —
// and the rest are the raw offset tables, gid tables, arena extents and CSR
// index blocks, in the order the meta declares them. Payloads are host-order
// images (like the spill file, the snapshot is per-host state, not an
// interchange format), so recovery maps the file read-only and casts the
// arena and index payloads in place: a warm restart costs one sequential
// checksum pass, not a resample.
//
// Commit protocol: write snapshot-<gen>.rrsnap → fsync file → fsync dir →
// write manifest.json.tmp → fsync → rename over manifest.json → fsync dir.
// The manifest is the single commit point, so a crash at any instant leaves
// the directory describing either the previous or the new snapshot, never a
// torn one. Every write-side filesystem call goes through a SnapshotFS so
// tests can fail the Nth write, tear a block, flip bytes, or drop the
// rename and prove that invariant at every step.
//
// Integrity: every block carries a CRC32C over its payload. Recovery
// verifies eagerly (the Store read paths are error-free and concurrent, so
// in-band lazy repair would be unsound); a bad block degrades gracefully —
// the suffix of the stream from the first unrecoverable RR set onward is
// discarded and resampled deterministically from the (seed, i) streams,
// which reproduces it bit-identically.

const (
	// snapMagic is "RRSN" read as a little-endian uint32.
	snapMagic = 0x4E535252
	// snapHdrSize is the per-block header size; payloads start this many
	// bytes past the block's offset, keeping them 64-byte aligned.
	snapHdrSize = 64
	// snapAlign is the block alignment granularity.
	snapAlign = 64
	// snapVersion is the snapshot format version (manifest and meta block).
	snapVersion = 1
)

// Snapshot block kinds (header byte 4).
const (
	snapKindMeta    byte = 10 // store meta (wbuf-encoded)
	snapKindOffsets byte = 11 // segment offset table: []int64 image
	snapKindGids    byte = 12 // segment gid table: []int32 image
	snapKindArena   byte = 13 // arena extent items: []uint32 image
	snapKindIndex   byte = 14 // CSR index block: []int32 starts ++ []int32 ids
	snapKindWorker  byte = 15 // worker-shard meta (imworker state snapshots)
)

const (
	manifestName = "manifest.json"
	snapSuffix   = ".rrsnap"
)

// castagnoli is the CRC32C table shared by snapshot and spill blocks.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var snapZeros [snapAlign]byte

func snapAlignUp(v int64) int64 { return (v + snapAlign - 1) &^ (snapAlign - 1) }

// ErrNoSnapshot reports that a state directory holds no committed snapshot
// (no manifest). Callers start cold; this is the expected first-boot path.
var ErrNoSnapshot = errors.New("ris: no snapshot")

// SnapshotMismatchError reports a committed snapshot that describes a
// different store than the one being recovered (other seed, graph, kernel or
// shard topology). Callers start cold and may keep or replace the snapshot.
type SnapshotMismatchError struct{ Reason string }

func (e *SnapshotMismatchError) Error() string {
	return "ris: snapshot mismatch: " + e.Reason
}

// SnapshotCorruptError reports a snapshot whose manifest or meta block is
// unusable — nothing can be restored from it. Per-payload corruption is NOT
// this error: bad arena or index blocks degrade gracefully into a suffix
// discard plus deterministic resample (see RecoveryInfo.Discarded).
type SnapshotCorruptError struct {
	Path   string
	Reason string
}

func (e *SnapshotCorruptError) Error() string {
	return fmt.Sprintf("ris: corrupt snapshot %s: %s", e.Path, e.Reason)
}

// SnapshotFile is the write handle SnapshotFS hands out. Sync must not
// return until the data is durable.
type SnapshotFile interface {
	io.Writer
	Sync() error
	Close() error
}

// SnapshotFS is the write-side filesystem seam of the snapshot protocol.
// Production uses OSSnapshotFS; crash-consistency tests inject
// implementations that fail the Nth write, tear a write mid-block, flip
// bytes, drop fsyncs or drop the rename, then simulate the crash.
type SnapshotFS interface {
	Create(name string) (SnapshotFile, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir makes a directory's entries durable (file creation, rename).
	SyncDir(dir string) error
}

type osSnapshotFS struct{}

func (osSnapshotFS) Create(name string) (SnapshotFile, error) { return os.Create(name) }
func (osSnapshotFS) Rename(oldname, newname string) error     { return os.Rename(oldname, newname) }
func (osSnapshotFS) Remove(name string) error                 { return os.Remove(name) }

func (osSnapshotFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is best-effort: some platforms reject it, and the
	// protocol stays crash-consistent without it (only the commit latency
	// window widens).
	d.Sync()
	return d.Close()
}

// OSSnapshotFS is the production SnapshotFS backed by the os package.
var OSSnapshotFS SnapshotFS = osSnapshotFS{}

// SnapshotInfo describes one committed snapshot.
type SnapshotInfo struct {
	Generation uint64
	Path       string
	Bytes      int64
	Sets       int
}

// PersistentStore is the optional Store extension of stores that can write
// crash-safe snapshots of their RR state. Both built-in stores implement it.
// Persist reads the store, so callers must hold the same exclusivity as
// Generate (no concurrent mutation; concurrent reads are fine).
type PersistentStore interface {
	Store
	// Persist writes a snapshot of the store into dir and atomically commits
	// it via the manifest. The previous snapshot stays committed until the
	// new one is durable.
	Persist(dir string) (SnapshotInfo, error)
	// PersistFS is Persist through an injected filesystem (fault tests).
	PersistFS(dir string, fs SnapshotFS) (SnapshotInfo, error)
}

var (
	_ PersistentStore = (*Collection)(nil)
	_ PersistentStore = (*ShardedCollection)(nil)
)

// snapManifest is the committed pointer to the current snapshot. It is the
// single atomic commit point of the protocol: written to manifest.json.tmp,
// fsynced, then renamed over manifest.json.
type snapManifest struct {
	Version     int    `json:"version"`
	Generation  uint64 `json:"generation"`
	Snapshot    string `json:"snapshot"`
	Bytes       int64  `json:"bytes"`
	Sets        int    `json:"sets"`
	CreatedUnix int64  `json:"created_unix"`
}

func loadManifest(dir string) (snapManifest, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return snapManifest{}, ErrNoSnapshot
	}
	if err != nil {
		return snapManifest{}, err
	}
	var man snapManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return snapManifest{}, &SnapshotCorruptError{Path: path, Reason: "manifest: " + err.Error()}
	}
	if man.Version != snapVersion || man.Snapshot == "" ||
		man.Snapshot != filepath.Base(man.Snapshot) {
		return snapManifest{}, &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf("manifest version %d, snapshot %q", man.Version, man.Snapshot)}
	}
	return man, nil
}

// ReadSnapshotInfo reports the committed snapshot in dir without opening or
// verifying the snapshot file itself: the manifest's generation, path, size
// and RR-set count. ErrNoSnapshot when dir holds no committed manifest;
// *SnapshotCorruptError when the manifest itself is unreadable. Diagnostics
// (imstats) use this; recovery goes through Recover, which verifies.
func ReadSnapshotInfo(dir string) (SnapshotInfo, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{
		Generation: man.Generation,
		Path:       filepath.Join(dir, man.Snapshot),
		Bytes:      man.Bytes,
		Sets:       man.Sets,
	}, nil
}

// snapWriter appends blocks to a SnapshotFile, tracking offset and the first
// error (after which writes become no-ops, like rbuf's sticky error).
type snapWriter struct {
	f   SnapshotFile
	off int64
	err error
}

func (sw *snapWriter) write(p []byte) {
	if sw.err != nil || len(p) == 0 {
		return
	}
	if _, err := sw.f.Write(p); err != nil {
		sw.err = err
		return
	}
	sw.off += int64(len(p))
}

// block appends one header + payload-parts block, padded to snapAlign, with
// the CRC32C of the concatenated parts in the header.
func (sw *snapWriter) block(kind byte, parts ...[]byte) {
	var plen int64
	var crc uint32
	for _, p := range parts {
		plen += int64(len(p))
		crc = crc32.Update(crc, castagnoli, p)
	}
	var hdr [snapHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	hdr[4] = kind
	binary.LittleEndian.PutUint64(hdr[8:], uint64(plen))
	binary.LittleEndian.PutUint32(hdr[16:], crc)
	sw.write(hdr[:])
	for _, p := range parts {
		sw.write(p)
	}
	if pad := snapAlignUp(plen) - plen; pad > 0 {
		sw.write(snapZeros[:pad])
	}
}

// storeMeta is everything the meta block carries besides the per-segment
// descriptors: the identity a recovery must match and the tables that cannot
// be derived from the segments alone.
type storeMeta struct {
	seed     uint64
	model    uint8
	kernel   uint8
	weighted bool
	whash    uint64
	scale    float64
	n        int
	length   int
	shards   int // 0 = flat Collection
	remote   bool
	keys     []string // remote only: per-shard worker keys
	nonces   []uint64 // remote only: per-shard open nonces
	epochs   []genEpoch
}

// weightsHash fingerprints a WRIS weight vector so recovery can reject a
// snapshot taken under different benefits.
func weightsHash(ws []float64) uint64 {
	if len(ws) == 0 {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		h.Write(b[:])
	}
	return h.Sum64()
}

func storeMetaOf(s *Sampler, seed uint64) storeMeta {
	return storeMeta{
		seed:     seed,
		model:    uint8(s.model),
		kernel:   uint8(s.kernel),
		weighted: s.root != nil,
		whash:    weightsHash(s.weights),
		scale:    s.scale,
		n:        s.g.NumNodes(),
	}
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// persistExt is one arena range scheduled for persistence: the frozen
// extents in order, then the active tail as a final virtual extent. Together
// they tile the segment's sets [0, nsets).
type persistExt struct {
	setFrom, setTo int
	items          int64
	data           []uint32
}

func persistExtents(sg *segment) []persistExt {
	out := make([]persistExt, 0, len(sg.exts)+1)
	for i := range sg.exts {
		e := &sg.exts[i]
		out = append(out, persistExt{
			setFrom: e.setFrom, setTo: e.setTo,
			items: e.end - e.base, data: e.data[:e.end-e.base],
		})
	}
	if ns := sg.nsets(); ns > sg.tailSet {
		items := sg.offsets[ns] - sg.tailBase
		out = append(out, persistExt{
			setFrom: sg.tailSet, setTo: ns,
			items: items, data: sg.buf[:items],
		})
	}
	return out
}

// encodeSegMeta appends one segment's descriptor: set count, width, whether
// a gid table follows, the arena extents and the CSR index blocks. Block
// payload lengths are all derivable from this, so recovery can locate every
// block in the file without trusting any payload.
func encodeSegMeta(w *wbuf, sg *segment) {
	ns := sg.nsets()
	w.u64(uint64(ns))
	w.i64(sg.width)
	w.u8(b2u(sg.gids != nil))
	exts := persistExtents(sg)
	w.u32(uint32(len(exts)))
	for _, x := range exts {
		w.u64(uint64(x.setFrom))
		w.u64(uint64(x.setTo))
		w.i64(x.items)
	}
	w.u32(uint32(len(sg.blocks)))
	for i := range sg.blocks {
		b := &sg.blocks[i]
		w.u64(uint64(b.lfrom))
		w.u64(uint64(b.lto))
		w.u64(uint64(len(b.starts)))
		w.u64(uint64(len(b.ids)))
	}
}

// writeSegBlocks appends one segment's data blocks in the order its
// descriptor declares: offsets, gids (sharded segments), arena extents, CSR
// index blocks.
func writeSegBlocks(sw *snapWriter, sg *segment) {
	ns := sg.nsets()
	sw.block(snapKindOffsets, i64SnapBytes(sg.offsets[:ns+1]))
	if sg.gids != nil {
		sw.block(snapKindGids, i32SpillBytes(sg.gids[:ns]))
	}
	for _, x := range persistExtents(sg) {
		sw.block(snapKindArena, u32SpillBytes(x.data))
	}
	for i := range sg.blocks {
		b := &sg.blocks[i]
		sw.block(snapKindIndex, i32SpillBytes(b.starts), i32SpillBytes(b.ids))
	}
}

func encodeStoreMeta(m storeMeta, segs []*segment) []byte {
	var w wbuf
	w.u32(snapVersion)
	w.u64(m.seed)
	w.u8(m.model)
	w.u8(m.kernel)
	w.u8(b2u(m.weighted))
	w.u64(m.whash)
	w.f64(m.scale)
	w.u64(uint64(m.n))
	w.u64(uint64(m.length))
	w.u32(uint32(m.shards))
	w.u8(b2u(m.remote))
	if m.remote {
		for i := range m.keys {
			w.str(m.keys[i])
			w.u64(m.nonces[i])
		}
	}
	w.u32(uint32(len(m.epochs)))
	for i := range m.epochs {
		e := &m.epochs[i]
		w.u64(uint64(e.from))
		w.u64(uint64(e.to))
		for _, b := range e.bounds {
			w.u64(uint64(b))
		}
		for _, b := range e.base {
			w.u64(uint64(b))
		}
	}
	w.u32(uint32(len(segs)))
	for _, sg := range segs {
		encodeSegMeta(&w, sg)
	}
	return w.b
}

// Persist writes a snapshot of the flat store into dir and commits it.
func (c *Collection) Persist(dir string) (SnapshotInfo, error) {
	return c.PersistFS(dir, OSSnapshotFS)
}

// PersistFS is Persist through an injected filesystem (fault tests).
func (c *Collection) PersistFS(dir string, fs SnapshotFS) (SnapshotInfo, error) {
	m := storeMetaOf(c.sampler, c.seed)
	m.length = c.Len()
	return persistStore(dir, fs, m, []*segment{&c.segment})
}

// Persist writes a snapshot of the sharded store into dir and commits it.
// For a remote-sharded store the mirrors and the per-shard keys and nonces
// are persisted: a recovered coordinator re-opens each worker shard under
// its old identity, so a worker that kept (or itself recovered) that state
// resyncs by delta replay instead of a full wipe.
func (sc *ShardedCollection) Persist(dir string) (SnapshotInfo, error) {
	return sc.PersistFS(dir, OSSnapshotFS)
}

// PersistFS is Persist through an injected filesystem (fault tests).
func (sc *ShardedCollection) PersistFS(dir string, fs SnapshotFS) (SnapshotInfo, error) {
	m := storeMetaOf(sc.sampler, sc.seed)
	m.length = sc.length
	m.shards = len(sc.segs)
	m.epochs = sc.epochs
	if sc.remotes != nil {
		m.remote = true
		for _, rs := range sc.remotes {
			rs.mu.Lock()
			m.keys = append(m.keys, rs.key)
			m.nonces = append(m.nonces, rs.nonce)
			rs.mu.Unlock()
		}
	}
	return persistStore(dir, fs, m, sc.segs)
}

// persistStore runs the full snapshot protocol: write every block, fsync the
// file, fsync the directory, then commit by atomic manifest replace. On any
// error the previous manifest — and therefore the previous snapshot — stays
// committed; partial files are swept by the next successful Persist or by
// CleanStateDir.
func persistStore(dir string, fs SnapshotFS, m storeMeta, segs []*segment) (SnapshotInfo, error) {
	return persistSnapshot(dir, fs, snapKindMeta, encodeStoreMeta(m, segs), segs, m.length)
}

// persistSnapshot is the protocol core shared by store snapshots (meta kind
// snapKindMeta) and worker shard-state snapshots (snapKindWorker): the meta
// block, then every segment's data blocks, fsync, atomic manifest commit.
func persistSnapshot(dir string, fs SnapshotFS, metaKind byte, meta []byte, segs []*segment, sets int) (SnapshotInfo, error) {
	if fs == nil {
		fs = OSSnapshotFS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SnapshotInfo{}, fmt.Errorf("ris: snapshot dir: %w", err)
	}
	gen := uint64(1)
	if man, err := loadManifest(dir); err == nil {
		gen = man.Generation + 1
	}
	name := fmt.Sprintf("snapshot-%06d%s", gen, snapSuffix)
	path := filepath.Join(dir, name)
	f, err := fs.Create(path)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("ris: snapshot create %s: %w", path, err)
	}
	sw := &snapWriter{f: f}
	sw.block(metaKind, meta)
	for _, sg := range segs {
		writeSegBlocks(sw, sg)
	}
	if sw.err == nil {
		sw.err = f.Sync()
	}
	if cerr := f.Close(); sw.err == nil {
		sw.err = cerr
	}
	if sw.err != nil {
		return SnapshotInfo{}, fmt.Errorf("ris: snapshot write %s: %w", path, sw.err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return SnapshotInfo{}, fmt.Errorf("ris: snapshot sync %s: %w", dir, err)
	}
	man := snapManifest{
		Version: snapVersion, Generation: gen, Snapshot: name,
		Bytes: sw.off, Sets: sets, CreatedUnix: time.Now().Unix(),
	}
	if err := commitManifest(dir, fs, man); err != nil {
		return SnapshotInfo{}, err
	}
	sweepStale(dir, fs, name)
	return SnapshotInfo{Generation: gen, Path: path, Bytes: sw.off, Sets: sets}, nil
}

// commitManifest atomically replaces the committed manifest: write tmp,
// fsync, rename over the real name, fsync the directory. A crash before the
// rename leaves the old manifest; after it, the new one. Never a torn state.
func commitManifest(dir string, fs SnapshotFS, man snapManifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("ris: manifest create: %w", err)
	}
	werr := func() error {
		if _, err := f.Write(append(data, '\n')); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("ris: manifest write: %w", werr)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ris: manifest commit: %w", err)
	}
	return fs.SyncDir(dir)
}

// sweepStale removes superseded snapshot files and stale manifest temp files
// after a successful commit. Best effort: a recovered store may still be
// mapping an older snapshot (unlink-while-mapped is fine on unix; elsewhere
// the remove fails and the next sweep retries).
func sweepStale(dir string, fs SnapshotFS, keep string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if name == keep || ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, snapSuffix)) {
			fs.Remove(filepath.Join(dir, name))
		}
	}
}

// CleanStateDir removes crash leftovers from a snapshot state directory:
// *.tmp files from an interrupted manifest commit and snapshot files not
// referenced by the committed manifest. Run at startup, before Recover.
// Returns the removed file names.
func CleanStateDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	keep := ""
	if man, err := loadManifest(dir); err == nil {
		keep = man.Snapshot
	}
	var removed []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || name == keep || name == manifestName {
			continue
		}
		if strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, snapSuffix)) {
			if os.Remove(filepath.Join(dir, name)) == nil {
				removed = append(removed, name)
			}
		}
	}
	return removed, nil
}

// CleanSpillDir removes leftover spill files from a spill directory. Live
// spill files are unlinked at creation wherever the OS allows it, so
// anything still visible is a leftover from a crash on a platform without
// anonymous unlink. Returns the removed file names.
func CleanSpillDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "rrspill-") || !strings.HasSuffix(name, ".spill") {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed = append(removed, name)
		}
	}
	return removed, nil
}

// Raw host-order image of the offset table (see the spill cast helpers —
// same per-host-scratch argument).

func i64SnapBytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func castSnapI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}
