package ris

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteShard is the coordinator side of one cross-process shard: a client
// for a ShardServer worker that owns the shard's arena + CSR blocks. The
// coordinator keeps a mirror arena (seg) fed by Generate's streamed chunks —
// the solvers' Set/ForEachSet scans stay local and allocation-free — but
// builds no CSR index: postings and coverage walks are answered by the
// worker from its blocks, so the index (the larger half of a store) lives
// only on the worker and coverage walks never ship arenas.
//
// Failure handling is reconnect-with-backoff plus deterministic resync:
// because RR set i is a pure function of (kernel, seed, i), the client can
// always drive a restarted or evicted worker back to the mirror's state by
// replaying Generate ranges, and the worker's idempotent redelivery covers
// the inverse (worker ahead after a coordinator rollback). Only when the
// reconnect budget is spent does an operation fail, as a *ShardError
// wrapping ErrShardUnreachable.
type RemoteShard struct {
	addr    string
	dial    DialFunc
	timeout time.Duration
	key     string
	spec    shardSpec
	seg     *segment // mirror arena owned by the ShardedCollection

	mu    sync.Mutex // serializes the connection; one request in flight
	nonce uint64
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
}

// remoteAttempts bounds the connect-exchange cycles per operation; the
// zeroth attempt is immediate, later ones back off.
const remoteAttempts = 4

var remoteBackoff = [remoteAttempts]time.Duration{0, 50 * time.Millisecond, 250 * time.Millisecond, 1 * time.Second}

// shardInstance distinguishes store instances (and forced re-opens) across
// coordinator processes: time seeds uniqueness between processes, the
// counter within one.
var shardInstanceCounter atomic.Uint64

func nextShardInstance() uint64 {
	return uint64(time.Now().UnixNano())<<16 | (shardInstanceCounter.Add(1) & 0xffff)
}

// Addr returns the worker address this shard proxies.
func (rs *RemoteShard) Addr() string { return rs.addr }

// close tears down the connection (tests; the store has no Close).
func (rs *RemoteShard) close() {
	rs.mu.Lock()
	rs.dropConnLocked()
	rs.mu.Unlock()
}

func (rs *RemoteShard) dropConnLocked() {
	if rs.conn != nil {
		rs.conn.Close()
		rs.conn, rs.br, rs.bw = nil, nil, nil
	}
}

// segSnap captures the mirror's observable extent so a partially failed
// multi-shard Generate can be rolled back exactly. Mirrors hold no CSR
// blocks and spill enforcement only runs after a fully successful Generate,
// so between snapshot and restore the segment can only have grown at its
// arena tail — bufLen is the TAIL length (frozen extents are immutable and
// need no rollback) and the three scalars cover everything.
type segSnap struct {
	nsets  int
	bufLen int
	width  int64
}

func (rs *RemoteShard) snapshot() segSnap {
	return segSnap{nsets: rs.seg.nsets(), bufLen: len(rs.seg.buf), width: rs.seg.width}
}

func (rs *RemoteShard) restore(s segSnap) {
	rs.seg.buf = rs.seg.buf[:s.bufLen]
	rs.seg.offsets = rs.seg.offsets[:s.nsets+1]
	rs.seg.gids = rs.seg.gids[:s.nsets]
	rs.seg.width = s.width
}

// generate asks the worker to append RR sets [gfrom, gto) and mirrors the
// streamed chunks into the local arena. On success the mirror grew by
// exactly gto−gfrom sets; on error (including ctx cancellation, returned
// unwrapped) it is unchanged.
func (rs *RemoteShard) generate(ctx context.Context, gfrom, gto int) error {
	var w wbuf
	w.str(rs.key)
	w.u64(uint64(gfrom))
	w.u64(uint64(gto))
	w.u8(1) // mirror the chunks back
	frames, err := rs.doRPC(ctx, "generate", opGenerate, w.b, true)
	if err != nil {
		return err
	}
	chunks := make([]chunkResult, 0, len(frames))
	total := 0
	for _, f := range frames {
		c, err := decodeChunk(f)
		if err != nil {
			return &ShardError{Addr: rs.addr, Op: "generate", Err: err}
		}
		total += len(c.offsets) - 1
		chunks = append(chunks, c)
	}
	if total != gto-gfrom {
		return &ShardError{Addr: rs.addr, Op: "generate",
			Err: fmt.Errorf("worker streamed %d sets for range [%d,%d)", total, gfrom, gto)}
	}
	rs.seg.appendResults(chunks)
	for g := gfrom; g < gto; g++ {
		rs.seg.gids = append(rs.seg.gids, int32(g))
	}
	return nil
}

// postings fetches the global ids in [from, upto) of RR sets containing v,
// one ascending run per worker (its blocks are disjoint ascending ranges).
func (rs *RemoteShard) postings(v uint32, from, upto int) ([]int32, error) {
	var w wbuf
	w.str(rs.key)
	w.u32(v)
	w.u64(uint64(from))
	w.u64(uint64(upto))
	frames, err := rs.doRPC(context.Background(), "postings", opPostings, w.b, false)
	if err != nil {
		return nil, err
	}
	r := rbuf{b: frames[0]}
	ids := r.i32s()
	if r.err != nil {
		return nil, &ShardError{Addr: rs.addr, Op: "postings", Err: r.err}
	}
	return ids, nil
}

// coverageSeeds counts the shard's RR sets in [from, to) containing at
// least one seed, walked worker-side from its CSR blocks. Shards own
// disjoint global id ranges, so the coordinator sums shard counts.
func (rs *RemoteShard) coverageSeeds(seeds []uint32, from, to int) (int64, error) {
	var w wbuf
	w.str(rs.key)
	w.u64(uint64(from))
	w.u64(uint64(to))
	w.u32s(seeds)
	frames, err := rs.doRPC(context.Background(), "coverage", opCoverage, w.b, false)
	if err != nil {
		return 0, err
	}
	r := rbuf{b: frames[0]}
	cov := r.i64()
	if r.err != nil {
		return 0, &ShardError{Addr: rs.addr, Op: "coverage", Err: r.err}
	}
	return cov, nil
}

// doRPC runs one request/response exchange with reconnect, backoff and
// resync. stream selects the multi-frame response shape (respData… respEnd)
// over the single-frame one. Fatal worker errors return immediately; resync
// requests re-open the shard (fresh nonce, deterministic replay) and retry;
// transport failures drop the connection, back off and retry. A non-nil
// error is always a *ShardError — except context cancellation, checked
// before every attempt and during backoff, which returns ctx's error
// unwrapped so callers can distinguish "caller gave up" from "shard down".
func (rs *RemoteShard) doRPC(ctx context.Context, op string, kind byte, payload []byte, stream bool) ([][]byte, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < remoteAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d := remoteBackoff[attempt]; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		if rs.conn == nil {
			if err := rs.connectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		frames, err := rs.exchangeLocked(kind, payload, stream)
		if err == nil {
			if !stream && len(frames) == 0 {
				return nil, &ShardError{Addr: rs.addr, Op: op, Err: errors.New("worker sent no data frame")}
			}
			return frames, nil
		}
		lastErr = err
		var fe *fatalError
		if errors.As(err, &fe) {
			return nil, &ShardError{Addr: rs.addr, Op: op, Err: err}
		}
		var re *resyncError
		if errors.As(err, &re) {
			if err := rs.syncLocked(true); err != nil {
				lastErr = err
				rs.dropConnLocked()
			}
			continue
		}
		rs.dropConnLocked()
	}
	return nil, &ShardError{Addr: rs.addr, Op: op,
		Err: fmt.Errorf("%w after %d attempts: %v", ErrShardUnreachable, remoteAttempts, lastErr)}
}

// connectLocked dials the worker and reconciles shard state.
func (rs *RemoteShard) connectLocked() error {
	conn, err := rs.dial(rs.addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	rs.conn = conn
	rs.br = bufio.NewReader(conn)
	rs.bw = bufio.NewWriter(conn)
	if err := rs.syncLocked(false); err != nil {
		rs.dropConnLocked()
		return err
	}
	return nil
}

// syncLocked opens the shard on the worker and drives its state to match
// the mirror. fresh forces a wipe (new nonce): the worker discards whatever
// it holds and the full mirror is replayed — the recovery of last resort,
// also used when the worker got ahead of a rolled-back mirror.
func (rs *RemoteShard) syncLocked(fresh bool) error {
	if fresh {
		rs.nonce = nextShardInstance()
	}
	var w wbuf
	w.str(rs.key)
	w.u64(rs.nonce)
	rs.spec.encode(&w)
	if _, err := rs.exchangeLocked(opOpen, w.b, false); err != nil {
		return err
	}
	var sw wbuf
	sw.str(rs.key)
	frames, err := rs.exchangeLocked(opStats, sw.b, false)
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return errors.New("worker sent no stats")
	}
	r := rbuf{b: frames[0]}
	workerN := int(r.u64())
	if r.err != nil {
		return r.err
	}
	mirrorN := rs.seg.nsets()
	if workerN > mirrorN {
		if fresh {
			return fmt.Errorf("worker holds %d sets after wipe (mirror has %d)", workerN, mirrorN)
		}
		return rs.syncLocked(true)
	}
	// Worker behind (restart, eviction, or a fresh wipe): replay the
	// mirror's missing gid runs. The worker regenerates them from the
	// deterministic streams; no chunks come back (mirror flag off).
	gids := rs.seg.gids[workerN:]
	for i := 0; i < len(gids); {
		j := i + 1
		for j < len(gids) && gids[j] == gids[j-1]+1 {
			j++
		}
		var gw wbuf
		gw.str(rs.key)
		gw.u64(uint64(gids[i]))
		gw.u64(uint64(gids[j-1]) + 1)
		gw.u8(0)
		if _, err := rs.exchangeLocked(opGenerate, gw.b, true); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// exchangeLocked performs one framed request/response on the live
// connection, with the per-call deadline re-armed before the write and
// before every response frame.
func (rs *RemoteShard) exchangeLocked(kind byte, payload []byte, stream bool) ([][]byte, error) {
	rs.conn.SetDeadline(time.Now().Add(rs.timeout))
	if err := writeFrame(rs.bw, kind, payload); err != nil {
		return nil, err
	}
	if err := rs.bw.Flush(); err != nil {
		return nil, err
	}
	var frames [][]byte
	for {
		rs.conn.SetDeadline(time.Now().Add(rs.timeout))
		k, p, err := readFrame(rs.br)
		if err != nil {
			return nil, err
		}
		switch k {
		case respOK:
			return frames, nil
		case respEnd:
			return frames, nil
		case respErr:
			return nil, decodeRespErr(p)
		case respData:
			frames = append(frames, p)
			if !stream {
				return frames, nil
			}
		default:
			return nil, fmt.Errorf("unexpected response kind %d", k)
		}
	}
}
