//go:build !unix

package ris

import (
	"fmt"
	"os"
	"unsafe"
)

// Without mmap the "mapped" tier is a heap buffer read back from the spill
// file: every access path and all validation behave identically, but the
// bytes stay resident, so accounting reports them as such (see
// spillMappedResident). Mirrors the graph package's !unix fallback.
type spillMapping struct {
	data []byte
}

func (m *spillMapping) release() { m.data = nil }

const spillMappedResident = true

func mapSpillBlock(f *os.File, off, length int64) (*spillMapping, error) {
	// Back the buffer with []uint64 so the payload keeps the alignment the
	// in-place casts rely on.
	words := make([]uint64, (length+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), length)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, fmt.Errorf("%w: read [%d,+%d): %v", ErrBadSpill, off, length, err)
	}
	return &spillMapping{data: data}, nil
}
