package ris

import (
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// coverageSchedules are the growth schedules the coverage equivalence runs
// over — the same one-shot / doubling / irregular shapes as the arena
// equivalence test, so the CSR layout under test includes merged
// (size-tiered absorbed) and irregular block boundaries.
var coverageSchedules = []struct {
	name     string
	workers  int
	schedule []int
}{
	{"w1-one-shot", 1, []int{2500}},
	{"w2-doubling", 2, []int{100, 200, 400, 800, 1600, 2500}},
	{"w8-irregular", 8, []int{1, 3, 700, 701, 2499, 2500}},
}

// TestCoverageRangeSeedsMatchesArenaScan pins the index-driven coverage
// contract: for every window and seed set, the k-way postings union walk
// returns exactly the arena scan's count, across merged and irregular CSR
// block layouts and both models.
func TestCoverageRangeSeedsMatchesArenaScan(t *testing.T) {
	g, err := gen.ChungLu(250, 1400, 2.1, 83, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	seedSets := [][]uint32{
		nil,
		{0},
		{17},
		{3, 3, 3}, // duplicates must not double-count
		{0, 1, 2, 3, 4},
		{5, 200, 5, 119, 200, 42}, // unsorted with duplicates
		manyNodes(60),
	}
	windows := [][2]int{
		{0, 0}, {0, 1}, {0, 2500}, {1250, 2500}, {699, 702},
		{700, 701}, {2499, 2500}, {100, 1600}, {-5, 99999}, {1800, 1700},
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := mustSampler(t, g, model)
		for _, sc := range coverageSchedules {
			col := NewCollection(s, 123, sc.workers)
			for _, target := range sc.schedule {
				col.GenerateTo(target)
			}
			mark := make([]bool, n)
			for _, seeds := range seedSets {
				for _, v := range seeds {
					mark[v] = true
				}
				for _, w := range windows {
					want := col.CoverageRange(mark, w[0], w[1])
					got := col.CoverageRangeSeeds(seeds, w[0], w[1])
					if got != want {
						t.Fatalf("%v/%s seeds=%v window=%v: postings %d, arena scan %d",
							model, sc.name, seeds, w, got, want)
					}
				}
				for _, v := range seeds {
					mark[v] = false
				}
			}
			// Whole-stream convenience must agree with Coverage.
			for _, v := range manyNodes(25) {
				mark[v] = true
			}
			if got, want := col.CoverageSeeds(manyNodes(25)), col.Coverage(mark); got != want {
				t.Fatalf("%v/%s: CoverageSeeds %d vs Coverage %d", model, sc.name, got, want)
			}
			for _, v := range manyNodes(25) {
				mark[v] = false
			}
		}
	}
}

func manyNodes(k int) []uint32 {
	out := make([]uint32, k)
	for i := range out {
		out[i] = uint32(i * 3)
	}
	return out
}

// TestPostingsRangeMatchesIndexUpto checks the windowed postings iterator
// against the gathered IndexUpto view filtered by hand, for windows that
// fall inside, on, and beyond CSR block boundaries.
func TestPostingsRangeMatchesIndexUpto(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 700, 19, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 7, 3)
	for _, target := range []int{300, 600, 1200} {
		col.GenerateTo(target)
	}
	windows := [][2]int{
		{0, 1200}, {0, 299}, {299, 301}, {300, 600}, {600, 600},
		{599, 601}, {1, 1199}, {750, 5000}, {-3, 450},
	}
	for _, w := range windows {
		for v := uint32(0); int(v) < g.NumNodes(); v += 7 {
			var want []int32
			for _, id := range col.Index(v) {
				if int(id) >= w[0] && int(id) < w[1] {
					want = append(want, id)
				}
			}
			var got []int32
			it := col.PostingsRange(v, w[0], w[1])
			for {
				run, ok := it.Next()
				if !ok {
					break
				}
				if len(run) == 0 {
					t.Fatal("iterator yielded an empty run")
				}
				got = append(got, run...)
			}
			if len(got) != len(want) {
				t.Fatalf("window=%v v=%d: iterator %d ids, filter %d", w, v, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("window=%v v=%d: posting %d differs", w, v, i)
				}
			}
		}
	}
}

// TestIndexBlockLayoutIdenticalAcrossWorkers pins the parallel CSR build
// contract at the layout level: not just the same postings, but
// bit-identical starts/ids arrays and block boundaries for 1, 2 and 8
// workers, on both a one-shot build (one large parallel block) and a
// doubling schedule (absorbing rebuilds).
func TestIndexBlockLayoutIdenticalAcrossWorkers(t *testing.T) {
	g, err := gen.ChungLu(400, 2400, 2.1, 51, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	schedules := [][]int{
		{30000},
		{4000, 8000, 16000, 30000},
	}
	for si, schedule := range schedules {
		ref := NewCollection(s, 99, 1)
		for _, target := range schedule {
			ref.GenerateTo(target)
		}
		// The layout assertion below is only meaningful if the variants
		// take the parallel path; guarantee it via the worker threshold.
		if int(ref.Items()) < 2*indexItemsPerWorker {
			t.Fatalf("schedule %d: stream too small (%d items) to exercise the parallel build", si, ref.Items())
		}
		for _, workers := range []int{2, 8} {
			col := NewCollection(s, 99, workers)
			for _, target := range schedule {
				col.GenerateTo(target)
			}
			if len(col.blocks) != len(ref.blocks) {
				t.Fatalf("schedule %d w=%d: %d blocks vs %d", si, workers, len(col.blocks), len(ref.blocks))
			}
			for bi := range ref.blocks {
				rb, cb := &ref.blocks[bi], &col.blocks[bi]
				if rb.from != cb.from || rb.to != cb.to {
					t.Fatalf("schedule %d w=%d block %d: range [%d,%d) vs [%d,%d)",
						si, workers, bi, cb.from, cb.to, rb.from, rb.to)
				}
				if len(rb.starts) != len(cb.starts) || len(rb.ids) != len(cb.ids) {
					t.Fatalf("schedule %d w=%d block %d: array sizes differ", si, workers, bi)
				}
				for i := range rb.starts {
					if rb.starts[i] != cb.starts[i] {
						t.Fatalf("schedule %d w=%d block %d: starts[%d] %d vs %d",
							si, workers, bi, i, cb.starts[i], rb.starts[i])
					}
				}
				for i := range rb.ids {
					if rb.ids[i] != cb.ids[i] {
						t.Fatalf("schedule %d w=%d block %d: ids[%d] %d vs %d",
							si, workers, bi, i, cb.ids[i], rb.ids[i])
					}
				}
			}
		}
	}
}
