package ris

import (
	"math"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// This file is the statistical-equivalence harness of the compiled sampling
// plans: the plan kernels consume different PRNG sequences than the
// Bernoulli oracle, so set-by-set comparison is meaningless — instead the
// harness proves the two kernels draw from the same DISTRIBUTION:
//
//   - per-edge activation frequencies (chi-square against the exact edge
//     probabilities, for the geometric, threshold and alias kernels);
//   - mean RR-set size and width agreement between kernels on a
//     weighted-cascade graph under both models;
//   - influence estimates against the exact possible-world oracle
//     (internal/diffusion.Exact) under both kernels.
//
// Structural invariants (root membership, reverse-path validity, width
// definition, worker-count determinism) are covered by ris_test.go, which
// runs under the plan kernels by default.

// forcedRootSampler returns a WRIS sampler whose root is always node 0, so
// per-edge frequencies at node 0 can be measured directly.
func forcedRootSampler(t *testing.T, g *graph.Graph, model diffusion.Model) *Sampler {
	t.Helper()
	w := make([]float64, g.NumNodes())
	w[0] = 1
	s, err := NewWeightedSampler(g, model, w)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// starGraph builds edges i→0 for i = 1..len(ws) with the given weights, so
// node 0's in-edge list has exactly those activation probabilities.
func starGraph(t *testing.T, ws []float64) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(ws))
	for i, w := range ws {
		edges[i] = graph.Edge{U: uint32(i + 1), V: 0, W: w}
	}
	g, err := graph.FromEdges(len(ws)+1, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlanClassification(t *testing.T) {
	// Weighted cascade: every in-edge of v weighs 1/d_in(v) — every node
	// must classify uniform and the plan must carry no threshold records.
	g, err := gen.ChungLu(300, 2000, 2.1, 5, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(g, diffusion.IC)
	for v, c := range p.class {
		if c != classUniform {
			t.Fatalf("WC node %d classified general", v)
		}
	}
	if len(p.gen) != 0 || p.genOff != nil {
		t.Fatal("WC plan allocated threshold records")
	}
	// Mixed weights: node 0 of the star must classify general, its
	// neighbours (in-degree 0) uniform.
	gm := starGraph(t, []float64{0.1, 0.5, 0.9})
	pm := NewPlan(gm, diffusion.IC)
	if pm.class[0] != classGeneral {
		t.Fatal("mixed-weight node classified uniform")
	}
	if got := pm.genOff[1] - pm.genOff[0]; got != 3 {
		t.Fatalf("general node has %d records, want 3", got)
	}
	for _, e := range pm.gen {
		if e.thr == 0 {
			t.Fatal("zero threshold for a positive-probability edge")
		}
	}
}

// activationCounts generates N RR sets from the forced root and counts how
// often each star leaf appears (leaves have no in-edges, so membership is
// exactly "the edge fired" under IC and "the walk stepped there" under LT).
func activationCounts(s *Sampler, n, N int) []int {
	st := s.NewState()
	var r rng.Source
	counts := make([]int, n)
	for i := 0; i < N; i++ {
		r.SeedStream(4242, uint64(i))
		buf, setLen, _ := s.AppendSample(&r, st, nil)
		for _, v := range buf[len(buf)-setLen:] {
			counts[v]++
		}
	}
	return counts
}

// chiSquareEdges returns Σ (c_i − N·p_i)² / (N·p_i·(1−p_i)) — each edge is
// an independent Bernoulli, so the statistic is ~χ² with len(ws) degrees of
// freedom.
func chiSquareEdges(counts []int, ws []float64, N int) float64 {
	var x2 float64
	for i, p := range ws {
		d := float64(counts[i+1]) - float64(N)*p
		x2 += d * d / (float64(N) * p * (1 - p))
	}
	return x2
}

func TestPlanICUniformEdgeFrequencies(t *testing.T) {
	// All weights equal ⇒ node 0 is uniform class ⇒ the geometric-skipping
	// kernel serves it. 16 edges at p = 0.15.
	const d, p, N = 16, 0.15, 300000
	ws := make([]float64, d)
	for i := range ws {
		ws[i] = p
	}
	g := starGraph(t, ws)
	s := forcedRootSampler(t, g, diffusion.IC)
	if s.Plan().class[0] != classUniform {
		t.Fatal("uniform star classified general")
	}
	counts := activationCounts(s, g.NumNodes(), N)
	// χ²(16): 1-1e-6 quantile ≈ 56.
	if x2 := chiSquareEdges(counts, ws, N); x2 > 70 {
		t.Fatalf("geometric kernel chi-square %.1f (counts %v)", x2, counts[1:])
	}
}

func TestPlanICGeneralEdgeFrequencies(t *testing.T) {
	// Distinct weights ⇒ general class ⇒ the fused threshold kernel.
	ws := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.97}
	const N = 300000
	g := starGraph(t, ws)
	s := forcedRootSampler(t, g, diffusion.IC)
	if s.Plan().class[0] != classGeneral {
		t.Fatal("mixed star classified uniform")
	}
	counts := activationCounts(s, g.NumNodes(), N)
	// χ²(8): 1-1e-6 quantile ≈ 43.
	if x2 := chiSquareEdges(counts, ws, N); x2 > 55 {
		t.Fatalf("threshold kernel chi-square %.1f (counts %v)", x2, counts[1:])
	}
}

func TestPlanLTStepFrequencies(t *testing.T) {
	// LT star with Σw = 0.85: the alias walk's first step must pick leaf i
	// with probability w_i and stop (singleton set) with probability 0.15.
	ws := []float64{0.05, 0.1, 0.15, 0.2, 0.35}
	const N = 300000
	g := starGraph(t, ws)
	s := forcedRootSampler(t, g, diffusion.LT)
	counts := activationCounts(s, g.NumNodes(), N)
	// Multinomial chi-square over the d+1 outcomes (leaves + stop).
	stopped := N
	var x2 float64
	for i, p := range ws {
		stopped -= counts[i+1]
		d := float64(counts[i+1]) - float64(N)*p
		x2 += d * d / (float64(N) * p)
	}
	pStop := 0.15
	dd := float64(stopped) - float64(N)*pStop
	x2 += dd * dd / (float64(N) * pStop)
	// χ²(5): 1-1e-6 quantile ≈ 35.
	if x2 > 45 {
		t.Fatalf("alias kernel chi-square %.1f (counts %v, stopped %d)", x2, counts[1:], stopped)
	}
}

// kernelMoments generates N sets under the given kernel and returns the
// mean and variance of the set sizes plus the mean width.
func kernelMoments(s *Sampler, seed uint64, N int) (meanSize, varSize, meanWidth float64) {
	st := s.NewState()
	var r rng.Source
	var buf []uint32
	var sum, sumSq, wsum float64
	for i := 0; i < N; i++ {
		r.SeedStream(seed, uint64(i))
		var setLen int
		var w int64
		buf, setLen, w = s.AppendSample(&r, st, buf[:0])
		sz := float64(setLen)
		sum += sz
		sumSq += sz * sz
		wsum += float64(w)
	}
	meanSize = sum / float64(N)
	varSize = sumSq/float64(N) - meanSize*meanSize
	meanWidth = wsum / float64(N)
	return
}

func TestPlanVsOracleSizeWidthAgreement(t *testing.T) {
	g, err := gen.ChungLu(2000, 16000, 2.1, 17, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	const N = 60000
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s, err := NewSampler(g, model)
		if err != nil {
			t.Fatal(err)
		}
		pm, pv, pw := kernelMoments(s, 1009, N)
		om, ov, ow := kernelMoments(s.WithKernel(KernelOracle), 2017, N)
		// Two-sample z-test on the means; the shared variance estimate is
		// conservative enough at N = 60k per kernel.
		se := math.Sqrt((pv + ov) / N)
		if d := math.Abs(pm - om); d > 6*se+1e-9 {
			t.Fatalf("%v: mean size plan %.4f vs oracle %.4f (6se=%.4f)", model, pm, om, 6*se)
		}
		// Width is a size-correlated heavy-tail; a relative tolerance keeps
		// the check meaningful without modelling its variance.
		if d := math.Abs(pw - ow); d > 0.05*math.Max(pw, ow)+1 {
			t.Fatalf("%v: mean width plan %.2f vs oracle %.2f", model, pw, ow)
		}
	}
}

// exactCheck estimates I(S) from N plan- or oracle-kernel RR sets and
// compares against the exact possible-world influence.
func exactCheck(t *testing.T, g *graph.Graph, model diffusion.Model, k Kernel, seeds []uint32) {
	t.Helper()
	exact, err := diffusion.Exact(g, model, seeds)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(g, model)
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithKernel(k)
	col := NewCollection(s, 97, 2)
	const N = 400000
	col.Generate(N)
	mark := make([]bool, g.NumNodes())
	for _, v := range seeds {
		mark[v] = true
	}
	cov := col.Coverage(mark)
	est := s.Scale() * float64(cov) / float64(N)
	p := float64(cov) / float64(N)
	se := s.Scale() * math.Sqrt(p*(1-p)/float64(N))
	if math.Abs(est-exact) > 5*se+0.01 {
		t.Fatalf("%v/%v: estimate %.4f vs exact %.4f (se %.4f)", model, k, est, exact, se)
	}
}

func TestPlanInfluenceMatchesExactOracle(t *testing.T) {
	gIC := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, W: 0.6}, {U: 0, V: 2, W: 0.3}, {U: 1, V: 3, W: 0.5},
		{U: 2, V: 3, W: 0.7}, {U: 3, V: 4, W: 0.4},
	})
	gLT := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, W: 0.5}, {U: 2, V: 1, W: 0.3}, {U: 1, V: 3, W: 0.6},
		{U: 0, V: 3, W: 0.2}, {U: 3, V: 4, W: 0.8},
	})
	for _, k := range []Kernel{KernelPlan, KernelOracle} {
		exactCheck(t, gIC, diffusion.IC, k, []uint32{0})
		exactCheck(t, gIC, diffusion.IC, k, []uint32{1, 2})
		exactCheck(t, gLT, diffusion.LT, k, []uint32{0})
		exactCheck(t, gLT, diffusion.LT, k, []uint32{0, 2})
	}
}

func TestPlanCertainEdges(t *testing.T) {
	// Weight-1 edges (d_in = 1 under weighted cascade) must ALWAYS fire
	// under both kernels: the chain 3→2→1→0 with w=1 makes every RR set
	// from root 0 the full chain.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 3, V: 2, W: 1}, {U: 2, V: 1, W: 1}, {U: 1, V: 0, W: 1},
	})
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		for _, k := range []Kernel{KernelPlan, KernelOracle} {
			s := forcedRootSampler(t, g, model).WithKernel(k)
			st := s.NewState()
			var r rng.Source
			for i := 0; i < 2000; i++ {
				r.SeedStream(7, uint64(i))
				buf, setLen, _ := s.AppendSample(&r, st, nil)
				if setLen != 4 {
					t.Fatalf("%v/%v: certain chain gave set %v", model, k, buf)
				}
			}
		}
	}
}

func TestPlanZeroWeightEdges(t *testing.T) {
	// Weight-0 edges must NEVER fire under either kernel (uniform class
	// with p = 0 exercises the Geometric MaxSkip sentinel).
	g := mustGraph(t, 3, []graph.Edge{{U: 1, V: 0, W: 0}, {U: 2, V: 0, W: 0}})
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		for _, k := range []Kernel{KernelPlan, KernelOracle} {
			s := forcedRootSampler(t, g, model).WithKernel(k)
			st := s.NewState()
			var r rng.Source
			for i := 0; i < 2000; i++ {
				r.SeedStream(11, uint64(i))
				_, setLen, _ := s.AppendSample(&r, st, nil)
				if setLen != 1 {
					t.Fatalf("%v/%v: zero-weight edge fired", model, k)
				}
			}
		}
	}
}

func TestWithKernelSharesPlan(t *testing.T) {
	g := starGraph(t, []float64{0.5})
	s, err := NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	o := s.WithKernel(KernelOracle)
	if o == s || o.Kernel() != KernelOracle || s.Kernel() != KernelPlan {
		t.Fatal("WithKernel must copy, not mutate")
	}
	if o.Plan() != s.Plan() {
		t.Fatal("WithKernel must share the compiled plan")
	}
	if s.WithKernel(KernelPlan) != s {
		t.Fatal("WithKernel with the same kernel should return the receiver")
	}
}
