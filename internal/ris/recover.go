package ris

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"

	"stopandstare/internal/graph"
)

// This file is the read half of the durability subsystem: ris.Recover maps a
// committed snapshot read-only, verifies every block's CRC32C, and rebuilds
// a Store whose arena extents and CSR index blocks alias the mapping — the
// same fault-in path spilled blocks use, so a recovered store starts near
// zero-resident and serves bit-identical answers immediately.
//
// Corruption degrades gracefully instead of failing the store: a bad arena
// or table block discards the stream suffix from the first unrecoverable RR
// set onward (across every shard — the global stream must stay a prefix),
// and the discarded suffix is resampled deterministically from the (seed, i)
// streams, reproducing it bit-identically. A bad CSR index block alone loses
// nothing: the index is derived data, rebuilt from the arena.

// RecoveryInfo reports what Recover restored.
type RecoveryInfo struct {
	// Sets is the store's RR-set count after recovery (discarded suffix
	// resampling included).
	Sets int
	// Discarded is the number of persisted RR sets dropped because a block
	// failed validation; they are resampled deterministically.
	Discarded int
	// Resampled is the number of discarded sets regenerated during Recover
	// (equal to Discarded unless a remote worker was unreachable, in which
	// case the remainder is topped up by the first query).
	Resampled int
	// RebuiltIndexBlocks counts CSR index blocks rebuilt from the arena.
	RebuiltIndexBlocks int
	// SnapshotBytes is the mapped snapshot file's size.
	SnapshotBytes int64
	// Generation is the recovered snapshot's generation number.
	Generation uint64
}

// snapFile is an open, read-only mapped snapshot. The store recovered from
// it holds a reference so the mapping outlives every aliasing slice; the
// finalizer releases it when the store becomes unreachable (stores have no
// Close — the SpillFile discipline).
type snapFile struct {
	f    *os.File
	path string
	size int64
	m    *spillMapping
}

func openSnapFile(path string) (*snapFile, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// The committed manifest references a file that is not there:
			// the manifest itself is corrupt, not merely absent.
			return nil, &SnapshotCorruptError{Path: path, Reason: "referenced snapshot missing"}
		}
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	if size < snapHdrSize {
		f.Close()
		return nil, &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf("file is %d bytes", size)}
	}
	m, err := mapSpillBlock(f, 0, size)
	if err != nil {
		f.Close()
		return nil, &SnapshotCorruptError{Path: path, Reason: err.Error()}
	}
	sf := &snapFile{f: f, path: path, size: size, m: m}
	runtime.SetFinalizer(sf, func(sf *snapFile) { sf.close() })
	return sf, nil
}

func (sf *snapFile) close() {
	runtime.SetFinalizer(sf, nil)
	if sf.m != nil {
		sf.m.release()
		sf.m = nil
	}
	if sf.f != nil {
		sf.f.Close()
		sf.f = nil
	}
}

// blockPayload validates the block expected at off — header structure,
// expected kind and payload length, CRC32C — and returns its payload
// aliasing the mapping, or nil if anything fails. Recovery treats nil as
// "this unit is gone", never as a store-level error.
func (sf *snapFile) blockPayload(off int64, kind byte, plen int64) []byte {
	if off < 0 || plen < 0 || off+snapHdrSize > sf.size || plen > sf.size-snapHdrSize-off {
		return nil
	}
	hdr := sf.m.data[off : off+snapHdrSize]
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic || hdr[4] != kind {
		return nil
	}
	if int64(binary.LittleEndian.Uint64(hdr[8:])) != plen {
		return nil
	}
	payload := sf.m.data[off+snapHdrSize : off+snapHdrSize+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[16:]) {
		return nil
	}
	return payload
}

// snapAdvance returns the offset of the block after one at off with the
// given payload length.
func snapAdvance(off, plen int64) int64 {
	return off + snapHdrSize + snapAlignUp(plen)
}

// Decoded meta-block mirror of the encode side.

type snapExtMeta struct {
	setFrom, setTo int
	items          int64
}

type snapBlkMeta struct {
	lfrom, lto    int
	nStarts, nIds int
}

type snapSegMeta struct {
	nsets   int
	width   int64
	hasGids bool
	exts    []snapExtMeta
	blks    []snapBlkMeta
}

type snapMetaD struct {
	seed     uint64
	model    uint8
	kernel   uint8
	weighted bool
	whash    uint64
	scale    float64
	n        int
	length   int
	shards   int
	remote   bool
	keys     []string
	nonces   []uint64
	epochs   []genEpoch
	segs     []snapSegMeta
}

func decodeSegMeta(r *rbuf) snapSegMeta {
	sm := snapSegMeta{
		nsets:   int(r.u64()),
		width:   r.i64(),
		hasGids: r.u8() != 0,
	}
	ne := int(r.u32())
	for i := 0; i < ne && r.err == nil; i++ {
		sm.exts = append(sm.exts, snapExtMeta{
			setFrom: int(r.u64()), setTo: int(r.u64()), items: r.i64(),
		})
	}
	nb := int(r.u32())
	for i := 0; i < nb && r.err == nil; i++ {
		sm.blks = append(sm.blks, snapBlkMeta{
			lfrom: int(r.u64()), lto: int(r.u64()),
			nStarts: int(r.u64()), nIds: int(r.u64()),
		})
	}
	return sm
}

// validateSegMeta enforces the structural invariants the writer guarantees:
// extents tile [0, nsets) exactly and index blocks tile a prefix [0, X)
// contiguously with full-size starts tables. Violations mean the meta block
// itself cannot be trusted (its CRC already passed, so this is a format
// error, not bit rot).
func validateSegMeta(sm *snapSegMeta, n int) error {
	if sm.nsets < 0 || sm.width < 0 {
		return fmt.Errorf("segment holds %d sets, width %d", sm.nsets, sm.width)
	}
	prev := 0
	for _, x := range sm.exts {
		if x.setFrom != prev || x.setTo <= x.setFrom || x.items < 0 {
			return fmt.Errorf("extent [%d,%d) after %d", x.setFrom, x.setTo, prev)
		}
		prev = x.setTo
	}
	if prev != sm.nsets {
		return fmt.Errorf("extents cover %d of %d sets", prev, sm.nsets)
	}
	prev = 0
	for _, b := range sm.blks {
		if b.lfrom != prev || b.lto <= b.lfrom || b.lto > sm.nsets || b.nStarts != n+1 || b.nIds < 0 {
			return fmt.Errorf("index block [%d,%d) after %d (%d starts)", b.lfrom, b.lto, prev, b.nStarts)
		}
		prev = b.lto
	}
	return nil
}

func decodeStoreMeta(payload []byte, path string) (*snapMetaD, error) {
	corrupt := func(f string, a ...any) error {
		return &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf(f, a...)}
	}
	r := rbuf{b: payload}
	if v := r.u32(); v != snapVersion {
		return nil, corrupt("meta version %d, want %d", v, snapVersion)
	}
	md := &snapMetaD{
		seed:   r.u64(),
		model:  r.u8(),
		kernel: r.u8(),
	}
	md.weighted = r.u8() != 0
	md.whash = r.u64()
	md.scale = r.f64()
	md.n = int(r.u64())
	md.length = int(r.u64())
	md.shards = int(r.u32())
	md.remote = r.u8() != 0
	if md.n < 0 || md.length < 0 || md.shards < 0 || md.shards > 1<<20 {
		return nil, corrupt("meta n=%d length=%d shards=%d", md.n, md.length, md.shards)
	}
	if md.remote {
		for i := 0; i < md.shards && r.err == nil; i++ {
			md.keys = append(md.keys, r.str())
			md.nonces = append(md.nonces, r.u64())
		}
	}
	S := md.shards
	nep := int(r.u32())
	for i := 0; i < nep && r.err == nil; i++ {
		e := genEpoch{
			from:   int(r.u64()),
			to:     int(r.u64()),
			bounds: make([]int, S+1),
			base:   make([]int, S),
		}
		for s := 0; s <= S; s++ {
			e.bounds[s] = int(r.u64())
		}
		for s := 0; s < S; s++ {
			e.base[s] = int(r.u64())
		}
		md.epochs = append(md.epochs, e)
	}
	nsegs := int(r.u32())
	want := 1
	if md.shards > 0 {
		want = md.shards
	}
	for i := 0; i < nsegs && r.err == nil; i++ {
		md.segs = append(md.segs, decodeSegMeta(&r))
	}
	if r.err != nil {
		return nil, corrupt("meta payload: %v", r.err)
	}
	if nsegs != want {
		return nil, corrupt("meta declares %d segments for %d shards", nsegs, md.shards)
	}
	for i := range md.segs {
		sm := &md.segs[i]
		if sm.hasGids != (md.shards > 0) {
			return nil, corrupt("segment %d gids flag %v under %d shards", i, sm.hasGids, md.shards)
		}
		if err := validateSegMeta(sm, md.n); err != nil {
			return nil, corrupt("segment %d: %v", i, err)
		}
	}
	// Epoch sanity: contiguous global ranges, monotone bounds.
	prev := 0
	for i := range md.epochs {
		e := &md.epochs[i]
		if e.from != prev || e.to <= e.from || e.bounds[0] != e.from || e.bounds[S] != e.to {
			return nil, corrupt("epoch %d spans [%d,%d) after %d", i, e.from, e.to, prev)
		}
		for s := 0; s < S; s++ {
			if e.bounds[s+1] < e.bounds[s] || e.base[s] < 0 {
				return nil, corrupt("epoch %d bounds not monotone", i)
			}
		}
		prev = e.to
	}
	if md.shards > 0 && prev != md.length {
		return nil, corrupt("epochs cover %d of %d sets", prev, md.length)
	}
	return md, nil
}

// validateMeta matches the snapshot's identity against the store being
// recovered; any difference is a SnapshotMismatchError (callers start cold).
func validateMeta(md *snapMetaD, s *Sampler, seed uint64, opt StoreOptions) error {
	mism := func(f string, a ...any) error {
		return &SnapshotMismatchError{Reason: fmt.Sprintf(f, a...)}
	}
	if md.n != s.g.NumNodes() {
		return mism("graph has %d nodes, snapshot %d", s.g.NumNodes(), md.n)
	}
	if md.seed != seed {
		return mism("seed %d, snapshot %d", seed, md.seed)
	}
	if md.model != uint8(s.model) || md.kernel != uint8(s.kernel) {
		return mism("model/kernel %d/%d, snapshot %d/%d", s.model, s.kernel, md.model, md.kernel)
	}
	if md.weighted != (s.root != nil) || md.whash != weightsHash(s.weights) {
		return mism("weight vector differs")
	}
	switch {
	case len(opt.RemoteWorkers) > 0:
		if !md.remote || md.shards != len(opt.RemoteWorkers) {
			return mism("store has %d remote shards, snapshot %d (remote=%v)", len(opt.RemoteWorkers), md.shards, md.remote)
		}
	case opt.Shards < 1:
		if md.shards != 0 {
			return mism("store is flat, snapshot has %d shards", md.shards)
		}
	default:
		if md.remote || md.shards != opt.Shards {
			return mism("store has %d shards, snapshot %d (remote=%v)", opt.Shards, md.shards, md.remote)
		}
	}
	return nil
}

// segRestore is the per-segment outcome of the block walk: heap copies of
// the small tables, mapped payloads for arena and index blocks, and badFrom,
// the first local set that cannot be restored (nsets when clean).
type segRestore struct {
	sm      *snapSegMeta
	offsets []int64  // heap copy; nil ⇒ badFrom == 0
	gids    []int32  // heap copy; nil unless sm.hasGids and the block is good
	arenas  [][]byte // one payload per extent entry; nil = unrecoverable
	iblocks [][]byte // validated prefix of the index block payloads
	badFrom int
}

// readSegBlocks walks one segment's blocks starting at off, validating each
// against the meta descriptor, and returns the restore plan plus the offset
// of the next segment's blocks. Block positions depend only on the meta, so
// one corrupt payload never desynchronizes the walk.
func readSegBlocks(sf *snapFile, sm *snapSegMeta, off int64) (segRestore, int64) {
	r := segRestore{sm: sm, badFrom: sm.nsets}
	plen := int64(sm.nsets+1) * 8
	if p := sf.blockPayload(off, snapKindOffsets, plen); p != nil {
		offs := append([]int64(nil), castSnapI64(p)...)
		ok := offs[0] == 0
		for i := 1; i < len(offs) && ok; i++ {
			ok = offs[i] >= offs[i-1]
		}
		if ok {
			r.offsets = offs
		}
	}
	if r.offsets == nil {
		r.badFrom = 0
	}
	off = snapAdvance(off, plen)
	if sm.hasGids {
		plen = int64(sm.nsets) * 4
		if p := sf.blockPayload(off, snapKindGids, plen); p != nil {
			gids := append([]int32(nil), castSpillI32(p)...)
			ok := true
			for i := 1; i < len(gids) && ok; i++ {
				ok = gids[i] > gids[i-1]
			}
			if ok {
				r.gids = gids
			}
		}
		if r.gids == nil {
			r.badFrom = 0
		}
		off = snapAdvance(off, plen)
	}
	for _, x := range sm.exts {
		plen = x.items * 4
		p := sf.blockPayload(off, snapKindArena, plen)
		off = snapAdvance(off, plen)
		if p != nil && r.offsets != nil && r.offsets[x.setTo]-r.offsets[x.setFrom] != x.items {
			p = nil // meta and offset table disagree; the extent is unusable
		}
		if p == nil && x.setFrom < r.badFrom {
			r.badFrom = x.setFrom
		}
		r.arenas = append(r.arenas, p)
	}
	good := true
	for _, b := range sm.blks {
		plen = int64(b.nStarts+b.nIds) * 4
		p := sf.blockPayload(off, snapKindIndex, plen)
		off = snapAdvance(off, plen)
		if good && p != nil {
			all := castSpillI32(p)
			if int(all[b.nStarts-1]) == b.nIds {
				r.iblocks = append(r.iblocks, p)
				continue
			}
		}
		good = false
	}
	return r, off
}

// gidOfLocalZero returns the global id of shard s's first local set, from
// the epoch table (the first epoch that assigned the shard any sets).
func gidOfLocalZero(epochs []genEpoch, s int) int {
	for i := range epochs {
		e := &epochs[i]
		if e.bounds[s+1] > e.bounds[s] {
			return e.bounds[s]
		}
	}
	return int(^uint(0) >> 1) // shard never got sets; nothing to discard
}

// restoreSegment populates sg from the restore plan, truncated to its first
// c local sets. Extents and index blocks alias the snapshot mapping (their
// mapped/spilled fields carry it), so they are excluded from resident
// accounting and from spill eviction exactly like spilled units; the tail
// restarts empty, so growth appends normally. keepIndex is false for remote
// mirror segments (their CSR blocks live worker-side). Returns the number of
// index blocks rebuilt from the arena.
func restoreSegment(sg *segment, r *segRestore, c int, sf *snapFile, g *graph.Graph, keepIndex bool) int {
	if c <= 0 {
		return 0
	}
	sg.offsets = r.offsets[:c+1]
	if r.sm.hasGids {
		sg.gids = r.gids[:c]
	}
	for ei, x := range r.sm.exts {
		if x.setFrom >= c {
			break
		}
		setTo := x.setTo
		if setTo > c {
			setTo = c
		}
		sg.exts = append(sg.exts, arenaExtent{
			setFrom: x.setFrom, setTo: setTo,
			base: sg.offsets[x.setFrom], end: sg.offsets[setTo],
			data: castSpillU32(r.arenas[ei]), mapped: sf.m,
		})
	}
	sg.tailSet = c
	sg.tailBase = sg.offsets[c]
	sg.buf = nil
	if c == r.sm.nsets {
		sg.width = r.sm.width
	} else {
		// The suffix was discarded; per-set widths are not stored, so the
		// kept prefix's width is recomputed from the arena (corruption path
		// only — a clean recovery never walks the sets).
		var w int64
		for i := 0; i < c; i++ {
			for _, v := range sg.setAt(i) {
				w += int64(g.InDegree(v))
			}
		}
		sg.width = w
	}
	if !keepIndex {
		return 0
	}
	lcov := 0
	for bi, p := range r.iblocks {
		bm := &r.sm.blks[bi]
		if bm.lto > c {
			break
		}
		all := castSpillI32(p)
		starts := all[:bm.nStarts:bm.nStarts]
		ids := all[bm.nStarts : bm.nStarts+bm.nIds]
		sg.blocks = append(sg.blocks, csrBlock{
			from: sg.gid(bm.lfrom), to: sg.gid(bm.lto-1) + 1,
			lfrom: bm.lfrom, lto: bm.lto,
			starts: starts, ids: ids, spilled: sf.m,
		})
		lcov = bm.lto
	}
	if lcov < c {
		rebuildIndexBlock(sg, lcov, c)
		return 1
	}
	return 0
}

// rebuildIndexBlock builds one CSR block over local sets [from, to) reading
// through setAt (the sets live in mapped extents, outside the tail the
// normal build path slices). Only the recovery path uses it: dropped or
// truncated index blocks are derived data, reconstructed from the arena.
func rebuildIndexBlock(sg *segment, from, to int) {
	n := sg.n
	starts := make([]int32, n+1)
	for i := from; i < to; i++ {
		for _, v := range sg.setAt(i) {
			starts[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		starts[v+1] += starts[v]
	}
	ids := make([]int32, int(sg.offsets[to]-sg.offsets[from]))
	cursor := make([]int32, n)
	copy(cursor, starts[:n])
	for i := from; i < to; i++ {
		id := int32(sg.gid(i))
		for _, v := range sg.setAt(i) {
			ids[cursor[v]] = id
			cursor[v]++
		}
	}
	sg.blocks = append(sg.blocks, csrBlock{
		from: sg.gid(from), to: sg.gid(to-1) + 1,
		lfrom: from, lto: to,
		starts: starts, ids: ids,
	})
}

// Recover rebuilds the Store described by (s, seed, opt) from the committed
// snapshot in dir. On success the returned store serves answers
// bit-identical to the persisted one: RR set i is a pure function of
// (kernel, seed, i), so even a corrupt-suffix discard is repaired exactly by
// deterministic resampling (performed here; for remote stores an unreachable
// worker defers the top-up to the first query).
//
// Errors mean nothing was recovered and the caller should start cold:
// ErrNoSnapshot (empty dir — the normal first boot), *SnapshotMismatchError
// (snapshot belongs to a different store), *SnapshotCorruptError (manifest
// or meta unusable).
func Recover(s *Sampler, seed uint64, opt StoreOptions, dir string) (Store, *RecoveryInfo, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, man.Snapshot)
	sf, err := openSnapFile(path)
	if err != nil {
		return nil, nil, err
	}
	md, off, err := readStoreMeta(sf)
	if err != nil {
		sf.close()
		return nil, nil, err
	}
	if err := validateMeta(md, s, seed, opt); err != nil {
		sf.close()
		return nil, nil, err
	}

	restores := make([]segRestore, len(md.segs))
	for i := range md.segs {
		restores[i], off = readSegBlocks(sf, &md.segs[i], off)
	}

	// Global cutoff: the stream must stay a prefix of (seed, i), so the
	// first unrecoverable RR set anywhere truncates every shard to the sets
	// below its global id.
	cutoff := md.length
	for si := range restores {
		r := &restores[si]
		if r.badFrom >= r.sm.nsets {
			continue
		}
		var g int
		switch {
		case md.shards == 0:
			g = r.badFrom
		case r.gids != nil:
			g = int(r.gids[r.badFrom])
		default:
			g = gidOfLocalZero(md.epochs, si)
		}
		if g < cutoff {
			cutoff = g
		}
	}

	epochs := md.epochs
	if cutoff < md.length && md.shards > 0 {
		kept := make([]genEpoch, 0, len(epochs))
		for i := range epochs {
			e := epochs[i]
			if e.to <= cutoff {
				kept = append(kept, e)
				continue
			}
			if e.from >= cutoff {
				break
			}
			e.to = cutoff
			e.bounds = append([]int(nil), e.bounds...)
			for s := range e.bounds {
				if e.bounds[s] > cutoff {
					e.bounds[s] = cutoff
				}
			}
			kept = append(kept, e)
			break
		}
		epochs = kept
	}

	// Per-segment kept-set counts under the cutoff.
	cs := make([]int, len(md.segs))
	if md.shards == 0 {
		cs[0] = cutoff
	} else {
		for i := range epochs {
			e := &epochs[i]
			for s := range cs {
				cs[s] += e.bounds[s+1] - e.bounds[s]
			}
		}
	}

	st := NewStore(s, seed, opt)
	info := &RecoveryInfo{
		Discarded:     md.length - cutoff,
		SnapshotBytes: sf.size,
		Generation:    man.Generation,
	}
	switch c := st.(type) {
	case *Collection:
		info.RebuiltIndexBlocks += restoreSegment(&c.segment, &restores[0], cs[0], sf, s.g, true)
		c.snap = sf
	case *ShardedCollection:
		for i := range c.segs {
			info.RebuiltIndexBlocks += restoreSegment(c.segs[i], &restores[i], cs[i], sf, s.g, c.remotes == nil)
		}
		c.epochs = epochs
		c.length = cutoff
		c.snap = sf
		for i, rs := range c.remotes {
			rs.key = md.keys[i]
			rs.nonce = md.nonces[i]
		}
	}

	// Resample the discarded suffix deterministically. A remote store may be
	// unable to reach its workers yet; that is not a recovery failure — the
	// store stays at the cutoff and the first query tops it up.
	if cutoff < md.length {
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(*ShardError); !ok {
						panic(p)
					}
				}
			}()
			st.GenerateTo(md.length)
		}()
	}
	info.Sets = st.Len()
	info.Resampled = info.Sets - cutoff
	return st, info, nil
}

// readStoreMeta validates and decodes the leading meta block, returning the
// decoded meta and the offset of the first data block.
func readStoreMeta(sf *snapFile) (*snapMetaD, int64, error) {
	hdr := sf.m.data[:snapHdrSize]
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic || hdr[4] != snapKindMeta {
		return nil, 0, &SnapshotCorruptError{Path: sf.path, Reason: "bad meta block header"}
	}
	plen := int64(binary.LittleEndian.Uint64(hdr[8:]))
	payload := sf.blockPayload(0, snapKindMeta, plen)
	if payload == nil {
		return nil, 0, &SnapshotCorruptError{Path: sf.path, Reason: "meta block failed validation"}
	}
	md, err := decodeStoreMeta(payload, sf.path)
	if err != nil {
		return nil, 0, err
	}
	return md, snapAdvance(0, plen), nil
}
