// Durability of the remote tier: coordinator snapshots persist shard keys
// and nonces, workers snapshot their resident shard states, and any mix of
// restarts — worker with snapshot, worker behind the coordinator, worker
// with nothing — converges back to bit-identical observables by replaying
// at most the missing suffix.
package ris_test

import (
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

// snapCluster is a remoteCluster variant whose workers keep per-address
// state directories across restarts.
type snapCluster struct {
	g      *graph.Graph
	dirs   map[string]string
	mu     sync.Mutex
	budget map[string]int64
	srvs   map[string]*ris.ShardServer
}

func newSnapCluster(t *testing.T, g *graph.Graph, addrs ...string) *snapCluster {
	c := &snapCluster{
		g: g, dirs: make(map[string]string),
		budget: make(map[string]int64), srvs: make(map[string]*ris.ShardServer),
	}
	for _, a := range addrs {
		c.dirs[a] = t.TempDir()
		c.srvs[a] = ris.NewShardServer(g, ris.ShardServerOptions{SamplingWorkers: 2, StateDir: c.dirs[a]})
	}
	return c
}

func (c *snapCluster) dial(addr string) (net.Conn, error) {
	c.mu.Lock()
	srv := c.srvs[addr]
	c.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("worker %s down", addr)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	return client, nil
}

// persistAll snapshots every worker's shard states.
func (c *snapCluster) persistAll(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for a, srv := range c.srvs {
		if _, err := srv.Persist(); err != nil {
			t.Fatalf("worker %s persist: %v", a, err)
		}
	}
}

// restart kills addr's process and starts a new one over the same state
// directory; withState=false wipes the directory first (disk lost too).
func (c *snapCluster) restart(t *testing.T, addr string, withState bool) *ris.ShardServer {
	t.Helper()
	c.mu.Lock()
	old := c.srvs[addr]
	dir := c.dirs[addr]
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if !withState {
		dir = t.TempDir()
		c.mu.Lock()
		c.dirs[addr] = dir
		c.mu.Unlock()
	}
	srv := ris.NewShardServer(c.g, ris.ShardServerOptions{SamplingWorkers: 2, StateDir: dir})
	c.mu.Lock()
	c.srvs[addr] = srv
	c.mu.Unlock()
	return srv
}

func snapClusterGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(120, 700, 2.1, 5, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWorkerSnapshotRoundTrip(t *testing.T) {
	g := snapClusterGraph(t)
	s := mustRemoteSampler(t, g)
	cluster := newSnapCluster(t, g, "w0", "w1")
	opt := ris.StoreOptions{
		Workers: 2, Shards: 4, ShardWorkers: 2,
		RemoteWorkers: []string{"w0", "w1"}, RemoteDial: cluster.dial,
	}
	ref := ris.NewStore(s, 42, ris.StoreOptions{Workers: 2})

	st := ris.NewStore(s, 42, opt)
	for _, c := range []int{1, 3, 40, 2, 90, 17} {
		st.Generate(c)
		ref.Generate(c)
	}
	coordDir := t.TempDir()
	if _, err := st.(ris.PersistentStore).Persist(coordDir); err != nil {
		t.Fatal(err)
	}
	cluster.persistAll(t)

	// Full restart of both worker processes over their state dirs: every
	// shard state comes back from the worker snapshot.
	// Remote stores run one shard per worker, so each worker restores
	// exactly its one shard state.
	for _, a := range []string{"w0", "w1"} {
		srv := cluster.restart(t, a, true)
		if srv.RecoveredShards() != 1 {
			t.Fatalf("worker %s recovered %d shards, want 1", a, srv.RecoveredShards())
		}
	}
	rec, rinfo, err := ris.Recover(s, 42, opt, coordDir)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Discarded != 0 || rinfo.Sets != ref.Len() {
		t.Fatalf("recovery info %+v, want clean %d sets", rinfo, ref.Len())
	}
	remoteObservables(t, "recovered", ref, rec)

	// Growth continues across the recovered coordinator and workers.
	ref.Generate(60)
	rec.Generate(60)
	remoteObservables(t, "regrown", ref, rec)

	// Worker behind the coordinator: w0 restarts from its (now stale)
	// snapshot while the coordinator persisted after more growth. The
	// coordinator must replay only the missing suffix onto w0's prefix.
	if _, err := rec.(ris.PersistentStore).Persist(coordDir); err != nil {
		t.Fatal(err)
	}
	cluster.restart(t, "w0", true)
	rec2, _, err := ris.Recover(s, 42, opt, coordDir)
	if err != nil {
		t.Fatal(err)
	}
	remoteObservables(t, "worker-behind", ref, rec2)

	// Worker lost everything — process and disk: deterministic replay
	// rebuilds the whole shard from the persisted spec.
	if srv := cluster.restart(t, "w1", false); srv.RecoveredShards() != 0 {
		t.Fatalf("stateless restart recovered %d shards", srv.RecoveredShards())
	}
	rec3, _, err := ris.Recover(s, 42, opt, coordDir)
	if err != nil {
		t.Fatal(err)
	}
	remoteObservables(t, "worker-wiped", ref, rec3)
}

// remoteObservables compares the observables the remote store serves:
// length, width, coverage over ranges, and postings for every node.
func remoteObservables(t *testing.T, ctx string, ref, got ris.Store) {
	t.Helper()
	if got.Len() != ref.Len() || got.Items() != ref.Items() || got.Width() != ref.Width() {
		t.Fatalf("%s: len/items/width (%d,%d,%d) vs (%d,%d,%d)", ctx,
			got.Len(), got.Items(), got.Width(), ref.Len(), ref.Items(), ref.Width())
	}
	n := ref.NumNodes()
	gather := func(st ris.Store, v uint32) []int32 {
		var out []int32
		it := st.PostingsUpto(v, st.Len())
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, run...)
		}
		slices.Sort(out)
		return out
	}
	for v := 0; v < n; v++ {
		a, b := gather(ref, uint32(v)), gather(got, uint32(v))
		if !slices.Equal(a, b) {
			t.Fatalf("%s: node %d postings differ (%d vs %d ids)", ctx, v, len(b), len(a))
		}
	}
	mark := make([]bool, n)
	for v := 0; v < n; v += 7 {
		mark[v] = true
	}
	for _, span := range [][2]int{{0, ref.Len()}, {ref.Len() / 3, 2 * ref.Len() / 3}, {ref.Len() / 2, ref.Len()}} {
		if a, b := ref.CoverageRange(mark, span[0], span[1]), got.CoverageRange(mark, span[0], span[1]); a != b {
			t.Fatalf("%s: coverage[%d,%d) %d vs %d", ctx, span[0], span[1], b, a)
		}
	}
}

func mustRemoteSampler(t *testing.T, g *graph.Graph) *ris.Sampler {
	t.Helper()
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
