package ris

import (
	"bytes"
	"errors"
	"slices"
	"sort"
	"testing"
	"unsafe"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// spilledStore builds a store with a spill tier over the test's temp dir.
func spilledStore(t *testing.T, s *Sampler, seed uint64, shards int, budget int64) Store {
	t.Helper()
	return NewStore(s, seed, StoreOptions{
		Workers: 2, Shards: shards, ShardWorkers: 2,
		SpillBudgetBytes: budget, SpillDir: t.TempDir(),
	})
}

// TestSpillFileRoundTrip pins the block format end to end: payloads of
// irregular sizes (empty, sub-header, multi-page unaligned) come back
// bit-equal through mapPayload, block offsets stay aligned, and kind or id
// mismatches surface as ErrBadSpill.
func TestSpillFileRoundTrip(t *testing.T) {
	sf, err := newSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()

	big := make([]byte, 3*4096+7)
	for i := range big {
		big[i] = byte(i*31 + 5)
	}
	cases := [][][]byte{
		{{1, 2, 3, 4, 5}},
		{nil, {9}},                   // leading empty part
		{},                           // empty payload
		{big},                        // multi-page, unaligned length
		{{7, 7}, big[:13], nil, {1}}, // many parts concatenated
	}
	for i, parts := range cases {
		id, err := sf.append(spillKindArena, parts...)
		if err != nil {
			t.Fatalf("append case %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("append case %d: id %d", i, id)
		}
		payload, err := sf.mapPayload(id, spillKindArena)
		if err != nil {
			t.Fatalf("map case %d: %v", i, err)
		}
		want := bytes.Join(parts, nil)
		if !bytes.Equal(payload, want) {
			t.Fatalf("case %d: payload %d bytes differs from written %d bytes", i, len(payload), len(want))
		}
	}
	for i, m := range sf.blocks {
		if m.off%sf.align != 0 {
			t.Fatalf("block %d at unaligned offset %d (align %d)", i, m.off, sf.align)
		}
	}
	if _, err := sf.mapPayload(0, spillKindIndex); !errors.Is(err, ErrBadSpill) {
		t.Fatalf("kind mismatch: %v, want ErrBadSpill", err)
	}
	if _, err := sf.mapPayload(len(sf.blocks), spillKindArena); !errors.Is(err, ErrBadSpill) {
		t.Fatalf("out-of-range id: %v, want ErrBadSpill", err)
	}
}

// TestSpillFileCorruption mirrors sasg_errors_test.go for the spill tier: a
// clobbered block header and a truncated file both surface as ErrBadSpill
// from mapPayload, while untouched blocks keep mapping fine.
func TestSpillFileCorruption(t *testing.T) {
	sf, err := newSpillFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 3; i++ {
		if _, err := sf.append(spillKindIndex, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Clobber block 1's magic.
	if _, err := sf.f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, sf.blocks[1].off); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.mapPayload(1, spillKindIndex); !errors.Is(err, ErrBadSpill) {
		t.Fatalf("corrupt magic: %v, want ErrBadSpill", err)
	}

	// Truncate block 2's payload away (header survives).
	if err := sf.f.Truncate(sf.blocks[2].off + spillHdrSize); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.mapPayload(2, spillKindIndex); !errors.Is(err, ErrBadSpill) {
		t.Fatalf("truncated payload: %v, want ErrBadSpill", err)
	}

	// Block 0 is untouched.
	if got, err := sf.mapPayload(0, spillKindIndex); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("intact block after corruption elsewhere: %v", err)
	}
}

// storeObservables compares every Store observable of two stores holding
// the same stream: per-set contents, bulk scans, postings and coverage.
func storeObservables(t *testing.T, ctx string, ref, got Store) {
	t.Helper()
	if got.Len() != ref.Len() || got.Items() != ref.Items() || got.Width() != ref.Width() {
		t.Fatalf("%s: len/items/width %d/%d/%d vs %d/%d/%d", ctx,
			got.Len(), got.Items(), got.Width(), ref.Len(), ref.Items(), ref.Width())
	}
	for i := 0; i < ref.Len(); i++ {
		if !slices.Equal(got.Set(i), ref.Set(i)) {
			t.Fatalf("%s: set %d differs", ctx, i)
		}
	}
	sets := 0
	got.ForEachSet(0, got.Len(), func(i int, set []uint32) {
		if !slices.Equal(set, ref.Set(i)) {
			t.Fatalf("%s: ForEachSet %d differs", ctx, i)
		}
		sets++
	})
	if sets != ref.Len() {
		t.Fatalf("%s: ForEachSet visited %d of %d", ctx, sets, ref.Len())
	}
	collect := func(st Store, v uint32, from, upto int) []int32 {
		var ids []int32
		p := st.PostingsRange(v, from, upto)
		for {
			run, ok := p.Next()
			if !ok {
				break
			}
			ids = append(ids, run...)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	n := ref.NumNodes()
	for v := 0; v < n; v++ {
		if !slices.Equal(collect(got, uint32(v), 0, got.Len()), collect(ref, uint32(v), 0, ref.Len())) {
			t.Fatalf("%s: postings for node %d differ", ctx, v)
		}
	}
	var seeds []uint32
	for _, c := range []int{1, n / 3, n - 2} {
		if c >= 0 && c < n && !slices.Contains(seeds, uint32(c)) {
			seeds = append(seeds, uint32(c))
		}
	}
	if len(seeds) == 0 {
		seeds = []uint32{0}
	}
	mark := make([]bool, n)
	for _, s := range seeds {
		mark[s] = true
	}
	for _, r := range [][2]int{{0, ref.Len()}, {ref.Len() / 3, 2 * ref.Len() / 3}, {1, ref.Len() - 1}} {
		if g, w := got.CoverageRangeSeeds(seeds, r[0], r[1]), ref.CoverageRangeSeeds(seeds, r[0], r[1]); g != w {
			t.Fatalf("%s: CoverageRangeSeeds[%d,%d) %d vs %d", ctx, r[0], r[1], g, w)
		}
		if g, w := got.CoverageRange(mark, r[0], r[1]), ref.CoverageRange(mark, r[0], r[1]); g != w {
			t.Fatalf("%s: CoverageRange[%d,%d) %d vs %d", ctx, r[0], r[1], g, w)
		}
	}
}

// TestSpillStoreBitIdentical is the store-level round-trip property test:
// an irregular growth pattern (uneven index blocks), a full mid-life spill,
// growth on top of spilled state, and a second spill must leave every
// observable bit-identical to a never-spilled store of the same stream —
// flat and sharded.
func TestSpillStoreBitIdentical(t *testing.T) {
	g, err := gen.ChungLu(300, 2000, 2.1, 5, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	pattern := []int{1, 3, 60, 2, 250, 17, 400, 1, 128}

	for _, shards := range []int{0, 3} {
		ref := NewStore(s, 42, StoreOptions{Workers: 2, Shards: shards, ShardWorkers: 2})
		for _, c := range pattern {
			ref.Generate(c)
		}
		ref.Generate(300)

		for _, budget := range []int64{1, ref.Bytes() / 2} {
			st := spilledStore(t, s, 42, shards, budget)
			for _, c := range pattern {
				st.Generate(c)
			}
			ss := st.(SpilledStore)
			if err := ss.SpillTo(0); err != nil {
				t.Fatal(err)
			}
			st.Generate(300) // growth over spilled state
			if err := ss.SpillTo(0); err != nil {
				t.Fatal(err)
			}
			ctx := ""
			if shards == 0 {
				ctx = "flat"
			} else {
				ctx = "sharded"
			}
			stats := ss.SpillStats()
			if !stats.Enabled || stats.Blocks == 0 || stats.FileBytes == 0 {
				t.Fatalf("%s/budget=%d: spilling never happened: %+v", ctx, budget, stats)
			}
			if stats.Err != "" {
				t.Fatalf("%s/budget=%d: spill error: %s", ctx, budget, stats.Err)
			}
			storeObservables(t, ctx, ref, st)
		}
	}
}

// TestSpillEdgeCases covers the degenerate shapes: a single-node graph
// (every RR set is the one-element root set) and hand-built segments with
// zero-length sets mixed into a sealed, spilled extent.
func TestSpillEdgeCases(t *testing.T) {
	// n = 1: sets are all {0}.
	g1 := mustGraph(t, 1, nil)
	s1 := mustSampler(t, g1, diffusion.IC)
	ref := NewCollection(s1, 9, 1)
	ref.Generate(50)
	st := spilledStore(t, s1, 9, 0, 1)
	st.Generate(20)
	st.Generate(30)
	if err := st.(SpilledStore).SpillTo(0); err != nil {
		t.Fatal(err)
	}
	storeObservables(t, "n=1", ref, st)

	// Zero-length sets inside a spilled extent: setAt must return empty
	// slices exactly where the offsets say so.
	sg := newSegment(4)
	sp := newSpillState(1, t.TempDir())
	sg.spill = sp
	sg.buf = []uint32{1, 2, 3}
	sg.offsets = []int64{0, 0, 2, 2, 3}
	sg.seal()
	if err := sp.enforce(0, []*segment{sg}); err != nil {
		t.Fatal(err)
	}
	if sg.exts[0].mapped == nil {
		t.Fatal("sealed extent was not spilled")
	}
	want := [][]uint32{{}, {1, 2}, {}, {3}}
	for i, w := range want {
		if got := sg.setAt(i); !slices.Equal(got, w) {
			t.Fatalf("set %d = %v, want %v", i, got, w)
		}
	}
}

// TestSpillDiskFull injects an append failure: the typed *SpillWriteError
// is recorded and sticky, the store stops spilling but stays consistent and
// fully resident, and it keeps growing bit-identically afterwards.
func TestSpillDiskFull(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 500, 7, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	ref := NewCollection(s, 3, 2)
	ref.Generate(400)
	ref.Generate(200)

	c := spilledStore(t, s, 3, 0, 1).(*Collection)
	diskFull := errors.New("no space left on device")
	c.segment.spill.testWriteAt = func(p []byte, off int64) (int, error) { return 0, diskFull }
	c.Generate(400) // growth crosses the 1-byte budget; the spill attempt fails

	var we *SpillWriteError
	if err := c.segment.spill.err; !errors.As(err, &we) || !errors.Is(err, diskFull) {
		t.Fatalf("recorded error %v, want *SpillWriteError wrapping the injected failure", err)
	}
	stats := c.SpillStats()
	if stats.Err == "" || stats.SpilledBytes != 0 {
		t.Fatalf("after disk-full: %+v, want Err set and nothing spilled", stats)
	}
	if err := c.SpillTo(0); !errors.Is(err, diskFull) {
		t.Fatalf("SpillTo after failure = %v, want the sticky error", err)
	}
	c.Generate(200) // further growth must not retry or corrupt anything
	storeObservables(t, "disk-full", ref, c)
}

// TestSpillAccounting pins the satellite accounting fix: per-unit metadata
// records count toward residentBytes, Bytes() is conserved across a spill
// (the resident drop covers at least the bytes now spilled), and the file
// accounting includes header/padding overhead.
func TestSpillAccounting(t *testing.T) {
	// Metadata inclusion: block and extent records themselves are counted.
	sg := newSegment(0)
	sg.blocks = make([]csrBlock, 100)
	sg.exts = make([]arenaExtent, 10)
	wantMeta := 100*int64(unsafe.Sizeof(csrBlock{})) + 10*int64(unsafe.Sizeof(arenaExtent{}))
	if got := sg.residentBytes(); got < wantMeta {
		t.Fatalf("residentBytes %d misses unit metadata (want >= %d)", got, wantMeta)
	}

	g, err := gen.ChungLu(300, 2000, 2.1, 11, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	c := spilledStore(t, s, 17, 0, 1<<40).(*Collection) // huge budget: nothing spills on its own
	c.Generate(900)
	before := c.Bytes()
	if err := c.SpillTo(0); err != nil {
		t.Fatal(err)
	}
	after := c.Bytes()
	stats := c.SpillStats()
	if stats.SpilledBytes > 0 && before-after < stats.SpilledBytes {
		t.Fatalf("resident dropped %d for %d spilled bytes: spilled data still double-counted",
			before-after, stats.SpilledBytes)
	}
	if stats.Blocks == 0 || stats.FileBytes < stats.SpilledBytes+int64(stats.Blocks)*spillHdrSize {
		t.Fatalf("file accounting misses header/padding overhead: %+v", stats)
	}
	// The spilled session stats split must agree with the store.
	if spillMappedResident {
		if stats.SpilledBytes != 0 {
			t.Fatalf("fallback platform reported %d spilled bytes", stats.SpilledBytes)
		}
	} else if stats.SpilledBytes == 0 {
		t.Fatal("SpillTo(0) spilled nothing")
	}
}
