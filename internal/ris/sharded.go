package ris

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"stopandstare/internal/epoch"
)

// ShardedCollection is the id-sharded RR-set store: the global stream of RR
// sets is partitioned across N shards, each owning its own arena + CSR
// index (a segment). Every Generate call splits its contiguous global id
// range [from, to) into N contiguous sub-ranges — one per shard, mirroring
// how the flat store's CSR blocks each own a disjoint id range — and the
// shards generate their sub-ranges in parallel, each with its own worker
// pool and per-set re-seeded rng.Source streams.
//
// Because RR set i is always produced by the PRNG stream (seed, i)
// (SeedStream), the sharded store holds exactly the sample stream the flat
// Collection would: Set(i), Width, Items, every coverage count, and
// therefore every algorithm result (Seeds, Coverage, checkpoint traces) are
// bit-identical for any shard count and any worker count. That equivalence
// is what makes sharding safe to grow into a NUMA- or machine-distributed
// serving layer: the algorithms cannot observe the topology.
//
// Postings and coverage queries are answered by per-shard walks of the
// epoch-aligned CSR blocks, merged at the shard boundary: each shard's
// blocks store global ids (ascending within the shard), and the Postings
// iterator simply walks the shards in turn. Consumers of the Store
// interface are order-insensitive across runs (see Store), so no k-way
// merge is needed on the hot path.
//
// Shards may also live in other processes: with remotes non-nil, shard s is
// proxied by a RemoteShard client and segs[s] is the mirror arena its
// Generate stream fills (see RemoteShard). Set/ForEachSet/CoverageRange are
// served from the mirrors exactly as in-process; Generate, PostingsRange
// and CoverageRangeSeeds fan out to the workers. Bit-identity holds by the
// same argument as in-process sharding — set content depends only on the
// global id — and the differential harness proves it per topology.
type ShardedCollection struct {
	sampler      *Sampler
	seed         uint64
	shardWorkers int

	segs    []*segment
	remotes []*RemoteShard // nil ⇒ all shards in-process
	epochs  []genEpoch
	length  int
	spill   *spillState // shared spill tier across all segs; nil ⇒ disabled

	covMark epoch.Marks // visited ids for CoverageRangeSeeds, grows to Len()

	snap *snapFile // recovered-from snapshot; keeps its mapping alive
}

// genEpoch records how one Generate call's global id range [from, to) was
// split across shards: shard s owns global ids [bounds[s], bounds[s+1]),
// which start at local set index base[s] within its segment. The table is
// what makes Set(i) O(log epochs): binary-search the epoch, compute the
// shard by the even-split formula, then index the segment directly.
type genEpoch struct {
	from, to int
	bounds   []int // len = shards+1, ascending, bounds[0]=from, bounds[S]=to
	base     []int // len = shards; local index of bounds[s] in segs[s]
}

// NewShardedCollection creates an empty sharded store with the given shard
// count (≥ 1) and per-shard generation workers (≤ 0 selects
// max(1, GOMAXPROCS/shards), keeping the total worker budget close to the
// flat default).
func NewShardedCollection(s *Sampler, seed uint64, shards, shardWorkers int) *ShardedCollection {
	if shards < 1 {
		shards = 1
	}
	if shardWorkers <= 0 {
		shardWorkers = runtime.GOMAXPROCS(0) / shards
		if shardWorkers < 1 {
			shardWorkers = 1
		}
	}
	sc := &ShardedCollection{
		sampler:      s,
		seed:         seed,
		shardWorkers: shardWorkers,
		segs:         make([]*segment, shards),
	}
	n := s.g.NumNodes()
	for i := range sc.segs {
		sc.segs[i] = newSegment(n)
		sc.segs[i].gids = []int32{} // non-nil: local indices map through gids
	}
	return sc
}

// NewRemoteShardedCollection creates an empty remote-sharded store with one
// shard per worker address in opt.RemoteWorkers. Workers are dialed lazily
// on first use (opt.RemoteDial overrides the transport; tests inject
// net.Pipe). The per-shard mirror segments hold the arena only — CSR blocks
// live worker-side.
func NewRemoteShardedCollection(s *Sampler, seed uint64, opt StoreOptions) *ShardedCollection {
	addrs := opt.RemoteWorkers
	S := len(addrs)
	sc := &ShardedCollection{
		sampler:      s,
		seed:         seed,
		shardWorkers: 1, // mirrors never sample; parallelism lives worker-side
		segs:         make([]*segment, S),
		remotes:      make([]*RemoteShard, S),
	}
	n := s.g.NumNodes()
	dial := opt.RemoteDial
	if dial == nil {
		dial = defaultDial
	}
	timeout := opt.RemoteTimeout
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	workers := opt.ShardWorkers
	if workers < 0 {
		workers = 0 // worker-side default
	}
	spec := shardSpec{
		n:       uint32(n),
		model:   uint8(s.model),
		kernel:  uint8(s.kernel),
		seed:    seed,
		workers: uint32(workers),
		weights: s.weights,
	}
	instance := nextShardInstance()
	for i := range sc.segs {
		sc.segs[i] = newSegment(n)
		sc.segs[i].gids = []int32{}
		sc.remotes[i] = &RemoteShard{
			addr:    addrs[i],
			dial:    dial,
			timeout: timeout,
			key:     fmt.Sprintf("%x-%d/%d", instance, i, S),
			spec:    spec,
			seg:     sc.segs[i],
			nonce:   instance,
		}
	}
	return sc
}

// Sampler returns the store's sampler.
func (sc *ShardedCollection) Sampler() *Sampler { return sc.sampler }

// Remote reports whether the store's shards live in worker processes.
func (sc *ShardedCollection) Remote() bool { return sc.remotes != nil }

// Shards returns the number of shards.
func (sc *ShardedCollection) Shards() int { return len(sc.segs) }

// Len returns the number of RR sets generated so far.
func (sc *ShardedCollection) Len() int { return sc.length }

// Items returns the total number of node entries across all RR sets.
func (sc *ShardedCollection) Items() int64 {
	var items int64
	for _, sg := range sc.segs {
		items += sg.items()
	}
	return items
}

// Width returns Σ_j w(R_j) over all RR sets.
func (sc *ShardedCollection) Width() int64 {
	var w int64
	for _, sg := range sc.segs {
		w += sg.width
	}
	return w
}

// NumNodes returns the node count of the underlying graph.
func (sc *ShardedCollection) NumNodes() int { return sc.sampler.g.NumNodes() }

// Scale returns the sampler scale (n or Γ).
func (sc *ShardedCollection) Scale() float64 { return sc.sampler.scale }

// Bytes reports the RESIDENT memory held across all shards plus the epoch
// table and the sampler's compiled plan if one was built (shared, counted
// once). For a remote-sharded store this is the coordinator-resident
// footprint — the mirror arenas — not the worker-side CSR blocks, and data
// spilled to disk is likewise excluded (SpillStats reports that tier), which
// is exactly what a coordinator's byte budget (serving eviction) should
// meter.
func (sc *ShardedCollection) Bytes() int64 {
	b := int64(sc.covMark.Cap())*4 + sc.sampler.PlanBytes()
	for _, sg := range sc.segs {
		b += sg.residentBytes()
	}
	for i := range sc.epochs {
		e := &sc.epochs[i]
		b += int64(cap(e.bounds))*8 + int64(cap(e.base))*8
	}
	b += int64(cap(sc.epochs)) * 64
	return b
}

// SpillTo spills cold units across all shards until their total resident RR
// bytes are ≤ budget (0 spills everything spillable); a no-op without a
// spill tier. Counts as a mutation: callers must hold the same exclusivity
// as Generate.
func (sc *ShardedCollection) SpillTo(budget int64) error {
	if sc.spill == nil {
		return nil
	}
	return sc.spill.enforce(budget, sc.segs)
}

// SpillStats reports the spill tier's accounting (zero value when the store
// was built without a spill budget).
func (sc *ShardedCollection) SpillStats() SpillStats {
	return spillStatsOf(sc.spill, sc.segs)
}

// epochIndex returns the index of the epoch containing global id i — the
// first epoch with to > i. Shared by locate and ForEachSet so the epoch
// bisection exists once.
func (sc *ShardedCollection) epochIndex(i int) int {
	lo, hi := 0, len(sc.epochs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sc.epochs[mid].to <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// locate resolves a global set id to (segment, local index): O(log epochs)
// plus an O(1) shard-formula step. Hot bulk scans avoid it via ForEachSet;
// the solvers' covered-set walks pay it once per covered id, which is noise
// next to touching the set's members but is short-circuited entirely for
// the degenerate single-shard store (global id == local index there).
func (sc *ShardedCollection) locate(i int) (*segment, int) {
	if len(sc.segs) == 1 {
		return sc.segs[0], i
	}
	e := &sc.epochs[sc.epochIndex(i)]
	// Even-split inverse: bounds[s] = from + s·count/S (floored), so the
	// shard index is s ≈ off·S/count, corrected by at most one step.
	S := len(sc.segs)
	count := e.to - e.from
	s := int(int64(i-e.from) * int64(S) / int64(count))
	if s > S-1 {
		s = S - 1
	}
	for e.bounds[s] > i {
		s--
	}
	for e.bounds[s+1] <= i {
		s++
	}
	return sc.segs[s], e.base[s] + (i - e.bounds[s])
}

// Set returns RR set i. Identical content to the flat store's Set(i); the
// lookup costs a binary search over generate-epochs, so bulk scans should
// use ForEachSet instead.
func (sc *ShardedCollection) Set(i int) []uint32 {
	sg, local := sc.locate(i)
	return sg.setAt(local)
}

// ForEachSet calls fn for every RR set with id in [from, to), in ascending
// id order, walking each epoch's shard sub-ranges directly so the per-id
// shard lookup of Set is paid once per contiguous run instead of per set.
func (sc *ShardedCollection) ForEachSet(from, to int, fn func(i int, set []uint32)) {
	if from < 0 {
		from = 0
	}
	if to > sc.length {
		to = sc.length
	}
	if from >= to {
		return
	}
	for ei := sc.epochIndex(from); ei < len(sc.epochs) && sc.epochs[ei].from < to; ei++ {
		e := &sc.epochs[ei]
		for s := range sc.segs {
			glo, ghi := e.bounds[s], e.bounds[s+1]
			if glo < from {
				glo = from
			}
			if ghi > to {
				ghi = to
			}
			if glo >= ghi {
				continue
			}
			sg := sc.segs[s]
			local := e.base[s] + (glo - e.bounds[s])
			for g := glo; g < ghi; g++ {
				fn(g, sg.setAt(local))
				local++
			}
		}
	}
}

// GenerateTo grows the store until it holds at least target RR sets.
func (sc *ShardedCollection) GenerateTo(target int) {
	if extra := target - sc.length; extra > 0 {
		sc.Generate(extra)
	}
}

// GenerateToCtx is GenerateTo with cooperative cancellation (see
// GenerateCtx).
func (sc *ShardedCollection) GenerateToCtx(ctx context.Context, target int) error {
	if extra := target - sc.length; extra > 0 {
		return sc.GenerateCtx(ctx, extra)
	}
	return nil
}

// Generate appends count new RR sets: the global id range [Len, Len+count)
// is split into one contiguous sub-range per shard (balanced by SET COUNT
// via the even-split formula — RR-set sizes are skewed, so shard item loads
// can differ; balancing by items is impossible before sampling) and the
// shards sample their sub-ranges concurrently,
// each appending to its own arena and CSR index. Output is bit-identical
// to the flat store for any shard/worker count, because set content depends
// only on the global id.
func (sc *ShardedCollection) Generate(count int) {
	// Background never cancels, and non-cancellation failures panic as
	// *ShardError inside, so the error is structurally nil.
	sc.GenerateCtx(context.Background(), count)
}

// GenerateCtx is Generate with cooperative cancellation. In-process shards
// run a two-phase epoch — every shard SAMPLES its sub-range first (workers
// checking ctx between chunk claims), and only if all sampling completed is
// anything appended — so a canceled call mutates nothing. Remote shards
// reuse the all-or-nothing mirror rollback (segSnap): on cancellation every
// mirror is restored to its pre-call extent and ctx.Err() is returned;
// workers that did append stay ahead and the idempotent generate redelivery
// absorbs that on the next top-up.
func (sc *ShardedCollection) GenerateCtx(ctx context.Context, count int) error {
	if count <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	from := sc.length
	S := len(sc.segs)
	e := genEpoch{
		from:   from,
		to:     from + count,
		bounds: make([]int, S+1),
		base:   make([]int, S),
	}
	for s := 0; s <= S; s++ {
		e.bounds[s] = from + int(int64(count)*int64(s)/int64(S))
	}
	for s := 0; s < S; s++ {
		e.base[s] = sc.segs[s].nsets()
	}
	if sc.remotes != nil {
		if err := sc.generateRemote(ctx, &e); err != nil {
			return err
		}
	} else {
		// Phase 1: sample every shard's sub-range; nothing is appended yet,
		// so cancellation (or a worker checking ctx mid-range) leaves the
		// store untouched.
		sampled := make([][]chunkResult, S)
		errs := make([]error, S)
		var wg sync.WaitGroup
		for s := 0; s < S; s++ {
			glo, ghi := e.bounds[s], e.bounds[s+1]
			if ghi <= glo {
				continue
			}
			wg.Add(1)
			go func(s, glo, ghi int) {
				defer wg.Done()
				sampled[s], errs[s] = sampleChunksCtx(ctx, sc.sampler, sc.seed, glo, ghi, sc.shardWorkers)
			}(s, glo, ghi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		// Phase 2: pure in-memory appends, disjoint per shard.
		for s := 0; s < S; s++ {
			glo, ghi := e.bounds[s], e.bounds[s+1]
			if ghi <= glo {
				continue
			}
			wg.Add(1)
			go func(sg *segment, results []chunkResult, glo, ghi int) {
				defer wg.Done()
				lfrom := sg.nsets()
				sg.appendResults(results)
				sg.gids = slices.Grow(sg.gids, ghi-glo)
				for g := glo; g < ghi; g++ {
					sg.gids = append(sg.gids, int32(g))
				}
				sg.appendIndexBlock(lfrom, sg.nsets(), sc.shardWorkers)
			}(sc.segs[s], sampled[s], glo, ghi)
		}
		wg.Wait()
	}
	sc.epochs = append(sc.epochs, e)
	sc.length = from + count
	if sc.spill != nil {
		sc.spill.enforce(sc.spill.budget, sc.segs)
	}
	return nil
}

// generateRemote fans one epoch's shard sub-ranges out to the workers in
// parallel. On any shard failure every mirror is rolled back to its
// pre-call extent — the store's observable state is unchanged — and the
// failure is raised as a *ShardError panic (see ShardError), except for
// context cancellation, which is returned as a plain error (the caller
// chose to abandon the top-up; it is not a shard fault). Workers that did
// append stay ahead of the mirror; the idempotent generate redelivery and
// the nonce resync absorb that on the next attempt.
func (sc *ShardedCollection) generateRemote(ctx context.Context, e *genEpoch) error {
	S := len(sc.remotes)
	snaps := make([]segSnap, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		snaps[s] = sc.remotes[s].snapshot()
		glo, ghi := e.bounds[s], e.bounds[s+1]
		if ghi <= glo {
			continue
		}
		wg.Add(1)
		go func(s, glo, ghi int) {
			defer wg.Done()
			errs[s] = sc.remotes[s].generate(ctx, glo, ghi)
		}(s, glo, ghi)
	}
	wg.Wait()
	rollback := func() {
		for i := range sc.remotes {
			sc.remotes[i].restore(snaps[i])
		}
	}
	// Cancellation wins over shard faults: with a fired ctx, other shards'
	// errors are usually secondary (their RPCs were abandoned too).
	if err := ctx.Err(); err != nil {
		rollback()
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return err // custom ctx implementations have no recorded cause
	}
	for s, err := range errs {
		if err != nil {
			rollback()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			shardPanic(sc.remotes[s].addr, "generate", err)
		}
	}
	return nil
}

// PostingsUpto returns an iterator over the ids < upto of RR sets
// containing v, walking each shard's blocks in turn. No allocation.
func (sc *ShardedCollection) PostingsUpto(v uint32, upto int) Postings {
	return sc.PostingsRange(v, 0, upto)
}

// PostingsRange returns an iterator over the ids in [from, upto) of RR
// sets containing v. Runs are ascending and disjoint; runs from different
// shards interleave in global id (see Store). No allocation for in-process
// shards; remote shards answer from worker-local CSR blocks, so the runs
// are fetched eagerly here (one RPC and one ascending run per worker) and
// the iterator drains them.
func (sc *ShardedCollection) PostingsRange(v uint32, from, upto int) Postings {
	if from < 0 {
		from = 0
	}
	if upto > sc.length {
		upto = sc.length
	}
	if sc.remotes != nil {
		if from >= upto {
			return Postings{}
		}
		pre := make([][]int32, 0, len(sc.remotes))
		for _, rs := range sc.remotes {
			run, err := rs.postings(v, from, upto)
			if err != nil {
				shardPanic(rs.addr, "postings", err)
			}
			if len(run) > 0 {
				pre = append(pre, run)
			}
		}
		return Postings{pre: pre, v: v, from: from, upto: upto}
	}
	return Postings{more: sc.segs, sp: sc.spill, v: v, from: from, upto: upto}
}

// CoverageRange counts how many RR sets with ids in [from, to) contain at
// least one marked node — the arena-scan oracle, identical to the flat
// store's count.
func (sc *ShardedCollection) CoverageRange(seedMark []bool, from, to int) int64 {
	return coverageRange(sc, seedMark, from, to)
}

// Coverage counts Cov_R(S) over the whole stream for a seed mark vector.
func (sc *ShardedCollection) Coverage(seedMark []bool) int64 {
	return sc.CoverageRange(seedMark, 0, sc.length)
}

// CoverageRangeSeeds counts the sets in [from, to) containing at least one
// seed via per-shard postings walks merged through the shared epoch-stamped
// mark set. Same scratch-reuse discipline as the flat store: calls must not
// race each other or Generate. Remote shards count worker-side — each walks
// its own CSR blocks and dedupes with its own marks — and since shards own
// disjoint global id ranges, the union count is the sum of shard counts and
// no arena or postings data crosses the wire.
func (sc *ShardedCollection) CoverageRangeSeeds(seeds []uint32, from, to int) int64 {
	if sc.remotes != nil {
		return sc.remoteCoverageSeeds(seeds, from, to)
	}
	return coverageRangeSeeds(sc, &sc.covMark, seeds, from, to)
}

// remoteCoverageSeeds fans the coverage count out to the workers in
// parallel and sums the per-shard counts.
func (sc *ShardedCollection) remoteCoverageSeeds(seeds []uint32, from, to int) int64 {
	if from < 0 {
		from = 0
	}
	if to > sc.length {
		to = sc.length
	}
	if from >= to || len(seeds) == 0 {
		return 0
	}
	var total int64
	errs := make([]error, len(sc.remotes))
	var wg sync.WaitGroup
	for s, rs := range sc.remotes {
		wg.Add(1)
		go func(s int, rs *RemoteShard) {
			defer wg.Done()
			cov, err := rs.coverageSeeds(seeds, from, to)
			if err != nil {
				errs[s] = err
				return
			}
			atomic.AddInt64(&total, cov)
		}(s, rs)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			shardPanic(sc.remotes[s].addr, "coverage", err)
		}
	}
	return total
}

// CoverageSeeds counts Cov_R(S) over the whole stream via the index.
func (sc *ShardedCollection) CoverageSeeds(seeds []uint32) int64 {
	return sc.CoverageRangeSeeds(seeds, 0, sc.length)
}
