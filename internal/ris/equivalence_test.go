package ris

import (
	"math"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
)

// TestRISEqualsForwardOnReverseGraph validates the defining identity of
// reverse influence sampling: the probability that a random IC RR set of G
// rooted at v contains u equals the probability that u activates v —
// which equals the probability that v activates u in the transpose graph.
// We check the aggregate form: for a fixed seed set S,
// Pr[S ∩ R ≠ ∅ | root v] = Pr[cascade from S reaches v], by comparing
// Lemma 1's estimate on G against forward MC on G itself (already done in
// ris_test) *and* reachability symmetry through Reverse().
func TestRISEqualsForwardOnReverseGraph(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, W: 0.7}, {U: 1, V: 2, W: 0.4}, {U: 2, V: 3, W: 0.6},
		{U: 0, V: 4, W: 0.3}, {U: 4, V: 5, W: 0.9}, {U: 1, V: 5, W: 0.2},
	})
	rev, err := g.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	// I_G({0}) must equal the expected number of nodes that can reach 0 in
	// the reverse graph's IC cascades — i.e. I_rev is not generally equal,
	// but single-pair activation probabilities are symmetric:
	// Pr_G[0 activates 3] = Pr_rev[3 activates 0].
	pForward := pairActivation(t, g, 0, 3)
	pReverse := pairActivation(t, rev, 3, 0)
	if math.Abs(pForward-pReverse) > 0.01 {
		t.Fatalf("activation symmetry violated: %v vs %v", pForward, pReverse)
	}
	// And the RR-set view: frequency of node 0 in RR sets of G rooted
	// anywhere, times n, equals I({0}).
	exact, err := diffusion.ExactIC(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 3, 2)
	const N = 200000
	col.Generate(N)
	freq := float64(len(col.Index(0))) / N * s.Scale()
	if math.Abs(freq-exact) > 0.05 {
		t.Fatalf("RR frequency estimate %v vs exact %v", freq, exact)
	}
}

// pairActivation estimates Pr[seed activates target] under IC by MC.
func pairActivation(t *testing.T, g *graph.Graph, seed, target uint32) float64 {
	t.Helper()
	const runs = 200000
	hits := 0
	for i := 0; i < runs; i++ {
		if icReaches(g, seed, target, uint64(i)) {
			hits++
		}
	}
	return float64(hits) / runs
}

// icReaches samples one IC possible world lazily and reports whether
// target is reached from seed.
func icReaches(g *graph.Graph, seed, target uint32, trial uint64) bool {
	r := streamFor(7777, trial)
	visited := map[uint32]bool{seed: true}
	queue := []uint32{seed}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == target {
			return true
		}
		adj, ws := g.OutNeighbors(u)
		for i, v := range adj {
			if visited[v] {
				continue
			}
			if r.Float64() < float64(ws[i]) {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return visited[target]
}
