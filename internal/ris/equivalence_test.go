package ris

import (
	"math"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// TestRISEqualsForwardOnReverseGraph validates the defining identity of
// reverse influence sampling: the probability that a random IC RR set of G
// rooted at v contains u equals the probability that u activates v —
// which equals the probability that v activates u in the transpose graph.
// We check the aggregate form: for a fixed seed set S,
// Pr[S ∩ R ≠ ∅ | root v] = Pr[cascade from S reaches v], by comparing
// Lemma 1's estimate on G against forward MC on G itself (already done in
// ris_test) *and* reachability symmetry through Reverse().
func TestRISEqualsForwardOnReverseGraph(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, W: 0.7}, {U: 1, V: 2, W: 0.4}, {U: 2, V: 3, W: 0.6},
		{U: 0, V: 4, W: 0.3}, {U: 4, V: 5, W: 0.9}, {U: 1, V: 5, W: 0.2},
	})
	rev, err := g.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	// I_G({0}) must equal the expected number of nodes that can reach 0 in
	// the reverse graph's IC cascades — i.e. I_rev is not generally equal,
	// but single-pair activation probabilities are symmetric:
	// Pr_G[0 activates 3] = Pr_rev[3 activates 0].
	pForward := pairActivation(t, g, 0, 3)
	pReverse := pairActivation(t, rev, 3, 0)
	if math.Abs(pForward-pReverse) > 0.01 {
		t.Fatalf("activation symmetry violated: %v vs %v", pForward, pReverse)
	}
	// And the RR-set view: frequency of node 0 in RR sets of G rooted
	// anywhere, times n, equals I({0}).
	exact, err := diffusion.ExactIC(g, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 3, 2)
	const N = 200000
	col.Generate(N)
	freq := float64(len(col.Index(0))) / N * s.Scale()
	if math.Abs(freq-exact) > 0.05 {
		t.Fatalf("RR frequency estimate %v vs exact %v", freq, exact)
	}
}

// TestArenaBitIdenticalAcrossWorkersAndSchedules pins the determinism
// contract of the arena-backed collection: for a fixed seed, the arena
// contents, offsets, aggregates and CSR index postings are bit-identical
// regardless of worker count AND regardless of how the stream growth is
// sliced into Generate calls (which changes the CSR block boundaries).
func TestArenaBitIdenticalAcrossWorkersAndSchedules(t *testing.T) {
	g, err := gen.ChungLu(250, 1400, 2.1, 83, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := mustSampler(t, g, model)
		ref := NewCollection(s, 123, 1)
		ref.Generate(2500)
		variants := []struct {
			name     string
			workers  int
			schedule []int
		}{
			{"w4-one-shot", 4, []int{2500}},
			{"w2-doubling", 2, []int{100, 200, 400, 800, 1600, 2500}},
			{"w8-irregular", 8, []int{1, 3, 700, 701, 2499, 2500}},
		}
		for _, vc := range variants {
			col := NewCollection(s, 123, vc.workers)
			for _, target := range vc.schedule {
				col.GenerateTo(target)
			}
			if col.Len() != ref.Len() || col.Items() != ref.Items() || col.Width() != ref.Width() {
				t.Fatalf("%v/%s: aggregates differ from reference", model, vc.name)
			}
			for i := 0; i < ref.Len(); i++ {
				a, b := ref.Set(i), col.Set(i)
				if len(a) != len(b) {
					t.Fatalf("%v/%s: set %d length differs", model, vc.name, i)
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%v/%s: set %d differs at %d", model, vc.name, i, j)
					}
				}
			}
			// The index must present the same postings even though the two
			// collections carry different CSR block boundaries.
			for v := uint32(0); int(v) < g.NumNodes(); v++ {
				ia, ib := ref.Index(v), col.Index(v)
				if len(ia) != len(ib) {
					t.Fatalf("%v/%s: node %d postings length differs", model, vc.name, v)
				}
				for j := range ia {
					if ia[j] != ib[j] {
						t.Fatalf("%v/%s: node %d postings differ", model, vc.name, v)
					}
				}
			}
		}
	}
}

// TestPostingsMatchIndexUpto checks the zero-allocation postings iterator
// against the gathered IndexUpto view for cutoffs that fall inside, on, and
// beyond CSR block boundaries.
func TestPostingsMatchIndexUpto(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 700, 19, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.IC)
	col := NewCollection(s, 7, 3)
	for _, target := range []int{300, 600, 1200} { // three CSR blocks
		col.GenerateTo(target)
	}
	for _, upto := range []int{0, 1, 299, 300, 301, 600, 750, 1200, 5000} {
		for v := uint32(0); int(v) < g.NumNodes(); v += 5 {
			want := col.IndexUpto(v, upto)
			var got []int32
			it := col.PostingsUpto(v, upto)
			prev := int32(-1)
			for {
				run, ok := it.Next()
				if !ok {
					break
				}
				if len(run) == 0 {
					t.Fatal("iterator yielded an empty run")
				}
				for _, id := range run {
					if id <= prev {
						t.Fatalf("postings not strictly ascending at upto=%d", upto)
					}
					prev = id
					got = append(got, id)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("upto=%d v=%d: iterator %d ids, gather %d", upto, v, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("upto=%d v=%d: posting %d differs", upto, v, i)
				}
			}
		}
	}
}

// pairActivation estimates Pr[seed activates target] under IC by MC.
func pairActivation(t *testing.T, g *graph.Graph, seed, target uint32) float64 {
	t.Helper()
	const runs = 200000
	hits := 0
	for i := 0; i < runs; i++ {
		if icReaches(g, seed, target, uint64(i)) {
			hits++
		}
	}
	return float64(hits) / runs
}

// icReaches samples one IC possible world lazily and reports whether
// target is reached from seed.
func icReaches(g *graph.Graph, seed, target uint32, trial uint64) bool {
	r := streamFor(7777, trial)
	visited := map[uint32]bool{seed: true}
	queue := []uint32{seed}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == target {
			return true
		}
		adj, ws := g.OutNeighbors(u)
		for i, v := range adj {
			if visited[v] {
				continue
			}
			if r.Float64() < float64(ws[i]) {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return visited[target]
}
