package ris

import (
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.ChungLu(20000, 120000, 2.1, 9, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkGenerate measures cold generation of a stream into the arena
// (sets + CSR index block) per model; allocations are the headline metric.
func BenchmarkGenerate(b *testing.B) {
	g := benchGraph(b)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		b.Run(model.String(), func(b *testing.B) {
			s := mustSampler(b, g, model)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col := NewCollection(s, uint64(i)+1, 4)
				col.Generate(20000)
			}
		})
	}
}

// BenchmarkGenerateDoubling measures a doubling growth schedule — the
// allocation pattern SSA/D-SSA actually produce — rather than one bulk call.
func BenchmarkGenerateDoubling(b *testing.B) {
	g := benchGraph(b)
	s := mustSampler(b, g, diffusion.LT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(s, uint64(i)+1, 4)
		for target := 500; target <= 32000; target *= 2 {
			col.GenerateTo(target)
		}
	}
}
