package ris

import (
	"fmt"
	"sort"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.ChungLu(20000, 120000, 2.1, 9, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkGenerate measures cold generation of a stream into the arena
// (sets + CSR index block) per model; allocations are the headline metric.
func BenchmarkGenerate(b *testing.B) {
	g := benchGraph(b)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		b.Run(model.String(), func(b *testing.B) {
			s := mustSampler(b, g, model)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col := NewCollection(s, uint64(i)+1, 4)
				col.Generate(20000)
			}
		})
	}
}

// BenchmarkGenerateKernels compares the compiled plan kernels against the
// Bernoulli/binary-search oracle on identical single-worker workloads, per
// model — the per-PR perf suite (imbench -perf) runs the same pair on a
// high-degree preset where the win is larger.
func BenchmarkGenerateKernels(b *testing.B) {
	g := benchGraph(b)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		for _, kernel := range []Kernel{KernelPlan, KernelOracle} {
			b.Run(model.String()+"/"+kernel.String(), func(b *testing.B) {
				s := mustSampler(b, g, model).WithKernel(kernel)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					col := NewCollection(s, uint64(i)+1, 1)
					col.Generate(20000)
				}
			})
		}
	}
}

// BenchmarkGenerateSharded measures cold generation into the id-sharded
// store at 1, 2 and 4 shards with the same total worker budget as
// BenchmarkGenerate (4): shards=1 is the flat-vs-sharded overhead check
// (one extra goroutine hop plus the gids table — it must not be slower than
// flat), larger counts show the shard-parallel topology.
func BenchmarkGenerateSharded(b *testing.B) {
	g := benchGraph(b)
	s := mustSampler(b, g, diffusion.IC)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				col := NewShardedCollection(s, uint64(i)+1, shards, 4/shards)
				col.Generate(20000)
			}
		})
	}
}

// BenchmarkGenerateDoubling measures a doubling growth schedule — the
// allocation pattern SSA/D-SSA actually produce — rather than one bulk call.
func BenchmarkGenerateDoubling(b *testing.B) {
	g := benchGraph(b)
	s := mustSampler(b, g, diffusion.LT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(s, uint64(i)+1, 4)
		for target := 500; target <= 32000; target *= 2 {
			col.GenerateTo(target)
		}
	}
}

// benchmarkIndexBuild measures one full CSR block build over a 40k-set
// stream at the given worker count, isolated from sampling: the index is
// dropped and rebuilt each iteration.
func benchmarkIndexBuild(b *testing.B, workers int) {
	g := benchGraph(b)
	s := mustSampler(b, g, diffusion.IC)
	col := NewCollection(s, 11, workers)
	col.Generate(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.blocks = col.blocks[:0]
		col.appendIndexBlock(0, col.Len(), workers)
	}
}

// BenchmarkIndexBuildSerial is the pre-refactor build: one thread counts,
// prefix-sums and places every posting.
func BenchmarkIndexBuildSerial(b *testing.B) { benchmarkIndexBuild(b, 1) }

// BenchmarkIndexBuildParallel is the per-worker counting + prefix-sum merge
// + disjoint placement build at 4 workers; the layout is bit-identical to
// the serial one. The wall-clock win needs ≥ 4 hardware threads — on a
// single-core machine this degenerates to the serial cost plus goroutine
// overhead.
func BenchmarkIndexBuildParallel(b *testing.B) { benchmarkIndexBuild(b, 4) }

// coverageBench builds the D-SSA verification scenario: a 20k-set stream, a
// 50-node candidate seed set (the highest-posting nodes, as greedy would
// pick), and the holdout window [half, len).
func coverageBench(b *testing.B) (col *Collection, seeds []uint32, mark []bool, half int) {
	g := benchGraph(b)
	s := mustSampler(b, g, diffusion.IC)
	col = NewCollection(s, 17, 0)
	col.Generate(20000)
	nodes := make([]uint32, g.NumNodes())
	for v := range nodes {
		nodes[v] = uint32(v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return len(col.Index(nodes[i])) > len(col.Index(nodes[j]))
	})
	mark = make([]bool, g.NumNodes())
	for _, v := range nodes[:50] {
		seeds = append(seeds, v)
		mark[v] = true
	}
	return col, seeds, mark, col.Len() / 2
}

// BenchmarkCoverageRangeScan is the pre-refactor holdout check: an arena
// scan over every RR set in the window.
func BenchmarkCoverageRangeScan(b *testing.B) {
	col, _, mark, half := coverageBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.CoverageRange(mark, half, col.Len())
	}
}

// BenchmarkCoverageRangePostings is the index-driven check: a k-way union
// walk of the seeds' postings in the window.
func BenchmarkCoverageRangePostings(b *testing.B) {
	col, seeds, _, half := coverageBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.CoverageRangeSeeds(seeds, half, col.Len())
	}
}
