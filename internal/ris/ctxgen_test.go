// Cooperative cancellation of store growth: a canceled GenerateCtx must
// mutate NOTHING — stream, index and width exactly as before the call — so a
// later identical top-up regenerates the same bit-identical sets. Tested
// deterministically with a context whose Err() flips after a fixed number of
// checks, which cancels mid-flight without sleeps or races on wall time.
package ris

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// countCtx is a context.Context whose Err() starts returning
// context.Canceled after the first `after` calls. Embedding Background
// supplies Deadline/Done/Value; the generate paths poll Err() between chunk
// claims, which is exactly the hook this exploits.
type countCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func cancelObservables(t *testing.T, label string, st Store) (int, int64, int64) {
	t.Helper()
	return st.Len(), st.Items(), st.Width()
}

func TestGenerateCtxCancellation(t *testing.T) {
	s := snapTestSampler(t)
	const seed = 771
	for _, shards := range []int{0, 1, 3} {
		st := NewStore(s, seed, snapOpt(shards)).(ContextStore)
		ref := NewStore(s, seed, StoreOptions{Workers: 2})
		st.Generate(40)
		ref.Generate(40)
		wantLen, wantItems, wantWidth := st.Len(), st.Items(), st.Width()

		// Pre-canceled context: immediate error, nothing mutated.
		pre, cancel := context.WithCancel(context.Background())
		cancel()
		if err := st.GenerateCtx(pre, 50); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d pre-canceled GenerateCtx err = %v, want Canceled", shards, err)
		}

		// Mid-flight cancellation at several flip points: workers poll
		// ctx.Err() between chunk claims, so the call either completes in
		// full (cancellation observed too late) or mutates nothing — never
		// a partial append. after=1 flips before the final post-sampling
		// check, so at least that case must cancel.
		canceled := 0
		for _, after := range []int64{1, 2, 5, 9} {
			ctx := &countCtx{Context: context.Background(), after: after}
			err := st.GenerateCtx(ctx, 120)
			if err == nil {
				ref.Generate(120)
				storeObservables(t, "late-cancel full growth", ref, st)
				wantLen, wantItems, wantWidth = cancelObservables(t, "grown", st)
				continue
			}
			canceled++
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d after=%d GenerateCtx err = %v, want Canceled", shards, after, err)
			}
			l, it, w := cancelObservables(t, "mid", st)
			if l != wantLen || it != wantItems || w != wantWidth {
				t.Fatalf("shards=%d after=%d store mutated by canceled growth: len %d→%d items %d→%d width %d→%d",
					shards, after, wantLen, l, wantItems, it, wantWidth, w)
			}
		}
		if canceled == 0 {
			t.Fatalf("shards=%d no flip point canceled — test exercised nothing", shards)
		}

		// GenerateToCtx shares the path (and is a no-op at or below Len).
		if err := st.GenerateToCtx(&countCtx{Context: context.Background(), after: 1}, st.Len()+80); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d GenerateToCtx want Canceled", shards)
		}
		if err := st.GenerateToCtx(pre, st.Len()); err != nil {
			t.Fatalf("shards=%d GenerateToCtx at target: %v", shards, err)
		}

		// The abandoned growth left no trace: the same top-up, uncanceled,
		// lands bit-identical to a never-interrupted twin.
		st.Generate(120)
		ref.Generate(120)
		storeObservables(t, "post-cancel regrow", ref, st)

		// A canceled context also works through the GenerateToCtx success
		// path when growth is still needed.
		if err := st.GenerateToCtx(context.Background(), st.Len()+7); err != nil {
			t.Fatalf("shards=%d GenerateToCtx grow: %v", shards, err)
		}
		ref.Generate(7)
		storeObservables(t, "ctx regrow", ref, st)
	}
}
