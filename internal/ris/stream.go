package ris

import "stopandstare/internal/rng"

// streamFor returns the PRNG for RR set id under the given seed. Split out
// so the verification stream used by SSA's Estimate-Inf can reserve a
// disjoint id space (see core): verification RR sets use VerifyStream.
func streamFor(seed, id uint64) *rng.Source {
	return rng.NewStream(seed, id)
}

// VerifyStream returns a PRNG stream disjoint from the Generate stream for
// any realistic id (< 2^62). SSA's Estimate-Inf must use samples that are
// independent of the coverage collection (Alg. 1 line 10 generates a fresh
// collection R′), which this separation guarantees.
func VerifyStream(seed, id uint64) *rng.Source {
	return rng.NewStream(seed, id|1<<62)
}

// SeedVerifyStream re-seeds r in place to VerifyStream(seed, id)'s sequence,
// for callers that draw one verification RR set per loop iteration and want
// to avoid a Source allocation per sample.
func SeedVerifyStream(r *rng.Source, seed, id uint64) {
	r.SeedStream(seed, id|1<<62)
}
