package ris

import "stopandstare/internal/epoch"

// This file implements index-driven coverage counting: Cov_R(S) over an id
// window computed as a union walk of the seeds' postings runs, so the cost
// is O(Σ seed postings in the window) instead of O(items in the window).
// This is what makes D-SSA's per-checkpoint verification (Alg. 4 lines
// 9–15) proportional to touched postings rather than stream length: the
// holdout half R^c_t is never rescanned — only the index runs of the k
// candidate seeds are visited, each id counted once via an epoch-stamped
// mark (the same trick maxcover's solvers use for covered sets, so a
// checkpoint costs no per-call allocation in steady state). The walk is
// shared by both Store implementations: each id is counted on first visit,
// so the per-shard interleaving of the sharded store's runs cannot change
// the count.

// coverageRange is the arena-scan oracle behind CoverageRange on both
// stores: one pass over the window's sets, counting those that contain a
// marked node. Built on ForEachSet so the flat store sweeps its arena
// directly and the sharded store walks its shard runs.
func coverageRange(st Store, seedMark []bool, from, to int) int64 {
	var cov int64
	st.ForEachSet(from, to, func(_ int, set []uint32) {
		for _, v := range set {
			if seedMark[v] {
				cov++
				break
			}
		}
	})
	return cov
}

// coverageRangeSeeds is the union walk behind CoverageRangeSeeds on both
// stores: count the distinct ids in [from, to) across the seeds' postings,
// deduplicated through the store-owned epoch-stamped marks.
func coverageRangeSeeds(st Store, m *epoch.Marks, seeds []uint32, from, to int) int64 {
	if from < 0 {
		from = 0
	}
	if to > st.Len() {
		to = st.Len()
	}
	if from >= to || len(seeds) == 0 {
		return 0
	}
	m.Reset(to)
	var cov int64
	for _, v := range seeds {
		it := st.PostingsRange(v, from, to)
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			for _, id := range run {
				if m.Visit(id) {
					cov++
				}
			}
		}
	}
	return cov
}

// CoverageRangeSeedsMarks is CoverageRangeSeeds with caller-owned scratch:
// the union walk dedupes ids through m instead of the store-owned mark set.
// This is the concurrency-safe form the serving layer uses — any number of
// read-only queries may walk one store in parallel as long as each brings
// its own marks (and no Generate runs concurrently). A remote-sharded store
// counts worker-side instead (per-shard marks, serialized per connection),
// which needs no caller scratch and stays safe for concurrent readers.
func CoverageRangeSeedsMarks(st Store, m *epoch.Marks, seeds []uint32, from, to int) int64 {
	if sc, ok := st.(*ShardedCollection); ok && sc.remotes != nil {
		return sc.remoteCoverageSeeds(seeds, from, to)
	}
	return coverageRangeSeeds(st, m, seeds, from, to)
}

// CoverageRangeSeeds counts how many RR sets with ids in [from, to) contain
// at least one of the seeds — the same quantity as CoverageRange over a
// seed-mark vector, computed from the inverted index instead of the arena.
// Duplicate seeds are tolerated (the union dedupes them).
//
// The walk reuses collection-owned scratch, so calls must not race with
// each other or with Generate (the same discipline Generate itself
// requires; concurrent Postings/Set reads remain safe).
func (c *Collection) CoverageRangeSeeds(seeds []uint32, from, to int) int64 {
	return coverageRangeSeeds(c, &c.covMark, seeds, from, to)
}

// CoverageSeeds counts Cov_R(S) over the whole stream via the index.
func (c *Collection) CoverageSeeds(seeds []uint32) int64 {
	return c.CoverageRangeSeeds(seeds, 0, c.Len())
}
