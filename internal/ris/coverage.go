package ris

// This file implements index-driven coverage counting: Cov_R(S) over an id
// window computed as a union walk of the seeds' postings runs, so the cost
// is O(Σ seed postings in the window) instead of O(items in the window).
// This is what makes D-SSA's per-checkpoint verification (Alg. 4 lines
// 9–15) proportional to touched postings rather than stream length: the
// holdout half R^c_t is never rescanned — only the index runs of the k
// candidate seeds are visited, each id counted once via an epoch-stamped
// mark (the same trick maxcover's solvers use for covered sets, so a
// checkpoint costs no per-call allocation in steady state).

// CoverageRangeSeeds counts how many RR sets with ids in [from, to) contain
// at least one of the seeds — the same quantity as CoverageRange over a
// seed-mark vector, computed from the inverted index instead of the arena.
// Duplicate seeds are tolerated (the union dedupes them).
//
// The walk reuses collection-owned scratch, so calls must not race with
// each other or with Generate (the same discipline Generate itself
// requires; concurrent Postings/Set reads remain safe).
func (c *Collection) CoverageRangeSeeds(seeds []uint32, from, to int) int64 {
	if from < 0 {
		from = 0
	}
	if to > c.Len() {
		to = c.Len()
	}
	if from >= to || len(seeds) == 0 {
		return 0
	}
	c.covMark.Reset(to)
	var cov int64
	for _, v := range seeds {
		it := c.PostingsRange(v, from, to)
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			for _, id := range run {
				if c.covMark.Visit(id) {
					cov++
				}
			}
		}
	}
	return cov
}

// CoverageSeeds counts Cov_R(S) over the whole stream via the index.
func (c *Collection) CoverageSeeds(seeds []uint32) int64 {
	return c.CoverageRangeSeeds(seeds, 0, c.Len())
}
