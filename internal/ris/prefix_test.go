package ris

import (
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
)

// TestPrefixStability is the property D-SSA's correctness rests on: the
// stream is append-only, so R_{t+1} literally contains R_t ∪ R^c_t — no
// sample is regenerated or discarded when the collection grows.
func TestPrefixStability(t *testing.T) {
	g, err := gen.ChungLu(200, 1200, 2.1, 271, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSampler(t, g, diffusion.LT)
	col := NewCollection(s, 277, 3)
	col.Generate(500)
	snapshot := make([][]uint32, 500)
	for i := 0; i < 500; i++ {
		snapshot[i] = append([]uint32(nil), col.Set(i)...)
	}
	col.Generate(1500) // grow 4x
	if col.Len() != 2000 {
		t.Fatalf("len %d", col.Len())
	}
	for i := 0; i < 500; i++ {
		got := col.Set(i)
		if len(got) != len(snapshot[i]) {
			t.Fatalf("set %d changed length after growth", i)
		}
		for j := range got {
			if got[j] != snapshot[i][j] {
				t.Fatalf("set %d mutated after growth", i)
			}
		}
	}
	// And the grown stream matches a from-scratch generation of the same
	// 2000 ids (append-only ≡ restart, the resumability property).
	fresh := NewCollection(s, 277, 1)
	fresh.Generate(2000)
	for i := 0; i < 2000; i++ {
		a, b := col.Set(i), fresh.Set(i)
		if len(a) != len(b) {
			t.Fatalf("incremental vs fresh set %d length", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("incremental vs fresh set %d differs", i)
			}
		}
	}
}
