package ris

import (
	"fmt"
	"math"
	"math/bits"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// This file implements compiled sampling plans: a per-(graph, model)
// preprocessing pass that classifies every node's in-edge list and emits a
// sampling-specific layout, so the RR-generation inner loop — the entire
// cost of the pipeline once solving and indexing are incremental — does as
// little per-edge work as the distribution allows:
//
//   - uniform-weight nodes (ALL nodes of a weighted-cascade graph, where
//     w(u,v) = 1/d_in(v) is shared by every in-edge of v) sample the next
//     live in-edge by geometric skipping: one draw lands on the next
//     success, collapsing d_in Bernoulli draws to ~1 + #live;
//   - general (mixed-weight) nodes precompute each edge's activation
//     threshold as a uint64, interleaved with the neighbour id in one fused
//     record, so the inner loop is a single integer compare with no float
//     conversion and no second cache stream for the weights;
//   - LT nodes get per-node alias tables over (in-neighbours + stop), so a
//     reverse-walk step costs one draw and O(1) work instead of the
//     O(log d_in) binary search of graph.SampleLTInNeighbor.
//
// Plan kernels consume a DIFFERENT draw sequence than the Bernoulli oracle
// (Sampler.appendOracle), so individual RR sets differ set-by-set between
// kernels — but the invariants every store and algorithm relies on are
// kernel-independent and still hold: RR set i is a pure function of
// (seed, i), generation is worker-count independent, and flat vs sharded
// stores stay bit-identical (the differential harness runs under both
// kernels). The oracle remains available behind KernelOracle as the
// distribution reference; plan_test.go's statistical harness proves the two
// kernels draw from the same distribution.

// Kernel selects the RR-set sampling implementation.
type Kernel uint8

const (
	// KernelPlan (the default) samples through the compiled plan: geometric
	// edge-skipping, integer-threshold Bernoulli and alias LT walks.
	KernelPlan Kernel = iota
	// KernelOracle samples through the direct per-edge float Bernoulli /
	// binary-search-LT implementation — the distribution oracle the plan
	// kernels are validated against.
	KernelOracle
)

// String returns the CLI-facing kernel name.
func (k Kernel) String() string {
	if k == KernelOracle {
		return "oracle"
	}
	return "plan"
}

// ParseKernel resolves "plan" or "oracle".
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "plan", "":
		return KernelPlan, nil
	case "oracle":
		return KernelOracle, nil
	}
	return 0, fmt.Errorf("ris: unknown kernel %q (have plan, oracle)", s)
}

// IC node classes.
const (
	classUniform uint8 = iota // all in-edges share one weight: geometric skipping
	classGeneral              // mixed weights: fused uint64-threshold records
)

// planEdge is the fused per-edge record of general (mixed-weight) IC nodes:
// the activation threshold and the neighbour id in one 16-byte stride, so
// the kernel touches a single sequential stream instead of parallel
// adjacency and weight arrays.
type planEdge struct {
	thr uint64 // edge is live iff Bernoulli64(thr)
	nbr uint32 // in-neighbour (edge source)
	_   uint32 // padding, keeps the stride explicit
}

// ltSlot is one alias-table slot of an LT node. A node with in-degree d has
// d+1 slots: outcome j < d is "step to in-neighbour nbr", outcome d is
// "stop" (the 1 − Σw deficit). One 64-bit draw resolves a step: the high
// product bits pick the slot, the low bits are the within-slot fraction
// compared against thr, and the alias redirect plus the neighbour id live
// in the same record.
type ltSlot struct {
	thr uint64 // keep outcome j iff fraction < thr
	alt uint32 // alias outcome when the fraction is ≥ thr
	nbr uint32 // in-neighbour of outcome j (unused for the stop slot)
}

// Plan is a compiled sampling plan for one (graph, model) pair: immutable
// after compilation and safe to share across goroutines, like the graph it
// was compiled from. Samplers compile one lazily on first plan-kernel use
// (oracle-only samplers never pay for it — see Sampler.Plan), and WithKernel
// copies share the compilation.
type Plan struct {
	model diffusion.Model
	n     int
	deg   []int32 // in-degree per node: width accounting without inIdx lookups

	// IC state. inIdx/inAdj alias the graph's reverse CSR (uniform nodes
	// walk the raw adjacency — skipping needs no weights); general nodes
	// carry their fused records in gen at window genOff[v]:genOff[v+1].
	class  []uint8
	lnq    []float64 // uniform nodes: ln(1−p), the Geometric parameter
	inIdx  []int64
	inAdj  []uint32
	gen    []planEdge
	genOff []int64 // len n+1; zero-width for uniform nodes, nil if none general

	// LT state: node v's alias slots are lt[ltOff[v]:ltOff[v+1]]
	// (in-degree + 1 of them; the last is the stop outcome).
	lt    []ltSlot
	ltOff []int64
}

// NewPlan compiles the sampling plan for g under model. Compilation streams
// the reverse CSR once — degrees, classification and record emission happen
// in the same per-node visit (plus the per-node Vose builds for LT), so a
// mapped graph's idx/adj/weight pages are forced exactly one time — and the
// result shares the graph's adjacency storage where the kernel needs no
// extra per-edge state.
func NewPlan(g *graph.Graph, model diffusion.Model) *Plan {
	n := g.NumNodes()
	idx, adj, w := g.ReverseCSR()
	p := &Plan{model: model, n: n, deg: make([]int32, n)}
	if model == diffusion.IC {
		p.compileIC(idx, adj, w)
	} else {
		p.compileLT(g, idx, adj, w)
	}
	return p
}

// Model returns the model the plan was compiled for.
func (p *Plan) Model() diffusion.Model { return p.model }

// Bytes approximates the plan's own memory (excluding the aliased graph
// arrays).
func (p *Plan) Bytes() int64 {
	return int64(cap(p.deg))*4 + int64(cap(p.class)) + int64(cap(p.lnq))*8 +
		int64(cap(p.gen))*16 + int64(cap(p.genOff))*8 +
		int64(cap(p.lt))*16 + int64(cap(p.ltOff))*8
}

// compileIC classifies each node, records its degree and lays out the fused
// records for the general class, all in one pass over the reverse CSR — a
// mapped graph's pages are touched once. Weighted-cascade graphs classify
// every node uniform, so gen/genOff stay nil and the plan costs 13
// bytes/node over the graph.
func (p *Plan) compileIC(idx []int64, adj []uint32, w []float32) {
	n := p.n
	p.inIdx, p.inAdj = idx, adj
	p.class = make([]uint8, n)
	p.lnq = make([]float64, n)
	for v := 0; v < n; v++ {
		lo, hi := idx[v], idx[v+1]
		p.deg[v] = int32(hi - lo)
		ws := w[lo:hi]
		uniform := true
		for i := 1; i < len(ws); i++ {
			if ws[i] != ws[0] {
				uniform = false
				break
			}
		}
		if uniform {
			if len(ws) > 0 {
				p.lnq[v] = rng.LogQ(float64(ws[0]))
			}
			if p.genOff != nil {
				p.genOff[v+1] = int64(len(p.gen))
			}
			continue
		}
		p.class[v] = classGeneral
		if p.genOff == nil {
			// First mixed-weight node: the zeroed prefix of a fresh genOff is
			// already correct for every uniform node seen so far.
			p.genOff = make([]int64, n+1)
		}
		for i := lo; i < hi; i++ {
			p.gen = append(p.gen, planEdge{thr: rng.Threshold64(float64(w[i])), nbr: adj[i]})
		}
		p.genOff[v+1] = int64(len(p.gen))
	}
}

// compileLT builds one Vose alias table per node over its in-neighbours
// plus the stop outcome (probability 1 − Σw, clamped at 0 for graphs at the
// LT tolerance boundary), with slot probabilities stored as uint64
// thresholds.
func (p *Plan) compileLT(g *graph.Graph, idx []int64, adj []uint32, w []float32) {
	n := p.n
	p.ltOff = make([]int64, n+1)
	// One pass over the offset table fills degrees, the slot offsets and the
	// Vose scratch bound together.
	maxOut := 0
	for v := 0; v < n; v++ {
		d := int32(idx[v+1] - idx[v])
		p.deg[v] = d
		p.ltOff[v+1] = p.ltOff[v] + int64(d) + 1
		if int(d)+1 > maxOut {
			maxOut = int(d) + 1
		}
	}
	p.lt = make([]ltSlot, p.ltOff[n])
	scaled := make([]float64, maxOut)
	small := make([]int32, 0, maxOut)
	large := make([]int32, 0, maxOut)
	for v := 0; v < n; v++ {
		d := int(p.deg[v])
		slots := p.lt[p.ltOff[v]:p.ltOff[v+1]]
		sum := g.InWeightSum(uint32(v))
		stop := 1 - sum
		if stop < 0 { // LT tolerance boundary: Σw may exceed 1 by ~1e-6
			stop = 0
		}
		total := sum + stop
		// Outcome weights: the d in-edge weights, then the stop deficit.
		m := d + 1
		small, large = small[:0], large[:0]
		for j := 0; j < m; j++ {
			var wj float64
			if j < d {
				wj = float64(w[idx[v]+int64(j)])
				slots[j].nbr = adj[idx[v]+int64(j)]
			} else {
				wj = stop
			}
			scaled[j] = wj * float64(m) / total
			if scaled[j] < 1 {
				small = append(small, int32(j))
			} else {
				large = append(large, int32(j))
			}
		}
		for len(small) > 0 && len(large) > 0 {
			s := small[len(small)-1]
			small = small[:len(small)-1]
			l := large[len(large)-1]
			large = large[:len(large)-1]
			slots[s].thr = rng.Threshold64(scaled[s])
			slots[s].alt = uint32(l)
			scaled[l] = (scaled[l] + scaled[s]) - 1
			if scaled[l] < 1 {
				small = append(small, l)
			} else {
				large = append(large, l)
			}
		}
		for _, l := range large {
			slots[l].thr = math.MaxUint64
			slots[l].alt = uint32(l)
		}
		for _, s := range small { // numerical leftovers
			slots[s].thr = math.MaxUint64
			slots[s].alt = uint32(s)
		}
	}
}

// appendSample runs one RR-set generation under the compiled kernels. The
// caller has drawn the root, reset st, marked and appended the root at
// buf[start]. Returns the grown buffer and the set's width Σ d_in.
func (p *Plan) appendSample(r *rng.Source, st *State, buf []uint32, start int, root uint32) ([]uint32, int64) {
	width := int64(p.deg[root])
	if p.model == diffusion.IC {
		for head := start; head < len(buf); head++ {
			x := buf[head]
			if p.class[x] != classUniform {
				// Fused threshold records: one integer compare per edge.
				for _, e := range p.gen[p.genOff[x]:p.genOff[x+1]] {
					if r.Bernoulli64(e.thr) {
						if u := e.nbr; st.marks.Visit(int32(u)) {
							buf = append(buf, u)
							width += int64(p.deg[u])
						}
					}
				}
				continue
			}
			adj := p.inAdj[p.inIdx[x]:p.inIdx[x+1]]
			if len(adj) == 0 {
				continue
			}
			// Geometric skipping: each draw jumps to the next live edge, so
			// the node costs 1 + #live draws instead of d_in.
			lnq := p.lnq[x]
			for i := r.Geometric(lnq); i < int64(len(adj)); i += 1 + r.Geometric(lnq) {
				if u := adj[i]; st.marks.Visit(int32(u)) {
					buf = append(buf, u)
					width += int64(p.deg[u])
				}
			}
		}
		return buf, width
	}
	// LT reverse walk over alias tables: one draw per step — high product
	// bits pick the slot, low bits resolve the alias redirect.
	x := root
	for {
		base := p.ltOff[x]
		nslots := uint64(p.ltOff[x+1] - base)
		j, frac := bits.Mul64(r.Uint64(), nslots)
		s := &p.lt[base+int64(j)]
		if frac >= s.thr {
			j = uint64(s.alt)
			s = &p.lt[base+int64(j)]
		}
		if j == nslots-1 {
			break // stop outcome: the threshold deficit won
		}
		u := s.nbr
		if !st.marks.Visit(int32(u)) {
			break // revisit terminates the walk, as in the oracle
		}
		buf = append(buf, u)
		width += int64(p.deg[u])
		x = u
	}
	return buf, width
}
