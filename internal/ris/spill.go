package ris

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file is the disk spill tier of the RR-set stores: when a store is
// built with StoreOptions.SpillBudgetBytes, cold frozen arena extents and
// cold CSR index blocks are serialized to an append-only SpillFile and
// immediately re-read through a shared read-only mapping, so every access
// path (Set, ForEachSet, PostingsRange, the coverage walks) keeps working on
// the exact same slices-of-block layout — "fault-in" is the OS paging the
// bytes back through the mapping, and the page cache is the hot tier.
//
// Layout: blocks are appended at mapping-granularity-aligned offsets, each
// prefixed by a 64-byte header (magic, kind, payload length), mirroring the
// .sasg convention of 64-byte-aligned sections validated before any cast.
// Payload bytes are raw host-order []uint32 / []int32 images: the file is
// process-private scratch (created in SpillDir, never an interchange
// format), so casting them back in the same process is endian-agnostic.
//
// Concurrency: spilling happens only under the store's mutation exclusivity
// (the same discipline as Generate — the session layer holds its write lock
// across both), and a mapping, once created, is never released until the
// whole SpillFile closes. Concurrent readers therefore never observe a unit
// mid-move and can never fault on an unmapped page. LRU recency stamps are
// the single spill-tier field readers touch, and they are atomic.

const (
	// spillMagic is "SPIL" read as a little-endian uint32.
	spillMagic = 0x4C495053
	// spillHdrSize is the per-block header size; payloads start this many
	// bytes past the block's aligned offset, so they are 64-byte aligned.
	spillHdrSize = 64
)

// Spill block kinds (header byte 4).
const (
	spillKindArena byte = 1 // frozen arena extent: []uint32 items
	spillKindIndex byte = 2 // CSR index block: []int32 starts ++ []int32 ids
)

// ErrBadSpill reports a structurally invalid spill block: bad magic, kind or
// length in the header, or a file too short to hold the recorded payload.
// Mirrors graph.ErrBadMapped for .sasg files.
var ErrBadSpill = errors.New("ris: bad spill block")

// SpillWriteError reports a failed spill-file create, append or truncate
// (disk full, I/O error). The store that hit it stays consistent and fully
// resident: the unit being spilled keeps its heap copy and the store stops
// spilling (SpillStats.Err surfaces the cause).
type SpillWriteError struct {
	Path string
	Err  error
}

func (e *SpillWriteError) Error() string {
	return fmt.Sprintf("ris: spill write %s: %v", e.Path, e.Err)
}

func (e *SpillWriteError) Unwrap() error { return e.Err }

// spillBlockMeta is the in-memory record of one appended block, validated
// against the block's on-disk header on every map.
type spillBlockMeta struct {
	off    int64 // aligned file offset of the 64-byte header
	length int64 // payload bytes following the header
	kind   byte
}

// SpillFile is an append-only file of spill blocks plus the read-only
// mappings handed out over them. It is created lazily on the first spill,
// unlinked immediately where the OS allows it (crash leaks nothing), and
// finalized when the owning store becomes unreachable — stores have no Close
// in their lifecycle, eviction just drops references.
type SpillFile struct {
	f       *os.File
	path    string
	removed bool
	align   int64 // block offset granularity: max(page size, 64)
	size    int64 // file size == next aligned append offset
	blocks  []spillBlockMeta
	maps    []*spillMapping

	// writeAt is the append write path; tests inject failures here.
	writeAt func(p []byte, off int64) (int, error)
}

func newSpillFile(dir string) (*SpillFile, error) {
	f, err := os.CreateTemp(dir, "rrspill-*.spill")
	if err != nil {
		return nil, &SpillWriteError{Path: dir, Err: err}
	}
	sf := &SpillFile{f: f, path: f.Name(), align: int64(os.Getpagesize())}
	if sf.align < spillHdrSize {
		sf.align = spillHdrSize
	}
	sf.writeAt = f.WriteAt
	if runtime.GOOS != "windows" {
		if os.Remove(sf.path) == nil {
			sf.removed = true
		}
	}
	runtime.SetFinalizer(sf, func(sf *SpillFile) { sf.Close() })
	return sf, nil
}

// append writes one block (header + concatenated parts) at the next aligned
// offset and returns its id. The file is extended to the next alignment
// boundary so every byte of a future mapping is file-backed. On error
// nothing is recorded and the file is reused at the same offset.
func (sf *SpillFile) append(kind byte, parts ...[]byte) (int, error) {
	var plen int64
	for _, p := range parts {
		plen += int64(len(p))
	}
	off := sf.size
	var crc uint32
	for _, p := range parts {
		crc = crc32.Update(crc, castagnoli, p)
	}
	var hdr [spillHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	hdr[4] = kind
	binary.LittleEndian.PutUint64(hdr[8:], uint64(plen))
	binary.LittleEndian.PutUint32(hdr[16:], crc)
	if _, err := sf.writeAt(hdr[:], off); err != nil {
		return 0, &SpillWriteError{Path: sf.path, Err: err}
	}
	pos := off + spillHdrSize
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if _, err := sf.writeAt(p, pos); err != nil {
			return 0, &SpillWriteError{Path: sf.path, Err: err}
		}
		pos += int64(len(p))
	}
	end := (pos + sf.align - 1) / sf.align * sf.align
	if err := sf.f.Truncate(end); err != nil {
		return 0, &SpillWriteError{Path: sf.path, Err: err}
	}
	id := len(sf.blocks)
	sf.blocks = append(sf.blocks, spillBlockMeta{off: off, length: plen, kind: kind})
	sf.size = end
	return id, nil
}

// mapPayload maps block id read-only and returns its payload bytes. The
// header is re-read from the file and validated first, so a truncated or
// corrupted spill file surfaces as ErrBadSpill instead of a fault. The
// returned slice stays valid until the SpillFile closes.
func (sf *SpillFile) mapPayload(id int, kind byte) ([]byte, error) {
	if id < 0 || id >= len(sf.blocks) {
		return nil, fmt.Errorf("%w: block %d out of range (%d blocks)", ErrBadSpill, id, len(sf.blocks))
	}
	meta := sf.blocks[id]
	var hdr [spillHdrSize]byte
	if _, err := sf.f.ReadAt(hdr[:], meta.off); err != nil {
		return nil, fmt.Errorf("%w: block %d header at offset %d: %v", ErrBadSpill, id, meta.off, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != spillMagic {
		return nil, fmt.Errorf("%w: block %d magic %#x, want %#x", ErrBadSpill, id, got, uint32(spillMagic))
	}
	if hdr[4] != kind || meta.kind != kind {
		return nil, fmt.Errorf("%w: block %d kind %d, want %d", ErrBadSpill, id, hdr[4], kind)
	}
	if got := int64(binary.LittleEndian.Uint64(hdr[8:])); got != meta.length {
		return nil, fmt.Errorf("%w: block %d payload length %d, want %d", ErrBadSpill, id, got, meta.length)
	}
	fi, err := sf.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrBadSpill, id, err)
	}
	if need := meta.off + spillHdrSize + meta.length; fi.Size() < need {
		return nil, fmt.Errorf("%w: block %d truncated: file is %d bytes, need %d", ErrBadSpill, id, fi.Size(), need)
	}
	m, err := mapSpillBlock(sf.f, meta.off, spillHdrSize+meta.length)
	if err != nil {
		return nil, err
	}
	payload := m.data[spillHdrSize : spillHdrSize+meta.length]
	// CRC32C over the payload catches silent bit rot, not just clobbered
	// headers or truncation.
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		m.release()
		return nil, fmt.Errorf("%w: block %d checksum %#x, want %#x", ErrBadSpill, id, got, want)
	}
	sf.maps = append(sf.maps, m)
	return payload, nil
}

// Close releases every mapping and the backing file. It must only run once
// no slice aliasing a mapping can be reached — the finalizer path, or test
// teardown of a store that is done.
func (sf *SpillFile) Close() error {
	runtime.SetFinalizer(sf, nil)
	for _, m := range sf.maps {
		m.release()
	}
	sf.maps = nil
	err := sf.f.Close()
	if !sf.removed {
		os.Remove(sf.path)
	}
	return err
}

// spillState is the spill tier shared by every segment of one store (or
// every shard of one worker process): the budget, the lazily created file,
// the LRU clock, and the first failure (after which spilling stops and the
// store stays consistent resident-only). All fields except clock are
// mutated only under the store's mutation exclusivity; clock is stamped
// atomically by concurrent readers.
type spillState struct {
	budget int64
	dir    string
	f      *SpillFile
	clock  uint64 // atomic LRU recency source
	err    error  // first spill failure; sticky

	// testWriteAt, when set, replaces the file's append write path (disk
	// full / I/O error injection).
	testWriteAt func(p []byte, off int64) (int, error)
}

func newSpillState(budget int64, dir string) *spillState {
	return &spillState{budget: budget, dir: dir}
}

// tick returns the next LRU recency stamp.
func (sp *spillState) tick() uint64 { return atomic.AddUint64(&sp.clock, 1) }

func (sp *spillState) file() (*SpillFile, error) {
	if sp.f == nil {
		f, err := newSpillFile(sp.dir)
		if err != nil {
			return nil, err
		}
		if sp.testWriteAt != nil {
			f.writeAt = sp.testWriteAt
		}
		sp.f = f
	}
	return sp.f, nil
}

// enforce spills globally-coldest resident units (frozen arena extents and
// CSR index blocks, across all segs) until their total resident bytes drop
// to budget. When every frozen unit is already spilled it seals the active
// arena tails into new extents and continues; the irreducible floor is the
// offset/gid tables and per-unit metadata, which always stay resident.
// Must run under the store's mutation exclusivity (the Generate discipline).
// A spill failure is recorded, returned, and stops all future spilling.
func (sp *spillState) enforce(budget int64, segs []*segment) error {
	if sp.err != nil {
		return sp.err
	}
	for {
		var resident int64
		for _, sg := range segs {
			resident += sg.residentBytes()
		}
		if resident <= budget {
			return nil
		}
		var (
			vsg    *segment
			vext   = -1
			vblk   = -1
			oldest uint64
			found  bool
		)
		for _, sg := range segs {
			for ei := range sg.exts {
				e := &sg.exts[ei]
				if e.mapped != nil {
					continue
				}
				if use := atomic.LoadUint64(&e.lastUse); !found || use < oldest {
					vsg, vext, vblk, oldest, found = sg, ei, -1, use, true
				}
			}
			for bi := range sg.blocks {
				b := &sg.blocks[bi]
				if b.spilled != nil {
					continue
				}
				if use := atomic.LoadUint64(&b.lastUse); !found || use < oldest {
					vsg, vext, vblk, oldest, found = sg, -1, bi, use, true
				}
			}
		}
		if !found {
			sealed := false
			for _, sg := range segs {
				if len(sg.buf) > 0 {
					sg.seal()
					sealed = true
				}
			}
			if !sealed {
				return nil // at the resident floor; nothing left to spill
			}
			continue
		}
		var err error
		if vext >= 0 {
			err = sp.spillExtent(&vsg.exts[vext])
		} else {
			err = sp.spillBlock(&vsg.blocks[vblk])
		}
		if err != nil {
			sp.err = err
			return err
		}
	}
}

// spillExtent moves one frozen arena extent's items onto the spill file,
// re-pointing data at the shared mapping. The heap copy is only dropped
// after the mapped bytes are in place, so failure leaves the extent
// resident and untouched.
func (sp *spillState) spillExtent(e *arenaExtent) error {
	f, err := sp.file()
	if err != nil {
		return err
	}
	id, err := f.append(spillKindArena, u32SpillBytes(e.data))
	if err != nil {
		return err
	}
	payload, err := f.mapPayload(id, spillKindArena)
	if err != nil {
		return err
	}
	if int64(len(payload)) != 4*int64(len(e.data)) {
		return fmt.Errorf("%w: arena block %d payload %d bytes, want %d", ErrBadSpill, id, len(payload), 4*len(e.data))
	}
	e.data = castSpillU32(payload)
	e.mapped = f.maps[len(f.maps)-1]
	return nil
}

// spillBlock moves one CSR index block's starts+ids onto the spill file as a
// single payload, re-pointing both slices at the shared mapping.
func (sp *spillState) spillBlock(b *csrBlock) error {
	f, err := sp.file()
	if err != nil {
		return err
	}
	id, err := f.append(spillKindIndex, i32SpillBytes(b.starts), i32SpillBytes(b.ids))
	if err != nil {
		return err
	}
	payload, err := f.mapPayload(id, spillKindIndex)
	if err != nil {
		return err
	}
	ns, ni := len(b.starts), len(b.ids)
	if int64(len(payload)) != 4*int64(ns+ni) {
		return fmt.Errorf("%w: index block %d payload %d bytes, want %d", ErrBadSpill, id, len(payload), 4*(ns+ni))
	}
	all := castSpillI32(payload)
	b.starts = all[:ns:ns]
	b.ids = all[ns : ns+ni]
	b.spilled = f.maps[len(f.maps)-1]
	return nil
}

// SpillStats describes a store's disk spill tier (zero value when the store
// was built without a spill budget).
type SpillStats struct {
	// Enabled reports whether the store has a spill tier.
	Enabled bool
	// BudgetBytes is the resident-byte threshold growth is enforced to.
	BudgetBytes int64
	// SpilledBytes is RR data currently aliasing the spill file (served
	// from the shared mapping / page cache, not from the heap).
	SpilledBytes int64
	// FileBytes is the spill file's on-disk size, block headers and
	// alignment padding included.
	FileBytes int64
	// Blocks is the number of spill blocks written (arena + index).
	Blocks int
	// Err is the first spill failure ("" = healthy); after one the store
	// stops spilling and stays consistent resident-only.
	Err string
}

func spillStatsOf(sp *spillState, segs []*segment) SpillStats {
	if sp == nil {
		return SpillStats{}
	}
	st := SpillStats{Enabled: true, BudgetBytes: sp.budget}
	for _, sg := range segs {
		st.SpilledBytes += sg.spilledBytes()
	}
	if sp.f != nil {
		st.FileBytes = sp.f.size
		st.Blocks = len(sp.f.blocks)
	}
	if sp.err != nil {
		st.Err = sp.err.Error()
	}
	return st
}

// Raw host-order byte images of arena/index slices. The spill file is
// process-private scratch, so writing host order and casting it straight
// back is correct on any endianness.

func u32SpillBytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func i32SpillBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func castSpillU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castSpillI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
