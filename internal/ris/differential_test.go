// Package ris_test hosts the differential harness of the Store interface:
// the full algorithms (SSA, D-SSA, the TVM budget sweep) are run on the
// flat Collection and on ShardedCollection across shard and worker counts,
// and every observable output — Seeds, Coverage, CoverageSamples, and the
// per-checkpoint traces — must be bit-identical. This is what turns the
// "sharding cannot change results" claim from a comment into a tested
// invariant: any drift in shard-boundary bookkeeping, postings dedup, or
// gain accounting shows up as a trace mismatch here.
package ris_test

import (
	"fmt"
	"slices"
	"testing"

	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/tvm"
)

// The differential grid of the issue: shard counts {1, 2, 3, 7} × per-shard
// worker counts {1, 4}. Shards ≥ 1 in the option structs selects a real
// ShardedCollection (1 is a genuine single-shard sharded store, not an
// alias for flat), so every grid point exercises the sharded code path;
// the flat reference uses Shards = 0.
var (
	diffShardCounts  = []int{1, 2, 3, 7}
	diffWorkerCounts = []int{1, 4}
)

func diffGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(220, 1400, 2.1, 99, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertResultsIdentical(t *testing.T, ctx string, ref, got *core.Result, refTrace, gotTrace []core.Checkpoint) {
	t.Helper()
	if !slices.Equal(ref.Seeds, got.Seeds) {
		t.Fatalf("%s: Seeds differ: %v vs %v", ctx, got.Seeds, ref.Seeds)
	}
	if got.Influence != ref.Influence {
		t.Fatalf("%s: Influence %v vs %v", ctx, got.Influence, ref.Influence)
	}
	if got.CoverageSamples != ref.CoverageSamples || got.TotalSamples != ref.TotalSamples {
		t.Fatalf("%s: samples %d/%d vs %d/%d", ctx,
			got.CoverageSamples, got.TotalSamples, ref.CoverageSamples, ref.TotalSamples)
	}
	if got.Iterations != ref.Iterations || got.HitCap != ref.HitCap {
		t.Fatalf("%s: iterations/hitcap %d/%v vs %d/%v", ctx,
			got.Iterations, got.HitCap, ref.Iterations, ref.HitCap)
	}
	if len(gotTrace) != len(refTrace) {
		t.Fatalf("%s: %d checkpoints vs %d", ctx, len(gotTrace), len(refTrace))
	}
	for i := range refTrace {
		if refTrace[i] != gotTrace[i] {
			t.Fatalf("%s: checkpoint %d differs:\n got %+v\nwant %+v", ctx, i, gotTrace[i], refTrace[i])
		}
	}
}

// runCore executes SSA or D-SSA with a trace recorder and the given store
// topology and sampling kernel, on a fixed (seed, k, epsilon) workload.
func runCore(t *testing.T, s *ris.Sampler, algo string, shards, workers int, kernel ris.Kernel) (*core.Result, []core.Checkpoint) {
	t.Helper()
	var trace []core.Checkpoint
	opt := core.Options{
		K: 8, Epsilon: 0.3, Seed: 71, Workers: 2,
		Shards: shards, ShardWorkers: workers, Kernel: kernel,
		Trace: func(cp core.Checkpoint) { trace = append(trace, cp) },
	}
	var res *core.Result
	var err error
	if algo == "ssa" {
		res, err = core.SSA(s, opt)
	} else {
		res, err = core.DSSA(s, opt)
	}
	if err != nil {
		t.Fatalf("%s shards=%d workers=%d: %v", algo, shards, workers, err)
	}
	return res, trace
}

// TestDifferentialSSAFlatVsSharded and its D-SSA sibling run the full
// stop-and-stare loops — doubling schedule, incremental max-coverage,
// index-driven (D-SSA) or stopping-rule (SSA) verification — on every
// store topology of the grid and demand bit-identical traces. The traces
// are compared checkpoint by checkpoint, so a divergence pinpoints the
// first iteration at which a store implementation leaked into results.
func TestDifferentialSSAFlatVsSharded(t *testing.T) {
	differentialCore(t, "ssa")
}

func TestDifferentialDSSAFlatVsSharded(t *testing.T) {
	differentialCore(t, "dssa")
}

// differentialCore runs the grid under BOTH sampling kernels: the compiled
// plan kernels (the default since PR 4) and the Bernoulli oracle. The flat
// vs sharded bit-identity must hold per kernel — kernels consume different
// PRNG sequences, so cross-kernel traces legitimately differ, but within a
// kernel no store topology may leak into results.
func differentialCore(t *testing.T, algo string) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []ris.Kernel{ris.KernelPlan, ris.KernelOracle} {
		refRes, refTrace := runCore(t, s, algo, 0, 0, kernel) // flat, default workers
		// The flat store must itself be worker-count independent.
		res1, trace1 := runCore(t, s, algo, 0, 0, kernel)
		assertResultsIdentical(t, fmt.Sprintf("%s/%v/flat-repeat", algo, kernel), refRes, res1, refTrace, trace1)
		for _, shards := range diffShardCounts {
			for _, workers := range diffWorkerCounts {
				ctx := fmt.Sprintf("%s/%v/shards=%d/shardWorkers=%d", algo, kernel, shards, workers)
				res, trace := runCore(t, s, algo, shards, workers, kernel)
				assertResultsIdentical(t, ctx, refRes, res, refTrace, trace)
			}
		}
	}
}

// TestDifferentialBudgetedSweepFlatVsSharded runs the cost-aware TVM sweep
// (WRIS sampling + incremental ratio greedy + KMN fix-up) over several
// budgets on one shared store, flat vs sharded, asserting identical seeds,
// benefit estimates, costs and sample counts per budget.
func TestDifferentialBudgetedSweepFlatVsSharded(t *testing.T) {
	g := diffGraph(t)
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = float64(v%9) + 0.25
	}
	inst, err := tvm.NewInstance(g, weights)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = float64((v*7)%4) + 1
	}
	budgets := []float64{3, 9, 27, 81}
	run := func(shards, workers int, kernel ris.Kernel) []*tvm.BudgetedResult {
		res, err := tvm.BudgetedSweep(inst, diffusion.LT, budgets, tvm.BudgetedOptions{
			Costs: costs, Epsilon: 0.2, Seed: 13, Workers: 2,
			Samples: 3000, Shards: shards, ShardWorkers: workers, Kernel: kernel,
		})
		if err != nil {
			t.Fatalf("sweep shards=%d workers=%d: %v", shards, workers, err)
		}
		return res
	}
	for _, kernel := range []ris.Kernel{ris.KernelPlan, ris.KernelOracle} {
		ref := run(0, 0, kernel)
		for _, shards := range diffShardCounts {
			for _, workers := range diffWorkerCounts {
				got := run(shards, workers, kernel)
				for i := range ref {
					ctx := fmt.Sprintf("sweep/%v/shards=%d/workers=%d/budget=%v", kernel, shards, workers, budgets[i])
					if !slices.Equal(ref[i].Seeds, got[i].Seeds) {
						t.Fatalf("%s: Seeds %v vs %v", ctx, got[i].Seeds, ref[i].Seeds)
					}
					if got[i].Benefit != ref[i].Benefit || got[i].Cost != ref[i].Cost ||
						got[i].Samples != ref[i].Samples {
						t.Fatalf("%s: benefit/cost/samples %v/%v/%d vs %v/%v/%d", ctx,
							got[i].Benefit, got[i].Cost, got[i].Samples,
							ref[i].Benefit, ref[i].Cost, ref[i].Samples)
					}
				}
			}
		}
	}
}

// TestDifferentialSolversOnShardedStore closes the loop below the
// algorithms: the incremental Solver and BudgetedSolver, fed checkpoints on
// a sharded store, must match from-scratch solves on a flat store of the
// same stream — the maxcover layer's own flat-vs-sharded differential.
func TestDifferentialSolversOnShardedStore(t *testing.T) {
	g := diffGraph(t)
	s, err := ris.NewSampler(g, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	flat := ris.NewCollection(s, 31, 2)
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = float64(v%3) + 1
	}
	for _, shards := range diffShardCounts {
		sharded := ris.NewShardedCollection(s, 31, shards, 2)
		solver := maxcover.NewSolver(sharded)
		budgeted := maxcover.NewBudgetedSolver(sharded, costs)
		for _, upto := range []int{60, 120, 240, 480, 900} {
			flat.GenerateTo(upto)
			sharded.GenerateTo(upto)
			got := solver.Solve(upto, 7)
			want := maxcover.Greedy(flat, upto, 7)
			if !slices.Equal(got.Seeds, want.Seeds) || got.Coverage != want.Coverage {
				t.Fatalf("shards=%d upto=%d: solver %v/%d vs flat %v/%d",
					shards, upto, got.Seeds, got.Coverage, want.Seeds, want.Coverage)
			}
			gotB := budgeted.Solve(upto, 25)
			wantB := maxcover.GreedyBudgeted(flat, upto, costs, 25)
			if !slices.Equal(gotB.Seeds, wantB.Seeds) || gotB.Coverage != wantB.Coverage || gotB.Cost != wantB.Cost {
				t.Fatalf("shards=%d upto=%d: budgeted %v/%d/%v vs flat %v/%d/%v",
					shards, upto, gotB.Seeds, gotB.Coverage, gotB.Cost,
					wantB.Seeds, wantB.Coverage, wantB.Cost)
			}
		}
	}
}
