package core

import (
	"stopandstare/internal/ris"
	"stopandstare/internal/rng"
	"stopandstare/internal/stats"
)

// estimator runs the Estimate-Inf procedure (Alg. 3): a stopping-rule
// Monte-Carlo estimator (after Dagum–Karp–Luby–Ross) of I(S) with one-sided
// relative-error guarantee Pr[I^c(S) ≤ (1+ε′)I(S)] ≥ 1−δ′ (Lemma 3). It is
// capped at Tmax samples — the cap is what keeps SSA's verification cost
// proportional to |R| and avoids the quadratic blow-up discussed under
// Alg. 3.
//
// The estimator consumes PRNG streams from the reserved verification id
// space (ris.VerifyStream), guaranteeing independence from the coverage
// collection as Alg. 1 line 10 requires ("independently generates another
// collection of RR sets R′").
type estimator struct {
	sampler *ris.Sampler
	seed    uint64
	nextID  uint64 // monotonically increasing across calls in one SSA run
	state   *ris.State
	mark    []bool
	buf     []uint32
	r       rng.Source // re-seeded per sample: no per-sample allocation
	total   int64      // RR sets generated across all calls
}

func newEstimator(s *ris.Sampler, seed uint64) *estimator {
	return &estimator{
		sampler: s,
		seed:    seed,
		state:   s.NewState(),
		mark:    make([]bool, s.Graph().NumNodes()),
	}
}

// estimate returns I^c(S) for the seed set, the number of RR sets used,
// and ok=false when Tmax was exhausted before Λ₂ successes (Alg. 3
// "return −1").
func (e *estimator) estimate(seeds []uint32, epsPrime, deltaPrime float64, tmax int64) (inf float64, used int64, ok bool) {
	lambda2 := stats.StoppingRuleThreshold(epsPrime, deltaPrime)
	for _, s := range seeds {
		e.mark[s] = true
	}
	defer func() {
		for _, s := range seeds {
			e.mark[s] = false
		}
	}()
	scale := e.sampler.Scale()
	cov := 0.0
	for t := int64(1); t <= tmax; t++ {
		ris.SeedVerifyStream(&e.r, e.seed, e.nextID)
		e.nextID++
		var setLen int
		e.buf, setLen, _ = e.sampler.AppendSample(&e.r, e.state, e.buf[:0])
		set := e.buf[len(e.buf)-setLen:]
		for _, v := range set {
			if e.mark[v] {
				cov++
				break
			}
		}
		if cov >= lambda2 {
			e.total += t
			return scale * lambda2 / float64(t), t, true
		}
	}
	e.total += tmax
	return -1, tmax, false
}
