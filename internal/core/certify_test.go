package core

import (
	"errors"
	"math"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/ris"
)

func TestCertifyMatchesExact(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	seeds := []uint32{0, 7}
	exact, err := diffusion.ExactIC(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		cert, err := Certify(s, seeds, 0.1, 0.01, seed)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Influence < (1-0.12)*exact || cert.Influence > (1+0.12)*exact {
			t.Fatalf("seed %d: certificate %.4f outside (1±ε)·%.4f", seed, cert.Influence, exact)
		}
		if cert.Samples <= 0 {
			t.Fatal("certificate without samples")
		}
	}
}

func TestCertifyMatchesMCOnMidGraph(t *testing.T) {
	g := midGraph(t, 2000, 10000, 157)
	s := sampler(t, g, diffusion.LT)
	seeds := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	mc, se, err := diffusion.Spread(g, diffusion.LT, seeds, diffusion.SpreadOptions{Runs: 30000, Seed: 163, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(s, seeds, 0.05, 0.01, 167)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cert.Influence-mc) > 0.07*mc+5*se {
		t.Fatalf("certificate %.2f vs MC %.2f±%.2f", cert.Influence, mc, se)
	}
}

func TestCertifyCheaperThanMCForSmallInfluence(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph certification comparison is slow; skipped in -short")
	}
	// For a low-influence seed in a large graph, certification needs
	// O(Υ·n/I) RR sets; just confirm it stays sane and terminates fast.
	g := midGraph(t, 5000, 25000, 173)
	s := sampler(t, g, diffusion.IC)
	// Pick a low-out-degree node.
	var v uint32
	for u := 0; u < 5000; u++ {
		if g.OutDegree(uint32(u)) == 0 {
			v = uint32(u)
			break
		}
	}
	cert, err := Certify(s, []uint32{v}, 0.2, 0.05, 179)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Influence < 0.8 || cert.Influence > 2.0 {
		t.Fatalf("isolated-ish node certificate %.3f want ≈ 1", cert.Influence)
	}
}

func TestCertifyValidation(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	if _, err := Certify(nil, []uint32{0}, 0.1, 0.1, 1); !errors.Is(err, ErrNilSampler) {
		t.Fatalf("nil sampler: %v", err)
	}
	if _, err := Certify(s, nil, 0.1, 0.1, 1); !errors.Is(err, ErrEmptySeeds) {
		t.Fatalf("empty seeds: %v", err)
	}
	if _, err := Certify(s, []uint32{0}, 0, 0.1, 1); err == nil {
		t.Fatal("eps=0 should fail")
	}
	if _, err := Certify(s, []uint32{99}, 0.1, 0.1, 1); err == nil {
		t.Fatal("out-of-range seed should fail")
	}
}

func TestCertifyWeightedFloor(t *testing.T) {
	// A seed set with near-zero benefit must be refused, not spin forever.
	g := midGraph(t, 500, 2500, 181)
	w := make([]float64, 500)
	w[13] = 1e9 // all benefit far away from the chosen seed
	ws, err := ris.NewWeightedSampler(g, diffusion.IC, w)
	if err != nil {
		t.Fatal(err)
	}
	// Find a node that cannot reach 13: any out-degree-0 node.
	v := uint32(0)
	found := false
	for u := 0; u < 500; u++ {
		if g.OutDegree(uint32(u)) == 0 && u != 13 {
			v = uint32(u)
			found = true
			break
		}
	}
	if !found {
		t.Skip("generated graph has no out-degree-0 node")
	}
	// Explicit small budget keeps the refusal path fast: Γ = 1e9 would
	// otherwise allow an enormous default cap.
	if _, err := Certify(ws, []uint32{v}, 0.3, 0.1, 191, 100000); err == nil {
		t.Fatal("benefit-zero certification should be refused")
	}
}
