package core

import (
	"math"
	"time"

	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// DSSA is the Dynamic Stop-and-Stare Algorithm (Alg. 4). It works on a
// single stream of RR sets: at iteration t the prefix R_t (first Λ·2^(t−1)
// sets) elects a candidate Ŝ_k by max-coverage and the disjoint suffix
// R^c_t (next Λ·2^(t−1) sets) verifies it, after which the whole stream is
// reused as the next prefix — no sample is ever discarded (fixing SSA's
// stated limitation). The precision split ε₁,ε₂,ε₃ is computed *from the
// data* at every checkpoint (lines 11–13), which is how D-SSA attains the
// type-2 minimum threshold (Theorem 6) without parameter tuning.
//
// DSSA is the one-shot entry point: a fresh store and solver per run. A
// query stream over one graph should run DSSAWith against a long-lived
// environment (stopandstare.Session), which extends the same no-sample-
// discarded principle ACROSS runs: the store only tops up past its current
// size and results stay bit-identical to a cold run at the same seed.
func DSSA(s *ris.Sampler, opt Options) (*Result, error) {
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	return DSSAWith(opt, newSoloExec(opt.newStore(s)))
}

// DSSAWith runs D-SSA inside the given execution environment. The store's
// sampler is used as-is (opt.Kernel is not re-applied). Every size the loop
// consumes — prefix, holdout window, reported sample counts — comes from
// the deterministic doubling schedule, never from Store.Len(), so a warm
// store yields bit-identical results.
func DSSAWith(opt Options, env Exec) (*Result, error) {
	start := time.Now()
	s := env.Store().Sampler()
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	nmax, tmaxIter := opt.thresholds(s)
	eps, delta := opt.Epsilon, opt.Delta
	c := stats.OneMinusInvE

	lnInv := math.Log(3 * float64(tmaxIter) / delta)   // ln(3·tmax/δ)
	lambda := stats.UpsilonLn(eps, lnInv)              // Λ  (line 3)
	lambda1 := 1 + (1+eps)*stats.UpsilonLn(eps, lnInv) // Λ₁ (line 3)
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = tmaxIter + 8
	}

	scale := s.Scale()

	res := &Result{}
	var mc maxcover.Result
	halfUnit := ceilPos(lambda)
	var streamLen int // |R_t ∪ R^c_t| = 2·half, per schedule
	for t := 1; ; t++ {
		res.Iterations = t
		half := boundedShift(halfUnit, t-1) // |R_t| = Λ·2^(t−1)
		streamLen = 2 * half
		res.Grew = env.Ensure(streamLen) || res.Grew // lines 6–7: R_t ++ R^c_t
		var covC int64
		locked(env, func() {
			// Line 8: candidate from the first half.
			mc = env.Solve(half, opt.K)
			// Index-driven verification: Cov over the holdout R^c_t is a union
			// walk of the candidates' postings in [half, 2·half) — O(Σ seed
			// postings in the window), not a rescan of the window's RR sets.
			covC = env.Coverage(mc.Seeds, half, streamLen)
		})
		iHat := mc.Influence(scale)
		passed := false
		// Line 9: condition D1 — stopping-rule check on the holdout.
		if float64(covC) >= lambda1 {
			nt := float64(half) // |R^c_t|
			ic := scale * float64(covC) / nt
			// Lines 11–13: dynamic precision parameters. Using the actual
			// |R^c_t| (instead of the idealised Λ·2^(t−1)) absorbs ceiling
			// effects; the two coincide when Λ is integral.
			e1 := iHat/ic - 1
			e2 := math.Sqrt((2 + 2*eps/3) * lnInv * (1 + eps) * scale / (ic * nt))
			e3 := math.Sqrt((2 + 2*eps/3) * lnInv * (1 + eps) * (c - eps) * scale / ((1 + eps/3) * ic * nt))
			// Line 14: ε_t = (ε₁+ε₂+ε₁ε₂)(1−1/e−ε) + (1−1/e)ε₃.
			epsT := (e1+e2+e1*e2)*(c-eps) + c*e3
			res.Eps1, res.Eps2, res.Eps3, res.EpsilonT = e1, e2, e3, epsT
			// Line 15: condition D2.
			passed = epsT <= eps
		}
		if opt.Trace != nil {
			opt.Trace(Checkpoint{Iteration: t, Samples: int64(streamLen),
				Coverage: mc.Coverage, Influence: iHat, Passed: passed,
				EpsilonT: res.EpsilonT})
		}
		if passed {
			break
		}
		// Line 17: cap on |R_t|.
		if float64(half) >= nmax || t >= maxIter {
			res.HitCap = true
			break
		}
	}
	res.Seeds = mc.Seeds
	res.Influence = mc.Influence(scale)
	res.CoverageSamples = int64(streamLen)
	res.VerifySamples = 0 // the verification half is reused, never discarded
	res.TotalSamples = res.CoverageSamples
	locked(env, func() { res.MemoryBytes = env.Store().Bytes() })
	res.Elapsed = time.Since(start)
	return res, nil
}

// boundedShift returns unit·2^sh with overflow protection.
func boundedShift(unit, sh int) int {
	v := unit
	for i := 0; i < sh; i++ {
		if v >= growthCap {
			return growthCap
		}
		v *= 2
	}
	return v
}
