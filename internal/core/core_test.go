package core

import (
	"errors"
	"math"
	"testing"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

func tinyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	// 10 nodes, 14 edges: small enough for exhaustive OPT computation.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 0.7}, {U: 0, V: 2, W: 0.5}, {U: 1, V: 3, W: 0.6},
		{U: 2, V: 3, W: 0.4}, {U: 3, V: 4, W: 0.8}, {U: 4, V: 5, W: 0.3},
		{U: 5, V: 6, W: 0.5}, {U: 6, V: 0, W: 0.2}, {U: 7, V: 8, W: 0.9},
		{U: 8, V: 9, W: 0.6}, {U: 9, V: 7, W: 0.1}, {U: 2, V: 7, W: 0.3},
		{U: 1, V: 9, W: 0.2}, {U: 4, V: 8, W: 0.4},
	}
	g, err := graph.FromEdges(10, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func midGraph(t testing.TB, n int, m int64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(n, m, 2.1, seed, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampler(t testing.TB, g *graph.Graph, model diffusion.Model) *ris.Sampler {
	t.Helper()
	s, err := ris.NewSampler(g, model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exactOPT enumerates all size-k seed sets and returns the optimum exact
// influence (IC model, tiny graphs only).
func exactOPT(t *testing.T, g *graph.Graph, model diffusion.Model, k int) (float64, []uint32) {
	t.Helper()
	n := g.NumNodes()
	best := -1.0
	var bestSet []uint32
	var rec func(start int, chosen []uint32)
	rec = func(start int, chosen []uint32) {
		if len(chosen) == k {
			v, err := diffusion.Exact(g, model, chosen)
			if err != nil {
				t.Fatal(err)
			}
			if v > best {
				best = v
				bestSet = append([]uint32(nil), chosen...)
			}
			return
		}
		if start >= n {
			return
		}
		rec(start+1, append(chosen, uint32(start)))
		rec(start+1, chosen)
	}
	rec(0, nil)
	return best, bestSet
}

func TestOptionValidation(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	cases := []Options{
		{K: 0, Epsilon: 0.1},
		{K: 11, Epsilon: 0.1},
		{K: 2, Epsilon: 0},
		{K: 2, Epsilon: 0.7}, // ≥ 1−1/e
		{K: 2, Epsilon: 0.1, Delta: 2},
	}
	for i, opt := range cases {
		if _, err := SSA(s, opt); err == nil {
			t.Fatalf("case %d: SSA should reject %+v", i, opt)
		}
		if _, err := DSSA(s, opt); err == nil {
			t.Fatalf("case %d: DSSA should reject %+v", i, opt)
		}
	}
	if _, err := SSA(nil, Options{K: 1, Epsilon: 0.1}); !errors.Is(err, ErrNilSampler) {
		t.Fatalf("nil sampler: %v", err)
	}
}

func TestEpsSplitDefaultsMatchPaper(t *testing.T) {
	// ε = 0.1 ⇒ ε₂ = ε₃ = ε/(2(1−1/e)) ≈ 2/25, ε₁ ≈ 1/78 (Eq. 21).
	opt := Options{Epsilon: 0.1}
	e1, e2, e3, err := opt.epsSplit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-0.0791) > 0.001 || e2 != e3 {
		t.Fatalf("e2=%v e3=%v want ≈ 2/25", e2, e3)
	}
	if e1 < 0.008 || e1 > 0.02 {
		t.Fatalf("e1=%v want ≈ 1/78", e1)
	}
	// Eq. 18 must hold with equality.
	c := stats.OneMinusInvE
	lhs := c * (e1 + e2 + e1*e2 + e3) / ((1 + e1) * (1 + e2))
	if math.Abs(lhs-0.1) > 1e-9 {
		t.Fatalf("Eq. 18 not tight: %v", lhs)
	}
}

func TestEpsSplitCustomValidated(t *testing.T) {
	opt := Options{Epsilon: 0.1, Eps1: 5, Eps2: 0.5, Eps3: 0.5}
	if _, _, _, err := opt.epsSplit(); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("loose split should be rejected: %v", err)
	}
	ok := Options{Epsilon: 0.3, Eps1: 0.01, Eps2: 0.1, Eps3: 0.1}
	if _, _, _, err := ok.epsSplit(); err != nil {
		t.Fatalf("valid split rejected: %v", err)
	}
}

func TestSSAGuaranteeTinyIC(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	k, eps := 2, 0.3
	opt, _ := exactOPT(t, g, diffusion.IC, k)
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := SSA(s, Options{K: k, Epsilon: eps, Delta: 0.05, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != k {
			t.Fatalf("returned %d seeds", len(res.Seeds))
		}
		got, err := diffusion.ExactIC(g, res.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 - 1/math.E - eps) * opt
		if got < bound {
			t.Fatalf("seed %d: I(Ŝ)=%.4f below (1-1/e-ε)·OPT=%.4f", seed, got, bound)
		}
	}
}

func TestDSSAGuaranteeTinyIC(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	k, eps := 2, 0.3
	opt, _ := exactOPT(t, g, diffusion.IC, k)
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := DSSA(s, Options{K: k, Epsilon: eps, Delta: 0.05, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := diffusion.ExactIC(g, res.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 - 1/math.E - eps) * opt
		if got < bound {
			t.Fatalf("seed %d: I(Ŝ)=%.4f below bound %.4f", seed, got, bound)
		}
	}
}

func TestSSAGuaranteeTinyLT(t *testing.T) {
	// LT variant on a sparser graph to keep exact enumeration cheap.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 0.6}, {U: 1, V: 2, W: 0.5}, {U: 2, V: 3, W: 0.7},
		{U: 3, V: 4, W: 0.4}, {U: 0, V: 5, W: 0.3}, {U: 5, V: 6, W: 0.8},
		{U: 6, V: 7, W: 0.2},
	}
	g, err := graph.FromEdges(8, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := sampler(t, g, diffusion.LT)
	k, eps := 2, 0.3
	opt, _ := exactOPT(t, g, diffusion.LT, k)
	res, err := SSA(s, Options{K: k, Epsilon: eps, Delta: 0.05, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := diffusion.ExactLT(g, res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if bound := (1 - 1/math.E - eps) * opt; got < bound {
		t.Fatalf("LT: I(Ŝ)=%.4f below bound %.4f", got, bound)
	}
	res2, err := DSSA(s, Options{K: k, Epsilon: eps, Delta: 0.05, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := diffusion.ExactLT(g, res2.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if bound := (1 - 1/math.E - eps) * opt; got2 < bound {
		t.Fatalf("LT D-SSA: I(Ŝ)=%.4f below bound %.4f", got2, bound)
	}
}

func TestInfluenceEstimateAccuracy(t *testing.T) {
	// The reported Î(Ŝ) must agree with forward MC within the ε envelope.
	g := midGraph(t, 1000, 5000, 3)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := sampler(t, g, model)
		res, err := DSSA(s, Options{K: 10, Epsilon: 0.1, Seed: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		mc, se, err := diffusion.Spread(g, model, res.Seeds, diffusion.SpreadOptions{Runs: 20000, Seed: 5, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Influence-mc) > 0.15*mc+5*se {
			t.Fatalf("%v: Î=%.2f vs MC=%.2f±%.2f", model, res.Influence, mc, se)
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := midGraph(t, 800, 4000, 7)
	s := sampler(t, g, diffusion.IC)
	opt := Options{K: 5, Epsilon: 0.2, Seed: 11}
	opt.Workers = 1
	r1, err := SSA(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	r4, err := SSA(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalSamples != r4.TotalSamples || r1.Iterations != r4.Iterations {
		t.Fatalf("SSA not deterministic: %d/%d vs %d/%d samples/iters",
			r1.TotalSamples, r1.Iterations, r4.TotalSamples, r4.Iterations)
	}
	for i := range r1.Seeds {
		if r1.Seeds[i] != r4.Seeds[i] {
			t.Fatal("SSA seed sets differ across worker counts")
		}
	}
	d1, err := DSSA(s, Options{K: 5, Epsilon: 0.2, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := DSSA(s, Options{K: 5, Epsilon: 0.2, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Seeds {
		if d1.Seeds[i] != d4.Seeds[i] {
			t.Fatal("DSSA seed sets differ across worker counts")
		}
	}
}

func TestDSSAEpsilonTAtTermination(t *testing.T) {
	g := midGraph(t, 1500, 8000, 13)
	s := sampler(t, g, diffusion.LT)
	res, err := DSSA(s, Options{K: 20, Epsilon: 0.15, Seed: 17, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitCap && res.EpsilonT > 0.15+1e-12 {
		t.Fatalf("terminated with ε_t=%.4f > ε", res.EpsilonT)
	}
	if res.VerifySamples != 0 {
		t.Fatal("D-SSA must not discard verification samples")
	}
	if res.TotalSamples != res.CoverageSamples {
		t.Fatal("D-SSA total = coverage samples")
	}
}

func TestSSACountsVerifySamples(t *testing.T) {
	g := midGraph(t, 1500, 8000, 13)
	s := sampler(t, g, diffusion.LT)
	res, err := SSA(s, Options{K: 20, Epsilon: 0.15, Seed: 17, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifySamples <= 0 {
		t.Fatal("SSA should have generated Estimate-Inf samples")
	}
	if res.TotalSamples != res.CoverageSamples+res.VerifySamples {
		t.Fatal("sample accounting broken")
	}
	if res.MemoryBytes <= 0 {
		t.Fatal("memory accounting missing")
	}
}

func TestHitCapPath(t *testing.T) {
	g := midGraph(t, 500, 2500, 19)
	s := sampler(t, g, diffusion.IC)
	// An absurd OPT lower bound shrinks Nmax below the first checkpoint, so
	// the run must exit via the cap and still return k seeds.
	res, err := SSA(s, Options{K: 3, Epsilon: 0.2, Seed: 23, Workers: 2, OptLowerBound: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitCap {
		t.Fatal("expected cap exit")
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("cap exit must still return k seeds, got %d", len(res.Seeds))
	}
	resD, err := DSSA(s, Options{K: 3, Epsilon: 0.2, Seed: 23, Workers: 2, OptLowerBound: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	if !resD.HitCap || len(resD.Seeds) != 3 {
		t.Fatalf("DSSA cap exit wrong: hit=%v seeds=%d", resD.HitCap, len(resD.Seeds))
	}
}

func TestMaxIterationsCap(t *testing.T) {
	g := midGraph(t, 500, 2500, 29)
	s := sampler(t, g, diffusion.IC)
	res, err := SSA(s, Options{K: 3, Epsilon: 0.1, Seed: 1, Workers: 1, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("iterations %d exceeded cap", res.Iterations)
	}
}

func TestDeltaDefaultsToOneOverN(t *testing.T) {
	g := tinyGraph(t)
	s := sampler(t, g, diffusion.IC)
	o := Options{K: 1, Epsilon: 0.3}
	if err := o.normalize(s); err != nil {
		t.Fatal(err)
	}
	if o.Delta != 0.1 {
		t.Fatalf("delta default %v want 1/n = 0.1", o.Delta)
	}
}

func TestEstimatorOneSidedBound(t *testing.T) {
	// Lemma 3: Pr[I^c(S) ≤ (1+ε′)I(S)] ≥ 1−δ′; check the estimate lands
	// within a generous window of the MC truth.
	g := midGraph(t, 1000, 5000, 31)
	s := sampler(t, g, diffusion.IC)
	seeds := []uint32{1, 2, 3, 4, 5}
	mc, _, err := diffusion.Spread(g, diffusion.IC, seeds, diffusion.SpreadOptions{Runs: 30000, Seed: 37, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	est := newEstimator(s, 41)
	ic, used, ok := est.estimate(seeds, 0.1, 0.01, 1<<40)
	if !ok {
		t.Fatal("estimate should not hit the cap")
	}
	if used <= 0 || est.total != used {
		t.Fatalf("sample accounting: used=%d total=%d", used, est.total)
	}
	if ic > (1+0.1)*mc*1.05 {
		t.Fatalf("I^c=%.2f far above (1+ε′)I=%.2f", ic, (1+0.1)*mc)
	}
	if ic < mc*0.8 {
		t.Fatalf("I^c=%.2f far below truth %.2f", ic, mc)
	}
}

func TestEstimatorCapReturnsNotOK(t *testing.T) {
	g := midGraph(t, 1000, 5000, 43)
	s := sampler(t, g, diffusion.IC)
	est := newEstimator(s, 47)
	if _, used, ok := est.estimate([]uint32{0}, 0.05, 0.001, 3); ok {
		t.Fatal("3-sample cap must fail for a tight stopping rule")
	} else if used != 3 {
		t.Fatalf("used %d want 3", used)
	}
}

func TestEstimatorMarkResetBetweenCalls(t *testing.T) {
	g := midGraph(t, 300, 1500, 53)
	s := sampler(t, g, diffusion.IC)
	est := newEstimator(s, 59)
	_, _, _ = est.estimate([]uint32{1, 2, 3}, 0.3, 0.1, 10000)
	for v, m := range est.mark {
		if m {
			t.Fatalf("mark %d left set after estimate", v)
		}
	}
}

func TestSSAFasterThanCap(t *testing.T) {
	// On a graph with clear hubs, SSA/D-SSA must terminate via the
	// statistical conditions well before Nmax.
	g := midGraph(t, 3000, 15000, 61)
	s := sampler(t, g, diffusion.LT)
	res, err := SSA(s, Options{K: 10, Epsilon: 0.2, Seed: 67, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitCap {
		t.Fatal("SSA hit the cap on an easy instance")
	}
	nmax, _ := (&Options{K: 10, Epsilon: 0.2, Delta: 1.0 / 3000, OptLowerBound: 10}).thresholds(s)
	if float64(res.CoverageSamples) >= nmax {
		t.Fatalf("samples %d not below Nmax %.0f", res.CoverageSamples, nmax)
	}
}

func TestThresholdsMagnitude(t *testing.T) {
	g := midGraph(t, 1000, 5000, 71)
	s := sampler(t, g, diffusion.IC)
	o := Options{K: 10, Epsilon: 0.1, Delta: 0.001, OptLowerBound: 10}
	nmax, imax := o.thresholds(s)
	if nmax <= 0 || imax < 1 {
		t.Fatalf("nmax=%v imax=%d", nmax, imax)
	}
	// Nmax grows as k shrinks.
	o2 := Options{K: 1, Epsilon: 0.1, Delta: 0.001, OptLowerBound: 1}
	nmax2, _ := o2.thresholds(s)
	if nmax2 <= nmax {
		t.Fatal("Nmax should grow when k (and OPT lower bound) shrink")
	}
}
