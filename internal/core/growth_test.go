package core

import "testing"

// TestBoundedGrowthHelpers pins the overflow guards of the doubling
// schedules: both helpers saturate at growthCap (derived from the
// platform's int size — the old 1<<40 literal overflowed on 32-bit) and
// never go non-positive, however often they are applied.
func TestBoundedGrowthHelpers(t *testing.T) {
	if got := boundedShift(5, 3); got != 40 {
		t.Fatalf("boundedShift(5,3) = %d, want 40", got)
	}
	if got := boundedShift(3, 500); got != growthCap {
		t.Fatalf("boundedShift must saturate at growthCap, got %d", got)
	}
	if got := boundedDouble(7); got != 14 {
		t.Fatalf("boundedDouble(7) = %d, want 14", got)
	}
	if got := boundedDouble(0); got != 1 {
		t.Fatalf("boundedDouble(0) = %d, want 1", got)
	}
	if got := boundedDouble(growthCap + 1); got != growthCap+1 {
		t.Fatalf("boundedDouble past the cap must not grow, got %d", got)
	}
	v := 1
	for i := 0; i < 200; i++ {
		v = boundedDouble(v)
		if v <= 0 {
			t.Fatalf("boundedDouble overflowed to %d after %d doublings", v, i+1)
		}
	}
	if v < growthCap || boundedDouble(v) != v {
		t.Fatalf("repeated doubling should reach a fixed point at/just past growthCap, got %d", v)
	}
	// D-SSA generates 2·half with half ≤ the cap's fixed point; that
	// product must stay within int range (the cap leaves two bits of
	// headroom by construction).
	if 2*v <= 0 {
		t.Fatalf("2·%d overflowed", v)
	}
}
