package core

import (
	"stopandstare/internal/stats"
)

// NetworkRegime classifies a network by size for the §4.2 ε-split
// guidance: the paper observes that SSA performs best with ε₁ > ε ≈ ε₃ on
// small networks, ε₁ ≈ ε ≈ ε₃ on moderate ones (a few million edges), and
// ε₁ ≪ ε₂ ≈ ε₃ on large ones (hundreds of millions of edges).
type NetworkRegime int

// Regimes per §4.2.
const (
	SmallNetwork    NetworkRegime = iota // below ~1M edges
	ModerateNetwork                      // a few million edges
	LargeNetwork                         // hundreds of millions of edges
)

// RegimeFor buckets an edge count into the paper's three regimes.
func RegimeFor(edges int64) NetworkRegime {
	switch {
	case edges < 1_000_000:
		return SmallNetwork
	case edges < 100_000_000:
		return ModerateNetwork
	default:
		return LargeNetwork
	}
}

// RecommendedSplit returns an (ε₁,ε₂,ε₃) satisfying Eq. 18 with equality,
// shaped by the §4.2 guidance for the network regime. ε₂ = ε₃ are solved
// from Eq. 18 once ε₁ is fixed to the regime's ratio of ε (clamped to the
// feasible range ε₁ < ε/(1−1/e−ε)). Returns ok=false if ε is outside
// (0, 1−1/e).
func RecommendedSplit(eps float64, regime NetworkRegime) (e1, e2, e3 float64, ok bool) {
	c := stats.OneMinusInvE
	if !(eps > 0 && eps < c) {
		return 0, 0, 0, false
	}
	var ratio float64
	switch regime {
	case SmallNetwork:
		ratio = 2 // ε₁ > ε
	case ModerateNetwork:
		ratio = 1 // ε₁ ≈ ε
	default:
		ratio = 0.125 // ε₁ ≪ ε₂ ≈ ε₃
	}
	e1 = ratio * eps
	// Feasibility of ε₂ = ε₃ = x > 0 in Eq. 18 requires
	// ε(1+ε₁) > (1−1/e)·ε₁, i.e. ε₁ < ε/(1−1/e−ε).
	if limit := eps / (c - eps); e1 >= limit {
		e1 = 0.9 * limit
	}
	// Solve (1−1/e)(ε₁ + 2x + ε₁x) = ε(1+ε₁)(1+x) for x.
	num := eps*(1+e1) - c*e1
	den := 2*c + c*e1 - eps*(1+e1)
	if num <= 0 || den <= 0 {
		return 0, 0, 0, false
	}
	x := num / den
	if x <= 0 || x >= 1 {
		return 0, 0, 0, false
	}
	return e1, x, x, true
}
