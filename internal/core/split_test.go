package core

import (
	"math"
	"testing"
	"testing/quick"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/stats"
)

func TestRegimeFor(t *testing.T) {
	if RegimeFor(59_000) != SmallNetwork {
		t.Fatal("NetHEPT is small")
	}
	if RegimeFor(2_000_000) != ModerateNetwork {
		t.Fatal("DBLP is moderate")
	}
	if RegimeFor(1_500_000_000) != LargeNetwork {
		t.Fatal("Twitter is large")
	}
}

func TestRecommendedSplitSatisfiesEq18(t *testing.T) {
	c := stats.OneMinusInvE
	f := func(raw uint16, regimeRaw uint8) bool {
		eps := 0.01 + float64(raw%600)/1000
		if eps >= c {
			return true
		}
		regime := NetworkRegime(regimeRaw % 3)
		e1, e2, e3, ok := RecommendedSplit(eps, regime)
		if !ok {
			return false
		}
		lhs := c * (e1 + e2 + e1*e2 + e3) / ((1 + e1) * (1 + e2))
		return math.Abs(lhs-eps) < 1e-9 && e1 > 0 && e2 > 0 && e2 < 1 && e3 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendedSplitRegimeShapes(t *testing.T) {
	eps := 0.2 // wide enough that all three ratios are feasible unclamped
	e1S, _, _, _ := RecommendedSplit(eps, SmallNetwork)
	e1M, _, _, _ := RecommendedSplit(eps, ModerateNetwork)
	e1L, e2L, _, _ := RecommendedSplit(eps, LargeNetwork)
	if !(e1S > e1M && e1M > e1L) {
		t.Fatalf("ε₁ ordering wrong: %v %v %v", e1S, e1M, e1L)
	}
	if e1L >= e2L {
		t.Fatal("large networks want ε₁ ≪ ε₂")
	}
}

func TestRecommendedSplitRejectsBadEps(t *testing.T) {
	if _, _, _, ok := RecommendedSplit(0, SmallNetwork); ok {
		t.Fatal("eps=0 should fail")
	}
	if _, _, _, ok := RecommendedSplit(0.7, SmallNetwork); ok {
		t.Fatal("eps beyond 1-1/e should fail")
	}
}

func TestRecommendedSplitRunsInSSA(t *testing.T) {
	g := midGraph(t, 800, 4000, 281)
	s := sampler(t, g, diffusion.LT)
	e1, e2, e3, ok := RecommendedSplit(0.2, SmallNetwork)
	if !ok {
		t.Fatal("split infeasible")
	}
	res, err := SSA(s, Options{K: 5, Epsilon: 0.2, Seed: 283, Workers: 2,
		Eps1: e1, Eps2: e2, Eps3: e3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
}
