package core

import (
	"math"
	"time"

	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// SSA is the Stop-and-Stare Algorithm (Alg. 1). It returns a
// (1−1/e−ε)-approximate seed set with probability ≥ 1−δ using, with high
// probability, O(N⁽¹⁾min) RR sets — a constant factor of a type-1 minimum
// threshold (Theorem 3).
//
// Structure: keep a coverage collection R that doubles at each checkpoint;
// at each checkpoint solve max-coverage for a candidate Ŝ_k and "stare":
// (C1) is there enough coverage to trust Î(S*_k) within ε₃, and (C2) does
// an independent stopping-rule estimate I^c(Ŝ_k) (within ε₂) agree with
// Î(Ŝ_k) up to (1+ε₁)? Stop at the first checkpoint passing both.
//
// SSA is the one-shot entry point: a fresh store and solver per run. A
// query stream over one graph should run SSAWith against a long-lived
// environment (stopandstare.Session) instead, which reuses the RR stream —
// bit-identical results, near-zero sampling cost on warm queries.
func SSA(s *ris.Sampler, opt Options) (*Result, error) {
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	return SSAWith(opt, newSoloExec(opt.newStore(s)))
}

// SSAWith runs SSA inside the given execution environment. The store's
// sampler is used as-is (opt.Kernel is not re-applied — the environment's
// store is already bound to its kernel). Every size the loop consumes comes
// from the deterministic doubling schedule, never from Store.Len(), so a
// pre-grown warm store yields results bit-identical to a cold run at the
// same seed.
func SSAWith(opt Options, env Exec) (*Result, error) {
	start := time.Now()
	s := env.Store().Sampler()
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	e1, e2, e3, err := opt.epsSplit()
	if err != nil {
		return nil, err
	}
	nmax, imax := opt.thresholds(s)
	delta := opt.Delta
	lnInv := math.Log(3 * float64(imax) / delta) // ln(3·imax/δ)

	lambda := stats.UpsilonLn(opt.Epsilon, lnInv)               // Λ  (line 3)
	lambda1 := (1 + e1) * (1 + e2) * stats.UpsilonLn(e3, lnInv) // Λ₁ (line 3)
	deltaPrime := delta / (3 * float64(imax))                   // δ′ for Estimate-Inf
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = imax + 8
	}

	// size tracks the schedule |R| = Λ·2^it. The cold store's Len always
	// equals it; a warm store may hold more, which the loop never observes.
	size := ceilPos(lambda)
	res := &Result{Eps1: e1, Eps2: e2, Eps3: e3}
	res.Grew = env.Ensure(size) // line 4
	est := newEstimator(s, opt.Seed)
	scale := s.Scale()

	var mc maxcover.Result
	for it := 1; ; it++ {
		res.Iterations = it
		// Line 6: double the size of R.
		size = boundedDouble(size)
		res.Grew = env.Ensure(size) || res.Grew
		// Line 7: find the candidate solution.
		locked(env, func() { mc = env.Solve(size, opt.K) })
		iHat := mc.Influence(scale)
		passed := false
		// Line 8: condition C1 — enough coverage to bound Î(S*_k).
		if float64(mc.Coverage) >= lambda1 {
			// Line 9: Tmax = 2|R|·(1+ε₂)/(1−ε₂)·ε₃²/ε₂².
			tmax := int64(math.Ceil(2 * float64(size) * (1 + e2) / (1 - e2) * (e3 * e3) / (e2 * e2)))
			if tmax < 1 {
				tmax = 1
			}
			// Line 10: independent stopping-rule estimate.
			ic, _, ok := est.estimate(mc.Seeds, e2, deltaPrime, tmax)
			// Line 11: condition C2 — the two estimates agree.
			passed = ok && iHat <= (1+e1)*ic
		}
		if opt.Trace != nil {
			opt.Trace(Checkpoint{Iteration: it, Samples: int64(size),
				Coverage: mc.Coverage, Influence: iHat, Passed: passed})
		}
		if passed {
			break
		}
		// Line 13: safety cap.
		if float64(size) >= nmax || it >= maxIter {
			res.HitCap = true
			break
		}
	}
	res.Seeds = mc.Seeds
	res.Influence = mc.Influence(scale)
	res.CoverageSamples = int64(size)
	res.VerifySamples = est.total
	res.TotalSamples = res.CoverageSamples + res.VerifySamples
	locked(env, func() { res.MemoryBytes = env.Store().Bytes() })
	res.Elapsed = time.Since(start)
	return res, nil
}

// ceilPos converts a positive float threshold to a sample count ≥ 1.
func ceilPos(x float64) int {
	if x < 1 {
		return 1
	}
	return int(math.Ceil(x))
}

// boundedDouble doubles n with overflow protection.
func boundedDouble(n int) int {
	if n <= 0 {
		return 1
	}
	if n >= growthCap {
		return n
	}
	return 2 * n
}
