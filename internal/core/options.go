// Package core implements the paper's contribution: the Stop-and-Stare
// Algorithm (SSA, Alg. 1) with its Estimate-Inf stopping-rule verifier
// (Alg. 3), and the Dynamic Stop-and-Stare Algorithm (D-SSA, Alg. 4).
//
// Both return a (1−1/e−ε)-approximate seed set with probability ≥ 1−δ and
// stop at exponential checkpoints as soon as there is statistical evidence
// of solution quality — SSA within a constant factor of a type-1 minimum
// threshold, D-SSA within a constant factor of the type-2 minimum threshold
// (Defs. 5–6, Theorems 3 and 6).
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// Options configures SSA and D-SSA.
type Options struct {
	// K is the seed-set budget (1 ≤ K ≤ n).
	K int
	// Epsilon is the approximation slack: the guarantee is (1−1/e−ε).
	// Must lie in (0, 1−1/e); the paper's experiments use 0.1.
	Epsilon float64
	// Delta is the failure probability; the paper uses 1/n. Defaults to
	// 1/n when zero.
	Delta float64
	// Eps1, Eps2, Eps3 optionally fix SSA's ε-split (must satisfy Eq. 18).
	// All-zero selects the paper's recommended setting (Eqs. 19–20).
	// Ignored by D-SSA, which chooses them dynamically.
	Eps1, Eps2, Eps3 float64
	// Seed drives all randomness; runs are deterministic in (Seed, Workers-
	// independent).
	Seed uint64
	// Workers bounds sampling parallelism; ≤0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical at any worker
	// count, so the default costs nothing in reproducibility.
	Workers int
	// Kernel selects the RR sampling implementation: the compiled plan
	// kernels (default) or the Bernoulli oracle (ris.KernelOracle). The two
	// draw from the same distribution but consume different PRNG sequences,
	// so results are deterministic per kernel, not across kernels.
	Kernel ris.Kernel
	// Shards ≥ 1 stores RR sets in an id-sharded store
	// (ris.ShardedCollection) generated shard-parallel; ≤0 selects the
	// flat ris.Collection. Results are bit-identical at any shard count —
	// sharding only changes the memory topology.
	Shards int
	// ShardWorkers bounds per-shard generation parallelism when Shards ≥ 1;
	// ≤0 derives max(1, Workers/Shards) so the total worker budget holds.
	ShardWorkers int
	// RemoteWorkers lists shard-worker addresses; non-empty stores RR sets
	// in a remote-sharded store (one shard per worker process), overriding
	// Shards. Results remain bit-identical to every in-process topology.
	RemoteWorkers []string
	// RemoteDial overrides the remote-shard transport (tests inject
	// net.Pipe-backed dialers).
	RemoteDial ris.DialFunc
	// RemoteTimeout bounds one remote-shard RPC exchange; ≤0 selects
	// ris.DefaultRemoteTimeout.
	RemoteTimeout time.Duration
	// SpillBudgetBytes > 0 enables the store's disk spill tier (see
	// ris.StoreOptions.SpillBudgetBytes). Bit-identical at every budget.
	SpillBudgetBytes int64
	// SpillDir is where spill files are created ("" ⇒ the OS temp dir).
	SpillDir string
	// OptLowerBound is a known lower bound on OPT_k used only to size the
	// Nmax safety cap. Defaults to K for IM (each seed influences at least
	// itself); the TVM wrapper passes the top-K benefit sum.
	OptLowerBound float64
	// MaxIterations caps the doubling loop as a defensive bound on top of
	// the paper's Nmax cap. ≤0 selects imax+8.
	MaxIterations int
	// Trace, when non-nil, is invoked after every stop-and-stare
	// checkpoint with that iteration's state — the observability hook the
	// examples and ablations use to show the algorithms' anatomy.
	Trace func(Checkpoint)
}

// Checkpoint reports one stop-and-stare iteration to Options.Trace.
type Checkpoint struct {
	// Iteration is the checkpoint number t = 1, 2, ….
	Iteration int
	// Samples is |R| (SSA) or |R_t ∪ R^c_t| (D-SSA) at the checkpoint.
	Samples int64
	// Coverage is Cov_R(Ŝ_k) over the max-coverage prefix.
	Coverage int64
	// Influence is the running estimate Î(Ŝ_k).
	Influence float64
	// Passed reports whether the stopping conditions were met here.
	Passed bool
	// EpsilonT is D-SSA's ε_t at this checkpoint (0 for SSA).
	EpsilonT float64
}

// Result reports a stop-and-stare run.
type Result struct {
	// Seeds is the returned size-k seed set Ŝ_k.
	Seeds []uint32
	// Influence is the coverage-based estimate Î(Ŝ_k) = scale·Cov/|R|.
	Influence float64
	// CoverageSamples is |R|, the RR sets kept for max-coverage.
	CoverageSamples int64
	// VerifySamples counts Estimate-Inf RR sets (SSA only; D-SSA reuses its
	// stream and reports 0).
	VerifySamples int64
	// TotalSamples = CoverageSamples + VerifySamples — the paper's
	// "number of RR sets" metric (Table 3).
	TotalSamples int64
	// Iterations is the number of stop-and-stare checkpoints taken.
	Iterations int
	// HitCap reports termination by the Nmax safety cap rather than the
	// statistical stopping conditions.
	HitCap bool
	// Eps1, Eps2, Eps3 are the ε-split in effect at termination (the
	// dynamic values for D-SSA).
	Eps1, Eps2, Eps3 float64
	// EpsilonT is D-SSA's final ε_t (0 for SSA).
	EpsilonT float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MemoryBytes approximates the RR-collection footprint at termination.
	MemoryBytes int64
	// Grew reports whether the run generated new RR sets into its store:
	// always true for one-shot runs, false for a session query answered
	// entirely from already-resident samples. (SSA's ephemeral Estimate-Inf
	// samples are not store growth and do not set it.)
	Grew bool
}

// growthCap bounds the sample-count doubling schedules: doubling stops
// once a count reaches it, keeping every `2·n` and `v *= 2` below int
// overflow on any platform. (A previous fixed literal of 1<<40 itself
// overflowed int on 32-bit builds; deriving the cap from the platform's
// int size makes the guard portable.)
const growthCap = math.MaxInt / 4

// Validation errors.
var (
	ErrNilSampler = errors.New("core: nil sampler")
	ErrBadK       = errors.New("core: k must satisfy 1 <= k <= n")
	ErrBadEpsilon = errors.New("core: epsilon must lie in (0, 1-1/e)")
	ErrBadSplit   = errors.New("core: eps1/eps2/eps3 violate Eq. 18")
)

// normalize validates opt against the sampler and fills defaults.
func (o *Options) normalize(s *ris.Sampler) error {
	if s == nil {
		return ErrNilSampler
	}
	n := s.Graph().NumNodes()
	if o.K < 1 || o.K > n {
		return fmt.Errorf("%w: k=%d n=%d", ErrBadK, o.K, n)
	}
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if !(o.Epsilon > 0 && o.Epsilon < stats.OneMinusInvE) {
		return fmt.Errorf("%w: epsilon=%v", ErrBadEpsilon, o.Epsilon)
	}
	if !(o.Delta > 0 && o.Delta < 1) {
		return fmt.Errorf("core: delta=%v outside (0,1)", o.Delta)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.OptLowerBound <= 0 {
		o.OptLowerBound = float64(o.K)
	}
	return nil
}

// newStore builds the RR-set store the options describe: flat for
// Shards ≤ 1, sharded otherwise, remote-sharded when RemoteWorkers is set.
// All are bit-identical in results.
func (o *Options) newStore(s *ris.Sampler) ris.Store {
	return ris.NewStore(s, o.Seed, ris.StoreOptions{
		Workers: o.Workers, Shards: o.Shards, ShardWorkers: o.ShardWorkers,
		RemoteWorkers: o.RemoteWorkers, RemoteDial: o.RemoteDial,
		RemoteTimeout:    o.RemoteTimeout,
		SpillBudgetBytes: o.SpillBudgetBytes, SpillDir: o.SpillDir,
	})
}

// epsSplit returns SSA's (ε₁,ε₂,ε₃): the user's values when set (validated
// against Eq. 18), otherwise the paper's recommended defaults (Eqs. 19–20):
// ε₂ = ε₃ = ε/(2(1−1/e)) with ε₁ solving Eq. 18 at equality —
// for ε = 0.1 this reproduces ε₁ ≈ 1/78, ε₂ = ε₃ ≈ 2/25 (Eq. 21).
func (o *Options) epsSplit() (e1, e2, e3 float64, err error) {
	c := stats.OneMinusInvE
	if o.Eps1 != 0 || o.Eps2 != 0 || o.Eps3 != 0 {
		e1, e2, e3 = o.Eps1, o.Eps2, o.Eps3
		if e1 <= 0 || e2 <= 0 || e2 >= 1 || e3 <= 0 || e3 >= 1 {
			return 0, 0, 0, fmt.Errorf("%w: eps1=%v eps2=%v eps3=%v", ErrBadSplit, e1, e2, e3)
		}
		lhs := c * (e1 + e2 + e1*e2 + e3) / ((1 + e1) * (1 + e2))
		if lhs > o.Epsilon*(1+1e-9) {
			return 0, 0, 0, fmt.Errorf("%w: combined %.6f > epsilon %.6f", ErrBadSplit, lhs, o.Epsilon)
		}
		return e1, e2, e3, nil
	}
	e2 = o.Epsilon / (2 * c)
	e3 = e2
	// Solve (1−1/e)(ε₁+ε₂+ε₁ε₂+ε₃)/((1+ε₁)(1+ε₂)) = ε for ε₁.
	e1 = (o.Epsilon*(1+e2) - c*(e2+e3)) / ((1 + e2) * (c - o.Epsilon))
	if e1 <= 0 || math.IsNaN(e1) || math.IsInf(e1, 0) {
		return 0, 0, 0, fmt.Errorf("%w: default split failed for epsilon=%v", ErrBadSplit, o.Epsilon)
	}
	return e1, e2, e3, nil
}

// thresholds computes the quantities both algorithms share:
// Nmax (Alg. 1 line 2 / Alg. 4 line 1) and imax/tmax.
func (o *Options) thresholds(s *ris.Sampler) (nmax float64, imax int) {
	n := s.Graph().NumNodes()
	eps, delta := o.Epsilon, o.Delta
	lnCnk := stats.LnChoose(n, o.K)
	// Υ(ε, δ/(6·C(n,k))) computed in log space.
	ups := stats.UpsilonLn(eps, math.Log(6/delta)+lnCnk)
	nmax = 8 * stats.OneMinusInvE / (2 + 2*eps/3) * ups * s.Scale() / o.OptLowerBound
	base := stats.Upsilon(eps, delta/3)
	imax = int(math.Ceil(math.Log2(2 * nmax / base)))
	if imax < 1 {
		imax = 1
	}
	return nmax, imax
}
