package core

import (
	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
)

// Exec is the execution environment a stop-and-stare run works in: where
// the RR sets live, how the stream grows, how max-coverage candidates and
// holdout coverages are computed, and what locking (if any) brackets
// store reads. SSA and D-SSA are written against this interface so the
// same loop serves two callers:
//
//   - the one-shot path (SSA/DSSA): a fresh store and a fresh incremental
//     solver per run, no locking — soloExec below;
//   - the serving path (stopandstare.Session): a long-lived store shared by
//     a query stream, per-k cached solvers, and an RWMutex-or-epoch
//     discipline where read-only queries run concurrently and only store
//     growth takes the write lock.
//
// The algorithms promise to call Ensure with no read lock held, and to
// bracket every store read (Solve, Coverage, Stats reads like Bytes)
// between Acquire and Release. Because every quantity the loops consume is
// derived from the deterministic doubling schedule — never from Store.Len()
// — a run against a pre-grown ("warm") store is bit-identical to a cold
// run at the same seed: the store only ever over-provisions, and RR set i
// is a pure function of (seed, i).
type Exec interface {
	// Store returns the RR-set store the run draws from. Reads of it must
	// be bracketed by Acquire/Release.
	Store() ris.Store
	// Ensure grows the store to at least target RR sets, taking whatever
	// exclusive lock the environment requires, and reports whether it
	// actually generated (false when the store was already large enough —
	// the "warm" case). Must be called with the read lock NOT held.
	Ensure(target int) bool
	// Acquire takes the environment's read lock (no-op for solo runs).
	Acquire()
	// Release drops the read lock.
	Release()
	// Solve returns the max-coverage solution over RR sets [0, upto),
	// exactly maxcover.Greedy(store, upto, k). Called under Acquire.
	Solve(upto, k int) maxcover.Result
	// Coverage counts the RR sets in [from, to) containing at least one
	// seed (Cov over D-SSA's holdout window). Called under Acquire.
	Coverage(seeds []uint32, from, to int) int64
}

// locked runs f between Acquire and Release, releasing on panic as well.
// The Store interface is error-free, so a remote-sharded store escapes
// worker failures as *ris.ShardError panics (recovered at the Session
// surface); without the deferred release such a panic would leak a serving
// session's read lock and deadlock every later query.
func locked(env Exec, f func()) {
	env.Acquire()
	defer env.Release()
	f()
}

// soloExec is the one-shot environment: a private store and one
// incremental solver, no locking. SSA and DSSA build one per run.
type soloExec struct {
	col ris.Store
	sol *maxcover.Solver
}

func newSoloExec(col ris.Store) *soloExec {
	return &soloExec{col: col, sol: maxcover.NewSolver(col)}
}

func (e *soloExec) Store() ris.Store { return e.col }
func (e *soloExec) Ensure(target int) bool {
	grew := e.col.Len() < target
	e.col.GenerateTo(target)
	return grew
}
func (e *soloExec) Acquire() {}
func (e *soloExec) Release() {}
func (e *soloExec) Solve(upto, k int) maxcover.Result {
	return e.sol.Solve(upto, k)
}
func (e *soloExec) Coverage(seeds []uint32, from, to int) int64 {
	return e.col.CoverageRangeSeeds(seeds, from, to)
}
