package core

import (
	"testing"

	"stopandstare/internal/diffusion"
)

func TestSSATraceCheckpoints(t *testing.T) {
	g := midGraph(t, 1000, 5000, 131)
	s := sampler(t, g, diffusion.LT)
	var cps []Checkpoint
	res, err := SSA(s, Options{K: 10, Epsilon: 0.2, Seed: 137, Workers: 2,
		Trace: func(c Checkpoint) { cps = append(cps, c) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != res.Iterations {
		t.Fatalf("%d checkpoints for %d iterations", len(cps), res.Iterations)
	}
	for i, c := range cps {
		if c.Iteration != i+1 {
			t.Fatalf("checkpoint %d has iteration %d", i, c.Iteration)
		}
		if i > 0 && c.Samples <= cps[i-1].Samples {
			t.Fatal("samples must double between checkpoints")
		}
		if c.Samples <= 0 {
			t.Fatal("checkpoint without samples")
		}
	}
	if !res.HitCap && !cps[len(cps)-1].Passed {
		t.Fatal("final checkpoint must be the passing one")
	}
	for _, c := range cps[:len(cps)-1] {
		if c.Passed {
			t.Fatal("non-final checkpoint marked passed")
		}
	}
}

func TestDSSATraceCheckpoints(t *testing.T) {
	g := midGraph(t, 1000, 5000, 139)
	s := sampler(t, g, diffusion.LT)
	var cps []Checkpoint
	res, err := DSSA(s, Options{K: 10, Epsilon: 0.2, Seed: 149, Workers: 2,
		Trace: func(c Checkpoint) { cps = append(cps, c) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != res.Iterations {
		t.Fatalf("%d checkpoints for %d iterations", len(cps), res.Iterations)
	}
	last := cps[len(cps)-1]
	if !res.HitCap {
		if !last.Passed {
			t.Fatal("final checkpoint must pass")
		}
		if last.EpsilonT > 0.2+1e-12 || last.EpsilonT <= 0 {
			t.Fatalf("final ε_t = %v", last.EpsilonT)
		}
	}
	// Stream doubles: samples at checkpoint t are 2·Λ·2^(t−1).
	for i := 1; i < len(cps); i++ {
		if cps[i].Samples != 2*cps[i-1].Samples {
			t.Fatalf("stream did not double: %d -> %d", cps[i-1].Samples, cps[i].Samples)
		}
	}
}

func TestTraceNilIsSafe(t *testing.T) {
	g := midGraph(t, 300, 1500, 151)
	s := sampler(t, g, diffusion.IC)
	if _, err := SSA(s, Options{K: 3, Epsilon: 0.3, Seed: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := DSSA(s, Options{K: 3, Epsilon: 0.3, Seed: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
}
