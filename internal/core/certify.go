package core

import (
	"errors"
	"fmt"
	"time"

	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// Certificate is a two-sided (ε,δ)-approximation of a seed set's influence
// obtained from fresh RR sets: Pr[(1−ε)I(S) ≤ Influence ≤ (1+ε)I(S)] ≥ 1−δ.
type Certificate struct {
	// Influence is the certified estimate of I(S) (or B(S) under WRIS).
	Influence float64
	// Epsilon and Delta are the guarantee parameters of the certificate.
	Epsilon, Delta float64
	// Samples is the number of RR sets the stopping rule consumed.
	Samples int64
	// Elapsed is the wall-clock time.
	Elapsed time.Duration
}

// ErrEmptySeeds reports an empty seed set, whose influence the stopping
// rule cannot certify (it would never observe a success).
var ErrEmptySeeds = errors.New("core: cannot certify an empty seed set")

// Certify runs the Dagum–Karp–Luby–Ross stopping rule on fresh RR sets to
// produce an (ε,δ) two-sided certificate of I(S) — the rigorous version of
// "score the returned seed set", and orders of magnitude cheaper than
// forward Monte-Carlo when I(S) ≪ n. The expected sample count is
// O(Υ(ε,δ)·n/I(S)), within a constant of optimal for this task (the same
// DKLR optimality that Estimate-Inf builds on).
//
// maxSamples bounds the rule: 0 selects min(4·Υ(ε,δ/2)·scale, 2²⁸) —
// enough to certify any I(S) ≥ scale-units/4 on uniform RIS — and the
// certificate is refused (with an error) rather than left running when a
// pathological seed set's influence lies below the affordable floor.
func Certify(s *ris.Sampler, seeds []uint32, eps, delta float64, seed uint64, maxSamples ...int64) (*Certificate, error) {
	start := time.Now()
	if s == nil {
		return nil, ErrNilSampler
	}
	if err := stats.CheckEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, ErrEmptySeeds
	}
	n := s.Graph().NumNodes()
	for _, v := range seeds {
		if int(v) >= n {
			return nil, fmt.Errorf("core: seed %d out of range (n=%d)", v, n)
		}
	}
	est := newEstimator(s, seed)
	// Under uniform RIS, seeds cover RR sets rooted at themselves, so
	// µ = I(S)/n ≥ |S|/n and the stopping rule terminates in
	// O(Υ·n/I(S)) samples in expectation. Under WRIS a pathological S can
	// have B(S) arbitrarily close to zero, so the rule must be capped and
	// the certificate refused rather than left running unboundedly.
	var cap64 int64
	if len(maxSamples) > 0 && maxSamples[0] > 0 {
		cap64 = maxSamples[0]
	} else {
		budget := 4 * stats.Upsilon(eps, delta/2) * s.Scale()
		const ceiling = float64(1 << 28)
		if budget > ceiling {
			budget = ceiling
		}
		if budget < 1 {
			budget = 1
		}
		cap64 = int64(budget)
	}
	// δ/2 per tail makes the one-sided stopping-rule bound two-sided.
	inf, used, ok := est.estimate(seeds, eps, delta/2, cap64)
	if !ok {
		return nil, fmt.Errorf("core: influence below the certifiable floor (%d samples without %0.f successes)",
			used, stats.StoppingRuleThreshold(eps, delta))
	}
	return &Certificate{
		Influence: inf,
		Epsilon:   eps,
		Delta:     delta,
		Samples:   used,
		Elapsed:   time.Since(start),
	}, nil
}
