package core

import (
	"testing"
	"testing/quick"

	"stopandstare/internal/diffusion"
)

func TestNmaxMonotoneInEpsilon(t *testing.T) {
	g := midGraph(t, 1000, 5000, 211)
	s := sampler(t, g, diffusion.IC)
	f := func(raw uint8) bool {
		eps := 0.05 + float64(raw%50)/100 // 0.05 .. 0.54
		if eps >= 0.6 {
			return true
		}
		o1 := Options{K: 10, Epsilon: eps, Delta: 0.001, OptLowerBound: 10}
		o2 := Options{K: 10, Epsilon: eps + 0.05, Delta: 0.001, OptLowerBound: 10}
		n1, _ := o1.thresholds(s)
		n2, _ := o2.thresholds(s)
		return n2 < n1 // larger ε ⇒ fewer samples needed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNmaxMonotoneInDelta(t *testing.T) {
	g := midGraph(t, 1000, 5000, 223)
	s := sampler(t, g, diffusion.IC)
	o1 := Options{K: 10, Epsilon: 0.1, Delta: 0.01, OptLowerBound: 10}
	o2 := Options{K: 10, Epsilon: 0.1, Delta: 0.001, OptLowerBound: 10}
	n1, _ := o1.thresholds(s)
	n2, _ := o2.thresholds(s)
	if n2 <= n1 {
		t.Fatal("smaller δ must require more samples")
	}
}

func TestEpsSplitAlwaysSatisfiesEq18(t *testing.T) {
	// For any ε in the valid range, the default split satisfies Eq. 18
	// with equality and positive components.
	f := func(raw uint16) bool {
		eps := 0.01 + float64(raw%600)/1000 // 0.01 .. 0.60
		if eps >= 0.63 {
			return true
		}
		o := Options{Epsilon: eps}
		e1, e2, e3, err := o.epsSplit()
		if err != nil {
			return false
		}
		if e1 <= 0 || e2 <= 0 || e2 >= 1 || e3 <= 0 || e3 >= 1 {
			return false
		}
		c := 1 - 1/2.718281828459045
		lhs := c * (e1 + e2 + e1*e2 + e3) / ((1 + e1) * (1 + e2))
		return lhs <= eps*(1+1e-9) && lhs >= eps*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIterationBudgetScalesLogarithmically(t *testing.T) {
	g := midGraph(t, 1000, 5000, 227)
	s := sampler(t, g, diffusion.IC)
	o := Options{K: 10, Epsilon: 0.1, Delta: 0.001, OptLowerBound: 10}
	_, imax := o.thresholds(s)
	if imax < 2 || imax > 64 {
		t.Fatalf("imax = %d outside the O(log n) regime", imax)
	}
}
