package baselines

import (
	"container/heap"
	"fmt"
	"time"

	"stopandstare/internal/diffusion"
	"stopandstare/internal/graph"
)

// GreedyOptions configures the simulation-based greedy algorithms
// (CELF, CELF++, plain greedy). These are the pre-RIS generation of IM
// algorithms; the paper runs CELF++ only on its smallest dataset because
// even with lazy evaluation it needs k·n spread estimations in the worst
// case, each costing MCRuns cascades.
type GreedyOptions struct {
	K       int
	Model   diffusion.Model
	MCRuns  int // Monte-Carlo runs per spread estimate (paper: 10,000)
	Seed    uint64
	Workers int
}

func (o *GreedyOptions) normalize(g *graph.Graph) error {
	if g == nil {
		return ErrNilSampler
	}
	if o.K < 1 || o.K > g.NumNodes() {
		return fmt.Errorf("%w: k=%d n=%d", ErrBadK, o.K, g.NumNodes())
	}
	if o.MCRuns <= 0 {
		o.MCRuns = 10000
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return nil
}

// GreedyResult reports a simulation-based greedy run.
type GreedyResult struct {
	Seeds       []uint32
	Influence   float64 // MC estimate of I(Seeds)
	Evaluations int64   // spread estimations performed
	Elapsed     time.Duration
}

type celfEntry struct {
	node     uint32
	gain     float64 // marginal gain w.r.t. the seed set at round `round`
	round    int     // seed-set size the gain was computed against
	prevBest uint32  // CELF++: best node seen when gain was computed
	gain2    float64 // CELF++: marginal gain w.r.t. S ∪ {prevBest}
	hasGain2 bool
}

type celfHeap []*celfEntry

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(*celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// spreadOf estimates I(seeds) with the configured MC budget.
func spreadOf(g *graph.Graph, opt GreedyOptions, seeds []uint32, salt uint64) float64 {
	mean, _, _ := diffusion.Spread(g, opt.Model, seeds, diffusion.SpreadOptions{
		Runs:    opt.MCRuns,
		Seed:    opt.Seed ^ salt,
		Workers: opt.Workers,
	})
	return mean
}

// CELF implements Leskovec et al.'s lazy-forward greedy: marginal gains are
// kept in a max-heap and only re-evaluated when they surface, exploiting
// submodularity. Identical output to plain greedy up to MC noise.
func CELF(g *graph.Graph, opt GreedyOptions) (*GreedyResult, error) {
	return celf(g, opt, false)
}

// CELFPlusPlus implements Goyal et al.'s CELF++: alongside the marginal
// gain w.r.t. S, each entry carries the gain w.r.t. S ∪ {prevBest}; when
// the previous round's best node was indeed selected, the second gain is
// already the fresh value and one spread estimation is saved.
func CELFPlusPlus(g *graph.Graph, opt GreedyOptions) (*GreedyResult, error) {
	return celf(g, opt, true)
}

func celf(g *graph.Graph, opt GreedyOptions, plusplus bool) (*GreedyResult, error) {
	start := time.Now()
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	res := &GreedyResult{}
	seeds := make([]uint32, 0, opt.K)
	cur := 0.0 // I(seeds)

	h := make(celfHeap, 0, n)
	buf := make([]uint32, 0, opt.K+1)
	for v := 0; v < n; v++ {
		if g.OutDegree(uint32(v)) == 0 && opt.K < n {
			// out-degree-0 nodes gain exactly 1 (themselves); still enqueue
			// so small graphs behave correctly.
			h = append(h, &celfEntry{node: uint32(v), gain: 1, round: 0})
			continue
		}
		gain := spreadOf(g, opt, []uint32{uint32(v)}, uint64(v))
		res.Evaluations++
		h = append(h, &celfEntry{node: uint32(v), gain: gain, round: 0})
	}
	heap.Init(&h)

	var lastPicked uint32
	hasLast := false
	for len(seeds) < opt.K && h.Len() > 0 {
		e := heap.Pop(&h).(*celfEntry)
		if e.round == len(seeds) {
			// Gain is current: select.
			seeds = append(seeds, e.node)
			cur += e.gain
			lastPicked = e.node
			hasLast = true
			continue
		}
		if plusplus && e.hasGain2 && hasLast && e.prevBest == lastPicked && e.round == len(seeds)-1 {
			// CELF++ shortcut: gain w.r.t. S∪{prevBest} is the fresh gain.
			e.gain = e.gain2
			e.round = len(seeds)
			e.hasGain2 = false
			heap.Push(&h, e)
			continue
		}
		// Re-evaluate against the current seed set.
		buf = append(buf[:0], seeds...)
		buf = append(buf, e.node)
		total := spreadOf(g, opt, buf, uint64(e.node)*2654435761+uint64(len(seeds)))
		res.Evaluations++
		e.gain = total - cur
		e.round = len(seeds)
		if plusplus && h.Len() > 0 {
			// Estimate gain w.r.t. S ∪ {current best candidate}.
			best := h[0].node
			if best != e.node {
				buf2 := append(append([]uint32{}, buf...), best)
				t2 := spreadOf(g, opt, buf2, uint64(e.node)*0x9E3779B1+uint64(best))
				res.Evaluations++
				e.gain2 = t2 - cur - h[0].gain
				e.prevBest = best
				e.hasGain2 = true
			}
		}
		heap.Push(&h, e)
	}
	res.Seeds = seeds
	res.Influence = cur
	res.Elapsed = time.Since(start)
	return res, nil
}

// Greedy is the plain Kempe-et-al. greedy with full re-evaluation each
// round — O(k·n) spread estimations. Provided for completeness and tests.
func Greedy(g *graph.Graph, opt GreedyOptions) (*GreedyResult, error) {
	start := time.Now()
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	res := &GreedyResult{}
	seeds := make([]uint32, 0, opt.K)
	inSeed := make([]bool, n)
	cur := 0.0
	buf := make([]uint32, 0, opt.K+1)
	for len(seeds) < opt.K {
		bestGain := -1.0
		bestNode := -1
		for v := 0; v < n; v++ {
			if inSeed[v] {
				continue
			}
			buf = append(buf[:0], seeds...)
			buf = append(buf, uint32(v))
			total := spreadOf(g, opt, buf, uint64(v)*31+uint64(len(seeds)))
			res.Evaluations++
			if gain := total - cur; gain > bestGain {
				bestGain = gain
				bestNode = v
			}
		}
		if bestNode < 0 {
			break
		}
		seeds = append(seeds, uint32(bestNode))
		inSeed[bestNode] = true
		cur += bestGain
	}
	res.Seeds = seeds
	res.Influence = cur
	res.Elapsed = time.Since(start)
	return res, nil
}
