package baselines

import (
	"fmt"
	"sort"

	"stopandstare/internal/graph"
	"stopandstare/internal/rng"
)

// HighDegree returns the k nodes with the highest out-degree — the classic
// degree-centrality heuristic (no approximation guarantee).
func HighDegree(g *graph.Graph, k int) ([]uint32, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	nodes := make([]uint32, n)
	for v := range nodes {
		nodes[v] = uint32(v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.OutDegree(nodes[i]), g.OutDegree(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k], nil
}

// SingleDiscount is the degree-discount heuristic in its simplest form:
// repeatedly take the node with the highest remaining out-degree, then
// discount one degree from each selected node's neighbours.
func SingleDiscount(g *graph.Graph, k int) ([]uint32, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(uint32(v))
	}
	picked := make([]bool, n)
	seeds := make([]uint32, 0, k)
	for len(seeds) < k {
		best, bestDeg := -1, -1
		for v := 0; v < n; v++ {
			if !picked[v] && deg[v] > bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		seeds = append(seeds, uint32(best))
		adj, _ := g.OutNeighbors(uint32(best))
		for _, u := range adj {
			if deg[u] > 0 {
				deg[u]--
			}
		}
	}
	return seeds, nil
}

// RandomSeeds returns k distinct uniformly random nodes.
func RandomSeeds(g *graph.Graph, k int, seed uint64) ([]uint32, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	r := rng.New(seed)
	perm := make([]int, n)
	r.Perm(perm)
	seeds := make([]uint32, k)
	for i := 0; i < k; i++ {
		seeds[i] = uint32(perm[i])
	}
	return seeds, nil
}
