package baselines

import (
	"math"
	"time"

	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
)

// BorgsOptions configures the original RIS algorithm of Borgs, Brautbar,
// Chayes and Lucier (SODA'14) — the method that introduced reverse
// reachable sets and that TIM/IMM/SSA all descend from.
type BorgsOptions struct {
	Options
	// C is the hidden constant of the width threshold τ = C·k·(m+n)·log₂n/ε³.
	// The analysis uses 48; the paper under reproduction notes the
	// algorithm is "less than satisfactory due to the rather large hidden
	// constants", which this default makes visible. Lower it to trade the
	// guarantee for speed.
	C float64
}

// Borgs implements the SODA'14 algorithm: keep generating RR sets until
// their *total width* (number of edges examined, Σ w(R)) reaches
// τ = C·k·(m+n)·log₂n/ε³, then solve max-coverage. The width-based
// stopping rule is what bounds its running time by O(k·(m+n)·log²n/ε³)
// independent of the influence landscape.
func Borgs(s *ris.Sampler, opt BorgsOptions) (*Result, error) {
	start := time.Now()
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	if opt.C <= 0 {
		opt.C = 48
	}
	g := s.Graph()
	n := float64(g.NumNodes())
	m := float64(g.NumEdges())
	eps := opt.Epsilon
	tau := opt.C * float64(opt.K) * (m + n) * math.Log2(math.Max(n, 2)) / (eps * eps * eps)

	col := opt.newStore(s)
	iterations := 0
	// Generate until the width budget is exhausted (the SODA paper
	// interleaves generation and width counting; predictive batching from
	// the running average width preserves the stopping point to within a
	// small batch).
	batch := 256
	for float64(col.Width()) < tau {
		iterations++
		col.Generate(batch)
		if col.Len() > 0 && col.Width() > 0 {
			avg := float64(col.Width()) / float64(col.Len())
			need := (tau - float64(col.Width())) / avg
			switch {
			case need < 64:
				batch = 64
			case need > 1<<20:
				batch = 1 << 20
			default:
				batch = int(need) + 1
			}
		}
	}
	mc := maxcover.Greedy(col, col.Len(), opt.K)
	return &Result{
		Seeds:           mc.Seeds,
		Influence:       mc.Influence(s.Scale()),
		CoverageSamples: int64(col.Len()),
		TotalSamples:    int64(col.Len()),
		Iterations:      iterations,
		MemoryBytes:     col.Bytes(),
		Elapsed:         time.Since(start),
	}, nil
}
