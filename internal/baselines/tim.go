package baselines

import (
	"math"
	"time"

	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// kptStar runs TIM's KPT estimation (Alg. 2 of the TIM paper): probe
// exponentially growing sample counts c_i; for each RR set R compute
// κ(R) = 1 − (1 − w(R)/m)^k with w(R) = Σ_{v∈R} d_in(v); accept
// KPT* = n·Σκ/(2c_i) at the first scale where the average exceeds 1/2^i.
// Returns KPT* and the collection (reused downstream, as TIM does).
func kptStar(s *ris.Sampler, col ris.Store, k int, delta float64) (float64, int) {
	g := s.Graph()
	n := float64(g.NumNodes())
	m := float64(g.NumEdges())
	if m < 1 {
		return 1, 0
	}
	log2n := math.Log2(n)
	if log2n < 2 {
		log2n = 2
	}
	lnInvDelta := math.Log(1 / delta)
	iterations := 0
	widthDone := 0
	var sumKappa float64
	kappaAt := func(hi int) float64 {
		// incremental: extend κ sum over sets [widthDone, hi)
		col.ForEachSet(widthDone, hi, func(_ int, set []uint32) {
			var w int64
			for _, v := range set {
				w += int64(g.InDegree(v))
			}
			sumKappa += 1 - math.Pow(1-float64(w)/m, float64(k))
		})
		widthDone = hi
		return sumKappa
	}
	for i := 1; i < int(log2n); i++ {
		iterations++
		ci := int(math.Ceil((6*lnInvDelta + 6*math.Log(log2n)) * math.Pow(2, float64(i))))
		if ci < 1 {
			ci = 1
		}
		col.GenerateTo(ci)
		sk := kappaAt(ci)
		if sk/float64(ci) > 1/math.Pow(2, float64(i)) {
			kpt := n * sk / (2 * float64(ci))
			if kpt < 1 {
				kpt = 1
			}
			return kpt, iterations
		}
	}
	return 1, iterations
}

// TIM implements the two-phase TIM algorithm: KPT* estimation followed by
// node selection on θ = λ/KPT* RR sets, λ = (8+2ε)n(ln(1/δ)+lnC(n,k)+ln2)/ε²
// (the paper's Eq. 12 threshold).
func TIM(s *ris.Sampler, opt Options) (*Result, error) {
	return tim(s, opt, false)
}

// TIMPlus implements TIM+ — TIM with the intermediate refinement step that
// greedily solves max-coverage on a small sample to tighten KPT* into
// KPT⁺ = max(KPT′, KPT*) before committing to θ.
func TIMPlus(s *ris.Sampler, opt Options) (*Result, error) {
	return tim(s, opt, true)
}

func tim(s *ris.Sampler, opt Options, refine bool) (*Result, error) {
	start := time.Now()
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	g := s.Graph()
	n := float64(g.NumNodes())
	k := opt.K
	eps, delta := opt.Epsilon, opt.Delta
	scale := s.Scale()
	lnCnk := stats.LnChoose(g.NumNodes(), k)
	lnInvDelta := math.Log(1 / delta)

	col := opt.newStore(s)
	// The refinement greedy (TIM+) and the final node selection reuse the
	// same stream; the incremental solver scans it once in total.
	sol := maxcover.NewSolver(col)
	kpt, iterations := kptStar(s, col, k, delta)

	if refine {
		// KPT refinement (TIM+ / Alg. 3 of the TIM paper): ε′ = 5·∛(ε²l/(k+l))
		// with l = ln(1/δ)/ln n, then a greedy pass on θ′ = λ′/KPT* sets.
		l := lnInvDelta / math.Log(math.Max(n, 2))
		epsPrime := 5 * math.Cbrt(eps*eps*l/(float64(k)+l))
		if epsPrime >= 1 {
			epsPrime = 0.5
		}
		lambdaPrime := (2 + 2*epsPrime/3) * (lnCnk + lnInvDelta) * n / (epsPrime * epsPrime)
		thetaPrime := ceilPos(lambdaPrime / kpt)
		col.GenerateTo(thetaPrime)
		mc := sol.Solve(col.Len(), k)
		kptRefined := mc.Influence(scale) / (1 + epsPrime)
		if kptRefined > kpt {
			kpt = kptRefined
		}
	}

	lambda := (8 + 2*eps) * n * (lnInvDelta + lnCnk + math.Ln2) / (eps * eps)
	theta := ceilPos(lambda / kpt)
	col.GenerateTo(theta)
	mc := sol.Solve(col.Len(), k)

	return &Result{
		Seeds:           mc.Seeds,
		Influence:       mc.Influence(scale),
		CoverageSamples: int64(col.Len()),
		TotalSamples:    int64(col.Len()),
		Iterations:      iterations,
		MemoryBytes:     col.Bytes(),
		Elapsed:         time.Since(start),
	}, nil
}
