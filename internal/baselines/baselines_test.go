package baselines

import (
	"math"
	"testing"

	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/gen"
	"stopandstare/internal/graph"
	"stopandstare/internal/ris"
)

func midGraph(t testing.TB, n int, m int64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(n, m, 2.1, seed, graph.BuildOptions{Model: graph.WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampler(t testing.TB, g *graph.Graph, model diffusion.Model) *ris.Sampler {
	t.Helper()
	s, err := ris.NewSampler(g, model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptionsValidation(t *testing.T) {
	g := midGraph(t, 100, 500, 1)
	s := sampler(t, g, diffusion.IC)
	bad := []Options{
		{K: 0, Epsilon: 0.1},
		{K: 101, Epsilon: 0.1},
		{K: 5, Epsilon: 0},
		{K: 5, Epsilon: 1.2},
		{K: 5, Epsilon: 0.1, Delta: 3},
	}
	for i, o := range bad {
		if _, err := IMM(s, o); err == nil {
			t.Fatalf("case %d: IMM should reject %+v", i, o)
		}
		if _, err := TIMPlus(s, o); err == nil {
			t.Fatalf("case %d: TIM+ should reject %+v", i, o)
		}
	}
	if _, err := IMM(nil, Options{K: 1, Epsilon: 0.1}); err == nil {
		t.Fatal("nil sampler should fail")
	}
}

func TestIMMReturnsQualitySeeds(t *testing.T) {
	g := midGraph(t, 1000, 5000, 3)
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := sampler(t, g, model)
		res, err := IMM(s, Options{K: 10, Epsilon: 0.2, Seed: 5, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != 10 {
			t.Fatalf("IMM returned %d seeds", len(res.Seeds))
		}
		if res.TotalSamples <= 0 || res.Influence <= 0 {
			t.Fatalf("degenerate result %+v", res)
		}
		// Sanity: IMM seeds beat random seeds by a clear margin.
		immSpread, _, _ := diffusion.Spread(g, model, res.Seeds, diffusion.SpreadOptions{Runs: 5000, Seed: 7, Workers: 2})
		rnd, _ := RandomSeeds(g, 10, 9)
		rndSpread, _, _ := diffusion.Spread(g, model, rnd, diffusion.SpreadOptions{Runs: 5000, Seed: 7, Workers: 2})
		if immSpread < rndSpread {
			t.Fatalf("%v: IMM (%.1f) worse than random (%.1f)", model, immSpread, rndSpread)
		}
	}
}

func TestTIMAndTIMPlus(t *testing.T) {
	g := midGraph(t, 1000, 5000, 11)
	s := sampler(t, g, diffusion.LT)
	tim, err := TIM(s, Options{K: 10, Epsilon: 0.2, Seed: 13, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	timp, err := TIMPlus(s, Options{K: 10, Epsilon: 0.2, Seed: 13, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tim.Seeds) != 10 || len(timp.Seeds) != 10 {
		t.Fatal("wrong seed counts")
	}
	// TIM+ refinement can only raise KPT, hence needs no more samples.
	if timp.TotalSamples > tim.TotalSamples {
		t.Fatalf("TIM+ used more final samples than TIM: %d vs %d", timp.TotalSamples, tim.TotalSamples)
	}
}

func TestSSAFewerSamplesThanIMMAndTIM(t *testing.T) {
	// The headline shape of the paper: SSA/D-SSA ≪ IMM ≤ TIM+ in samples.
	g := midGraph(t, 4000, 20000, 17)
	s := sampler(t, g, diffusion.LT)
	opts := Options{K: 50, Epsilon: 0.1, Seed: 19, Workers: 2}
	imm, err := IMM(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	timp, err := TIMPlus(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	dssa, err := core.DSSA(s, core.Options{K: 50, Epsilon: 0.1, Seed: 19, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ssa, err := core.SSA(s, core.Options{K: 50, Epsilon: 0.1, Seed: 19, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dssa.TotalSamples >= imm.TotalSamples {
		t.Fatalf("D-SSA (%d) should use fewer RR sets than IMM (%d)", dssa.TotalSamples, imm.TotalSamples)
	}
	if ssa.TotalSamples >= imm.TotalSamples {
		t.Fatalf("SSA (%d) should use fewer RR sets than IMM (%d)", ssa.TotalSamples, imm.TotalSamples)
	}
	if imm.TotalSamples > timp.TotalSamples*4 {
		t.Fatalf("IMM (%d) and TIM+ (%d) should be within the same regime", imm.TotalSamples, timp.TotalSamples)
	}
	// All four must deliver comparable influence (within 10%).
	base := imm.Influence
	for name, inf := range map[string]float64{"ssa": ssa.Influence, "dssa": dssa.Influence, "tim+": timp.Influence} {
		if math.Abs(inf-base) > 0.1*base {
			t.Fatalf("%s influence %.1f deviates from IMM %.1f", name, inf, base)
		}
	}
}

func TestCELFMatchesGreedyQuality(t *testing.T) {
	g := midGraph(t, 120, 600, 23)
	opt := GreedyOptions{K: 3, Model: diffusion.IC, MCRuns: 400, Seed: 29, Workers: 2}
	celf, err := CELF(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// CELF is exact lazy greedy up to MC noise: spreads must be close.
	sc, _, _ := diffusion.Spread(g, diffusion.IC, celf.Seeds, diffusion.SpreadOptions{Runs: 20000, Seed: 31, Workers: 2})
	sg, _, _ := diffusion.Spread(g, diffusion.IC, gr.Seeds, diffusion.SpreadOptions{Runs: 20000, Seed: 31, Workers: 2})
	if math.Abs(sc-sg) > 0.15*sg+1 {
		t.Fatalf("CELF %.2f vs greedy %.2f", sc, sg)
	}
	if celf.Evaluations > gr.Evaluations {
		t.Fatalf("CELF (%d evals) did more work than plain greedy (%d)", celf.Evaluations, gr.Evaluations)
	}
}

func TestCELFPlusPlus(t *testing.T) {
	g := midGraph(t, 120, 600, 37)
	opt := GreedyOptions{K: 3, Model: diffusion.LT, MCRuns: 400, Seed: 41, Workers: 2}
	cpp, err := CELFPlusPlus(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpp.Seeds) != 3 {
		t.Fatalf("CELF++ returned %d seeds", len(cpp.Seeds))
	}
	celf, err := CELF(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, _ := diffusion.Spread(g, diffusion.LT, cpp.Seeds, diffusion.SpreadOptions{Runs: 20000, Seed: 43, Workers: 2})
	s2, _, _ := diffusion.Spread(g, diffusion.LT, celf.Seeds, diffusion.SpreadOptions{Runs: 20000, Seed: 43, Workers: 2})
	if math.Abs(s1-s2) > 0.15*s2+1 {
		t.Fatalf("CELF++ %.2f vs CELF %.2f", s1, s2)
	}
}

func TestGreedyOptionsValidation(t *testing.T) {
	g := midGraph(t, 50, 250, 47)
	if _, err := CELF(g, GreedyOptions{K: 0}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := CELFPlusPlus(nil, GreedyOptions{K: 1}); err == nil {
		t.Fatal("nil graph should fail")
	}
	if _, err := Greedy(g, GreedyOptions{K: 100}); err == nil {
		t.Fatal("k>n should fail")
	}
}

func TestHighDegree(t *testing.T) {
	g := midGraph(t, 200, 1200, 53)
	seeds, err := HighDegree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// Degrees must be non-increasing.
	for i := 1; i < len(seeds); i++ {
		if g.OutDegree(seeds[i-1]) < g.OutDegree(seeds[i]) {
			t.Fatal("not sorted by degree")
		}
	}
	if _, err := HighDegree(g, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestSingleDiscount(t *testing.T) {
	g := midGraph(t, 200, 1200, 59)
	seeds, err := SingleDiscount(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 8 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[uint32]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
	if _, err := SingleDiscount(g, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestRandomSeeds(t *testing.T) {
	g := midGraph(t, 100, 500, 61)
	a, err := RandomSeeds(g, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomSeeds(g, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	seen := map[uint32]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate random seed")
		}
		seen[s] = true
	}
	if _, err := RandomSeeds(g, 0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestIMMDeterministic(t *testing.T) {
	g := midGraph(t, 500, 2500, 67)
	s := sampler(t, g, diffusion.IC)
	a, err := IMM(s, Options{K: 5, Epsilon: 0.2, Seed: 71, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := IMM(s, Options{K: 5, Epsilon: 0.2, Seed: 71, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSamples != b.TotalSamples {
		t.Fatal("IMM sample counts differ across workers")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("IMM seeds differ across workers")
		}
	}
}

func TestIMMSamplesGrowAsEpsilonShrinks(t *testing.T) {
	g := midGraph(t, 800, 4000, 101)
	s := sampler(t, g, diffusion.LT)
	loose, err := IMM(s, Options{K: 10, Epsilon: 0.4, Seed: 103, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := IMM(s, Options{K: 10, Epsilon: 0.1, Seed: 103, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalSamples <= loose.TotalSamples {
		t.Fatalf("tighter epsilon should need more samples: %d vs %d",
			tight.TotalSamples, loose.TotalSamples)
	}
}

func TestTIMPlusSamplesGrowWithSmallerDelta(t *testing.T) {
	g := midGraph(t, 800, 4000, 107)
	s := sampler(t, g, diffusion.LT)
	a, err := TIMPlus(s, Options{K: 10, Epsilon: 0.2, Delta: 0.1, Seed: 109, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TIMPlus(s, Options{K: 10, Epsilon: 0.2, Delta: 1e-6, Seed: 109, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalSamples <= a.TotalSamples {
		t.Fatalf("smaller delta should need more samples: %d vs %d",
			b.TotalSamples, a.TotalSamples)
	}
}
