// Package baselines implements the comparison algorithms of the paper's
// evaluation (§7): IMM (Tang, Shi, Xiao — SIGMOD'15), TIM and TIM+ (Tang,
// Xiao, Shi — SIGMOD'14), the CELF and CELF++ lazy-greedy Monte-Carlo
// algorithms, and the usual degree/random heuristics. All RIS-based
// baselines share the sampling substrate (internal/ris) with SSA/D-SSA so
// that running-time and sample-count comparisons isolate the algorithmic
// difference, exactly as in the paper.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"time"

	"stopandstare/internal/maxcover"
	"stopandstare/internal/ris"
	"stopandstare/internal/stats"
)

// Options configures the RIS-based baselines.
type Options struct {
	K       int
	Epsilon float64
	Delta   float64 // 0 ⇒ 1/n, the paper's setting
	Seed    uint64
	Workers int
	// Shards ≥ 1 selects the id-sharded RR store (bit-identical results);
	// ShardWorkers bounds per-shard parallelism (≤0 derives Workers/Shards).
	Shards       int
	ShardWorkers int
	// Kernel selects the RR sampling implementation (plan kernels by
	// default, ris.KernelOracle for the Bernoulli oracle).
	Kernel ris.Kernel
}

// Result reports a baseline run with the same metrics as core.Result.
type Result struct {
	Seeds           []uint32
	Influence       float64
	CoverageSamples int64
	TotalSamples    int64
	Iterations      int
	Elapsed         time.Duration
	MemoryBytes     int64
}

// Validation errors.
var (
	ErrNilSampler = errors.New("baselines: nil sampler")
	ErrBadK       = errors.New("baselines: k must satisfy 1 <= k <= n")
	ErrBadParam   = errors.New("baselines: epsilon and delta must lie in (0,1)")
)

func (o *Options) normalize(s *ris.Sampler) error {
	if s == nil {
		return ErrNilSampler
	}
	n := s.Graph().NumNodes()
	if o.K < 1 || o.K > n {
		return fmt.Errorf("%w: k=%d n=%d", ErrBadK, o.K, n)
	}
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if !(o.Epsilon > 0 && o.Epsilon < 1) || !(o.Delta > 0 && o.Delta < 1) {
		return ErrBadParam
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return nil
}

// newStore builds the RR-set store the options describe.
func (o *Options) newStore(s *ris.Sampler) ris.Store {
	return ris.NewStore(s, o.Seed, ris.StoreOptions{
		Workers: o.Workers, Shards: o.Shards, ShardWorkers: o.ShardWorkers,
	})
}

// IMM implements the IMM algorithm: a LowerBound estimation phase that
// probes x = n/2^i with θ_i = λ′/x samples, followed by a node-selection
// phase on θ = λ*/LB samples. Both phases draw from one martingale stream,
// as in the published algorithm. δ = n^(−l) is generalised to explicit δ
// via l·ln n = ln(1/δ).
func IMM(s *ris.Sampler, opt Options) (*Result, error) {
	start := time.Now()
	if err := opt.normalize(s); err != nil {
		return nil, err
	}
	s = s.WithKernel(opt.Kernel)
	g := s.Graph()
	n := float64(g.NumNodes())
	k := opt.K
	eps, delta := opt.Epsilon, opt.Delta
	scale := s.Scale()

	lnCnk := stats.LnChoose(g.NumNodes(), k)
	lnInvDelta := math.Log(1 / delta)
	log2n := math.Log2(n)
	if log2n < 1 {
		log2n = 1
	}

	// Sampling (lower-bound) phase.
	epsPrime := math.Sqrt2 * eps
	lambdaPrime := (2 + 2*epsPrime/3) * (lnCnk + lnInvDelta + math.Log(log2n)) * n / (epsPrime * epsPrime)

	col := opt.newStore(s)
	// Both IMM phases grow one martingale stream, so a single incremental
	// solver serves every probe and the final node selection.
	sol := maxcover.NewSolver(col)
	lb := 1.0
	iterations := 0
	var mc maxcover.Result
	for i := 1; i < int(log2n); i++ {
		iterations++
		x := n / math.Pow(2, float64(i))
		thetaI := lambdaPrime / x
		col.GenerateTo(ceilPos(thetaI))
		mc = sol.Solve(col.Len(), k)
		est := mc.Influence(scale) // n·F_R(S_i) in the paper's notation
		if est >= (1+epsPrime)*x*scale/n {
			lb = est / (1 + epsPrime)
			break
		}
	}
	if lb < 1 {
		lb = 1
	}

	// Node-selection phase.
	alpha := math.Sqrt(lnInvDelta + math.Ln2)
	beta := math.Sqrt(stats.OneMinusInvE * (lnCnk + lnInvDelta + math.Ln2))
	lambdaStar := 2 * n * math.Pow(stats.OneMinusInvE*alpha+beta, 2) / (eps * eps)
	theta := lambdaStar / lb
	col.GenerateTo(ceilPos(theta))
	mc = sol.Solve(col.Len(), k)

	res := &Result{
		Seeds:           mc.Seeds,
		Influence:       mc.Influence(scale),
		CoverageSamples: int64(col.Len()),
		TotalSamples:    int64(col.Len()),
		Iterations:      iterations,
		MemoryBytes:     col.Bytes(),
		Elapsed:         time.Since(start),
	}
	return res, nil
}

func ceilPos(x float64) int {
	if x < 1 || math.IsNaN(x) {
		return 1
	}
	// Derived from the platform int size (a fixed 1<<40 literal itself
	// overflows int on 32-bit builds — the CI GOARCH=386 check guards this).
	const hardCap = float64(math.MaxInt / 4)
	if x > hardCap {
		x = hardCap
	}
	return int(math.Ceil(x))
}
