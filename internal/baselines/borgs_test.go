package baselines

import (
	"testing"

	"stopandstare/internal/diffusion"
)

func TestBorgsBasic(t *testing.T) {
	g := midGraph(t, 400, 2000, 71)
	s := sampler(t, g, diffusion.IC)
	// The true constant 48 is enormous by design; use a small C so the
	// test finishes while exercising the width-threshold loop.
	res, err := Borgs(s, BorgsOptions{
		Options: Options{K: 5, Epsilon: 0.3, Seed: 73, Workers: 2},
		C:       0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	if res.TotalSamples <= 0 || res.Iterations < 1 {
		t.Fatalf("degenerate run: %+v", res)
	}
	// Quality sanity: beats random.
	bs, _, _ := diffusion.Spread(g, diffusion.IC, res.Seeds, diffusion.SpreadOptions{Runs: 4000, Seed: 79, Workers: 2})
	rnd, _ := RandomSeeds(g, 5, 83)
	rs, _, _ := diffusion.Spread(g, diffusion.IC, rnd, diffusion.SpreadOptions{Runs: 4000, Seed: 79, Workers: 2})
	if bs < rs {
		t.Fatalf("Borgs (%.1f) worse than random (%.1f)", bs, rs)
	}
}

func TestBorgsWidthThresholdScalesWithC(t *testing.T) {
	g := midGraph(t, 300, 1500, 89)
	s := sampler(t, g, diffusion.LT)
	small, err := Borgs(s, BorgsOptions{Options: Options{K: 2, Epsilon: 0.3, Seed: 1, Workers: 2}, C: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Borgs(s, BorgsOptions{Options: Options{K: 2, Epsilon: 0.3, Seed: 1, Workers: 2}, C: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalSamples <= small.TotalSamples {
		t.Fatalf("larger C should need more samples: %d vs %d", big.TotalSamples, small.TotalSamples)
	}
}

func TestBorgsValidation(t *testing.T) {
	g := midGraph(t, 100, 500, 97)
	s := sampler(t, g, diffusion.IC)
	if _, err := Borgs(s, BorgsOptions{Options: Options{K: 0, Epsilon: 0.1}}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Borgs(nil, BorgsOptions{Options: Options{K: 1, Epsilon: 0.1}}); err == nil {
		t.Fatal("nil sampler should fail")
	}
}
