// Package epoch provides a reusable epoch-stamped visited set: marking is
// O(1), and clearing between passes is an O(1) generation bump instead of
// an O(n) zeroing sweep. Both the max-coverage solvers (covered RR sets
// per selection) and the index-driven coverage walk (counted ids per
// window) need exactly this shape, so the grow/rollover/bump bookkeeping
// lives here once.
package epoch

import "math"

// Marks is an epoch-stamped visited set over ids [0, n). The zero value is
// ready to use after a Reset.
type Marks struct {
	gen   int32
	marks []int32
}

// Reset prepares the set for a fresh pass over ids [0, n): it grows the
// backing array as needed and opens a new generation (with the rare O(n)
// clear when the generation counter would overflow).
func (m *Marks) Reset(n int) {
	if len(m.marks) < n {
		m.marks = make([]int32, n)
		m.gen = 0
	}
	if m.gen == math.MaxInt32 {
		for i := range m.marks {
			m.marks[i] = 0
		}
		m.gen = 0
	}
	m.gen++
}

// Visit marks id and reports whether this was its first visit in the
// current generation.
func (m *Marks) Visit(id int32) bool {
	if m.marks[id] == m.gen {
		return false
	}
	m.marks[id] = m.gen
	return true
}

// Contains reports whether id has been visited in the current generation,
// without marking it — for walks that must test membership before deciding
// (via a coin flip, say) whether the id joins the set.
func (m *Marks) Contains(id int32) bool { return m.marks[id] == m.gen }

// Cap returns the backing array's capacity (for memory accounting).
func (m *Marks) Cap() int { return cap(m.marks) }
