package epoch

import (
	"math"
	"testing"
)

func TestMarksVisitOncePerGeneration(t *testing.T) {
	var m Marks
	m.Reset(10)
	if !m.Visit(3) {
		t.Fatal("first visit must report true")
	}
	if m.Visit(3) {
		t.Fatal("second visit in the same generation must report false")
	}
	m.Reset(10)
	if !m.Visit(3) {
		t.Fatal("a Reset must open a fresh generation")
	}
}

func TestMarksGrowAndRollover(t *testing.T) {
	var m Marks
	m.Reset(4)
	m.Visit(2)
	m.Reset(16) // grow: old stamps discarded with the array
	if !m.Visit(2) || !m.Visit(15) {
		t.Fatal("growing must leave every id unvisited")
	}
	if m.Cap() < 16 {
		t.Fatalf("cap %d after growing to 16", m.Cap())
	}
	// Force the generation counter to its ceiling: the next Reset must
	// clear rather than collide with stale stamps.
	m.gen = math.MaxInt32
	for i := range m.marks {
		m.marks[i] = math.MaxInt32 // worst case: stale stamps at the ceiling
	}
	m.Reset(16)
	if !m.Visit(5) {
		t.Fatal("rollover Reset must clear stale stamps")
	}
	if m.Visit(5) {
		t.Fatal("rollover generation must still dedupe")
	}
}
