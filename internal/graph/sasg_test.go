package graph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests pin the out-of-core .sasg format's happy paths: a mapped
// graph must be a bit-identical twin of the heap graph it was written from
// (every section compared at the float-bit level, so NaN payloads and -0
// can't hide), the edge-list → heap → mapped chain must round-trip, and
// the resident/mapped accounting split must hold for both backends.

// randomTestGraph builds a reproducible random graph without importing the
// generator package (which would cycle back into graph).
func randomTestGraph(t *testing.T, n int, edges int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v, 0.05+0.9*rng.Float64())
	}
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mappedTwin writes g as .sasg to a temp file and opens it mapped. The
// mapping is closed when the test ends.
func mappedTwin(t *testing.T, g *Graph) *Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "twin.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Errorf("closing mapped graph: %v", err)
		}
	})
	return m
}

// requireSectionsEqual compares every array of the two graphs bitwise.
func requireSectionsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n = %d, want %d", got.n, want.n)
	}
	eqI64 := func(name string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, b[i], a[i])
			}
		}
	}
	eqU32 := func(name string, a, b []uint32) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, b[i], a[i])
			}
		}
	}
	eqF32 := func(name string, a, b []float32) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s[%d] = %v, want %v (bitwise)", name, i, b[i], a[i])
			}
		}
	}
	eqF64 := func(name string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if float64Bits(a[i]) != float64Bits(b[i]) {
				t.Fatalf("%s[%d] = %v, want %v (bitwise)", name, i, b[i], a[i])
			}
		}
	}
	eqI64("outIdx", want.outIdx, got.outIdx)
	eqU32("outAdj", want.outAdj, got.outAdj)
	eqF32("outW", want.outW, got.outW)
	eqI64("inIdx", want.inIdx, got.inIdx)
	eqU32("inAdj", want.inAdj, got.inAdj)
	eqF32("inW", want.inW, got.inW)
	eqF64("inCum", want.inCum, got.inCum)
	eqF64("inSum", want.inSum, got.inSum)
}

func TestMappedRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Graph
	}{
		{"single-node", func(t *testing.T) *Graph {
			g, err := NewBuilder(1).Build(BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"no-edges", func(t *testing.T) *Graph {
			g, err := NewBuilder(17).Build(BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"tiny", func(t *testing.T) *Graph { return randomTestGraph(t, 5, 12, 1) }},
		{"small", func(t *testing.T) *Graph { return randomTestGraph(t, 64, 300, 2) }},
		{"medium", func(t *testing.T) *Graph { return randomTestGraph(t, 300, 2000, 3) }},
		{"wc-weights", func(t *testing.T) *Graph {
			rng := rand.New(rand.NewSource(4))
			b := NewBuilder(120)
			for i := 0; i < 900; i++ {
				b.AddEdge(uint32(rng.Intn(120)), uint32(rng.Intn(120)), 0)
			}
			g, err := b.Build(BuildOptions{Model: WeightedCascade})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			m := mappedTwin(t, g)
			requireSectionsEqual(t, g, m)
			// The mapped twin must answer the public API identically too.
			if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() {
				t.Fatalf("mapped shape %d/%d, want %d/%d",
					m.NumNodes(), m.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			if gs, ms := g.Stats(), m.Stats(); gs != ms {
				t.Fatalf("mapped stats %+v, want %+v", ms, gs)
			}
		})
	}
}

// TestMappedEdgeListRoundTrip is the issue's round-trip property:
// SaveEdgeList → LoadEdgeList → WriteMapped → OpenMapped must preserve the
// graph exactly. The edge-list text format uses shortest-round-trip %g, so
// even the float32 weights survive bitwise.
func TestMappedEdgeListRoundTrip(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		g := randomTestGraph(t, 80, 500, seed)
		var txt bytes.Buffer
		if err := g.SaveEdgeList(&txt); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadEdgeList(strings.NewReader(txt.String()), LoadOptions{Directed: true})
		if err != nil {
			t.Fatal(err)
		}
		m := mappedTwin(t, loaded)
		requireSectionsEqual(t, loaded, m)
	}
}

// TestMappedAccounting pins the resident/mapped byte split: a heap graph is
// all resident, a mapped graph (on platforms with real mmap) is all mapped,
// and Bytes() is the total either way.
func TestMappedAccounting(t *testing.T) {
	g := randomTestGraph(t, 100, 600, 7)
	if g.View().Kind() != "heap" {
		t.Fatalf("heap graph kind %q, want heap", g.View().Kind())
	}
	if g.ResidentBytes() <= 0 || g.MappedBytes() != 0 || g.Mapped() {
		t.Fatalf("heap accounting: resident=%d mapped=%d", g.ResidentBytes(), g.MappedBytes())
	}
	if g.Bytes() != g.ResidentBytes() {
		t.Fatalf("heap Bytes %d != ResidentBytes %d", g.Bytes(), g.ResidentBytes())
	}
	m := mappedTwin(t, g)
	switch m.View().Kind() {
	case "mapped":
		if m.ResidentBytes() != 0 {
			t.Fatalf("mapped graph reports %d resident bytes", m.ResidentBytes())
		}
		if m.MappedBytes() < g.ResidentBytes() || !m.Mapped() {
			t.Fatalf("mapped bytes %d, want >= section bytes %d", m.MappedBytes(), g.ResidentBytes())
		}
		if m.Bytes() != m.MappedBytes() {
			t.Fatalf("mapped Bytes %d != MappedBytes %d", m.Bytes(), m.MappedBytes())
		}
	case "heap":
		// The no-mmap fallback reads the image onto the heap and says so.
		if m.ResidentBytes() <= 0 || m.MappedBytes() != 0 {
			t.Fatalf("fallback accounting: resident=%d mapped=%d", m.ResidentBytes(), m.MappedBytes())
		}
	default:
		t.Fatalf("unknown view kind %q", m.View().Kind())
	}
}

// TestMappedClose: Close releases the mapping, is idempotent, and is a
// no-op on heap graphs.
func TestMappedClose(t *testing.T) {
	g := randomTestGraph(t, 30, 100, 9)
	if err := g.Close(); err != nil {
		t.Fatalf("heap Close: %v", err)
	}
	path := filepath.Join(t.TempDir(), "g.sasg")
	if err := g.WriteMappedFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenFileAuto sniffs both on-disk formats and rejects everything else.
func TestOpenFileAuto(t *testing.T) {
	g := randomTestGraph(t, 40, 200, 11)
	dir := t.TempDir()
	ssg := filepath.Join(dir, "g.ssg")
	sasg := filepath.Join(dir, "g.sasg")
	if err := g.SaveBinaryFile(ssg); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteMappedFile(sasg); err != nil {
		t.Fatal(err)
	}
	fromBin, err := OpenFileAuto(ssg)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.View().Kind() != "heap" {
		t.Fatalf(".ssg opened as %q, want heap", fromBin.View().Kind())
	}
	fromMap, err := OpenFileAuto(sasg)
	if err != nil {
		t.Fatal(err)
	}
	defer fromMap.Close()
	requireSectionsEqual(t, g, fromBin)
	requireSectionsEqual(t, g, fromMap)

	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("0 1 0.5\n1 2 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileAuto(junk); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("junk file: want ErrBadFormat, got %v", err)
	}
	if _, err := OpenFileAuto(filepath.Join(dir, "missing.sasg")); err == nil {
		t.Fatal("missing file should fail")
	}
}
