package graph

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"stopandstare/internal/rng"
)

// triangle returns the 4-node example graph of the paper's Figure 1 shape:
// a small DAG with explicit weights.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.AddEdge(0, 1, 0.5) // a -> b
	b.AddEdge(0, 2, 0.3) // a -> c
	b.AddEdge(1, 3, 0.4) // b -> d
	b.AddEdge(2, 3, 0.6) // c -> d
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatal("degree mismatch")
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || math.Abs(w-0.5) > 1e-6 {
		t.Fatalf("w(0,1) = %v, %v", w, ok)
	}
	if _, ok := g.EdgeWeight(1, 0); ok {
		t.Fatal("reverse edge should not exist")
	}
	if !g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0, 0.5)
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("self-loop not dropped: m=%d", g.NumEdges())
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.3)
	b.AddEdge(0, 1, 0.4)
	b.AddEdge(0, 1, 0.9) // sum clamps at 1
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("merged weight %v want 1 (clamped)", w)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder(0).Build(BuildOptions{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("want ErrNoNodes, got %v", err)
	}
	b := NewBuilder(2)
	b.AddEdge(0, 5, 0.1)
	if _, err := b.Build(BuildOptions{}); !errors.Is(err, ErrBadEndpoint) {
		t.Fatalf("want ErrBadEndpoint, got %v", err)
	}
	b2 := NewBuilder(2)
	b2.AddEdge(0, 1, 1.5)
	if _, err := b2.Build(BuildOptions{}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("want ErrBadWeight, got %v", err)
	}
	b3 := NewBuilder(2)
	b3.AddEdge(0, 1, 0.5)
	if _, err := b3.Build(BuildOptions{Model: Uniform, UniformP: 7}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("want ErrBadWeight for uniform p, got %v", err)
	}
}

func TestWeightedCascade(t *testing.T) {
	// WC: w(u,v) = 1/din(v) — §7.1 of the paper. Incoming sums are exactly 1.
	b := NewBuilder(4)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(0, 1, 1)
	g, err := b.Build(BuildOptions{Model: WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 3); math.Abs(w-1.0/3) > 1e-6 {
		t.Fatalf("WC weight %v want 1/3", w)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("WC weight %v want 1", w)
	}
	if math.Abs(g.InWeightSum(3)-1) > 1e-6 {
		t.Fatalf("in-sum %v want 1", g.InWeightSum(3))
	}
	if err := g.CheckLT(); err != nil {
		t.Fatalf("WC graph must satisfy LT: %v", err)
	}
}

func TestUniformModel(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build(BuildOptions{Model: Uniform, UniformP: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 0.25 {
		t.Fatalf("uniform weight %v", w)
	}
}

func TestTrivalencyModel(t *testing.T) {
	b := NewBuilder(10)
	for u := uint32(0); u < 9; u++ {
		b.AddEdge(u, u+1, 1)
	}
	g, err := b.Build(BuildOptions{Model: Trivalency, TrivalencySeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	valid := map[float32]bool{0.1: true, 0.01: true, 0.001: true}
	for u := 0; u < 9; u++ {
		_, ws := g.OutNeighbors(uint32(u))
		for _, w := range ws {
			if !valid[w] {
				t.Fatalf("trivalency weight %v", w)
			}
		}
	}
	// Deterministic in the seed.
	g2, _ := NewBuilderCopy(b).Build(BuildOptions{Model: Trivalency, TrivalencySeed: 99})
	for u := 0; u < 9; u++ {
		_, w1 := g.OutNeighbors(uint32(u))
		_, w2 := g2.OutNeighbors(uint32(u))
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatal("trivalency not deterministic")
			}
		}
	}
}

func TestCheckLTViolation(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2, 0.7)
	b.AddEdge(1, 2, 0.7)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLT(); !errors.Is(err, ErrLTViolation) {
		t.Fatalf("want ErrLTViolation, got %v", err)
	}
}

func TestSampleLTInNeighborDistribution(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3, 0.2)
	b.AddEdge(1, 3, 0.3)
	b.AddEdge(2, 3, 0.1) // total 0.6 < 1: walk stops w.p. 0.4
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const draws = 300000
	counts := map[uint32]int{}
	stops := 0
	for i := 0; i < draws; i++ {
		u, ok := g.SampleLTInNeighbor(3, r.Float64())
		if !ok {
			stops++
			continue
		}
		counts[u]++
	}
	check := func(got int, p float64, label string) {
		want := p * draws
		if math.Abs(float64(got)-want) > 6*math.Sqrt(want) {
			t.Fatalf("%s: got %d want ~%.0f", label, got, want)
		}
	}
	check(counts[0], 0.2, "neighbor 0")
	check(counts[1], 0.3, "neighbor 1")
	check(counts[2], 0.1, "neighbor 2")
	check(stops, 0.4, "stop")
}

func TestSampleLTNoInNeighbors(t *testing.T) {
	g := diamond(t)
	if _, ok := g.SampleLTInNeighbor(0, 0.0); ok {
		t.Fatal("node with no in-edges must always stop")
	}
}

func TestStats(t *testing.T) {
	g := diamond(t)
	s := g.Stats()
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("degrees %+v", s)
	}
	if !s.LTValid {
		t.Fatal("diamond is LT-valid")
	}
	if s.AvgOutDegree != 1 {
		t.Fatalf("avg %v", s.AvgOutDegree)
	}
}

// NewBuilderCopy clones a builder for reuse in tests.
func NewBuilderCopy(b *Builder) *Builder {
	nb := NewBuilder(b.n)
	nb.edges = append(nb.edges, b.edges...)
	return nb
}

func TestCSRInvariantsProperty(t *testing.T) {
	// For random edge lists, the dual CSR must be self-consistent:
	// (u,v) appears in u's out-list iff it appears in v's in-list, with the
	// same weight; adjacency segments sorted; inCum matches prefix sums.
	f := func(seed uint64, edgeBytes []byte) bool {
		n := 12
		b := NewBuilder(n)
		r := rng.New(seed)
		for range edgeBytes {
			u := uint32(r.Intn(n))
			v := uint32(r.Intn(n))
			b.AddEdge(u, v, r.Float64())
		}
		g, err := b.Build(BuildOptions{})
		if err != nil {
			return false
		}
		var outPairs, inPairs []uint64
		for u := 0; u < n; u++ {
			adj, ws := g.OutNeighbors(uint32(u))
			for i, v := range adj {
				if i > 0 && adj[i-1] >= v {
					return false // not strictly sorted ⇒ dup or disorder
				}
				_ = ws[i]
				outPairs = append(outPairs, uint64(u)<<32|uint64(v))
			}
		}
		for v := 0; v < n; v++ {
			adj, _ := g.InNeighbors(uint32(v))
			for i, u := range adj {
				if i > 0 && adj[i-1] >= u {
					return false
				}
				inPairs = append(inPairs, uint64(u)<<32|uint64(v))
			}
			// inCum consistency
			_, ws := g.InNeighbors(uint32(v))
			sum := 0.0
			for _, w := range ws {
				sum += float64(w)
			}
			if math.Abs(sum-g.InWeightSum(uint32(v))) > 1e-6 {
				return false
			}
		}
		if len(outPairs) != len(inPairs) {
			return false
		}
		seen := map[uint64]bool{}
		for _, p := range outPairs {
			seen[p] = true
		}
		for _, p := range inPairs {
			if !seen[p] {
				return false
			}
		}
		// weights agree across orientations
		for u := 0; u < n; u++ {
			adj, ws := g.OutNeighbors(uint32(u))
			for i, v := range adj {
				wIn := float32(-1)
				inAdj, inWs := g.InNeighbors(v)
				for j, uu := range inAdj {
					if uu == uint32(u) {
						wIn = inWs[j]
					}
				}
				if wIn != ws[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEdgeList(t *testing.T) {
	in := `# comment line
0 1 0.5
1 2       % trailing comment style
2 0 0.25
`
	g, err := LoadEdgeList(strings.NewReader(in), LoadOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if w, _ := g.EdgeWeight(1, 2); w != 1 { // default weight
		t.Fatalf("default weight %v", w)
	}
	if w, _ := g.EdgeWeight(2, 0); w != 0.25 {
		t.Fatalf("explicit weight %v", w)
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1 0.5\n"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected load should create both arcs")
	}
}

func TestLoadEdgeListRelabel(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("1000 2000\n2000 3000\n"),
		LoadOptions{Directed: true, Relabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("relabel failed: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 xyz\n",
	}
	for _, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in), LoadOptions{Directed: true}); !errors.Is(err, ErrParse) {
			t.Fatalf("input %q: want ErrParse, got %v", in, err)
		}
	}
	if _, err := LoadEdgeList(strings.NewReader(""), LoadOptions{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf, LoadOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed size")
	}
	if w, _ := g2.EdgeWeight(0, 2); math.Abs(w-0.3) > 1e-6 {
		t.Fatalf("round trip weight %v", w)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(5)
	b := NewBuilder(50)
	for i := 0; i < 300; i++ {
		b.AddEdge(uint32(r.Intn(50)), uint32(r.Intn(50)), r.Float64())
	}
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed size")
	}
	for v := 0; v < g.NumNodes(); v++ {
		a1, w1 := g.OutNeighbors(uint32(v))
		a2, w2 := g2.OutNeighbors(uint32(v))
		if len(a1) != len(a2) {
			t.Fatal("out degree mismatch")
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatal("adjacency mismatch")
			}
		}
		if math.Abs(g.InWeightSum(uint32(v))-g2.InWeightSum(uint32(v))) > 1e-9 {
			t.Fatal("inSum mismatch after reload")
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := LoadBinary(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := LoadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file should fail")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 0.5}, {1, 2, 0.5}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestGraphString(t *testing.T) {
	if s := diamond(t).String(); !strings.Contains(s, "n=4") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBytesPositive(t *testing.T) {
	if diamond(t).Bytes() <= 0 {
		t.Fatal("Bytes() should be positive")
	}
}
