package graph

import (
	"fmt"
	"math"
	"sort"
)

// WeightModel selects how edge influence probabilities are assigned at build
// time. The paper's experiments (§7.1) use WeightedCascade exclusively; the
// other models are provided for ablations and follow the conventions of the
// IM literature.
type WeightModel uint8

const (
	// WeightsAsGiven keeps the weights passed to AddEdge.
	WeightsAsGiven WeightModel = iota
	// WeightedCascade sets w(u,v) = 1/d_in(v) (§7.1: "the weight of the
	// edge (u,v) is calculated as 1/din(v)"). Valid for both IC and LT.
	WeightedCascade
	// Uniform sets every weight to BuildOptions.UniformP.
	Uniform
	// Trivalency picks each weight from {0.1, 0.01, 0.001} by a
	// deterministic hash of (u, v, TrivalencySeed).
	Trivalency
)

// BuildOptions controls Builder.Build.
type BuildOptions struct {
	Model          WeightModel
	UniformP       float64 // used by Uniform
	TrivalencySeed uint64  // used by Trivalency
}

// Builder accumulates directed edges and produces an immutable Graph.
// Duplicate edges are merged (weights summed, clamped to 1) and self-loops
// are dropped, matching the preprocessing used by the reference RIS codes.
type Builder struct {
	n     int
	edges []packedEdge
}

type packedEdge struct {
	key uint64 // u<<32 | v
	w   float32
}

// NewBuilder creates a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// NumRawEdges returns the number of AddEdge calls so far (pre-dedup).
func (b *Builder) NumRawEdges() int { return len(b.edges) }

// AddEdge records the directed edge (u,v) with weight w.
// Endpoints and weights are validated at Build time.
func (b *Builder) AddEdge(u, v uint32, w float64) {
	b.edges = append(b.edges, packedEdge{key: uint64(u)<<32 | uint64(v), w: float32(w)})
}

// AddUndirected records both arcs (u,v) and (v,u) with weight w, the
// treatment the paper applies to Orkut and Friendster (§7.1 Remark).
func (b *Builder) AddUndirected(u, v uint32, w float64) {
	b.AddEdge(u, v, w)
	b.AddEdge(v, u, w)
}

// Grow raises the node count (useful when streaming edges with unknown n).
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// trivalencyWeight deterministically hashes (u,v,seed) into {0.1,0.01,0.001}.
func trivalencyWeight(key, seed uint64) float64 {
	x := key ^ seed
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	switch x % 3 {
	case 0:
		return 0.1
	case 1:
		return 0.01
	default:
		return 0.001
	}
}

// Build validates, de-duplicates, applies the weight model, and assembles
// the dual-CSR graph. The builder may be reused afterwards.
func (b *Builder) Build(opt BuildOptions) (*Graph, error) {
	if b.n <= 0 {
		return nil, ErrNoNodes
	}
	n := b.n
	// Validate endpoints, drop self-loops.
	edges := make([]packedEdge, 0, len(b.edges))
	for _, e := range b.edges {
		u := uint32(e.key >> 32)
		v := uint32(e.key)
		if int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrBadEndpoint, u, v, n)
		}
		if u == v {
			continue
		}
		if opt.Model == WeightsAsGiven {
			if w := float64(e.w); w < 0 || w > 1 || math.IsNaN(w) {
				return nil, fmt.Errorf("%w: w(%d,%d)=%v", ErrBadWeight, u, v, e.w)
			}
		}
		edges = append(edges, e)
	}
	// Sort by (u,v) and merge duplicates (sum weights, clamp to 1).
	sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
	dedup := edges[:0]
	for i := 0; i < len(edges); {
		j := i + 1
		w := float64(edges[i].w)
		for j < len(edges) && edges[j].key == edges[i].key {
			w += float64(edges[j].w)
			j++
		}
		if w > 1 {
			w = 1
		}
		dedup = append(dedup, packedEdge{key: edges[i].key, w: float32(w)})
		i = j
	}
	edges = dedup
	m := len(edges)

	g := newHeapGraph(n, sections{
		outIdx: make([]int64, n+1),
		outAdj: make([]uint32, m),
		outW:   make([]float32, m),
		inIdx:  make([]int64, n+1),
		inAdj:  make([]uint32, m),
		inW:    make([]float32, m),
		inCum:  make([]float64, m),
		inSum:  make([]float64, n),
	})

	// Degree counting.
	for _, e := range edges {
		g.outIdx[uint32(e.key>>32)+1]++
		g.inIdx[uint32(e.key)+1]++
	}
	for v := 0; v < n; v++ {
		g.outIdx[v+1] += g.outIdx[v]
		g.inIdx[v+1] += g.inIdx[v]
	}

	// Resolve weights now that in-degrees are known.
	resolve := func(e packedEdge) float64 {
		switch opt.Model {
		case WeightedCascade:
			v := uint32(e.key)
			din := g.inIdx[v+1] - g.inIdx[v]
			return 1 / float64(din) // din ≥ 1: the edge itself enters v
		case Uniform:
			return opt.UniformP
		case Trivalency:
			return trivalencyWeight(e.key, opt.TrivalencySeed)
		default:
			return float64(e.w)
		}
	}
	if opt.Model == Uniform && (opt.UniformP < 0 || opt.UniformP > 1) {
		return nil, fmt.Errorf("%w: uniform p=%v", ErrBadWeight, opt.UniformP)
	}

	// Fill-in passes. Edges are sorted by (u,v), so the out segments come
	// out sorted by destination; a per-node cursor fills the in segments
	// sorted by source (stable because edges are scanned in (u,v) order).
	outCur := make([]int64, n)
	inCur := make([]int64, n)
	copy(outCur, g.outIdx[:n])
	copy(inCur, g.inIdx[:n])
	for _, e := range edges {
		u := uint32(e.key >> 32)
		v := uint32(e.key)
		w := resolve(e)
		oi := outCur[u]
		g.outAdj[oi] = v
		g.outW[oi] = float32(w)
		outCur[u] = oi + 1
		ii := inCur[v]
		g.inAdj[ii] = u
		g.inW[ii] = float32(w)
		inCur[v] = ii + 1
	}

	// Per-destination cumulative weights for LT reverse-walk sampling.
	for v := 0; v < n; v++ {
		lo, hi := g.inIdx[v], g.inIdx[v+1]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += float64(g.inW[i])
			g.inCum[i] = sum
		}
		g.inSum[v] = sum
	}
	return g, nil
}

// Edge is a convenience triple for FromEdges.
type Edge struct {
	U, V uint32
	W    float64
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build(opt)
}
