package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// The .sasg ("Stop-And-Stare Graph") format is the out-of-core twin of the
// .ssg binary format: instead of a stream that LoadBinary parses and copies
// into heap slices, the file IS the graph's memory layout. Every array the
// Graph needs at query time — both CSR offset tables, adjacency, weights,
// the LT cumulative in-weights and per-node in-weight sums — is a 64-byte-
// aligned little-endian section, so OpenMapped can mmap the file read-only,
// cast the sections in place, and return a working graph in O(1) regardless
// of edge count. Pages fault in on first touch and are shared by every
// process that mapped the same file.
//
// Layout (all fields little-endian):
//
//	off   size  field
//	0     4     magic "SASG"
//	4     4     version (currently 1)
//	8     4     endian tag 0x01020304 (raw byte order probe)
//	12    4     reserved (0)
//	16    8     n, node count (uint64)
//	24    8     m, edge count (uint64)
//	32    128   section table: 8 × {byte offset uint64, byte length uint64}
//	160   32    zero padding to the 192-byte header boundary
//	192   ...   sections, each starting on a 64-byte boundary
//
// Sections, in canonical order (offsets in the table must match the packed
// 64-byte-aligned layout exactly — the table is a validation cross-check and
// a format-evolution hook, not a free-placement mechanism):
//
//	0  outIdx  (n+1)×int64     forward CSR offsets
//	1  outAdj  m×uint32        forward adjacency
//	2  outW    m×float32       forward edge weights
//	3  inIdx   (n+1)×int64     reverse CSR offsets
//	4  inAdj   m×uint32        reverse adjacency
//	5  inW     m×float32       reverse edge weights
//	6  inCum   m×float64       per-destination running in-weight sums (LT)
//	7  inSum   n×float64       per-node total in-weight
//
// OpenMapped performs structural validation only (magic, version, byte
// order, count overflow, table alignment/length/placement, CSR endpoint
// sums): content such as adjacency ids is trusted, exactly like any other
// mmap-ed database file — validating it would force every page and defeat
// the O(1) open.
const (
	sasgMagic       = 0x47534153 // "SASG" little-endian
	sasgVersion     = 1
	sasgEndianTag   = 0x01020304
	sasgAlign       = 64
	sasgHeaderBytes = 192
	sasgNumSections = 8
)

// ErrBadMapped reports a corrupt, foreign or unsupported .sasg file.
var ErrBadMapped = errors.New("graph: bad mapped graph (.sasg) file")

// hostLittleEndian reports whether this machine stores integers in the
// byte order the mapped sections are cast with. The format is defined
// little-endian; big-endian hosts must fall back to LoadBinary.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// sasgSection is one entry of the section table.
type sasgSection struct {
	off uint64 // byte offset from the start of the file
	len uint64 // byte length (unpadded)
}

// sasgLayout computes the canonical packed section layout for (n, m):
// sections in canonical order, each starting at the next 64-byte boundary
// after its predecessor. Returns the table and the total file size.
// Counts must already be overflow-checked (sasgCheckCounts).
func sasgLayout(n, m uint64) ([sasgNumSections]sasgSection, uint64) {
	lens := [sasgNumSections]uint64{
		(n + 1) * 8, // outIdx
		m * 4,       // outAdj
		m * 4,       // outW
		(n + 1) * 8, // inIdx
		m * 4,       // inAdj
		m * 4,       // inW
		m * 8,       // inCum
		n * 8,       // inSum
	}
	var secs [sasgNumSections]sasgSection
	off := uint64(sasgHeaderBytes)
	var end uint64
	for i, l := range lens {
		secs[i] = sasgSection{off: off, len: l}
		end = off + l
		off = end
		if rem := off % sasgAlign; rem != 0 {
			off += sasgAlign - rem
		}
	}
	// The file ends where the last section's data ends — no trailing pad.
	return secs, end
}

// sasgCheckCounts rejects node/edge counts that would overflow slice lengths
// or the uint64 layout arithmetic on this platform (int is 32-bit on 386).
func sasgCheckCounts(n, m uint64) error {
	if n == 0 {
		return fmt.Errorf("%w: zero nodes", ErrBadMapped)
	}
	// Each section length is at most max(n+1, m)×8 bytes and must fit an
	// int (slice length in elements is smaller still).
	if n > math.MaxInt/8-1 {
		return fmt.Errorf("%w: node count %d overflows this platform", ErrBadMapped, n)
	}
	if m > math.MaxInt/8 {
		return fmt.Errorf("%w: edge count %d overflows this platform", ErrBadMapped, m)
	}
	return nil
}

// WriteMapped writes the graph in the mmap-able .sasg format. The writer
// streams through the same section-writer helper as SaveBinary; it never
// builds the padded image in memory.
func (g *Graph) WriteMapped(w io.Writer) error {
	n, m := uint64(g.n), uint64(len(g.outAdj))
	if err := sasgCheckCounts(n, m); err != nil {
		return err
	}
	secs, _ := sasgLayout(n, m)
	var hdr [sasgHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], sasgMagic)
	binary.LittleEndian.PutUint32(hdr[4:], sasgVersion)
	binary.LittleEndian.PutUint32(hdr[8:], sasgEndianTag)
	binary.LittleEndian.PutUint64(hdr[16:], n)
	binary.LittleEndian.PutUint64(hdr[24:], m)
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[32+16*i:], s.off)
		binary.LittleEndian.PutUint64(hdr[40+16*i:], s.len)
	}
	sw := newSectionWriter(w)
	if err := sw.bytes(hdr[:]); err != nil {
		return err
	}
	write := []func() error{
		func() error { return sw.i64s(g.outIdx) },
		func() error { return sw.u32s(g.outAdj) },
		func() error { return sw.f32s(g.outW) },
		func() error { return sw.i64s(g.inIdx) },
		func() error { return sw.u32s(g.inAdj) },
		func() error { return sw.f32s(g.inW) },
		func() error { return sw.f64s(g.inCum) },
		func() error { return sw.f64s(g.inSum) },
	}
	for i, fn := range write {
		if err := sw.padTo(sasgAlign); err != nil {
			return err
		}
		if sw.off != int64(secs[i].off) {
			return fmt.Errorf("graph: internal error: section %d at offset %d, layout says %d", i, sw.off, secs[i].off)
		}
		if err := fn(); err != nil {
			return err
		}
	}
	return sw.flush()
}

// WriteMappedFile writes the .sasg format to path.
func (g *Graph) WriteMappedFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteMapped(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSasgHeader validates the header and section table of a .sasg image of
// fileSize bytes, returning the node/edge counts and the section table.
// Every structural failure mode — foreign magic, unsupported version or byte
// order, count overflow, a misaligned or misplaced table entry, a section
// length that disagrees with the counts, a file truncated mid-section —
// yields an error wrapping ErrBadMapped.
func parseSasgHeader(hdr []byte, fileSize uint64) (n, m uint64, secs [sasgNumSections]sasgSection, err error) {
	fail := func(format string, args ...any) (uint64, uint64, [sasgNumSections]sasgSection, error) {
		return 0, 0, secs, fmt.Errorf("%w: %s", ErrBadMapped, fmt.Sprintf(format, args...))
	}
	if len(hdr) < sasgHeaderBytes {
		return fail("truncated header: %d bytes, want %d", len(hdr), sasgHeaderBytes)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != sasgMagic {
		return fail("bad magic 0x%08x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != sasgVersion {
		return fail("unsupported version %d", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != sasgEndianTag {
		return fail("foreign byte order (endian tag 0x%08x)", got)
	}
	n = binary.LittleEndian.Uint64(hdr[16:])
	m = binary.LittleEndian.Uint64(hdr[24:])
	if err := sasgCheckCounts(n, m); err != nil {
		return 0, 0, secs, err
	}
	want, total := sasgLayout(n, m)
	if total > fileSize {
		return fail("truncated: file is %d bytes, layout for n=%d m=%d needs %d", fileSize, n, m, total)
	}
	for i := 0; i < sasgNumSections; i++ {
		secs[i] = sasgSection{
			off: binary.LittleEndian.Uint64(hdr[32+16*i:]),
			len: binary.LittleEndian.Uint64(hdr[40+16*i:]),
		}
		if secs[i].off%sasgAlign != 0 {
			return fail("section %d misaligned at offset %d (need %d-byte alignment)", i, secs[i].off, sasgAlign)
		}
		if secs[i].len != want[i].len {
			return fail("section %d length %d, want %d for n=%d m=%d", i, secs[i].len, want[i].len, n, m)
		}
		if secs[i].off != want[i].off {
			return fail("section %d at offset %d, canonical layout says %d", i, secs[i].off, want[i].off)
		}
		if secs[i].off > fileSize || secs[i].len > fileSize-secs[i].off {
			return fail("section %d [%d, +%d) extends past the %d-byte file", i, secs[i].off, secs[i].len, fileSize)
		}
	}
	return n, m, secs, nil
}

// castI64 / castU32 / castF32 / castF64 alias a section's bytes in place.
// The base pointer is at least 8-byte aligned (page-aligned for mmap) and
// section offsets are 64-byte aligned, so every element is aligned.
func castI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// graphFromMapped validates data (a complete .sasg image, mmap-ed or read
// into aligned memory) and builds the Graph whose sections alias it, charging
// the backing bytes to the supplied view. No section data is read beyond the
// two CSR endpoints checked against m — opening stays O(1) in the edge count.
func graphFromMapped(data []byte, view View) (*Graph, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("%w: mapped graphs require a little-endian host (use LoadBinary)", ErrBadMapped)
	}
	n, m, secs, err := parseSasgHeader(data, uint64(len(data)))
	if err != nil {
		return nil, err
	}
	sec := func(i int) []byte { return data[secs[i].off : secs[i].off+secs[i].len] }
	s := sections{
		outIdx: castI64(sec(0)),
		outAdj: castU32(sec(1)),
		outW:   castF32(sec(2)),
		inIdx:  castI64(sec(3)),
		inAdj:  castU32(sec(4)),
		inW:    castF32(sec(5)),
		inCum:  castF64(sec(6)),
		inSum:  castF64(sec(7)),
	}
	// Cheap endpoint sanity: both offset tables must start at 0 and end at
	// m. Touches four pages, catches swapped or zeroed sections early.
	if s.outIdx[0] != 0 || s.inIdx[0] != 0 || s.outIdx[n] != int64(m) || s.inIdx[n] != int64(m) {
		return nil, fmt.Errorf("%w: CSR offset tables disagree with edge count %d", ErrBadMapped, m)
	}
	return &Graph{n: int(n), sections: s, view: view}, nil
}

// OpenFileAuto opens a binary graph file of either on-disk format, sniffing
// the magic: .sasg mapped graphs open via OpenMapped (O(1), pages shared),
// .ssg binaries load via LoadBinaryFile (full read + heap copy). Text edge
// lists are not sniffed — use LoadEdgeListFileAuto for those.
func OpenFileAuto(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, ErrBadFormat)
	}
	switch binary.LittleEndian.Uint32(magic[:]) {
	case sasgMagic:
		return OpenMapped(path)
	case binMagic:
		return LoadBinaryFile(path)
	}
	return nil, fmt.Errorf("%w: %s is neither a .ssg binary nor a .sasg mapped graph (text edge lists need the text loader)", ErrBadFormat, path)
}
