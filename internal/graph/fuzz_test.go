package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList checks the text parser never panics and that any graph
// it accepts satisfies the CSR invariants.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1 0.5\n1 2\n")
	f.Add("# comment\n3 4 1.0\n")
	f.Add("0 0 0.1\n")
	f.Add("10 20 0.3 extra\n")
	f.Add("")
	f.Add("x y z\n")
	f.Add("0 1 -0.5\n")
	f.Add("0 1 2.5\n")
	f.Add("18446744073709551615 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Directed: true, Relabel: true})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		n := g.NumNodes()
		if n <= 0 {
			t.Fatal("accepted graph with no nodes")
		}
		var m int64
		for v := 0; v < n; v++ {
			adj, ws := g.OutNeighbors(uint32(v))
			m += int64(len(adj))
			for i, u := range adj {
				if int(u) >= n {
					t.Fatal("out-of-range adjacency")
				}
				if w := ws[i]; w < 0 || w > 1 {
					t.Fatalf("weight %v outside [0,1]", w)
				}
			}
		}
		if m != g.NumEdges() {
			t.Fatal("edge count mismatch")
		}
	})
}

// FuzzLoadBinary checks the binary loader rejects corrupt input without
// panicking or accepting inconsistent graphs.
func FuzzLoadBinary(f *testing.F) {
	// Seed with a valid file and some mutations.
	b := NewBuilder(5)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(3, 4, 1)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.SaveBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 30 {
		corrupt[28] ^= 0xFF
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := LoadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent.
		n := g.NumNodes()
		for v := 0; v < n; v++ {
			adj, _ := g.OutNeighbors(uint32(v))
			for _, u := range adj {
				if int(u) >= n {
					t.Fatal("out-of-range adjacency in accepted binary graph")
				}
			}
		}
	})
}
