package graph

import (
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// LoadEdgeListFileAuto loads a text edge list, transparently decompressing
// when the path ends in ".gz" — the format SNAP distributes its datasets
// in, so downstream users can point the loader at the original archives.
func LoadEdgeListFileAuto(path string, opt LoadOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	return LoadEdgeList(r, opt)
}

// SaveEdgeListFileAuto writes a text edge list, gzip-compressing when the
// path ends in ".gz".
func (g *Graph) SaveEdgeListFileAuto(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	if err := g.SaveEdgeList(w); err != nil {
		f.Close()
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
