package graph

import (
	"fmt"
	"sort"
)

// DegreeHistogram returns the out-degree (and in-degree) distributions as
// sorted (degree, count) pairs — the standard check that a generated
// stand-in reproduces its target's heavy tail.
type DegreeHistogram struct {
	Out []DegreeBucket
	In  []DegreeBucket
}

// DegreeBucket is one histogram bar.
type DegreeBucket struct {
	Degree int
	Count  int
}

// Degrees computes both degree histograms in one pass.
func (g *Graph) Degrees() DegreeHistogram {
	outCounts := map[int]int{}
	inCounts := map[int]int{}
	for v := 0; v < g.n; v++ {
		outCounts[g.OutDegree(uint32(v))]++
		inCounts[g.InDegree(uint32(v))]++
	}
	toBuckets := func(m map[int]int) []DegreeBucket {
		out := make([]DegreeBucket, 0, len(m))
		for d, c := range m {
			out = append(out, DegreeBucket{Degree: d, Count: c})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
		return out
	}
	return DegreeHistogram{Out: toBuckets(outCounts), In: toBuckets(inCounts)}
}

// WeaklyConnectedComponents labels every node with a component id (ids are
// dense, 0-based, in first-seen order) and returns the component sizes.
// Influence in disconnected components is independent, so this is the
// first sanity check on a loaded network.
func (g *Graph) WeaklyConnectedComponents() (labels []int32, sizes []int) {
	labels = make([]int32, g.n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]uint32, 0, 1024)
	for start := 0; start < g.n; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(len(sizes))
		labels[start] = id
		size := 1
		queue = append(queue[:0], uint32(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			outAdj, _ := g.OutNeighbors(v)
			for _, u := range outAdj {
				if labels[u] < 0 {
					labels[u] = id
					size++
					queue = append(queue, u)
				}
			}
			inAdj, _ := g.InNeighbors(v)
			for _, u := range inAdj {
				if labels[u] < 0 {
					labels[u] = id
					size++
					queue = append(queue, u)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// LargestComponentFraction returns |largest WCC| / n.
func (g *Graph) LargestComponentFraction() float64 {
	_, sizes := g.WeaklyConnectedComponents()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if g.n == 0 {
		return 0
	}
	return float64(max) / float64(g.n)
}

// Subgraph induces the graph on the given nodes, relabelling them densely
// in the order supplied. Edge weights are preserved. Returns the induced
// graph and the old→new id mapping.
func (g *Graph) Subgraph(nodes []uint32) (*Graph, map[uint32]uint32, error) {
	if len(nodes) == 0 {
		return nil, nil, ErrNoNodes
	}
	remap := make(map[uint32]uint32, len(nodes))
	for i, v := range nodes {
		if int(v) >= g.n {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadEndpoint, v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in subgraph", v)
		}
		remap[v] = uint32(i)
	}
	b := NewBuilder(len(nodes))
	for _, v := range nodes {
		adj, ws := g.OutNeighbors(v)
		for i, u := range adj {
			if nu, ok := remap[u]; ok {
				b.AddEdge(remap[v], nu, float64(ws[i]))
			}
		}
	}
	sub, err := b.Build(BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	return sub, remap, nil
}

// Reverse returns the transpose graph (every arc flipped, weights kept).
// RIS on G is forward reachability on Reverse(G); exposing it makes that
// equivalence testable.
func (g *Graph) Reverse() (*Graph, error) {
	b := NewBuilder(g.n)
	for v := 0; v < g.n; v++ {
		adj, ws := g.OutNeighbors(uint32(v))
		for i, u := range adj {
			b.AddEdge(u, uint32(v), float64(ws[i]))
		}
	}
	return b.Build(BuildOptions{})
}
