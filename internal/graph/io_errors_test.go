package graph

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests cover the io.go error paths the happy-path suites skip:
// truncated gzip archives, out-of-range endpoints (both the text loader's
// uint32 overflow and the binary loader's adjacency bounds), empty inputs,
// and duplicate edge lines.

func TestLoadEdgeListEmptyInput(t *testing.T) {
	for name, input := range map[string]string{
		"empty":         "",
		"comments-only": "# header\n% another\n\n   \n",
	} {
		if _, err := LoadEdgeList(strings.NewReader(input), LoadOptions{}); !errors.Is(err, ErrNoNodes) {
			t.Errorf("%s: want ErrNoNodes, got %v", name, err)
		}
	}
}

func TestLoadEdgeListOutOfRangeEndpoint(t *testing.T) {
	big := uint64(math.MaxUint32) + 1
	for name, input := range map[string]string{
		"oversized-source": "4294967296 1 0.5\n",
		"oversized-target": "1 4294967296 0.5\n",
	} {
		if _, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Directed: true}); !errors.Is(err, ErrParse) {
			t.Errorf("%s: want ErrParse for id %d, got %v", name, big, err)
		}
	}
	// With Relabel, huge raw ids are legal: they map to a dense range.
	g, err := LoadEdgeList(strings.NewReader("4294967296 9999999999 0.5\n"),
		LoadOptions{Directed: true, Relabel: true})
	if err != nil {
		t.Fatalf("relabel of huge ids should succeed: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("relabel produced n=%d m=%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
}

func TestLoadEdgeListDuplicateEdges(t *testing.T) {
	// Duplicate lines are merged by the builder; weights sum and clamp at 1
	// (the same semantics TestDuplicateEdgesMerged pins for the builder).
	input := "0 1 0.3\n0 1 0.4\n0 1 0.9\n1 2 0.2\n1 2 0.2\n"
	g, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (duplicates merged)", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("merged weight %v, want 1 (clamped)", w)
	}
	if w, _ := g.EdgeWeight(1, 2); math.Abs(w-0.4) > 1e-6 {
		t.Fatalf("merged weight %v, want 0.4", w)
	}
}

func TestLoadTruncatedGzip(t *testing.T) {
	// Build a valid gzip'd edge list, then cut it mid-stream: the gzip
	// reader hits an unexpected EOF and the loader must surface it instead
	// of returning a silently shortened graph.
	var full bytes.Buffer
	zw := gzip.NewWriter(&full)
	for i := 0; i < 2000; i++ {
		if _, err := zw.Write([]byte("0 1 0.5\n1 2 0.5\n")); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "truncated.txt.gz")
	if err := os.WriteFile(path, full.Bytes()[:full.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeListFileAuto(path, LoadOptions{Directed: true}); err == nil {
		t.Fatal("truncated gzip should fail to load")
	}
}

func TestLoadBinaryOutOfRangeAdjacency(t *testing.T) {
	// Serialize a valid 2-node graph, then corrupt an adjacency id to point
	// past n: LoadBinary must reject it (ErrBadFormat), not index out of
	// bounds later.
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Layout: 24-byte header, then degs (2n u32), then outAdj (m u32).
	outAdjOff := 24 + 2*2*4
	binary.LittleEndian.PutUint32(data[outAdjOff:], 7) // node 7 of 2
	if _, err := LoadBinary(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat for out-of-range adjacency, got %v", err)
	}
}

func TestLoadBinaryEmptyAndShortHeader(t *testing.T) {
	if _, err := LoadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty binary input should fail")
	}
	if _, err := LoadBinary(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("short header should fail")
	}
}
