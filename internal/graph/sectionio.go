package graph

import (
	"bufio"
	"encoding/binary"
	"io"
)

// This file is the one place that knows how numeric graph sections get on and
// off disk: both binary writers — SaveBinary (.ssg) and WriteMapped (.sasg) —
// stream through sectionWriter, and LoadBinary reads back through
// sectionReader, so the two formats share buffer sizes, chunking and
// little-endian encoding and cannot drift apart.

const (
	// ioBufBytes sizes the bufio layer of every binary graph path.
	ioBufBytes = 1 << 20
	// ioScratchBytes sizes the encode/decode chunk scratch.
	ioScratchBytes = 1 << 16
)

// sectionWriter streams numeric arrays little-endian through one shared
// scratch buffer, tracking the running byte offset so format writers can pad
// sections out to an alignment boundary.
type sectionWriter struct {
	w   *bufio.Writer
	buf []byte
	off int64 // bytes written so far
}

func newSectionWriter(w io.Writer) *sectionWriter {
	return &sectionWriter{w: bufio.NewWriterSize(w, ioBufBytes), buf: make([]byte, ioScratchBytes)}
}

func (sw *sectionWriter) bytes(b []byte) error {
	n, err := sw.w.Write(b)
	sw.off += int64(n)
	return err
}

func (sw *sectionWriter) u32s(xs []uint32) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sw.buf)/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(sw.buf[i*4:], xs[i])
		}
		if err := sw.bytes(sw.buf[:k*4]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func (sw *sectionWriter) f32s(xs []float32) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sw.buf)/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(sw.buf[i*4:], floatBits(xs[i]))
		}
		if err := sw.bytes(sw.buf[:k*4]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func (sw *sectionWriter) i64s(xs []int64) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sw.buf)/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(sw.buf[i*8:], uint64(xs[i]))
		}
		if err := sw.bytes(sw.buf[:k*8]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func (sw *sectionWriter) f64s(xs []float64) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sw.buf)/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(sw.buf[i*8:], float64Bits(xs[i]))
		}
		if err := sw.bytes(sw.buf[:k*8]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

// padTo writes zero bytes until the running offset is a multiple of align.
func (sw *sectionWriter) padTo(align int64) error {
	rem := sw.off % align
	if rem == 0 {
		return nil
	}
	var zeros [sasgAlign]byte
	return sw.bytes(zeros[:align-rem])
}

func (sw *sectionWriter) flush() error { return sw.w.Flush() }

// sectionReader is the decoding twin: chunked little-endian reads through
// the same scratch sizing.
type sectionReader struct {
	r   *bufio.Reader
	buf []byte
}

func newSectionReader(r io.Reader) *sectionReader {
	return &sectionReader{r: bufio.NewReaderSize(r, ioBufBytes), buf: make([]byte, ioScratchBytes)}
}

func (sr *sectionReader) u32s(xs []uint32) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sr.buf)/4)
		if _, err := io.ReadFull(sr.r, sr.buf[:k*4]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			xs[i] = binary.LittleEndian.Uint32(sr.buf[i*4:])
		}
		xs = xs[k:]
	}
	return nil
}

func (sr *sectionReader) f32s(xs []float32) error {
	for len(xs) > 0 {
		k := min(len(xs), len(sr.buf)/4)
		if _, err := io.ReadFull(sr.r, sr.buf[:k*4]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			xs[i] = floatFrom(binary.LittleEndian.Uint32(sr.buf[i*4:]))
		}
		xs = xs[k:]
	}
	return nil
}
