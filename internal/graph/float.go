package graph

import "math"

func floatBits(f float32) uint32   { return math.Float32bits(f) }
func floatFrom(b uint32) float32   { return math.Float32frombits(b) }
func float64Bits(f float64) uint64 { return math.Float64bits(f) }
