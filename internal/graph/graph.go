// Package graph implements the directed, edge-weighted network substrate the
// paper operates on (§2): G = (V, E, w) with w(u,v) ∈ [0,1] interpreted as
// influence probabilities. The representation is a dual CSR (compressed
// sparse row) — one adjacency in forward orientation for diffusion
// simulation, one in reverse orientation for RIS sampling — plus per-node
// cumulative in-weights so the LT reverse walk can pick an in-neighbour
// proportionally to w(u,v) in O(log d_in(v)).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable directed weighted graph in dual-CSR form.
// Node ids are dense in [0, NumNodes()). The arrays live behind a View
// (see view.go): heap slices for built/parsed graphs, windows of a shared
// read-only file mapping for graphs opened with OpenMapped. The sections are
// embedded, so every accessor below runs on plain slices either way.
type Graph struct {
	n int
	sections
	view View
}

// Errors returned by construction and validation.
var (
	ErrNoNodes     = errors.New("graph: graph must have at least one node")
	ErrBadEndpoint = errors.New("graph: edge endpoint out of range")
	ErrBadWeight   = errors.New("graph: edge weight outside [0,1]")
	ErrLTViolation = errors.New("graph: LT model requires sum of incoming weights <= 1")
)

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns |E| (after de-duplication and self-loop removal).
func (g *Graph) NumEdges() int64 { return int64(len(g.outAdj)) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.outIdx[v+1] - g.outIdx[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v uint32) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// OutNeighbors returns v's out-neighbour ids and the matching edge weights.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(v uint32) ([]uint32, []float32) {
	lo, hi := g.outIdx[v], g.outIdx[v+1]
	return g.outAdj[lo:hi], g.outW[lo:hi]
}

// InNeighbors returns v's in-neighbour ids and the matching edge weights.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) ([]uint32, []float32) {
	lo, hi := g.inIdx[v], g.inIdx[v+1]
	return g.inAdj[lo:hi], g.inW[lo:hi]
}

// InWeightSum returns Σ_u w(u,v), the total incoming influence weight of v.
// Under the LT model this must be ≤ 1 (§2.1).
func (g *Graph) InWeightSum(v uint32) float64 { return g.inSum[v] }

// ReverseCSR exposes the reverse-adjacency arrays directly: idx has length
// n+1 and node v's in-edges are adj[idx[v]:idx[v+1]] (sources) with weights
// w[idx[v]:idx[v+1]]. This is the plan-facing accessor the compiled sampling
// kernels (internal/ris.Plan) are built on: a plan compiler sweeps the whole
// reverse CSR once without n accessor calls, and the fused kernels walk adj
// in place instead of re-slicing through InNeighbors per node. The returned
// slices alias internal storage and must not be modified.
func (g *Graph) ReverseCSR() (idx []int64, adj []uint32, w []float32) {
	return g.inIdx, g.inAdj, g.inW
}

// SampleLTInNeighbor maps a uniform draw u01 ∈ [0,1) to the LT reverse-walk
// step at node v: with probability InWeightSum(v) it returns an in-neighbour
// chosen proportionally to its edge weight, otherwise ok=false (the walk
// stops, i.e. v's threshold was not met by any single live edge).
func (g *Graph) SampleLTInNeighbor(v uint32, u01 float64) (u uint32, ok bool) {
	if u01 >= g.inSum[v] {
		return 0, false
	}
	lo, hi := int(g.inIdx[v]), int(g.inIdx[v+1])
	// First index i in [lo,hi) with inCum[i] > u01.
	i := lo + sort.Search(hi-lo, func(k int) bool { return g.inCum[lo+k] > u01 })
	if i >= hi { // numerical edge: u01 == inSum(v) after rounding
		i = hi - 1
	}
	return g.inAdj[i], true
}

// EdgeWeight returns w(u,v) and whether the edge (u,v) exists.
func (g *Graph) EdgeWeight(u, v uint32) (float64, bool) {
	lo, hi := int(g.outIdx[u]), int(g.outIdx[u+1])
	i := lo + sort.Search(hi-lo, func(k int) bool { return g.outAdj[lo+k] >= v })
	if i < hi && g.outAdj[i] == v {
		return float64(g.outW[i]), true
	}
	return 0, false
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Graph) HasEdge(u, v uint32) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// CheckLT validates the LT side condition Σ_u w(u,v) ≤ 1 for every node,
// returning a descriptive error for the first violation.
func (g *Graph) CheckLT() error {
	const tol = 1e-6
	for v := 0; v < g.n; v++ {
		if g.inSum[v] > 1+tol {
			return fmt.Errorf("%w: node %d has incoming weight %.6f", ErrLTViolation, v, g.inSum[v])
		}
	}
	return nil
}

// Bytes returns the approximate total footprint of the graph arrays,
// resident plus mapped. Use ResidentBytes/MappedBytes for the split: mapped
// bytes are kernel-shared file pages, not private process memory.
func (g *Graph) Bytes() int64 { return g.ResidentBytes() + g.MappedBytes() }

// Stats summarises a graph (Table 2 columns plus a few extras).
type Stats struct {
	Nodes        int
	Edges        int64
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	Isolated     int     // nodes with no in- or out-edges
	MaxInWeight  float64 // max over v of Σ_u w(u,v)
	LTValid      bool
}

// Stats computes summary statistics in one pass.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.n, Edges: g.NumEdges(), LTValid: true}
	if g.n > 0 {
		s.AvgOutDegree = float64(s.Edges) / float64(g.n)
	}
	for v := 0; v < g.n; v++ {
		od := int(g.outIdx[v+1] - g.outIdx[v])
		id := int(g.inIdx[v+1] - g.inIdx[v])
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
		if od == 0 && id == 0 {
			s.Isolated++
		}
		if g.inSum[v] > s.MaxInWeight {
			s.MaxInWeight = g.inSum[v]
		}
	}
	if s.MaxInWeight > 1+1e-6 {
		s.LTValid = false
	}
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.2f}", g.n, g.NumEdges(),
		float64(g.NumEdges())/math.Max(1, float64(g.n)))
}
