package graph

import (
	"testing"

	"stopandstare/internal/rng"
)

func TestDegreeHistogram(t *testing.T) {
	g := diamond(t)
	h := g.Degrees()
	// diamond: out-degrees 2,1,1,0 → buckets {0:1, 1:2, 2:1}
	want := map[int]int{0: 1, 1: 2, 2: 1}
	if len(h.Out) != len(want) {
		t.Fatalf("out buckets %v", h.Out)
	}
	for _, b := range h.Out {
		if want[b.Degree] != b.Count {
			t.Fatalf("bucket %+v", b)
		}
	}
	total := 0
	for _, b := range h.In {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("in histogram covers %d nodes", total)
	}
	// Sorted ascending.
	for i := 1; i < len(h.Out); i++ {
		if h.Out[i-1].Degree >= h.Out[i].Degree {
			t.Fatal("histogram not sorted")
		}
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(2, 1, 0.5) // {0,1,2}
	b.AddEdge(3, 4, 0.5) // {3,4}
	// 5, 6 isolated
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, sizes := g.WeaklyConnectedComponents()
	if len(sizes) != 4 {
		t.Fatalf("want 4 components, got %v", sizes)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("3,4 should share a component")
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Fatal("isolated nodes must be their own components")
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 7 {
		t.Fatalf("component sizes sum to %d", sum)
	}
	if f := g.LargestComponentFraction(); f != 3.0/7 {
		t.Fatalf("largest fraction %v", f)
	}
}

func TestSubgraph(t *testing.T) {
	g := diamond(t)
	sub, remap, err := g.Subgraph([]uint32{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("n=%d", sub.NumNodes())
	}
	// Edges kept: 0->1 and 1->3; edge through removed node 2 is gone.
	if sub.NumEdges() != 2 {
		t.Fatalf("m=%d", sub.NumEdges())
	}
	if w, ok := sub.EdgeWeight(remap[0], remap[1]); !ok || w != 0.5 {
		t.Fatalf("w=%v ok=%v", w, ok)
	}
	if _, ok := sub.EdgeWeight(remap[0], remap[3]); ok {
		t.Fatal("phantom edge in subgraph")
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := diamond(t)
	if _, _, err := g.Subgraph(nil); err == nil {
		t.Fatal("empty subgraph should fail")
	}
	if _, _, err := g.Subgraph([]uint32{0, 99}); err == nil {
		t.Fatal("out-of-range node should fail")
	}
	if _, _, err := g.Subgraph([]uint32{0, 0}); err == nil {
		t.Fatal("duplicate node should fail")
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	r := rng.New(7)
	b := NewBuilder(20)
	for i := 0; i < 80; i++ {
		b.AddEdge(uint32(r.Intn(20)), uint32(r.Intn(20)), r.Float64())
	}
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := g.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	if rev.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
	// every edge flipped
	for u := 0; u < 20; u++ {
		adj, ws := g.OutNeighbors(uint32(u))
		for i, v := range adj {
			w, ok := rev.EdgeWeight(v, uint32(u))
			if !ok || float32(w) != ws[i] {
				t.Fatalf("edge (%d,%d) not reversed correctly", u, v)
			}
		}
	}
	back, err := rev.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		a1, w1 := g.OutNeighbors(uint32(u))
		a2, w2 := back.OutNeighbors(uint32(u))
		if len(a1) != len(a2) {
			t.Fatal("double reverse changed degrees")
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatal("double reverse not identity")
			}
		}
	}
}

func TestLargestComponentOnGenerated(t *testing.T) {
	// A reasonably dense ER graph should be mostly one component.
	r := rng.New(13)
	b := NewBuilder(200)
	for i := 0; i < 1200; i++ {
		b.AddEdge(uint32(r.Intn(200)), uint32(r.Intn(200)), 0.5)
	}
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f := g.LargestComponentFraction(); f < 0.9 {
		t.Fatalf("dense ER graph fragmented: %v", f)
	}
}
