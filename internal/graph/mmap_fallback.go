//go:build !unix

package graph

import (
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// OpenMapped on platforms without a usable mmap reads the whole .sasg file
// into 8-byte-aligned private memory and aliases the sections there: the
// same format and validation, but an O(file) open charged as resident heap
// (Kind "heap", MappedBytes 0) — no page sharing. Close is a no-op; the GC
// reclaims the copy.
func OpenMapped(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < sasgHeaderBytes {
		return nil, fmt.Errorf("%w: %s is %d bytes, smaller than the %d-byte header",
			ErrBadMapped, path, size, sasgHeaderBytes)
	}
	if size > math.MaxInt-8 {
		return nil, fmt.Errorf("%w: %s is %d bytes, too large to load on this platform",
			ErrBadMapped, path, size)
	}
	// A []uint64 backing guarantees the 8-byte base alignment the section
	// casts rely on; a plain []byte does not.
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("graph: reading %s: %w", path, err)
	}
	g, err := graphFromMapped(data, heapView{bytes: size})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
