package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// LoadOptions controls text edge-list parsing.
type LoadOptions struct {
	// Directed treats each line as one arc; when false each line adds both
	// arcs (the paper's treatment of Orkut/Friendster).
	Directed bool
	// DefaultWeight is used for lines without a third column.
	DefaultWeight float64
	// Relabel maps arbitrary non-negative ids to a dense range in first-seen
	// order. Without it, node ids must already be dense and NumNodes is
	// max(id)+1.
	Relabel bool
	// Build options applied after parsing.
	Build BuildOptions
}

// ErrParse reports a malformed edge-list line.
var ErrParse = errors.New("graph: parse error")

// LoadEdgeList parses a whitespace-separated edge list: "u v [w]" per line,
// '#' or '%' starting a comment. Returns the built graph.
func LoadEdgeList(r io.Reader, opt LoadOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := NewBuilder(0)
	relabel := map[uint64]uint32{}
	// Without Relabel the raw id IS the dense node id and must fit uint32;
	// silently truncating an oversized id would alias two distinct nodes.
	mapID := func(raw uint64) (uint32, error) {
		if !opt.Relabel {
			if raw > math.MaxUint32 {
				return 0, fmt.Errorf("%w: node id %d exceeds uint32 range (use Relabel)", ErrParse, raw)
			}
			return uint32(raw), nil
		}
		if id, ok := relabel[raw]; ok {
			return id, nil
		}
		// The dense id space is uint32 too: past 2^32 distinct raw ids the
		// counter would wrap and alias nodes just as silently.
		if uint64(len(relabel)) > math.MaxUint32 {
			return 0, fmt.Errorf("%w: more than 2^32 distinct node ids", ErrParse)
		}
		id := uint32(len(relabel))
		relabel[raw] = id
		return id, nil
	}
	if opt.DefaultWeight == 0 {
		opt.DefaultWeight = 1
	}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexAny(text, "#%"); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: want 'u v [w]'", ErrParse, line)
		}
		ru, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, line, err)
		}
		rv, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, line, err)
		}
		w := opt.DefaultWeight
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, line, err)
			}
		}
		u, err := mapID(ru)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		v, err := mapID(rv)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if opt.Directed {
			b.AddEdge(u, v, w)
		} else {
			b.AddUndirected(u, v, w)
		}
		if int(u)+1 > b.n {
			b.Grow(int(u) + 1)
		}
		if int(v)+1 > b.n {
			b.Grow(int(v) + 1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b.n == 0 {
		return nil, ErrNoNodes
	}
	return b.Build(opt.Build)
}

// LoadEdgeListFile opens path and calls LoadEdgeList.
func LoadEdgeListFile(path string, opt LoadOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, opt)
}

// SaveEdgeList writes the graph as "u v w" lines.
func (g *Graph) SaveEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.n; u++ {
		adj, ws := g.OutNeighbors(uint32(u))
		for i, v := range adj {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary format: little-endian; magic, version, n, m, then the six arrays.
const (
	binMagic   = 0x53534742 // "SSGB"
	binVersion = 1
)

// ErrBadFormat reports a corrupt or foreign binary graph file.
var ErrBadFormat = errors.New("graph: bad binary format")

// SaveBinary writes the graph in the compact binary format.
func (g *Graph) SaveBinary(w io.Writer) error {
	sw := newSectionWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.outAdj)))
	if err := sw.bytes(hdr[:]); err != nil {
		return err
	}
	// outIdx/inIdx are reconstructed from degrees on load; store only the
	// adjacency and weight arrays plus the per-node out/in degrees.
	degs := make([]uint32, 2*g.n)
	for v := 0; v < g.n; v++ {
		degs[v] = uint32(g.outIdx[v+1] - g.outIdx[v])
		degs[g.n+v] = uint32(g.inIdx[v+1] - g.inIdx[v])
	}
	if err := sw.u32s(degs); err != nil {
		return err
	}
	if err := sw.u32s(g.outAdj); err != nil {
		return err
	}
	if err := sw.f32s(g.outW); err != nil {
		return err
	}
	if err := sw.u32s(g.inAdj); err != nil {
		return err
	}
	if err := sw.f32s(g.inW); err != nil {
		return err
	}
	return sw.flush()
}

// LoadBinary reads a graph written by SaveBinary.
func LoadBinary(r io.Reader) (*Graph, error) {
	sr := newSectionReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binMagic {
		return nil, ErrBadFormat
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != binVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadFormat)
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:]))
	m := int(binary.LittleEndian.Uint64(hdr[16:]))
	if n <= 0 || m < 0 {
		return nil, ErrBadFormat
	}
	s := sections{
		outIdx: make([]int64, n+1),
		outAdj: make([]uint32, m),
		outW:   make([]float32, m),
		inIdx:  make([]int64, n+1),
		inAdj:  make([]uint32, m),
		inW:    make([]float32, m),
		inCum:  make([]float64, m),
		inSum:  make([]float64, n),
	}
	degs := make([]uint32, 2*n)
	if err := sr.u32s(degs); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		s.outIdx[v+1] = s.outIdx[v] + int64(degs[v])
		s.inIdx[v+1] = s.inIdx[v] + int64(degs[n+v])
	}
	if s.outIdx[n] != int64(m) || s.inIdx[n] != int64(m) {
		return nil, fmt.Errorf("%w: degree sums disagree with m", ErrBadFormat)
	}
	if err := sr.u32s(s.outAdj); err != nil {
		return nil, err
	}
	if err := sr.f32s(s.outW); err != nil {
		return nil, err
	}
	if err := sr.u32s(s.inAdj); err != nil {
		return nil, err
	}
	if err := sr.f32s(s.inW); err != nil {
		return nil, err
	}
	for _, v := range s.outAdj {
		if int(v) >= n {
			return nil, fmt.Errorf("%w: adjacency id out of range", ErrBadFormat)
		}
	}
	for _, v := range s.inAdj {
		if int(v) >= n {
			return nil, fmt.Errorf("%w: adjacency id out of range", ErrBadFormat)
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := s.inIdx[v], s.inIdx[v+1]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += float64(s.inW[i])
			s.inCum[i] = sum
		}
		s.inSum[v] = sum
	}
	return newHeapGraph(n, s), nil
}

// SaveBinaryFile writes the binary format to path.
func (g *Graph) SaveBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.SaveBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads the binary format from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBinary(f)
}
