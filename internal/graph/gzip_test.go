package graph

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestGzipRoundTrip(t *testing.T) {
	g := diamond(t)
	dir := t.TempDir()
	for _, name := range []string{"plain.txt", "packed.txt.gz"} {
		path := filepath.Join(dir, name)
		if err := g.SaveEdgeListFileAuto(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := LoadEdgeListFileAuto(path, LoadOptions{Directed: true})
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip changed size", name)
		}
		if w, _ := g2.EdgeWeight(0, 2); math.Abs(w-0.3) > 1e-6 {
			t.Fatalf("%s: weight %v", name, w)
		}
	}
}

func TestGzipBadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.gz")
	if err := writeFile(path, []byte("this is not gzip")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeListFileAuto(path, LoadOptions{Directed: true}); err == nil {
		t.Fatal("corrupt gzip should fail")
	}
	if _, err := LoadEdgeListFileAuto(filepath.Join(dir, "missing.txt"), LoadOptions{}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
