package graph

// This file is the storage seam behind Graph: the eight CSR arrays live in a
// `sections` value, and a View handle says where those arrays' backing bytes
// actually are — ordinary heap allocations (heapView: everything built by the
// Builder, LoadEdgeList, LoadBinary, the generators) or a read-only file
// mapping whose pages the kernel shares across every process that opened the
// same .sasg file (mapView, see OpenMapped). The accessor hot paths never go
// through the interface: Graph embeds the sections directly, so OutNeighbors,
// SampleLTInNeighbor and ReverseCSR compile to the same code for both
// backends. The View only answers accounting (resident vs mapped bytes) and
// lifecycle (Close) questions.

// sections holds the dual-CSR arrays of one graph. For a heap graph they are
// ordinary slices; for a mapped graph they alias disjoint 64-byte-aligned
// windows of one read-only mmap (see sasg.go for the on-disk layout, which
// mirrors this struct field by field).
type sections struct {
	outIdx []int64   // len n+1
	outAdj []uint32  // len m, per-source sorted by destination
	outW   []float32 // parallel to outAdj
	inIdx  []int64   // len n+1
	inAdj  []uint32  // len m, per-destination sorted by source
	inW    []float32 // parallel to inAdj
	inCum  []float64 // per-destination running sums of inW (for LT sampling)
	inSum  []float64 // total incoming weight per node
}

// bytes is the raw footprint of the arrays, independent of backing.
func (s *sections) bytes() int64 {
	b := int64(len(s.outIdx)+len(s.inIdx)) * 8
	b += int64(len(s.outAdj)+len(s.inAdj)) * 4
	b += int64(len(s.outW)+len(s.inW)) * 4
	b += int64(len(s.inCum)+len(s.inSum)) * 8
	return b
}

// View is a Graph's storage backend handle. It does not expose the arrays —
// Graph itself does, identically for every backend — it answers where their
// bytes live and owns the backend's lifecycle.
type View interface {
	// ResidentBytes is the portion of the CSR arrays held as private heap
	// memory (counted against this process's RSS by the allocator).
	ResidentBytes() int64
	// MappedBytes is the portion aliasing a read-only file mapping: paged in
	// on demand and shared with every other process mapping the same file,
	// so it is not private memory even when fully resident.
	MappedBytes() int64
	// Kind is "heap" or "mapped".
	Kind() string
	// Close releases backend resources. Closing a mapped view unmaps the
	// file — every slice of the graph becomes invalid; heap views are no-ops.
	Close() error
}

// heapView backs graphs whose arrays are ordinary allocations.
type heapView struct{ bytes int64 }

func (v heapView) ResidentBytes() int64 { return v.bytes }
func (v heapView) MappedBytes() int64   { return 0 }
func (v heapView) Kind() string         { return "heap" }
func (v heapView) Close() error         { return nil }

// newHeapGraph wraps freshly built sections in a Graph with heap accounting.
func newHeapGraph(n int, s sections) *Graph {
	return &Graph{n: n, sections: s, view: heapView{bytes: s.bytes()}}
}

// View returns the graph's storage backend handle.
func (g *Graph) View() View { return g.view }

// ResidentBytes reports the graph arrays' private heap footprint (0 for a
// mapped graph: its arrays alias the file mapping).
func (g *Graph) ResidentBytes() int64 { return g.view.ResidentBytes() }

// MappedBytes reports the bytes aliasing a read-only file mapping (0 for a
// heap graph). Mapped bytes are shared across processes and reclaimable by
// the kernel, so they are accounted separately from resident memory.
func (g *Graph) MappedBytes() int64 { return g.view.MappedBytes() }

// Mapped reports whether the graph's arrays alias a file mapping.
func (g *Graph) Mapped() bool { return g.view.MappedBytes() > 0 }

// Close releases the graph's storage backend. For a mapped graph this unmaps
// the file and every slice previously returned by accessors becomes invalid;
// for heap graphs it is a no-op. Callers retiring a served graph should also
// call ris.DropCachedPlans / stopandstare.DropCachedPlans first.
func (g *Graph) Close() error { return g.view.Close() }
