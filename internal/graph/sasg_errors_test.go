package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// These tests cover the .sasg structural-validation paths OpenMapped must
// take before trusting a byte of section data: every corruption is applied
// to a known-good image, written to a real file, and must be rejected with
// ErrBadMapped — never a panic, never a silently wrong graph. They mirror
// the io_errors_test.go discipline for the .ssg loader.

// validSasgImage serializes a small real graph and returns the raw bytes.
func validSasgImage(t *testing.T) []byte {
	t.Helper()
	g := randomTestGraph(t, 20, 80, 42)
	var buf bytes.Buffer
	if err := g.WriteMapped(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openImage writes data to a temp file and opens it mapped.
func openImage(t *testing.T, data []byte) (*Graph, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corrupt.sasg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := OpenMapped(path)
	if err == nil {
		t.Cleanup(func() { g.Close() })
	}
	return g, err
}

func TestOpenMappedRejectsCorruption(t *testing.T) {
	valid := validSasgImage(t)
	// The image must be good as-is, or every case below is vacuous.
	if g, err := openImage(t, valid); err != nil {
		t.Fatalf("pristine image failed to open: %v", err)
	} else if g.NumNodes() != 20 {
		t.Fatalf("pristine image has %d nodes, want 20", g.NumNodes())
	}

	n := binary.LittleEndian.Uint64(valid[16:])
	m := binary.LittleEndian.Uint64(valid[24:])
	secs, _ := sasgLayout(n, m)

	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"bad-magic", func(d []byte) []byte {
			d[0] ^= 0xff
			return d
		}},
		{"unsupported-version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:], 99)
			return d
		}},
		{"foreign-endian-tag", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 0x04030201)
			return d
		}},
		{"zero-nodes", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:], 0)
			return d
		}},
		{"node-count-overflow", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:], 1<<62)
			return d
		}},
		{"edge-count-overflow", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[24:], 1<<62)
			return d
		}},
		{"count-mismatch", func(d []byte) []byte {
			// Halving m desyncs every section length from the table.
			binary.LittleEndian.PutUint64(d[24:], m/2)
			return d
		}},
		{"misaligned-section-offset", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[32+16*1:])
			binary.LittleEndian.PutUint64(d[32+16*1:], off+4)
			return d
		}},
		{"wrong-section-length", func(d []byte) []byte {
			l := binary.LittleEndian.Uint64(d[40+16*2:])
			binary.LittleEndian.PutUint64(d[40+16*2:], l+8)
			return d
		}},
		{"misplaced-section", func(d []byte) []byte {
			// Aligned and right-sized, but not where the canonical packed
			// layout puts it.
			off := binary.LittleEndian.Uint64(d[32+16*3:])
			binary.LittleEndian.PutUint64(d[32+16*3:], off+sasgAlign)
			return d
		}},
		{"truncated-mid-section", func(d []byte) []byte {
			return d[:len(d)-10]
		}},
		{"truncated-header", func(d []byte) []byte {
			return d[:100]
		}},
		{"endpoint-mismatch", func(d []byte) []byte {
			// outIdx[n] must equal m; zeroing it means the offset table
			// disagrees with the header's edge count.
			binary.LittleEndian.PutUint64(d[secs[0].off+n*8:], 0)
			return d
		}},
		{"swapped-offset-table", func(d []byte) []byte {
			// A zeroed outIdx section still parses structurally; the
			// endpoint check has to catch it.
			for i := secs[0].off; i < secs[0].off+secs[0].len; i++ {
				d[i] = 0
			}
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), valid...))
			g, err := openImage(t, data)
			if err == nil {
				t.Fatalf("corrupt image opened: %d nodes", g.NumNodes())
			}
			if !errors.Is(err, ErrBadMapped) {
				t.Fatalf("want ErrBadMapped, got %v", err)
			}
		})
	}
}

func TestOpenMappedEmptyFile(t *testing.T) {
	if _, err := openImage(t, nil); !errors.Is(err, ErrBadMapped) {
		t.Fatalf("empty file: want ErrBadMapped, got %v", err)
	}
}

// TestWriteMappedRejectsOverflow: the writer refuses graphs whose counts
// the format (on this platform) could not reopen.
func TestWriteMappedRejectsEmptyGraph(t *testing.T) {
	g := &Graph{}
	var buf bytes.Buffer
	if err := g.WriteMapped(&buf); !errors.Is(err, ErrBadMapped) {
		t.Fatalf("zero-node write: want ErrBadMapped, got %v", err)
	}
}
