//go:build unix

package graph

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapView backs a graph opened from a read-only file mapping. Close unmaps;
// after that every slice of the owning Graph is invalid. Close must not race
// with queries on the same graph — retire the graph from serving first.
type mapView struct {
	data []byte
}

func (v *mapView) ResidentBytes() int64 { return 0 }
func (v *mapView) MappedBytes() int64   { return int64(len(v.data)) }
func (v *mapView) Kind() string         { return "mapped" }

func (v *mapView) Close() error {
	if v.data == nil {
		return nil
	}
	data := v.data
	v.data = nil
	return syscall.Munmap(data)
}

// OpenMapped maps a .sasg file read-only and returns a Graph whose arrays
// alias the mapping in place: no parsing, no copying, O(1) in the edge
// count. Pages fault in on first touch and are shared with every other
// process that mapped the same file. The caller owns the mapping: Close the
// graph to release it (the file descriptor itself is released before
// OpenMapped returns; the mapping keeps the file pinned).
func OpenMapped(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < sasgHeaderBytes {
		return nil, fmt.Errorf("%w: %s is %d bytes, smaller than the %d-byte header",
			ErrBadMapped, path, size, sasgHeaderBytes)
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("%w: %s is %d bytes, too large to map on this platform",
			ErrBadMapped, path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	view := &mapView{data: data}
	g, err := graphFromMapped(data, view)
	if err != nil {
		view.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
