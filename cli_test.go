package stopandstare

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/* binary once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"imgen", "imstats", "imrun", "imeval", "imbench", "imtvm"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline exercises the documented workflow end to end:
// generate → stats → run → eval → tvm → bench.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow; skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.ssg")

	// imgen: preset at small scale.
	out := run(t, filepath.Join(bin, "imgen"),
		"-preset", "nethept", "-scale", "0.2", "-seed", "5", "-out", graphFile)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "lt-valid=true") {
		t.Fatalf("imgen output: %s", out)
	}

	// imstats: readable statistics.
	out = run(t, filepath.Join(bin, "imstats"), "-graph", graphFile)
	if !strings.Contains(out, "nodes:") || !strings.Contains(out, "lt-valid:      true") {
		t.Fatalf("imstats output: %s", out)
	}

	// imrun: D-SSA with evaluation.
	out = run(t, filepath.Join(bin, "imrun"),
		"-graph", graphFile, "-algo", "dssa", "-k", "10", "-model", "LT",
		"-eps", "0.2", "-seed", "3", "-eval", "1000", "-certify")
	if !strings.Contains(out, "seeds: ") || !strings.Contains(out, "spread(MC):") {
		t.Fatalf("imrun output: %s", out)
	}
	if !strings.Contains(out, "certified:") {
		t.Fatalf("imrun -certify output: %s", out)
	}
	// Extract the seed list for imeval.
	var seedLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "seeds: ") {
			seedLine = strings.TrimPrefix(line, "seeds: ")
		}
	}
	if seedLine == "" {
		t.Fatalf("no seeds line in imrun output: %s", out)
	}

	// imeval: score the same seeds.
	out = run(t, filepath.Join(bin, "imeval"),
		"-graph", graphFile, "-model", "LT", "-seeds", seedLine, "-runs", "1000")
	if !strings.Contains(out, "spread:") {
		t.Fatalf("imeval output: %s", out)
	}

	// imtvm: synthetic topic, D-SSA.
	out = run(t, filepath.Join(bin, "imtvm"),
		"-graph", graphFile, "-algo", "dssa", "-k", "5", "-eps", "0.3",
		"-eval", "500")
	if !strings.Contains(out, "benefit (MC") {
		t.Fatalf("imtvm output: %s", out)
	}

	// imtvm cost-aware mode.
	out = run(t, filepath.Join(bin, "imtvm"),
		"-graph", graphFile, "-budget", "10", "-eps", "0.4", "-eval", "0")
	if !strings.Contains(out, "cost-aware:") {
		t.Fatalf("imtvm budgeted output: %s", out)
	}

	// The out-of-core leg: write the same preset as a mmap-able .sasg,
	// check imstats reports mapped storage, and run the solver on it.
	mappedFile := filepath.Join(work, "g.sasg")
	out = run(t, filepath.Join(bin, "imgen"),
		"-preset", "nethept", "-scale", "0.2", "-seed", "5", "-obin", "-out", mappedFile)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "lt-valid=true") {
		t.Fatalf("imgen -obin output: %s", out)
	}
	out = run(t, filepath.Join(bin, "imstats"), "-graph", mappedFile)
	if !strings.Contains(out, "storage:       mapped") || !strings.Contains(out, "lt-valid:      true") {
		t.Fatalf("imstats on .sasg output: %s", out)
	}
	out = run(t, filepath.Join(bin, "imrun"),
		"-graph", mappedFile, "-algo", "dssa", "-k", "10", "-model", "LT",
		"-eps", "0.2", "-seed", "3")
	if !strings.Contains(out, "seeds: "+seedLine) {
		t.Fatalf("imrun on .sasg drifted from .ssg seeds %q: %s", seedLine, out)
	}

	// imbench: registry listing plus one quick experiment.
	out = run(t, filepath.Join(bin, "imbench"), "-list")
	if !strings.Contains(out, "table3") || !strings.Contains(out, "fig8") {
		t.Fatalf("imbench -list output: %s", out)
	}
	out = run(t, filepath.Join(bin, "imbench"), "-exp", "table4", "-quick")
	if !strings.Contains(out, "topic") {
		t.Fatalf("imbench table4 output: %s", out)
	}
}

// TestCLIErrors verifies the tools fail cleanly on bad input.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow; skipped in -short mode")
	}
	bin := buildTools(t)
	cases := [][]string{
		{filepath.Join(bin, "imgen")},                               // missing -out
		{filepath.Join(bin, "imgen"), "-out", "/tmp/x.ssg"},         // missing generator
		{filepath.Join(bin, "imrun"), "-graph", "/nonexistent.ssg"}, // bad file
		{filepath.Join(bin, "imstats")},                             // missing -graph
		{filepath.Join(bin, "imeval"), "-graph", "x", "-seeds", ""}, // missing seeds
		{filepath.Join(bin, "imbench"), "-exp", "bogus"},            // unknown experiment
	}
	for _, c := range cases {
		cmd := exec.Command(c[0], c[1:]...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Fatalf("%v should have failed:\n%s", c, out)
		}
	}
}
