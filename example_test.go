package stopandstare_test

import (
	"fmt"
	"log"

	"stopandstare"
)

// The basic workflow: generate (or load) a graph, maximize influence,
// validate the result.
func Example() {
	g, err := stopandstare.GeneratePreset("nethept", 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA,
		stopandstare.Options{K: 10, Epsilon: 0.1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Seeds) == 10)
	// Output: true
}

// ExampleMaximize_baselineComparison runs the same instance through the
// paper's comparison set.
func ExampleMaximize_baselineComparison() {
	g, err := stopandstare.GeneratePowerLaw(2000, 10000, 2.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []stopandstare.Algorithm{
		stopandstare.DSSA, stopandstare.SSA, stopandstare.IMM,
	} {
		res, err := stopandstare.Maximize(g, stopandstare.IC, algo,
			stopandstare.Options{K: 20, Epsilon: 0.2, Seed: 3, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(algo, len(res.Seeds))
	}
	// Output:
	// dssa 20
	// ssa 20
	// imm 20
}

// ExampleMaximizeTargeted shows the TVM variant with explicit weights.
func ExampleMaximizeTargeted() {
	g, err := stopandstare.GeneratePowerLaw(1000, 5000, 2.1, 5)
	if err != nil {
		log.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := 0; v < 100; v++ { // the first 100 users are the target group
		weights[v] = 1
	}
	res, err := stopandstare.MaximizeTargeted(g, stopandstare.LT, weights,
		stopandstare.DSSA, stopandstare.Options{K: 5, Epsilon: 0.2, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Seeds), res.Gamma)
	// Output: 5 100
}

// ExampleCertifySpread scores a seed set with a rigorous error bound.
func ExampleCertifySpread() {
	g, err := stopandstare.GeneratePowerLaw(1000, 5000, 2.1, 11)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := stopandstare.CertifySpread(g, stopandstare.IC,
		[]uint32{1, 2, 3}, 0.1, 0.01, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cert.Influence > 3, cert.Epsilon)
	// Output: true 0.1
}
