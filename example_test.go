package stopandstare_test

import (
	"fmt"
	"log"
	"slices"

	"stopandstare"
)

// The basic workflow: generate (or load) a graph, maximize influence,
// validate the result.
func Example() {
	g, err := stopandstare.GeneratePreset("nethept", 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA,
		stopandstare.Options{K: 10, Epsilon: 0.1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Seeds) == 10)
	// Output: true
}

// ExampleSession shows the serving workflow: one long-lived Session per
// (graph, model) answers a stream of queries, reusing every RR sample
// generated so far — a repeated or refined query pays selection, not
// sampling, and returns exactly what a cold Maximize at the same seed
// would.
func ExampleSession() {
	g, err := stopandstare.GeneratePowerLaw(2000, 10000, 2.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stopandstare.NewSession(g, stopandstare.IC,
		stopandstare.SessionOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	cold, err := sess.Maximize(stopandstare.Query{K: 10, Epsilon: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	// The repeated query is warm: zero sampling, identical result.
	warm, err := sess.Maximize(stopandstare.Query{K: 10, Epsilon: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	// A refined query (larger k, SSA instead of D-SSA) shares the stream.
	refined, err := sess.Maximize(stopandstare.Query{
		Algorithm: stopandstare.SSA, K: 25, Epsilon: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	fmt.Println(slices.Equal(warm.Seeds, cold.Seeds), warm.Samples == cold.Samples)
	fmt.Println(cold.Warm, warm.Warm)
	fmt.Println(len(refined.Seeds), st.Queries, st.Solvers, st.PlanBytes > 0)
	// Output:
	// true true
	// false true
	// 25 3 2 true
}

// ExampleMaximize_baselineComparison runs the same instance through the
// paper's comparison set.
func ExampleMaximize_baselineComparison() {
	g, err := stopandstare.GeneratePowerLaw(2000, 10000, 2.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []stopandstare.Algorithm{
		stopandstare.DSSA, stopandstare.SSA, stopandstare.IMM,
	} {
		res, err := stopandstare.Maximize(g, stopandstare.IC, algo,
			stopandstare.Options{K: 20, Epsilon: 0.2, Seed: 3, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(algo, len(res.Seeds))
	}
	// Output:
	// dssa 20
	// ssa 20
	// imm 20
}

// ExampleMaximizeTargeted shows the TVM variant with explicit weights.
func ExampleMaximizeTargeted() {
	g, err := stopandstare.GeneratePowerLaw(1000, 5000, 2.1, 5)
	if err != nil {
		log.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := 0; v < 100; v++ { // the first 100 users are the target group
		weights[v] = 1
	}
	res, err := stopandstare.MaximizeTargeted(g, stopandstare.LT, weights,
		stopandstare.DSSA, stopandstare.Options{K: 5, Epsilon: 0.2, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Seeds), res.Gamma)
	// Output: 5 100
}

// ExampleCertifySpread scores a seed set with a rigorous error bound.
func ExampleCertifySpread() {
	g, err := stopandstare.GeneratePowerLaw(1000, 5000, 2.1, 11)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := stopandstare.CertifySpread(g, stopandstare.IC,
		[]uint32{1, 2, 3}, 0.1, 0.01, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cert.Influence > 3, cert.Epsilon)
	// Output: true 0.1
}
