module stopandstare

go 1.21
