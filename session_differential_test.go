package stopandstare_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"stopandstare"
	"stopandstare/internal/core"
	"stopandstare/internal/diffusion"
	"stopandstare/internal/ris"
)

// This file is the serving-layer differential harness: a warm Session —
// whose store, solvers and plan persist across a randomized stream of
// queries — must return results bit-identical to cold Maximize runs at the
// same seed, for every store topology and sampling kernel. Since RR set i
// is a pure function of (seed, i) and the stop-and-stare loops consume only
// schedule-derived sizes, warm reuse is not an approximation; this harness
// is what turns that claim into a tested invariant. MemoryBytes and Elapsed
// are exempt (a warm store is legitimately larger/faster).

type sessionQuery struct {
	algo stopandstare.Algorithm
	k    int
	eps  float64
}

// randomQuerySequence draws a deterministic mixed workload: repeated
// queries, k refinements, ε tightenings, and algorithm switches.
func randomQuerySequence(seed int64, n int) []sessionQuery {
	r := rand.New(rand.NewSource(seed))
	algos := []stopandstare.Algorithm{stopandstare.DSSA, stopandstare.SSA}
	epss := []float64{0.4, 0.3, 0.25}
	qs := make([]sessionQuery, n)
	for i := range qs {
		qs[i] = sessionQuery{
			algo: algos[r.Intn(len(algos))],
			k:    2 + r.Intn(9),
			eps:  epss[r.Intn(len(epss))],
		}
		if i > 0 && r.Intn(3) == 0 {
			qs[i] = qs[i-1] // force exact repeats into the stream
		}
	}
	return qs
}

func assertSameResult(t *testing.T, ctx string, warm, cold *stopandstare.Result,
	warmTrace, coldTrace []stopandstare.Checkpoint) {
	t.Helper()
	if !slices.Equal(warm.Seeds, cold.Seeds) {
		t.Fatalf("%s: Seeds %v vs cold %v", ctx, warm.Seeds, cold.Seeds)
	}
	if warm.InfluenceEstimate != cold.InfluenceEstimate {
		t.Fatalf("%s: Influence %v vs cold %v", ctx, warm.InfluenceEstimate, cold.InfluenceEstimate)
	}
	if warm.Samples != cold.Samples || warm.Iterations != cold.Iterations || warm.HitCap != cold.HitCap {
		t.Fatalf("%s: samples/iter/hitcap %d/%d/%v vs cold %d/%d/%v", ctx,
			warm.Samples, warm.Iterations, warm.HitCap,
			cold.Samples, cold.Iterations, cold.HitCap)
	}
	if cold.Warm {
		t.Fatalf("%s: one-shot Maximize reported Warm", ctx)
	}
	if len(warmTrace) != len(coldTrace) {
		t.Fatalf("%s: %d checkpoints vs cold %d", ctx, len(warmTrace), len(coldTrace))
	}
	for i := range coldTrace {
		if warmTrace[i] != coldTrace[i] {
			t.Fatalf("%s: checkpoint %d differs:\nwarm %+v\ncold %+v", ctx, i, warmTrace[i], coldTrace[i])
		}
	}
}

// TestSessionDifferentialWarmVsCold runs randomized query sequences on warm
// sessions across flat/sharded stores × both kernels, comparing every query
// against a cold Maximize run with identical parameters — and pins the
// first cold result against the solo core path, so session execution, the
// one-shot wrapper, and the underlying algorithms cannot drift apart.
func TestSessionDifferentialWarmVsCold(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(220, 1400, 2.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 71
	for _, shards := range []int{0, 3} {
		for _, kernel := range []stopandstare.Kernel{stopandstare.KernelPlan, stopandstare.KernelOracle} {
			sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{
				Seed: seed, Workers: 2, Shards: shards, ShardWorkers: 2, Kernel: kernel,
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range randomQuerySequence(int64(shards)*31+int64(kernel)+5, 8) {
				ctx := fmt.Sprintf("shards=%d/kernel=%v/q%d(%s,k=%d,eps=%v)",
					shards, kernel, qi, q.algo, q.k, q.eps)
				var warmTrace []stopandstare.Checkpoint
				warm, err := sess.Maximize(stopandstare.Query{
					Algorithm: q.algo, K: q.k, Epsilon: q.eps,
					OnCheckpoint: func(cp stopandstare.Checkpoint) { warmTrace = append(warmTrace, cp) },
				})
				if err != nil {
					t.Fatalf("%s: warm: %v", ctx, err)
				}
				var coldTrace []stopandstare.Checkpoint
				cold, err := stopandstare.Maximize(g, stopandstare.IC, q.algo, stopandstare.Options{
					K: q.k, Epsilon: q.eps, Seed: seed, Workers: 2,
					Shards: shards, ShardWorkers: 2, Kernel: kernel,
					OnCheckpoint: func(cp stopandstare.Checkpoint) { coldTrace = append(coldTrace, cp) },
				})
				if err != nil {
					t.Fatalf("%s: cold: %v", ctx, err)
				}
				assertSameResult(t, ctx, warm, cold, warmTrace, coldTrace)

				if qi == 0 {
					// Pin the session/wrapper path against the solo core
					// entry points the internal differential harness uses.
					s, err := ris.NewSampler(g, diffusion.IC)
					if err != nil {
						t.Fatal(err)
					}
					copt := core.Options{K: q.k, Epsilon: q.eps, Seed: seed, Workers: 2,
						Shards: shards, ShardWorkers: 2, Kernel: kernel}
					var solo *core.Result
					if q.algo == stopandstare.DSSA {
						solo, err = core.DSSA(s, copt)
					} else {
						solo, err = core.SSA(s, copt)
					}
					if err != nil {
						t.Fatalf("%s: solo: %v", ctx, err)
					}
					if !slices.Equal(solo.Seeds, cold.Seeds) || solo.TotalSamples != cold.Samples {
						t.Fatalf("%s: solo core drifted from session path: %v/%d vs %v/%d",
							ctx, solo.Seeds, solo.TotalSamples, cold.Seeds, cold.Samples)
					}
				}
			}
		}
	}
}

// TestSessionDifferentialWeighted runs the same warm-vs-cold check for a
// weighted (TVM) session against MaximizeTargeted.
func TestSessionDifferentialWeighted(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(220, 1400, 2.1, 41)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumNodes())
	for v := range weights {
		weights[v] = float64(v%7) + 0.5
	}
	const seed = 13
	sess, err := stopandstare.NewSession(g, stopandstare.LT, stopandstare.SessionOptions{
		Seed: seed, Workers: 2, Weights: weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Gamma() <= 0 {
		t.Fatal("weighted session must report Gamma > 0")
	}
	for qi, q := range randomQuerySequence(7, 6) {
		ctx := fmt.Sprintf("weighted/q%d(%s,k=%d,eps=%v)", qi, q.algo, q.k, q.eps)
		warm, err := sess.Maximize(stopandstare.Query{Algorithm: q.algo, K: q.k, Epsilon: q.eps})
		if err != nil {
			t.Fatalf("%s: warm: %v", ctx, err)
		}
		cold, err := stopandstare.MaximizeTargeted(g, stopandstare.LT, weights, q.algo,
			stopandstare.Options{K: q.k, Epsilon: q.eps, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatalf("%s: cold: %v", ctx, err)
		}
		if !slices.Equal(warm.Seeds, cold.Seeds) || warm.InfluenceEstimate != cold.BenefitEstimate ||
			warm.Samples != cold.Samples {
			t.Fatalf("%s: warm %v/%v/%d vs cold %v/%v/%d", ctx,
				warm.Seeds, warm.InfluenceEstimate, warm.Samples,
				cold.Seeds, cold.BenefitEstimate, cold.Samples)
		}
	}
}

// TestSessionSolverCacheBounded: the per-k solver cache is an LRU capped at
// 16 entries, so a k-sweeping (or adversarial HTTP) query stream cannot
// grow per-session memory without bound — and a query whose k was evicted
// still returns its exact cold-run result (the rebuilt solver rescans).
func TestSessionSolverCacheBounded(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(300, 1500, 2.1, 77)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 31
	sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{Seed: seed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Maximize(stopandstare.Query{K: 1, Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 24; k++ { // sweep past the cache limit, evicting k=1
		if _, err := sess.Maximize(stopandstare.Query{K: k, Epsilon: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess.Stats(); st.Solvers > 16 {
		t.Fatalf("solver cache grew to %d entries, cap is 16", st.Solvers)
	}
	again, err := sess.Maximize(stopandstare.Query{K: 1, Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(again.Seeds, first.Seeds) || again.Samples != first.Samples {
		t.Fatalf("evicted-k requery drifted: %v/%d vs %v/%d",
			again.Seeds, again.Samples, first.Seeds, first.Samples)
	}
}

// TestSessionPlanCompiledOnce pins the acceptance invariant: any number of
// sessions, samplers and one-shot runs on one (graph, model) compile the
// sampling plan exactly once, process-wide.
func TestSessionPlanCompiledOnce(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(300, 1500, 2.1, 123)
	if err != nil {
		t.Fatal(err)
	}
	defer stopandstare.DropCachedPlans(g)
	if n := ris.PlanCompilations(g, diffusion.IC); n != 0 {
		t.Fatalf("fresh graph already has %d compilations", n)
	}
	for i := 0; i < 3; i++ {
		sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{
			Seed: uint64(i), Workers: 2, Shards: i, // flat and sharded sessions
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Maximize(stopandstare.Query{K: 4, Epsilon: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	// One-shot runs and a certificate on the same graph join the sharing.
	if _, err := stopandstare.Maximize(g, stopandstare.IC, stopandstare.DSSA,
		stopandstare.Options{K: 3, Epsilon: 0.4, Seed: 9, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := stopandstare.CertifySpread(g, stopandstare.IC, []uint32{1, 2}, 0.3, 0.1, 3); err != nil {
		t.Fatal(err)
	}
	if n := ris.PlanCompilations(g, diffusion.IC); n != 1 {
		t.Fatalf("plan compiled %d times for (graph, IC), want exactly 1", n)
	}
	// The LT plan is a separate entry, also compiled at most once.
	if _, err := stopandstare.Maximize(g, stopandstare.LT, stopandstare.DSSA,
		stopandstare.Options{K: 3, Epsilon: 0.4, Seed: 9, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if n := ris.PlanCompilations(g, diffusion.LT); n != 1 {
		t.Fatalf("plan compiled %d times for (graph, LT), want exactly 1", n)
	}
}

// TestSessionAccounting pins the memory-accounting satellite: a plan-kernel
// run's MemoryBytes includes the compiled plan, and Session.Stats reports
// plan and store bytes separately (summing back to the store's total).
func TestSessionAccounting(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(300, 1500, 2.1, 321)
	if err != nil {
		t.Fatal(err)
	}
	defer stopandstare.DropCachedPlans(g)
	sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Maximize(stopandstare.Query{K: 5, Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	plan := ris.CachedPlanBytes(g, diffusion.IC)
	if plan <= 0 {
		t.Fatal("plan kernel run left no cached plan")
	}
	if res.MemoryBytes < plan {
		t.Fatalf("Result.MemoryBytes %d excludes the plan (%d bytes)", res.MemoryBytes, plan)
	}
	st := sess.Stats()
	if st.PlanBytes != plan {
		t.Fatalf("Stats.PlanBytes %d != cached plan bytes %d", st.PlanBytes, plan)
	}
	if st.StoreBytes <= 0 || st.Queries != 1 || st.Samples <= 0 || st.Solvers != 1 {
		t.Fatalf("stats snapshot off: %+v", st)
	}
	if got := st.StoreBytes + st.PlanBytes; got != res.MemoryBytes {
		t.Fatalf("StoreBytes+PlanBytes = %d, want store total %d", got, res.MemoryBytes)
	}
}
