package stopandstare

import (
	"context"
	"errors"
	"slices"
	"sync/atomic"
	"testing"
)

// sameSessionAnswer fails unless two results agree in every deterministic
// observable.
func sameSessionAnswer(t *testing.T, ctx string, got, want *Result) {
	t.Helper()
	if !slices.Equal(got.Seeds, want.Seeds) || got.Samples != want.Samples ||
		got.InfluenceEstimate != want.InfluenceEstimate {
		t.Fatalf("%s: %v/%d/%v differs from %v/%d/%v", ctx,
			got.Seeds, got.Samples, got.InfluenceEstimate,
			want.Seeds, want.Samples, want.InfluenceEstimate)
	}
}

// TestSessionDurability pins the session-level durability contract, flat
// and sharded: Persist commits a snapshot, a rebuilt session with the same
// StateDir recovers the RR store — Stats reports the recovered sets and
// snapshot size — and every query on the recovered session, warm repeats
// and growing refinements alike, answers bit-identically to a session that
// never restarted.
func TestSessionDurability(t *testing.T) {
	g, err := GeneratePowerLaw(300, 1800, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 2} {
		dir := t.TempDir()
		opt := SessionOptions{Seed: 21, Workers: 2, Shards: shards, StateDir: dir}
		ref, err := NewSession(g, IC, SessionOptions{Seed: 21, Workers: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(g, IC, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st := sess.Stats(); st.Recovered != 0 || st.SnapshotBytes != 0 {
			t.Fatalf("shards=%d cold durable session reports recovery: %+v", shards, st)
		}
		q1 := Query{K: 6, Epsilon: 0.3}
		q2 := Query{K: 9, Epsilon: 0.25}
		for _, q := range []Query{q1, q2} {
			want, err := ref.Maximize(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Maximize(q)
			if err != nil {
				t.Fatal(err)
			}
			sameSessionAnswer(t, "pre-restart", got, want)
		}
		info, err := sess.Persist()
		if err != nil {
			t.Fatalf("shards=%d persist: %v", shards, err)
		}
		if info.Sets != sess.Stats().Samples || info.Bytes <= 0 {
			t.Fatalf("shards=%d snapshot info %+v vs %d resident sets", shards, info, sess.Stats().Samples)
		}
		if st := sess.Stats(); st.SnapshotBytes != info.Bytes {
			t.Fatalf("shards=%d SnapshotBytes %d, want %d", shards, st.SnapshotBytes, info.Bytes)
		}

		// "Restart": a fresh session over the same state dir recovers the
		// store instead of starting cold.
		sess2, err := NewSession(g, IC, opt)
		if err != nil {
			t.Fatal(err)
		}
		st := sess2.Stats()
		if st.Recovered != info.Sets || st.SnapshotBytes != info.Bytes {
			t.Fatalf("shards=%d recovered session stats %+v, want %d sets / %d bytes", shards, st, info.Sets, info.Bytes)
		}
		// Warm repeat: served from recovered samples without growth.
		want, err := ref.Maximize(q2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess2.Maximize(q2)
		if err != nil {
			t.Fatal(err)
		}
		sameSessionAnswer(t, "post-restart warm repeat", got, want)
		if !got.Warm {
			t.Fatalf("shards=%d recovered repeat was not warm", shards)
		}
		// Growing refinement: the recovered prefix extends bit-identically.
		q3 := Query{K: 9, Epsilon: 0.15}
		if want, err = ref.Maximize(q3); err != nil {
			t.Fatal(err)
		}
		if got, err = sess2.Maximize(q3); err != nil {
			t.Fatal(err)
		}
		sameSessionAnswer(t, "post-restart refinement", got, want)

		// A mismatched topology must not recover someone else's stream: a
		// different seed over the same dir starts cold.
		other, err := NewSession(g, IC, SessionOptions{Seed: 99, Workers: 2, Shards: shards, StateDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if st := other.Stats(); st.Recovered != 0 {
			t.Fatalf("shards=%d mismatched seed recovered %d sets", shards, st.Recovered)
		}
	}
}

// cancelAfterCtx cancels after a fixed number of Err() polls — the same
// deterministic mid-flight cancellation device as the store-level tests.
type cancelAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *cancelAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSessionMaximizeContextCancel pins the query-cancellation contract: a
// MaximizeContext abandoned mid-growth returns context.Canceled with the
// store exactly as before — no partial growth — and the next identical
// query, uncanceled, answers bit-identically to a never-canceled twin.
func TestSessionMaximizeContextCancel(t *testing.T) {
	g, err := GeneratePowerLaw(300, 1800, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 2} {
		ref, err := NewSession(g, IC, SessionOptions{Seed: 31, Workers: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(g, IC, SessionOptions{Seed: 31, Workers: 2, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		q := Query{K: 7, Epsilon: 0.3}

		// Pre-canceled: rejected before any work.
		pre, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := sess.MaximizeContext(pre, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d pre-canceled err = %v", shards, err)
		}
		if st := sess.Stats(); st.Samples != 0 {
			t.Fatalf("shards=%d pre-canceled query grew the store to %d", shards, st.Samples)
		}

		// Mid-flight: the context flips during the query's doubling loop.
		// Completed top-ups legitimately remain — each is atomic — but a
		// canceled one must leave nothing: the store may only ever sit at a
		// clean schedule prefix (a length the never-canceled twin also
		// passes through), never mid-append. The bit-identical convergence
		// below is the torn-store detector: any partial append would skew
		// every later coverage count.
		canceled := 0
		for _, after := range []int64{2, 4, 8, 16, 64} {
			before := sess.Stats()
			ctx := &cancelAfterCtx{Context: context.Background(), after: after}
			res, err := sess.MaximizeContext(ctx, q)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("shards=%d after=%d err = %v", shards, after, err)
				}
				canceled++
				if st := sess.Stats(); st.Samples < before.Samples {
					t.Fatalf("shards=%d after=%d store shrank: %d → %d", shards, after, before.Samples, st.Samples)
				}
				continue
			}
			want, werr := ref.Maximize(q)
			if werr != nil {
				t.Fatal(werr)
			}
			sameSessionAnswer(t, "late-cancel full answer", res, want)
		}
		if canceled == 0 {
			t.Fatalf("shards=%d no flip point canceled — test exercised nothing", shards)
		}

		// The abandoned growths left no trace: the same query, uncanceled,
		// answers exactly like the never-canceled twin (including through
		// MaximizeContext with a live context).
		want, err := ref.Maximize(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.MaximizeContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		sameSessionAnswer(t, "post-cancel query", got, want)
		if sess.Stats().Samples != ref.Stats().Samples {
			t.Fatalf("shards=%d store sizes diverged: %d vs %d", shards, sess.Stats().Samples, ref.Stats().Samples)
		}
	}
}
